// Ablation: the three chase variants of Section 1.1 on the same inputs.
//
// Section 1.2 makes two qualitative claims this bench quantifies:
//  * the restricted chase builds smaller instances than the semi-oblivious
//    one (head-satisfaction suppresses redundant triggers), at a per-step
//    cost (the satisfaction check);
//  * the oblivious chase "infers a lot of redundant information" — it fires
//    once per full body homomorphism rather than per frontier witness, so
//    its instances are the largest, often diverging where the others stop.
//
// Example 1.1 is included verbatim: D = {R(a,a)}, R(x,y) → ∃z R(z,x); the
// restricted chase applies nothing while the (semi-)oblivious chase
// diverges.

#include <iostream>

#include "chase/chase_engine.h"
#include "common.h"
#include "logic/parser.h"

using namespace chase;
using namespace chase::bench;

namespace {

struct VariantRow {
  uint64_t atoms = 0;
  uint64_t triggers = 0;
  double ms = 0;
  ChaseOutcome outcome = ChaseOutcome::kFixpoint;
};

VariantRow RunVariant(const Database& db, const std::vector<Tgd>& tgds,
                      ChaseVariant variant, uint64_t max_atoms) {
  ChaseOptions options;
  options.variant = variant;
  options.max_atoms = max_atoms;
  Timer timer;
  auto result = RunChase(db, tgds, options);
  VariantRow row;
  row.ms = timer.ElapsedMillis();
  if (result.ok()) {
    row.atoms = result->instance.NumAtoms();
    row.triggers = result->triggers_fired;
    row.outcome = result->outcome;
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const uint64_t max_atoms = static_cast<uint64_t>(200'000 * flags.scale);
  const uint32_t reps = flags.reps != 0 ? flags.reps : 5;

  TablePrinter table({"workload", "variant", "outcome", "n-atoms",
                      "triggers", "t-ms"});
  auto add_rows = [&](const std::string& label, const Database& db,
                      const std::vector<Tgd>& tgds) {
    static constexpr ChaseVariant kVariants[] = {
        ChaseVariant::kRestricted, ChaseVariant::kSemiOblivious,
        ChaseVariant::kOblivious};
    for (ChaseVariant variant : kVariants) {
      VariantRow row = RunVariant(db, tgds, variant, max_atoms);
      table.AddRow({label, ChaseVariantName(variant),
                    ChaseOutcomeName(row.outcome), std::to_string(row.atoms),
                    std::to_string(row.triggers), FmtMs(row.ms)});
    }
  };

  // Example 1.1 from the paper.
  {
    auto program = ParseProgram("r(a, a).\nr(X, Y) -> r(Z, X).");
    if (!program.ok()) {
      std::cerr << program.status() << "\n";
      return 1;
    }
    add_rows("example-1.1", *program->database, program->tgds);
  }

  // A weakly-acyclic data-exchange style workload where all three variants
  // terminate but with different instance sizes.
  {
    Rng rng(flags.seed);
    for (uint32_t rep = 0; rep < reps; ++rep) {
      DataGenParams data_params;
      data_params.preds = 10;
      data_params.min_arity = 1;
      data_params.max_arity = 3;
      data_params.dsize = 1'000;
      data_params.rsize = static_cast<uint64_t>(200 * flags.scale);
      data_params.seed = rng.Next();
      auto data = GenerateData(data_params);
      if (!data.ok()) {
        std::cerr << data.status() << "\n";
        return 1;
      }
      TgdGenParams tgd_params;
      tgd_params.ssize = 10;
      tgd_params.min_arity = 1;
      tgd_params.max_arity = 3;
      tgd_params.tsize = 15;
      tgd_params.tclass = TgdClass::kLinear;
      tgd_params.existential_percent = 15;
      tgd_params.seed = rng.Next();
      auto tgds = GenerateTgds(*data->schema, tgd_params);
      if (!tgds.ok()) {
        std::cerr << tgds.status() << "\n";
        return 1;
      }
      add_rows("synthetic-" + std::to_string(rep), *data->database,
               tgds.value());
    }
  }

  Emit(flags,
       "Ablation (Section 1.2): restricted vs semi-oblivious vs oblivious "
       "chase",
       table);
  if (!WriteBenchJson(flags, "chase_variants", table)) return 1;
  return 0;
}
