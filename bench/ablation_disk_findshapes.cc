// Ablation: FindShapes over the disk-backed pager vs the in-memory row
// store, all four plans through the unified ShapeSource API.
//
// The paper runs FindShapes either in memory or inside PostgreSQL; this
// bench runs the same two query plans against the pager substrate (heap
// files behind a buffer pool) — plus the work-partitioned parallel scan the
// ShapeSource layer added over the disk backend — and reports wall-clock
// plus exact I/O: pages read and buffer hit rate. The crossover mirrors
// Section 9's discussion — the per-query early-exit plan (exists mode) wins
// when every shape appears early, and loses when absent shapes force full
// scans per query.

#include <cstdio>
#include <iostream>

#include "common.h"
#include "pager/disk_database.h"
#include "pager/disk_shape_source.h"
#include "storage/catalog.h"
#include "storage/shape_finder.h"
#include "storage/shape_source.h"

using namespace chase;
using namespace chase::bench;

namespace {

constexpr unsigned kParallelThreads = 4;

// One timed unified-FindShapes run over a freshly opened (cold-pool) disk
// database; accumulates wall-clock and returns the I/O counters.
bool RunDiskPlan(const std::string& path, uint32_t frames,
                 const storage::FindShapesOptions& options,
                 const std::vector<Shape>& expected, double* total_ms,
                 storage::IoCounters* io) {
  auto disk_db = pager::DiskDatabase::Open(path, frames);
  if (!disk_db.ok()) {
    std::cerr << disk_db.status() << "\n";
    return false;
  }
  pager::DiskShapeSource source(disk_db->get());
  Timer timer;
  auto shapes = storage::FindShapes(source, options);
  *total_ms += timer.ElapsedMillis();
  if (!shapes.ok() || *shapes != expected) {
    std::cerr << "disk " << storage::ShapeFinderModeName(options.mode)
              << " (threads=" << options.threads << ") mismatch\n";
    return false;
  }
  const storage::IoCounters run_io = source.Io();
  io->pages_read += run_io.pages_read;
  io->pool_hits += run_io.pool_hits;
  io->pool_misses += run_io.pool_misses;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const uint32_t reps = flags.reps != 0 ? flags.reps : 3;
  const std::vector<uint64_t> sizes = {1'000, 10'000, 50'000, 100'000};
  const uint32_t frames = 256;  // 2 MiB of buffer pool

  Rng rng(flags.seed);
  TablePrinter table({"n-tuples", "n-shapes", "t-mem-ms", "t-disk-scan-ms",
                      "t-disk-scan-p" + std::to_string(kParallelThreads) +
                          "-ms",
                      "t-disk-exists-ms", "scan-pages", "par-pages",
                      "exists-pages", "hit-rate"});
  for (uint64_t size : sizes) {
    const uint64_t rsize =
        std::max<uint64_t>(1, static_cast<uint64_t>(size * flags.scale) / 20);
    double mem_ms = 0, scan_ms = 0, parallel_ms = 0, exists_ms = 0;
    storage::IoCounters scan_io, parallel_io, exists_io;
    size_t n_shapes = 0;
    uint64_t n_tuples = 0;
    for (uint32_t rep = 0; rep < reps; ++rep) {
      DataGenParams params;
      params.preds = 20;
      params.min_arity = 1;
      params.max_arity = 5;
      params.dsize = 100'000;
      params.rsize = rsize;
      params.seed = rng.Next();
      auto data = GenerateData(params);
      if (!data.ok()) {
        std::cerr << data.status() << "\n";
        return 1;
      }
      n_tuples = data->database->TotalFacts();

      storage::Catalog catalog(data->database.get());
      storage::MemoryShapeSource memory(&catalog);
      Timer timer;
      auto expected =
          storage::FindShapes(memory, {storage::ShapeFinderMode::kScan, 1});
      mem_ms += timer.ElapsedMillis();
      if (!expected.ok()) {
        std::cerr << expected.status() << "\n";
        return 1;
      }
      n_shapes = expected->size();

      const std::string path = "/tmp/chase_bench_disk_findshapes.db";
      {
        auto created =
            pager::DiskDatabase::Create(path, *data->database, frames);
        if (!created.ok()) {
          std::cerr << created.status() << "\n";
          return 1;
        }
      }
      // Reopen per plan so each starts from a cold buffer pool.
      if (!RunDiskPlan(path, frames, {storage::ShapeFinderMode::kScan, 1},
                       *expected, &scan_ms, &scan_io) ||
          !RunDiskPlan(path, frames,
                       {storage::ShapeFinderMode::kScan, kParallelThreads},
                       *expected, &parallel_ms, &parallel_io) ||
          !RunDiskPlan(path, frames, {storage::ShapeFinderMode::kExists, 1},
                       *expected, &exists_ms, &exists_io)) {
        return 1;
      }
      std::remove(path.c_str());
    }
    const double hit_rate =
        static_cast<double>(exists_io.pool_hits) /
        std::max<uint64_t>(1, exists_io.pool_hits + exists_io.pool_misses);
    table.AddRow({std::to_string(n_tuples), std::to_string(n_shapes),
                  FmtMs(mem_ms / reps), FmtMs(scan_ms / reps),
                  FmtMs(parallel_ms / reps), FmtMs(exists_ms / reps),
                  std::to_string(scan_io.pages_read / reps),
                  std::to_string(parallel_io.pages_read / reps),
                  std::to_string(exists_io.pages_read / reps),
                  Fmt(100.0 * hit_rate, 1) + "%"});
  }
  Emit(flags,
       "Ablation: FindShapes on the disk substrate (scan, parallel scan, "
       "exists plans) vs in-memory",
       table);
  if (!WriteBenchJson(flags, "disk_findshapes", table)) return 1;
  return 0;
}
