// Ablation: FindShapes over the disk-backed pager vs the in-memory row
// store.
//
// The paper runs FindShapes either in memory or inside PostgreSQL; this
// bench runs the same two query plans against the pager substrate (heap
// files behind a buffer pool) and reports wall-clock plus exact I/O: pages
// read and buffer hit rate. The crossover mirrors Section 9's discussion —
// the per-query early-exit plan (exists mode) wins when every shape appears
// early, and loses when absent shapes force full scans per query.

#include <cstdio>
#include <iostream>

#include "common.h"
#include "pager/disk_database.h"
#include "pager/disk_shape_finder.h"
#include "storage/catalog.h"
#include "storage/shape_finder.h"

using namespace chase;
using namespace chase::bench;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const uint32_t reps = flags.reps != 0 ? flags.reps : 3;
  const std::vector<uint64_t> sizes = {1'000, 10'000, 50'000, 100'000};
  const uint32_t frames = 256;  // 2 MiB of buffer pool

  Rng rng(flags.seed);
  TablePrinter table({"n-tuples", "n-shapes", "t-mem-ms", "t-disk-scan-ms",
                      "t-disk-exists-ms", "scan-pages", "exists-pages",
                      "hit-rate"});
  for (uint64_t size : sizes) {
    const uint64_t rsize =
        std::max<uint64_t>(1, static_cast<uint64_t>(size * flags.scale) / 20);
    double mem_ms = 0, scan_ms = 0, exists_ms = 0;
    uint64_t scan_pages = 0, exists_pages = 0;
    double hit_rate = 0;
    size_t n_shapes = 0;
    uint64_t n_tuples = 0;
    for (uint32_t rep = 0; rep < reps; ++rep) {
      DataGenParams params;
      params.preds = 20;
      params.min_arity = 1;
      params.max_arity = 5;
      params.dsize = 100'000;
      params.rsize = rsize;
      params.seed = rng.Next();
      auto data = GenerateData(params);
      if (!data.ok()) {
        std::cerr << data.status() << "\n";
        return 1;
      }
      n_tuples = data->database->TotalFacts();

      storage::Catalog catalog(data->database.get());
      Timer timer;
      std::vector<Shape> expected = storage::FindShapesInMemory(catalog);
      mem_ms += timer.ElapsedMillis();
      n_shapes = expected.size();

      const std::string path = "/tmp/chase_bench_disk_findshapes.db";
      {
        auto created = pager::DiskDatabase::Create(path, *data->database,
                                                   frames);
        if (!created.ok()) {
          std::cerr << created.status() << "\n";
          return 1;
        }
      }
      // Reopen per finder so each starts from a cold buffer pool.
      {
        auto disk_db = pager::DiskDatabase::Open(path, frames);
        if (!disk_db.ok()) {
          std::cerr << disk_db.status() << "\n";
          return 1;
        }
        timer.Restart();
        auto scan = pager::FindShapesOnDiskScan(**disk_db);
        scan_ms += timer.ElapsedMillis();
        if (!scan.ok() || *scan != expected) {
          std::cerr << "disk scan mismatch\n";
          return 1;
        }
        scan_pages += (*disk_db)->disk().stats().pages_read;
      }
      {
        auto disk_db = pager::DiskDatabase::Open(path, frames);
        if (!disk_db.ok()) {
          std::cerr << disk_db.status() << "\n";
          return 1;
        }
        timer.Restart();
        auto exists = pager::FindShapesOnDiskExists(**disk_db);
        exists_ms += timer.ElapsedMillis();
        if (!exists.ok() || *exists != expected) {
          std::cerr << "disk exists mismatch\n";
          return 1;
        }
        exists_pages += (*disk_db)->disk().stats().pages_read;
        const auto& pool_stats = (*disk_db)->buffer_pool().stats();
        hit_rate +=
            static_cast<double>(pool_stats.hits) /
            std::max<uint64_t>(1, pool_stats.hits + pool_stats.misses);
      }
      std::remove(path.c_str());
    }
    table.AddRow({std::to_string(n_tuples), std::to_string(n_shapes),
                  FmtMs(mem_ms / reps), FmtMs(scan_ms / reps),
                  FmtMs(exists_ms / reps), std::to_string(scan_pages / reps),
                  std::to_string(exists_pages / reps),
                  Fmt(100.0 * hit_rate / reps, 1) + "%"});
  }
  Emit(flags,
       "Ablation: FindShapes on the disk substrate (scan vs exists plans) "
       "vs in-memory",
       table);
  return 0;
}
