// Ablation: depth-synchronous frontier parallelism for the EXISTS plan and
// the dynamic-simplification worklist.
//
// PR 1 parallelized the exists plan per predicate — one worker per whole
// lattice — so a single high-arity predicate pinned one worker no matter
// the pool size, and dynamic simplification expanded its ΔS worklist
// strictly serially. Both now run through chase::FrontierPool, which deals
// the frontier items themselves (candidate shapes) to workers in chunks
// and barriers per depth. This ablation sweeps thread counts against
// exactly the adversarial case the old dealing could not split: ONE
// predicate of growing arity, one lattice. The per-worker expansion
// columns (busy-workers, w-min/w-max: how many candidates each worker
// expanded) prove the lattice frontier itself is being divided — under
// per-predicate dealing every row would show busy-workers=1.
//
// Stage 3 profiles the opposite adversary: thousands of two-item depths,
// where the engine does almost no work per depth and the inter-depth
// machinery dominates. The workers are now spawned once per run and
// synchronized by a reusable generation barrier, so the `us-depth` column
// (per-depth overhead) measures a condvar cycle instead of the thread
// spawn+join every depth used to pay.
//
// NOTE: this container is single-core, so wall-clock parallel gains don't
// show here — the expansion counters do (same caveat as
// ablation_pool_sharding), and the us-depth column is counter-based
// per-depth overhead, not a parallelism measurement. Every configuration
// is checked bit-identical against the serial oracle before its row is
// emitted.

#include <algorithm>
#include <iostream>

#include "exec/frontier_pool.h"
#include "common.h"
#include "core/dynamic_simplification.h"
#include "storage/catalog.h"
#include "storage/shape_finder.h"
#include "storage/shape_source.h"

using namespace chase;
using namespace chase::bench;

namespace {

void WorkerColumns(const FrontierStats& stats, double best_ms,
                   std::vector<std::string>* row) {
  uint64_t busy = 0;
  uint64_t w_min = UINT64_MAX;
  uint64_t w_max = 0;
  for (uint64_t expanded : stats.worker_expanded) {
    if (expanded > 0) ++busy;
    w_min = std::min(w_min, expanded);
    w_max = std::max(w_max, expanded);
  }
  row->push_back(std::to_string(stats.depths));
  // Per-depth overhead in microseconds: on the shallow profile this is
  // almost pure barrier cost (one condvar cycle per depth).
  row->push_back(
      Fmt(best_ms * 1000.0 / std::max<uint64_t>(1, stats.depths), 2));
  row->push_back(std::to_string(stats.items_expanded));
  row->push_back(std::to_string(busy));
  row->push_back(std::to_string(w_min == UINT64_MAX ? 0 : w_min));
  row->push_back(std::to_string(w_max));
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const uint32_t reps = flags.reps != 0 ? flags.reps : 3;
  Rng rng(flags.seed);

  std::vector<std::string> columns = {"stage",   "arity", "threads",
                                      "t-ms",    "speedup", "depths",
                                      "us-depth", "expanded",
                                      "busy-workers", "w-min", "w-max"};
  for (const std::string& name : AccessColumnNames()) {
    columns.push_back(name);
  }
  TablePrinter table(columns);

  // -------------------------------------------------------------------
  // Stage 1: the EXISTS plan on one giant predicate per arity.
  for (uint32_t arity : {5u, 6u, 7u}) {
    DataGenParams params;
    params.preds = 1;
    params.min_arity = arity;
    params.max_arity = arity;
    params.dsize = 64;  // a small repeated domain, so coarse shapes occur
    params.rsize = std::max<uint64_t>(
        1, static_cast<uint64_t>(20'000 * flags.scale));
    params.seed = rng.Next();
    auto data = GenerateData(params);
    if (!data.ok()) {
      std::cerr << data.status() << "\n";
      return 1;
    }
    storage::Catalog catalog(data->database.get());
    storage::MemoryShapeSource source(&catalog);
    auto oracle =
        storage::FindShapes(source, {storage::ShapeFinderMode::kExists, 1});
    if (!oracle.ok()) {
      std::cerr << oracle.status() << "\n";
      return 1;
    }

    double base_ms = 0;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
      double best_ms = 0;
      FrontierStats stats;
      storage::AccessStats access;
      for (uint32_t rep = 0; rep < reps; ++rep) {
        source.stats().Reset();
        storage::FindShapesOptions options{storage::ShapeFinderMode::kExists,
                                           threads};
        options.frontier_stats = &stats;
        Timer timer;
        auto shapes = storage::FindShapes(source, options);
        const double ms = timer.ElapsedMillis();
        if (!shapes.ok() || *shapes != *oracle) {
          std::cerr << "frontier exists mismatch (arity=" << arity
                    << ", threads=" << threads << ")\n";
          return 1;
        }
        best_ms = rep == 0 ? ms : std::min(best_ms, ms);
        access = source.stats();
      }
      if (threads == 1) base_ms = best_ms;
      std::vector<std::string> row = {"exists", std::to_string(arity),
                                      std::to_string(threads),
                                      FmtMs(best_ms),
                                      Fmt(base_ms / std::max(best_ms, 1e-6), 1) +
                                          "x"};
      WorkerColumns(stats, best_ms, &row);
      for (const std::string& value :
           AccessColumnValues(access, source.Io())) {
        row.push_back(value);
      }
      table.AddRow(row);
    }
  }

  // -------------------------------------------------------------------
  // Stage 2: the dynamic-simplification worklist over linear TGDs.
  {
    DataGenParams params;
    params.preds = 50;
    params.min_arity = 1;
    params.max_arity = 5;
    params.dsize = 200;
    params.rsize = std::max<uint64_t>(
        1, static_cast<uint64_t>(10'000 * flags.scale) / params.preds);
    params.seed = rng.Next();
    auto data = GenerateData(params);
    if (!data.ok()) {
      std::cerr << data.status() << "\n";
      return 1;
    }
    TgdGenParams tgd_params;
    tgd_params.ssize = params.preds;
    tgd_params.min_arity = 1;
    tgd_params.max_arity = 5;
    tgd_params.tsize = static_cast<uint64_t>(2'000 * flags.scale);
    tgd_params.tclass = TgdClass::kLinear;
    tgd_params.seed = rng.Next();
    auto tgds = GenerateTgds(*data->schema, tgd_params);
    if (!tgds.ok()) {
      std::cerr << tgds.status() << "\n";
      return 1;
    }
    storage::Catalog catalog(data->database.get());
    storage::MemoryShapeSource source(&catalog);
    auto shapes =
        storage::FindShapes(source, {storage::ShapeFinderMode::kScan, 1});
    if (!shapes.ok()) {
      std::cerr << shapes.status() << "\n";
      return 1;
    }
    auto oracle = DynamicSimplificationFromShapes(*data->schema, *tgds,
                                                  *shapes, 1);
    if (!oracle.ok()) {
      std::cerr << oracle.status() << "\n";
      return 1;
    }

    double base_ms = 0;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
      double best_ms = 0;
      FrontierStats stats;
      for (uint32_t rep = 0; rep < reps; ++rep) {
        Timer timer;
        auto result = DynamicSimplificationFromShapes(*data->schema, *tgds,
                                                      *shapes, threads);
        const double ms = timer.ElapsedMillis();
        if (!result.ok() || result->tgds != oracle->tgds) {
          std::cerr << "frontier simplify mismatch (threads=" << threads
                    << ")\n";
          return 1;
        }
        best_ms = rep == 0 ? ms : std::min(best_ms, ms);
        stats = result->frontier;
      }
      if (threads == 1) base_ms = best_ms;
      std::vector<std::string> row = {"simplify", "-",
                                      std::to_string(threads),
                                      FmtMs(best_ms),
                                      Fmt(base_ms / std::max(best_ms, 1e-6), 1) +
                                          "x"};
      WorkerColumns(stats, best_ms, &row);
      // The worklist reads shapes, not the database: uniform metering
      // columns are zero by construction here.
      for (const std::string& value :
           AccessColumnValues(storage::AccessStats(), storage::IoCounters())) {
        row.push_back(value);
      }
      table.AddRow(row);
    }
  }

  // -------------------------------------------------------------------
  // Stage 3: many shallow depths — a synthetic chain lattice of TWO items
  // per depth (a one-item frontier would take ParallelFor's inline fast
  // path and never touch the barrier), so each depth's expansion is two
  // trivial callbacks and the t-ms column is almost entirely inter-depth
  // machinery. With the persistent pool this is one thread spawn per run
  // plus a barrier cycle per depth; under the old per-depth respawn it was
  // `threads` spawns and joins per depth, dominating exactly this profile.
  {
    const uint64_t depths = std::max<uint64_t>(
        16, static_cast<uint64_t>(4'000 * flags.scale));
    double base_ms = 0;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
      double best_ms = 0;
      FrontierStats stats;
      for (uint32_t rep = 0; rep < reps; ++rep) {
        using Pool = FrontierPool<uint64_t, uint64_t>;
        Pool pool({.threads = threads});
        uint64_t absorbed = 0;
        Timer timer;
        Status status = pool.Run(
            {0, 1},
            [&](unsigned, const uint64_t& item, uint64_t* out,
                Pool::Discoveries* discovered) -> Status {
              *out = item + 2;
              const uint64_t depth = item / 2;
              if (depth + 1 < depths) {
                discovered->Discover(2 * (depth + 1));
                discovered->Discover(2 * (depth + 1) + 1);
              }
              return OkStatus();
            },
            [&](std::span<const uint64_t> frontier,
                std::span<uint64_t>) -> Status {
              absorbed += frontier.size();
              return OkStatus();
            },
            &stats);
        const double ms = timer.ElapsedMillis();
        if (!status.ok() || absorbed != 2 * depths) {
          std::cerr << "shallow-depth chain mismatch (threads=" << threads
                    << ")\n";
          return 1;
        }
        best_ms = rep == 0 ? ms : std::min(best_ms, ms);
      }
      if (threads == 1) base_ms = best_ms;
      std::vector<std::string> row = {"shallow", "-",
                                      std::to_string(threads),
                                      FmtMs(best_ms),
                                      Fmt(base_ms / std::max(best_ms, 1e-6), 1) +
                                          "x"};
      WorkerColumns(stats, best_ms, &row);
      // Synthetic chain: no database access, metering columns are zero.
      for (const std::string& value :
           AccessColumnValues(storage::AccessStats(), storage::IoCounters())) {
        row.push_back(value);
      }
      table.AddRow(row);
    }
  }

  Emit(flags,
       "Ablation: frontier parallelism (EXISTS lattice walk on one giant "
       "predicate; dynamic-simplification worklist; shallow-depth barrier "
       "overhead)",
       table);
  if (!WriteBenchJson(flags, "frontier_parallel", table)) return 1;
  return 0;
}
