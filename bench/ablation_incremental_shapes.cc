// Ablation: incrementally maintained shapes vs recomputation (§10).
//
// The paper's conclusion proposes materializing and incrementally updating
// shape(D) to remove the dominant db-dependent cost (t-shapes) from every
// termination check. This bench quantifies that proposal: starting from a
// database of n-tuples facts, it applies a batch of updates and compares
//
//   * recompute: in-memory FindShapes after the batch (what
//     IsChaseFinite[L] pays today per check), and
//   * incremental: per-update ShapeIndex maintenance (amortized cost paid
//     at write time; the check itself then reads the index for free).
//
// Expected shape of the result: recompute grows linearly with the database
// size while the incremental path depends only on the batch size, so the
// speedup grows without bound as the database grows.

#include <iostream>

#include "common.h"
#include "storage/catalog.h"
#include "storage/shape_finder.h"
#include "storage/shape_index.h"

using namespace chase;
using namespace chase::bench;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const uint32_t reps = flags.reps != 0 ? flags.reps : 3;
  const std::vector<uint64_t> sizes_base = {1'000, 10'000, 50'000, 100'000,
                                            250'000};
  const uint64_t updates = static_cast<uint64_t>(1'000 * flags.scale);

  Rng rng(flags.seed);
  TablePrinter table({"n-tuples", "n-updates", "n-shapes", "t-recompute-ms",
                      "t-incremental-ms", "speedup"});
  for (uint64_t base : sizes_base) {
    const uint64_t rsize =
        std::max<uint64_t>(1, static_cast<uint64_t>(base * flags.scale) / 20);
    double recompute_ms = 0, incremental_ms = 0;
    size_t n_shapes = 0;
    uint64_t n_tuples = 0;
    for (uint32_t rep = 0; rep < reps; ++rep) {
      DataGenParams params;
      params.preds = 20;
      params.min_arity = 1;
      params.max_arity = 5;
      params.dsize = 100'000;
      params.rsize = rsize;
      params.seed = rng.Next();
      auto data = GenerateData(params);
      if (!data.ok()) {
        std::cerr << data.status() << "\n";
        return 1;
      }
      Database& db = *data->database;
      n_tuples = db.TotalFacts();

      // Build the index once (write-time cost, amortized over the
      // database's lifetime, not charged to either side below).
      storage::ShapeIndex index = storage::ShapeIndex::Build(db);

      // Apply the update batch to both the database and the index, timing
      // only the index maintenance.
      Timer timer;
      double batch_ms = 0;
      std::vector<uint32_t> tuple;
      for (uint64_t u = 0; u < updates; ++u) {
        const PredId pred =
            static_cast<PredId>(rng.Below(db.schema().NumPredicates()));
        GenerateShapedTuple(db.schema().Arity(pred), params.dsize, &rng,
                            &tuple);
        timer.Restart();
        index.Insert(pred, tuple);
        batch_ms += timer.ElapsedMillis();
        if (!db.AddFact(pred, tuple).ok()) return 1;
      }
      incremental_ms += batch_ms;

      // The recomputation path scans the (now larger) database.
      storage::Catalog catalog(&db);
      storage::MemoryShapeSource source(&catalog);
      timer.Restart();
      std::vector<Shape> recomputed =
          std::move(storage::FindShapes(source, {})).value();
      recompute_ms += timer.ElapsedMillis();

      if (recomputed != index.CurrentShapes()) {
        std::cerr << "index/recompute mismatch\n";
        return 1;
      }
      n_shapes = recomputed.size();
    }
    recompute_ms /= reps;
    incremental_ms /= reps;
    table.AddRow({std::to_string(n_tuples), std::to_string(updates),
                  std::to_string(n_shapes), FmtMs(recompute_ms),
                  FmtMs(incremental_ms),
                  Fmt(recompute_ms / std::max(incremental_ms, 1e-6), 1) +
                      "x"});
  }
  Emit(flags, "Ablation (Section 10): incremental shape maintenance vs "
              "FindShapes recomputation",
       table);
  return 0;
}
