// Ablation: materialization-based vs acyclicity-based checking (§1.4).
//
// The paper's exploratory analysis found the materialization-based
// algorithms "simply too expensive": on non-terminating inputs they must
// materialize up to the (very large) worst-case bound before concluding.
// This bench runs both checkers on inputs of growing database size and
// reports the runtime and the number of atoms the materialization checker
// had to build (capped to keep the bench bounded; rows marked ">=").

#include <iostream>

#include "common.h"
#include "core/materialization_checker.h"

using namespace chase;
using namespace chase::bench;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const std::vector<uint64_t> db_sizes = {10, 100, 1000, 10000};
  const uint64_t atom_cap =
      static_cast<uint64_t>((flags.full ? 20'000'000 : 2'000'000) *
                            flags.scale);

  Rng rng(flags.seed);
  TablePrinter table({"n-tuples", "verdict", "t-acyclicity-ms",
                      "t-materialization-ms", "atoms-built", "decided"});
  for (uint64_t rsize : db_sizes) {
    // A canonical non-terminating input: guarded successor generation.
    auto schema = std::make_unique<Schema>();
    Rng local = rng.Fork();
    auto preds = DeclarePredicates(schema.get(), "p", 10, 2, 3, &local);
    if (!preds.ok()) {
      std::cerr << preds.status() << "\n";
      return 1;
    }
    Database db(schema.get());
    auto status = PopulateRelations(&db, preds.value(), /*dsize=*/10000,
                                    rsize, &local);
    if (!status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
    TgdGenParams params;
    params.ssize = 10;
    params.min_arity = 2;
    params.max_arity = 3;
    params.tsize = 20;
    params.tclass = TgdClass::kLinear;
    params.existential_percent = 25;
    params.seed = 12345;  // same rules for every database size
    auto tgds = GenerateTgds(*schema, params);
    if (!tgds.ok()) {
      std::cerr << tgds.status() << "\n";
      return 1;
    }

    Timer timer;
    auto verdict = IsChaseFiniteL(db, tgds.value());
    const double acyclicity_ms = timer.ElapsedMillis();
    if (!verdict.ok()) {
      std::cerr << verdict.status() << "\n";
      return 1;
    }

    MaterializationOptions options;
    options.atom_budget = atom_cap;
    timer.Restart();
    auto report = MaterializationCheck(db, tgds.value(), options);
    const double materialization_ms = timer.ElapsedMillis();
    if (!report.ok()) {
      std::cerr << report.status() << "\n";
      return 1;
    }
    std::string atoms = std::to_string(report->atoms);
    if (!report->decided && report->outcome == ChaseOutcome::kAtomLimit) {
      atoms = ">=" + atoms;
    }
    table.AddRow({std::to_string(db.TotalFacts()),
                  verdict.value() ? "finite" : "infinite",
                  FmtMs(acyclicity_ms), FmtMs(materialization_ms), atoms,
                  report->decided ? "yes" : "no (capped)"});
  }
  Emit(flags,
       "Ablation: acyclicity-based vs materialization-based termination "
       "checking",
       table);
  return 0;
}
