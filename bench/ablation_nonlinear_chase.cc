// Ablation: parallel homomorphism search for non-linear (multi-atom-body)
// rules in the chase engine.
//
// Until this engine landed, frontier_threads silently fell back to serial
// enumeration the moment any rule had two body atoms: the round-level split
// only dealt delta ranges of a single body atom, and buffering a multi-atom
// join's full output would have been unbounded. The engine now partitions
// each (rule, delta-position) task's homomorphism space into range
// fragments (chase/body_partition.h) and runs them on the persistent
// worker pool under the budgeted enumerate→pause→apply→resume protocol, so
// non-linear rounds parallelize with peak buffered homomorphisms capped at
// threads × hom_budget.
//
// The sweep crosses the three knobs that matter:
//  * join family — star (one hot hub row whose fan-out forces the
//    join-split path), chain (role composition), triangle (cyclic join),
//    cross (disconnected body, the pure cross-product whose unbudgeted
//    buffering would explode);
//  * threads 1..8 (1 = the untouched serial streaming oracle);
//  * hom_budget, from the 4096 default down to 1 (an epoch per
//    homomorphism per fragment — maximal pause/resume traffic).
//
// Columns: peak-buf is the measured ChaseResult::peak_buffered_homs (its
// bound, threads × budget, is in the bud-bound column beside it), and
// prefiltered counts restricted-variant triggers the workers proved
// satisfied against the frozen prefix. Every configuration is checked
// bit-identical against the serial oracle — outcome, rounds, trigger
// counts, and the instance's insertion order — before its row is emitted.
//
// NOTE: this container is single-core, so wall-clock parallel gains don't
// show here (same caveat as ablation_frontier_parallel); the equivalence
// checks, the peak-buffer accounting, and the pause/resume overhead trend
// across budgets are the signal. Also emits BENCH_nonlinear_chase.json
// (see WriteBenchJson) for CI to archive.

#include <iostream>
#include <string>
#include <vector>

#include "chase/chase_engine.h"
#include "common.h"

using namespace chase;
using namespace chase::bench;

namespace {

struct AtomList {
  std::vector<GroundAtom> atoms;
};

AtomList CollectAtoms(const Instance& instance) {
  AtomList list;
  instance.ForEachAtom(
      [&](const GroundAtom& atom) { list.atoms.push_back(atom); });
  return list;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const uint32_t reps = flags.reps != 0 ? flags.reps : 3;
  Rng rng(flags.seed);

  TablePrinter table({"family", "variant", "threads", "budget", "t-ms",
                      "speedup", "rounds", "triggers", "prefiltered",
                      "peak-buf", "bud-bound", "atoms"});

  const NonLinearFamily families[] = {
      NonLinearFamily::kStar, NonLinearFamily::kChain,
      NonLinearFamily::kTriangle, NonLinearFamily::kCross};
  for (NonLinearFamily family : families) {
    DataGenParams data_params;
    data_params.preds = 6;
    data_params.min_arity = 2;
    data_params.max_arity = 3;
    data_params.dsize = 64;
    data_params.rsize = std::max<uint64_t>(
        4, static_cast<uint64_t>(60 * flags.scale));
    data_params.seed = rng.Next();
    auto data = GenerateData(data_params);
    if (!data.ok()) {
      std::cerr << data.status() << "\n";
      return 1;
    }

    NonLinearGenParams tgd_params;
    tgd_params.ssize = data->schema->NumPredicates();
    tgd_params.min_arity = 2;
    tgd_params.max_arity = 3;
    tgd_params.tsize = 6;
    tgd_params.family = family;
    tgd_params.body_atoms = family == NonLinearFamily::kTriangle ? 3 : 2;
    tgd_params.existential_percent = 20;
    tgd_params.seed = rng.Next();
    auto tgds = GenerateNonLinearTgds(*data->schema, tgd_params);
    if (!tgds.ok()) {
      std::cerr << tgds.status() << "\n";
      return 1;
    }

    for (ChaseVariant variant :
         {ChaseVariant::kSemiOblivious, ChaseVariant::kRestricted}) {
      ChaseOptions serial_options;
      serial_options.variant = variant;
      serial_options.max_atoms = std::max<uint64_t>(
          500, static_cast<uint64_t>(20'000 * flags.scale));
      auto serial = RunChase(*data->database, *tgds, serial_options);
      if (!serial.ok()) {
        std::cerr << serial.status() << "\n";
        return 1;
      }
      const AtomList serial_atoms = CollectAtoms(serial->instance);

      double base_ms = 0;
      for (unsigned threads : {1u, 2u, 4u, 8u}) {
        for (uint64_t budget : {uint64_t{1}, uint64_t{64}, uint64_t{4096}}) {
          // threads=1 ignores the budget (serial streaming): one row.
          if (threads == 1 && budget != 4096) continue;
          double best_ms = 0;
          uint64_t rounds = 0, triggers = 0, prefiltered = 0, peak = 0,
                   atoms = 0;
          for (uint32_t rep = 0; rep < reps; ++rep) {
            ChaseOptions options = serial_options;
            options.frontier_threads = threads;
            options.hom_budget = budget;
            Timer timer;
            auto result = RunChase(*data->database, *tgds, options);
            const double ms = timer.ElapsedMillis();
            if (!result.ok() || result->outcome != serial->outcome ||
                result->rounds != serial->rounds ||
                result->triggers_fired != serial->triggers_fired ||
                CollectAtoms(result->instance).atoms != serial_atoms.atoms) {
              std::cerr << "non-linear chase mismatch (family="
                        << NonLinearFamilyName(family)
                        << ", variant=" << ChaseVariantName(variant)
                        << ", threads=" << threads << ", budget=" << budget
                        << ")\n";
              return 1;
            }
            if (result->peak_buffered_homs > threads * budget) {
              std::cerr << "peak-buffer bound violated\n";
              return 1;
            }
            best_ms = rep == 0 ? ms : std::min(best_ms, ms);
            rounds = result->rounds;
            triggers = result->triggers_fired;
            prefiltered = result->triggers_prefiltered;
            peak = result->peak_buffered_homs;
            atoms = result->instance.NumAtoms();
          }
          if (threads == 1) base_ms = best_ms;
          table.AddRow({NonLinearFamilyName(family),
                        ChaseVariantName(variant), std::to_string(threads),
                        threads == 1 ? "-" : std::to_string(budget),
                        FmtMs(best_ms),
                        Fmt(base_ms / std::max(best_ms, 1e-6), 1) + "x",
                        std::to_string(rounds), std::to_string(triggers),
                        std::to_string(prefiltered), std::to_string(peak),
                        threads == 1
                            ? "-"
                            : std::to_string(uint64_t{threads} * budget),
                        std::to_string(atoms)});
        }
      }
    }
  }

  Emit(flags,
       "Ablation: parallel homomorphism search for non-linear rules "
       "(partitioned body joins, budgeted enumerate/pause/apply/resume)",
       table);
  if (!WriteBenchJson(flags, "nonlinear_chase", table)) return 1;
  return 0;
}
