// Ablation: parallel in-memory FindShapes.
//
// The paper's conclusion calls for improving the db-dependent component;
// besides incremental maintenance (ablation_incremental_shapes), the
// in-memory scan parallelizes trivially across relations and row ranges.
// This bench sweeps the thread count on one large generated database and
// reports speedup over the serial scan.

#include <iostream>

#include "common.h"
#include "storage/catalog.h"
#include "storage/shape_finder.h"
#include "storage/shape_source.h"

using namespace chase;
using namespace chase::bench;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const uint32_t reps = flags.reps != 0 ? flags.reps : 3;
  const uint64_t rsize = static_cast<uint64_t>(50'000 * flags.scale);

  DataGenParams params;
  params.preds = 40;
  params.min_arity = 1;
  params.max_arity = 5;
  params.dsize = 1'000'000;
  params.rsize = rsize;
  params.seed = flags.seed;
  auto data = GenerateData(params);
  if (!data.ok()) {
    std::cerr << data.status() << "\n";
    return 1;
  }
  storage::Catalog catalog(data->database.get());
  storage::MemoryShapeSource source(&catalog);
  Timer timer;
  std::vector<Shape> expected =
      std::move(storage::FindShapes(source, {storage::ShapeFinderMode::kScan,
                                             /*threads=*/1}))
          .value();
  double serial_ms = timer.ElapsedMillis();
  for (uint32_t rep = 1; rep < reps; ++rep) {
    timer.Restart();
    (void)storage::FindShapes(source,
                              {storage::ShapeFinderMode::kScan, 1});
    serial_ms = std::min(serial_ms, timer.ElapsedMillis());
  }

  TablePrinter table({"threads", "n-tuples", "n-shapes", "t-shapes-ms",
                      "speedup"});
  table.AddRow({"serial", std::to_string(data->database->TotalFacts()),
                std::to_string(expected.size()), FmtMs(serial_ms), "1.0x"});
  for (unsigned threads : {2u, 4u, 8u, 16u}) {
    double best_ms = 0;
    for (uint32_t rep = 0; rep < reps; ++rep) {
      timer.Restart();
      std::vector<Shape> shapes =
          std::move(storage::FindShapes(
                        source, {storage::ShapeFinderMode::kScan, threads}))
              .value();
      const double ms = timer.ElapsedMillis();
      if (shapes != expected) {
        std::cerr << "parallel/serial mismatch\n";
        return 1;
      }
      best_ms = rep == 0 ? ms : std::min(best_ms, ms);
    }
    table.AddRow({std::to_string(threads),
                  std::to_string(data->database->TotalFacts()),
                  std::to_string(expected.size()), FmtMs(best_ms),
                  Fmt(serial_ms / std::max(best_ms, 1e-6), 1) + "x"});
  }
  Emit(flags, "Ablation: parallel in-memory FindShapes (thread sweep)",
       table);
  if (!WriteBenchJson(flags, "parallel_shapes", table)) return 1;
  return 0;
}
