// Ablation: buffer-pool sharding and scan read-ahead for parallel disk
// FindShapes.
//
// PR 1/2 made the scan work-partitioned across threads; this ablation
// isolates the two pager-side scale levers added on top:
//
//  * pool shards: the page table + latch are partitioned by a mixed hash of
//    the page id, so concurrent workers faulting different pages stop
//    serializing on one global pool mutex. Swept over thread counts on a
//    cold pool, where every page access takes the miss path (the contended
//    one).
//
//  * prefetch: ScanRange feeds the next K pages of its range to background
//    read-ahead threads while the current page's tuples are hashed, so
//    cold-pool I/O stalls overlap with compute. The prefetched column shows
//    the fault traffic moving off the scan threads (misses become hits).
//
// Each configuration scans a freshly opened database (cold pool) and then
// re-scans it (warm pool) with the uniform access/I-O metering columns of
// the other FindShapes benches. Speedups are against the 1-thread,
// 1-shard, no-prefetch cold scan.

#include <cstdio>
#include <iostream>

#include "common.h"
#include "pager/disk_database.h"
#include "pager/disk_shape_source.h"
#include "storage/catalog.h"
#include "storage/shape_finder.h"
#include "storage/shape_source.h"

using namespace chase;
using namespace chase::bench;

namespace {

// Deliberately smaller than the workload's page count: scans must fault
// pages all the way through (the regime the sharding and the read-ahead
// exist for). "warm" rows rescan the same pool — with data larger than the
// pool they stay fault-heavy, which is exactly the sustained-scan serving
// regime.
constexpr uint32_t kFrames = 128;

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const uint32_t reps = flags.reps != 0 ? flags.reps : 3;
  Rng rng(flags.seed);

  DataGenParams params;
  params.preds = 20;
  params.min_arity = 1;
  params.max_arity = 5;
  params.dsize = 1'000'000;
  params.rsize = std::max<uint64_t>(
      1, static_cast<uint64_t>(200'000 * flags.scale) / params.preds);
  params.seed = rng.Next();
  auto data = GenerateData(params);
  if (!data.ok()) {
    std::cerr << data.status() << "\n";
    return 1;
  }

  storage::Catalog catalog(data->database.get());
  storage::MemoryShapeSource memory(&catalog);
  auto expected =
      storage::FindShapes(memory, {storage::ShapeFinderMode::kScan, 1});
  if (!expected.ok()) {
    std::cerr << expected.status() << "\n";
    return 1;
  }

  const std::string path = "/tmp/chase_bench_pool_sharding.db";
  {
    auto created =
        pager::DiskDatabase::Create(path, *data->database, kFrames);
    if (!created.ok()) {
      std::cerr << created.status() << "\n";
      return 1;
    }
  }

  std::vector<std::string> columns = {"threads",  "pool-shards", "prefetch",
                                      "pool",     "t-scan-ms",   "speedup"};
  for (const std::string& name : AccessColumnNames()) {
    columns.push_back(name);
  }
  TablePrinter table(columns);

  double base_ms = 0;  // 1 thread, 1 shard, no prefetch, cold
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    for (unsigned shards : {1u, 4u, 16u}) {
      for (unsigned prefetch : {0u, 16u}) {
        double cold_ms = 0, warm_ms = 0;
        storage::AccessStats cold_access, warm_access;
        storage::IoCounters cold_io, warm_io;
        for (uint32_t rep = 0; rep < reps; ++rep) {
          // Fresh open per rep: the pool starts empty (cold).
          auto disk_db = pager::DiskDatabase::Open(path, kFrames, shards);
          if (!disk_db.ok()) {
            std::cerr << disk_db.status() << "\n";
            return 1;
          }
          pager::DiskShapeSource source(disk_db->get());
          const storage::FindShapesOptions options{
              storage::ShapeFinderMode::kScan, threads, 0, prefetch};

          for (bool warm : {false, true}) {
            source.stats().Reset();
            const storage::IoCounters before = source.Io();
            Timer timer;
            auto shapes = storage::FindShapes(source, options);
            const double ms = timer.ElapsedMillis();
            if (!shapes.ok() || *shapes != expected.value()) {
              std::cerr << "pool-sharding scan mismatch (threads=" << threads
                        << ", shards=" << shards
                        << ", prefetch=" << prefetch << ")\n";
              return 1;
            }
            const storage::IoCounters io = source.Io().Since(before);
            if (warm) {
              warm_ms = rep == 0 ? ms : std::min(warm_ms, ms);
              warm_access = source.stats();
              warm_io = io;
            } else {
              cold_ms = rep == 0 ? ms : std::min(cold_ms, ms);
              cold_access = source.stats();
              cold_io = io;
            }
          }
        }
        if (threads == 1 && shards == 1 && prefetch == 0) {
          base_ms = cold_ms;
        }
        for (bool warm : {false, true}) {
          const double ms = warm ? warm_ms : cold_ms;
          std::vector<std::string> row = {
              std::to_string(threads), std::to_string(shards),
              std::to_string(prefetch), warm ? "warm" : "cold", FmtMs(ms),
              Fmt(base_ms / std::max(ms, 1e-6), 1) + "x"};
          for (const std::string& value : AccessColumnValues(
                   warm ? warm_access : cold_access,
                   warm ? warm_io : cold_io)) {
            row.push_back(value);
          }
          table.AddRow(row);
        }
      }
    }
  }
  std::remove(path.c_str());
  Emit(flags,
       "Ablation: buffer-pool sharding x scan read-ahead (parallel disk "
       "FindShapes, cold vs warm pool)",
       table);
  if (!WriteBenchJson(flags, "pool_sharding", table)) return 1;
  return 0;
}
