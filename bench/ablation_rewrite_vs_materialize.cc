// Ablation: UCQ rewriting vs chase materialization for certain answers.
//
// The paper's motivation for chase termination is materialization-based
// query answering; for linear TGDs the classical alternative compiles Σ
// into the query (linear TGDs are FO-rewritable). This bench puts numbers
// on the trade-off on DL-Lite-style hierarchies:
//
//   * materialize: IsChaseFinite[L] guard + semi-oblivious chase + one
//     query evaluation. Cost grows with the database and is only possible
//     when the chase terminates — but amortizes over many queries.
//   * rewrite: compute the UCQ rewriting once per query and evaluate its
//     disjuncts over D directly. Database-size-independent compile step,
//     works even for non-terminating Σ, but the rewriting can be large.
//
// Both sides must (and do — checked every run) return identical answers.

#include <iostream>

#include "chase/chase_engine.h"
#include "common.h"
#include "core/is_chase_finite.h"
#include "logic/parser.h"
#include "query/conjunctive_query.h"
#include "query/rewriting.h"

using namespace chase;
using namespace chase::bench;

namespace {

// A layered class hierarchy of `depth` unary predicates c0 ⊆ c1 ⊆ ... plus
// a role with domain/range axioms — the shape of DL-Lite ontologies.
std::string HierarchyRules(int depth) {
  std::string text;
  for (int i = 0; i + 1 < depth; ++i) {
    text += "c" + std::to_string(i) + "(X) -> c" + std::to_string(i + 1) +
            "(X).\n";
  }
  text += "r(X, Y) -> c0(X).\n";
  text += "c" + std::to_string(depth - 1) + "(X) -> r(X, Z).\n";
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const std::vector<int> depths = {4, 8, 16, 32};
  const uint64_t facts = static_cast<uint64_t>(20'000 * flags.scale);

  Rng rng(flags.seed);
  TablePrinter table({"hierarchy-depth", "n-facts", "n-disjuncts",
                      "t-rewrite-ms", "t-rewrite-eval-ms", "chase-atoms",
                      "t-materialize-ms", "n-answers"});
  for (int depth : depths) {
    Program program = [&] {
      auto parsed = ParseProgram(HierarchyRules(depth));
      return std::move(parsed).value();
    }();
    // Facts at the bottom of the hierarchy and role edges.
    Database& db = *program.database;
    const PredId c0 = program.schema->FindPredicate("c0").value();
    const PredId r = program.schema->FindPredicate("r").value();
    db.EnsureAnonymousDomain(facts);
    for (uint64_t i = 0; i < facts / 2; ++i) {
      std::vector<uint32_t> unary = {static_cast<uint32_t>(rng.Below(facts))};
      if (!db.AddFact(c0, unary).ok()) return 1;
      std::vector<uint32_t> binary = {
          static_cast<uint32_t>(rng.Below(facts)),
          static_cast<uint32_t>(rng.Below(facts))};
      if (!db.AddFact(r, binary).ok()) return 1;
    }

    auto cq = query::ParseQuery(
        "q(X) :- c" + std::to_string(depth - 1) + "(X).",
        program.schema.get());
    if (!cq.ok()) {
      std::cerr << cq.status() << "\n";
      return 1;
    }

    Timer timer;
    auto rewriting = query::RewriteUnderTgds(*cq, program.tgds);
    const double rewrite_ms = timer.ElapsedMillis();
    if (!rewriting.ok()) {
      std::cerr << rewriting.status() << "\n";
      return 1;
    }
    timer.Restart();
    std::vector<query::Answer> rewritten = rewriting->Evaluate(db);
    const double rewrite_eval_ms = timer.ElapsedMillis();

    timer.Restart();
    auto materialized = query::CertainAnswers(db, program.tgds, *cq);
    const double materialize_ms = timer.ElapsedMillis();
    if (!materialized.ok()) {
      std::cerr << materialized.status() << "\n";
      return 1;
    }
    if (rewritten != materialized->answers) {
      std::cerr << "rewriting/materialization answer mismatch\n";
      return 1;
    }
    table.AddRow({std::to_string(depth), std::to_string(db.TotalFacts()),
                  std::to_string(rewriting->disjuncts.size()),
                  FmtMs(rewrite_ms), FmtMs(rewrite_eval_ms),
                  std::to_string(materialized->chase_atoms),
                  FmtMs(materialize_ms),
                  std::to_string(rewritten.size())});
  }
  Emit(flags,
       "Ablation: UCQ rewriting vs chase materialization (certain answers "
       "on DL-Lite-style hierarchies)",
       table);
  return 0;
}
