// Ablation: the sharded shape index (src/index/) — build scaling and
// maintain-vs-rebuild.
//
// Two tables, with the uniform access/I-O metering columns of the other
// FindShapes benches:
//
//  * build scaling: ShardedShapeIndex::Build over the in-memory source,
//    sweeping (threads, shards); speedup is against the 1-thread build.
//    Shards beyond the thread count cost nothing at build time (workers
//    fold thread-local counters, one latch acquisition per shard), so this
//    mostly shows the range-partitioned scan scaling of PR 1 carried over
//    to index construction.
//
//  * maintain vs rebuild: after a batch of updates, compare per-update
//    write-through maintenance (timed across `threads` concurrent writers —
//    the case sharding exists for) against recomputing shape(D) with a
//    parallel scan. The incremental path depends only on the batch size,
//    the rebuild on the database size, so the speedup grows with the data.

#include <iostream>
#include <thread>

#include "common.h"
#include "index/sharded_shape_index.h"
#include "storage/catalog.h"
#include "storage/shape_finder.h"
#include "storage/shape_source.h"

using namespace chase;
using namespace chase::bench;

namespace {

StatusOr<GeneratedData> MakeDatabase(uint64_t rsize, uint64_t seed) {
  DataGenParams params;
  params.preds = 40;
  params.min_arity = 1;
  params.max_arity = 5;
  params.dsize = 1'000'000;
  params.rsize = rsize;
  params.seed = seed;
  return GenerateData(params);
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const uint32_t reps = flags.reps != 0 ? flags.reps : 3;
  Rng rng(flags.seed);

  // -------------------------------------------------------------------------
  // Build scaling.
  auto data = MakeDatabase(static_cast<uint64_t>(25'000 * flags.scale),
                           rng.Next());
  if (!data.ok()) {
    std::cerr << data.status() << "\n";
    return 1;
  }
  storage::Catalog catalog(data->database.get());
  storage::MemoryShapeSource source(&catalog);

  std::vector<std::string> build_columns = {"threads", "shards", "n-tuples",
                                            "n-shapes", "t-build-ms",
                                            "speedup"};
  for (const std::string& name : AccessColumnNames()) {
    build_columns.push_back(name);
  }
  TablePrinter build_table(build_columns);
  double serial_ms = 0;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    for (unsigned shards : {1u, 16u, 64u}) {
      double best_ms = 0;
      size_t n_shapes = 0;
      for (uint32_t rep = 0; rep < reps; ++rep) {
        catalog.stats().Reset();
        Timer timer;
        auto built = index::ShardedShapeIndex::Build(source,
                                                     {shards, threads});
        const double ms = timer.ElapsedMillis();
        if (!built.ok()) {
          std::cerr << built.status() << "\n";
          return 1;
        }
        n_shapes = built->NumShapes();
        best_ms = rep == 0 ? ms : std::min(best_ms, ms);
      }
      if (threads == 1 && shards == 1) serial_ms = best_ms;
      std::vector<std::string> row = {
          std::to_string(threads), std::to_string(shards),
          std::to_string(data->database->TotalFacts()),
          std::to_string(n_shapes), FmtMs(best_ms),
          Fmt(serial_ms / std::max(best_ms, 1e-6), 1) + "x"};
      for (const std::string& value :
           AccessColumnValues(catalog.stats(), source.Io())) {
        row.push_back(value);
      }
      build_table.AddRow(row);
    }
  }
  Emit(flags, "Ablation: sharded shape index build (thread x shard sweep)",
       build_table);

  // -------------------------------------------------------------------------
  // Maintain vs rebuild.
  const uint64_t updates = static_cast<uint64_t>(4'000 * flags.scale);
  std::vector<std::string> maint_columns = {"n-tuples", "n-updates",
                                            "threads", "t-maintain-ms",
                                            "t-rebuild-ms", "speedup"};
  TablePrinter maint_table(maint_columns);
  for (uint64_t base : {10'000, 50'000, 250'000}) {
    const uint64_t rsize =
        std::max<uint64_t>(1, static_cast<uint64_t>(base * flags.scale) / 40);
    const uint64_t base_seed = rng.Next();
    uint64_t n_tuples = 0;

    for (unsigned threads : {1u, 4u}) {
      double maintain_ms = 0, rebuild_ms = 0;
      for (uint32_t rep = 0; rep < reps; ++rep) {
        // Fresh database per rep (same seed, so identical data): the batch
        // below mutates it, and rebuild cost must be measured at a fixed
        // size for rows to be comparable.
        auto grown = MakeDatabase(rsize, base_seed);
        if (!grown.ok()) {
          std::cerr << grown.status() << "\n";
          return 1;
        }
        Database& db = *grown->database;
        const Schema& schema = db.schema();
        n_tuples = db.TotalFacts();
        index::ShardedShapeIndex index =
            index::ShardedShapeIndex::Build(db);

        // Pre-generate the update batch, dealt round-robin to writers.
        std::vector<std::pair<PredId, std::vector<uint32_t>>> batch;
        batch.reserve(updates);
        std::vector<uint32_t> tuple;
        for (uint64_t u = 0; u < updates; ++u) {
          const PredId pred =
              static_cast<PredId>(rng.Below(schema.NumPredicates()));
          GenerateShapedTuple(schema.Arity(pred), 1'000'000, &rng, &tuple);
          batch.emplace_back(pred, tuple);
        }

        Timer timer;
        if (threads <= 1) {
          for (const auto& [pred, t] : batch) index.Insert(pred, t);
        } else {
          std::vector<std::thread> workers;
          workers.reserve(threads);
          for (unsigned w = 0; w < threads; ++w) {
            workers.emplace_back([&, w] {
              for (size_t i = w; i < batch.size(); i += threads) {
                index.Insert(batch[i].first, batch[i].second);
              }
            });
          }
          for (std::thread& worker : workers) worker.join();
        }
        maintain_ms += timer.ElapsedMillis();

        // The rebuild path pays a full parallel scan of the grown database.
        for (const auto& [pred, t] : batch) {
          if (!db.AddFact(pred, t).ok()) return 1;
        }
        storage::Catalog grown_catalog(&db);
        storage::MemoryShapeSource grown_source(&grown_catalog);
        timer.Restart();
        auto rebuilt = index::ShardedShapeIndex::Build(
            grown_source, {0, threads});
        rebuild_ms += timer.ElapsedMillis();
        if (!rebuilt.ok()) {
          std::cerr << rebuilt.status() << "\n";
          return 1;
        }
        if (rebuilt->CurrentShapes() != index.CurrentShapes()) {
          std::cerr << "maintain/rebuild mismatch\n";
          return 1;
        }
      }
      maintain_ms /= reps;
      rebuild_ms /= reps;
      maint_table.AddRow(
          {std::to_string(n_tuples), std::to_string(updates),
           std::to_string(threads), FmtMs(maintain_ms), FmtMs(rebuild_ms),
           Fmt(rebuild_ms / std::max(maintain_ms, 1e-6), 1) + "x"});
    }
  }
  Emit(flags,
       "Ablation: write-through maintenance vs parallel index rebuild",
       maint_table);
  // Two tables, one artifact: {"build": [...], "maintain": [...]} — two
  // plain WriteBenchJson calls would fight over a single --json-out path.
  if (!WriteBenchJsonSections(flags, "sharded_index",
                              {{"build", &build_table},
                               {"maintain", &maint_table}})) {
    return 1;
  }
  return 0;
}
