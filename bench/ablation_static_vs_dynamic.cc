// Ablation: static vs dynamic simplification (§4.2).
//
// The paper reports that naively materializing simple(Σ) is not scalable
// (exponential in arity) and that the dynamically simplified sets are on
// average ~5x smaller, up to ~1000x. This bench measures |simple(Σ)|,
// |simple_D(Σ)|, their ratio, and the wall-clock of both pipelines.

#include <iostream>

#include "common.h"
#include "core/dynamic_simplification.h"
#include "core/simplification.h"

using namespace chase;
using namespace chase::bench;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const uint32_t reps = flags.reps != 0 ? flags.reps : 3;
  // Sweep the body arity: the static blow-up is Bell(arity).
  const std::vector<uint32_t> arities = {2, 3, 4, 5, 6, 7};
  const uint64_t rules = static_cast<uint64_t>(500 * flags.scale);
  constexpr uint64_t kStaticCap = 5'000'000;

  Rng rng(flags.seed);
  TablePrinter table({"max-arity", "n-rules", "|simple(S)|",
                      "|simple_D(S)|", "ratio", "t-static-ms",
                      "t-dynamic-ms"});
  for (uint32_t arity : arities) {
    double static_size = 0, dynamic_size = 0;
    double static_ms = 0, dynamic_ms = 0;
    bool static_capped = false;
    for (uint32_t rep = 0; rep < reps; ++rep) {
      DataGenParams data_params;
      data_params.preds = 100;
      data_params.min_arity = 1;
      data_params.max_arity = arity;
      data_params.dsize = 10000;
      data_params.rsize = 200;
      data_params.seed = rng.Next();
      auto data = GenerateData(data_params);
      if (!data.ok()) {
        std::cerr << data.status() << "\n";
        return 1;
      }
      TgdGenParams tgd_params;
      tgd_params.ssize = 100;
      tgd_params.min_arity = 1;
      tgd_params.max_arity = arity;
      tgd_params.tsize = rules;
      tgd_params.tclass = TgdClass::kLinear;
      tgd_params.seed = rng.Next();
      auto tgds = GenerateTgds(*data->schema, tgd_params);
      if (!tgds.ok()) {
        std::cerr << tgds.status() << "\n";
        return 1;
      }

      Timer timer;
      auto full = StaticSimplification(*data->schema, tgds.value(),
                                       kStaticCap);
      static_ms += timer.ElapsedMillis();
      if (full.ok()) {
        static_size += static_cast<double>(full->tgds.size());
      } else {
        static_capped = true;
        static_size +=
            static_cast<double>(StaticSimplificationSize(tgds.value()));
      }

      timer.Restart();
      auto dynamic = DynamicSimplification(*data->database, tgds.value());
      dynamic_ms += timer.ElapsedMillis();
      if (!dynamic.ok()) {
        std::cerr << dynamic.status() << "\n";
        return 1;
      }
      dynamic_size += static_cast<double>(dynamic->tgds.size());
    }
    std::string static_label = Fmt(static_size / reps, 0);
    if (static_capped) static_label += " (capped)";
    table.AddRow({std::to_string(arity), std::to_string(rules),
                  static_label, Fmt(dynamic_size / reps, 0),
                  Fmt(static_size / std::max(1.0, dynamic_size), 1),
                  FmtMs(static_ms / reps), FmtMs(dynamic_ms / reps)});
  }
  Emit(flags,
       "Ablation: static vs dynamic simplification (|simple| vs |simple_D|)",
       table);
  if (!WriteBenchJson(flags, "static_vs_dynamic", table)) return 1;
  return 0;
}
