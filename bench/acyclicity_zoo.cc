// The acyclicity zoo: verdict rates and runtimes of weak acyclicity, joint
// acyclicity, super-weak acyclicity, MFA, and the exact uniform check
// (IsChaseFiniteUniform, linear TGDs only) on generated rule sets.
//
// This extends the paper's evaluation with the uniform (database-
// independent) termination criteria from the wider literature that the
// introduction situates the work against. Two readings matter: the
// *acceptance rate* column shows how much termination each notion proves
// (WA ≤ JA ≤ SWA ≤ MFA ≤ exact, enforced by property tests), and the
// runtime columns show what the extra power costs — MFA chases the critical
// instance, so it is orders of magnitude slower than the syntactic checks,
// mirroring the paper's observation that materialization-based checking
// does not scale.

#include <iostream>

#include "acyclicity/joint_acyclicity.h"
#include "acyclicity/mfa.h"
#include "acyclicity/super_weak_acyclicity.h"
#include "acyclicity/uniform.h"
#include "common.h"
#include "core/weak_acyclicity.h"

using namespace chase;
using namespace chase::bench;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const uint32_t sets = flags.reps != 0 ? flags.reps : 60;
  const std::vector<uint64_t> rule_counts = {
      10, 50, 100, static_cast<uint64_t>(500 * flags.scale)};

  Rng rng(flags.seed);
  TablePrinter table({"n-rules", "wa%", "ja%", "swa%", "mfa%", "exact%",
                      "t-wa-ms", "t-ja-ms", "t-swa-ms", "t-mfa-ms",
                      "t-exact-ms", "mfa-timeouts"});
  for (uint64_t n_rules : rule_counts) {
    uint32_t accept[5] = {0, 0, 0, 0, 0};
    double time_ms[5] = {0, 0, 0, 0, 0};
    uint32_t mfa_timeouts = 0;
    for (uint32_t s = 0; s < sets; ++s) {
      Schema schema;
      Rng local(rng.Next());
      auto preds = DeclarePredicates(&schema, "p", 20, 1, 3, &local);
      if (!preds.ok()) {
        std::cerr << preds.status() << "\n";
        return 1;
      }
      TgdGenParams params;
      params.ssize = 20;
      params.min_arity = 1;
      params.max_arity = 3;
      params.tsize = n_rules;
      params.tclass = TgdClass::kLinear;
      params.existential_percent = 20;
      params.seed = local.Next();
      auto tgds = GenerateTgds(schema, params);
      if (!tgds.ok()) {
        std::cerr << tgds.status() << "\n";
        return 1;
      }

      Timer timer;
      const bool wa = IsWeaklyAcyclic(schema, tgds.value());
      time_ms[0] += timer.ElapsedMillis();

      timer.Restart();
      const bool ja = acyclicity::IsJointlyAcyclic(schema, tgds.value());
      time_ms[1] += timer.ElapsedMillis();

      timer.Restart();
      const bool swa =
          acyclicity::IsSuperWeaklyAcyclic(schema, tgds.value());
      time_ms[2] += timer.ElapsedMillis();

      timer.Restart();
      acyclicity::MfaOptions mfa_options;
      mfa_options.max_atoms = 100'000;
      auto mfa =
          acyclicity::IsModelFaithfulAcyclic(schema, tgds.value(),
                                             mfa_options);
      time_ms[3] += timer.ElapsedMillis();
      if (!mfa.ok()) ++mfa_timeouts;

      timer.Restart();
      auto exact = acyclicity::IsChaseFiniteUniform(schema, tgds.value());
      time_ms[4] += timer.ElapsedMillis();
      if (!exact.ok()) {
        std::cerr << exact.status() << "\n";
        return 1;
      }

      accept[0] += wa;
      accept[1] += ja;
      accept[2] += swa;
      accept[3] += mfa.ok() && mfa.value();
      accept[4] += exact.value();
    }
    auto pct = [&](uint32_t count) {
      return Fmt(100.0 * count / sets, 0) + "%";
    };
    table.AddRow({std::to_string(n_rules), pct(accept[0]), pct(accept[1]),
                  pct(accept[2]), pct(accept[3]), pct(accept[4]),
                  FmtMs(time_ms[0] / sets), FmtMs(time_ms[1] / sets),
                  FmtMs(time_ms[2] / sets), FmtMs(time_ms[3] / sets),
                  FmtMs(time_ms[4] / sets), std::to_string(mfa_timeouts)});
  }
  Emit(flags,
       "Acyclicity zoo: uniform termination criteria on linear TGDs "
       "(acceptance rates and per-set runtime)",
       table);
  return 0;
}
