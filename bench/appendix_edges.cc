// Appendix plot: average number of edges (n-edges) in the dependency graph
// of the dynamically simplified TGD sets vs n-rules, per predicate profile.
// The paper's point: for small predicate profiles the edge count saturates
// (many TGDs contribute the same, deduplicated edges), which is why the
// linear trends of Figures 6/7 wash out for large rule counts.

#include <iostream>

#include "common.h"

using namespace chase;
using namespace chase::bench;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const uint64_t max_rules = static_cast<uint64_t>(
      (flags.full ? 1'000'000 : 120'000) * flags.scale);
  const uint32_t reps = flags.reps != 0 ? flags.reps : 3;
  const std::vector<uint64_t> rule_counts = {
      max_rules / 8, max_rules / 4, max_rules / 2, 3 * max_rules / 4,
      max_rules};

  Rng rng(flags.seed);
  std::unique_ptr<Schema> base_schema = MakeBaseSchema(&rng);
  std::vector<PredId> all_preds;
  for (PredId pred = 0; pred < base_schema->NumPredicates(); ++pred) {
    all_preds.push_back(pred);
  }
  Database db(base_schema.get());
  auto status = PopulateRelations(&db, all_preds, /*dsize=*/500000,
                                  /*rsize=*/flags.full ? 1000 : 200, &rng);
  if (!status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }

  TablePrinter table({"pred-profile", "n-rules", "avg-n-edges",
                      "avg-n-simplified"});
  for (const PredProfile& profile : PredicateProfiles()) {
    for (uint64_t n_rules : rule_counts) {
      double total_edges = 0;
      double total_simplified = 0;
      for (uint32_t rep = 0; rep < reps; ++rep) {
        TgdGenParams params;
        params.ssize =
            static_cast<uint32_t>(rng.Range(profile.lo, profile.hi));
        params.min_arity = 1;
        params.max_arity = 5;
        params.tsize = n_rules;
        params.tclass = TgdClass::kLinear;
        params.seed = rng.Next();
        auto tgds = GenerateTgds(*base_schema, params);
        if (!tgds.ok()) {
          std::cerr << tgds.status() << "\n";
          return 1;
        }
        LCheckStats stats;
        auto finite = IsChaseFiniteL(db, tgds.value(), {}, &stats);
        if (!finite.ok()) {
          std::cerr << finite.status() << "\n";
          return 1;
        }
        total_edges += static_cast<double>(stats.graph_edges);
        total_simplified += static_cast<double>(stats.num_simplified_tgds);
      }
      table.AddRow({profile.Label(), std::to_string(n_rules),
                    Fmt(total_edges / reps, 0),
                    Fmt(total_simplified / reps, 0)});
    }
  }
  Emit(flags, "Appendix: n-edges of dg(simple_D(Sigma)) vs n-rules", table);
  return 0;
}
