#include "common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "logic/printer.h"

namespace chase {
namespace bench {

BenchFlags BenchFlags::Parse(int argc, char** argv) {
  BenchFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value_of = [&](std::string_view prefix) -> const char* {
      if (arg.size() > prefix.size() &&
          arg.substr(0, prefix.size()) == prefix) {
        return argv[i] + prefix.size();
      }
      return nullptr;
    };
    if (const char* v = value_of("--scale=")) {
      flags.scale = std::atof(v);
    } else if (arg == "--full") {
      flags.full = true;
    } else if (const char* v = value_of("--seed=")) {
      flags.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--csv") {
      flags.csv = true;
    } else if (const char* v = value_of("--reps=")) {
      flags.reps = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--query-overhead-us=")) {
      flags.query_overhead_us = std::atof(v);
    } else if (const char* v = value_of("--json-out=")) {
      flags.json_out = v;
    } else {
      std::cerr << "unknown flag: " << arg << "\n"
                << "flags: --scale=F --full --seed=N --csv --reps=N "
                   "--query-overhead-us=F --json-out=PATH\n";
      std::exit(2);
    }
  }
  return flags;
}

std::string PredProfile::Label() const {
  return "[" + std::to_string(lo) + "," + std::to_string(hi) + "]";
}

std::vector<PredProfile> PredicateProfiles() {
  return {{5, 200}, {200, 400}, {400, 600}};
}

std::string TgdProfile::Label() const {
  auto compact = [](uint64_t v) {
    if (v >= 1000000 && v % 1000000 == 0) {
      return std::to_string(v / 1000000) + "M";
    }
    if (v >= 1000 && v % 1000 == 0) return std::to_string(v / 1000) + "K";
    return std::to_string(v);
  };
  return "[" + compact(lo) + "," + compact(hi) + "]";
}

std::vector<TgdProfile> TgdProfiles(uint64_t max_rules) {
  const uint64_t third = max_rules / 3;
  return {{1, third}, {third, 2 * third}, {2 * third, max_rules}};
}

std::unique_ptr<Schema> MakeBaseSchema(Rng* rng) {
  auto schema = std::make_unique<Schema>();
  auto preds = DeclarePredicates(schema.get(), "p", 1000, 1, 5, rng);
  if (!preds.ok()) {
    std::cerr << "schema generation failed: " << preds.status() << "\n";
    std::exit(1);
  }
  return schema;
}

void PopulateInducedDatabase(const Schema& schema, Database* db) {
  db->EnsureAnonymousDomain(64);
  std::vector<uint32_t> tuple;
  for (PredId pred = 0; pred < schema.NumPredicates(); ++pred) {
    tuple.clear();
    for (uint32_t i = 0; i < schema.Arity(pred); ++i) tuple.push_back(i);
    (void)db->AddFact(pred, tuple);
  }
}

StatusOr<SlRun> RunSlExperiment(const Schema& base_schema,
                                const std::vector<Tgd>& tgds) {
  SlRun run;
  run.n_rules = tgds.size();

  // Serialize and re-parse: t-parse times reading the rules from "a file",
  // exactly as the paper does.
  const std::string text = TgdsToString(base_schema, tgds);
  Timer timer;
  CHASE_ASSIGN_OR_RETURN(Program program, ParseProgram(text));
  run.times.parse_ms = timer.ElapsedMillis();
  run.n_preds = program.schema->NumPredicates();

  PopulateInducedDatabase(*program.schema, program.database.get());
  SlCheckStats stats;
  CHASE_ASSIGN_OR_RETURN(
      bool finite, IsChaseFiniteSL(*program.database, program.tgds, &stats));
  run.finite = finite;
  run.times.graph_ms = stats.graph_ms;
  run.times.comp_ms = stats.comp_ms + stats.support_ms;
  run.graph_edges = stats.graph_edges;
  return run;
}

StatusOr<LRun> RunLExperiment(const Schema& base_schema,
                              const Database& database,
                              const std::vector<Tgd>& tgds,
                              storage::ShapeFinderMode mode,
                              double query_overhead_us) {
  LRun run;
  run.n_rules = tgds.size();
  run.n_tuples = database.TotalFacts();

  const std::string text = TgdsToString(base_schema, tgds);
  Schema parse_schema;
  Timer timer;
  CHASE_ASSIGN_OR_RETURN(std::vector<Tgd> parsed,
                         ParseTgds(text, &parse_schema));
  run.times.parse_ms = timer.ElapsedMillis();
  (void)parsed;

  // The checker proper runs over the original schema (shared with the
  // database, as in Section 8 where the TGDs are over D*'s predicates).
  LCheckOptions options;
  options.shape_finder = mode;
  LCheckStats stats;
  CHASE_ASSIGN_OR_RETURN(bool finite,
                         IsChaseFiniteL(database, tgds, options, &stats));
  run.finite = finite;
  // Simulated DBMS dispatch overhead: one unit per issued query (in-db) or
  // per relation load statement (in-memory). See EXPERIMENTS.md.
  const double overhead_ms =
      query_overhead_us * 1e-3 *
      static_cast<double>(stats.access.exists_queries +
                          stats.access.relations_loaded);
  run.times.shapes_ms = stats.shapes_ms + overhead_ms;
  run.times.graph_ms = stats.graph_ms;
  run.times.comp_ms = stats.comp_ms;
  run.n_shapes = stats.num_initial_shapes;
  run.n_simplified = stats.num_simplified_tgds;
  run.graph_edges = stats.graph_edges;
  return run;
}

std::string Fmt(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string FmtMs(double ms) { return Fmt(ms, 2); }

std::vector<std::string> AccessColumnNames() {
  return {"exists-q", "rel-loads", "tuples-scanned", "pages-read",
          "pool-hit%", "prefetched"};
}

std::vector<std::string> AccessColumnValues(const storage::AccessStats& access,
                                            const storage::IoCounters& io,
                                            uint32_t reps) {
  reps = std::max<uint32_t>(1, reps);
  auto avg = [&](uint64_t total) { return std::to_string(total / reps); };
  const uint64_t pool_accesses = io.pool_hits + io.pool_misses;
  return {avg(access.exists_queries), avg(access.relations_loaded),
          avg(access.tuples_scanned), avg(io.pages_read),
          pool_accesses == 0
              ? "-"
              : Fmt(100.0 * static_cast<double>(io.pool_hits) /
                        static_cast<double>(pool_accesses),
                    1) + "%",
          avg(io.pool_prefetches)};
}

bool WriteBenchJson(const BenchFlags& flags, const std::string& name,
                    const TablePrinter& table) {
  const std::string path =
      flags.json_out.empty() ? "BENCH_" + name + ".json" : flags.json_out;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return false;
  }
  table.PrintJson(out);
  out.flush();
  if (!out) {
    std::cerr << "write to " << path << " failed\n";
    return false;
  }
  std::cout << "wrote " << path << "\n";
  return true;
}

bool WriteBenchJsonSections(
    const BenchFlags& flags, const std::string& name,
    const std::vector<std::pair<std::string, const TablePrinter*>>&
        sections) {
  const std::string path =
      flags.json_out.empty() ? "BENCH_" + name + ".json" : flags.json_out;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return false;
  }
  out << "{\n";
  for (size_t i = 0; i < sections.size(); ++i) {
    if (i > 0) out << ",\n";
    out << "\"" << sections[i].first << "\": ";
    sections[i].second->PrintJson(out);
  }
  out << "}\n";
  out.flush();
  if (!out) {
    std::cerr << "write to " << path << " failed\n";
    return false;
  }
  std::cout << "wrote " << path << "\n";
  return true;
}

void Emit(const BenchFlags& flags, const std::string& title,
          const TablePrinter& table) {
  if (flags.csv) {
    table.PrintCsv(std::cout);
  } else {
    std::cout << "\n== " << title << " ==\n";
    table.Print(std::cout);
  }
  std::cout.flush();
}

}  // namespace bench
}  // namespace chase
