// Shared harness for the experiment benches. Each bench binary regenerates
// one table or figure of the paper (see DESIGN.md §5) and prints the rows /
// series the paper plots, through TablePrinter.
//
// Common flags (all binaries):
//   --scale=<f>     scale factor on workload sizes (default 1.0 = the
//                   laptop-sized defaults documented in EXPERIMENTS.md)
//   --full          paper-sized workloads (equivalent to a large --scale)
//   --seed=<n>      RNG seed
//   --csv           emit CSV instead of an aligned table
//   --reps=<n>      sets / repetitions per configuration
//   --query-overhead-us=<n>  simulated DBMS per-query dispatch cost added to
//                   in-database FindShapes timings (PostgreSQL parse/plan/
//                   execute overhead; see EXPERIMENTS.md). Default 25.
//   --json-out=<path>  where WriteBenchJson-emitting benches write their
//                   machine-readable BENCH_<name>.json artifact (default:
//                   BENCH_<name>.json in the working directory)

#ifndef CHASE_BENCH_COMMON_H_
#define CHASE_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "base/table_printer.h"
#include "base/timer.h"
#include "core/is_chase_finite.h"
#include "gen/data_generator.h"
#include "gen/tgd_generator.h"
#include "logic/parser.h"
#include "obs/metrics.h"
#include "storage/shape_source.h"

namespace chase {
namespace bench {

struct BenchFlags {
  double scale = 1.0;
  bool full = false;
  uint64_t seed = 20230322;
  bool csv = false;
  uint32_t reps = 0;  // 0 = per-bench default
  double query_overhead_us = 25.0;
  std::string json_out;  // empty = BENCH_<name>.json in the working dir

  static BenchFlags Parse(int argc, char** argv);
};

// A predicate profile [lo, hi] (number of predicates in sch(Σ)).
struct PredProfile {
  uint32_t lo;
  uint32_t hi;
  std::string Label() const;
};

// The paper's three predicate profiles: [5,200], [200,400], [400,600].
std::vector<PredProfile> PredicateProfiles();

// A TGD profile [lo, hi] (number of TGDs). The paper splits [1, 1M] into
// thirds; we split [1, max_rules].
struct TgdProfile {
  uint64_t lo;
  uint64_t hi;
  std::string Label() const;
};
std::vector<TgdProfile> TgdProfiles(uint64_t max_rules);

// The Section 7/8 base schema: 1000 predicates of arity in [1,5].
std::unique_ptr<Schema> MakeBaseSchema(Rng* rng);

// D_Σ (Remark 1): one all-distinct fact per predicate of `schema`.
void PopulateInducedDatabase(const Schema& schema, Database* db);

// One Figure-1-style run: serialize the TGDs, parse them back (t-parse),
// then run Algorithm 1 on (D_Σ, Σ).
struct SlRun {
  size_t n_rules = 0;
  size_t n_preds = 0;
  // The paper's time parameters (shapes_ms stays 0: Algorithm 1 has no
  // db-dependent shape phase), accounted in the one shared struct
  // (obs::TimeParams) instead of bench-local fields.
  obs::TimeParams times;
  size_t graph_edges = 0;
  bool finite = false;

  double TotalMs() const { return times.DbIndependentMs(); }
};
StatusOr<SlRun> RunSlExperiment(const Schema& base_schema,
                                const std::vector<Tgd>& tgds);

// One Section-8-style run of the db-independent component: serialize +
// parse the linear TGDs (t-parse), find shapes (t-shapes, reported but not
// part of t-total), dynamic simplification + graph (t-graph), SCC search
// (t-comp).
struct LRun {
  size_t n_rules = 0;
  size_t n_tuples = 0;
  // t-parse / t-shapes / t-graph / t-comp via the shared obs::TimeParams.
  obs::TimeParams times;
  size_t n_shapes = 0;
  size_t n_simplified = 0;
  size_t graph_edges = 0;
  bool finite = false;

  // t-total of the db-independent component (Section 8).
  double DbIndependentMs() const { return times.DbIndependentMs(); }
};
StatusOr<LRun> RunLExperiment(const Schema& base_schema,
                              const Database& database,
                              const std::vector<Tgd>& tgds,
                              storage::ShapeFinderMode mode,
                              double query_overhead_us);

// Formatting helpers.
std::string Fmt(double value, int decimals = 2);
std::string FmtMs(double ms);

// Uniform per-backend metering columns for the FindShapes benches: logical
// accesses from ShapeSource::stats() plus physical I/O from
// ShapeSource::Io(), so memory and disk rows of the fig3/fig4 ablations are
// directly comparable. Pass `reps` > 1 to report per-repetition averages.
std::vector<std::string> AccessColumnNames();
std::vector<std::string> AccessColumnValues(const storage::AccessStats& access,
                                            const storage::IoCounters& io,
                                            uint32_t reps = 1);

// Prints `table` per flags (table or CSV) with a heading.
void Emit(const BenchFlags& flags, const std::string& title,
          const TablePrinter& table);

// Writes `table` as a JSON array of row objects to --json-out, or to
// BENCH_<name>.json in the working directory when the flag is unset — the
// machine-readable artifact CI archives next to the printed table. Returns
// false (after logging to stderr) if the file cannot be written.
bool WriteBenchJson(const BenchFlags& flags, const std::string& name,
                    const TablePrinter& table);

// As WriteBenchJson for benches that report several tables (e.g. a build
// phase and a maintenance phase): emits one object whose keys are the
// section names, each holding that table's row array —
// {"build": [...], "maintain": [...]} — so a multi-table ablation still
// produces a single BENCH_<name>.json artifact under --json-out.
bool WriteBenchJsonSections(
    const BenchFlags& flags, const std::string& name,
    const std::vector<std::pair<std::string, const TablePrinter*>>& sections);

}  // namespace bench
}  // namespace chase

#endif  // CHASE_BENCH_COMMON_H_
