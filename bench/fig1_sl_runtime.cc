// Figure 1: runtime of IsChaseFinite[SL] vs n-rules.
//
// Paper setup (§7.1): nine combined profiles — predicate profiles [5,200],
// [200,400], [400,600] × TGD profiles thirds of [1, 1M] — 100 sets each,
// over a 1000-predicate schema of arity [1,5]; the input database is D_Σ.
// Default here: thirds of [1, 120K], 4 sets per combined profile (--full
// restores 1M / and --reps the per-profile count). One row per generated
// set: the four time parameters of Figure 1(a)-(d).

#include <iostream>

#include "common.h"

using namespace chase;
using namespace chase::bench;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const uint64_t max_rules = static_cast<uint64_t>(
      (flags.full ? 1'000'000 : 120'000) * flags.scale);
  const uint32_t reps = flags.reps != 0 ? flags.reps : (flags.full ? 100 : 4);

  Rng rng(flags.seed);
  std::unique_ptr<Schema> base_schema = MakeBaseSchema(&rng);

  TablePrinter table({"pred-profile", "tgd-profile", "n-rules", "t-parse-ms",
                      "t-graph-ms", "t-comp-ms", "t-total-ms", "finite"});
  for (const PredProfile& preds : PredicateProfiles()) {
    for (const TgdProfile& rules : TgdProfiles(max_rules)) {
      for (uint32_t rep = 0; rep < reps; ++rep) {
        TgdGenParams params;
        params.ssize = static_cast<uint32_t>(rng.Range(preds.lo, preds.hi));
        params.min_arity = 1;
        params.max_arity = 5;
        params.tsize = rng.Range(rules.lo, rules.hi);
        params.tclass = TgdClass::kSimpleLinear;
        params.seed = rng.Next();
        auto tgds = GenerateTgds(*base_schema, params);
        if (!tgds.ok()) {
          std::cerr << tgds.status() << "\n";
          return 1;
        }
        auto run = RunSlExperiment(*base_schema, tgds.value());
        if (!run.ok()) {
          std::cerr << run.status() << "\n";
          return 1;
        }
        table.AddRow({preds.Label(), rules.Label(),
                      std::to_string(run->n_rules), FmtMs(run->times.parse_ms),
                      FmtMs(run->times.graph_ms), FmtMs(run->times.comp_ms),
                      FmtMs(run->TotalMs()), run->finite ? "yes" : "no"});
      }
    }
  }
  Emit(flags, "Figure 1: IsChaseFinite[SL] runtime breakdown vs n-rules",
       table);
  return 0;
}
