// Figure 2: number of database shapes (n-shapes) vs database size
// (n-tuples), one bar group per predicate profile.
//
// Paper setup (§8.1): databases are views of D* (1000 predicates, arity
// [1,5]) with {1K, 50K, 100K, 250K, 500K} tuples per predicate; n-shapes is
// averaged over the databases paired with TGD sets of each predicate
// profile. Default here: {100, 1K, 5K, 10K, 25K} tuples per predicate
// (--full restores the paper's sizes), predicate count = profile midpoint.

#include <iostream>

#include "common.h"
#include "storage/catalog.h"
#include "storage/shape_finder.h"
#include "storage/shape_source.h"

using namespace chase;
using namespace chase::bench;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  std::vector<uint64_t> sizes =
      flags.full ? std::vector<uint64_t>{1000, 50000, 100000, 250000, 500000}
                 : std::vector<uint64_t>{100, 1000, 5000, 10000, 25000};
  for (uint64_t& s : sizes) s = static_cast<uint64_t>(s * flags.scale);
  const uint32_t reps = flags.reps != 0 ? flags.reps : 3;

  Rng rng(flags.seed);
  TablePrinter table(
      {"pred-profile", "n-preds", "tuples-per-pred", "n-tuples", "n-shapes"});
  for (const PredProfile& profile : PredicateProfiles()) {
    const uint32_t n_preds = (profile.lo + profile.hi) / 2;
    for (uint64_t rsize : sizes) {
      double total_shapes = 0;
      uint64_t total_tuples = 0;
      for (uint32_t rep = 0; rep < reps; ++rep) {
        DataGenParams params;
        params.preds = n_preds;
        params.min_arity = 1;
        params.max_arity = 5;
        params.dsize = 500000;
        params.rsize = rsize;
        params.seed = rng.Next();
        auto data = GenerateData(params);
        if (!data.ok()) {
          std::cerr << data.status() << "\n";
          return 1;
        }
        storage::Catalog catalog(data->database.get());
        storage::MemoryShapeSource source(&catalog);
        total_shapes += static_cast<double>(
            storage::FindShapes(source, {}).value().size());
        total_tuples = data->database->TotalFacts();
      }
      table.AddRow({profile.Label(), std::to_string(n_preds),
                    std::to_string(rsize), std::to_string(total_tuples),
                    Fmt(total_shapes / reps, 1)});
    }
  }
  Emit(flags, "Figure 2: n-shapes vs n-tuples per predicate profile", table);
  return 0;
}
