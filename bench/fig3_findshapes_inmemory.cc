// Figure 3: runtime of FindShapes, in-memory implementation, vs n-tuples.

#include "storage/shape_finder.h"

namespace {
constexpr chase::storage::ShapeFinderMode kFinderMode =
    chase::storage::ShapeFinderMode::kInMemory;
constexpr const char* kFigureTitle =
    "Figure 3: FindShapes runtime (in-memory) vs n-tuples";
}  // namespace

#include "findshapes_bench.inc"
