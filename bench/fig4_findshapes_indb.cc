// Figure 4: runtime of FindShapes, in-database implementation, vs n-tuples.

#include "storage/shape_finder.h"

namespace {
constexpr chase::storage::ShapeFinderMode kFinderMode =
    chase::storage::ShapeFinderMode::kInDatabase;
constexpr const char* kFigureTitle =
    "Figure 4: FindShapes runtime (in-database) vs n-tuples";
}  // namespace

#include "findshapes_bench.inc"
