// Figure 5: db-independent component of IsChaseFinite[L] vs n-rules,
// predicate profile [400,600].

namespace {
constexpr int kProfileIndex = 2;
constexpr const char* kFigureTitle =
    "Figure 5: db-independent runtime vs n-rules, profile [400,600]";
}  // namespace

#include "dbindep_bench.inc"
