// Figure 6 (appendix): db-independent component of IsChaseFinite[L] vs
// n-rules, predicate profile [5,200].

namespace {
constexpr int kProfileIndex = 0;
constexpr const char* kFigureTitle =
    "Figure 6: db-independent runtime vs n-rules, profile [5,200]";
}  // namespace

#include "dbindep_bench.inc"
