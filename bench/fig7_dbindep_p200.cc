// Figure 7 (appendix): db-independent component of IsChaseFinite[L] vs
// n-rules, predicate profile [200,400].

namespace {
constexpr int kProfileIndex = 1;
constexpr const char* kFigureTitle =
    "Figure 7: db-independent runtime vs n-rules, profile [200,400]";
}  // namespace

#include "dbindep_bench.inc"
