// Google-benchmark microbenchmarks of the individual components: parser
// throughput, dependency-graph construction, Tarjan, shape hashing,
// FindShapes, dynamic simplification, and chase step rate.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "acyclicity/joint_acyclicity.h"
#include "acyclicity/super_weak_acyclicity.h"
#include "base/rng.h"
#include "chase/chase_engine.h"
#include "core/dynamic_simplification.h"
#include "core/is_chase_finite.h"
#include "gen/data_generator.h"
#include "gen/tgd_generator.h"
#include "graph/dependency_graph.h"
#include "graph/tarjan.h"
#include "index/sharded_shape_index.h"
#include "io/binary_io.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "pager/buffer_pool.h"
#include "pager/heap_file.h"
#include "query/conjunctive_query.h"
#include "storage/catalog.h"
#include "storage/shape_finder.h"
#include "storage/shape_index.h"

namespace chase {
namespace {

struct Fixture {
  std::unique_ptr<Schema> schema;
  std::vector<Tgd> sl_tgds;
  std::vector<Tgd> l_tgds;
  std::unique_ptr<Database> database;
  std::string sl_text;

  static const Fixture& Get(size_t n_rules) {
    static auto* cache = new std::map<size_t, Fixture>();
    auto it = cache->find(n_rules);
    if (it != cache->end()) return it->second;
    Fixture f;
    Rng rng(7);
    f.schema = std::make_unique<Schema>();
    auto preds = DeclarePredicates(f.schema.get(), "p", 300, 1, 5, &rng);
    TgdGenParams params;
    params.ssize = 200;
    params.tsize = n_rules;
    params.tclass = TgdClass::kSimpleLinear;
    params.seed = 11;
    f.sl_tgds = GenerateTgds(*f.schema, params).value();
    params.tclass = TgdClass::kLinear;
    params.seed = 12;
    f.l_tgds = GenerateTgds(*f.schema, params).value();
    f.database = std::make_unique<Database>(f.schema.get());
    (void)PopulateRelations(f.database.get(), preds.value(), /*dsize=*/10000,
                            /*rsize=*/100, &rng);
    f.sl_text = TgdsToString(*f.schema, f.sl_tgds);
    return cache->emplace(n_rules, std::move(f)).first->second;
  }
};

void BM_ParseRules(benchmark::State& state) {
  const Fixture& f = Fixture::Get(state.range(0));
  for (auto _ : state) {
    auto program = ParseProgram(f.sl_text);
    benchmark::DoNotOptimize(program);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParseRules)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BuildDependencyGraph(benchmark::State& state) {
  const Fixture& f = Fixture::Get(state.range(0));
  for (auto _ : state) {
    DependencyGraph graph = BuildDependencyGraph(*f.schema, f.sl_tgds);
    benchmark::DoNotOptimize(graph.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildDependencyGraph)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_TarjanSpecialSccs(benchmark::State& state) {
  const Fixture& f = Fixture::Get(state.range(0));
  DependencyGraph graph = BuildDependencyGraph(*f.schema, f.sl_tgds);
  for (auto _ : state) {
    auto special = FindSpecialSccs(graph.graph());
    benchmark::DoNotOptimize(special.components.size());
  }
}
BENCHMARK(BM_TarjanSpecialSccs)->Arg(10000)->Arg(100000);

void BM_ShapeOfTuple(benchmark::State& state) {
  Rng rng(5);
  std::vector<uint32_t> tuple;
  GenerateShapedTuple(5, 1000, &rng, &tuple);
  for (auto _ : state) {
    Shape shape = ShapeOfTuple(0, tuple);
    benchmark::DoNotOptimize(shape);
  }
}
BENCHMARK(BM_ShapeOfTuple);

void BM_FindShapesScan(benchmark::State& state) {
  const Fixture& f = Fixture::Get(10000);
  storage::Catalog catalog(f.database.get());
  storage::MemoryShapeSource source(&catalog);
  for (auto _ : state) {
    auto shapes =
        storage::FindShapes(source, {storage::ShapeFinderMode::kScan, 1});
    benchmark::DoNotOptimize(shapes->size());
  }
  state.SetItemsProcessed(state.iterations() * f.database->TotalFacts());
}
BENCHMARK(BM_FindShapesScan);

void BM_FindShapesExists(benchmark::State& state) {
  const Fixture& f = Fixture::Get(10000);
  storage::Catalog catalog(f.database.get());
  storage::MemoryShapeSource source(&catalog);
  for (auto _ : state) {
    auto shapes =
        storage::FindShapes(source, {storage::ShapeFinderMode::kExists, 1});
    benchmark::DoNotOptimize(shapes->size());
  }
}
BENCHMARK(BM_FindShapesExists);

void BM_DynamicSimplification(benchmark::State& state) {
  const Fixture& f = Fixture::Get(state.range(0));
  storage::Catalog catalog(f.database.get());
  storage::MemoryShapeSource source(&catalog);
  auto shapes = std::move(storage::FindShapes(source, {})).value();
  for (auto _ : state) {
    auto result =
        DynamicSimplificationFromShapes(*f.schema, f.l_tgds, shapes);
    benchmark::DoNotOptimize(result->tgds.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DynamicSimplification)->Arg(1000)->Arg(10000);

void BM_IsChaseFiniteSL(benchmark::State& state) {
  const Fixture& f = Fixture::Get(state.range(0));
  for (auto _ : state) {
    auto finite = IsChaseFiniteSL(*f.database, f.sl_tgds);
    benchmark::DoNotOptimize(finite);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IsChaseFiniteSL)->Arg(10000)->Arg(100000);

void BM_ChaseStepRate(benchmark::State& state) {
  auto program = ParseProgram("e(a,b).\ne(X,Y) -> e(Y,Z).").value();
  ChaseOptions options;
  options.max_atoms = 10000;
  for (auto _ : state) {
    auto result = RunChase(*program.database, program.tgds, options);
    benchmark::DoNotOptimize(result->instance.NumAtoms());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_ChaseStepRate);

void BM_ShapeIndexInsert(benchmark::State& state) {
  const Fixture& f = Fixture::Get(1000);
  storage::ShapeIndex index = storage::ShapeIndex::Build(*f.database);
  Rng rng(3);
  std::vector<uint32_t> tuple;
  const uint32_t num_preds =
      static_cast<uint32_t>(f.schema->NumPredicates());
  for (auto _ : state) {
    const PredId pred = static_cast<PredId>(rng.Below(num_preds));
    GenerateShapedTuple(f.schema->Arity(pred), 10000, &rng, &tuple);
    index.Insert(pred, tuple);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShapeIndexInsert);

// Single-threaded insert cost of the sharded index: the per-shard latch is
// uncontended here, so the delta vs BM_ShapeIndexInsert is the latching
// overhead the sharding pays for multi-threaded maintenance.
void BM_ShardedShapeIndexInsert(benchmark::State& state) {
  const Fixture& f = Fixture::Get(1000);
  index::ShardedShapeIndex index =
      index::ShardedShapeIndex::Build(*f.database);
  Rng rng(3);
  std::vector<uint32_t> tuple;
  const uint32_t num_preds =
      static_cast<uint32_t>(f.schema->NumPredicates());
  for (auto _ : state) {
    const PredId pred = static_cast<PredId>(rng.Below(num_preds));
    GenerateShapedTuple(f.schema->Arity(pred), 10000, &rng, &tuple);
    index.Insert(pred, tuple);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShardedShapeIndexInsert);

void BM_JointAcyclicity(benchmark::State& state) {
  const Fixture& f = Fixture::Get(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        acyclicity::IsJointlyAcyclic(*f.schema, f.l_tgds));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JointAcyclicity)->Arg(1000)->Arg(10000);

void BM_SuperWeakAcyclicity(benchmark::State& state) {
  const Fixture& f = Fixture::Get(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        acyclicity::IsSuperWeaklyAcyclic(*f.schema, f.l_tgds));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SuperWeakAcyclicity)->Arg(1000)->Arg(10000);

void BM_SerializeProgram(benchmark::State& state) {
  const Fixture& f = Fixture::Get(state.range(0));
  for (auto _ : state) {
    auto bytes = io::SerializeProgram(*f.schema, *f.database, f.l_tgds);
    benchmark::DoNotOptimize(bytes.data());
    state.SetBytesProcessed(state.bytes_processed() +
                            static_cast<int64_t>(bytes.size()));
  }
}
BENCHMARK(BM_SerializeProgram)->Arg(1000)->Arg(10000);

void BM_DeserializeProgram(benchmark::State& state) {
  const Fixture& f = Fixture::Get(state.range(0));
  const auto bytes = io::SerializeProgram(*f.schema, *f.database, f.l_tgds);
  for (auto _ : state) {
    auto program = io::DeserializeProgram(bytes);
    benchmark::DoNotOptimize(program.ok());
    state.SetBytesProcessed(state.bytes_processed() +
                            static_cast<int64_t>(bytes.size()));
  }
}
BENCHMARK(BM_DeserializeProgram)->Arg(1000)->Arg(10000);

void BM_BufferPoolFetchHit(benchmark::State& state) {
  const std::string path = "/tmp/chase_micro_pool.db";
  auto manager = pager::DiskManager::Create(path).value();
  pager::BufferPool pool(&manager, 16);
  auto seed = pool.Allocate().value().page_id();
  for (auto _ : state) {
    auto guard = pool.Fetch(seed);
    benchmark::DoNotOptimize(guard->page());
  }
  state.SetItemsProcessed(state.iterations());
  std::remove(path.c_str());
}
BENCHMARK(BM_BufferPoolFetchHit);

void BM_HeapFileScan(benchmark::State& state) {
  const std::string path = "/tmp/chase_micro_heap.db";
  auto manager = pager::DiskManager::Create(path).value();
  pager::BufferPool pool(&manager, 256);
  auto heap = pager::HeapFile::Create(&pool, 3).value();
  std::vector<uint32_t> tuple = {1, 2, 3};
  for (int i = 0; i < 100'000; ++i) {
    (void)heap.Append(tuple);
  }
  for (auto _ : state) {
    uint64_t sum = 0;
    (void)heap.Scan([&](std::span<const uint32_t> t) {
      sum += t[0];
      return true;
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
  std::remove(path.c_str());
}
BENCHMARK(BM_HeapFileScan);

void BM_EvaluateQuery(benchmark::State& state) {
  auto program = ParseProgram(R"(
    parent(a, b). parent(b, c). parent(c, d). parent(d, e).
    parent(a, f). parent(f, g). parent(g, h).
  )").value();
  auto cq = query::ParseQuery(
      "q(X, Z) :- parent(X, Y), parent(Y, Z).", program.schema.get());
  Instance instance = Instance::FromDatabase(*program.database);
  for (auto _ : state) {
    auto answers = query::Evaluate(instance, cq.value());
    benchmark::DoNotOptimize(answers.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvaluateQuery);

}  // namespace
}  // namespace chase

BENCHMARK_MAIN();
