// The unnumbered Section 8 figure ("Separate the Two Components"): average
// db-independent runtime (t-graph + t-comp of IsChaseFinite[L]) per database
// size, over all generated (D, Σ) pairs. The paper's point: the curve is
// flat — the database size does not impact the db-independent component,
// because n-shapes grows very slowly with n-tuples.

#include <iostream>

#include "common.h"

using namespace chase;
using namespace chase::bench;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const std::vector<uint64_t> db_sizes =
      flags.full ? std::vector<uint64_t>{1000, 50000, 100000, 250000, 500000}
                 : std::vector<uint64_t>{100, 500, 1000, 2500, 5000};
  const uint64_t max_rules = static_cast<uint64_t>(
      (flags.full ? 1'000'000 : 60'000) * flags.scale);
  const uint32_t reps = flags.reps != 0 ? flags.reps : 2;

  Rng rng(flags.seed);
  std::unique_ptr<Schema> base_schema = MakeBaseSchema(&rng);
  std::vector<PredId> all_preds;
  for (PredId pred = 0; pred < base_schema->NumPredicates(); ++pred) {
    all_preds.push_back(pred);
  }

  // The 45 (here: reps per combined profile) linear TGD sets of Section 8.
  struct SetInfo {
    std::vector<Tgd> tgds;
  };
  std::vector<SetInfo> sets;
  for (const PredProfile& preds : PredicateProfiles()) {
    for (const TgdProfile& rules : TgdProfiles(max_rules)) {
      for (uint32_t rep = 0; rep < reps; ++rep) {
        TgdGenParams params;
        params.ssize = static_cast<uint32_t>(rng.Range(preds.lo, preds.hi));
        params.min_arity = 1;
        params.max_arity = 5;
        params.tsize = rng.Range(rules.lo, rules.hi);
        params.tclass = TgdClass::kLinear;
        params.seed = rng.Next();
        auto tgds = GenerateTgds(*base_schema, params);
        if (!tgds.ok()) {
          std::cerr << tgds.status() << "\n";
          return 1;
        }
        sets.push_back(SetInfo{std::move(tgds).value()});
      }
    }
  }

  TablePrinter table({"tuples-per-pred", "n-tuples",
                      "avg-dbindep-ms (t-graph+t-comp)", "avg-n-shapes"});
  for (uint64_t rsize : db_sizes) {
    Database db(base_schema.get());
    auto status =
        PopulateRelations(&db, all_preds, /*dsize=*/500000, rsize, &rng);
    if (!status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
    double total_ms = 0;
    double total_shapes = 0;
    for (const SetInfo& set : sets) {
      LCheckOptions options;
      LCheckStats stats;
      auto finite = IsChaseFiniteL(db, set.tgds, options, &stats);
      if (!finite.ok()) {
        std::cerr << finite.status() << "\n";
        return 1;
      }
      total_ms += stats.graph_ms + stats.comp_ms;
      total_shapes += static_cast<double>(stats.num_initial_shapes);
    }
    table.AddRow({std::to_string(rsize), std::to_string(db.TotalFacts()),
                  FmtMs(total_ms / sets.size()),
                  Fmt(total_shapes / sets.size(), 1)});
  }
  Emit(flags,
       "Section 8 inline figure: db-independent runtime is flat in database "
       "size",
       table);
  return 0;
}
