// Table 1: statistics of the validation scenarios (Deep, LUBM, iBench).
//
// Databases are scaled (see EXPERIMENTS.md); n-pred, arity, n-rules and
// n-shapes match the paper, n-atoms scales with --scale / --full.

#include <iostream>

#include "common.h"
#include "gen/scenario.h"

using namespace chase;
using namespace chase::bench;

namespace {

void AddScenarioRow(TablePrinter& table, const std::string& family,
                    const StatusOr<Scenario>& scenario) {
  if (!scenario.ok()) {
    std::cerr << scenario.status() << "\n";
    std::exit(1);
  }
  ScenarioStats stats = ComputeScenarioStats(scenario.value());
  const std::string arity =
      stats.min_arity == stats.max_arity
          ? std::to_string(stats.min_arity)
          : "[" + std::to_string(stats.min_arity) + "," +
                std::to_string(stats.max_arity) + "]";
  table.AddRow({family, scenario->name, std::to_string(stats.n_pred), arity,
                std::to_string(stats.n_atoms),
                std::to_string(stats.n_shapes),
                std::to_string(stats.n_rules)});
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  // Paper LUBM sizes: 100K / 1.27M / 13.4M / 134M atoms. Default scales all
  // databases by 1/25 (preserving the x13 ratios between family members);
  // LUBM-1K only runs under --full.
  const double lubm_scale = (flags.full ? 1.0 : 0.04) * flags.scale;
  const double ibench_scale = (flags.full ? 1.0 : 0.05) * flags.scale;

  TablePrinter table({"family", "name", "n-pred", "arity", "n-atoms",
                      "n-shapes", "n-rules"});
  AddScenarioRow(table, "Deep", MakeDeepScenario(4241, flags.seed));
  AddScenarioRow(table, "Deep", MakeDeepScenario(4541, flags.seed + 1));
  AddScenarioRow(table, "Deep", MakeDeepScenario(4841, flags.seed + 2));
  AddScenarioRow(table, "LUBM",
                 MakeLubmScenario(
                     "LUBM-1", static_cast<uint64_t>(99547 * lubm_scale),
                     flags.seed + 3));
  AddScenarioRow(table, "LUBM",
                 MakeLubmScenario(
                     "LUBM-10", static_cast<uint64_t>(1272575 * lubm_scale),
                     flags.seed + 4));
  AddScenarioRow(table, "LUBM",
                 MakeLubmScenario(
                     "LUBM-100",
                     static_cast<uint64_t>(13405381 * lubm_scale),
                     flags.seed + 5));
  if (flags.full) {
    AddScenarioRow(table, "LUBM",
                   MakeLubmScenario("LUBM-1K", 133573854, flags.seed + 6));
  }
  AddScenarioRow(table, "iBench",
                 MakeStb128Scenario(ibench_scale, flags.seed + 7));
  AddScenarioRow(table, "iBench",
                 MakeOnt256Scenario(ibench_scale, flags.seed + 8));
  Emit(flags, "Table 1: validation scenario statistics", table);
  return 0;
}
