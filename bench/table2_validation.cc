// Table 2: runtime of IsChaseFinite[L] on the validation scenarios, in
// milliseconds, with t-shapes reported for both the in-database and the
// in-memory FindShapes implementations. The "best" column marks the faster
// end-to-end total (the paper boxes it).

#include <iostream>

#include "base/timer.h"
#include "common.h"
#include "gen/scenario.h"
#include "logic/printer.h"

using namespace chase;
using namespace chase::bench;

namespace {

struct Row {
  std::string name;
  double parse_ms = 0;
  double graph_ms = 0;
  double comp_ms = 0;
  double shapes_indb_ms = 0;
  double shapes_inmem_ms = 0;
  bool finite = false;

  double TotalIndb() const {
    return parse_ms + graph_ms + comp_ms + shapes_indb_ms;
  }
  double TotalInmem() const {
    return parse_ms + graph_ms + comp_ms + shapes_inmem_ms;
  }
};

Row RunScenario(const Scenario& scenario, double query_overhead_us) {
  Row row;
  row.name = scenario.name;
  const Program& p = scenario.program;

  // t-parse: serialize the rules and re-read them.
  const std::string text = TgdsToString(*p.schema, p.tgds);
  Schema parse_schema;
  Timer timer;
  auto parsed = ParseTgds(text, &parse_schema);
  row.parse_ms = timer.ElapsedMillis();
  if (!parsed.ok()) {
    std::cerr << parsed.status() << "\n";
    std::exit(1);
  }

  for (auto mode : {storage::ShapeFinderMode::kInDatabase,
                    storage::ShapeFinderMode::kInMemory}) {
    LCheckOptions options;
    options.shape_finder = mode;
    LCheckStats stats;
    auto finite = IsChaseFiniteL(*p.database, p.tgds, options, &stats);
    if (!finite.ok()) {
      std::cerr << scenario.name << ": " << finite.status() << "\n";
      std::exit(1);
    }
    row.finite = finite.value();
    const double overhead_ms =
        query_overhead_us * 1e-3 *
        static_cast<double>(stats.access.exists_queries +
                            stats.access.relations_loaded);
    if (mode == storage::ShapeFinderMode::kInDatabase) {
      row.shapes_indb_ms = stats.shapes_ms + overhead_ms;
    } else {
      row.shapes_inmem_ms = stats.shapes_ms + overhead_ms;
      // t-graph/t-comp are db-independent; keep the in-memory run's values.
      row.graph_ms = stats.graph_ms;
      row.comp_ms = stats.comp_ms;
    }
  }
  return row;
}

void AddRow(TablePrinter& table, const StatusOr<Scenario>& scenario,
            double query_overhead_us) {
  if (!scenario.ok()) {
    std::cerr << scenario.status() << "\n";
    std::exit(1);
  }
  Row row = RunScenario(scenario.value(), query_overhead_us);
  const bool indb_best = row.TotalIndb() <= row.TotalInmem();
  table.AddRow({row.name, FmtMs(row.parse_ms), FmtMs(row.graph_ms),
                FmtMs(row.comp_ms), FmtMs(row.shapes_indb_ms),
                FmtMs(row.TotalIndb()), FmtMs(row.shapes_inmem_ms),
                FmtMs(row.TotalInmem()),
                indb_best ? "in-db" : "in-memory",
                row.finite ? "yes" : "no"});
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const double lubm_scale = (flags.full ? 1.0 : 0.04) * flags.scale;
  const double ibench_scale = (flags.full ? 1.0 : 0.05) * flags.scale;

  TablePrinter table({"name", "t-parse", "t-graph", "t-comp",
                      "t-shapes(in-db)", "t-total(in-db)",
                      "t-shapes(in-mem)", "t-total(in-mem)", "best",
                      "finite"});
  AddRow(table, MakeDeepScenario(4241, flags.seed), flags.query_overhead_us);
  AddRow(table, MakeDeepScenario(4541, flags.seed + 1),
         flags.query_overhead_us);
  AddRow(table, MakeDeepScenario(4841, flags.seed + 2),
         flags.query_overhead_us);
  AddRow(table,
         MakeLubmScenario("LUBM-1",
                          static_cast<uint64_t>(99547 * lubm_scale),
                          flags.seed + 3),
         flags.query_overhead_us);
  AddRow(table,
         MakeLubmScenario("LUBM-10",
                          static_cast<uint64_t>(1272575 * lubm_scale),
                          flags.seed + 4),
         flags.query_overhead_us);
  AddRow(table,
         MakeLubmScenario("LUBM-100",
                          static_cast<uint64_t>(13405381 * lubm_scale),
                          flags.seed + 5),
         flags.query_overhead_us);
  if (flags.full) {
    AddRow(table, MakeLubmScenario("LUBM-1K", 133573854, flags.seed + 6),
           flags.query_overhead_us);
  }
  AddRow(table, MakeStb128Scenario(ibench_scale, flags.seed + 7),
         flags.query_overhead_us);
  AddRow(table, MakeOnt256Scenario(ibench_scale, flags.seed + 8),
         flags.query_overhead_us);
  Emit(flags, "Table 2: IsChaseFinite[L] on the validation scenarios (ms)",
       table);
  return 0;
}
