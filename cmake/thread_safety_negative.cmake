# Negative-compilation harness for the base/sync.h thread-safety
# annotations, run as a ctest via `cmake -P` (clang-only; the annotations
# are no-ops under GCC, so CMakeLists gates the test registration).
#
# Inputs (all -D, absolute paths):
#   TS_COMPILER     clang++ to drive
#   TS_SOURCE       tests/lint/thread_safety_negative.cc
#   TS_INCLUDE_DIR  the repo's src/ directory
#   TS_WORK_DIR     scratch directory for objects
#
# Two compiles of the same file:
#   1. control: no defines           -> must SUCCEED (harness sanity)
#   2. probe: -DCHASE_NEGATIVE_UNGUARDED -> must FAIL with a
#      -Wthread-safety diagnostic (the unguarded read is rejected)

foreach(var TS_COMPILER TS_SOURCE TS_INCLUDE_DIR TS_WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}")
  endif()
endforeach()

set(flags -std=c++20 -Wthread-safety -Werror=thread-safety
    -I${TS_INCLUDE_DIR} -c ${TS_SOURCE})

execute_process(
  COMMAND ${TS_COMPILER} ${flags} -o ${TS_WORK_DIR}/ts_control.o
  RESULT_VARIABLE control_result
  ERROR_VARIABLE control_stderr)
if(NOT control_result EQUAL 0)
  message(FATAL_ERROR
          "control compile failed — the harness itself is broken, not the "
          "annotations:\n${control_stderr}")
endif()

execute_process(
  COMMAND ${TS_COMPILER} -DCHASE_NEGATIVE_UNGUARDED ${flags}
          -o ${TS_WORK_DIR}/ts_probe.o
  RESULT_VARIABLE probe_result
  ERROR_VARIABLE probe_stderr)
if(probe_result EQUAL 0)
  message(FATAL_ERROR
          "unguarded GUARDED_BY read compiled clean — -Wthread-safety is "
          "not enforcing the base/sync.h annotations")
endif()
if(NOT probe_stderr MATCHES "thread-safety")
  message(FATAL_ERROR
          "probe failed for a reason other than -Wthread-safety:\n"
          "${probe_stderr}")
endif()

message(STATUS "thread-safety negative compile: control built, probe "
               "rejected with a thread-safety diagnostic")
