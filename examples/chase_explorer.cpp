// Chase explorer: a diagnostic CLI over the full library surface.
//
//   $ ./chase_explorer [program.dlgp]
//
// Prints the schema and dependency-graph structure, the special SCCs with
// their witness positions, verdicts from all three checkers (Algorithm 1
// when applicable, Algorithm 3, and the materialization-based baseline),
// and a side-by-side comparison of the oblivious / semi-oblivious /
// restricted chase on the input.

#include <iostream>

#include "chase/chase_engine.h"
#include "core/is_chase_finite.h"
#include "core/materialization_checker.h"
#include "core/simplification.h"
#include "graph/dependency_graph.h"
#include "graph/tarjan.h"
#include "logic/parser.h"
#include "logic/printer.h"

namespace {

constexpr const char* kDefaultProgram = R"(
% A mixed example: one harmless cycle, one generative cycle that is not
% supported by the database, and one non-simple rule.
r(a, b).
q(c).

r(X, Y) -> s(Y, X).
s(X, Y) -> r(Y, X).          % normal cycle: fine
e(X, Y) -> e(Y, Z).          % generative cycle, but e is unreachable
q(X) -> exists Z : t(X, Z).
t(X, X) -> q(X).             % non-simple body: needs simplification
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace chase;

  auto program = argc > 1 ? ParseProgramFile(argv[1])
                          : ParseProgram(kDefaultProgram);
  if (!program.ok()) {
    std::cerr << program.status() << "\n";
    return 1;
  }
  const Schema& schema = *program->schema;
  const Database& db = *program->database;
  const std::vector<Tgd>& tgds = program->tgds;

  std::cout << "== Input ==\n"
            << schema.NumPredicates() << " predicates, "
            << schema.NumPositions() << " positions, " << tgds.size()
            << " rules, " << db.TotalFacts() << " facts\n";
  for (const Tgd& tgd : tgds) {
    std::cout << "  " << ToString(schema, tgd)
              << (tgd.IsSimpleLinear() ? "   [SL]"
                  : tgd.IsLinear()     ? "   [L]"
                                       : "   [general]")
            << "\n";
  }

  std::cout << "\n== Dependency graph dg(Sigma) ==\n";
  DependencyGraph graph = BuildDependencyGraph(schema, tgds);
  std::cout << graph.num_nodes() << " nodes, " << graph.num_edges()
            << " edges (" << graph.num_special_edges() << " special)\n";
  SpecialSccs special = FindSpecialSccs(graph.graph());
  std::cout << special.components.size() << " special SCC(s)";
  for (uint32_t node : special.representatives) {
    const Position position = graph.PositionOf(node);
    std::cout << "  witness: (" << schema.PredicateName(position.pred) << ","
              << position.index + 1 << ")";
  }
  std::cout << "\n";

  std::cout << "\n== Termination checkers ==\n";
  if (AllSimpleLinear(tgds)) {
    auto sl = IsChaseFiniteSL(db, tgds);
    std::cout << "  IsChaseFinite[SL]: "
              << (sl.ok() ? (sl.value() ? "finite" : "infinite")
                          : sl.status().ToString())
              << "\n";
  } else {
    std::cout << "  IsChaseFinite[SL]: n/a (rules are not simple-linear)\n";
  }
  if (AllLinear(tgds)) {
    LCheckStats stats;
    auto l = IsChaseFiniteL(db, tgds, {}, &stats);
    std::cout << "  IsChaseFinite[L]:  "
              << (l.ok() ? (l.value() ? "finite" : "infinite")
                         : l.status().ToString())
              << "   (" << stats.num_initial_shapes << " db shapes -> "
              << stats.num_derived_shapes << " derived, "
              << stats.num_simplified_tgds << " simplified TGDs)\n";
    std::cout << "  |simple(Sigma)| would be "
              << StaticSimplificationSize(tgds)
              << " TGDs under static simplification\n";
  } else {
    std::cout << "  IsChaseFinite[L]:  n/a (rules are not linear)\n";
  }
  MaterializationOptions mat_options;
  mat_options.atom_budget = 100000;
  auto report = MaterializationCheck(db, tgds, mat_options);
  if (report.ok()) {
    std::cout << "  materialization:   "
              << (report->decided
                      ? (report->finite ? "finite" : "infinite")
                      : "undecided (budget)")
              << " after building " << report->atoms << " atoms (bound "
              << report->bound << ")\n";
  }

  std::cout << "\n== Chase variants (capped at 2000 atoms) ==\n";
  for (ChaseVariant variant :
       {ChaseVariant::kOblivious, ChaseVariant::kSemiOblivious,
        ChaseVariant::kRestricted}) {
    ChaseOptions options;
    options.variant = variant;
    options.max_atoms = 2000;
    auto result = RunChase(db, tgds, options);
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    std::cout << "  " << ChaseVariantName(variant) << ": "
              << result->instance.NumAtoms() << " atoms, "
              << result->triggers_fired << " triggers, "
              << result->rounds << " rounds, outcome "
              << ChaseOutcomeName(result->outcome) << "\n";
  }
  return 0;
}
