// Data-exchange example: source-to-target TGDs and inclusion dependencies.
//
// The chase is the standard tool for computing data-exchange solutions
// (Fagin et al.): chase the source database with the mapping; the result is
// a universal solution. Inclusion dependencies (referential integrity
// constraints) are exactly simple-linear TGDs (§1.3). This example builds a
// small HR -> analytics mapping, verifies the chase terminates with the
// checker, materializes the universal solution, and then shows how adding
// one target dependency breaks termination.

#include <iostream>

#include "chase/chase_engine.h"
#include "core/is_chase_finite.h"
#include "logic/parser.h"
#include "logic/printer.h"

namespace {

// Source schema: employees(name, dept), salaries(name, amount).
// Target schema: person(name), works(name, dept, mgr), dept(d),
// payroll(name, amount).
constexpr const char* kMapping = R"(
% --- source instance ---
employees(ada, engineering).
employees(alan, research).
salaries(ada, 120).
salaries(alan, 130).

% --- source-to-target TGDs (the mapping) ---
employees(N, D) -> person(N).
employees(N, D) -> exists M : works(N, D, M).
salaries(N, A) -> payroll(N, A).

% --- target dependencies (inclusion dependencies) ---
works(N, D, M) -> dept(D).
works(N, D, M) -> person(M).       % every manager is a person
payroll(N, A) -> person(N).
)";

// One extra target dependency: every person works somewhere. Together with
// "every manager is a person" this generates managers of managers forever.
constexpr const char* kDivergent =
    "person(N) -> exists D, M : works(N, D, M).";

void Report(const chase::Program& program) {
  using namespace chase;
  auto finite = IsChaseFiniteL(*program.database, program.tgds);
  if (!finite.ok()) {
    std::cerr << finite.status() << "\n";
    std::exit(1);
  }
  std::cout << "  termination check: "
            << (finite.value() ? "terminates" : "diverges") << "\n";
  if (!finite.value()) return;

  auto result = RunChase(*program.database, program.tgds, {});
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    std::exit(1);
  }
  std::cout << "  universal solution (" << result->instance.NumAtoms()
            << " atoms):\n";
  result->instance.ForEachAtom([&](const GroundAtom& atom) {
    // Only print target atoms (skip the copied source relations).
    const std::string& pred =
        program.schema->PredicateName(atom.pred);
    if (pred == "employees" || pred == "salaries") return;
    std::cout << "    "
              << ToString(*program.schema, *program.database, atom) << "\n";
  });
}

}  // namespace

int main() {
  using namespace chase;

  std::cout << "Data exchange with a weakly-acyclic mapping:\n";
  auto program = ParseProgram(kMapping);
  if (!program.ok()) {
    std::cerr << program.status() << "\n";
    return 1;
  }
  Report(program.value());

  std::cout << "\nSame mapping plus \"" << kDivergent << "\":\n";
  auto extended = ParseProgram(std::string(kMapping) + kDivergent);
  if (!extended.ok()) {
    std::cerr << extended.status() << "\n";
    return 1;
  }
  Report(extended.value());
  std::cout << "  (the checker catches this before any chase is run — on "
               "real data a materialization attempt would run away)\n";
  return 0;
}
