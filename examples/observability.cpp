// Observability worked example: run a parallel non-linear chase with the
// metrics registry, the trace-span recorder, and a live progress reporter
// all enabled from library code (chasectl wires the same three behind
// --metrics/--trace/--progress), then write the artifacts:
//
//   $ ./example_observability [trace.json [metrics.json]]
//
// Open trace.json at https://ui.perfetto.dev (or chrome://tracing): one
// row per thread, "round" spans on the coordinator with the per-(rule,
// fragment) "hom_task" spans and the worker pool's "chunks"/"barrier_wait"
// phases nested under the budgeted "wave" windows. metrics.json holds the
// counter/gauge/histogram dump (see README "Observability" for the
// schema).

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>

#include "chase/chase_engine.h"
#include "logic/parser.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"

namespace {

// Transitive closure (a genuinely non-linear join) over a chain, plus an
// existential fan-out — enough rounds and homomorphism work that the trace
// has real structure, while still finishing instantly.
constexpr const char* kProgram = R"(
e(a,b). e(b,c). e(c,d). e(d,f). e(f,g). e(g,h). e(h,i).

e(X, Y), e(Y, Z) -> e(X, Z).          % composition: 2-atom body
e(X, Y) -> exists W : reach(X, W).    % existential fan-out
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace chase;
  const std::string trace_path = argc > 1 ? argv[1] : "trace.json";
  const std::string metrics_path = argc > 2 ? argv[2] : "metrics.json";

  auto program = ParseProgram(kProgram);
  if (!program.ok()) {
    std::cerr << "parse failed: " << program.status() << "\n";
    return 1;
  }

  // 1. Turn everything on. Order matters only in that recording should be
  // live before the instrumented work starts. Both are process-global and
  // OFF by default — a run that never calls these pays one relaxed atomic
  // load per instrumentation site.
  obs::MetricsRegistry::SetEnabled(true);
  obs::TraceRecorder::Get().Start();

  // 2. A progress sink the engine updates with relaxed stores, and a
  // reporter thread that prints one status line per second to stderr.
  // (For this toy input you will only see the final line Stop() prints;
  // on an hour-long chase this is the difference between a black box and
  // "round 841, 31M atoms, 210k triggers/sec".)
  obs::ChaseProgressSink sink;
  obs::ProgressReporter reporter(&std::cerr, &sink,
                                 std::chrono::seconds(1));

  ChaseOptions options;
  options.variant = ChaseVariant::kSemiOblivious;
  options.max_atoms = 1'000'000;
  options.frontier_threads = 4;  // parallel trigger enumeration
  options.hom_budget = 2;        // tiny budget -> many visible waves
  options.progress = &sink;

  StatusOr<ChaseResult> result =
      RunChase(*program->database, program->tgds, options);
  reporter.Stop();
  if (!result.ok()) {
    std::cerr << "chase failed: " << result.status() << "\n";
    return 1;
  }
  std::cout << "Chase " << ChaseOutcomeName(result->outcome) << ": "
            << result->rounds << " rounds, " << result->triggers_fired
            << " triggers, " << result->instance.NumAtoms() << " atoms.\n";

  // 3. Write the artifacts. WriteJsonFile stops the recorder first, so
  // every span destructed above is committed.
  if (Status status = obs::TraceRecorder::Get().WriteJsonFile(trace_path);
      !status.ok()) {
    std::cerr << "trace write failed: " << status << "\n";
    return 1;
  }
  obs::MetricsRegistry::SetEnabled(false);
  std::ofstream metrics_out(metrics_path);
  obs::MetricsRegistry::Get().DumpJson(metrics_out);
  if (!metrics_out.good()) {
    std::cerr << "metrics write failed: " << metrics_path << "\n";
    return 1;
  }
  std::cout << "Wrote " << trace_path << " ("
            << obs::TraceRecorder::Get().recorded() << " spans, "
            << obs::TraceRecorder::Get().dropped()
            << " dropped) — load it at https://ui.perfetto.dev\n"
            << "Wrote " << metrics_path << "\n";
  return 0;
}
