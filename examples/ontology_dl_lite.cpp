// Ontology reasoning example: DL-Lite_R axioms as simple-linear TGDs.
//
// DL-Lite_R (the logic behind OWL 2 QL) embeds into simple-linear TGDs
// (§1.3 of the paper): concept inclusions A ⊑ B become A(x) -> B(x),
// role inclusions R ⊑ S become R(x,y) -> S(x,y), existential restrictions
// A ⊑ ∃R become A(x) -> ∃y R(x,y), and domain/range axioms ∃R ⊑ A become
// R(x,y) -> A(x). This example builds a small university ontology, checks
// chase termination with Algorithm 1 (IsChaseFinite[SL]), and answers an
// instance query by materialization.

#include <iostream>

#include "chase/chase_engine.h"
#include "core/is_chase_finite.h"
#include "logic/parser.h"
#include "logic/printer.h"

namespace {

constexpr const char* kOntology = R"(
% --- TBox (DL-Lite_R axioms as simple-linear TGDs) ---
% Concept hierarchy.
assistantProfessor(X) -> professor(X).
fullProfessor(X) -> professor(X).
professor(X) -> faculty(X).
faculty(X) -> person(X).
student(X) -> person(X).

% Existential restrictions: faculty teach something; students attend
% something; courses are taught by someone.
faculty(X) -> exists C : teaches(X, C).
student(X) -> exists C : attends(X, C).

% Domain/range axioms.
teaches(X, C) -> course(C).
attends(X, C) -> course(C).
teaches(X, C) -> faculty(X).

% Role inclusion: teaching implies being involved with the course.
teaches(X, C) -> involvedIn(X, C).
attends(X, C) -> involvedIn(X, C).

% --- ABox ---
assistantProfessor(ada).
fullProfessor(grace).
student(bob).
attends(bob, databases).
teaches(grace, databases).
)";

}  // namespace

int main() {
  using namespace chase;

  auto program = ParseProgram(kOntology);
  if (!program.ok()) {
    std::cerr << program.status() << "\n";
    return 1;
  }
  std::cout << "University ontology: " << program->tgds.size()
            << " axioms, " << program->database->TotalFacts()
            << " assertions.\n";

  if (!AllSimpleLinear(program->tgds)) {
    std::cerr << "DL-Lite_R axioms must translate to simple-linear TGDs\n";
    return 1;
  }

  // DL-Lite_R TBoxes can produce infinite chases (e.g. teaches/faculty
  // cycles). Check before materializing — this is exactly the paper's use
  // case for IsChaseFinite[SL].
  SlCheckStats stats;
  auto finite = IsChaseFiniteSL(*program->database, program->tgds, &stats);
  if (!finite.ok()) {
    std::cerr << finite.status() << "\n";
    return 1;
  }
  std::cout << "Termination check (Algorithm 1): "
            << (finite.value() ? "chase terminates" : "chase diverges")
            << "  [dependency graph: " << stats.graph_nodes << " positions, "
            << stats.graph_edges << " edges, " << stats.special_sccs
            << " special SCCs]\n";
  if (!finite.value()) {
    std::cout << "NOTE: with the teaches->faculty->teaches loop the chase "
                 "diverges;\nquery answering would need a different "
                 "technique (e.g. query rewriting).\n";
    return 0;
  }

  // Materialize the canonical model and answer: who is involved in what?
  auto result = RunChase(*program->database, program->tgds, {});
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  std::cout << "Canonical model: " << result->instance.NumAtoms()
            << " atoms.\nInvolvement facts (instance query involvedIn(x,y)):"
            << "\n";
  const PredId involved =
      program->schema->FindPredicate("involvedIn").value();
  for (const GroundAtom& atom : result->instance.AtomsOf(involved)) {
    std::cout << "  "
              << ToString(*program->schema, *program->database, atom)
              << "\n";
  }
  std::cout << "(terms like _:n0 are labelled nulls — objects the ontology "
               "guarantees to exist without naming them)\n";
  return 0;
}
