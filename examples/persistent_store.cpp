// Persisting a database on disk and keeping its shapes incrementally
// maintained — the workflow the paper's conclusion (Section 10) sketches for
// production deployments: the expensive db-dependent component (FindShapes)
// is paid once at load time and then amortized across updates, so every
// subsequent termination check is effectively database-independent.
//
//   $ ./persistent_store [path.db]

#include <cstdio>
#include <iostream>

#include "core/is_chase_finite.h"
#include "gen/data_generator.h"
#include "gen/tgd_generator.h"
#include "pager/disk_database.h"
#include "pager/disk_shape_finder.h"
#include "storage/shape_index.h"

int main(int argc, char** argv) {
  using namespace chase;
  const std::string path = argc > 1 ? argv[1] : "/tmp/chase_example_store.db";

  // 1. Generate a shape-rich database and persist it.
  DataGenParams params;
  params.preds = 12;
  params.min_arity = 1;
  params.max_arity = 4;
  params.dsize = 5'000;
  params.rsize = 2'000;
  params.seed = 20230322;
  StatusOr<GeneratedData> data = GenerateData(params);
  if (!data.ok()) {
    std::cerr << data.status() << "\n";
    return 1;
  }
  auto created = pager::DiskDatabase::Create(path, *data->database);
  if (!created.ok()) {
    std::cerr << created.status() << "\n";
    return 1;
  }
  std::cout << "Persisted " << (*created)->TotalTuples() << " tuples over "
            << (*created)->schema().NumPredicates() << " relations to "
            << path << " (" << (*created)->disk().num_pages()
            << " pages).\n";
  created = StatusOr<std::unique_ptr<pager::DiskDatabase>>(
      InternalError("released"));  // close the writer before reopening

  // 2. Reopen and find the shapes straight off the disk, reporting I/O.
  auto store = pager::DiskDatabase::Open(path, /*num_frames=*/128);
  if (!store.ok()) {
    std::cerr << store.status() << "\n";
    return 1;
  }
  auto shapes = pager::FindShapesOnDiskScan(**store);
  if (!shapes.ok()) {
    std::cerr << shapes.status() << "\n";
    return 1;
  }
  const auto& io = (*store)->disk().stats();
  const auto& pool = (*store)->buffer_pool().stats();
  std::cout << "FindShapes over the pager: " << shapes->size()
            << " shapes; " << io.pages_read << " pages read, "
            << pool.hits << " buffer hits / " << pool.misses
            << " misses.\n";

  // 3. Build the incremental shape index once, then stream updates through
  // it; the shape set stays current without rescanning.
  StatusOr<Database> loaded = (*store)->ToDatabase();
  if (!loaded.ok()) {
    std::cerr << loaded.status() << "\n";
    return 1;
  }
  storage::ShapeIndex index = storage::ShapeIndex::Build(*loaded);
  Rng rng(7);
  std::vector<uint32_t> tuple;
  size_t new_shapes = 0;
  for (int update = 0; update < 10'000; ++update) {
    const PredId pred =
        static_cast<PredId>(rng.Below(loaded->schema().NumPredicates()));
    GenerateShapedTuple(loaded->schema().Arity(pred), params.dsize, &rng,
                        &tuple);
    const Shape shape = ShapeOfTuple(pred, tuple);
    new_shapes += !index.Contains(shape);
    index.Insert(pred, tuple);
    if (Status status = (*store)->Append(pred, tuple); !status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
  }
  if (Status status = (*store)->SaveCatalog(); !status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }
  std::cout << "Applied 10000 updates; the index tracked " << new_shapes
            << " first-seen shapes without any rescan; store now holds "
            << (*store)->TotalTuples() << " tuples.\n";

  // 4. Termination checks that read shape(D) from the index instead of
  // scanning: the db-dependent component costs nothing per check.
  TgdGenParams tgd_params;
  tgd_params.ssize = loaded->schema().NumPredicates();
  tgd_params.min_arity = 1;
  tgd_params.max_arity = 4;
  tgd_params.tsize = 200;
  tgd_params.tclass = TgdClass::kLinear;
  tgd_params.seed = 99;
  StatusOr<std::vector<Tgd>> tgds = GenerateTgds(loaded->schema(), tgd_params);
  if (!tgds.ok()) {
    std::cerr << tgds.status() << "\n";
    return 1;
  }
  const std::vector<Shape> shapes_snapshot = index.CurrentShapes();
  LCheckOptions check_options;
  check_options.precomputed_shapes = &shapes_snapshot;
  LCheckStats check_stats;
  StatusOr<bool> finite =
      IsChaseFiniteL(*loaded, *tgds, check_options, &check_stats);
  if (!finite.ok()) {
    std::cerr << finite.status() << "\n";
    return 1;
  }
  std::cout << "IsChaseFinite[L] with the materialized shape index ("
            << index.NumShapes() << " shapes, t-shapes = 0ms): chase "
            << (finite.value() ? "terminates" : "does not terminate")
            << "; db-independent components took "
            << check_stats.graph_ms + check_stats.comp_ms << " ms.\n";

  std::remove(path.c_str());
  return 0;
}
