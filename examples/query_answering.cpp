// Ontological query answering on top of the chase — the downstream
// application the paper's introduction motivates.
//
// The pipeline is: (1) check that the semi-oblivious chase of (D, Σ)
// terminates with IsChaseFinite[L]; (2) materialize the chase, which is a
// universal model; (3) evaluate conjunctive queries on the materialization
// and keep the null-free answers — exactly the certain answers of the query
// over the ontology.
//
//   $ ./query_answering
//   $ ./query_answering program.dlgp "q(X) :- person(X)." ...

#include <iostream>

#include "logic/parser.h"
#include "logic/printer.h"
#include "query/conjunctive_query.h"

namespace {

// A small university ontology in the DL-Lite_R fragment the paper singles
// out (every axiom is a linear TGD).
constexpr const char* kUniversity = R"(
professor(turing).
professor(hopper).
student(knuth).
teaches(turing, cs101).
enrolled(knuth, cs101).

professor(X) -> faculty(X).
faculty(X)   -> person(X).
student(X)   -> person(X).
teaches(X, C) -> course(C).
enrolled(S, C) -> course(C).
course(C) -> exists P : taughtBy(C, P).   % every course has some teacher
taughtBy(C, P) -> faculty(P).
faculty(X) -> exists D : memberOf(X, D).  % every faculty joins a department
memberOf(X, D) -> dept(D).
)";

const char* kQueries[] = {
    "people(X) :- person(X).",
    "courses(C) :- course(C).",
    "facultyDepts(X) :- faculty(X), memberOf(X, D), dept(D).",
    "coTaught(S, P) :- enrolled(S, C), taughtBy(C, P).",
    "anyDept() :- dept(D).",
};

}  // namespace

int main(int argc, char** argv) {
  using namespace chase;

  StatusOr<Program> parsed = argc > 1 ? ParseProgramFile(argv[1])
                                      : ParseProgram(kUniversity);
  if (!parsed.ok()) {
    std::cerr << "parse failed: " << parsed.status() << "\n";
    return 1;
  }
  Program& program = parsed.value();
  std::cout << "Ontology: " << program.tgds.size() << " axioms, "
            << program.database->TotalFacts() << " facts.\n";

  std::vector<std::string> queries;
  if (argc > 2) {
    for (int i = 2; i < argc; ++i) queries.emplace_back(argv[i]);
  } else {
    queries.assign(std::begin(kQueries), std::end(kQueries));
  }

  for (const std::string& text : queries) {
    StatusOr<query::ConjunctiveQuery> cq =
        query::ParseQuery(text, program.schema.get());
    if (!cq.ok()) {
      std::cerr << "query parse failed: " << cq.status() << "\n";
      return 1;
    }
    StatusOr<query::CertainAnswersResult> result =
        query::CertainAnswers(*program.database, program.tgds, *cq);
    if (!result.ok()) {
      std::cerr << "certain answers failed: " << result.status() << "\n";
      return 1;
    }
    std::cout << "\n" << text << "\n";
    std::cout << "  chase size: " << result->chase_atoms << " atoms; "
              << result->answers.size() << " certain answer(s)\n";
    for (const query::Answer& answer : result->answers) {
      if (answer.empty()) {
        std::cout << "  -> true\n";
        continue;
      }
      std::cout << "  -> (";
      for (size_t i = 0; i < answer.size(); ++i) {
        if (i > 0) std::cout << ", ";
        std::cout << program.database->ConstantName(ConstantId(answer[i]));
      }
      std::cout << ")\n";
    }
  }
  return 0;
}
