// Quickstart: parse a program, check semi-oblivious chase termination, and
// (when finite) materialize the chase.
//
//   $ ./quickstart                 # runs two built-in examples
//   $ ./quickstart program.dlgp    # or your own rule/data file

#include <iostream>

#include "chase/chase_engine.h"
#include "core/is_chase_finite.h"
#include "logic/parser.h"
#include "logic/printer.h"

namespace {

// A tiny employee/department ontology whose chase terminates.
constexpr const char* kTerminating = R"(
emp(ada).
emp(alan).
mgr(grace, ada).

emp(X) -> exists D : worksIn(X, D).   % every employee works somewhere
worksIn(X, D) -> dept(D).
dept(D) -> exists H : headOf(H, D).   % every department has a head
mgr(X, Y) -> emp(X).
mgr(X, Y) -> emp(Y).
)";

// Adding one axiom — heads are employees — closes a generative cycle
// (fresh head -> fresh department -> fresh head ...): the chase diverges.
constexpr const char* kNonTerminating = R"(
emp(ada).
emp(X) -> exists D : worksIn(X, D).
worksIn(X, D) -> dept(D).
dept(D) -> exists H : headOf(H, D).
headOf(H, D) -> emp(H).
)";

int RunOne(const char* title, chase::StatusOr<chase::Program> program) {
  using namespace chase;
  std::cout << "\n=== " << title << " ===\n";
  if (!program.ok()) {
    std::cerr << "parse failed: " << program.status() << "\n";
    return 1;
  }
  std::cout << "Parsed " << program->tgds.size() << " rules and "
            << program->database->TotalFacts() << " facts over "
            << program->schema->NumPredicates() << " predicates.\n";

  if (!AllLinear(program->tgds)) {
    std::cerr << "the termination checkers require linear TGDs\n";
    return 1;
  }

  // Decide termination of the semi-oblivious chase (Algorithm 3).
  LCheckStats stats;
  StatusOr<bool> finite =
      IsChaseFiniteL(*program->database, program->tgds, {}, &stats);
  if (!finite.ok()) {
    std::cerr << "check failed: " << finite.status() << "\n";
    return 1;
  }
  std::cout << "IsChaseFinite[L]: the semi-oblivious chase "
            << (finite.value() ? "TERMINATES" : "DOES NOT TERMINATE") << "\n"
            << "  database shapes: " << stats.num_initial_shapes
            << ", derived shapes: " << stats.num_derived_shapes
            << ", simplified TGDs: " << stats.num_simplified_tgds << "\n";

  if (finite.value()) {
    // Safe to materialize.
    ChaseOptions options;
    options.variant = ChaseVariant::kSemiOblivious;
    options.max_atoms = 1'000'000;
    StatusOr<ChaseResult> result =
        RunChase(*program->database, program->tgds, options);
    if (!result.ok()) {
      std::cerr << "chase failed: " << result.status() << "\n";
      return 1;
    }
    std::cout << "Chase fixpoint after " << result->rounds
              << " rounds: " << result->instance.NumAtoms() << " atoms, "
              << result->triggers_fired << " triggers fired.\n";
    int shown = 0;
    result->instance.ForEachAtom([&](const GroundAtom& atom) {
      if (shown++ < 12) {
        std::cout << "  "
                  << ToString(*program->schema, *program->database, atom)
                  << "\n";
      }
    });
    if (shown > 12) std::cout << "  ... (" << shown - 12 << " more)\n";
  } else {
    // Demonstrate the divergence with a bounded prefix.
    ChaseOptions options;
    options.max_atoms = 50;
    StatusOr<ChaseResult> result =
        RunChase(*program->database, program->tgds, options);
    if (result.ok()) {
      std::cout << "Bounded chase prefix: " << result->instance.NumAtoms()
                << " atoms and still growing (outcome: "
                << ChaseOutcomeName(result->outcome) << ").\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace chase;
  if (argc > 1) {
    return RunOne(argv[1], ParseProgramFile(argv[1]));
  }
  int rc = RunOne("Terminating ontology", ParseProgram(kTerminating));
  rc |= RunOne("Non-terminating ontology", ParseProgram(kNonTerminating));
  return rc;
}
