// Referential integrity constraints (inclusion dependencies) as
// simple-linear TGDs — the paper's Section 1.3 observation that INDs, "a
// central class of constraints", embed directly into SL.
//
// An inclusion dependency R[i1..ik] ⊆ S[j1..jk] says the projection of R on
// i1..ik must appear in S's columns j1..jk; repairing a violation inserts an
// S-tuple with fresh (existential) values in the remaining columns — which
// is exactly a simple-linear TGD application. Cyclic INDs can therefore
// make the repair process (the chase) diverge; IsChaseFinite[SL] tells us
// in advance, per database, whether it will.
//
//   $ ./referential_integrity

#include <iostream>

#include "chase/chase_engine.h"
#include "core/is_chase_finite.h"
#include "logic/parser.h"
#include "logic/printer.h"

namespace {

// orders.customer ⊆ customers.id and customers.id ⊆ accounts.owner form a
// chain; adding accounts.owner ⊆ orders.customer closes a generative cycle.
constexpr const char* kAcyclicInds = R"(
orders(o1, ada).
orders(o2, alan).
customers(ada).

orders(O, C)   -> customers(C).             % orders.customer  ⊆ customers.id
customers(C)   -> accounts(A, C).           % customers.id     ⊆ accounts.owner
)";

constexpr const char* kCyclicInds = R"(
orders(o1, ada).

orders(O, C)   -> customers(C).
customers(C)   -> accounts(A, C).
accounts(A, C) -> orders(O, A).             % accounts.id ⊆ orders.id: cycle!
)";

int Run(const char* title, const char* text) {
  using namespace chase;
  std::cout << "\n=== " << title << " ===\n";
  auto program = ParseProgram(text);
  if (!program.ok()) {
    std::cerr << program.status() << "\n";
    return 1;
  }
  if (!AllSimpleLinear(program->tgds)) {
    std::cerr << "INDs should always be simple-linear TGDs\n";
    return 1;
  }
  std::cout << program->tgds.size()
            << " inclusion dependencies (all simple-linear)\n";

  SlCheckStats stats;
  auto finite =
      IsChaseFiniteSL(*program->database, program->tgds, &stats);
  if (!finite.ok()) {
    std::cerr << finite.status() << "\n";
    return 1;
  }
  std::cout << "IsChaseFinite[SL]: repair process "
            << (finite.value() ? "TERMINATES" : "DIVERGES") << " ("
            << stats.special_sccs << " special SCC(s) in dg(Σ))\n";

  ChaseOptions options;
  options.max_atoms = finite.value() ? 1'000'000 : 30;
  auto result = RunChase(*program->database, program->tgds, options);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  if (finite.value()) {
    std::cout << "Repaired database (" << result->instance.NumAtoms()
              << " tuples; fresh values are labelled nulls):\n";
    result->instance.ForEachAtom([&](const GroundAtom& atom) {
      std::cout << "  "
                << ToString(*program->schema, *program->database, atom)
                << "\n";
    });
  } else {
    std::cout << "Bounded repair prefix keeps growing ("
              << result->instance.NumAtoms() << " tuples and counting):\n";
    int shown = 0;
    result->instance.ForEachAtom([&](const GroundAtom& atom) {
      if (shown++ < 8) {
        std::cout << "  "
                  << ToString(*program->schema, *program->database, atom)
                  << "\n";
      }
    });
    std::cout << "  ...\n";
  }
  return 0;
}

}  // namespace

int main() {
  int rc = Run("Acyclic inclusion dependencies", kAcyclicInds);
  rc |= Run("Cyclic inclusion dependencies", kCyclicInds);
  return rc;
}
