#include "acyclicity/joint_acyclicity.h"

#include <cstdint>

#include "graph/digraph.h"
#include "graph/tarjan.h"
#include "logic/atom.h"
#include "logic/schema.h"
#include "logic/tgd.h"

namespace chase {
namespace acyclicity {

namespace {

// Dense index of the existential variables across all rules.
struct EVar {
  uint32_t rule;
  VarId var;
};

// Body/head positions (as dense schema position ids) of every universal
// variable of a rule, precomputed once.
struct RulePositions {
  // Indexed by VarId (universal only); positions of the variable in the
  // body / head atoms.
  std::vector<std::vector<uint32_t>> body;
  std::vector<std::vector<uint32_t>> head;
};

RulePositions ComputeRulePositions(const Schema& schema, const Tgd& tgd) {
  RulePositions positions;
  positions.body.resize(tgd.num_universal());
  positions.head.resize(tgd.num_universal());
  for (const RuleAtom& atom : tgd.body()) {
    for (size_t i = 0; i < atom.args.size(); ++i) {
      positions.body[atom.args[i]].push_back(
          schema.PositionId(atom.pred, static_cast<uint32_t>(i)));
    }
  }
  for (const RuleAtom& atom : tgd.head()) {
    for (size_t i = 0; i < atom.args.size(); ++i) {
      if (tgd.IsUniversal(atom.args[i])) {
        positions.head[atom.args[i]].push_back(
            schema.PositionId(atom.pred, static_cast<uint32_t>(i)));
      }
    }
  }
  return positions;
}

// The least fixpoint described in the header: starting from the head
// positions of `evar`, propagate through frontier variables whose body
// positions are fully covered.
std::vector<bool> ComputeMove(const Schema& schema,
                              const std::vector<Tgd>& tgds,
                              const std::vector<RulePositions>& positions,
                              const EVar& evar) {
  std::vector<bool> move(schema.NumPositions(), false);
  for (const RuleAtom& atom : tgds[evar.rule].head()) {
    for (size_t i = 0; i < atom.args.size(); ++i) {
      if (atom.args[i] == evar.var) {
        move[schema.PositionId(atom.pred, static_cast<uint32_t>(i))] = true;
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t r = 0; r < tgds.size(); ++r) {
      for (VarId x : tgds[r].frontier()) {
        const auto& body = positions[r].body[x];
        bool covered = true;
        for (uint32_t pos : body) {
          if (!move[pos]) {
            covered = false;
            break;
          }
        }
        if (!covered) continue;
        for (uint32_t pos : positions[r].head[x]) {
          if (!move[pos]) {
            move[pos] = true;
            changed = true;
          }
        }
      }
    }
  }
  return move;
}

}  // namespace

bool IsJointlyAcyclic(const Schema& schema, const std::vector<Tgd>& tgds,
                      JointAcyclicityStats* stats) {
  std::vector<EVar> evars;
  // first_evar[r] is the dense id of rule r's first existential variable.
  std::vector<uint32_t> first_evar(tgds.size() + 1, 0);
  for (size_t r = 0; r < tgds.size(); ++r) {
    first_evar[r] = static_cast<uint32_t>(evars.size());
    for (VarId v = tgds[r].num_universal(); v < tgds[r].num_vars(); ++v) {
      evars.push_back({static_cast<uint32_t>(r), v});
    }
  }
  first_evar[tgds.size()] = static_cast<uint32_t>(evars.size());
  if (stats != nullptr) stats->num_existential_vars = evars.size();
  if (evars.empty()) return true;  // no invention, trivially acyclic

  std::vector<RulePositions> positions;
  positions.reserve(tgds.size());
  for (const Tgd& tgd : tgds) {
    positions.push_back(ComputeRulePositions(schema, tgd));
  }

  std::vector<chase::Edge> edges;
  for (uint32_t e = 0; e < evars.size(); ++e) {
    std::vector<bool> move = ComputeMove(schema, tgds, positions, evars[e]);
    for (size_t r = 0; r < tgds.size(); ++r) {
      if (first_evar[r] == first_evar[r + 1]) continue;  // no existentials
      bool fires_on_move = false;
      for (VarId x : tgds[r].frontier()) {
        const auto& body = positions[r].body[x];
        bool covered = !body.empty();
        for (uint32_t pos : body) {
          if (!move[pos]) {
            covered = false;
            break;
          }
        }
        if (covered) {
          fires_on_move = true;
          break;
        }
      }
      if (!fires_on_move) continue;
      for (uint32_t target = first_evar[r]; target < first_evar[r + 1];
           ++target) {
        edges.push_back({e, target, false});
      }
    }
  }
  if (stats != nullptr) stats->dependency_edges = edges.size();

  // Jointly acyclic iff the existential dependency graph has no cycle: every
  // SCC is a singleton without a self-loop.
  Digraph graph(static_cast<uint32_t>(evars.size()), edges);
  SccResult scc = TarjanScc(graph);
  std::vector<uint32_t> scc_size(scc.num_components, 0);
  for (uint32_t node = 0; node < graph.num_nodes(); ++node) {
    ++scc_size[scc.component[node]];
  }
  for (const chase::Edge& edge : edges) {
    if (edge.from == edge.to) return false;  // self-loop
    if (scc.component[edge.from] == scc.component[edge.to] &&
        scc_size[scc.component[edge.from]] > 1) {
      return false;
    }
  }
  return true;
}

}  // namespace acyclicity
}  // namespace chase
