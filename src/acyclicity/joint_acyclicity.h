// Joint acyclicity (Krötzsch & Rudolph, IJCAI 2011): a *uniform* termination
// criterion for the semi-oblivious (skolem) chase that strictly generalizes
// weak acyclicity.
//
// For each existential variable y (of some rule σ), Move(y) is the least set
// of predicate positions such that (i) every head position of y in σ is in
// Move(y), and (ii) for every rule σ' and frontier variable x of σ', if
// *every* body position of x lies in Move(y), then every head position of x
// is in Move(y). Intuitively Move(y) over-approximates the positions that
// values invented for y can reach. The existential dependency graph has the
// existential variables as nodes and an edge y → y' (y' existential in σ')
// whenever some frontier variable x of σ' has all its body positions in
// Move(y) — firing σ' on y-values can then invent new y'-values. Σ is
// jointly acyclic iff this graph is acyclic.
//
// Joint acyclicity of Σ implies that chase(D, Σ) is finite for every
// database D (so in particular IsChaseFiniteSL/L return true for every D);
// the converse fails. Weak acyclicity implies joint acyclicity. Property
// tests in acyclicity_test.cc check both containments, and
// bench/acyclicity_zoo compares verdict rates and runtimes across the zoo.

#ifndef CHASE_ACYCLICITY_JOINT_ACYCLICITY_H_
#define CHASE_ACYCLICITY_JOINT_ACYCLICITY_H_

#include <vector>

#include "logic/schema.h"
#include "logic/tgd.h"

namespace chase {
namespace acyclicity {

struct JointAcyclicityStats {
  size_t num_existential_vars = 0;
  size_t dependency_edges = 0;
};

// True iff `tgds` (arbitrary TGDs over `schema`) is jointly acyclic.
bool IsJointlyAcyclic(const Schema& schema, const std::vector<Tgd>& tgds,
                      JointAcyclicityStats* stats = nullptr);

}  // namespace acyclicity
}  // namespace chase

#endif  // CHASE_ACYCLICITY_JOINT_ACYCLICITY_H_
