#include "acyclicity/mfa.h"

#include <algorithm>
#include <functional>
#include <set>
#include <utility>

#include "base/status.h"
#include "chase/instance.h"
#include "logic/atom.h"
#include "logic/schema.h"
#include "logic/term.h"
#include "logic/tgd.h"

namespace chase {
namespace acyclicity {

namespace {

// Tag of an invention site: (rule index, existential variable). Dense ids.
struct TagTable {
  // first_tag[r] = dense tag id of rule r's first existential variable.
  std::vector<uint32_t> first_tag;
  uint32_t num_tags = 0;

  explicit TagTable(const std::vector<Tgd>& tgds) {
    first_tag.resize(tgds.size() + 1);
    uint32_t next = 0;
    for (size_t r = 0; r < tgds.size(); ++r) {
      first_tag[r] = next;
      next += tgds[r].num_existential();
    }
    first_tag[tgds.size()] = next;
    num_tags = next;
  }

  uint32_t TagOf(uint32_t rule, const Tgd& tgd, VarId exvar) const {
    return first_tag[rule] + (exvar - tgd.num_universal());
  }
};

// Sorted, deduplicated tag sets. Ancestries grow slowly (bounded by
// num_tags), so sorted vectors beat bitsets for typical rule counts.
using TagSet = std::vector<uint32_t>;

TagSet UnionTagSets(const TagSet& a, const TagSet& b) {
  TagSet result;
  result.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(result));
  return result;
}

bool ContainsTag(const TagSet& set, uint32_t tag) {
  return std::binary_search(set.begin(), set.end(), tag);
}

// Backtracking enumeration of all homomorphisms from `tgd`'s body into
// `instance`, invoking `on_match` with the variable assignment. Assignment
// slots for unbound variables hold kUnbound.
// Sentinel for unbound assignment slots; null ids are allocated sequentially
// from zero, so this value can never denote a real term.
constexpr Term kUnbound = ~Term{0};

void MatchBody(const Instance& instance, const Tgd& tgd, size_t atom_index,
               std::vector<Term>* assignment,
               const std::function<void(const std::vector<Term>&)>& on_match) {
  if (atom_index == tgd.body().size()) {
    on_match(*assignment);
    return;
  }
  const RuleAtom& atom = tgd.body()[atom_index];
  for (const GroundAtom& candidate : instance.AtomsOf(atom.pred)) {
    // Unify candidate with atom under the current partial assignment.
    std::vector<std::pair<VarId, Term>> bound;
    bool ok = true;
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const VarId var = atom.args[i];
      const Term term = candidate.args[i];
      if ((*assignment)[var] == kUnbound) {
        (*assignment)[var] = term;
        bound.emplace_back(var, term);
      } else if ((*assignment)[var] != term) {
        ok = false;
        break;
      }
    }
    if (ok) {
      MatchBody(instance, tgd, atom_index + 1, assignment, on_match);
    }
    for (const auto& [var, term] : bound) (*assignment)[var] = kUnbound;
  }
}

}  // namespace

StatusOr<bool> IsModelFaithfulAcyclic(const Schema& schema,
                                      const std::vector<Tgd>& tgds,
                                      const MfaOptions& options,
                                      MfaStats* stats) {
  for (const Tgd& tgd : tgds) {
    for (const RuleAtom& atom : tgd.body()) {
      if (atom.pred >= schema.NumPredicates()) {
        return InvalidArgumentError("TGD uses a predicate not in the schema");
      }
    }
  }
  const TagTable tags(tgds);

  // The critical instance: one all-star fact per predicate. The star is
  // constant 0; only nulls carry provenance so its id never matters.
  Instance instance(&schema);
  for (PredId pred = 0; pred < schema.NumPredicates(); ++pred) {
    instance.AddAtom(GroundAtom(
        pred, std::vector<Term>(schema.Arity(pred), MakeConstant(0))));
  }

  // Provenance of every null: its own invention tag plus the ancestry of the
  // nulls its frontier binding contained (tag included).
  std::vector<TagSet> null_ancestry;

  // Semi-oblivious firing memory: one application per (rule, frontier
  // binding).
  std::set<std::pair<uint32_t, std::vector<Term>>> fired;

  bool cyclic = false;
  bool changed = true;
  while (changed && !cyclic) {
    changed = false;
    for (uint32_t r = 0; r < tgds.size() && !cyclic; ++r) {
      const Tgd& tgd = tgds[r];
      std::vector<Term> assignment(tgd.num_vars(), kUnbound);
      // Collect new triggers first: mutating the instance mid-enumeration
      // would invalidate the AtomsOf spans MatchBody iterates.
      std::vector<std::vector<Term>> pending;
      MatchBody(instance, tgd, 0, &assignment,
                [&](const std::vector<Term>& full) {
                  std::vector<Term> frontier_binding;
                  frontier_binding.reserve(tgd.frontier().size());
                  for (VarId x : tgd.frontier()) {
                    frontier_binding.push_back(full[x]);
                  }
                  if (fired.emplace(r, std::move(frontier_binding)).second) {
                    pending.push_back(full);
                  }
                });
      for (const std::vector<Term>& full : pending) {
        if (stats != nullptr) ++stats->triggers_fired;
        // Ancestry of the invented nulls: union over the frontier image.
        TagSet ancestry;
        for (VarId x : tgd.frontier()) {
          if (IsNull(full[x])) {
            ancestry = UnionTagSets(ancestry, null_ancestry[NullId(full[x])]);
          }
        }
        // Extend the assignment with fresh nulls for the existentials.
        std::vector<Term> extended = full;
        for (VarId z = tgd.num_universal(); z < tgd.num_vars(); ++z) {
          const uint32_t tag = tags.TagOf(r, tgd, z);
          if (ContainsTag(ancestry, tag)) {
            cyclic = true;  // a (σ, z)-null descends from a (σ, z)-null
            break;
          }
          const uint64_t null_id = instance.NewNullId();
          TagSet with_self = UnionTagSets(ancestry, {tag});
          null_ancestry.push_back(std::move(with_self));
          if (stats != nullptr) ++stats->nulls_created;
          extended[z] = MakeNull(null_id);
        }
        if (cyclic) break;
        for (const RuleAtom& head_atom : tgd.head()) {
          std::vector<Term> args;
          args.reserve(head_atom.args.size());
          for (VarId v : head_atom.args) args.push_back(extended[v]);
          if (instance.AddAtom(GroundAtom(head_atom.pred, std::move(args)))) {
            changed = true;
          }
        }
        if (instance.NumAtoms() > options.max_atoms) {
          return ResourceExhaustedError(
              "MFA critical chase exceeded max_atoms");
        }
      }
    }
  }
  if (stats != nullptr) stats->atoms = instance.NumAtoms();
  return !cyclic;
}

}  // namespace acyclicity
}  // namespace chase
