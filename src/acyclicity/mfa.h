// Model-faithful acyclicity (MFA, Cuenca Grau et al., JAIR 2013): the most
// general member of the acyclicity zoo implemented here. MFA runs the
// semi-oblivious chase on the *critical instance* I* = { R(*, ..., *) | R ∈
// sch(Σ) } (a single fresh constant * at every position) and declares Σ
// cyclic as soon as a *cyclic term* appears: a null invented for existential
// variable y of rule σ whose ancestry (the nulls its frontier binding was
// built from, transitively) already contains a null invented for the same
// (σ, y).
//
// If no cyclic term ever appears the chase of I* reaches a fixpoint, and
// then chase(D, Σ) is finite for every database D — the chase of any D maps
// homomorphically into the chase of I*. Super-weak, joint and weak
// acyclicity all imply MFA; the property tests check the implications that
// involve the notions implemented in this library (WA ⇒ JA ⇒ SWA ⇒ MFA).
//
// Unlike the IsChaseFinite checkers, MFA is uniform (database-independent)
// and works for arbitrary TGDs, but its check is expensive: the critical
// chase can be exponential. `max_atoms` bounds the work; exceeding it
// returns kResourceExhausted rather than a verdict.

#ifndef CHASE_ACYCLICITY_MFA_H_
#define CHASE_ACYCLICITY_MFA_H_

#include <cstdint>
#include <vector>

#include "base/status.h"
#include "logic/schema.h"
#include "logic/tgd.h"

namespace chase {
namespace acyclicity {

struct MfaOptions {
  uint64_t max_atoms = 200'000;
};

struct MfaStats {
  uint64_t atoms = 0;
  uint64_t triggers_fired = 0;
  uint64_t nulls_created = 0;
};

// True iff Σ is MFA. kResourceExhausted if the critical chase exceeds
// `options.max_atoms` atoms before reaching a verdict.
[[nodiscard]] StatusOr<bool> IsModelFaithfulAcyclic(const Schema& schema,
                                      const std::vector<Tgd>& tgds,
                                      const MfaOptions& options = {},
                                      MfaStats* stats = nullptr);

}  // namespace acyclicity
}  // namespace chase

#endif  // CHASE_ACYCLICITY_MFA_H_
