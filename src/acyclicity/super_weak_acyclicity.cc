#include "acyclicity/super_weak_acyclicity.h"

#include "logic/atom.h"
#include "logic/schema.h"
#include "logic/tgd.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <numeric>
#include <utility>
#include <vector>

namespace chase {
namespace acyclicity {

namespace {

// A head atom occurrence (rule, index into head()) or body atom occurrence
// (rule, index into body()).
struct AtomRef {
  uint32_t rule;
  uint32_t atom;

  friend auto operator<=>(const AtomRef&, const AtomRef&) = default;
};

// Union-find over the argument slots of a head atom.
class SlotUnion {
 public:
  explicit SlotUnion(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t a) {
    while (parent_[a] != a) a = parent_[a] = parent_[parent_[a]];
    return a;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

// Does the skolemization of head atom `alpha` (of rule r1) unify with body
// atom `beta` (of another — or the same — rule)? beta's variables are fresh,
// so unification only constrains alpha's terms: slots carrying the same beta
// variable must hold unifiable terms. A slot term is either a universal
// variable of r1 or the skolem term f_y(x̄) over r1's frontier x̄.
bool SkolemizedAtomsUnify(const Tgd& r1, const RuleAtom& alpha,
                          const RuleAtom& beta) {
  const size_t n = alpha.args.size();
  SlotUnion classes(n);
  // Merge slots equated by beta's repeated variables.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (beta.args[i] == beta.args[j]) classes.Union(i, j);
    }
  }
  // Merge slots holding the same alpha term (same variable, or the same
  // skolem function — skolem terms of one rule share the frontier tuple, so
  // equal function means equal term).
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (alpha.args[i] == alpha.args[j]) classes.Union(i, j);
    }
  }

  // Per class: the distinct skolem functions (existential vars) it contains
  // must number at most one.
  std::map<size_t, VarId> skolem_of_class;  // class -> existential var
  std::map<VarId, size_t> class_of_var;     // universal var -> class
  for (size_t i = 0; i < n; ++i) {
    const size_t c = classes.Find(i);
    const VarId v = alpha.args[i];
    if (r1.IsExistential(v)) {
      auto [it, inserted] = skolem_of_class.emplace(c, v);
      if (!inserted && it->second != v) return false;  // f ≠ g clash
    } else {
      class_of_var[v] = c;
    }
  }

  // Occurs check: substituting a frontier variable by a skolem term that
  // (transitively) contains it yields an infinite term. Classes form a graph
  // with an edge C → D when C contains a skolem term and some frontier
  // variable (a skolem argument) lives in D; any cycle is a violation since
  // every edge descends into a skolem argument.
  if (skolem_of_class.empty()) return true;
  std::map<size_t, std::vector<size_t>> edges;
  for (const auto& [c, exvar] : skolem_of_class) {
    (void)exvar;  // all skolem terms of r1 share the frontier tuple
    for (VarId x : r1.frontier()) {
      auto it = class_of_var.find(x);
      if (it != class_of_var.end()) edges[c].push_back(it->second);
    }
  }
  // DFS cycle detection (3-colour) over the class graph.
  std::map<size_t, int> colour;  // 0 white, 1 grey, 2 black
  std::vector<std::pair<size_t, size_t>> stack;  // (class, next edge index)
  for (const auto& [start, unused] : edges) {
    (void)unused;
    if (colour[start] != 0) continue;
    stack.clear();
    stack.emplace_back(start, 0);
    colour[start] = 1;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      const auto it = edges.find(node);
      const size_t degree = it == edges.end() ? 0 : it->second.size();
      if (next == degree) {
        colour[node] = 2;
        stack.pop_back();
        continue;
      }
      const size_t target = it->second[next++];
      if (colour[target] == 1) return false;  // back edge: occurs cycle
      if (colour[target] == 0) {
        colour[target] = 1;
        stack.emplace_back(target, 0);
      }
    }
  }
  return true;
}

// Head and body places of a variable, as (atom occurrence, arg index).
struct Place {
  AtomRef atom;
  uint32_t index;

  friend auto operator<=>(const Place&, const Place&) = default;
};

struct RulePlaces {
  // Indexed by VarId; places of the variable in the body / head.
  std::vector<std::vector<Place>> body;
  std::vector<std::vector<Place>> head;
};

class SwaContext {
 public:
  SwaContext(const std::vector<Tgd>& tgds) : tgds_(tgds) {
    places_.resize(tgds.size());
    for (uint32_t r = 0; r < tgds.size(); ++r) {
      const Tgd& tgd = tgds[r];
      places_[r].body.resize(tgd.num_vars());
      places_[r].head.resize(tgd.num_vars());
      for (uint32_t a = 0; a < tgd.body().size(); ++a) {
        const RuleAtom& atom = tgd.body()[a];
        for (uint32_t i = 0; i < atom.args.size(); ++i) {
          places_[r].body[atom.args[i]].push_back(Place{{r, a}, i});
        }
      }
      for (uint32_t a = 0; a < tgd.head().size(); ++a) {
        const RuleAtom& atom = tgd.head()[a];
        for (uint32_t i = 0; i < atom.args.size(); ++i) {
          places_[r].head[atom.args[i]].push_back(Place{{r, a}, i});
        }
      }
    }
  }

  const RulePlaces& places(uint32_t rule) const { return places_[rule]; }

  const RuleAtom& HeadAtom(const AtomRef& ref) const {
    return tgds_[ref.rule].head()[ref.atom];
  }
  const RuleAtom& BodyAtom(const AtomRef& ref) const {
    return tgds_[ref.rule].body()[ref.atom];
  }

  // Cached p ⇝ q atom-level unification: head atom occurrence `alpha` vs
  // body atom occurrence `beta`.
  bool Unify(const AtomRef& alpha, const AtomRef& beta) {
    if (HeadAtom(alpha).pred != BodyAtom(beta).pred) return false;
    auto key = std::make_pair(alpha, beta);
    auto it = unify_cache_.find(key);
    if (it != unify_cache_.end()) return it->second;
    const bool result = SkolemizedAtomsUnify(
        tgds_[alpha.rule], HeadAtom(alpha), BodyAtom(beta));
    unify_cache_.emplace(key, result);
    if (result) ++confirmed_moves_;
    return result;
  }

  // Is body place q reachable from some head place in Q via ⇝?
  bool Covered(const Place& q, const std::vector<Place>& Q) {
    for (const Place& p : Q) {
      if (p.index != q.index) continue;
      if (Unify(p.atom, q.atom)) return true;
    }
    return false;
  }

  // Move(P): the closure described in the header. P holds head places.
  std::vector<Place> Move(std::vector<Place> Q) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (uint32_t r = 0; r < tgds_.size(); ++r) {
        for (VarId x : tgds_[r].frontier()) {
          const auto& in = places_[r].body[x];
          bool all_covered = true;
          for (const Place& q : in) {
            if (!Covered(q, Q)) {
              all_covered = false;
              break;
            }
          }
          if (!all_covered) continue;
          for (const Place& h : places_[r].head[x]) {
            if (std::find(Q.begin(), Q.end(), h) == Q.end()) {
              Q.push_back(h);
              changed = true;
            }
          }
        }
      }
    }
    return Q;
  }

  size_t confirmed_moves() const { return confirmed_moves_; }

 private:
  const std::vector<Tgd>& tgds_;
  std::vector<RulePlaces> places_;
  std::map<std::pair<AtomRef, AtomRef>, bool> unify_cache_;
  size_t confirmed_moves_ = 0;
};

}  // namespace

bool IsSuperWeaklyAcyclic(const Schema& schema, const std::vector<Tgd>& tgds,
                          SuperWeakAcyclicityStats* stats) {
  (void)schema;  // places are rule-local; the schema fixes predicate ids
  SwaContext context(tgds);
  if (stats != nullptr) {
    size_t places = 0;
    for (const Tgd& tgd : tgds) {
      for (const RuleAtom& atom : tgd.body()) places += atom.args.size();
      for (const RuleAtom& atom : tgd.head()) places += atom.args.size();
    }
    stats->num_places = places;
  }

  bool acyclic = true;
  for (uint32_t r = 0; r < tgds.size() && acyclic; ++r) {
    const Tgd& tgd = tgds[r];
    for (VarId y = tgd.num_universal(); y < tgd.num_vars() && acyclic; ++y) {
      std::vector<Place> moved = context.Move(context.places(r).head[y]);
      for (VarId x : tgd.frontier()) {
        const auto& in = context.places(r).body[x];
        bool all_covered = !in.empty();
        for (const Place& q : in) {
          if (!context.Covered(q, moved)) {
            all_covered = false;
            break;
          }
        }
        if (all_covered) {
          acyclic = false;  // σ's invention site feeds σ itself
          break;
        }
      }
    }
  }
  if (stats != nullptr) stats->num_move_edges = context.confirmed_moves();
  return acyclic;
}

}  // namespace acyclicity
}  // namespace chase
