// Super-weak acyclicity (Marnette, PODS 2009): a uniform termination
// criterion for the semi-oblivious (skolem) chase sitting strictly between
// joint acyclicity and MFA.
//
// SWA refines joint acyclicity in two ways. First, it tracks *places* — a
// place is one argument slot of one atom occurrence in a rule — instead of
// predicate positions, so two rules writing into the same predicate are not
// conflated. Second, flow between a head place and a body place requires the
// two atoms to *unify once skolemized*: the head atom has each existential
// variable replaced by a skolem term f_y(x̄) over the rule's frontier, and a
// body atom with repeated variables may fail to unify with it (two distinct
// skolem functions cannot be equated, and a frontier variable cannot be
// equated with a skolem term containing it). Repeated-variable bodies are
// exactly what the paper's simplification machinery handles for linear
// TGDs, so SWA is the natural zoo member to compare against
// IsChaseFinite[L].
//
// Definitions implemented here (following Marnette):
//  * Out(σ, y): head places of existential variable y in σ.
//  * In(σ, x): body places of frontier variable x in σ.
//  * p ⇝ q: p a head place, q a body place of the same predicate and
//    argument index, and the two (skolemized) atoms unify.
//  * Move(P): least Q ⊇ P such that for every rule σ' and frontier variable
//    x of σ', if every place of In(σ', x) is reachable from Q via ⇝, then
//    the head places of x in σ' are added to Q.
//  * Σ is super-weakly acyclic iff there is no rule σ, existential y of σ,
//    and frontier x of σ such that every place of In(σ, x) is reachable
//    from Move(Out(σ, y)) via ⇝ — i.e., no invention site can feed itself.
//
// Super-weak acyclicity implies MFA and is implied by joint acyclicity;
// property tests check both containments empirically.

#ifndef CHASE_ACYCLICITY_SUPER_WEAK_ACYCLICITY_H_
#define CHASE_ACYCLICITY_SUPER_WEAK_ACYCLICITY_H_

#include <vector>

#include "logic/schema.h"
#include "logic/tgd.h"

namespace chase {
namespace acyclicity {

struct SuperWeakAcyclicityStats {
  size_t num_places = 0;
  size_t num_move_edges = 0;  // confirmed p ⇝ q pairs
};

// True iff `tgds` (arbitrary TGDs over `schema`) is super-weakly acyclic.
bool IsSuperWeaklyAcyclic(const Schema& schema, const std::vector<Tgd>& tgds,
                          SuperWeakAcyclicityStats* stats = nullptr);

}  // namespace acyclicity
}  // namespace chase

#endif  // CHASE_ACYCLICITY_SUPER_WEAK_ACYCLICITY_H_
