#include "acyclicity/uniform.h"

#include "base/status.h"
#include "core/is_chase_finite.h"
#include "core/weak_acyclicity.h"
#include "logic/database.h"
#include "logic/schema.h"
#include "logic/shape.h"
#include "logic/tgd.h"

namespace chase {
namespace acyclicity {

Database CriticalShapeDatabase(const Schema& schema) {
  Database db(&schema);
  uint32_t max_arity = 0;
  for (PredId pred = 0; pred < schema.NumPredicates(); ++pred) {
    max_arity = std::max(max_arity, schema.Arity(pred));
  }
  db.EnsureAnonymousDomain(max_arity);
  std::vector<uint32_t> tuple;
  for (PredId pred = 0; pred < schema.NumPredicates(); ++pred) {
    for (const IdTuple& id : EnumerateIdTuples(schema.Arity(pred))) {
      tuple.assign(id.begin(), id.end());
      for (uint32_t& v : tuple) --v;  // block indices are 1-based
      Status status = db.AddFact(pred, tuple);
      (void)status;  // arity always matches by construction
    }
  }
  return db;
}

StatusOr<bool> IsChaseFiniteUniform(const Schema& schema,
                                    const std::vector<Tgd>& tgds) {
  if (!AllLinear(tgds)) {
    return InvalidArgumentError("uniform check requires linear TGDs");
  }
  if (!AllHaveNonEmptyFrontier(tgds)) {
    return InvalidArgumentError("uniform check requires non-empty frontiers");
  }
  if (AllSimpleLinear(tgds)) {
    return IsWeaklyAcyclic(schema, tgds);
  }
  Database critical = CriticalShapeDatabase(schema);
  return IsChaseFiniteL(critical, tgds);
}

}  // namespace acyclicity
}  // namespace chase
