// Uniform chase termination for (simple-)linear TGDs: does chase(D, Σ)
// terminate for *every* database D?
//
// For simple-linear TGDs this is plain weak acyclicity of Σ (Theorem 3.3
// with the supportedness requirement dropped: the worst-case database
// supports every cycle). For linear TGDs, we run Algorithm 3 on the
// *critical shape database* D⊤ containing one fact per shape of sch(Σ) —
// every database's shape set is a subset of shape(sch(Σ)), and both
// D-supportedness and the dynamically simplified rule set grow monotonically
// with the shape set, so chase(D, Σ) is finite for all D iff it is finite
// for D⊤.
//
// These checks connect the per-database checkers of the paper with the
// uniform acyclicity zoo (weak / joint / super-weak / MFA): for linear Σ,
// IsChaseFiniteUniform agrees with semi-oblivious termination on all
// databases, and the zoo notions are sound (never accept a non-terminating
// Σ) but incomplete approximations. Property tests check those relations.

#ifndef CHASE_ACYCLICITY_UNIFORM_H_
#define CHASE_ACYCLICITY_UNIFORM_H_

#include <vector>

#include "base/status.h"
#include "logic/database.h"
#include "logic/schema.h"
#include "logic/tgd.h"

namespace chase {
namespace acyclicity {

// The critical shape database D⊤ over `schema`: for every predicate R and
// every shape R_id of R, one fact R(id(t̄)) whose constants are the shape's
// block indices. |D⊤| = Σ_R Bell(ar(R)).
Database CriticalShapeDatabase(const Schema& schema);

// True iff chase(D, Σ) is finite for every database D. Requires linear TGDs
// with non-empty frontiers (simple-linear inputs take the weak-acyclicity
// fast path).
[[nodiscard]] StatusOr<bool> IsChaseFiniteUniform(const Schema& schema,
                                    const std::vector<Tgd>& tgds);

}  // namespace acyclicity
}  // namespace chase

#endif  // CHASE_ACYCLICITY_UNIFORM_H_
