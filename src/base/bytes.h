// Little bounded byte-stream reader/writer used by the pager catalog and the
// binary serialization module. Writes are infallible (append to a vector);
// reads are bounds-checked and fail with kOutOfRange instead of reading past
// the end, so corrupt or truncated input is reported, never UB.

#ifndef CHASE_BASE_BYTES_H_
#define CHASE_BASE_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace chase {

class ByteWriter {
 public:
  void PutU8(uint8_t value) { bytes_.push_back(value); }
  void PutU32(uint32_t value) { PutRaw(&value, sizeof(value)); }
  void PutU64(uint64_t value) { PutRaw(&value, sizeof(value)); }

  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutRaw(s.data(), s.size());
  }

  void PutU32Span(std::span<const uint32_t> values) {
    PutU64(values.size());
    PutRaw(values.data(), values.size() * sizeof(uint32_t));
  }

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  void PutRaw(const void* data, size_t size) {
    if (size == 0) return;  // empty spans/strings may carry data() == null
    const uint8_t* p = static_cast<const uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + size);
  }

  std::vector<uint8_t> bytes_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] StatusOr<uint8_t> GetU8() {
    CHASE_RETURN_IF_ERROR(Need(1));
    return bytes_[pos_++];
  }
  [[nodiscard]] StatusOr<uint32_t> GetU32() {
    CHASE_RETURN_IF_ERROR(Need(sizeof(uint32_t)));
    uint32_t value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(value));
    pos_ += sizeof(value);
    return value;
  }
  [[nodiscard]] StatusOr<uint64_t> GetU64() {
    CHASE_RETURN_IF_ERROR(Need(sizeof(uint64_t)));
    uint64_t value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(value));
    pos_ += sizeof(value);
    return value;
  }

  [[nodiscard]] StatusOr<std::string> GetString() {
    CHASE_ASSIGN_OR_RETURN(uint32_t size, GetU32());
    CHASE_RETURN_IF_ERROR(Need(size));
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), size);
    pos_ += size;
    return s;
  }

  [[nodiscard]] StatusOr<std::vector<uint32_t>> GetU32Span() {
    CHASE_ASSIGN_OR_RETURN(uint64_t count, GetU64());
    // Validate against the remaining length before computing count * 4,
    // which could otherwise wrap for adversarial length prefixes.
    if (count > remaining() / sizeof(uint32_t)) {
      return OutOfRangeError("byte stream truncated");
    }
    std::vector<uint32_t> values(count);
    if (count != 0) {
      // The guard matters under UBSan: an empty vector's data() is null,
      // and memcpy's pointer arguments are declared nonnull even at n=0.
      std::memcpy(values.data(), bytes_.data() + pos_,
                  count * sizeof(uint32_t));
    }
    pos_ += count * sizeof(uint32_t);
    return values;
  }

  size_t remaining() const { return bytes_.size() - pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  [[nodiscard]] Status Need(uint64_t size) {
    if (pos_ + size > bytes_.size() || pos_ + size < pos_) {
      return OutOfRangeError("byte stream truncated");
    }
    return OkStatus();
  }

  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
};

}  // namespace chase

#endif  // CHASE_BASE_BYTES_H_
