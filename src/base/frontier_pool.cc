#include "base/frontier_pool.h"

namespace chase {

WorkerPool::WorkerPool(unsigned threads) : threads_(std::max(1u, threads)) {
  workers_.reserve(threads_ - 1);
  for (unsigned t = 1; t < threads_; ++t) {
    workers_.emplace_back(&WorkerPool::Loop, this, t);
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void WorkerPool::RunChunks(unsigned worker) {
  // Chunks of roughly equal size, a few per thread, dealt dynamically: a
  // worker stuck on one expensive index only holds back its chunk, and the
  // tail of the index space still spreads across the pool. Once the abort
  // flag trips, no further chunk is claimed pool-wide.
  while (abort_ == nullptr || !abort_->load(std::memory_order_acquire)) {
    const size_t first = next_.fetch_add(chunk_, std::memory_order_relaxed);
    if (first >= n_) break;
    const size_t last = std::min(n_, first + chunk_);
    for (size_t index = first; index < last; ++index) {
      (*work_)(worker, index);
    }
  }
}

void WorkerPool::ParallelFor(
    size_t n, const std::function<void(unsigned worker, size_t index)>& work,
    const std::atomic<bool>* abort) {
  if (n == 0) return;
  if (threads_ == 1 || n == 1) {
    for (size_t index = 0; index < n; ++index) {
      if (abort != nullptr && abort->load(std::memory_order_acquire)) return;
      work(0, index);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    n_ = n;
    chunk_ = FrontierChunkSize(n, threads_);
    work_ = &work;
    abort_ = abort;
    next_.store(0, std::memory_order_relaxed);
    running_ = threads_ - 1;
    ++epoch_;  // the reusable barrier: workers wake on the advance
  }
  start_cv_.notify_all();
  RunChunks(0);  // the calling thread is worker 0
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return running_ == 0; });
  work_ = nullptr;
  abort_ = nullptr;
}

void WorkerPool::RunBudgetedTasks(
    size_t num_tasks,
    const std::function<bool(unsigned worker, size_t task)>& resume,
    const std::function<bool(size_t task)>& drain,
    const std::function<void(size_t first, size_t count)>& epoch_end) {
  std::vector<char> exhausted(num_tasks, 0);
  size_t drained = 0;  // tasks fully consumed and exhausted
  while (drained < num_tasks) {
    const size_t count =
        std::min<size_t>(threads_, num_tasks - drained);
    // Parallel epoch over the window of the first `count` undrained
    // tasks. Already-exhausted tasks (kept in the window because an
    // earlier task still has work) are skipped; their buffers wait.
    ParallelFor(count, [&](unsigned worker, size_t i) {
      const size_t task = drained + i;
      if (exhausted[task] == 0 && resume(worker, task)) exhausted[task] = 1;
    });
    if (epoch_end != nullptr) epoch_end(drained, count);
    // Serial drain in task order. The first unexhausted task stops the
    // sweep — later tasks keep their buffers (each at most one budget)
    // until every output before theirs has been consumed.
    const size_t window_first = drained;
    for (size_t i = 0; i < count; ++i) {
      const size_t task = window_first + i;
      if (!drain(task)) return;  // global early cut
      if (exhausted[task] == 0) break;
      ++drained;
    }
  }
}

void WorkerPool::Loop(unsigned worker) {
  uint64_t seen_epoch = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    start_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
    if (stop_) return;
    seen_epoch = epoch_;
    lock.unlock();
    RunChunks(worker);
    lock.lock();
    // Only the ParallelFor caller waits on done_cv_, so one wakeup is
    // enough — and only the last worker to finish issues it.
    if (--running_ == 0) done_cv_.notify_one();
  }
}

void FrontierParallelFor(
    size_t n, unsigned threads,
    const std::function<void(unsigned worker, size_t index)>& work) {
  if (threads <= 1 || n <= 1) {
    for (size_t index = 0; index < n; ++index) work(0, index);
    return;
  }
  WorkerPool pool(threads);
  pool.ParallelFor(n, work);
}

}  // namespace chase
