#include "base/frontier_pool.h"

#include <atomic>
#include <thread>

namespace chase {

void FrontierParallelFor(
    size_t n, unsigned threads,
    const std::function<void(unsigned worker, size_t index)>& work) {
  threads = std::max(1u, threads);
  if (threads == 1 || n <= 1) {
    for (size_t index = 0; index < n; ++index) work(0, index);
    return;
  }

  // Chunks of roughly equal size, a few per thread, dealt dynamically: a
  // worker stuck on one expensive index only holds back its chunk, and the
  // tail of the index space still spreads across the pool.
  const size_t chunk = std::max<size_t>(1, n / (4 * threads));
  std::atomic<size_t> next{0};
  auto run = [&](unsigned worker) {
    while (true) {
      const size_t first = next.fetch_add(chunk);
      if (first >= n) break;
      const size_t last = std::min(n, first + chunk);
      for (size_t index = first; index < last; ++index) work(worker, index);
    }
  };
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) workers.emplace_back(run, t);
  for (std::thread& worker : workers) worker.join();
}

}  // namespace chase
