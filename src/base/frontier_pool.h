// A depth-synchronous parallel frontier-expansion engine.
//
// Several of the Section 5.4 algorithms share one control shape: a frontier
// of independent items is expanded, expansion discovers successor items,
// successors that were never seen before form the next frontier, repeat
// until the frontier drains. The Apriori walk of the shape lattice (items =
// candidate shapes, successors = coarser shapes) and the dynamic-
// simplification worklist (items = derived shapes, successors = head
// shapes) are both instances; the chase itself is one too (rounds =
// depths), and borrows the worker pool below for per-round trigger
// enumeration.
//
// Items at the same depth are independent by construction, so the engine
// expands each depth in parallel and barriers between depths:
//
//  * the frontier is split into chunks dealt dynamically to a worker pool
//    (the same range-partitioned chunking discipline as
//    storage::ParallelTupleScan), so one expensive item cannot pin the
//    whole depth on a single worker;
//  * discovered successors pass through a shared seen-set under striped
//    latches — the first discoverer admits an item, every later discovery
//    is dropped — and per-worker fresh-item lists are merged and sorted
//    after the barrier, so the next frontier is canonical (duplicate-free,
//    ascending) regardless of thread count or scheduling;
//  * per-item outputs are written into a per-depth slot vector and handed
//    to a serial `absorb` callback in frontier order, so anything the
//    caller accumulates (emitted TGDs, interned predicates) is ordered
//    identically to a single-threaded run.
//
// The net contract: Run with N threads produces bit-identical results to
// Run with 1 thread (which executes inline on the calling thread, with no
// pool and no latching). tests/frontier_equivalence_test.cc holds both
// consumers to it; tests/frontier_pool_test.cc stresses the engine itself
// under ThreadSanitizer.

#ifndef CHASE_BASE_FRONTIER_POOL_H_
#define CHASE_BASE_FRONTIER_POOL_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <unordered_set>
#include <vector>

#include "base/hash.h"
#include "base/padded.h"
#include "base/status.h"

namespace chase {

// Runs work(worker, index) for every index in [0, n), partitioning the
// index space into chunks of roughly equal size (a few per thread) that are
// dealt dynamically to `threads` workers, so uneven per-index cost still
// balances. threads <= 1 (or a single-index space) runs inline on the
// calling thread as worker 0. Within one worker, indices are visited in
// ascending order per chunk; across workers, any interleaving — callers
// must write only to index-private or worker-private state, or synchronize.
void FrontierParallelFor(
    size_t n, unsigned threads,
    const std::function<void(unsigned worker, size_t index)>& work);

// Counters reported by FrontierPool::Run. worker_expanded proves how the
// frontier itself was split: with one giant work item source (e.g. a single
// high-arity predicate's lattice), multiple non-zero entries mean multiple
// workers expanded parts of it.
struct FrontierStats {
  uint64_t depths = 0;           // number of synchronized frontier waves
  uint64_t seeds_admitted = 0;   // unique seeds (duplicates are dropped)
  uint64_t items_expanded = 0;   // total unique items expanded, seeds incl.
  uint64_t items_discovered = 0;  // successors admitted past the seen filter
  uint64_t max_frontier = 0;     // widest single depth
  std::vector<uint64_t> worker_expanded;  // per-worker expansion counts
};

// The engine. Item must be hashable (Hash), equality-comparable (for the
// seen-set) and strict-weak ordered by operator< (for the canonical
// per-depth sort); Out must be default-constructible.
template <typename Item, typename Out, typename Hash = std::hash<Item>>
class FrontierPool {
 public:
  struct Options {
    unsigned threads = 1;       // <= 1 expands inline, no pool, no latching
    unsigned seen_stripes = 0;  // 0 = auto (scales with the thread count)
  };

  // Successor sink handed to each expansion. Thread-confined: a worker only
  // ever touches its own fresh-item list; the shared seen-set underneath is
  // striped-latched.
  class Discoveries {
   public:
    // Admits `item` into the next frontier unless some expansion (this
    // depth or any earlier one) already discovered it.
    void Discover(Item item) {
      if (seen_->Insert(item)) fresh_->push_back(std::move(item));
    }

   private:
    friend class FrontierPool;
    class SeenSet;
    Discoveries(SeenSet* seen, std::vector<Item>* fresh)
        : seen_(seen), fresh_(fresh) {}
    SeenSet* seen_;
    std::vector<Item>* fresh_;
  };

  // Expands one item: fills `out` (absorbed serially after the depth
  // barrier) and reports successors through `discovered`. Runs concurrently
  // with other expansions of the same depth; `worker` in [0, threads)
  // indexes any caller-side thread-local state. A non-OK status aborts the
  // run after the current depth's in-flight expansions finish.
  using ExpandFn = std::function<Status(unsigned worker, const Item& item,
                                        Out* out, Discoveries* discovered)>;

  // Consumes one depth's outputs serially, items in canonical (ascending)
  // order. Runs on the calling thread between depth barriers.
  using AbsorbFn =
      std::function<Status(std::span<const Item> frontier,
                           std::span<Out> outs)>;

  explicit FrontierPool(Options options) : options_(options) {}

  // Expands from `seeds` (duplicates dropped, order irrelevant) until the
  // frontier drains. Deterministic: the frontier contents of every depth,
  // the absorb call sequence, and the final seen-set depend only on the
  // seeds and the expansion function, never on thread count or scheduling.
  Status Run(std::vector<Item> seeds, const ExpandFn& expand,
             const AbsorbFn& absorb, FrontierStats* stats = nullptr) {
    const unsigned threads = std::max(1u, options_.threads);
    // Stripe counts are rounded up to a power of two: the stripe pick masks
    // the mixed hash with (stripes - 1). A serial run keeps one unlatched
    // stripe — no mutex on the hot Discover path.
    typename Discoveries::SeenSet seen(
        threads == 1 ? 1
                     : std::bit_ceil(options_.seen_stripes != 0
                                         ? options_.seen_stripes
                                         : std::max(16u, 4 * threads)),
        /*latched=*/threads > 1);

    FrontierStats local_stats;
    FrontierStats& out_stats = stats != nullptr ? *stats : local_stats;
    out_stats = FrontierStats();
    out_stats.worker_expanded.assign(threads, 0);

    // Seed admission is serial: seed lists are small, and admission order
    // must not leak into the canonical sort's tie-free ordering anyway.
    std::vector<Item> frontier;
    frontier.reserve(seeds.size());
    for (Item& seed : seeds) {
      if (seen.Insert(seed)) frontier.push_back(std::move(seed));
    }
    std::sort(frontier.begin(), frontier.end());
    out_stats.seeds_admitted = frontier.size();

    std::vector<PaddedU64> expanded(threads);
    while (!frontier.empty()) {
      ++out_stats.depths;
      out_stats.max_frontier =
          std::max<uint64_t>(out_stats.max_frontier, frontier.size());
      std::vector<Out> outs(frontier.size());
      std::vector<std::vector<Item>> fresh(threads);
      std::vector<Status> worker_status(threads);
      FrontierParallelFor(
          frontier.size(), threads, [&](unsigned worker, size_t index) {
            if (!worker_status[worker].ok()) return;
            Discoveries discovered(&seen, &fresh[worker]);
            worker_status[worker] =
                expand(worker, frontier[index], &outs[index], &discovered);
            ++expanded[worker].value;
          });
      for (Status& status : worker_status) CHASE_RETURN_IF_ERROR(status);
      out_stats.items_expanded += frontier.size();
      CHASE_RETURN_IF_ERROR(absorb(frontier, outs));

      // Barrier reached: merge the per-worker discoveries and sort them
      // into the canonical next frontier.
      size_t total = 0;
      for (const std::vector<Item>& items : fresh) total += items.size();
      std::vector<Item> next;
      next.reserve(total);
      for (std::vector<Item>& items : fresh) {
        for (Item& item : items) next.push_back(std::move(item));
      }
      std::sort(next.begin(), next.end());
      out_stats.items_discovered += next.size();
      frontier = std::move(next);
    }
    for (unsigned t = 0; t < threads; ++t) {
      out_stats.worker_expanded[t] = expanded[t].value;
    }
    return OkStatus();
  }

 private:
  Options options_;
};

// The shared seen structure: one hash set per stripe, each under its own
// latch, stripe chosen by the decorrelated high bits of the item hash.
// Insert is the only operation — membership never shrinks — so the first
// inserter of an item owns its admission and everyone else observes a
// duplicate, whatever the interleaving. A single-threaded run constructs
// it unlatched: a plain hash-set insert, no mutex acquisition.
template <typename Item, typename Out, typename Hash>
class FrontierPool<Item, Out, Hash>::Discoveries::SeenSet {
 public:
  SeenSet(unsigned stripes, bool latched)
      : stripes_(stripes), latched_(latched) {}

  bool Insert(const Item& item) {
    Stripe& stripe =
        stripes_[FibonacciMix(Hash{}(item)) & (stripes_.size() - 1)];
    if (!latched_) return stripe.set.insert(item).second;
    std::lock_guard<std::mutex> lock(stripe.mu);
    return stripe.set.insert(item).second;
  }

 private:
  struct Stripe {
    std::mutex mu;
    std::unordered_set<Item, Hash> set;
  };
  // Constructed once at full size (power of two); never resized, so the
  // immovable mutexes stay put.
  std::vector<Stripe> stripes_;
  bool latched_;
};

}  // namespace chase

#endif  // CHASE_BASE_FRONTIER_POOL_H_
