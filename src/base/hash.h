// Shared 64-bit mixing primitives for shard selection and fingerprinting.
//
// Two kinds of mix, used by the sharded subsystems (index counters, buffer
// pool) and the content fingerprint:
//
//  * FibonacciMix: multiply by the golden-ratio constant and fold the high
//    bits down. Cheap, and ideal for shard selection when the input's low
//    bits are already used elsewhere (hash-map buckets, sequential ids) —
//    the shard choice reads the decorrelated high bits instead.
//  * Mix64: the splitmix64 finalizer — full avalanche, so every input bit
//    diffuses into the whole word. Required where single-bit inputs must
//    not cancel linearly (e.g. the null tag bit of a Term under a
//    multiplicative fold, or values summed into an order-independent
//    digest).

#ifndef CHASE_BASE_HASH_H_
#define CHASE_BASE_HASH_H_

#include <cstdint>

namespace chase {

inline uint64_t FibonacciMix(uint64_t h) {
  h *= 0x9e3779b97f4a7c15ULL;
  h ^= h >> 32;
  return h;
}

inline uint64_t Mix64(uint64_t h) {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

}  // namespace chase

#endif  // CHASE_BASE_HASH_H_
