// A cache-line-padded counter for per-thread accumulation.
//
// Parallel workers that each bump their own uint64_t must not share a
// cache line: adjacent counters in a plain vector ping the line between
// cores on every increment (false sharing). Give each worker one of these
// instead and fold the values after the join.

#ifndef CHASE_BASE_PADDED_H_
#define CHASE_BASE_PADDED_H_

#include <cstdint>

namespace chase {

struct alignas(64) PaddedU64 {
  uint64_t value = 0;
};

}  // namespace chase

#endif  // CHASE_BASE_PADDED_H_
