// Deterministic, seedable pseudo-random number generation.
//
// All generators in this library (data generator, TGD generator, property
// tests) draw from Rng so experiments are reproducible bit-for-bit from a
// seed. The engine is xoshiro256**, seeded via SplitMix64.

#ifndef CHASE_BASE_RNG_H_
#define CHASE_BASE_RNG_H_

#include <cassert>
#include <cstdint>

namespace chase {

// SplitMix64 step; used for seeding and as a cheap standalone mixer.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(uint64_t seed = 0xc4a5e11e5ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  // Uniform 64-bit value (xoshiro256**).
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform value in [0, bound). bound must be positive. Uses Lemire's
  // multiply-shift rejection method to avoid modulo bias.
  uint64_t Below(uint64_t bound) {
    assert(bound > 0);
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    auto low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = -bound % bound;
      while (low < threshold) {
        m = static_cast<__uint128_t>(Next()) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform value in the inclusive range [lo, hi].
  uint64_t Range(uint64_t lo, uint64_t hi) {
    assert(lo <= hi);
    return lo + Below(hi - lo + 1);
  }

  // True with probability `percent`/100.
  bool Percent(uint32_t percent) { return Below(100) < percent; }

  // Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  // Derives an independent child generator; useful for fanning a single
  // experiment seed out to per-task generators.
  Rng Fork() { return Rng(Next()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace chase

#endif  // CHASE_BASE_RNG_H_
