#include "base/signal_flag.h"

#include <csignal>

#include <atomic>
#include <cstdlib>

namespace chase {
namespace {

// The handler is a single relaxed store, which is async-signal-safe only
// because the atomics are lock-free; guarantee that at compile time.
std::atomic<bool> g_checkpoint_requested{false};
std::atomic<bool> g_stop_requested{false};
static_assert(std::atomic<bool>::is_always_lock_free,
              "signal flags must be lock-free to be async-signal-safe");

std::atomic<bool> g_installed{false};

// Saved dispositions, written only while no handler is installed (the
// g_installed guard serializes install/restore).
struct sigaction g_prev_usr1;
struct sigaction g_prev_term;

extern "C" void ChaseSignalFlagHandler(int signo) {
  // Async-signal-safe by construction: one lock-free atomic store, no
  // allocation, no locks, no stdio.
  if (signo == SIGUSR1) {
    g_checkpoint_requested.store(true, std::memory_order_relaxed);
  } else {
    g_stop_requested.store(true, std::memory_order_relaxed);
  }
}

}  // namespace

ScopedSignalFlags::ScopedSignalFlags() {
  if (g_installed.exchange(true, std::memory_order_acq_rel)) {
    // Two live guards would make restore-order ambiguous; signals are
    // process-global, so this is a caller bug, not a recoverable state.
    std::abort();
  }
  struct sigaction action = {};
  action.sa_handler = &ChaseSignalFlagHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;  // don't turn long writes into EINTR loops
  sigaction(SIGUSR1, &action, &g_prev_usr1);
  sigaction(SIGTERM, &action, &g_prev_term);
}

ScopedSignalFlags::~ScopedSignalFlags() {
  sigaction(SIGUSR1, &g_prev_usr1, nullptr);
  sigaction(SIGTERM, &g_prev_term, nullptr);
  g_installed.store(false, std::memory_order_release);
}

bool ScopedSignalFlags::ConsumeCheckpointRequest() {
  return g_checkpoint_requested.exchange(false, std::memory_order_relaxed);
}

bool ScopedSignalFlags::ConsumeStopRequest() {
  return g_stop_requested.exchange(false, std::memory_order_relaxed);
}

void ScopedSignalFlags::PostCheckpointRequest() {
  g_checkpoint_requested.store(true, std::memory_order_relaxed);
}

void ScopedSignalFlags::PostStopRequest() {
  g_stop_requested.store(true, std::memory_order_relaxed);
}

}  // namespace chase
