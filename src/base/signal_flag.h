// The sanctioned signal shim: the only place in the repo that registers
// signal handlers (enforced by the chase_lint `signal-handler` rule).
//
// Signal handlers may do almost nothing safely — no allocation, no locks,
// no stdio, nothing that could re-enter a mutex the interrupted thread
// holds. The entire handler here is a single store to a lock-free atomic
// flag; everything else (checkpoint serialization, file writes, logging)
// happens on the interrupted code path when it polls the flags at a safe
// boundary. This is the classic self-pipe/atomic-flag discipline minus the
// pipe: the chase engine polls at round boundaries, so no wakeup channel
// is needed.
//
// Protocol (chase/chase_engine.cc is the consumer):
//   SIGUSR1  "checkpoint now": write a checkpoint at the next round
//            boundary and keep running.
//   SIGTERM  "checkpoint and stop": write a checkpoint at the next round
//            boundary and return with ChaseOutcome::kInterrupted.
//
// Flags are process-global (signals are process-global), so at most one
// ScopedSignalFlags may be live at a time; a second construction while one
// is live is a programming error and aborts. Pending flags are NOT cleared
// on construction — a request posted just before the guard goes up is
// honored at the first poll — and consuming reads clear them, so a served
// request never leaks into a later run.

#ifndef CHASE_BASE_SIGNAL_FLAG_H_
#define CHASE_BASE_SIGNAL_FLAG_H_

namespace chase {

class ScopedSignalFlags {
 public:
  // Installs the flag-store handlers for SIGUSR1 and SIGTERM, saving the
  // previous dispositions.
  ScopedSignalFlags();
  // Restores the previous dispositions. Pending (unconsumed) flags stay
  // set.
  ~ScopedSignalFlags();

  ScopedSignalFlags(const ScopedSignalFlags&) = delete;
  ScopedSignalFlags& operator=(const ScopedSignalFlags&) = delete;

  // True once per posted request: reads and clears the flag.
  static bool ConsumeCheckpointRequest();  // SIGUSR1
  static bool ConsumeStopRequest();        // SIGTERM

  // Posts a request exactly as the signal handler would (a relaxed atomic
  // store) without delivering a signal. Lets tests and in-process callers
  // (a future `chased` scheduler preempting a chase) drive the
  // checkpoint/stop protocol deterministically.
  static void PostCheckpointRequest();
  static void PostStopRequest();
};

}  // namespace chase

#endif  // CHASE_BASE_SIGNAL_FLAG_H_
