// Lightweight error-handling primitives in the spirit of absl::Status.
//
// The library does not use exceptions for control flow; fallible operations
// return a Status or a StatusOr<T>. A Status is cheap to copy when OK (the
// common case) and carries a code plus a human-readable message otherwise.

#ifndef CHASE_BASE_STATUS_H_
#define CHASE_BASE_STATUS_H_

#include <cassert>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace chase {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kResourceExhausted = 5,
  kFailedPrecondition = 6,
  kUnimplemented = 7,
  kInternal = 8,
};

// Returns a stable, human-readable name such as "INVALID_ARGUMENT".
std::string_view StatusCodeName(StatusCode code);

// [[nodiscard]] on the class makes every function returning a Status by
// value warn when the result is ignored — with -Werror=unused-result (the
// default build flags) a dropped error is a build break. The rare
// intentional drop is spelled `(void)expr;` with a comment saying why the
// error cannot matter.
class [[nodiscard]] Status {
 public:
  // Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_shared<Rep>(Rep{code, std::move(message)})) {}

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  std::string_view message() const {
    return rep_ ? std::string_view(rep_->message) : std::string_view();
  }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

  static Status Ok() { return Status(); }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;  // null iff OK
};

std::ostream& operator<<(std::ostream& os, const Status& status);

[[nodiscard]] Status OkStatus();
[[nodiscard]] Status InvalidArgumentError(std::string message);
[[nodiscard]] Status NotFoundError(std::string message);
[[nodiscard]] Status AlreadyExistsError(std::string message);
[[nodiscard]] Status OutOfRangeError(std::string message);
[[nodiscard]] Status ResourceExhaustedError(std::string message);
[[nodiscard]] Status FailedPreconditionError(std::string message);
[[nodiscard]] Status UnimplementedError(std::string message);
[[nodiscard]] Status InternalError(std::string message);

// A value-or-error sum type. Accessing value() on an error aborts in debug
// builds; callers must check ok() first. [[nodiscard]] for the same reason
// as Status: ignoring the return loses the error.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : data_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(data_).ok() && "OK status requires a value");
  }
  StatusOr(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(data_); }

  [[nodiscard]] Status status() const {
    return ok() ? OkStatus() : std::get<Status>(data_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> data_;
};

// Propagates errors to the caller, mirroring absl's RETURN_IF_ERROR.
#define CHASE_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::chase::Status chase_status_ = (expr);        \
    if (!chase_status_.ok()) return chase_status_; \
  } while (false)

#define CHASE_INTERNAL_CONCAT_(a, b) a##b
#define CHASE_INTERNAL_CONCAT(a, b) CHASE_INTERNAL_CONCAT_(a, b)

// CHASE_ASSIGN_OR_RETURN(auto x, Foo()): assigns on success, returns on error.
#define CHASE_ASSIGN_OR_RETURN(lhs, expr)                                 \
  auto CHASE_INTERNAL_CONCAT(chase_statusor_, __LINE__) = (expr);         \
  if (!CHASE_INTERNAL_CONCAT(chase_statusor_, __LINE__).ok())             \
    return CHASE_INTERNAL_CONCAT(chase_statusor_, __LINE__).status();     \
  lhs = std::move(CHASE_INTERNAL_CONCAT(chase_statusor_, __LINE__)).value()

}  // namespace chase

#endif  // CHASE_BASE_STATUS_H_
