#include "base/strings.h"

#include <cstdio>

namespace chase {

std::vector<std::string_view> StrSplit(std::string_view text, char sep) {
  std::vector<std::string_view> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      pieces.push_back(text.substr(start));
      break;
    }
    pieces.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         (text[begin] == ' ' || text[begin] == '\t' || text[begin] == '\n' ||
          text[begin] == '\r')) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         (text[end - 1] == ' ' || text[end - 1] == '\t' ||
          text[end - 1] == '\n' || text[end - 1] == '\r')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string FormatWithCommas(int64_t value) {
  const bool negative = value < 0;
  uint64_t magnitude =
      negative ? -static_cast<uint64_t>(value) : static_cast<uint64_t>(value);
  std::string digits = std::to_string(magnitude);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  if (negative) out += '-';
  return std::string(out.rbegin(), out.rend());
}

std::string FormatMillis(double millis) {
  char buffer[64];
  if (millis < 1.0) {
    std::snprintf(buffer, sizeof(buffer), "%.0f us", millis * 1e3);
  } else if (millis < 1000.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2f ms", millis);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2f s", millis / 1e3);
  }
  return buffer;
}

}  // namespace chase
