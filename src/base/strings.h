// Small string helpers shared across the library (no dependency on absl).

#ifndef CHASE_BASE_STRINGS_H_
#define CHASE_BASE_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace chase {

// Splits `text` on `sep`, keeping empty pieces.
std::vector<std::string_view> StrSplit(std::string_view text, char sep);

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);

// Joins `pieces` with `sep`.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep);

// Formats an integer with thousands separators, e.g. 1234567 -> "1,234,567".
std::string FormatWithCommas(int64_t value);

// Formats a duration in milliseconds with a sensible unit, e.g. "12.3 ms",
// "4.56 s".
std::string FormatMillis(double millis);

}  // namespace chase

#endif  // CHASE_BASE_STRINGS_H_
