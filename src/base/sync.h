// Annotated synchronization primitives: the compile-time half of the
// repo's concurrency contract.
//
// Every latch in this codebase is a chase::Mutex, every scope-lock a
// chase::MutexLock, every condition variable a chase::CondVar. The
// wrappers are zero-cost pass-throughs over std::mutex /
// std::condition_variable; what they add is Clang thread-safety
// annotations (-Wthread-safety), so the locking discipline that used to
// live in comments — "guarded by mu_", "requires the shard latch" — is a
// compile-time proof under Clang and CI fails on any access to a
// GUARDED_BY field without its latch. Under other compilers the macros
// expand to nothing and the wrappers compile to the std types' code.
//
// Discipline for new code:
//  * declare shared fields GUARDED_BY(mu_);
//  * methods called with the latch held take REQUIRES(mu_);
//  * methods that must NOT be called with it held take EXCLUDES(mu_);
//  * the rare deliberate unlatched access (a barrier or pin invariant
//    standing in for the latch) gets NO_THREAD_SAFETY_ANALYSIS with a
//    comment naming the invariant that replaces the lock.
//
// Condition-variable predicates: write explicit `while (!pred) cv.Wait(mu)`
// loops instead of predicate lambdas — the analysis can follow guarded
// reads in the enclosing function but not through a lambda's operator().

#ifndef CHASE_BASE_SYNC_H_
#define CHASE_BASE_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// Clang thread-safety analysis attributes (abseil-style spellings). The
// `defined(__clang__)` gate keeps GCC builds attribute-free rather than
// relying on __has_attribute probes per macro: Clang supports the whole
// family together.
#if defined(__clang__) && !defined(SWIG)
#define CHASE_TS_ATTRIBUTE(x) __attribute__((x))
#else
#define CHASE_TS_ATTRIBUTE(x)  // no-op outside Clang
#endif

#define CAPABILITY(x) CHASE_TS_ATTRIBUTE(capability(x))
#define SCOPED_CAPABILITY CHASE_TS_ATTRIBUTE(scoped_lockable)
#define GUARDED_BY(x) CHASE_TS_ATTRIBUTE(guarded_by(x))
#define PT_GUARDED_BY(x) CHASE_TS_ATTRIBUTE(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) CHASE_TS_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) CHASE_TS_ATTRIBUTE(acquired_after(__VA_ARGS__))
#define REQUIRES(...) \
  CHASE_TS_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  CHASE_TS_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) CHASE_TS_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  CHASE_TS_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) CHASE_TS_ATTRIBUTE(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  CHASE_TS_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  CHASE_TS_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  CHASE_TS_ATTRIBUTE(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) CHASE_TS_ATTRIBUTE(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) CHASE_TS_ATTRIBUTE(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  CHASE_TS_ATTRIBUTE(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) CHASE_TS_ATTRIBUTE(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  CHASE_TS_ATTRIBUTE(no_thread_safety_analysis)

namespace chase {

class CondVar;

// std::mutex with the "mutex" capability: fields declared GUARDED_BY an
// instance may only be touched while it is held, enforced by Clang.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII scope lock over a chase::Mutex (the std::lock_guard of this
// codebase). SCOPED_CAPABILITY teaches the analysis that the capability is
// held for exactly the guard's scope.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// std::shared_mutex with the "mutex" capability: many readers or one
// writer. Reader-side methods carry the *_SHARED attribute family, so a
// method annotated REQUIRES_SHARED(mu_) may be entered under either lock
// flavor, while writes to GUARDED_BY fields still demand the exclusive
// side. Use for read-mostly structures whose reads are too hot to
// serialize (e.g. SeenSet membership probes under a saturated frontier).
class CAPABILITY("mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

// RAII exclusive scope lock over a chase::SharedMutex — the writer side.
class SCOPED_CAPABILITY SharedMutexLock {
 public:
  explicit SharedMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~SharedMutexLock() RELEASE() { mu_.Unlock(); }

  SharedMutexLock(const SharedMutexLock&) = delete;
  SharedMutexLock& operator=(const SharedMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// RAII shared scope lock over a chase::SharedMutex — the reader side. The
// analysis treats the scope as holding the capability shared: reads of
// GUARDED_BY fields are admitted, writes are still rejected.
class SCOPED_CAPABILITY SharedReaderLock {
 public:
  explicit SharedReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~SharedReaderLock() RELEASE() { mu_.UnlockShared(); }

  SharedReaderLock(const SharedReaderLock&) = delete;
  SharedReaderLock& operator=(const SharedReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

// std::condition_variable over chase::Mutex. Wait atomically releases and
// reacquires the mutex exactly like std::condition_variable::wait; the
// REQUIRES annotation reflects the caller's view (held before and after),
// which is what the analysis needs for the guarded fields a wait loop
// rechecks. Zero-cost: the adopt/release unique_lock dance below is
// pointer bookkeeping with no extra atomic.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  // Returns std::cv_status::timeout when the deadline passed first.
  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace chase

#endif  // CHASE_BASE_SYNC_H_
