#include "base/table_printer.h"

#include <algorithm>
#include <cassert>

namespace chase {

TablePrinter::TablePrinter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  assert(row.size() == columns_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) widths[i] = columns_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << (i == 0 ? "| " : " | ");
      os << row[i];
      os << std::string(widths[i] - row[i].size(), ' ');
    }
    os << " |\n";
  };
  auto print_rule = [&]() {
    for (size_t i = 0; i < widths.size(); ++i) {
      os << (i == 0 ? "+-" : "-+-") << std::string(widths[i], '-');
    }
    os << "-+\n";
  };
  print_rule();
  print_row(columns_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ',';
      os << row[i];
    }
    os << '\n';
  };
  emit(columns_);
  for (const auto& row : rows_) emit(row);
}

void TablePrinter::PrintJson(std::ostream& os) const {
  auto escaped = [](const std::string& value) {
    std::string out;
    out.reserve(value.size() + 2);
    for (char c : value) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        default:
          out += c;
      }
    }
    return out;
  };
  os << "[\n";
  for (size_t r = 0; r < rows_.size(); ++r) {
    os << "  {";
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (i > 0) os << ", ";
      os << '"' << escaped(columns_[i]) << "\": \"" << escaped(rows_[r][i])
         << '"';
    }
    os << (r + 1 < rows_.size() ? "},\n" : "}\n");
  }
  os << "]\n";
}

}  // namespace chase
