// Plain-text table output for the benchmark harness. Each bench binary prints
// the rows/series of the corresponding paper figure or table through this
// class, and can additionally emit CSV for downstream plotting.

#ifndef CHASE_BASE_TABLE_PRINTER_H_
#define CHASE_BASE_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace chase {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns);

  void AddRow(std::vector<std::string> row);

  // Renders an aligned ASCII table.
  void Print(std::ostream& os) const;

  // Renders the same content as CSV (header + rows).
  void PrintCsv(std::ostream& os) const;

  // Renders the same content as a JSON array of row objects keyed by the
  // column names (all values emitted as strings, exactly as printed). The
  // machine-readable BENCH_<name>.json artifacts the ablations publish go
  // through this.
  void PrintJson(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace chase

#endif  // CHASE_BASE_TABLE_PRINTER_H_
