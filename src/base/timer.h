// Wall-clock timing utilities used by the benchmark harness to report the
// paper's time parameters (t-parse, t-graph, t-comp, t-shapes).

#ifndef CHASE_BASE_TIMER_H_
#define CHASE_BASE_TIMER_H_

#include <chrono>
#include <cstdint>

namespace chase {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Elapsed time since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates the time breakdown of one termination-check run, mirroring the
// paper's reporting (Sections 7 and 8). All values in milliseconds.
struct TimeBreakdown {
  double parse_ms = 0;   // t-parse
  double graph_ms = 0;   // t-graph (includes simplification for linear TGDs)
  double comp_ms = 0;    // t-comp
  double shapes_ms = 0;  // t-shapes (db-dependent component; linear TGDs only)

  double TotalMs() const { return parse_ms + graph_ms + comp_ms + shapes_ms; }
  // The paper's t-total for the db-independent component (Section 8).
  double DbIndependentMs() const { return parse_ms + graph_ms + comp_ms; }
};

}  // namespace chase

#endif  // CHASE_BASE_TIMER_H_
