// Wall-clock timing utilities. The paper's time-parameter breakdown
// (t-parse, t-graph, t-comp, t-shapes) lives in obs/metrics.h as
// obs::TimeParams, shared by the library, the CLI, and the benches.

#ifndef CHASE_BASE_TIMER_H_
#define CHASE_BASE_TIMER_H_

#include <chrono>
#include <cstdint>

namespace chase {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Elapsed time since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace chase

#endif  // CHASE_BASE_TIMER_H_
