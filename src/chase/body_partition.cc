#include "chase/body_partition.h"

#include "chase/instance.h"
#include "logic/schema.h"
#include "logic/tgd.h"

#include <algorithm>

namespace chase {
namespace {

// Cost estimates saturate: a cross-product of a few large relations
// overflows uint64 long before it overflows the planner's patience, and a
// saturated estimate still splits maximally.
uint64_t SatMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > UINT64_MAX / b) return UINT64_MAX;
  return a * b;
}

uint64_t SatAdd(uint64_t a, uint64_t b) {
  return a > UINT64_MAX - b ? UINT64_MAX : a + b;
}

struct Range {
  size_t begin;
  size_t end;

  size_t size() const { return end - begin; }
  bool empty() const { return end == begin; }
};

// The candidate-row range of body position `pos` for the (rule, delta_pos)
// task — the same window rule the serial enumeration hard-codes: the delta
// rows at the delta position, only previous-rounds rows before it (so each
// trigger is enumerated once, at its first delta position), the full
// round-start prefix after it.
Range CandidateRange(const Tgd& tgd, const RoundView& view, size_t delta_pos,
                     size_t pos) {
  const PredId pred = tgd.body()[pos].pred;
  if (pos == delta_pos) return {view.PrevOf(pred), view.CurOf(pred)};
  if (pos < delta_pos) return {0, view.PrevOf(pred)};
  return {0, view.CurOf(pred)};
}

// Estimated enumeration cost of one position-0 row: the product of the
// candidate counts of every inner position. 1 for a linear body.
uint64_t InnerCost(const Tgd& tgd, const RoundView& view, size_t delta_pos) {
  uint64_t cost = 1;
  for (size_t pos = 1; pos < tgd.body().size(); ++pos) {
    cost = SatMul(cost, CandidateRange(tgd, view, delta_pos, pos).size());
  }
  return cost;
}

}  // namespace

std::vector<BodyPartition> PlanBodyPartitions(const std::vector<Tgd>& tgds,
                                              const RoundView& view,
                                              unsigned threads) {
  const uint64_t num_threads = std::max(1u, threads);
  // Pass 1: the round's total estimated cost, to size the grain — the same
  // few-fragments-per-worker discipline as FrontierChunkSize, but weighted
  // by estimated join cost instead of row count.
  uint64_t total = 0;
  for (const Tgd& tgd : tgds) {
    for (size_t delta_pos = 0; delta_pos < tgd.body().size(); ++delta_pos) {
      uint64_t cost = 1;
      for (size_t pos = 0; pos < tgd.body().size(); ++pos) {
        cost = SatMul(cost, CandidateRange(tgd, view, delta_pos, pos).size());
      }
      total = SatAdd(total, cost);
    }
  }
  const uint64_t grain = std::max<uint64_t>(1, total / (4 * num_threads));

  std::vector<BodyPartition> parts;
  for (size_t rule = 0; rule < tgds.size(); ++rule) {
    const Tgd& tgd = tgds[rule];
    const size_t body_size = tgd.body().size();
    for (size_t delta_pos = 0; delta_pos < body_size; ++delta_pos) {
      bool empty = false;
      for (size_t pos = 0; pos < body_size; ++pos) {
        if (CandidateRange(tgd, view, delta_pos, pos).empty()) {
          empty = true;
          break;
        }
      }
      if (empty) continue;  // some position has no candidates: no triggers

      const Range r0 = CandidateRange(tgd, view, delta_pos, 0);
      const Range r1 = body_size > 1
                           ? CandidateRange(tgd, view, delta_pos, 1)
                           : Range{0, 0};
      const uint64_t inner = InnerCost(tgd, view, delta_pos);

      // A single position-0 row heavier than the grain: pin each row and
      // split the position-1 range under it. Self-limiting — at most
      // ~4·threads such rows fit in `total`, and the per-row fragment
      // count is capped at 4·threads besides.
      uint64_t sub = 0;
      if (inner > grain && body_size > 1 && r1.size() > 1) {
        sub = inner / grain + (inner % grain != 0 ? 1 : 0);
        sub = std::min<uint64_t>({sub, r1.size(), 4 * num_threads});
      }
      if (sub > 1) {
        const size_t step = (r1.size() + sub - 1) / sub;
        for (size_t row0 = r0.begin; row0 < r0.end; ++row0) {
          for (size_t b1 = r1.begin; b1 < r1.end; b1 += step) {
            parts.push_back({static_cast<uint32_t>(rule),
                             static_cast<uint32_t>(delta_pos), row0, row0 + 1,
                             b1, std::min(r1.end, b1 + step)});
          }
        }
      } else {
        const size_t rows_per = static_cast<size_t>(
            std::max<uint64_t>(1, grain / std::max<uint64_t>(1, inner)));
        for (size_t b0 = r0.begin; b0 < r0.end; b0 += rows_per) {
          parts.push_back({static_cast<uint32_t>(rule),
                           static_cast<uint32_t>(delta_pos), b0,
                           std::min(r0.end, b0 + rows_per), r1.begin, r1.end});
        }
      }
    }
  }
  return parts;
}

void HomEnumerator::Reset(const Tgd* tgd, const Instance* instance,
                          const RoundView* view, const BodyPartition& part) {
  tgd_ = tgd;
  instance_ = instance;
  view_ = view;
  part_ = part;
  const size_t n = tgd->body().size();
  h_.assign(tgd->num_vars(), kUnboundTerm);
  trail_.clear();
  row_.assign(n, 0);
  mark_.assign(n, 0);
  depth_ = 0;
  row_[0] = part.begin0;
  at_hom_ = false;
  done_ = false;
}

HomEnumerator::Range HomEnumerator::RangeOf(size_t pos) const {
  if (pos == 0) return {part_.begin0, part_.end0};
  if (pos == 1) return {part_.begin1, part_.end1};
  const PredId pred = tgd_->body()[pos].pred;
  if (pos == part_.delta_pos) return {view_->PrevOf(pred), view_->CurOf(pred)};
  if (pos < part_.delta_pos) return {0, view_->PrevOf(pred)};
  return {0, view_->CurOf(pred)};
}

bool HomEnumerator::Next() {
  if (done_) return false;
  const auto& body = tgd_->body();
  const size_t n = body.size();
  if (at_hom_) {
    // Step off the homomorphism emitted last time: unbind the deepest
    // position and advance its cursor.
    at_hom_ = false;
    depth_ = n - 1;
    UndoBindings(h_, trail_, mark_[depth_]);
    ++row_[depth_];
  }
  while (true) {
    const Range range = RangeOf(depth_);
    bool descended = false;
    while (row_[depth_] < range.end) {
      mark_[depth_] = trail_.size();
      // Re-fetch the atom vector on every access: serial applies between
      // resume epochs may reallocate it. Rows below the round window — the
      // only rows any range reaches — are stable.
      if (TryBindAtom(body[depth_],
                      instance_->AtomsOf(body[depth_].pred)[row_[depth_]], h_,
                      trail_)) {
        ++depth_;
        if (depth_ == n) {
          at_hom_ = true;
          return true;
        }
        row_[depth_] = RangeOf(depth_).begin;
        descended = true;
        break;
      }
      ++row_[depth_];
    }
    if (descended) continue;
    // This depth's range is exhausted: backtrack, or finish at the root.
    if (depth_ == 0) {
      done_ = true;
      return false;
    }
    --depth_;
    UndoBindings(h_, trail_, mark_[depth_]);
    ++row_[depth_];
  }
}

}  // namespace chase
