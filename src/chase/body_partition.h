// Partitioning the body-homomorphism space of multi-atom TGDs for parallel
// trigger enumeration (the K-Join recipe adapted to the chase's semi-naive
// rounds).
//
// The serial engine enumerates the triggers of a round by streaming, for
// each rule and each delta position d, a nested-loop join over the body
// atoms: position 0 is the outermost loop, each position's candidate rows
// are a contiguous range fixed by the round window (delta rows at d, the
// previous-rounds prefix before d, the full round-start prefix after d).
// Parallelizing that stream without giving up the bit-identical-result
// contract hinges on one property: the serial order is the lexicographic
// order of (rule, delta position, row at position 0, row at position 1, …).
// So instead of hash-partitioning a join variable — which deals rows of one
// loop level round-robin across partitions and interleaves their outputs in
// the streaming order — the planner splits candidate *ranges*:
//
//  * every (rule, delta position) task splits on its outermost loop, the
//    position-0 candidate range (for d == 0 that is the delta range the
//    linear path already split; for d > 0 it is the previous-rounds
//    prefix);
//  * when one position-0 row is still heavier than the grain (a hot row
//    whose inner join cross-products against whole relations — the
//    non-linear analogue of the high-arity predicate PR 4 unpinned), the
//    row is pinned and the position-1 candidate range is split under it.
//
// Concatenating the fragments in (rule, delta_pos, begin0, begin1) order —
// the order PlanBodyPartitions emits them — replays the serial stream
// exactly, so the apply loop needs no merge and no order keys. Fragment
// sizing uses estimated enumeration cost (the product of candidate-range
// sizes, saturating), with the usual grain of a few fragments per worker;
// the per-row split is self-limiting: a row only splits when its inner cost
// exceeds the grain, and at most ~4·threads such rows fit in the round's
// total cost, so fragment counts stay O(tasks + threads²).
//
// HomEnumerator is the resumable cursor over one fragment: a paused
// iterative backtracking search (per-position row cursors + binding trail)
// that Next() advances one homomorphism at a time. The chase's budgeted
// enumerate→pause→apply→resume protocol (WorkerPool::RunBudgetedTasks)
// leans on Next() being stoppable anywhere: a worker fills a bounded
// buffer, parks, and later resumes from the exact backtracking state.

#ifndef CHASE_CHASE_BODY_PARTITION_H_
#define CHASE_CHASE_BODY_PARTITION_H_

#include <cstdint>
#include <vector>

#include "chase/instance.h"
#include "logic/atom.h"
#include "logic/schema.h"
#include "logic/term.h"
#include "logic/tgd.h"

namespace chase {

inline constexpr Term kUnboundTerm = ~uint64_t{0};

// Attempts to extend `h` so that `pattern` maps onto `atom`; records newly
// bound variables in `trail` so the caller can undo. Shared by the serial
// streaming enumeration, HeadSatisfied, and HomEnumerator — one binding
// discipline, so the paths cannot diverge.
inline bool TryBindAtom(const RuleAtom& pattern, const GroundAtom& atom,
                        std::vector<Term>& h, std::vector<VarId>& trail) {
  const size_t undo_mark = trail.size();
  for (size_t i = 0; i < pattern.args.size(); ++i) {
    const VarId var = pattern.args[i];
    if (h[var] == kUnboundTerm) {
      h[var] = atom.args[i];
      trail.push_back(var);
    } else if (h[var] != atom.args[i]) {
      while (trail.size() > undo_mark) {
        h[trail.back()] = kUnboundTerm;
        trail.pop_back();
      }
      return false;
    }
  }
  return true;
}

inline void UndoBindings(std::vector<Term>& h, std::vector<VarId>& trail,
                         size_t mark) {
  while (trail.size() > mark) {
    h[trail.back()] = kUnboundTerm;
    trail.pop_back();
  }
}

// Per-round visibility window: body atoms are matched against the instance
// as of the start of the round ("cur"), with semi-naive deltas given by
// "prev" (atoms created in the previous round have index in [prev, cur)).
struct RoundView {
  std::vector<size_t> prev;
  std::vector<size_t> cur;

  size_t PrevOf(PredId pred) const {
    return pred < prev.size() ? prev[pred] : 0;
  }
  size_t CurOf(PredId pred) const { return pred < cur.size() ? cur[pred] : 0; }
};

// One fragment of a (rule, delta position) task's homomorphism space: a
// contiguous sub-range of the position-0 candidate rows, and — for a
// join-split fragment pinning a single hot position-0 row — a contiguous
// sub-range of the position-1 candidate rows. Positions >= 2 (and position
// 1 of non-join-split fragments, where [begin1, end1) just restates the
// full range) always cover their full round-window range.
struct BodyPartition {
  uint32_t rule = 0;
  uint32_t delta_pos = 0;
  size_t begin0 = 0;
  size_t end0 = 0;
  size_t begin1 = 0;  // meaningful only when the body has >= 2 atoms
  size_t end1 = 0;
};

// Plans the round's fragments in canonical (rule, delta_pos, begin0,
// begin1) order — exactly the serial streaming order of their outputs.
// Tasks with an empty delta produce no fragment. Depends only on `tgds`,
// the round window, and `threads` (never on instance contents or
// scheduling), so the plan itself is deterministic.
std::vector<BodyPartition> PlanBodyPartitions(const std::vector<Tgd>& tgds,
                                              const RoundView& view,
                                              unsigned threads);

// The resumable enumeration cursor over one fragment. Usage:
//
//   HomEnumerator e;
//   e.Reset(&tgd, &instance, &view, part);
//   while (e.Next()) consume(e.hom());   // pausable between any two calls
//
// Next() returns true with hom() bound on all universal variables (the
// fragment's next homomorphism in streaming order), false when the fragment
// is exhausted. The full backtracking state — partial assignment, binding
// trail, per-position row cursors — lives in the enumerator, so a paused
// fragment resumes with zero re-enumeration.
//
// Concurrency: Next() only reads instance rows below the fragment's fixed
// round-window bounds, and re-fetches the per-predicate atom vector on
// every access, so serial appends *between* resume epochs (which may
// reallocate those vectors) are safe as long as the caller orders them
// before the next resume — which the worker pool's barrier does.
//
// hom() is mutable on purpose: the restricted variant's pre-filter
// transiently binds existential variables during its satisfaction probe and
// restores them through its own trail before returning.
class HomEnumerator {
 public:
  void Reset(const Tgd* tgd, const Instance* instance, const RoundView* view,
             const BodyPartition& part);

  // Advances to the fragment's next homomorphism. False once exhausted
  // (then stays false).
  bool Next();

  std::vector<Term>& hom() { return h_; }

 private:
  struct Range {
    size_t begin;
    size_t end;
  };
  Range RangeOf(size_t pos) const;

  const Tgd* tgd_ = nullptr;
  const Instance* instance_ = nullptr;
  const RoundView* view_ = nullptr;
  BodyPartition part_;

  std::vector<Term> h_;        // partial assignment, kUnboundTerm = free
  std::vector<VarId> trail_;   // bound-variable undo log
  std::vector<size_t> row_;    // per-position candidate-row cursor
  std::vector<size_t> mark_;   // per-position trail watermark
  size_t depth_ = 0;           // position currently being advanced
  bool at_hom_ = false;        // paused on an emitted homomorphism
  bool done_ = true;
};

}  // namespace chase

#endif  // CHASE_CHASE_BODY_PARTITION_H_
