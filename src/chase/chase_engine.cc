#include "chase/chase_engine.h"

#include <optional>
#include <span>
#include <unordered_set>

#include "base/frontier_pool.h"
#include "index/sharded_shape_index.h"
#include "logic/shape.h"

namespace chase {
namespace {

constexpr Term kUnbound = ~uint64_t{0};

// Trigger keys: [rule_index, bound values...]. For the oblivious chase the
// values are the full body assignment; for the semi-oblivious chase only the
// frontier restriction h|fr(σ).
struct KeyHash {
  size_t operator()(const std::vector<uint64_t>& key) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (uint64_t v : key) {
      h ^= v;
      h *= 0x100000001b3ULL;
      h ^= h >> 29;
    }
    return static_cast<size_t>(h);
  }
};
using KeySet = std::unordered_set<std::vector<uint64_t>, KeyHash>;

// Attempts to extend `h` so that `pattern` maps onto `atom`; records newly
// bound variables in `trail` so the caller can undo.
bool TryBind(const RuleAtom& pattern, const GroundAtom& atom,
             std::vector<Term>& h, std::vector<VarId>& trail) {
  const size_t undo_mark = trail.size();
  for (size_t i = 0; i < pattern.args.size(); ++i) {
    const VarId var = pattern.args[i];
    if (h[var] == kUnbound) {
      h[var] = atom.args[i];
      trail.push_back(var);
    } else if (h[var] != atom.args[i]) {
      while (trail.size() > undo_mark) {
        h[trail.back()] = kUnbound;
        trail.pop_back();
      }
      return false;
    }
  }
  return true;
}

void Undo(std::vector<Term>& h, std::vector<VarId>& trail, size_t mark) {
  while (trail.size() > mark) {
    h[trail.back()] = kUnbound;
    trail.pop_back();
  }
}

// Per-round visibility window: body atoms are matched against the instance
// as of the start of the round ("cur"), with semi-naive deltas given by
// "prev" (atoms created in the previous round have index in [prev, cur)).
struct RoundView {
  std::vector<size_t> prev;
  std::vector<size_t> cur;

  size_t PrevOf(PredId pred) const { return pred < prev.size() ? prev[pred] : 0; }
  size_t CurOf(PredId pred) const { return pred < cur.size() ? cur[pred] : 0; }
};

// Enumerates the body homomorphisms of `tgd` whose atom at `delta_pos` is
// drawn from delta rows [delta_begin, delta_end); calls `fn(h)` with h
// bound on all universal variables. Only rows below the round-start
// watermark (view.cur) are ever read, so the enumeration is independent of
// atoms applied during the round — which is what lets the parallel path
// below enumerate a whole round's triggers concurrently before applying
// any of them.
template <typename Fn>
void ForEachDeltaHom(const Tgd& tgd, const Instance& instance,
                     const RoundView& view, size_t delta_pos,
                     size_t delta_begin, size_t delta_end,
                     std::vector<Term>& h, std::vector<VarId>& trail,
                     Fn&& fn) {
  const auto& body = tgd.body();
  // Backtracking over body atoms with per-position candidate ranges.
  auto recurse = [&](auto&& self, size_t index) -> void {
    if (index == body.size()) {
      fn(h);
      return;
    }
    const PredId pred = body[index].pred;
    size_t begin = 0;
    size_t end = view.CurOf(pred);
    if (index == delta_pos) {
      begin = delta_begin;
      end = delta_end;
    } else if (index < delta_pos) {
      end = view.PrevOf(pred);
    }
    for (size_t row = begin; row < end; ++row) {
      const size_t mark = trail.size();
      // Re-fetch per iteration: `fn` may grow the instance, reallocating
      // the per-predicate atom vector.
      if (TryBind(body[index], instance.AtomsOf(pred)[row], h, trail)) {
        self(self, index + 1);
        Undo(h, trail, mark);
      }
    }
  };
  recurse(recurse, 0);
}

// Enumerates every body homomorphism of `tgd` into the round-start instance
// that uses at least one delta atom. Each such trigger is enumerated
// exactly once: the delta position is the first body atom matched to a
// delta atom.
template <typename Fn>
void ForEachNewBodyHom(const Tgd& tgd, const Instance& instance,
                       const RoundView& view, std::vector<Term>& h,
                       std::vector<VarId>& trail, Fn&& fn) {
  for (size_t delta_pos = 0; delta_pos < tgd.body().size(); ++delta_pos) {
    const PredId pred = tgd.body()[delta_pos].pred;
    ForEachDeltaHom(tgd, instance, view, delta_pos, view.PrevOf(pred),
                    view.CurOf(pred), h, trail, fn);
  }
}

// One unit of parallel trigger enumeration: a delta-row range of one
// (rule, delta position). Tasks are built — and their homomorphisms later
// applied — in (rule, delta_pos, first delta row) order, which is exactly
// the serial enumeration order; only delta_pos == 0 ranges are split,
// because there the delta rows drive the outermost backtracking loop and
// chunk concatenation preserves the homomorphism order. (Linear TGDs, the
// paper's case, have single-atom bodies, so their whole delta always
// splits.)
struct EnumTask {
  size_t rule;
  size_t delta_pos;
  size_t delta_begin;
  size_t delta_end;
};

// True iff some extension of the frontier assignment `h` maps every head
// atom into `instance` (the restricted chase's satisfaction test). `h` must
// be sized tgd.num_vars() with existential variables unbound. When `view`
// is non-null, only rows below the round-start watermark are read — the
// conservative pre-filter the parallel restricted path evaluates on the
// worker pool: satisfaction is monotone (atoms are never removed), so a
// head satisfied by the frozen prefix is satisfied at apply time too, and
// only the survivors re-check against the full instance serially.
bool HeadSatisfied(const Tgd& tgd, const Instance& instance,
                   const RoundView* view, std::vector<Term>& h,
                   std::vector<VarId>& trail) {
  const auto& head = tgd.head();
  auto recurse = [&](auto&& self, size_t index) -> bool {
    if (index == head.size()) return true;
    const std::span<const GroundAtom> all(instance.AtomsOf(head[index].pred));
    const std::span<const GroundAtom> atoms =
        view == nullptr
            ? all
            : all.first(std::min(all.size(),
                                 static_cast<size_t>(
                                     view->CurOf(head[index].pred))));
    for (const GroundAtom& atom : atoms) {
      const size_t mark = trail.size();
      if (TryBind(head[index], atom, h, trail)) {
        if (self(self, index + 1)) {
          Undo(h, trail, mark);
          return true;
        }
        Undo(h, trail, mark);
      }
    }
    return false;
  };
  return recurse(recurse, 0);
}

}  // namespace

const char* ChaseVariantName(ChaseVariant variant) {
  switch (variant) {
    case ChaseVariant::kOblivious:
      return "oblivious";
    case ChaseVariant::kSemiOblivious:
      return "semi-oblivious";
    case ChaseVariant::kRestricted:
      return "restricted";
  }
  return "?";
}

const char* ChaseOutcomeName(ChaseOutcome outcome) {
  switch (outcome) {
    case ChaseOutcome::kFixpoint:
      return "fixpoint";
    case ChaseOutcome::kAtomLimit:
      return "atom-limit";
    case ChaseOutcome::kRoundLimit:
      return "round-limit";
  }
  return "?";
}

StatusOr<ChaseResult> RunChase(const Database& database,
                               const std::vector<Tgd>& tgds,
                               const ChaseOptions& options) {
  const Schema& schema = database.schema();
  for (const Tgd& tgd : tgds) {
    for (const RuleAtom& atom : tgd.body()) {
      if (atom.pred >= schema.NumPredicates()) {
        return InvalidArgumentError("TGD uses a predicate not in the schema");
      }
    }
  }

  ChaseResult result(Instance::FromDatabase(database));
  Instance& instance = result.instance;
  result.outcome = ChaseOutcome::kFixpoint;

  KeySet fired;
  RoundView view;
  const size_t num_preds = schema.NumPredicates();
  view.prev.assign(num_preds, 0);
  view.cur.assign(num_preds, 0);
  for (PredId pred = 0; pred < num_preds; ++pred) {
    view.cur[pred] = instance.AtomsOf(pred).size();
  }

  std::vector<Term> h;
  std::vector<VarId> trail;
  std::vector<GroundAtom> pending;  // atoms produced in the current round

  // The parallel path is gated to linear rule sets (single-atom bodies):
  // there one delta row yields at most one homomorphism, so a task's
  // buffered homs are bounded by its chunk size — a multi-atom body could
  // cross-product a chunk against whole relations and materialize
  // unboundedly more than the streaming serial path ever holds. The
  // restricted variant enumerates on the pool too: its satisfaction check
  // must observe atoms applied earlier in the same round, so the workers
  // only run a conservative pre-filter against the frozen round-start
  // prefix (satisfied there => satisfied at apply time, skip for good) and
  // the survivors re-check serially in exact firing order.
  const unsigned enum_threads =
      !AllLinear(tgds) ? 1 : std::max(1u, options.frontier_threads);
  const bool restricted = options.variant == ChaseVariant::kRestricted;
  // The pool is spawned once here and reused by every wave of every round
  // below through its generation barrier — per-round thread spawn cost was
  // exactly what dominated shallow-but-many-round workloads.
  std::optional<WorkerPool> pool;
  if (enum_threads > 1) pool.emplace(enum_threads);

  while (true) {
    if (result.rounds >= options.max_rounds) {
      result.outcome = ChaseOutcome::kRoundLimit;
      break;
    }
    pending.clear();
    bool grew = false;
    bool hit_atom_limit = false;
    uint64_t atoms_now = instance.NumAtoms();

    // Applies one trigger: the firing decision, null allocation, and atom
    // insertion. Always runs on this thread, in serial enumeration order —
    // the parallel path below only moves the *enumeration* of `hom` off
    // this thread.
    auto fire = [&](size_t rule, std::vector<Term>& hom) {
      const Tgd& tgd = tgds[rule];
      if (hit_atom_limit) return;
      // Decide whether this trigger fires.
      if (options.variant == ChaseVariant::kRestricted) {
        // Only the frontier restriction matters for satisfaction;
        // existentials are unbound here by construction.
        std::vector<VarId> head_trail;
        if (HeadSatisfied(tgd, instance, /*view=*/nullptr, hom, head_trail)) {
          return;
        }
      } else {
        std::vector<uint64_t> key;
        if (options.variant == ChaseVariant::kSemiOblivious) {
          key.reserve(1 + tgd.frontier().size());
          key.push_back(rule);
          for (VarId var : tgd.frontier()) key.push_back(hom[var]);
        } else {
          key.reserve(1 + tgd.num_universal());
          key.push_back(rule);
          for (VarId var = 0; var < tgd.num_universal(); ++var) {
            key.push_back(hom[var]);
          }
        }
        if (!fired.insert(std::move(key)).second) return;
      }
      ++result.triggers_fired;
      // result(σ, h): frontier variables keep their image, each
      // existential variable gets a fresh labelled null (unique per
      // trigger and variable, per Definition 3.1).
      std::vector<Term> null_of(tgd.num_vars(), kUnbound);
      for (const RuleAtom& head_atom : tgd.head()) {
        GroundAtom atom;
        atom.pred = head_atom.pred;
        atom.args.reserve(head_atom.args.size());
        for (VarId var : head_atom.args) {
          if (tgd.IsUniversal(var)) {
            atom.args.push_back(hom[var]);
          } else {
            if (null_of[var] == kUnbound) {
              null_of[var] = MakeNull(instance.NewNullId());
            }
            atom.args.push_back(null_of[var]);
          }
        }
        pending.push_back(std::move(atom));
      }
      // Apply eagerly so the restricted variant's satisfaction check
      // sees atoms added earlier in this round (a sequential order).
      for (GroundAtom& atom : pending) {
        Shape shape;
        uint64_t fingerprint = 0;
        if (options.shape_index != nullptr) {
          // Shapes depend only on the equality pattern, so nulls and
          // constants index alike; compute (with the content
          // fingerprint) before AddAtom consumes the atom.
          shape = Shape(atom.pred, IdOf<Term>(atom.args));
          fingerprint = index::TupleFingerprint(atom.pred, atom.args);
        }
        if (instance.AddAtom(std::move(atom))) {
          grew = true;
          ++atoms_now;
          if (options.shape_index != nullptr) {
            options.shape_index->AddShape(shape, 1, fingerprint);
          }
        }
      }
      pending.clear();
      if (atoms_now > options.max_atoms) hit_atom_limit = true;
    };

    if (enum_threads <= 1) {
      for (size_t rule = 0; rule < tgds.size() && !hit_atom_limit; ++rule) {
        const Tgd& tgd = tgds[rule];
        h.assign(tgd.num_vars(), kUnbound);
        trail.clear();
        ForEachNewBodyHom(tgd, instance, view, h, trail,
                          [&](std::vector<Term>& hom) { fire(rule, hom); });
      }
    } else {
      // Frontier-parallel round: enumerate every trigger of the round
      // against the frozen round-start prefix on a worker pool, then apply
      // them here in the exact serial order (tasks ascending, homs in
      // enumeration order within a task), so `fired`, null ids, and the
      // atom-limit cut land identically to a single-threaded run.
      std::vector<EnumTask> tasks;
      uint64_t total_delta = 0;
      for (size_t rule = 0; rule < tgds.size(); ++rule) {
        const PredId pred = tgds[rule].body()[0].pred;
        total_delta += view.CurOf(pred) - view.PrevOf(pred);
      }
      const size_t chunk = FrontierChunkSize(total_delta, enum_threads);
      for (size_t rule = 0; rule < tgds.size(); ++rule) {
        const auto& body = tgds[rule].body();
        for (size_t delta_pos = 0; delta_pos < body.size(); ++delta_pos) {
          const PredId pred = body[delta_pos].pred;
          const size_t begin = view.PrevOf(pred);
          const size_t end = view.CurOf(pred);
          if (begin >= end) continue;  // no delta atoms, no triggers here
          if (delta_pos == 0) {
            for (size_t first = begin; first < end; first += chunk) {
              tasks.push_back(
                  {rule, delta_pos, first, std::min(end, first + chunk)});
            }
          } else {
            tasks.push_back({rule, delta_pos, begin, end});
          }
        }
      }
      // Enumerate in bounded waves rather than the whole round at once:
      // each wave's homomorphisms are materialized, applied in order, and
      // freed before the next wave starts, so peak memory is one wave —
      // not one round — and an atom-limit cut skips the remaining waves
      // entirely (the serial path streams and stops at the same trigger).
      const size_t wave = static_cast<size_t>(8) * enum_threads;
      for (size_t first = 0; first < tasks.size() && !hit_atom_limit;
           first += wave) {
        const size_t count = std::min(wave, tasks.size() - first);
        std::vector<std::vector<std::vector<Term>>> homs(count);
        // Restricted only: presat[i][j] records that hom j of task i had
        // its head satisfied by the round-start prefix already — decided on
        // the workers, skipped for good on the serial apply path below.
        std::vector<std::vector<char>> presat(count);
        pool->ParallelFor(count, [&](unsigned /*worker*/, size_t i) {
          const EnumTask& task = tasks[first + i];
          const Tgd& tgd = tgds[task.rule];
          std::vector<Term> task_h(tgd.num_vars(), kUnbound);
          std::vector<VarId> task_trail;
          ForEachDeltaHom(tgd, instance, view, task.delta_pos,
                          task.delta_begin, task.delta_end, task_h,
                          task_trail, [&](std::vector<Term>& hom) {
                            if (restricted) {
                              std::vector<VarId> head_trail;
                              presat[i].push_back(HeadSatisfied(
                                  tgd, instance, &view, hom, head_trail));
                            }
                            homs[i].push_back(hom);
                          });
        });
        for (size_t i = 0; i < count && !hit_atom_limit; ++i) {
          for (size_t j = 0; j < homs[i].size(); ++j) {
            if (hit_atom_limit) break;
            if (restricted && presat[i][j] != 0) {
              // The serial path would have found the same witness (the
              // prefix is a subset of the instance it checks) and skipped
              // this trigger without firing; do the same, minus the check.
              ++result.triggers_prefiltered;
              continue;
            }
            fire(tasks[first + i].rule, homs[i][j]);
          }
        }
      }
    }

    ++result.rounds;
    if (hit_atom_limit) {
      result.outcome = ChaseOutcome::kAtomLimit;
      break;
    }
    if (!grew) {
      result.outcome = ChaseOutcome::kFixpoint;
      break;
    }
    // Advance the round window.
    for (PredId pred = 0; pred < num_preds; ++pred) {
      view.prev[pred] = view.cur[pred];
      view.cur[pred] = instance.AtomsOf(pred).size();
    }
  }
  return result;
}

bool Satisfies(const Instance& instance, const std::vector<Tgd>& tgds) {
  RoundView view;
  const size_t num_preds = instance.schema().NumPredicates();
  view.prev.assign(num_preds, 0);
  view.cur.assign(num_preds, 0);
  for (PredId pred = 0; pred < num_preds; ++pred) {
    view.cur[pred] = instance.AtomsOf(pred).size();
  }
  std::vector<Term> h;
  std::vector<VarId> trail;
  for (const Tgd& tgd : tgds) {
    h.assign(tgd.num_vars(), kUnbound);
    trail.clear();
    bool violated = false;
    ForEachNewBodyHom(tgd, instance, view, h, trail,
                      [&](std::vector<Term>& hom) {
                        if (violated) return;
                        std::vector<VarId> head_trail;
                        if (!HeadSatisfied(tgd, instance, /*view=*/nullptr,
                                           hom, head_trail)) {
                          violated = true;
                        }
                      });
    if (violated) return false;
  }
  return true;
}

}  // namespace chase
