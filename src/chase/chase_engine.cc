#include "chase/chase_engine.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <span>
#include <unordered_set>

#include "base/signal_flag.h"
#include "base/status.h"
#include "chase/body_partition.h"
#include "chase/instance.h"
#include "exec/frontier_pool.h"
#include "index/sharded_shape_index.h"
#include "io/binary_io.h"
#include "logic/atom.h"
#include "logic/database.h"
#include "logic/schema.h"
#include "logic/shape.h"
#include "logic/term.h"
#include "logic/tgd.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace chase {
namespace {

// The binding discipline (TryBindAtom/UndoBindings/kUnboundTerm) and the
// round window (RoundView) live in chase/body_partition.h, shared with the
// parallel fragment enumerator so the serial and parallel paths cannot
// drift apart.
constexpr Term kUnbound = kUnboundTerm;

// Trigger keys: [rule_index, bound values...]. For the oblivious chase the
// values are the full body assignment; for the semi-oblivious chase only the
// frontier restriction h|fr(σ).
struct KeyHash {
  size_t operator()(const std::vector<uint64_t>& key) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (uint64_t v : key) {
      h ^= v;
      h *= 0x100000001b3ULL;
      h ^= h >> 29;
    }
    return static_cast<size_t>(h);
  }
};
using KeySet = std::unordered_set<std::vector<uint64_t>, KeyHash>;

// Enumerates the body homomorphisms of `tgd` whose atom at `delta_pos` is
// drawn from delta rows [delta_begin, delta_end); calls `fn(h)` with h
// bound on all universal variables. Only rows below the round-start
// watermark (view.cur) are ever read, so the enumeration is independent of
// atoms applied during the round — which is what lets the parallel path
// below enumerate a whole round's triggers concurrently before applying
// any of them.
template <typename Fn>
void ForEachDeltaHom(const Tgd& tgd, const Instance& instance,
                     const RoundView& view, size_t delta_pos,
                     size_t delta_begin, size_t delta_end,
                     std::vector<Term>& h, std::vector<VarId>& trail,
                     Fn&& fn) {
  const auto& body = tgd.body();
  // Backtracking over body atoms with per-position candidate ranges.
  auto recurse = [&](auto&& self, size_t index) -> void {
    if (index == body.size()) {
      fn(h);
      return;
    }
    const PredId pred = body[index].pred;
    size_t begin = 0;
    size_t end = view.CurOf(pred);
    if (index == delta_pos) {
      begin = delta_begin;
      end = delta_end;
    } else if (index < delta_pos) {
      end = view.PrevOf(pred);
    }
    for (size_t row = begin; row < end; ++row) {
      const size_t mark = trail.size();
      // Re-fetch per iteration: `fn` may grow the instance, reallocating
      // the per-predicate atom vector.
      if (TryBindAtom(body[index], instance.AtomsOf(pred)[row], h, trail)) {
        self(self, index + 1);
        UndoBindings(h, trail, mark);
      }
    }
  };
  recurse(recurse, 0);
}

// Enumerates every body homomorphism of `tgd` into the round-start instance
// that uses at least one delta atom. Each such trigger is enumerated
// exactly once: the delta position is the first body atom matched to a
// delta atom.
template <typename Fn>
void ForEachNewBodyHom(const Tgd& tgd, const Instance& instance,
                       const RoundView& view, std::vector<Term>& h,
                       std::vector<VarId>& trail, Fn&& fn) {
  for (size_t delta_pos = 0; delta_pos < tgd.body().size(); ++delta_pos) {
    const PredId pred = tgd.body()[delta_pos].pred;
    ForEachDeltaHom(tgd, instance, view, delta_pos, view.PrevOf(pred),
                    view.CurOf(pred), h, trail, fn);
  }
}

// True iff some extension of the frontier assignment `h` maps every head
// atom into `instance` (the restricted chase's satisfaction test). `h` must
// be sized tgd.num_vars() with existential variables unbound. When `view`
// is non-null, only rows below the round-start watermark are read — the
// conservative pre-filter the parallel restricted path evaluates on the
// worker pool: satisfaction is monotone (atoms are never removed), so a
// head satisfied by the frozen prefix is satisfied at apply time too, and
// only the survivors re-check against the full instance serially.
bool HeadSatisfied(const Tgd& tgd, const Instance& instance,
                   const RoundView* view, std::vector<Term>& h,
                   std::vector<VarId>& trail) {
  const auto& head = tgd.head();
  auto recurse = [&](auto&& self, size_t index) -> bool {
    if (index == head.size()) return true;
    const std::span<const GroundAtom> all(instance.AtomsOf(head[index].pred));
    const std::span<const GroundAtom> atoms =
        view == nullptr
            ? all
            : all.first(std::min(all.size(),
                                 static_cast<size_t>(
                                     view->CurOf(head[index].pred))));
    for (const GroundAtom& atom : atoms) {
      const size_t mark = trail.size();
      if (TryBindAtom(head[index], atom, h, trail)) {
        if (self(self, index + 1)) {
          UndoBindings(h, trail, mark);
          return true;
        }
        UndoBindings(h, trail, mark);
      }
    }
    return false;
  };
  return recurse(recurse, 0);
}

// The suffix re-check for pre-filter survivors: the workers already proved
// no witness lives entirely in the round-start prefix (rows below
// view.cur), and atoms are never removed, so the head is satisfied by the
// full instance iff some witness uses at least one same-round atom — i.e.
// iff for some head position d there is a match with position d restricted
// to the suffix [view.cur, size) and every other position unrestricted.
// Positions whose predicate has not grown this round are skipped outright;
// if nothing relevant grew, the head is unsatisfied without touching a
// single atom. Equivalent to HeadSatisfied(full instance) for survivors,
// but scans only witnesses the workers could not have seen.
bool HeadSatisfiedSuffix(const Tgd& tgd, const Instance& instance,
                         const RoundView& view, std::vector<Term>& h,
                         std::vector<VarId>& trail) {
  const auto& head = tgd.head();
  for (size_t d = 0; d < head.size(); ++d) {
    const size_t suffix_begin = view.CurOf(head[d].pred);
    if (instance.AtomsOf(head[d].pred).size() <= suffix_begin) continue;
    auto recurse = [&](auto&& self, size_t index) -> bool {
      if (index == head.size()) return true;
      const auto& atoms = instance.AtomsOf(head[index].pred);
      for (size_t row = index == d ? suffix_begin : 0; row < atoms.size();
           ++row) {
        const size_t mark = trail.size();
        if (TryBindAtom(head[index], atoms[row], h, trail)) {
          if (self(self, index + 1)) {
            UndoBindings(h, trail, mark);
            return true;
          }
          UndoBindings(h, trail, mark);
        }
      }
      return false;
    };
    if (recurse(recurse, 0)) return true;
  }
  return false;
}

}  // namespace

const char* ChaseVariantName(ChaseVariant variant) {
  switch (variant) {
    case ChaseVariant::kOblivious:
      return "oblivious";
    case ChaseVariant::kSemiOblivious:
      return "semi-oblivious";
    case ChaseVariant::kRestricted:
      return "restricted";
  }
  return "?";
}

const char* ChaseOutcomeName(ChaseOutcome outcome) {
  switch (outcome) {
    case ChaseOutcome::kFixpoint:
      return "fixpoint";
    case ChaseOutcome::kAtomLimit:
      return "atom-limit";
    case ChaseOutcome::kRoundLimit:
      return "round-limit";
    case ChaseOutcome::kInterrupted:
      return "interrupted";
  }
  return "?";
}

StatusOr<ChaseResult> RunChase(const Database& database,
                               const std::vector<Tgd>& tgds,
                               const ChaseOptions& options) {
  const Schema& schema = database.schema();
  for (const Tgd& tgd : tgds) {
    for (const RuleAtom& atom : tgd.body()) {
      if (atom.pred >= schema.NumPredicates()) {
        return InvalidArgumentError("TGD uses a predicate not in the schema");
      }
    }
  }

  if (options.checkpoint_path.empty() &&
      (options.checkpoint_every_rounds != 0 || options.checkpoint_on_signal)) {
    return InvalidArgumentError(
        "checkpoint_every_rounds/checkpoint_on_signal require a "
        "checkpoint_path");
  }
  // The program identity stamped into checkpoints and validated on resume;
  // only computed when either end of the protocol is in play (it
  // serializes the whole input).
  const uint64_t input_fingerprint =
      (!options.checkpoint_path.empty() || options.resume != nullptr)
          ? io::ProgramFingerprint(schema, database, tgds)
          : 0;

  ChaseResult result(Instance::FromDatabase(database));
  Instance& instance = result.instance;
  result.outcome = ChaseOutcome::kFixpoint;

  KeySet fired;
  RoundView view;
  const size_t num_preds = schema.NumPredicates();
  view.prev.assign(num_preds, 0);
  view.cur.assign(num_preds, 0);
  for (PredId pred = 0; pred < num_preds; ++pred) {
    view.cur[pred] = instance.AtomsOf(pred).size();
  }

  if (options.resume != nullptr) {
    const io::ChaseCheckpoint& ckpt = *options.resume;
    if (ckpt.input_fingerprint != input_fingerprint) {
      return InvalidArgumentError(
          "checkpoint was taken against a different program (input "
          "fingerprint mismatch) — resuming would silently diverge");
    }
    if (ckpt.variant != static_cast<uint32_t>(options.variant)) {
      return InvalidArgumentError(
          std::string("checkpoint was taken by a ") +
          ChaseVariantName(static_cast<ChaseVariant>(ckpt.variant)) +
          " chase, not " + ChaseVariantName(options.variant));
    }
    if (ckpt.relations.size() != num_preds) {
      return InvalidArgumentError(
          "checkpoint relation count does not match the schema");
    }
    // Rebuild the instance from the checkpoint alone: the fingerprint pins
    // the seed database (its facts are the prefix of the stored relations),
    // and replaying the stored insertion order reproduces the by-predicate
    // layout — and with it every downstream enumeration — bit-identically.
    Instance restored(&schema);
    for (PredId pred = 0; pred < num_preds; ++pred) {
      const io::ChaseCheckpoint::Relation& relation = ckpt.relations[pred];
      const uint32_t arity = schema.Arity(pred);
      if (relation.arity != arity) {
        return InvalidArgumentError(
            "checkpoint relation arity does not match the schema");
      }
      // Checkpoints are written after the round-window advance, so `cur`
      // always covers the whole relation.
      if (relation.cur * arity != relation.atoms.size()) {
        return InvalidArgumentError(
            "checkpoint round window does not cover the instance");
      }
      for (size_t row = 0; row * arity < relation.atoms.size(); ++row) {
        GroundAtom atom;
        atom.pred = pred;
        atom.args.assign(relation.atoms.begin() + row * arity,
                         relation.atoms.begin() + (row + 1) * arity);
        if (!restored.AddAtom(std::move(atom))) {
          return InvalidArgumentError(
              "checkpoint instance holds duplicate atoms");
        }
      }
      view.prev[pred] = relation.prev;
      view.cur[pred] = relation.cur;
    }
    restored.SetNextNull(ckpt.next_null);
    instance = std::move(restored);
    for (const std::vector<uint64_t>& key : ckpt.fired_keys) {
      fired.insert(key);
    }
    result.rounds = ckpt.rounds;
    result.triggers_fired = ckpt.triggers_fired;
    result.triggers_prefiltered = ckpt.triggers_prefiltered;
    result.peak_buffered_homs = ckpt.peak_buffered_homs;
  }

  std::vector<Term> h;
  std::vector<VarId> trail;
  std::vector<GroundAtom> pending;  // atoms produced in the current round

  // Parallel rounds run on any rule set, linear or not: each round's
  // homomorphism space is split into range fragments whose canonical
  // concatenation replays the serial stream (chase/body_partition.h), and
  // the old hazard — a multi-atom body cross-producting a fragment against
  // whole relations and materializing unbounded buffers — is handled by
  // the budgeted enumerate→pause→apply→resume protocol below, which caps
  // buffered homomorphisms at threads × hom_budget. The restricted
  // variant enumerates on the pool too: its satisfaction check must
  // observe atoms applied earlier in the same round, so the workers only
  // run a conservative pre-filter against the frozen round-start prefix
  // (satisfied there => satisfied at apply time, skip for good) and the
  // survivors re-check serially in exact firing order — against the
  // same-round suffix only, the one part the workers could not see.
  const unsigned enum_threads = std::max(1u, options.frontier_threads);
  const bool restricted = options.variant == ChaseVariant::kRestricted;
  // The pool is spawned once here and reused by every wave of every round
  // below through its generation barrier — per-round thread spawn cost was
  // exactly what dominated shallow-but-many-round workloads.
  std::optional<WorkerPool> pool;
  if (enum_threads > 1) pool.emplace(enum_threads);

  // Observability (all off by default, every site behind one relaxed
  // load): a whole-run span, a span and log2 duration histogram per round,
  // and — when the caller hands in a sink — live progress published at
  // round boundaries plus every few thousand firings inside a round.
  obs::TraceSpan run_span("chase", "run", "threads", enum_threads, "rules",
                          static_cast<int64_t>(tgds.size()));
  obs::Histogram* round_hist =
      obs::MetricsRegistry::enabled()
          ? obs::MetricsRegistry::Get().GetHistogram("chase.round_us")
          : nullptr;
  constexpr uint64_t kProgressStride = 4096;  // firings between updates

  // Signal-triggered checkpoints: the handlers (base/signal_flag.h, the
  // repo's one sanctioned signal shim) only set lock-free atomic flags;
  // the loop polls them at round boundaries below and does the real work
  // — serialization, file I/O, metrics — on this thread.
  std::optional<ScopedSignalFlags> signal_flags;
  if (options.checkpoint_on_signal) signal_flags.emplace();
  obs::Counter* checkpoints_written =
      !options.checkpoint_path.empty() && obs::MetricsRegistry::enabled()
          ? obs::MetricsRegistry::Get().GetCounter(
                "chase.checkpoints_written")
          : nullptr;
  auto write_checkpoint = [&]() -> Status {
    obs::TraceSpan checkpoint_span("chase", "checkpoint", "round",
                                   static_cast<int64_t>(result.rounds));
    io::ChaseCheckpoint ckpt;
    ckpt.variant = static_cast<uint32_t>(options.variant);
    ckpt.input_fingerprint = input_fingerprint;
    ckpt.rounds = result.rounds;
    ckpt.triggers_fired = result.triggers_fired;
    ckpt.triggers_prefiltered = result.triggers_prefiltered;
    ckpt.peak_buffered_homs = result.peak_buffered_homs;
    ckpt.next_null = instance.NumNulls();
    ckpt.relations.resize(num_preds);
    for (PredId pred = 0; pred < num_preds; ++pred) {
      io::ChaseCheckpoint::Relation& relation = ckpt.relations[pred];
      relation.arity = schema.Arity(pred);
      relation.prev = view.prev[pred];
      relation.cur = view.cur[pred];
      const std::vector<GroundAtom>& atoms = instance.AtomsOf(pred);
      relation.atoms.reserve(atoms.size() * relation.arity);
      for (const GroundAtom& atom : atoms) {
        relation.atoms.insert(relation.atoms.end(), atom.args.begin(),
                              atom.args.end());
      }
    }
    // `fired` is insert/contains-only, so its hash order never reaches
    // chase results; sorting here makes checkpoint bytes canonical for a
    // given state (and satisfies the loader's ordering check).
    ckpt.fired_keys.assign(fired.begin(), fired.end());
    std::sort(ckpt.fired_keys.begin(), ckpt.fired_keys.end());
    CHASE_RETURN_IF_ERROR(
        io::SaveChaseCheckpoint(ckpt, options.checkpoint_path));
    if (checkpoints_written != nullptr) checkpoints_written->Add(1);
    return OkStatus();
  };

  while (true) {
    // Limit precedence: the atom budget outranks the round budget (see
    // chase_engine.h). Checking atoms first makes a seed database already
    // past max_atoms report kAtomLimit even at max_rounds = 0; mid-run
    // trips break at the bottom of their round, before the next top-of-
    // loop round check, so both orderings agree there too.
    if (instance.NumAtoms() > options.max_atoms) {
      result.outcome = ChaseOutcome::kAtomLimit;
      break;
    }
    if (result.rounds >= options.max_rounds) {
      result.outcome = ChaseOutcome::kRoundLimit;
      break;
    }
    obs::TraceSpan round_span("chase", "round", "round",
                              static_cast<int64_t>(result.rounds));
    const auto round_begin = round_hist != nullptr
                                 ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
    pending.clear();
    bool grew = false;
    bool hit_atom_limit = false;
    uint64_t atoms_now = instance.NumAtoms();

    // Applies one trigger: the firing decision, null allocation, and atom
    // insertion. Always runs on this thread, in serial enumeration order —
    // the parallel path below only moves the *enumeration* of `hom` off
    // this thread. `prefix_unsat` marks a restricted trigger whose head
    // the parallel pre-filter already proved unsatisfied by the
    // round-start prefix, so only same-round witnesses remain to check.
    auto fire = [&](size_t rule, std::vector<Term>& hom, bool prefix_unsat) {
      const Tgd& tgd = tgds[rule];
      if (hit_atom_limit) return;
      // Decide whether this trigger fires.
      if (options.variant == ChaseVariant::kRestricted) {
        // Only the frontier restriction matters for satisfaction;
        // existentials are unbound here by construction.
        std::vector<VarId> head_trail;
        const bool satisfied =
            prefix_unsat
                ? HeadSatisfiedSuffix(tgd, instance, view, hom, head_trail)
                : HeadSatisfied(tgd, instance, /*view=*/nullptr, hom,
                                head_trail);
        if (satisfied) return;
      } else {
        std::vector<uint64_t> key;
        if (options.variant == ChaseVariant::kSemiOblivious) {
          key.reserve(1 + tgd.frontier().size());
          key.push_back(rule);
          for (VarId var : tgd.frontier()) key.push_back(hom[var]);
        } else {
          key.reserve(1 + tgd.num_universal());
          key.push_back(rule);
          for (VarId var = 0; var < tgd.num_universal(); ++var) {
            key.push_back(hom[var]);
          }
        }
        if (!fired.insert(std::move(key)).second) return;
      }
      ++result.triggers_fired;
      // result(σ, h): frontier variables keep their image, each
      // existential variable gets a fresh labelled null (unique per
      // trigger and variable, per Definition 3.1).
      std::vector<Term> null_of(tgd.num_vars(), kUnbound);
      for (const RuleAtom& head_atom : tgd.head()) {
        GroundAtom atom;
        atom.pred = head_atom.pred;
        atom.args.reserve(head_atom.args.size());
        for (VarId var : head_atom.args) {
          if (tgd.IsUniversal(var)) {
            atom.args.push_back(hom[var]);
          } else {
            if (null_of[var] == kUnbound) {
              null_of[var] = MakeNull(instance.NewNullId());
            }
            atom.args.push_back(null_of[var]);
          }
        }
        pending.push_back(std::move(atom));
      }
      // Apply eagerly so the restricted variant's satisfaction check
      // sees atoms added earlier in this round (a sequential order).
      for (GroundAtom& atom : pending) {
        Shape shape;
        uint64_t fingerprint = 0;
        if (options.shape_index != nullptr) {
          // Shapes depend only on the equality pattern, so nulls and
          // constants index alike; compute (with the content
          // fingerprint) before AddAtom consumes the atom.
          shape = Shape(atom.pred, IdOf<Term>(atom.args));
          fingerprint = index::TupleFingerprint(atom.pred, atom.args);
        }
        if (instance.AddAtom(std::move(atom))) {
          grew = true;
          ++atoms_now;
          if (options.shape_index != nullptr) {
            options.shape_index->AddShape(shape, 1, fingerprint);
          }
        }
      }
      pending.clear();
      if (atoms_now > options.max_atoms) hit_atom_limit = true;
      if (options.progress != nullptr &&
          result.triggers_fired % kProgressStride == 0) {
        options.progress->Update(result.rounds + 1, atoms_now,
                                 instance.NumNulls(), result.triggers_fired);
      }
    };

    if (enum_threads <= 1) {
      for (size_t rule = 0; rule < tgds.size() && !hit_atom_limit; ++rule) {
        const Tgd& tgd = tgds[rule];
        obs::TraceSpan rule_span("chase", "rule", "rule",
                                 static_cast<int64_t>(rule));
        h.assign(tgd.num_vars(), kUnbound);
        trail.clear();
        ForEachNewBodyHom(tgd, instance, view, h, trail,
                          [&](std::vector<Term>& hom) {
                            fire(rule, hom, /*prefix_unsat=*/false);
                          });
      }
    } else {
      // Frontier-parallel round: enumerate every trigger of the round
      // against the frozen round-start prefix on the worker pool, apply
      // them here in the exact serial order. The round's homomorphism
      // space is planned as range fragments whose canonical order replays
      // the serial stream, and the budgeted protocol slides a window of at
      // most `enum_threads` in-flight fragments over them: a worker fills
      // its fragment's bounded buffer and parks, the serial drain applies
      // buffers in fragment order (the first unfinished fragment's prefix
      // included), and paused fragments resume from their saved
      // backtracking cursors. So `fired`, null ids, and the atom-limit cut
      // land identically to a single-threaded run, while peak buffered
      // homomorphisms stay at most enum_threads × hom_budget.
      const std::vector<BodyPartition> parts =
          PlanBodyPartitions(tgds, view, enum_threads);
      const uint64_t budget = std::max<uint64_t>(1, options.hom_budget);
      std::vector<HomEnumerator> enums(parts.size());
      std::vector<char> started(parts.size(), 0);
      std::vector<std::vector<std::vector<Term>>> homs(parts.size());
      // Restricted only: presat[t][j] records that hom j of fragment t had
      // its head satisfied by the round-start prefix already — decided on
      // the workers, skipped for good on the serial drain below.
      std::vector<std::vector<char>> presat(parts.size());
      pool->RunBudgetedTasks(
          parts.size(),
          [&](unsigned /*worker*/, size_t t) -> bool {
            // One span per resume slice of a (rule, delta)-fragment's
            // homomorphism enumeration — the per-task view of a wave.
            obs::TraceSpan task_span("chase", "hom_task", "rule",
                                     static_cast<int64_t>(parts[t].rule),
                                     "task", static_cast<int64_t>(t));
            const Tgd& tgd = tgds[parts[t].rule];
            HomEnumerator& e = enums[t];
            if (started[t] == 0) {
              e.Reset(&tgd, &instance, &view, parts[t]);
              started[t] = 1;
            }
            while (homs[t].size() < budget) {
              if (!e.Next()) return true;  // fragment exhausted
              if (restricted) {
                std::vector<VarId> head_trail;
                presat[t].push_back(
                    HeadSatisfied(tgd, instance, &view, e.hom(), head_trail));
              }
              homs[t].push_back(e.hom());
            }
            return false;  // buffer full: park, resume next epoch
          },
          [&](size_t t) -> bool {
            for (size_t j = 0; j < homs[t].size(); ++j) {
              if (hit_atom_limit) break;
              if (restricted && presat[t][j] != 0) {
                // The serial path would have found the same witness (the
                // prefix is a subset of the instance it checks) and
                // skipped this trigger without firing; do the same, minus
                // the check.
                ++result.triggers_prefiltered;
                continue;
              }
              fire(parts[t].rule, homs[t][j], /*prefix_unsat=*/restricted);
            }
            homs[t].clear();
            presat[t].clear();
            return !hit_atom_limit;  // the same early cut as serial
          },
          [&](size_t first, size_t count) {
            // Epoch barrier: the only fragments with buffered output are
            // the window's — sum them for the deterministic peak.
            uint64_t buffered = 0;
            for (size_t i = 0; i < count; ++i) {
              buffered += homs[first + i].size();
            }
            result.peak_buffered_homs =
                std::max(result.peak_buffered_homs, buffered);
          });
    }

    ++result.rounds;
    if (round_hist != nullptr && obs::MetricsRegistry::enabled()) {
      round_hist->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - round_begin)
              .count()));
    }
    if (options.progress != nullptr) {
      options.progress->Update(result.rounds, instance.NumAtoms(),
                               instance.NumNulls(), result.triggers_fired);
    }
    if (hit_atom_limit) {
      result.outcome = ChaseOutcome::kAtomLimit;
      break;
    }
    if (!grew) {
      result.outcome = ChaseOutcome::kFixpoint;
      break;
    }
    // Advance the round window.
    for (PredId pred = 0; pred < num_preds; ++pred) {
      view.prev[pred] = view.cur[pred];
      view.cur[pred] = instance.AtomsOf(pred).size();
    }
    // Round-boundary checkpoint protocol: a periodic tick, a SIGUSR1
    // (write and continue), or a SIGTERM (write, then stop). Consuming the
    // flags clears them, so one posted request is served exactly once.
    if (!options.checkpoint_path.empty()) {
      const bool stop = options.checkpoint_on_signal &&
                        ScopedSignalFlags::ConsumeStopRequest();
      const bool asked = options.checkpoint_on_signal &&
                         ScopedSignalFlags::ConsumeCheckpointRequest();
      const bool tick =
          options.checkpoint_every_rounds != 0 &&
          result.rounds % options.checkpoint_every_rounds == 0;
      if (stop || asked || tick) {
        CHASE_RETURN_IF_ERROR(write_checkpoint());
      }
      if (stop) {
        result.outcome = ChaseOutcome::kInterrupted;
        break;
      }
    }
  }
  // Mirror the run's result counters into the registry so `--metrics`
  // surfaces them without the caller plumbing ChaseResult around.
  obs::SetGauge("chase.rounds", static_cast<double>(result.rounds));
  obs::SetGauge("chase.triggers_fired",
                static_cast<double>(result.triggers_fired));
  obs::SetGauge("chase.triggers_prefiltered",
                static_cast<double>(result.triggers_prefiltered));
  obs::SetGauge("chase.peak_buffered_homs",
                static_cast<double>(result.peak_buffered_homs));
  obs::SetGauge("chase.atoms", static_cast<double>(instance.NumAtoms()));
  obs::SetGauge("chase.nulls", static_cast<double>(instance.NumNulls()));
  return result;
}

bool Satisfies(const Instance& instance, const std::vector<Tgd>& tgds) {
  RoundView view;
  const size_t num_preds = instance.schema().NumPredicates();
  view.prev.assign(num_preds, 0);
  view.cur.assign(num_preds, 0);
  for (PredId pred = 0; pred < num_preds; ++pred) {
    view.cur[pred] = instance.AtomsOf(pred).size();
  }
  std::vector<Term> h;
  std::vector<VarId> trail;
  for (const Tgd& tgd : tgds) {
    h.assign(tgd.num_vars(), kUnbound);
    trail.clear();
    bool violated = false;
    ForEachNewBodyHom(tgd, instance, view, h, trail,
                      [&](std::vector<Term>& hom) {
                        if (violated) return;
                        std::vector<VarId> head_trail;
                        if (!HeadSatisfied(tgd, instance, /*view=*/nullptr,
                                           hom, head_trail)) {
                          violated = true;
                        }
                      });
    if (violated) return false;
  }
  return true;
}

}  // namespace chase
