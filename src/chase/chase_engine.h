// The three chase variants of Section 1.1.
//
// A trigger for Σ on I is a pair (σ, h) where h maps body(σ) into I
// (Definition 3.1). The variants differ only in when a trigger is applied:
//
//  * Oblivious: once per distinct h (full body homomorphism).
//  * Semi-oblivious: once per distinct h|fr(σ) (frontier restriction) — the
//    variant whose termination the paper studies. Nulls are named by
//    (σ, h|fr(σ), z), so the result of a trigger is uniquely determined.
//  * Restricted (standard): only when no extension of h|fr(σ) maps head(σ)
//    into I; fresh nulls per application.
//
// The engine runs round-based (chase_i = chase_{i-1} ∪ applied triggers,
// Section 3) with semi-naive trigger enumeration: in round i only triggers
// using at least one atom created in round i-1 are considered. Bodies may
// have multiple atoms (the checkers only need linear TGDs, but the engine is
// a general TGD chase used by tests and the materialization-based checker).
//
// For non-terminating inputs the engine stops at a configurable atom or
// round limit and reports which limit was hit.

#ifndef CHASE_CHASE_CHASE_ENGINE_H_
#define CHASE_CHASE_CHASE_ENGINE_H_

#include <cstdint>
#include <vector>

#include "base/status.h"
#include "chase/instance.h"
#include "logic/database.h"
#include "logic/tgd.h"
#include "obs/progress.h"

namespace chase {

namespace index {
class ShardedShapeIndex;
}  // namespace index

namespace io {
struct ChaseCheckpoint;
}  // namespace io

enum class ChaseVariant {
  kOblivious,
  kSemiOblivious,
  kRestricted,
};

const char* ChaseVariantName(ChaseVariant variant);

struct ChaseOptions {
  ChaseVariant variant = ChaseVariant::kSemiOblivious;
  // Stop once the instance holds more than this many atoms. The cut trips
  // at the same trigger for every frontier_threads value (triggers apply
  // in serial order on every path), and never rolls back a partially
  // applied trigger, so one multi-head trigger may overshoot by at most
  // its head size: after the run, NumAtoms() <= max_atoms + the largest
  // head atom count over the rules.
  //
  // Limit precedence: the atom budget outranks the round budget. When both
  // exhaust in the same round — or the seed database already exceeds
  // max_atoms — the outcome is kAtomLimit, never kRoundLimit: the atom
  // limit reflects real resource pressure, the round limit is a cadence.
  uint64_t max_atoms = 1'000'000;
  // Stop after this many rounds.
  uint64_t max_rounds = UINT64_MAX;
  // Write-through shape maintenance (Section 10): when set, every atom the
  // chase adds to the instance also records its shape here, so the
  // materialized shape(chase_i(D)) stays current round by round and a
  // repeated IsChaseFinite[L] check reads the index instead of scanning.
  // The index must already reflect `database` when RunChase is called
  // (e.g. index::ShardedShapeIndex::Build) and must outlive the run.
  index::ShardedShapeIndex* shape_index = nullptr;
  // Worker threads for per-round trigger enumeration (<= 1 enumerates
  // inline). A round is a frontier: bodies only match against atoms from
  // earlier rounds, so all three variants — over any rule set, linear or
  // not — enumerate triggers on a persistent chase::WorkerPool (spawned
  // once per RunChase, reused across rounds through its barrier) and apply
  // them serially in the exact serial order: the resulting instance, null
  // numbering, rounds, and trigger count are bit-identical to a
  // single-threaded run. Each round's homomorphism space is split into
  // range fragments (chase/body_partition.h) whose canonical concatenation
  // replays the serial stream; multi-atom bodies, whose fragments can
  // produce unboundedly many homomorphisms, run under the budgeted
  // enumerate→pause→apply→resume protocol (WorkerPool::RunBudgetedTasks)
  // with at most `hom_budget` buffered homomorphisms per in-flight
  // fragment. For the restricted variant the workers additionally run a
  // conservative satisfaction pre-filter against the frozen round-start
  // prefix: a head satisfied there is satisfied at apply time too (atoms
  // are never removed), so only the surviving triggers re-check serially —
  // and only against the same-round suffix, since the workers already
  // proved the prefix unsatisfying — without changing any firing decision.
  unsigned frontier_threads = 1;
  // Parallel enumeration only: the per-fragment homomorphism buffer bound.
  // A worker that fills its fragment's buffer parks at the pool barrier
  // and resumes from its saved backtracking cursor after the serial apply
  // drains it, so peak buffered homomorphisms are bounded by
  // frontier_threads × hom_budget whatever the rule set does (a cross-
  // producting multi-atom body included). 0 behaves as 1. Never affects
  // results — only peak memory and barrier cadence.
  uint64_t hom_budget = 4096;
  // Optional live-progress sink (obs/progress.h): when set, the engine
  // publishes rounds / atom count / null count / triggers fired into it at
  // every round boundary and every few thousand trigger firings within a
  // round, so a reporter thread can print status for chases that run long
  // or never terminate. Pure observer — never affects results.
  obs::ChaseProgressSink* progress = nullptr;
  // Checkpoint/restart (the CHCK envelope, io/binary_io.h). When
  // `checkpoint_path` is non-empty the engine serializes its complete
  // state there — instance atoms in insertion order, the null counter,
  // the semi-naive round window, the fired-trigger dedup keys, result
  // counters, and the input fingerprint — atomically (write-temp-then-
  // rename), at round boundaries only:
  //   * every `checkpoint_every_rounds` completed rounds (0 = no periodic
  //     tick), and
  //   * with `checkpoint_on_signal`, when a SIGUSR1 (write and continue)
  //     or SIGTERM (write, then stop with kInterrupted) arrived since the
  //     last boundary. The handlers are the src/base/signal_flag.h shim:
  //     a single lock-free atomic store each, polled here — no allocation,
  //     locking, or I/O ever runs in signal context.
  // Setting either knob without checkpoint_path is kInvalidArgument.
  std::string checkpoint_path;
  uint64_t checkpoint_every_rounds = 0;
  bool checkpoint_on_signal = false;
  // Continue a previous run from its checkpoint instead of starting at
  // the seed database. The checkpoint must come from a chase of the same
  // program (TGDs + seed database, pinned by the input fingerprint) and
  // the same variant; any mismatch is kInvalidArgument — never a silently
  // divergent chase. The continued run is bit-identical to the
  // uninterrupted one — same instance bytes, null ids, rounds, and
  // trigger counts — at any frontier_threads (max_rounds/max_atoms count
  // totals across both legs). With a shape_index, the caller must hand in
  // an index reflecting the checkpoint's instance, exactly as the
  // non-resume contract requires one reflecting `database`. Must outlive
  // the call.
  const io::ChaseCheckpoint* resume = nullptr;
};

enum class ChaseOutcome {
  kFixpoint,     // no applicable trigger remains: the chase terminated
  kAtomLimit,    // atom budget exhausted (outranks kRoundLimit, see above)
  kRoundLimit,   // round budget exhausted
  kInterrupted,  // SIGTERM: checkpoint written, run stopped at the boundary
};

const char* ChaseOutcomeName(ChaseOutcome outcome);

struct ChaseResult {
  Instance instance;
  ChaseOutcome outcome;
  uint64_t rounds = 0;
  uint64_t triggers_fired = 0;
  // Restricted variant with frontier_threads > 1 only: triggers whose head
  // the parallel pre-filter proved satisfied against the round-start
  // prefix, so the serial apply path skipped them without re-checking.
  // Always 0 for a serial run (it checks and skips the same triggers, just
  // on the serial path) — diagnostics only, never part of the
  // bit-identical-result contract.
  uint64_t triggers_prefiltered = 0;
  // Parallel enumeration only: the largest number of homomorphisms ever
  // buffered at once across the run, measured at each epoch barrier of the
  // budgeted protocol. By construction at most frontier_threads ×
  // hom_budget (tests/frontier_equivalence_test.cc asserts the bound).
  // Deterministic for a given (input, threads, budget), but 0 for a serial
  // run — diagnostics only, like triggers_prefiltered.
  uint64_t peak_buffered_homs = 0;

  explicit ChaseResult(Instance i) : instance(std::move(i)) {}
};

// Runs the chase of `database` with `tgds`. The schema of `database` must
// contain every predicate of `tgds`.
[[nodiscard]] StatusOr<ChaseResult> RunChase(const Database& database,
                               const std::vector<Tgd>& tgds,
                               const ChaseOptions& options = {});

// I |= Σ: every trigger's head is satisfied (Section 2). Used by tests to
// validate that a terminated chase result is a model.
bool Satisfies(const Instance& instance, const std::vector<Tgd>& tgds);

}  // namespace chase

#endif  // CHASE_CHASE_CHASE_ENGINE_H_
