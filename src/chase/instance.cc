#include "chase/instance.h"

#include "logic/atom.h"
#include "logic/database.h"
#include "logic/schema.h"
#include "logic/term.h"

namespace chase {

Instance Instance::FromDatabase(const Database& database) {
  Instance instance(&database.schema());
  const Schema& schema = database.schema();
  for (PredId pred : database.NonEmptyPredicates()) {
    const uint32_t arity = schema.Arity(pred);
    const size_t rows = database.NumTuples(pred);
    for (size_t row = 0; row < rows; ++row) {
      auto tuple = database.Tuple(pred, row);
      GroundAtom atom;
      atom.pred = pred;
      atom.args.reserve(arity);
      for (uint32_t constant : tuple) {
        atom.args.push_back(MakeConstant(constant));
      }
      instance.AddAtom(std::move(atom));
    }
  }
  return instance;
}

bool Instance::AddAtom(GroundAtom atom) {
  if (!membership_.insert(atom).second) return false;
  if (atom.pred >= by_pred_.size()) by_pred_.resize(atom.pred + 1);
  by_pred_[atom.pred].push_back(std::move(atom));
  return true;
}

}  // namespace chase
