// A (finite prefix of a possibly infinite) instance: a deduplicated set of
// ground atoms over constants and labelled nulls, grouped by predicate. This
// is the structure the chase engines grow.

#ifndef CHASE_CHASE_INSTANCE_H_
#define CHASE_CHASE_INSTANCE_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "logic/atom.h"
#include "logic/database.h"
#include "logic/schema.h"

namespace chase {

class Instance {
 public:
  explicit Instance(const Schema* schema) : schema_(schema) {}

  // Seeds an instance with the facts of `database`.
  static Instance FromDatabase(const Database& database);

  const Schema& schema() const { return *schema_; }

  // Adds an atom; returns true iff it was not already present.
  bool AddAtom(GroundAtom atom);

  bool Contains(const GroundAtom& atom) const {
    return membership_.count(atom) > 0;
  }

  const std::vector<GroundAtom>& AtomsOf(PredId pred) const {
    static const std::vector<GroundAtom> kEmpty;
    return pred < by_pred_.size() ? by_pred_[pred] : kEmpty;
  }

  size_t NumAtoms() const { return membership_.size(); }

  // Allocates a fresh null id (never reused).
  uint64_t NewNullId() { return next_null_++; }

  // Number of null ids allocated so far (= the next id to be handed out).
  uint64_t NumNulls() const { return next_null_; }

  // Restores the null counter when rebuilding an instance from a chase
  // checkpoint (chase/chase_engine.cc resume path), so fresh nulls in the
  // continued run are numbered exactly as in the uninterrupted one.
  void SetNextNull(uint64_t next_null) { next_null_ = next_null; }

  // Iterates all atoms (by predicate, insertion order within predicate).
  template <typename Fn>
  void ForEachAtom(Fn&& fn) const {
    for (const auto& atoms : by_pred_) {
      for (const GroundAtom& atom : atoms) fn(atom);
    }
  }

 private:
  const Schema* schema_;
  std::vector<std::vector<GroundAtom>> by_pred_;
  std::unordered_set<GroundAtom, GroundAtomHash> membership_;
  uint64_t next_null_ = 0;
};

}  // namespace chase

#endif  // CHASE_CHASE_INSTANCE_H_
