#include "core/dynamic_simplification.h"

#include <utility>

#include "base/status.h"
#include "core/simplification.h"
#include "core/specialization.h"
#include "exec/frontier_pool.h"
#include "index/find_shapes.h"
#include "logic/atom.h"
#include "logic/database.h"
#include "logic/schema.h"
#include "logic/shape.h"
#include "logic/tgd.h"
#include "storage/catalog.h"
#include "storage/shape_finder.h"
#include "storage/shape_source.h"

namespace chase {
namespace {

// True iff a homomorphism from the body atom of `tgd` to the shape atom
// R(id) exists, i.e., positions sharing a variable carry equal id values.
// On success, fills `var_id_values[v]` with the id value of each universal
// variable v.
bool BodyHomToShape(const Tgd& tgd, const IdTuple& id,
                    std::vector<uint8_t>& var_id_values) {
  const RuleAtom& body = tgd.body()[0];
  var_id_values.assign(tgd.num_universal(), 0);
  for (size_t i = 0; i < body.args.size(); ++i) {
    uint8_t& value = var_id_values[body.args[i]];
    if (value == 0) {
      value = id[i];
    } else if (value != id[i]) {
      return false;
    }
  }
  return true;
}

// The base-schema shape of `atom` under specialization `f` — exactly the
// shape SimplifyRuleAtom computes, but without touching a ShapeSchema, so
// frontier workers can derive successor shapes in parallel while all
// interning stays on the serial absorb path (deterministic predicate ids).
Shape ShapeUnderSpecialization(const Tgd& tgd, const RuleAtom& atom,
                               const Specialization& f) {
  std::vector<VarId> tuple;
  tuple.reserve(atom.args.size());
  for (VarId var : atom.args) {
    tuple.push_back(tgd.IsUniversal(var) ? f[var] : var);
  }
  return Shape(atom.pred, IdOf(std::span<const VarId>(tuple)));
}

// The (rule, specialization) pairs one shape admits, with the head shapes
// derived under each specialization — the parallel half of an expansion.
// The head shapes are computed exactly once, here on the workers: the same
// vector feeds successor discovery AND the serial SimplifyTgd absorb call,
// which previously re-derived every head shape a second time.
struct ShapeMatch {
  size_t rule;
  Specialization f;
  std::vector<Shape> head_shapes;
};
struct ShapeMatches {
  std::vector<ShapeMatch> rules;
};

}  // namespace

StatusOr<DynamicSimplificationResult> DynamicSimplificationFromShapes(
    const Schema& schema, const std::vector<Tgd>& tgds,
    const std::vector<Shape>& database_shapes, unsigned threads,
    WorkerPool* worker_pool) {
  if (!AllLinear(tgds)) {
    return InvalidArgumentError(
        "dynamic simplification requires linear TGDs");
  }
  for (const Shape& shape : database_shapes) {
    if (shape.pred >= schema.NumPredicates()) {
      return InvalidArgumentError(
          "database shape over a predicate missing from the schema");
    }
  }
  DynamicSimplificationResult result;
  result.shape_schema = std::make_unique<ShapeSchema>(&schema);

  // Index: body predicate -> rules (the "index structure that enables fast
  // access to the TGDs" of Section 5.4), ascending rule index — the
  // canonical per-shape emission order.
  std::vector<std::vector<size_t>> rules_by_body_pred(schema.NumPredicates());
  for (size_t rule = 0; rule < tgds.size(); ++rule) {
    rules_by_body_pred[tgds[rule].body()[0].pred].push_back(rule);
  }

  // S is the engine's seen-set, ΔS its per-depth frontier: each (rule,
  // shape) pair is processed at most once because a shape is admitted into
  // a frontier exactly once. Expansion (homomorphism checks + successor
  // shapes) runs parallel; SimplifyTgd — which interns predicates into the
  // shared shape schema — runs on the serial absorb path in canonical
  // order, so the emitted TGD list and the interning order are independent
  // of the thread count.
  using Pool = FrontierPool<Shape, ShapeMatches, ShapeHash>;
  Pool pool({.threads = std::max(1u, threads), .pool = worker_pool});
  Status status = pool.Run(
      database_shapes,
      [&](unsigned /*worker*/, const Shape& shape, ShapeMatches* out,
          Pool::Discoveries* discovered) -> Status {
        std::vector<uint8_t> var_id_values;
        for (size_t rule : rules_by_body_pred[shape.pred]) {
          const Tgd& tgd = tgds[rule];
          if (!BodyHomToShape(tgd, shape.id, var_id_values)) continue;
          Specialization f = SpecializationFromIdValues(var_id_values);
          std::vector<Shape> head_shapes;
          head_shapes.reserve(tgd.head().size());
          for (const RuleAtom& head_atom : tgd.head()) {
            head_shapes.push_back(
                ShapeUnderSpecialization(tgd, head_atom, f));
            discovered->Discover(head_shapes.back());
          }
          out->rules.push_back(
              {rule, std::move(f), std::move(head_shapes)});
        }
        return OkStatus();
      },
      [&](std::span<const Shape> frontier,
          std::span<ShapeMatches> outs) -> Status {
        for (size_t i = 0; i < frontier.size(); ++i) {
          for (ShapeMatch& match : outs[i].rules) {
            CHASE_ASSIGN_OR_RETURN(
                Tgd simplified,
                SimplifyTgd(tgds[match.rule], match.f, *result.shape_schema,
                            std::span<const Shape>(match.head_shapes)));
            result.tgds.push_back(std::move(simplified));
          }
        }
        return OkStatus();
      },
      &result.frontier);
  CHASE_RETURN_IF_ERROR(status);
  result.num_initial_shapes = result.frontier.seeds_admitted;
  result.num_derived_shapes = result.frontier.items_expanded;
  return result;
}

StatusOr<DynamicSimplificationResult> DynamicSimplification(
    const Database& database, const std::vector<Tgd>& tgds,
    storage::ShapeFinderMode mode, unsigned threads) {
  storage::Catalog catalog(&database);
  storage::MemoryShapeSource source(&catalog);
  CHASE_ASSIGN_OR_RETURN(
      std::vector<Shape> shapes,
      index::FindShapes(source, {.mode = mode, .threads = threads}));
  return DynamicSimplificationFromShapes(database.schema(), tgds, shapes,
                                         threads);
}

}  // namespace chase
