#include "core/dynamic_simplification.h"

#include <deque>

#include "storage/catalog.h"
#include "storage/shape_source.h"

namespace chase {
namespace {

// True iff a homomorphism from the body atom of `tgd` to the shape atom
// R(id) exists, i.e., positions sharing a variable carry equal id values.
// On success, fills `var_id_values[v]` with the id value of each universal
// variable v.
bool BodyHomToShape(const Tgd& tgd, const IdTuple& id,
                    std::vector<uint8_t>& var_id_values) {
  const RuleAtom& body = tgd.body()[0];
  var_id_values.assign(tgd.num_universal(), 0);
  for (size_t i = 0; i < body.args.size(); ++i) {
    uint8_t& value = var_id_values[body.args[i]];
    if (value == 0) {
      value = id[i];
    } else if (value != id[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace

StatusOr<DynamicSimplificationResult> DynamicSimplificationFromShapes(
    const Schema& schema, const std::vector<Tgd>& tgds,
    const std::vector<Shape>& database_shapes) {
  if (!AllLinear(tgds)) {
    return InvalidArgumentError(
        "dynamic simplification requires linear TGDs");
  }
  DynamicSimplificationResult result;
  result.shape_schema = std::make_unique<ShapeSchema>(&schema);

  // Index: body predicate -> rules (the "index structure that enables fast
  // access to the TGDs" of Section 5.4).
  std::vector<std::vector<size_t>> rules_by_body_pred(schema.NumPredicates());
  for (size_t rule = 0; rule < tgds.size(); ++rule) {
    rules_by_body_pred[tgds[rule].body()[0].pred].push_back(rule);
  }

  // S: all shapes seen; ΔS: the worklist of shapes not yet applied. Each
  // (rule, shape) pair is processed at most once because a shape enters the
  // worklist exactly once.
  ShapeSet seen;
  std::deque<Shape> worklist;
  for (const Shape& shape : database_shapes) {
    if (shape.pred >= schema.NumPredicates()) {
      return InvalidArgumentError(
          "database shape over a predicate missing from the schema");
    }
    if (seen.insert(shape).second) worklist.push_back(shape);
  }
  result.num_initial_shapes = seen.size();

  std::vector<uint8_t> var_id_values;
  std::vector<Shape> head_shapes;
  while (!worklist.empty()) {
    Shape shape = std::move(worklist.front());
    worklist.pop_front();
    for (size_t rule : rules_by_body_pred[shape.pred]) {
      const Tgd& tgd = tgds[rule];
      if (!BodyHomToShape(tgd, shape.id, var_id_values)) continue;
      const Specialization f = SpecializationFromIdValues(var_id_values);
      head_shapes.clear();
      CHASE_ASSIGN_OR_RETURN(
          Tgd simplified,
          SimplifyTgd(tgd, f, *result.shape_schema, &head_shapes));
      result.tgds.push_back(std::move(simplified));
      for (Shape& head_shape : head_shapes) {
        if (seen.insert(head_shape).second) {
          worklist.push_back(std::move(head_shape));
        }
      }
    }
  }
  result.num_derived_shapes = seen.size();
  return result;
}

StatusOr<DynamicSimplificationResult> DynamicSimplification(
    const Database& database, const std::vector<Tgd>& tgds,
    storage::ShapeFinderMode mode) {
  storage::Catalog catalog(&database);
  storage::MemoryShapeSource source(&catalog);
  CHASE_ASSIGN_OR_RETURN(std::vector<Shape> shapes,
                         storage::FindShapes(source, {.mode = mode}));
  return DynamicSimplificationFromShapes(database.schema(), tgds, shapes);
}

}  // namespace chase
