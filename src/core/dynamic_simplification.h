// Dynamic simplification (Definition 4.2 / Algorithm 2).
//
// Instead of materializing the exponentially large simple(Σ), dynamic
// simplification keeps only the simplified TGDs that can actually fire when
// the input database is D: starting from shape(D), it closes the shape set
// under the immediate-consequence operator Γ_Σ, generating one simplified
// TGD per (rule, derivable body shape with a compatible homomorphism). The
// result simple_D(Σ) is weakly acyclic iff chase(D, Σ) is finite (Lemmas
// 4.3 + 4.5 with Theorem 3.6).
//
// The worklist runs depth-synchronously through chase::FrontierPool:
// shapes first derived at the same depth are independent, so their
// (rule, shape) homomorphism checks expand in parallel when `threads` > 1,
// while the simplified TGDs are emitted serially per depth. The emitted
// order is canonical and documented (see DynamicSimplificationResult),
// identical for every thread count.

#ifndef CHASE_CORE_DYNAMIC_SIMPLIFICATION_H_
#define CHASE_CORE_DYNAMIC_SIMPLIFICATION_H_

#include <memory>
#include <vector>

#include "base/status.h"
#include "core/simplification.h"
#include "exec/frontier_pool.h"
#include "logic/database.h"
#include "logic/schema.h"
#include "logic/shape.h"
#include "logic/tgd.h"
#include "storage/shape_finder.h"

namespace chase {

struct DynamicSimplificationResult {
  std::unique_ptr<ShapeSchema> shape_schema;
  // simple_D(Σ) over shape_schema->schema(), in the canonical order: TGDs
  // are grouped by the derivation depth of their body shape (depth 0 = the
  // deduplicated database shapes, depth d+1 = shapes first derived from
  // depth d), within a depth by body shape ascending in (pred, id), and per
  // body shape by rule index ascending. Duplicates are kept — one entry per
  // (rule, shape) pair with a compatible homomorphism — and the shape
  // schema's predicates are interned in exactly this emission order, so the
  // whole result (TGDs, predicate ids, names) is bit-identical for every
  // thread count. Pinned by DynamicSimplificationTest.CanonicalTgdOrder.
  std::vector<Tgd> tgds;
  size_t num_initial_shapes = 0;  // |shape(D)|
  size_t num_derived_shapes = 0;  // |Σ(shape(D))|
  FrontierStats frontier;         // worklist depth/expansion counters
};

// Algorithm 2 given the database shapes (the db-dependent FindShapes step is
// separated out so callers can time it independently, as the paper does).
// `threads` <= 1 expands the worklist inline on the calling thread; the
// result is identical either way. A non-null `pool` runs the worklist on
// that caller-owned persistent WorkerPool instead (its thread count wins
// over `threads`) — how IsChaseFiniteL shares one pool between FindShapes
// and this worklist. The canonical result is unchanged in every case.
[[nodiscard]]
StatusOr<DynamicSimplificationResult> DynamicSimplificationFromShapes(
    const Schema& schema, const std::vector<Tgd>& tgds,
    const std::vector<Shape>& database_shapes, unsigned threads = 1,
    WorkerPool* pool = nullptr);

// FindShapes(D) + Algorithm 2. `database.schema()` must contain every
// predicate of `tgds`. `threads` drives both the shape finder and the
// simplification worklist.
[[nodiscard]] StatusOr<DynamicSimplificationResult> DynamicSimplification(
    const Database& database, const std::vector<Tgd>& tgds,
    storage::ShapeFinderMode mode = storage::ShapeFinderMode::kInMemory,
    unsigned threads = 1);

}  // namespace chase

#endif  // CHASE_CORE_DYNAMIC_SIMPLIFICATION_H_
