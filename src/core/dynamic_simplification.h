// Dynamic simplification (Definition 4.2 / Algorithm 2).
//
// Instead of materializing the exponentially large simple(Σ), dynamic
// simplification keeps only the simplified TGDs that can actually fire when
// the input database is D: starting from shape(D), it closes the shape set
// under the immediate-consequence operator Γ_Σ, generating one simplified
// TGD per (rule, derivable body shape with a compatible homomorphism). The
// result simple_D(Σ) is weakly acyclic iff chase(D, Σ) is finite (Lemmas
// 4.3 + 4.5 with Theorem 3.6).

#ifndef CHASE_CORE_DYNAMIC_SIMPLIFICATION_H_
#define CHASE_CORE_DYNAMIC_SIMPLIFICATION_H_

#include <memory>
#include <vector>

#include "base/status.h"
#include "core/simplification.h"
#include "logic/database.h"
#include "logic/shape.h"
#include "logic/tgd.h"
#include "storage/shape_finder.h"

namespace chase {

struct DynamicSimplificationResult {
  std::unique_ptr<ShapeSchema> shape_schema;
  std::vector<Tgd> tgds;  // simple_D(Σ), over shape_schema->schema()
  size_t num_initial_shapes = 0;  // |shape(D)|
  size_t num_derived_shapes = 0;  // |Σ(shape(D))|
};

// Algorithm 2 given the database shapes (the db-dependent FindShapes step is
// separated out so callers can time it independently, as the paper does).
StatusOr<DynamicSimplificationResult> DynamicSimplificationFromShapes(
    const Schema& schema, const std::vector<Tgd>& tgds,
    const std::vector<Shape>& database_shapes);

// FindShapes(D) + Algorithm 2. `database.schema()` must contain every
// predicate of `tgds`.
StatusOr<DynamicSimplificationResult> DynamicSimplification(
    const Database& database, const std::vector<Tgd>& tgds,
    storage::ShapeFinderMode mode = storage::ShapeFinderMode::kInMemory);

}  // namespace chase

#endif  // CHASE_CORE_DYNAMIC_SIMPLIFICATION_H_
