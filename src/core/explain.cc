#include "core/explain.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <unordered_map>

#include "base/status.h"
#include "graph/dependency_graph.h"
#include "graph/digraph.h"
#include "graph/tarjan.h"
#include "logic/atom.h"
#include "logic/database.h"
#include "logic/printer.h"
#include "logic/schema.h"
#include "logic/tgd.h"

namespace chase {

namespace {

// Recovers one TGD inducing the (deduplicated) graph edge from → to.
StatusOr<size_t> FindRuleForEdge(const std::vector<Tgd>& tgds,
                                 const Position& from, const Position& to,
                                 bool special) {
  for (size_t r = 0; r < tgds.size(); ++r) {
    const Tgd& tgd = tgds[r];
    const RuleAtom& body = tgd.body()[0];
    if (body.pred != from.pred) continue;
    if (from.index >= body.args.size()) continue;
    const VarId x = body.args[from.index];
    if (!tgd.InFrontier(x)) continue;
    for (const RuleAtom& head : tgd.head()) {
      if (head.pred != to.pred) continue;
      const VarId at_target = head.args[to.index];
      if (special ? tgd.IsExistential(at_target) : at_target == x) {
        return r;
      }
    }
  }
  return InternalError("no rule induces a witness edge");
}

}  // namespace

std::string FormatWitness(const Schema& schema,
                          const NonTerminationWitness& witness,
                          const std::vector<Tgd>& tgds) {
  auto name = [&](const Position& position) {
    return schema.PredicateName(position.pred) + "." +
           std::to_string(position.index + 1);
  };
  std::ostringstream os;
  auto print_edges = [&](const std::vector<WitnessEdge>& edges) {
    for (const WitnessEdge& edge : edges) {
      os << "  " << name(edge.from)
         << (edge.special ? " --(exists)--> " : " -----------> ")
         << name(edge.to) << "   via rule #" << edge.rule_index << ": "
         << ToString(schema, tgds[edge.rule_index]) << "\n";
    }
  };
  if (!witness.support_path.empty()) {
    os << "support path (from a non-empty relation):\n";
    print_edges(witness.support_path);
  } else {
    os << "the cycle starts at a non-empty relation; no support path "
          "needed\n";
  }
  os << "cycle with a special edge:\n";
  print_edges(witness.cycle);
  return os.str();
}

StatusOr<NonTerminationWitness> ExplainNonTerminationSL(
    const Database& database, const std::vector<Tgd>& tgds) {
  if (!AllSimpleLinear(tgds)) {
    return InvalidArgumentError("Explain requires simple-linear TGDs");
  }
  if (!AllHaveNonEmptyFrontier(tgds)) {
    return InvalidArgumentError("Explain requires non-empty frontiers");
  }
  const Schema& schema = database.schema();
  const DependencyGraph graph = BuildDependencyGraph(schema, tgds);
  const Digraph& digraph = graph.graph();
  const SccResult scc = TarjanScc(digraph);
  const SpecialSccs special = FindSpecialSccs(digraph, scc);
  if (special.empty()) {
    return FailedPreconditionError("chase(D, Σ) is finite: no special SCC");
  }

  std::vector<bool> nonempty(schema.NumPredicates(), false);
  for (PredId pred : database.NonEmptyPredicates()) nonempty[pred] = true;

  // Try each special SCC until a supported one is found.
  for (size_t c = 0; c < special.components.size(); ++c) {
    const uint32_t component = special.components[c];

    // Locate a special edge inside the component.
    uint32_t special_from = 0, special_to = 0;
    bool found_edge = false;
    for (uint32_t node = 0; node < digraph.num_nodes() && !found_edge;
         ++node) {
      if (scc.component[node] != component) continue;
      for (const Arc& arc : digraph.OutArcs(node)) {
        if (arc.special && scc.component[arc.node] == component) {
          special_from = node;
          special_to = arc.node;
          found_edge = true;
          break;
        }
      }
    }
    if (!found_edge) continue;  // cannot happen for a special SCC

    // Close the cycle: BFS special_to -> special_from inside the component.
    std::unordered_map<uint32_t, std::pair<uint32_t, bool>> parent;
    std::deque<uint32_t> queue = {special_to};
    parent.emplace(special_to, std::make_pair(special_to, false));
    while (!queue.empty() && parent.find(special_from) == parent.end()) {
      const uint32_t node = queue.front();
      queue.pop_front();
      for (const Arc& arc : digraph.OutArcs(node)) {
        if (scc.component[arc.node] != component) continue;
        if (parent.emplace(arc.node, std::make_pair(node, arc.special))
                .second) {
          queue.push_back(arc.node);
        }
      }
    }

    NonTerminationWitness witness;
    // Path edges from special_to to special_from, then the special edge.
    std::vector<WitnessEdge> path;
    for (uint32_t node = special_from; node != special_to;) {
      const auto [prev, was_special] = parent.at(node);
      WitnessEdge edge;
      edge.from = graph.PositionOf(prev);
      edge.to = graph.PositionOf(node);
      edge.special = was_special;
      path.push_back(edge);
      node = prev;
    }
    std::reverse(path.begin(), path.end());
    WitnessEdge closing;
    closing.from = graph.PositionOf(special_from);
    closing.to = graph.PositionOf(special_to);
    closing.special = true;
    witness.cycle = {closing};
    witness.cycle.insert(witness.cycle.end(), path.begin(), path.end());

    // Supportedness: reverse-BFS from the cycle's nodes to a non-empty
    // relation (Section 5.3's step (2) with the path recorded).
    std::unordered_map<uint32_t, std::pair<uint32_t, bool>> forward;
    std::deque<uint32_t> rqueue;
    uint32_t support_start = UINT32_MAX;
    auto seed = [&](uint32_t node) {
      if (forward.emplace(node, std::make_pair(node, false)).second) {
        rqueue.push_back(node);
      }
    };
    seed(special_from);
    seed(special_to);
    for (const WitnessEdge& edge : path) {
      seed(graph.NodeOf(edge.from));
      seed(graph.NodeOf(edge.to));
    }
    while (!rqueue.empty() && support_start == UINT32_MAX) {
      const uint32_t node = rqueue.front();
      rqueue.pop_front();
      if (nonempty[graph.PositionOf(node).pred]) {
        support_start = node;
        break;
      }
      for (const Arc& arc : digraph.InArcs(node)) {
        if (forward.emplace(arc.node, std::make_pair(node, arc.special))
                .second) {
          rqueue.push_back(arc.node);
        }
      }
    }
    if (support_start == UINT32_MAX) continue;  // unsupported SCC; try next

    for (uint32_t node = support_start;;) {
      const auto [next, was_special] = forward.at(node);
      if (next == node) break;  // reached a seeded cycle node
      WitnessEdge edge;
      edge.from = graph.PositionOf(node);
      edge.to = graph.PositionOf(next);
      edge.special = was_special;
      witness.support_path.push_back(edge);
      node = next;
    }

    // Rotate the cycle so it starts where the support lands (or, with an
    // empty support path, at the non-empty cycle position itself).
    const Position anchor = witness.support_path.empty()
                                ? graph.PositionOf(support_start)
                                : witness.support_path.back().to;
    for (size_t i = 0; i < witness.cycle.size(); ++i) {
      if (witness.cycle[i].from == anchor) {
        std::rotate(witness.cycle.begin(), witness.cycle.begin() + i,
                    witness.cycle.end());
        break;
      }
    }

    // Attach witnessing rules.
    for (std::vector<WitnessEdge>* edges :
         {&witness.support_path, &witness.cycle}) {
      for (WitnessEdge& edge : *edges) {
        CHASE_ASSIGN_OR_RETURN(
            edge.rule_index,
            FindRuleForEdge(tgds, edge.from, edge.to, edge.special));
      }
    }
    return witness;
  }
  return FailedPreconditionError(
      "chase(D, Σ) is finite: no supported special SCC");
}

}  // namespace chase
