// Witness extraction for non-termination verdicts.
//
// When IsChaseFinite[SL] answers "infinite", the proof is a D-supported
// cycle with a special edge in dg(Σ) (Theorem 3.3). This module extracts
// one such witness in human-readable form:
//
//  * the cycle, as a sequence of predicate positions, with the special
//    edges marked,
//  * one TGD per edge that induces it (edges are deduplicated in the graph,
//    so a witnessing rule is recovered by rescanning Σ), and
//  * a support path: a chain of positions from a non-empty relation of D to
//    the cycle, again with witnessing rules.
//
// chasectl's `explain` subcommand prints this; tests validate that every
// reported edge is really induced by the reported rule and that the cycle
// closes and contains a special edge.

#ifndef CHASE_CORE_EXPLAIN_H_
#define CHASE_CORE_EXPLAIN_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "logic/database.h"
#include "logic/schema.h"
#include "logic/tgd.h"

namespace chase {

struct WitnessEdge {
  Position from;
  Position to;
  bool special = false;
  size_t rule_index = 0;  // index into the input TGD vector
};

struct NonTerminationWitness {
  // support_path[0].from belongs to a non-empty relation of D (it may be
  // empty when the cycle itself starts at a non-empty relation);
  // cycle.front().from == cycle.back().to, and at least one cycle edge is
  // special.
  std::vector<WitnessEdge> support_path;
  std::vector<WitnessEdge> cycle;
};

// Renders the witness as indented text ("r.2 --∃--> r.2 via rule #3 ...").
std::string FormatWitness(const Schema& schema,
                          const NonTerminationWitness& witness,
                          const std::vector<Tgd>& tgds);

// Extracts a witness for simple-linear TGDs. Fails with
// kFailedPrecondition if chase(D, Σ) is finite (nothing to explain), and
// kInvalidArgument on non-simple-linear input.
[[nodiscard]] StatusOr<NonTerminationWitness> ExplainNonTerminationSL(
    const Database& database, const std::vector<Tgd>& tgds);

}  // namespace chase

#endif  // CHASE_CORE_EXPLAIN_H_
