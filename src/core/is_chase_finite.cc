#include "core/is_chase_finite.h"

#include <optional>

#include "base/status.h"
#include "base/timer.h"
#include "core/dynamic_simplification.h"
#include "core/simplification.h"
#include "core/weak_acyclicity.h"
#include "graph/dependency_graph.h"
#include "graph/tarjan.h"
#include "index/find_shapes.h"
#include "index/sharded_shape_index.h"
#include "logic/database.h"
#include "logic/shape.h"
#include "logic/tgd.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/catalog.h"
#include "storage/shape_finder.h"
#include "storage/shape_source.h"

namespace chase {
namespace {

Status ValidateFrontiers(const std::vector<Tgd>& tgds) {
  if (!AllHaveNonEmptyFrontier(tgds)) {
    return InvalidArgumentError(
        "every TGD must have a non-empty frontier (Section 3's w.l.o.g. "
        "assumption); normalize the rule set first");
  }
  return OkStatus();
}

}  // namespace

StatusOr<bool> IsChaseFiniteSL(const Database& database,
                               const std::vector<Tgd>& tgds,
                               SlCheckStats* stats) {
  if (!AllSimpleLinear(tgds)) {
    return InvalidArgumentError(
        "IsChaseFinite[SL] requires simple-linear TGDs");
  }
  CHASE_RETURN_IF_ERROR(ValidateFrontiers(tgds));

  SlCheckStats local;
  SlCheckStats& out = stats != nullptr ? *stats : local;

  Timer timer;
  const DependencyGraph graph = [&] {
    obs::TraceSpan span("check", "t_graph");
    return BuildDependencyGraph(database.schema(), tgds);
  }();
  out.graph_ms = timer.ElapsedMillis();
  out.graph_nodes = graph.num_nodes();
  out.graph_edges = graph.num_edges();
  obs::SetGauge("check.t_graph_ms", out.graph_ms);

  timer.Restart();
  const SpecialSccs special = [&] {
    obs::TraceSpan span("check", "t_comp");
    return FindSpecialSccs(graph.graph());
  }();
  out.comp_ms = timer.ElapsedMillis();
  out.special_sccs = special.components.size();
  obs::SetGauge("check.t_comp_ms", out.comp_ms);
  if (special.empty()) return true;

  timer.Restart();
  storage::Catalog catalog(&database);
  const bool supported = [&] {
    obs::TraceSpan span("check", "t_support");
    return Supports(catalog, graph, special.representatives);
  }();
  out.support_ms = timer.ElapsedMillis();
  obs::SetGauge("check.t_support_ms", out.support_ms);
  return !supported;
}

StatusOr<bool> IsChaseFiniteL(const Database& database,
                              const std::vector<Tgd>& tgds,
                              const LCheckOptions& options,
                              LCheckStats* stats) {
  if (!AllLinear(tgds)) {
    return InvalidArgumentError("IsChaseFinite[L] requires linear TGDs");
  }
  CHASE_RETURN_IF_ERROR(ValidateFrontiers(tgds));

  LCheckStats local;
  LCheckStats& out = stats != nullptr ? *stats : local;

  // One worker pool for the whole check: FindShapes and the simplification
  // worklist used to spawn one each even though both accept a shared pool.
  // A caller-owned pool wins; otherwise spawn once here, sized to the
  // larger of the two knobs (both phases are deterministic in their thread
  // count, so the widened phase returns the same result either way).
  WorkerPool* pool = options.pool;
  std::optional<WorkerPool> owned_pool;
  const unsigned max_threads =
      std::max(options.shape_threads, options.simplify_threads);
  if (pool == nullptr && max_threads > 1) {
    owned_pool.emplace(max_threads);
    pool = &*owned_pool;
  }

  // The db-dependent component: FindShapes (Section 8's t-shapes), unless
  // the caller maintains the shapes incrementally (Section 10) — either as
  // a pre-extracted vector or as a live sharded index.
  Timer timer;
  storage::Catalog catalog(&database);
  std::vector<Shape> computed;
  {
    obs::TraceSpan shapes_span("check", "t_shapes");
    if (options.precomputed_shapes == nullptr) {
      if (options.shape_index != nullptr) {
        computed = options.shape_index->CurrentShapes();
      } else {
        storage::MemoryShapeSource source(&catalog);
        storage::FindShapesOptions find_options;
        find_options.mode = options.shape_finder;
        find_options.threads = options.shape_threads;
        // Share the pool only when this phase was asked to run parallel: a
        // serial phase keeps its serial plan (and its serial-plan metering)
        // even if the other phase forced a pool into existence.
        find_options.pool = options.shape_threads > 1 ? pool : nullptr;
        CHASE_ASSIGN_OR_RETURN(computed,
                               index::FindShapes(source, find_options));
      }
    }
  }
  const std::vector<Shape>& shapes = options.precomputed_shapes != nullptr
                                         ? *options.precomputed_shapes
                                         : computed;
  out.shapes_ms = timer.ElapsedMillis();
  out.access = catalog.stats();
  obs::SetGauge("check.t_shapes_ms", out.shapes_ms);

  // The db-independent component: dynamic simplification + dependency graph
  // (t-graph), then special-SCC search (t-comp).
  timer.Restart();
  std::optional<DynamicSimplificationResult> simplified_opt;
  std::optional<DependencyGraph> graph_opt;
  {
    obs::TraceSpan graph_span("check", "t_graph");
    CHASE_ASSIGN_OR_RETURN(
        DynamicSimplificationResult result,
        DynamicSimplificationFromShapes(
            database.schema(), tgds, shapes, options.simplify_threads,
            options.simplify_threads > 1 ? pool : nullptr));
    simplified_opt.emplace(std::move(result));
    graph_opt.emplace(BuildDependencyGraph(
        simplified_opt->shape_schema->schema(), simplified_opt->tgds));
  }
  const DynamicSimplificationResult& simplified = *simplified_opt;
  const DependencyGraph& graph = *graph_opt;
  out.graph_ms = timer.ElapsedMillis();
  out.num_initial_shapes = simplified.num_initial_shapes;
  out.num_derived_shapes = simplified.num_derived_shapes;
  out.num_simplified_tgds = simplified.tgds.size();
  out.graph_nodes = graph.num_nodes();
  out.graph_edges = graph.num_edges();
  obs::SetGauge("check.t_graph_ms", out.graph_ms);

  timer.Restart();
  const bool acyclic = [&] {
    obs::TraceSpan comp_span("check", "t_comp");
    return FindSpecialSccs(graph.graph()).empty();
  }();
  out.comp_ms = timer.ElapsedMillis();
  obs::SetGauge("check.t_comp_ms", out.comp_ms);
  return acyclic;
}

StatusOr<bool> IsChaseFiniteLStatic(const Database& database,
                                    const std::vector<Tgd>& tgds,
                                    uint64_t max_simplified) {
  if (!AllLinear(tgds)) {
    return InvalidArgumentError("IsChaseFinite[L] requires linear TGDs");
  }
  CHASE_RETURN_IF_ERROR(ValidateFrontiers(tgds));

  // Theorem 3.6: chase(D, Σ) is finite iff simple(Σ) is
  // simple(D)-weakly-acyclic.
  CHASE_ASSIGN_OR_RETURN(
      StaticSimplificationResult simplified,
      StaticSimplification(database.schema(), tgds, max_simplified));
  std::unique_ptr<Database> simple_db =
      SimplifyDatabase(database, *simplified.shape_schema);
  return IsWeaklyAcyclicWrt(*simple_db, simplified.tgds);
}

}  // namespace chase
