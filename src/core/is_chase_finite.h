// The two practical semi-oblivious chase termination algorithms (Section 4):
//
//   IsChaseFiniteSL (Algorithm 1): for simple-linear TGDs. Builds dg(Σ),
//   finds the special SCCs, and checks whether the database supports one of
//   them. chase(D, Σ) is finite iff Σ is D-weakly-acyclic (Theorem 3.3).
//
//   IsChaseFiniteL (Algorithm 3): for linear TGDs. Dynamically simplifies Σ
//   w.r.t. D, builds the dependency graph of simple_D(Σ) and reports
//   finiteness iff the graph has no special SCC — no support check needed,
//   because every predicate of simple_D(Σ) is reachable from shape(D) by
//   construction (Lemma 4.5).
//
// Both report the paper's per-component timings so the benches can
// reconstruct t-graph / t-comp / t-shapes exactly as in Sections 7 and 8.

#ifndef CHASE_CORE_IS_CHASE_FINITE_H_
#define CHASE_CORE_IS_CHASE_FINITE_H_

#include <cstdint>

#include "base/status.h"
#include "logic/database.h"
#include "logic/shape.h"
#include "logic/tgd.h"
#include "storage/catalog.h"
#include "storage/shape_finder.h"

namespace chase {

namespace index {
class ShardedShapeIndex;
}  // namespace index

struct SlCheckStats {
  double graph_ms = 0;    // t-graph: build dg(Σ)
  double comp_ms = 0;     // t-comp: find special SCCs
  double support_ms = 0;  // Supports (negligible per Remark 1)
  size_t graph_nodes = 0;
  size_t graph_edges = 0;
  size_t special_sccs = 0;
};

// Algorithm 1. The TGDs must be simple-linear with non-empty frontiers and
// over database.schema().
[[nodiscard]] StatusOr<bool> IsChaseFiniteSL(const Database& database,
                               const std::vector<Tgd>& tgds,
                               SlCheckStats* stats = nullptr);

struct LCheckOptions {
  storage::ShapeFinderMode shape_finder =
      storage::ShapeFinderMode::kInMemory;
  // Worker threads for the db-dependent FindShapes component (<= 1 runs it
  // serially). Ignored when the shapes come precomputed.
  unsigned shape_threads = 1;
  // Worker threads for the dynamic-simplification worklist (<= 1 expands it
  // inline). The emitted simple_D(Σ) is canonical and thread-count-
  // independent (see DynamicSimplificationResult), so this only changes
  // wall-clock, never the verdict or the stats.
  unsigned simplify_threads = 1;
  // When set, shape(D) is extracted from this incrementally maintained
  // index (index::ShardedShapeIndex::CurrentShapes) instead of scanning
  // the database — the Section 10 "materialize the shapes" deployment with
  // write-through maintenance. Must outlive the call.
  const index::ShardedShapeIndex* shape_index = nullptr;
  // When set, shape(D) is taken from here (sorted by (pred, id), the
  // contract of storage::FindShapes and storage::ShapeIndex::CurrentShapes)
  // and the db-dependent component is skipped entirely. Takes precedence
  // over shape_index. Must outlive the call.
  const std::vector<Shape>* precomputed_shapes = nullptr;
  // When non-null, both parallel phases — FindShapes and the dynamic-
  // simplification worklist — run on this caller-owned persistent
  // WorkerPool; its thread count overrides shape_threads and
  // simplify_threads. When null and either thread knob exceeds 1, the
  // check spawns ONE pool sized to the larger knob and threads it through
  // both phases itself, so a check pays one thread spawn, not one per
  // phase. Verdict and stats are identical either way (both phases are
  // deterministic in their thread count).
  WorkerPool* pool = nullptr;
};

struct LCheckStats {
  double shapes_ms = 0;  // t-shapes: the db-dependent component
  double graph_ms = 0;   // t-graph: dynamic simplification + graph build
  double comp_ms = 0;    // t-comp: find special SCCs
  size_t num_initial_shapes = 0;
  size_t num_derived_shapes = 0;
  size_t num_simplified_tgds = 0;
  size_t graph_nodes = 0;
  size_t graph_edges = 0;
  storage::AccessStats access;
};

// Algorithm 3. The TGDs must be linear with non-empty frontiers and over
// database.schema().
[[nodiscard]] StatusOr<bool> IsChaseFiniteL(const Database& database,
                              const std::vector<Tgd>& tgds,
                              const LCheckOptions& options = {},
                              LCheckStats* stats = nullptr);

// Reference implementation of the linear case via Theorem 3.6: statically
// simplify D and Σ and run Algorithm 1 on the result. Exponential in arity;
// used by tests and the static-vs-dynamic ablation. `max_simplified` caps
// |simple(Σ)|.
[[nodiscard]] StatusOr<bool> IsChaseFiniteLStatic(const Database& database,
                                    const std::vector<Tgd>& tgds,
                                    uint64_t max_simplified = 10'000'000);

}  // namespace chase

#endif  // CHASE_CORE_IS_CHASE_FINITE_H_
