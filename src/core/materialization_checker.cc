#include "core/materialization_checker.h"

#include "base/status.h"
#include "chase/chase_engine.h"
#include "logic/atom.h"
#include "logic/database.h"
#include "logic/schema.h"
#include "logic/tgd.h"

#include <algorithm>

namespace chase {

uint64_t ChaseSizeBound(const Database& database,
                        const std::vector<Tgd>& tgds) {
  const Schema& schema = database.schema();
  const uint64_t facts = std::max<uint64_t>(1, database.TotalFacts());
  const uint64_t base = std::max<uint32_t>(2, schema.MaxArity());
  uint64_t positions = 0;
  for (const Tgd& tgd : tgds) {
    for (const RuleAtom& atom : tgd.body()) positions += atom.args.size();
    for (const RuleAtom& atom : tgd.head()) positions += atom.args.size();
  }
  positions = std::max<uint64_t>(1, std::min<uint64_t>(positions, 64));
  // facts * base^positions, saturating.
  uint64_t bound = facts;
  for (uint64_t i = 0; i < positions; ++i) {
    if (bound > UINT64_MAX / base) return UINT64_MAX;
    bound *= base;
  }
  return bound;
}

StatusOr<MaterializationReport> MaterializationCheck(
    const Database& database, const std::vector<Tgd>& tgds,
    const MaterializationOptions& options) {
  MaterializationReport report;
  report.bound = ChaseSizeBound(database, tgds);
  const uint64_t budget =
      options.atom_budget == 0 ? report.bound : options.atom_budget;

  ChaseOptions chase_options;
  chase_options.variant = ChaseVariant::kSemiOblivious;
  chase_options.max_atoms = budget;
  chase_options.max_rounds = options.round_budget;
  CHASE_ASSIGN_OR_RETURN(ChaseResult result,
                         RunChase(database, tgds, chase_options));
  report.atoms = result.instance.NumAtoms();
  report.outcome = result.outcome;
  switch (result.outcome) {
    case ChaseOutcome::kFixpoint:
      report.decided = true;
      report.finite = true;
      break;
    case ChaseOutcome::kAtomLimit:
      // Exceeding k_{D,Σ} proves non-termination; exhausting a smaller
      // caller-supplied budget proves nothing.
      report.decided = budget >= report.bound;
      report.finite = false;
      break;
    case ChaseOutcome::kRoundLimit:
      report.decided = false;
      report.finite = false;
      break;
    case ChaseOutcome::kInterrupted:
      // This checker never arms checkpoint_on_signal, but the contract is
      // uniform: an interrupted chase decides nothing.
      report.decided = false;
      report.finite = false;
      break;
  }
  return report;
}

}  // namespace chase
