// The materialization-based termination check (Section 1.4): run the
// semi-oblivious chase while counting atoms; if the count ever exceeds a
// worst-case bound k_{D,Σ} on the size of a *finite* chase, the chase is
// infinite; if a fixpoint is reached first, it is finite.
//
// The paper's exploratory analysis found this approach "simply too
// expensive" because the worst-case optimal bounds of [Calautti–Gottlob–
// Pieris, PODS'22] are very large; the acyclicity-based algorithms replace
// it. We keep it as (a) the ablation baseline reproducing that finding and
// (b) a bounded ground-truth oracle for the property tests.
//
// ChaseSizeBound is a conservative stand-in for the PODS'22 bound (which we
// do not reproduce exactly): every atom of a finite semi-oblivious chase of
// a linear rule set is produced by a chain of triggers whose keys
// (rule, frontier tuple) never repeat a (rule, shape-of-frontier) pair more
// than |dom(D)|^w times, giving |D| · (|Σ| · w^w + 1) per derivation depth
// |pos(sch(Σ))| — we simply take |D| · B^|pos| with B = max(2, max arity),
// saturating. Any upper bound on finite-chase size makes the checker sound;
// a loose one only makes it (much) slower on non-terminating inputs, which
// is precisely the phenomenon the paper reports.

#ifndef CHASE_CORE_MATERIALIZATION_CHECKER_H_
#define CHASE_CORE_MATERIALIZATION_CHECKER_H_

#include <cstdint>

#include "base/status.h"
#include "chase/chase_engine.h"
#include "logic/database.h"
#include "logic/tgd.h"

namespace chase {

// The simulated worst-case bound k_{D,Σ} (see file comment). Saturates.
uint64_t ChaseSizeBound(const Database& database,
                        const std::vector<Tgd>& tgds);

struct MaterializationOptions {
  // Atom budget; 0 means "use ChaseSizeBound(D, Σ)". If the budget is below
  // the bound and is exhausted, the check is undecided.
  uint64_t atom_budget = 0;
  uint64_t round_budget = UINT64_MAX;
};

struct MaterializationReport {
  bool decided = false;
  bool finite = false;  // meaningful only if decided
  uint64_t atoms = 0;   // atoms materialized (including the database)
  uint64_t bound = 0;   // k_{D,Σ} used
  ChaseOutcome outcome = ChaseOutcome::kFixpoint;
};

[[nodiscard]] StatusOr<MaterializationReport> MaterializationCheck(
    const Database& database, const std::vector<Tgd>& tgds,
    const MaterializationOptions& options = {});

}  // namespace chase

#endif  // CHASE_CORE_MATERIALIZATION_CHECKER_H_
