#include "core/normalize.h"

#include <queue>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "logic/atom.h"
#include "logic/database.h"
#include "logic/schema.h"
#include "logic/shape.h"
#include "logic/tgd.h"

namespace chase {

namespace {

// A homomorphism from the (single, linear) body atom to a fact with shape
// `id` exists iff repeated variables land on equal blocks.
bool CompatibleWithShape(const RuleAtom& atom, const IdTuple& id) {
  for (size_t i = 0; i < atom.args.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (atom.args[j] == atom.args[i] && id[j] != id[i]) return false;
    }
  }
  return true;
}

// The shape of `head_atom` when the rule's body atom is matched against a
// fact of shape `body_id`: universal variables take their block value,
// existential variables take per-variable fresh values.
Shape HeadShape(const Tgd& tgd, const RuleAtom& body_atom,
                const IdTuple& body_id, const RuleAtom& head_atom) {
  std::vector<uint32_t> values(head_atom.args.size());
  for (size_t i = 0; i < head_atom.args.size(); ++i) {
    const VarId var = head_atom.args[i];
    if (tgd.IsUniversal(var)) {
      uint32_t block = 0;
      for (size_t j = 0; j < body_atom.args.size(); ++j) {
        if (body_atom.args[j] == var) {
          block = body_id[j];
          break;
        }
      }
      values[i] = block;
    } else {
      // Existential: a fresh value, shared between occurrences of the same
      // variable and distinct from every block (blocks are <= 255).
      values[i] = 256 + var;
    }
  }
  return Shape(head_atom.pred,
               IdOf(std::span<const uint32_t>(values)));
}

}  // namespace

StatusOr<NormalizeResult> NormalizeFrontiers(const Database& database,
                                             const std::vector<Tgd>& tgds) {
  if (!AllLinear(tgds)) {
    return InvalidArgumentError(
        "NormalizeFrontiers requires linear TGDs (shape-based applicability "
        "analysis)");
  }
  const Schema& schema = database.schema();

  NormalizeResult result;
  result.database = std::make_unique<Database>(&schema);
  for (uint32_t id = 0; id < database.NumNamedConstants(); ++id) {
    result.database->InternConstant(database.ConstantName(id));
  }
  result.database->EnsureAnonymousDomain(database.NumConstants());
  for (PredId pred = 0; pred < schema.NumPredicates(); ++pred) {
    const uint32_t arity = schema.Arity(pred);
    const auto tuples = database.Tuples(pred);
    for (size_t row = 0; row * arity < tuples.size(); ++row) {
      CHASE_RETURN_IF_ERROR(result.database->AddFact(
          pred, tuples.subspan(row * arity, arity)));
    }
  }

  std::vector<const Tgd*> pending;
  for (const Tgd& tgd : tgds) {
    if (tgd.HasNonEmptyFrontier()) {
      result.tgds.push_back(tgd);
    } else {
      pending.push_back(&tgd);
    }
  }
  if (pending.empty()) return result;

  // Shape propagation (the Σ(shape(D)) fixpoint of Section 4) over *all*
  // rules: at the shape level an empty-frontier rule firing once already
  // contributes all of its head shapes, so including the pending rules is
  // exact.
  std::vector<std::vector<const Tgd*>> rules_by_pred(schema.NumPredicates());
  for (const Tgd& tgd : tgds) {
    rules_by_pred[tgd.body()[0].pred].push_back(&tgd);
  }
  ShapeSet derived;
  std::queue<Shape> worklist;
  auto discover = [&](Shape shape) {
    if (derived.insert(shape).second) worklist.push(shape);
  };
  for (PredId pred : database.NonEmptyPredicates()) {
    const uint32_t arity = schema.Arity(pred);
    const auto tuples = database.Tuples(pred);
    for (size_t row = 0; row * arity < tuples.size(); ++row) {
      discover(ShapeOfTuple(pred, tuples.subspan(row * arity, arity)));
    }
  }
  while (!worklist.empty()) {
    const Shape shape = std::move(worklist.front());
    worklist.pop();
    for (const Tgd* tgd : rules_by_pred[shape.pred]) {
      const RuleAtom& body = tgd->body()[0];
      if (!CompatibleWithShape(body, shape.id)) continue;
      for (const RuleAtom& head : tgd->head()) {
        discover(HeadShape(*tgd, body, shape.id, head));
      }
    }
  }

  // Materialize the single firing of each applicable pending rule; the
  // nulls of result(σ, h) are fixed, so fresh constants are an exact stand-
  // in. Inapplicable rules never fire and are dropped.
  for (const Tgd* tgd : pending) {
    const RuleAtom& body = tgd->body()[0];
    bool applicable = false;
    for (const IdTuple& id : EnumerateIdTuples(
             static_cast<uint32_t>(body.args.size()))) {
      if (CompatibleWithShape(body, id) &&
          derived.count(Shape(body.pred, id)) > 0) {
        applicable = true;
        break;
      }
    }
    if (!applicable) {
      ++result.rules_dropped;
      continue;
    }
    ++result.rules_materialized;
    // Empty frontier: every head argument is existential; one fresh
    // constant per existential variable.
    std::unordered_map<VarId, uint32_t> fresh;
    for (const RuleAtom& head : tgd->head()) {
      std::vector<uint32_t> tuple(head.args.size());
      for (size_t i = 0; i < head.args.size(); ++i) {
        auto [it, inserted] = fresh.emplace(
            head.args[i],
            static_cast<uint32_t>(result.database->NumConstants()));
        if (inserted) {
          result.database->EnsureAnonymousDomain(it->second + 1);
        }
        tuple[i] = it->second;
      }
      CHASE_RETURN_IF_ERROR(result.database->AddFact(head.pred, tuple));
    }
  }
  return result;
}

}  // namespace chase
