// Frontier normalization: the paper's Section 3 w.l.o.g. transformation.
//
// The termination characterizations (Theorems 3.3 / 3.6) assume every TGD
// has a non-empty frontier, and IsChaseFinite[SL/L] reject rule sets that
// violate it. This module eliminates empty-frontier TGDs exactly.
//
// Key observation: for an empty-frontier TGD σ = R(x̄) → ∃z̄ ψ(z̄), the
// frontier restriction h|fr(σ) of every trigger is the empty map, so every
// trigger produces the *same* result set (nulls are named by (σ, h|fr, z)).
// The semi-oblivious chase therefore adds ψ's atoms exactly once — iff some
// trigger for σ ever exists, i.e., iff the chase instance ever contains an
// R-atom whose shape is compatible with id(x̄). For linear TGDs that
// applicability condition is decided exactly by the shape-propagation
// fixpoint Σ(shape(D)) of Section 4 (shapes ignore multiplicity, and one
// firing already contributes all of ψ's shapes).
//
// NormalizeFrontiers therefore (1) computes the derivable shapes of (D, Σ),
// (2) for every applicable empty-frontier TGD adds ψ instantiated with
// fresh constants (inert values, indistinguishable from the chase's fixed
// nulls for termination purposes) to a copy D' of D, dropping inapplicable
// ones outright, and (3) returns D' plus the non-empty-frontier rules.
// chase(D, Σ) is finite iff chase(D', Σ') is finite, and Σ' satisfies the
// checkers' precondition. A property test checks the equivalence against
// the bounded chase oracle on the original input.
//
// Note the transformation is database-dependent, exactly as the paper
// phrases it ("given a database D and a set Σ of TGDs, we can easily
// construct a set Σ'..."). A database-independent rewriting cannot work:
// making a body variable frontier re-fires the rule once per value, which
// can introduce divergence the original rule set does not have.

#ifndef CHASE_CORE_NORMALIZE_H_
#define CHASE_CORE_NORMALIZE_H_

#include <memory>
#include <vector>

#include "base/status.h"
#include "logic/database.h"
#include "logic/schema.h"
#include "logic/tgd.h"

namespace chase {

struct NormalizeResult {
  // D': a copy of the input database plus the materialized one-shot
  // firings. References the input database's schema.
  std::unique_ptr<Database> database;
  // Σ': the rules with non-empty frontier, unchanged.
  std::vector<Tgd> tgds;
  size_t rules_materialized = 0;  // applicable empty-frontier TGDs
  size_t rules_dropped = 0;       // inapplicable ones
};

// Requires linear TGDs (the applicability analysis is shape-based). The
// result's database references `database.schema()`, which must outlive it.
[[nodiscard]]
StatusOr<NormalizeResult> NormalizeFrontiers(const Database& database,
                                             const std::vector<Tgd>& tgds);

}  // namespace chase

#endif  // CHASE_CORE_NORMALIZE_H_
