#include "core/simplification.h"

#include "base/status.h"
#include "core/specialization.h"
#include "logic/atom.h"
#include "logic/database.h"
#include "logic/schema.h"
#include "logic/shape.h"
#include "logic/tgd.h"

namespace chase {

PredId ShapeSchema::Intern(const Shape& shape) {
  auto it = index_.find(shape);
  if (it != index_.end()) return it->second;
  auto pred = schema_.AddPredicate(ShapeName(*base_, shape),
                                   shape.NumDistinct());
  // Names are unique by construction (one per shape), so this cannot fail.
  const PredId id = pred.value();
  shapes_.push_back(shape);
  index_.emplace(shape, id);
  return id;
}

namespace {

// The one construction path for a simplified atom. When `precomputed` is
// non-null it is interned as the atom's shape instead of re-deriving the
// canonicalization from the substituted tuple — the arguments always come
// from the tuple either way, so both SimplifyTgd overloads stay in
// lockstep by construction.
RuleAtom SimplifyRuleAtomImpl(const RuleAtom& atom,
                              const std::vector<VarId>& subst,
                              ShapeSchema& shape_schema,
                              const Shape* precomputed, Shape* shape_out) {
  std::vector<VarId> tuple;
  tuple.reserve(atom.args.size());
  for (VarId var : atom.args) tuple.push_back(subst[var]);
  RuleAtom simplified;
  if (precomputed != nullptr) {
    simplified.pred = shape_schema.Intern(*precomputed);
  } else {
    Shape shape(atom.pred, IdOf(std::span<const VarId>(tuple)));
    simplified.pred = shape_schema.Intern(shape);
    if (shape_out != nullptr) *shape_out = std::move(shape);
  }
  simplified.args = UniqueOf(std::span<const VarId>(tuple));
  return simplified;
}

}  // namespace

RuleAtom SimplifyRuleAtom(const RuleAtom& atom,
                          const std::vector<VarId>& subst,
                          ShapeSchema& shape_schema, Shape* shape_out) {
  return SimplifyRuleAtomImpl(atom, subst, shape_schema, nullptr, shape_out);
}

namespace {

Status ValidateSimplification(const Tgd& tgd, const Specialization& f) {
  if (!tgd.IsLinear()) {
    return InvalidArgumentError("simplification requires a linear TGD");
  }
  if (f.size() != tgd.num_universal() || !IsValidSpecialization(f)) {
    return InvalidArgumentError("invalid specialization for this TGD");
  }
  return OkStatus();
}

// The distinct body variables of a normalized linear TGD are exactly the
// universal variables 0..num_universal-1, in first-occurrence order, so the
// specialization applies to variable ids directly. Existential variables
// are untouched.
std::vector<VarId> SubstOf(const Tgd& tgd, const Specialization& f) {
  std::vector<VarId> subst(tgd.num_vars());
  for (VarId var = 0; var < tgd.num_vars(); ++var) {
    subst[var] = tgd.IsUniversal(var) ? f[var] : var;
  }
  return subst;
}

// The one simplification path behind both SimplifyTgd overloads.
// `precomputed_heads`, when non-null, points at head().size() shapes
// interned in place of re-deriving each head atom's canonicalization;
// `head_shapes_out` collects the derived shapes for callers that want
// them (only meaningful when deriving, i.e. precomputed_heads == null).
StatusOr<Tgd> SimplifyTgdImpl(const Tgd& tgd, const Specialization& f,
                              ShapeSchema& shape_schema,
                              const Shape* precomputed_heads,
                              std::vector<Shape>* head_shapes_out) {
  CHASE_RETURN_IF_ERROR(ValidateSimplification(tgd, f));
  const std::vector<VarId> subst = SubstOf(tgd, f);
  std::vector<RuleAtom> body = {
      SimplifyRuleAtom(tgd.body()[0], subst, shape_schema, nullptr)};
  std::vector<RuleAtom> head;
  head.reserve(tgd.head().size());
  for (size_t i = 0; i < tgd.head().size(); ++i) {
    Shape shape;
    head.push_back(SimplifyRuleAtomImpl(
        tgd.head()[i], subst, shape_schema,
        precomputed_heads != nullptr ? &precomputed_heads[i] : nullptr,
        head_shapes_out != nullptr ? &shape : nullptr));
    if (head_shapes_out != nullptr) {
      head_shapes_out->push_back(std::move(shape));
    }
  }
  return Tgd::Create(std::move(body), std::move(head));
}

}  // namespace

StatusOr<Tgd> SimplifyTgd(const Tgd& tgd, const Specialization& f,
                          ShapeSchema& shape_schema,
                          std::vector<Shape>* head_shapes) {
  return SimplifyTgdImpl(tgd, f, shape_schema, nullptr, head_shapes);
}

StatusOr<Tgd> SimplifyTgd(const Tgd& tgd, const Specialization& f,
                          ShapeSchema& shape_schema,
                          std::span<const Shape> head_shapes) {
  if (head_shapes.size() != tgd.head().size()) {
    return InvalidArgumentError(
        "precomputed head shapes do not match the TGD's head");
  }
  return SimplifyTgdImpl(tgd, f, shape_schema, head_shapes.data(), nullptr);
}

StatusOr<StaticSimplificationResult> StaticSimplification(
    const Schema& schema, const std::vector<Tgd>& tgds, uint64_t max_output) {
  if (!AllLinear(tgds)) {
    return InvalidArgumentError(
        "static simplification requires linear TGDs");
  }
  StaticSimplificationResult result;
  result.shape_schema = std::make_unique<ShapeSchema>(&schema);
  for (const Tgd& tgd : tgds) {
    for (const Specialization& f :
         EnumerateSpecializations(tgd.num_universal())) {
      if (result.tgds.size() >= max_output) {
        return ResourceExhaustedError(
            "static simplification exceeded the output cap of " +
            std::to_string(max_output) + " TGDs");
      }
      CHASE_ASSIGN_OR_RETURN(
          Tgd simplified,
          SimplifyTgd(tgd, f, *result.shape_schema, nullptr));
      result.tgds.push_back(std::move(simplified));
    }
  }
  return result;
}

uint64_t StaticSimplificationSize(const std::vector<Tgd>& tgds) {
  uint64_t total = 0;
  for (const Tgd& tgd : tgds) {
    const uint64_t count = BellNumber(tgd.num_universal());
    total = total > UINT64_MAX - count ? UINT64_MAX : total + count;
  }
  return total;
}

std::unique_ptr<Database> SimplifyDatabase(const Database& database,
                                           ShapeSchema& shape_schema) {
  auto simplified = std::make_unique<Database>(&shape_schema.schema());
  std::vector<uint32_t> buffer;
  for (PredId pred : database.NonEmptyPredicates()) {
    const size_t rows = database.NumTuples(pred);
    for (size_t row = 0; row < rows; ++row) {
      auto tuple = database.Tuple(pred, row);
      Shape shape = ShapeOfTuple(pred, tuple);
      const PredId simplified_pred = shape_schema.Intern(shape);
      std::vector<uint32_t> unique =
          UniqueOf(std::span<const uint32_t>(tuple));
      buffer.clear();
      for (uint32_t constant : unique) {
        buffer.push_back(
            simplified->InternConstant(database.ConstantName(constant)));
      }
      // Arity matches NumDistinct by construction, so AddFact cannot fail.
      (void)simplified->AddFact(simplified_pred, buffer);
    }
  }
  return simplified;
}

}  // namespace chase
