// Simplification of linear TGDs into simple-linear TGDs (Definition 3.5).
//
// The simplification of an atom R(t̄) is R_{id(t̄)}(unique(t̄)): the
// repetition pattern of t̄ moves into the predicate name and the arguments
// become distinct. ShapeSchema interns the shape predicates R_{id(t̄)} into a
// fresh schema; StaticSimplification computes simple(Σ) by enumerating every
// specialization of every rule's body variables (exponential in arity — see
// dynamic_simplification.h for the database-aware alternative), and
// SimplifyDatabase computes simple(D).

#ifndef CHASE_CORE_SIMPLIFICATION_H_
#define CHASE_CORE_SIMPLIFICATION_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "core/specialization.h"
#include "logic/atom.h"
#include "logic/database.h"
#include "logic/schema.h"
#include "logic/shape.h"
#include "logic/tgd.h"

namespace chase {

// Interns shapes over a base schema as predicates of a simplified schema.
// The simplified predicate of shape R_{id} has arity |unique(id)|.
class ShapeSchema {
 public:
  explicit ShapeSchema(const Schema* base) : base_(base) {}

  // Not copyable/movable: Database objects hold pointers to schema().
  ShapeSchema(const ShapeSchema&) = delete;
  ShapeSchema& operator=(const ShapeSchema&) = delete;

  const Schema& base() const { return *base_; }
  const Schema& schema() const { return schema_; }

  // Returns the simplified predicate for `shape`, interning it on first use.
  PredId Intern(const Shape& shape);

  // The shape a simplified predicate came from.
  const Shape& ShapeOf(PredId simplified_pred) const {
    return shapes_[simplified_pred];
  }

  size_t NumShapes() const { return shapes_.size(); }

 private:
  const Schema* base_;
  Schema schema_;
  std::vector<Shape> shapes_;  // indexed by simplified PredId
  std::unordered_map<Shape, PredId, ShapeHash> index_;
};

// simple(α) for a rule atom under a variable substitution: `subst[v]` is the
// image of variable v (identity for variables untouched by the
// specialization, e.g. existentials). Returns the simplified atom over
// `shape_schema` and, if `shape_out` is non-null, the base-schema shape of
// the substituted atom.
RuleAtom SimplifyRuleAtom(const RuleAtom& atom,
                          const std::vector<VarId>& subst,
                          ShapeSchema& shape_schema, Shape* shape_out);

// The simplification of one linear TGD induced by a specialization `f` of
// its distinct body variables (Definition 3.5). `head_shapes`, if non-null,
// receives the base-schema shapes of the simplified head atoms (used by
// dynamic simplification to derive new shapes).
[[nodiscard]] StatusOr<Tgd> SimplifyTgd(const Tgd& tgd, const Specialization& f,
                          ShapeSchema& shape_schema,
                          std::vector<Shape>* head_shapes);

// As above, but with the base-schema head shapes under `f` supplied instead
// of recomputed: `head_shapes[i]` must be exactly the shape SimplifyRuleAtom
// would derive for head atom i (the dynamic-simplification worklist already
// computes them on its parallel discovery pass to find successor shapes, so
// the absorb path interns them directly instead of re-deriving each one).
// Only the size is validated; the shapes' correctness is the caller's
// contract, pinned by the parallel-vs-serial differential harness.
[[nodiscard]] StatusOr<Tgd> SimplifyTgd(const Tgd& tgd, const Specialization& f,
                          ShapeSchema& shape_schema,
                          std::span<const Shape> head_shapes);

struct StaticSimplificationResult {
  std::unique_ptr<ShapeSchema> shape_schema;
  std::vector<Tgd> tgds;  // simple(Σ), over shape_schema->schema()
};

// Computes simple(Σ). Fails if some TGD is not linear, or if the number of
// generated TGDs would exceed `max_output` (static simplification is
// exponential in arity; the cap keeps the ablation benches bounded).
[[nodiscard]] StatusOr<StaticSimplificationResult> StaticSimplification(
    const Schema& schema, const std::vector<Tgd>& tgds,
    uint64_t max_output = UINT64_MAX);

// |simple(Σ)| without materializing it: sum over rules of Bell(#distinct
// body variables). Saturates at uint64 max.
uint64_t StaticSimplificationSize(const std::vector<Tgd>& tgds);

// simple(D): one fact R_{id(c̄)}(unique(c̄)) per fact R(c̄) of D. The result
// references shape_schema->schema(), which must outlive it.
std::unique_ptr<Database> SimplifyDatabase(const Database& database,
                                           ShapeSchema& shape_schema);

}  // namespace chase

#endif  // CHASE_CORE_SIMPLIFICATION_H_
