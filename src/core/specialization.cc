#include "core/specialization.h"

namespace chase {

bool IsValidSpecialization(const Specialization& f) {
  for (uint32_t i = 0; i < f.size(); ++i) {
    if (f[i] > i) return false;
    if (f[f[i]] != f[i]) return false;
  }
  return true;
}

std::vector<Specialization> EnumerateSpecializations(uint32_t k) {
  std::vector<Specialization> out;
  if (k == 0) {
    out.push_back({});
    return out;
  }
  Specialization prefix;
  prefix.reserve(k);
  auto recurse = [&](auto&& self) -> void {
    if (prefix.size() == k) {
      out.push_back(prefix);
      return;
    }
    const auto i = static_cast<uint32_t>(prefix.size());
    // xi maps to an earlier representative or to itself.
    for (uint32_t rep = 0; rep <= i; ++rep) {
      if (rep < i && prefix[rep] != rep) continue;  // not a representative
      prefix.push_back(rep);
      self(self);
      prefix.pop_back();
    }
  };
  recurse(recurse);
  return out;
}

Specialization SpecializationFromIdValues(
    const std::vector<uint8_t>& var_id_values) {
  const auto k = static_cast<uint32_t>(var_id_values.size());
  Specialization f(k);
  // first_with_value[v] = earliest variable whose id value is v.
  uint32_t first_with_value[256];
  for (uint32_t i = 0; i < k; ++i) first_with_value[var_id_values[i]] = k;
  for (uint32_t i = 0; i < k; ++i) {
    uint32_t& first = first_with_value[var_id_values[i]];
    if (first == k) first = i;
    f[i] = first;
  }
  return f;
}

}  // namespace chase
