// Specializations of variable tuples (Section 3).
//
// For a tuple of distinct variables (x1, ..., xk), a specialization f maps
// each xi either to itself or to the image of an earlier variable, with
// f(x1) = x1. Specializations are in bijection with the set partitions of
// {x1, ..., xk} (each block represented by its smallest-index member), so an
// arity-k atom has Bell(k) specializations — the source of the exponential
// blow-up of static simplification that dynamic simplification avoids.
//
// Representation: a vector f of length k with f[i] <= i, f[f[i]] == f[i];
// f[i] is the representative (first-occurrence index) of xi's block.

#ifndef CHASE_CORE_SPECIALIZATION_H_
#define CHASE_CORE_SPECIALIZATION_H_

#include <cstdint>
#include <vector>

#include "logic/shape.h"

namespace chase {

using Specialization = std::vector<uint32_t>;

// Checks the representation invariants above.
bool IsValidSpecialization(const Specialization& f);

// All specializations of a k-variable tuple (Bell(k) of them),
// lexicographically ordered.
std::vector<Specialization> EnumerateSpecializations(uint32_t k);

// The h-specialization induced by a homomorphism from a body atom to a shape
// atom (Section 4.2): variables are grouped by the id value of their
// positions, with the earliest variable of each group as representative.
// `var_id_values[i]` is the id value assigned to the i-th distinct body
// variable. The result maps distinct-variable indices to distinct-variable
// indices.
Specialization SpecializationFromIdValues(
    const std::vector<uint8_t>& var_id_values);

}  // namespace chase

#endif  // CHASE_CORE_SPECIALIZATION_H_
