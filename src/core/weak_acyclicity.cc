#include "core/weak_acyclicity.h"

#include "graph/dependency_graph.h"
#include "graph/reachability.h"
#include "graph/tarjan.h"
#include "logic/database.h"
#include "logic/schema.h"
#include "logic/tgd.h"
#include "storage/catalog.h"

namespace chase {

bool IsWeaklyAcyclic(const DependencyGraph& graph) {
  return FindSpecialSccs(graph.graph()).empty();
}

bool IsWeaklyAcyclic(const Schema& schema, const std::vector<Tgd>& tgds) {
  return IsWeaklyAcyclic(BuildDependencyGraph(schema, tgds));
}

bool Supports(const storage::Catalog& catalog, const DependencyGraph& graph,
              std::span<const uint32_t> seeds) {
  if (seeds.empty()) return false;
  // Step (1): the extensional predicates, from catalog metadata only.
  std::vector<bool> extensional(graph.schema().NumPredicates(), false);
  for (PredId pred : catalog.ListNonEmptyRelations()) {
    if (pred < extensional.size()) extensional[pred] = true;
  }
  // Step (2): reverse traversal from the seeds; supported iff it reaches a
  // position of an extensional predicate. (The seeds themselves are included,
  // covering the R == P base case of predicate reachability.)
  std::vector<bool> reached = ReverseReachable(graph.graph(), seeds);
  for (uint32_t node = 0; node < graph.num_nodes(); ++node) {
    if (reached[node] && extensional[graph.PositionOf(node).pred]) {
      return true;
    }
  }
  return false;
}

bool IsWeaklyAcyclicWrt(const Database& database,
                        const std::vector<Tgd>& tgds) {
  const DependencyGraph graph =
      BuildDependencyGraph(database.schema(), tgds);
  const SpecialSccs special = FindSpecialSccs(graph.graph());
  if (special.empty()) return true;
  storage::Catalog catalog(&database);
  return !Supports(catalog, graph, special.representatives);
}

}  // namespace chase
