// Weak-acyclicity and non-uniform (database-dependent) weak-acyclicity
// (Definition 3.2), plus the Supports procedure of Section 5.3.

#ifndef CHASE_CORE_WEAK_ACYCLICITY_H_
#define CHASE_CORE_WEAK_ACYCLICITY_H_

#include <span>
#include <vector>

#include "graph/dependency_graph.h"
#include "logic/database.h"
#include "logic/schema.h"
#include "logic/tgd.h"
#include "storage/catalog.h"

namespace chase {

// Σ is weakly acyclic iff dg(Σ) has no cycle with a special edge, iff no SCC
// of dg(Σ) contains a special edge.
bool IsWeaklyAcyclic(const DependencyGraph& graph);
bool IsWeaklyAcyclic(const Schema& schema, const std::vector<Tgd>& tgds);

// Supports(D, P, G) (Section 5.3): true iff some node of `seeds` is
// reachable in `graph` from a position of a predicate with at least one
// tuple in the catalog's database. Step (1) queries the catalog for the
// non-empty relations; step (2) walks the graph in reverse from the seeds.
bool Supports(const storage::Catalog& catalog, const DependencyGraph& graph,
              std::span<const uint32_t> seeds);

// Σ is D-weakly-acyclic iff dg(Σ) has no D-supported cycle with a special
// edge. The TGDs must be over database.schema().
bool IsWeaklyAcyclicWrt(const Database& database,
                        const std::vector<Tgd>& tgds);

}  // namespace chase

#endif  // CHASE_CORE_WEAK_ACYCLICITY_H_
