#include "exec/frontier_pool.h"

#include <chrono>

#include "base/sync.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace chase {
namespace {

// True once per phase measurement: both sinks off means no clock read at
// all on the barrier/chunk paths.
bool PoolObserved() {
  return obs::MetricsRegistry::enabled() || obs::TraceRecorder::enabled();
}

// Records one finished pool phase ("barrier_wait" or "chunks") of
// `duration` for `worker`: an aggregate counter (<counter_name> in
// microseconds) plus a per-worker trace span, each behind its own gate.
// The trace timestamp is back-dated from now by the duration so the span
// lands where the phase ran.
void RecordPoolPhase(const char* name, const char* counter_name,
                     unsigned worker,
                     std::chrono::steady_clock::time_point begin) {
  const auto now = std::chrono::steady_clock::now();
  if (obs::MetricsRegistry::enabled()) {
    const int64_t us =
        std::chrono::duration_cast<std::chrono::microseconds>(now - begin)
            .count();
    obs::MetricsRegistry::Get().GetCounter(counter_name)->Add(
        static_cast<uint64_t>(us));
  }
  if (obs::TraceRecorder::enabled()) {
    obs::TraceRecorder& recorder = obs::TraceRecorder::Get();
    obs::TraceEvent event;
    event.name = name;
    event.cat = "pool";
    // Both endpoints through the session clock (see ToUs): a re-read
    // "now minus duration" back-dating drifts a few microseconds and
    // partially overlaps the neighboring phase's span.
    event.ts_us = recorder.ToUs(begin);
    event.dur_us = recorder.ToUs(now) - event.ts_us;
    event.arg0_name = "worker";
    event.arg0 = worker;
    recorder.Emit(event);
  }
}

}  // namespace

WorkerPool::WorkerPool(unsigned threads) : threads_(std::max(1u, threads)) {
  workers_.reserve(threads_ - 1);
  for (unsigned t = 1; t < threads_; ++t) {
    workers_.emplace_back(&WorkerPool::Loop, this, t);
  }
}

WorkerPool::~WorkerPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  start_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void WorkerPool::RunChunks(unsigned worker) {
  // Chunks of roughly equal size, a few per thread, dealt dynamically: a
  // worker stuck on one expensive index only holds back its chunk, and the
  // tail of the index space still spreads across the pool. Once the abort
  // flag trips, no further chunk is claimed pool-wide.
  while (abort_ == nullptr || !abort_->load(std::memory_order_acquire)) {
    const size_t first = next_.fetch_add(chunk_, std::memory_order_relaxed);
    if (first >= n_) break;
    const size_t last = std::min(n_, first + chunk_);
    for (size_t index = first; index < last; ++index) {
      (*work_)(worker, index);
    }
  }
}

void WorkerPool::ParallelFor(
    size_t n, const std::function<void(unsigned worker, size_t index)>& work,
    const std::atomic<bool>* abort) {
  if (n == 0) return;
  if (threads_ == 1 || n == 1) {
    for (size_t index = 0; index < n; ++index) {
      if (abort != nullptr && abort->load(std::memory_order_acquire)) return;
      work(0, index);
    }
    return;
  }
  {
    MutexLock lock(mu_);
    n_ = n;
    chunk_ = FrontierChunkSize(n, threads_);
    work_ = &work;
    abort_ = abort;
    next_.store(0, std::memory_order_relaxed);
    running_ = threads_ - 1;
    ++epoch_;  // the reusable barrier: workers wake on the advance
  }
  start_cv_.NotifyAll();
  const bool observed = PoolObserved();
  const auto busy_begin = observed ? std::chrono::steady_clock::now()
                                   : std::chrono::steady_clock::time_point{};
  RunChunks(0);  // the calling thread is worker 0
  if (observed) {
    RecordPoolPhase("chunks", "pool.busy_us", 0, busy_begin);
    if (obs::MetricsRegistry::enabled()) {
      obs::MetricsRegistry::Get().GetCounter("pool.epochs")->Add(1);
    }
  }
  const auto wait_begin = observed ? std::chrono::steady_clock::now()
                                   : std::chrono::steady_clock::time_point{};
  {
    MutexLock lock(mu_);
    while (running_ != 0) done_cv_.Wait(mu_);
    work_ = nullptr;
    abort_ = nullptr;
  }
  // Worker 0's time blocked on the stragglers is barrier wait like any
  // other worker's. Recorded outside mu_ so the obs latches never nest
  // inside the pool's.
  if (observed) {
    RecordPoolPhase("barrier_wait", "pool.barrier_wait_us", 0, wait_begin);
  }
}

void WorkerPool::RunBudgetedTasks(
    size_t num_tasks,
    const std::function<bool(unsigned worker, size_t task)>& resume,
    const std::function<bool(size_t task)>& drain,
    const std::function<void(size_t first, size_t count)>& epoch_end) {
  std::vector<char> exhausted(num_tasks, 0);
  size_t drained = 0;  // tasks fully consumed and exhausted
  uint64_t wave = 0;   // epoch ordinal, for the trace only
  while (drained < num_tasks) {
    const size_t count =
        std::min<size_t>(threads_, num_tasks - drained);
    // One wave = one enumerate→pause→apply epoch of the budgeted protocol.
    obs::TraceSpan wave_span("pool", "wave", "wave",
                             static_cast<int64_t>(wave++), "window",
                             static_cast<int64_t>(count));
    // Parallel epoch over the window of the first `count` undrained
    // tasks. Already-exhausted tasks (kept in the window because an
    // earlier task still has work) are skipped; their buffers wait.
    ParallelFor(count, [&](unsigned worker, size_t i) {
      const size_t task = drained + i;
      if (exhausted[task] == 0 && resume(worker, task)) exhausted[task] = 1;
    });
    if (epoch_end != nullptr) epoch_end(drained, count);
    // Serial drain in task order. The first unexhausted task stops the
    // sweep — later tasks keep their buffers (each at most one budget)
    // until every output before theirs has been consumed.
    const size_t window_first = drained;
    for (size_t i = 0; i < count; ++i) {
      const size_t task = window_first + i;
      if (!drain(task)) return;  // global early cut
      if (exhausted[task] == 0) break;
      ++drained;
    }
  }
}

void WorkerPool::Loop(unsigned worker) {
  uint64_t seen_epoch = 0;
  mu_.Lock();
  while (true) {
    // Idle time between epochs: measured only when some sink is on, and
    // recorded after the latch drops so obs latches never nest inside mu_.
    const bool observed = PoolObserved();
    const auto wait_begin = observed
                                ? std::chrono::steady_clock::now()
                                : std::chrono::steady_clock::time_point{};
    while (!stop_ && epoch_ == seen_epoch) start_cv_.Wait(mu_);
    if (stop_) {
      mu_.Unlock();
      return;
    }
    seen_epoch = epoch_;
    mu_.Unlock();
    if (observed) {
      RecordPoolPhase("barrier_wait", "pool.barrier_wait_us", worker,
                      wait_begin);
    }
    const auto busy_begin = observed
                                ? std::chrono::steady_clock::now()
                                : std::chrono::steady_clock::time_point{};
    RunChunks(worker);
    if (observed) {
      RecordPoolPhase("chunks", "pool.busy_us", worker, busy_begin);
    }
    mu_.Lock();
    // Only the ParallelFor caller waits on done_cv_, so one wakeup is
    // enough — and only the last worker to finish issues it.
    if (--running_ == 0) done_cv_.NotifyOne();
  }
}

void FrontierParallelFor(
    size_t n, unsigned threads,
    const std::function<void(unsigned worker, size_t index)>& work) {
  if (threads <= 1 || n <= 1) {
    for (size_t index = 0; index < n; ++index) work(0, index);
    return;
  }
  WorkerPool pool(threads);
  pool.ParallelFor(n, work);
}

}  // namespace chase
