// A depth-synchronous parallel frontier-expansion engine.
//
// Several of the Section 5.4 algorithms share one control shape: a frontier
// of independent items is expanded, expansion discovers successor items,
// successors that were never seen before form the next frontier, repeat
// until the frontier drains. The Apriori walk of the shape lattice (items =
// candidate shapes, successors = coarser shapes) and the dynamic-
// simplification worklist (items = derived shapes, successors = head
// shapes) are both instances; the chase itself is one too (rounds =
// depths), and borrows the worker pool below for per-round trigger
// enumeration.
//
// Items at the same depth are independent by construction, so the engine
// expands each depth in parallel and barriers between depths:
//
//  * the workers are spawned ONCE — by the WorkerPool below — and reused
//    across depths through a generation-counted condvar barrier, so a
//    workload of many shallow depths (dynamic simplification, per-round
//    chase trigger enumeration) pays a wakeup per depth, not a thread
//    spawn+join per depth;
//  * each depth's frontier is split into chunks dealt dynamically to the
//    pool (the same range-partitioned chunking discipline as
//    storage::ParallelTupleScan), so one expensive item cannot pin the
//    whole depth on a single worker;
//  * discovered successors pass through a shared seen-set under striped
//    latches — the first discoverer admits an item, every later discovery
//    is dropped — and per-worker fresh-item lists are merged and sorted
//    after the barrier, so the next frontier is canonical (duplicate-free,
//    ascending) regardless of thread count or scheduling;
//  * per-item outputs are written into a per-depth slot vector and handed
//    to a serial `absorb` callback in frontier order, so anything the
//    caller accumulates (emitted TGDs, interned predicates) is ordered
//    identically to a single-threaded run. Consumers whose absorption is
//    associative and commutative (set inserts) can instead opt into a
//    parallel absorb that runs per-chunk on the same pool — see
//    RunParallelAbsorb.
//
// The net contract: Run with N threads produces bit-identical results to
// Run with 1 thread (which executes inline on the calling thread, with no
// pool and no latching). tests/frontier_equivalence_test.cc holds the
// consumers to it; tests/frontier_pool_test.cc stresses the engine itself
// under ThreadSanitizer.

#ifndef CHASE_EXEC_FRONTIER_POOL_H_
#define CHASE_EXEC_FRONTIER_POOL_H_

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <thread>
#include <unordered_set>
#include <vector>

#include "base/hash.h"
#include "base/padded.h"
#include "base/status.h"
#include "base/sync.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace chase {

// The one chunk-size heuristic behind every dealing site: roughly a few
// chunks per thread, so dynamically dealt chunks still balance uneven
// per-index cost. This is also the deterministic-boundary rule the
// parallel-absorb contract documents (chunk boundaries depend only on the
// index-space size and the thread count) — keep every copy of the formula
// here so the sites cannot drift apart.
inline size_t FrontierChunkSize(size_t n, unsigned threads) {
  return std::max<size_t>(1, n / (4 * std::max(1u, threads)));
}

// A persistent pool of worker threads with a reusable start/finish barrier.
// Construction spawns threads-1 workers (the thread calling ParallelFor
// always participates as worker 0); every ParallelFor reuses them, so a
// caller that loops — depths of a frontier walk, rounds of the chase —
// pays one condvar round-trip per iteration instead of a thread spawn and
// join. The barrier is a generation counter: workers sleep until the
// epoch advances, run the dealt chunks of that epoch, and report back;
// ParallelFor returns once every worker has reported, so task state can be
// reused for the next epoch without further synchronization.
class WorkerPool {
 public:
  // threads <= 1 spawns no workers; ParallelFor then runs inline.
  explicit WorkerPool(unsigned threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  unsigned threads() const { return threads_; }

  // Runs work(worker, index) for every index in [0, n), partitioning the
  // index space into chunks of roughly equal size (a few per thread) dealt
  // dynamically, so uneven per-index cost still balances. Blocks until all
  // dealt indices ran. Within one worker, indices ascend per chunk; across
  // workers, any interleaving — callers must write only to index-private
  // or worker-private state, or synchronize. Not reentrant: one
  // ParallelFor at a time per pool.
  //
  // If `abort` is non-null, no further chunk is claimed once it reads
  // true; indices of already-claimed chunks still run, so `work` must
  // check the flag itself where per-index stop matters.
  //
  // Chunks are claimed in ascending index order (a single fetch_add
  // counter), so the index space drains front-to-back — a guarantee the
  // budgeted driver below and the chase's sliding window both lean on.
  void ParallelFor(size_t n,
                   const std::function<void(unsigned worker, size_t index)>& work,
                   const std::atomic<bool>* abort = nullptr);

  // The budgeted enumerate→pause→apply→resume driver: runs `num_tasks`
  // producer tasks whose outputs must be consumed serially in task order,
  // but whose production may be paused (bounded buffers) and resumed
  // (persistent cursors). Repeats epochs until every task is drained:
  //
  //  * parallel epoch: `resume(worker, task)` runs on the pool for the
  //    window of the first min(threads(), remaining) undrained tasks. A
  //    task fills its bounded buffer and pauses — resume returns false —
  //    or exhausts its work and returns true. A task whose buffer is
  //    already full must return false without producing (that keeps every
  //    per-task buffer bounded by one budget even though windows overlap
  //    across epochs).
  //  * `epoch_end(first, count)`, if provided, runs serially right after
  //    the epoch's barrier with the window bounds — the deterministic
  //    point to measure buffered totals (at most `threads()` tasks ever
  //    hold a non-empty buffer, all inside the window).
  //  * serial drain: `drain(task)` consumes task buffers in ascending
  //    task order, stopping after the first task that has not exhausted
  //    (its buffered prefix is still consumed — outputs stay in task
  //    order). Returning false stops the whole run (early cut, e.g. a
  //    result-size limit): no further resume or drain call is made.
  //
  // Progress: the window's first task always enters an epoch with a
  // freshly drained buffer, so every epoch either finishes it or consumes
  // a full budget of its output. Deterministic for deterministic
  // callbacks: which tasks resume, how far each fills, and the drain
  // sequence depend only on num_tasks, threads(), and the callbacks —
  // never on scheduling.
  void RunBudgetedTasks(
      size_t num_tasks,
      const std::function<bool(unsigned worker, size_t task)>& resume,
      const std::function<bool(size_t task)>& drain,
      const std::function<void(size_t first, size_t count)>& epoch_end =
          nullptr);

 private:
  void Loop(unsigned worker);
  // Reads the epoch's task fields (n_, chunk_, work_, abort_) without mu_:
  // they are written under mu_ before the epoch advances and read only by
  // workers that observed the new epoch under mu_, so the barrier itself
  // orders the accesses. The analysis cannot see that handoff, hence the
  // opt-out.
  void RunChunks(unsigned worker) NO_THREAD_SAFETY_ANALYSIS;

  const unsigned threads_;
  Mutex mu_;
  CondVar start_cv_;  // wakes workers on an epoch advance
  CondVar done_cv_;   // wakes ParallelFor when all report
  uint64_t epoch_ GUARDED_BY(mu_) = 0;
  // Workers still inside the current epoch.
  unsigned running_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
  // The current task. Written under mu_ before the epoch advances, read by
  // workers after they observe the new epoch under mu_ — so the reads in
  // RunChunks outside the latch are ordered by the barrier itself.
  size_t n_ GUARDED_BY(mu_) = 0;
  size_t chunk_ GUARDED_BY(mu_) = 1;
  const std::function<void(unsigned, size_t)>* work_ GUARDED_BY(mu_) =
      nullptr;
  const std::atomic<bool>* abort_ GUARDED_BY(mu_) = nullptr;
  std::atomic<size_t> next_{0};
  std::vector<std::thread> workers_;
};

// One-shot convenience: runs work(worker, index) for every index in [0, n)
// on a transient pool (threads <= 1 or a single-index space runs inline on
// the calling thread as worker 0). Spawns and joins threads per call —
// callers that loop should hold a WorkerPool instead.
void FrontierParallelFor(
    size_t n, unsigned threads,
    const std::function<void(unsigned worker, size_t index)>& work);

// Counters reported by FrontierPool::Run. worker_expanded proves how the
// frontier itself was split: with one giant work item source (e.g. a single
// high-arity predicate's lattice), multiple non-zero entries mean multiple
// workers expanded parts of it. Populated on every exit path, error
// returns included, with items_expanded always equal to the number of
// `expand` invocations that actually ran (= the sum of worker_expanded).
struct FrontierStats {
  uint64_t depths = 0;           // number of synchronized frontier waves
  uint64_t seeds_admitted = 0;   // unique seeds (duplicates are dropped)
  uint64_t items_expanded = 0;   // unique items actually expanded
  uint64_t items_discovered = 0;  // successors admitted past the seen filter
  uint64_t max_frontier = 0;     // widest single depth
  std::vector<uint64_t> worker_expanded;  // per-worker expansion counts
};

// The engine. Item must be hashable (Hash), equality-comparable (for the
// seen-set) and strict-weak ordered by operator< (for the canonical
// per-depth sort); Out must be default-constructible.
template <typename Item, typename Out, typename Hash = std::hash<Item>>
class FrontierPool {
 public:
  struct Options {
    unsigned threads = 1;       // <= 1 expands inline, no pool, no latching
    unsigned seen_stripes = 0;  // 0 = auto (scales with the thread count)
    // When non-null, depths run on this caller-owned persistent pool (its
    // thread count wins over `threads`), so several engine runs — or an
    // engine run and other parallel phases of the same algorithm — share
    // one set of workers. Otherwise Run spawns its own pool, once for the
    // whole run.
    WorkerPool* pool = nullptr;
  };

  // Successor sink handed to each expansion. Thread-confined: a worker only
  // ever touches its own fresh-item list; the shared seen-set underneath is
  // striped-latched.
  class Discoveries {
   public:
    // Admits `item` into the next frontier unless some expansion (this
    // depth or any earlier one) already discovered it.
    void Discover(Item item) {
      if (seen_->Insert(item)) fresh_->push_back(std::move(item));
    }

   private:
    friend class FrontierPool;
    class SeenSet;
    Discoveries(SeenSet* seen, std::vector<Item>* fresh)
        : seen_(seen), fresh_(fresh) {}
    SeenSet* seen_;
    std::vector<Item>* fresh_;
  };

  // Expands one item: fills `out` (absorbed after the depth barrier) and
  // reports successors through `discovered`. Runs concurrently with other
  // expansions of the same depth; `worker` in [0, threads) indexes any
  // caller-side thread-local state. A non-OK status aborts the run: no
  // further expansion starts anywhere in the pool (a shared abort flag
  // stops both chunk dealing and the per-index dispatch), the depth's
  // in-flight expansions finish, and Run returns the error without
  // absorbing the failed depth.
  using ExpandFn = std::function<Status(unsigned worker, const Item& item,
                                        Out* out, Discoveries* discovered)>;

  // Consumes one depth's outputs serially, items in canonical (ascending)
  // order. Runs on the calling thread between depth barriers.
  using AbsorbFn =
      std::function<Status(std::span<const Item> frontier,
                           std::span<Out> outs)>;

  // The opt-in parallel absorb: consumes one deterministic contiguous
  // chunk of a depth's canonical frontier. Chunk boundaries depend only on
  // the frontier size and the thread count — never on scheduling — but
  // calls run concurrently on the pool and in arbitrary chunk order, so a
  // consumer opting in guarantees its absorption is associative and
  // commutative across chunks (e.g. inserts into a set whose final
  // extraction is sorted). `worker` indexes caller-side thread-local
  // accumulators: calls for the same worker never overlap.
  using ParallelAbsorbFn =
      std::function<Status(unsigned worker, std::span<const Item> frontier,
                           std::span<Out> outs)>;

  explicit FrontierPool(Options options) : options_(options) {}

  // Expands from `seeds` (duplicates dropped, order irrelevant) until the
  // frontier drains. Deterministic: the frontier contents of every depth,
  // the absorb call sequence, and the final seen-set depend only on the
  // seeds and the expansion function, never on thread count or scheduling.
  [[nodiscard]] Status Run(std::vector<Item> seeds, const ExpandFn& expand,
             const AbsorbFn& absorb, FrontierStats* stats = nullptr) {
    return RunImpl(std::move(seeds), expand, &absorb, nullptr, stats);
  }

  // As Run, but each depth is absorbed per-chunk on the pool through
  // `absorb` (see ParallelAbsorbFn for the associativity contract the
  // caller signs up to). The expansion side — frontiers, seen-set,
  // discovery — is deterministic exactly as in Run.
  [[nodiscard]]
  Status RunParallelAbsorb(std::vector<Item> seeds, const ExpandFn& expand,
                           const ParallelAbsorbFn& absorb,
                           FrontierStats* stats = nullptr) {
    return RunImpl(std::move(seeds), expand, nullptr, &absorb, stats);
  }

 private:
  [[nodiscard]] Status RunImpl(std::vector<Item> seeds, const ExpandFn& expand,
                 const AbsorbFn* absorb, const ParallelAbsorbFn* par_absorb,
                 FrontierStats* stats) {
    WorkerPool* pool = options_.pool;
    std::optional<WorkerPool> owned_pool;
    if (pool == nullptr) {
      // The run's own persistent pool: workers spawn here, once, and every
      // depth below reuses them through the barrier.
      owned_pool.emplace(std::max(1u, options_.threads));
      pool = &*owned_pool;
    }
    const unsigned threads = std::max(1u, pool->threads());
    // Stripe counts are rounded up to a power of two: the stripe pick masks
    // the mixed hash with (stripes - 1). A serial run keeps one unlatched
    // stripe — no mutex on the hot Discover path.
    typename Discoveries::SeenSet seen(
        threads == 1 ? 1
                     : std::bit_ceil(options_.seen_stripes != 0
                                         ? options_.seen_stripes
                                         : std::max(16u, 4 * threads)),
        /*latched=*/threads > 1);

    FrontierStats local_stats;
    FrontierStats& out_stats = stats != nullptr ? *stats : local_stats;
    out_stats = FrontierStats();

    // Seed admission is serial: seed lists are small, and admission order
    // must not leak into the canonical sort's tie-free ordering anyway.
    std::vector<Item> frontier;
    frontier.reserve(seeds.size());
    for (Item& seed : seeds) {
      if (seen.Insert(seed)) frontier.push_back(std::move(seed));
    }
    std::sort(frontier.begin(), frontier.end());
    out_stats.seeds_admitted = frontier.size();

    std::vector<PaddedU64> expanded(threads);
    // The depth loop proper, wrapped so that every exit path — error or
    // drained frontier — falls through the stats finalization below.
    auto run_depths = [&]() -> Status {
      while (!frontier.empty()) {
        ++out_stats.depths;
        obs::TraceSpan depth_span(
            "frontier", "depth", "depth",
            static_cast<int64_t>(out_stats.depths - 1), "width",
            static_cast<int64_t>(frontier.size()));
        out_stats.max_frontier =
            std::max<uint64_t>(out_stats.max_frontier, frontier.size());
        std::vector<Out> outs(frontier.size());
        std::vector<std::vector<Item>> fresh(threads);
        std::vector<Status> worker_status(threads);
        // The shared abort: the first failing expansion trips it, chunk
        // dealing stops pool-wide, and workers skip every index they had
        // already been dealt — a failed depth drains promptly instead of
        // expanding to the end on the healthy workers.
        std::atomic<bool> abort{false};
        pool->ParallelFor(
            frontier.size(),
            [&](unsigned worker, size_t index) {
              if (abort.load(std::memory_order_acquire)) return;
              if (!worker_status[worker].ok()) return;
              Discoveries discovered(&seen, &fresh[worker]);
              ++expanded[worker].value;
              Status status =
                  expand(worker, frontier[index], &outs[index], &discovered);
              if (!status.ok()) {
                worker_status[worker] = std::move(status);
                abort.store(true, std::memory_order_release);
              }
            },
            &abort);
        for (Status& status : worker_status) CHASE_RETURN_IF_ERROR(status);
        CHASE_RETURN_IF_ERROR(
            Absorb(pool, threads, frontier, outs, absorb, par_absorb));

        // Barrier reached: merge the per-worker discoveries and sort them
        // into the canonical next frontier.
        size_t total = 0;
        for (const std::vector<Item>& items : fresh) total += items.size();
        std::vector<Item> next;
        next.reserve(total);
        for (std::vector<Item>& items : fresh) {
          for (Item& item : items) next.push_back(std::move(item));
        }
        std::sort(next.begin(), next.end());
        out_stats.items_discovered += next.size();
        frontier = std::move(next);
      }
      return OkStatus();
    };
    const Status status = run_depths();
    // Stats are populated on every exit path, and items_expanded counts
    // only expansions that actually ran (error-skipped items never count).
    out_stats.worker_expanded.assign(threads, 0);
    out_stats.items_expanded = 0;
    for (unsigned t = 0; t < threads; ++t) {
      out_stats.worker_expanded[t] = expanded[t].value;
      out_stats.items_expanded += expanded[t].value;
    }
    // Mirror into the metrics registry: counters accumulate across every
    // frontier run of the session (EXISTS walks, dynamic simplification,
    // chase trigger enumeration all fold in); the gauge keeps the widest
    // frontier any run reached.
    if (obs::MetricsRegistry::enabled()) {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
      registry.GetCounter("frontier.runs")->Add(1);
      registry.GetCounter("frontier.depths")->Add(out_stats.depths);
      registry.GetCounter("frontier.seeds_admitted")
          ->Add(out_stats.seeds_admitted);
      registry.GetCounter("frontier.items_expanded")
          ->Add(out_stats.items_expanded);
      registry.GetCounter("frontier.items_discovered")
          ->Add(out_stats.items_discovered);
      registry.MaxGauge("frontier.max_frontier",
                        static_cast<double>(out_stats.max_frontier));
    }
    return status;
  }

  // One depth's absorb: serial in canonical order, or — when the consumer
  // opted in — per-chunk on the pool with deterministic chunk boundaries.
  [[nodiscard]] Status Absorb(WorkerPool* pool, unsigned threads,
                std::vector<Item>& frontier, std::vector<Out>& outs,
                const AbsorbFn* absorb, const ParallelAbsorbFn* par_absorb) {
    if (absorb != nullptr) {
      return (*absorb)(frontier, std::span<Out>(outs));
    }
    const std::span<const Item> items(frontier);
    const std::span<Out> slots(outs);
    const size_t chunk = FrontierChunkSize(frontier.size(), threads);
    const size_t num_chunks = (frontier.size() + chunk - 1) / chunk;
    std::vector<Status> worker_status(threads);
    std::atomic<bool> abort{false};
    pool->ParallelFor(
        num_chunks,
        [&](unsigned worker, size_t c) {
          if (abort.load(std::memory_order_acquire)) return;
          if (!worker_status[worker].ok()) return;
          const size_t first = c * chunk;
          const size_t count = std::min(chunk, frontier.size() - first);
          Status status = (*par_absorb)(worker, items.subspan(first, count),
                                        slots.subspan(first, count));
          if (!status.ok()) {
            worker_status[worker] = std::move(status);
            abort.store(true, std::memory_order_release);
          }
        },
        &abort);
    for (Status& status : worker_status) CHASE_RETURN_IF_ERROR(status);
    return OkStatus();
  }

  Options options_;
};

// The shared seen structure: one hash set per stripe, each under its own
// reader-writer latch, stripe chosen by the decorrelated high bits of the
// item hash. Insert is the only mutation — membership never shrinks — so
// the first inserter of an item owns its admission and everyone else
// observes a duplicate, whatever the interleaving; duplicates resolve on
// the latch's shared side without blocking each other. A single-threaded
// run constructs it unlatched: a plain hash-set insert, no lock
// acquisition at all.
template <typename Item, typename Out, typename Hash>
class FrontierPool<Item, Out, Hash>::Discoveries::SeenSet {
 public:
  SeenSet(unsigned stripes, bool latched)
      : stripes_(stripes), latched_(latched) {}

  bool Insert(const Item& item) {
    Stripe& stripe =
        stripes_[FibonacciMix(Hash{}(item)) & (stripes_.size() - 1)];
    if (!latched_) return InsertSingleThreaded(stripe, item);
    // Duplicate fast path: once the frontier saturates, most probes hit an
    // item already admitted, and membership never shrinks — so a positive
    // probe under the shared (reader) side of the stripe latch is
    // conclusive and concurrent duplicates don't serialize on the writer
    // lock. A negative probe is only advisory (another thread may insert
    // between the locks); the exclusive insert below re-checks, so the
    // first-inserter-owns-admission property is untouched.
    {
      SharedReaderLock lock(stripe.mu);
      if (ContainsLocked(stripe, item)) return false;
    }
    SharedMutexLock lock(stripe.mu);
    return stripe.set.insert(item).second;
  }

 private:
  struct Stripe {
    SharedMutex mu;
    std::unordered_set<Item, Hash> set GUARDED_BY(mu);
  };

  // Reader-side membership probe: callers hold the stripe latch at least
  // shared, which admits the read of the guarded set but still rejects
  // any mutation under the analysis.
  static bool ContainsLocked(const Stripe& stripe, const Item& item)
      REQUIRES_SHARED(stripe.mu) {
    return stripe.set.count(item) != 0;
  }

  // The documented single-threaded mode: a serial run constructs the set
  // unlatched and thread confinement stands in for the stripe latch.
  static bool InsertSingleThreaded(Stripe& stripe, const Item& item)
      NO_THREAD_SAFETY_ANALYSIS {
    return stripe.set.insert(item).second;
  }

  // Constructed once at full size (power of two); never resized, so the
  // immovable mutexes stay put.
  std::vector<Stripe> stripes_;
  bool latched_;
};

}  // namespace chase

#endif  // CHASE_EXEC_FRONTIER_POOL_H_
