#include "gen/data_generator.h"

#include "base/rng.h"
#include "base/status.h"
#include "logic/database.h"
#include "logic/schema.h"

#include <algorithm>

namespace chase {

StatusOr<std::vector<PredId>> DeclarePredicates(Schema* schema,
                                                std::string_view prefix,
                                                uint32_t count,
                                                uint32_t min_arity,
                                                uint32_t max_arity, Rng* rng) {
  if (min_arity == 0 || min_arity > max_arity) {
    return InvalidArgumentError("invalid arity range");
  }
  std::vector<PredId> preds;
  preds.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const auto arity =
        static_cast<uint32_t>(rng->Range(min_arity, max_arity));
    std::string name(prefix);
    name += std::to_string(i);
    CHASE_ASSIGN_OR_RETURN(PredId pred, schema->AddPredicate(name, arity));
    preds.push_back(pred);
  }
  return preds;
}

void GenerateShapedTuple(uint32_t arity, uint64_t dsize, Rng* rng,
                         std::vector<uint32_t>* tuple) {
  // Draw a random restricted-growth string: position i picks uniformly among
  // the existing blocks plus one fresh block.
  uint8_t id[64];
  uint8_t max_block = 0;
  for (uint32_t i = 0; i < arity; ++i) {
    const auto value = static_cast<uint8_t>(rng->Range(1, max_block + 1));
    id[i] = value;
    max_block = std::max(max_block, value);
  }
  // Fill blocks with distinct domain values (rejection sampling; the domain
  // is much larger than the arity in every configuration we generate).
  uint32_t block_value[64];
  for (uint8_t block = 1; block <= max_block; ++block) {
    while (true) {
      const auto candidate = static_cast<uint32_t>(rng->Below(dsize));
      bool duplicate = false;
      for (uint8_t prior = 1; prior < block; ++prior) {
        if (block_value[prior] == candidate) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) {
        block_value[block] = candidate;
        break;
      }
    }
  }
  tuple->resize(arity);
  for (uint32_t i = 0; i < arity; ++i) (*tuple)[i] = block_value[id[i]];
}

Status PopulateRelations(Database* database, std::span<const PredId> preds,
                         uint64_t dsize, uint64_t rsize, Rng* rng) {
  if (dsize < 64) {
    return InvalidArgumentError("domain size must be at least 64");
  }
  database->EnsureAnonymousDomain(dsize);
  std::vector<uint32_t> tuple;
  for (PredId pred : preds) {
    const uint32_t arity = database->schema().Arity(pred);
    for (uint64_t row = 0; row < rsize; ++row) {
      GenerateShapedTuple(arity, dsize, rng, &tuple);
      CHASE_RETURN_IF_ERROR(database->AddFact(pred, tuple));
    }
  }
  return OkStatus();
}

StatusOr<GeneratedData> GenerateData(const DataGenParams& params) {
  Rng rng(params.seed);
  GeneratedData data;
  data.schema = std::make_unique<Schema>();
  CHASE_ASSIGN_OR_RETURN(
      std::vector<PredId> preds,
      DeclarePredicates(data.schema.get(), params.pred_prefix, params.preds,
                        params.min_arity, params.max_arity, &rng));
  data.database = std::make_unique<Database>(data.schema.get());
  CHASE_RETURN_IF_ERROR(PopulateRelations(data.database.get(), preds,
                                          params.dsize, params.rsize, &rng));
  return data;
}

}  // namespace chase
