// The paper's data generator (Section 6.1).
//
// Existing generators (TPC-H, DataFiller) cannot control the *shapes* of the
// generated atoms, which is exactly what the dynamic-simplification
// experiments need. This generator takes (preds, min, max, dsize, rsize) and
// produces a database with `preds` predicates of arity in [min, max], a
// domain of `dsize` constants, and `rsize` tuples per relation, where each
// tuple is built by first drawing a random shape and then filling the shape's
// blocks with distinct random domain values — so every relation exhibits a
// controlled variety of shapes.

#ifndef CHASE_GEN_DATA_GENERATOR_H_
#define CHASE_GEN_DATA_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <string>

#include "base/rng.h"
#include "base/status.h"
#include "logic/database.h"
#include "logic/schema.h"

namespace chase {

struct DataGenParams {
  uint32_t preds = 10;      // number of predicates
  uint32_t min_arity = 1;   // inclusive
  uint32_t max_arity = 5;   // inclusive
  uint64_t dsize = 1000;    // |dom(D)|
  uint64_t rsize = 100;     // tuples per relation
  std::string pred_prefix = "p";
  uint64_t seed = 1;
};

struct GeneratedData {
  std::unique_ptr<Schema> schema;
  std::unique_ptr<Database> database;
};

// Creates a fresh schema with `params.preds` predicates (random arities in
// [min_arity, max_arity]) and a database over it.
[[nodiscard]] StatusOr<GeneratedData> GenerateData(const DataGenParams& params);

// Declares `count` predicates named "<prefix><i>" with random arities into
// `schema`; returns the new predicate ids. This is how the Section 8 setup
// builds the 1000-predicate schema shared by D* and the TGD generator.
[[nodiscard]] StatusOr<std::vector<PredId>> DeclarePredicates(Schema* schema,
                                                std::string_view prefix,
                                                uint32_t count,
                                                uint32_t min_arity,
                                                uint32_t max_arity, Rng* rng);

// Fills `rsize` shape-controlled tuples into each of `preds` (which must
// belong to database->schema()), drawing constants from an anonymous domain
// of `dsize` values.
[[nodiscard]]
Status PopulateRelations(Database* database, std::span<const PredId> preds,
                         uint64_t dsize, uint64_t rsize, Rng* rng);

// Draws one random shape id-tuple of the given arity (uniform digit choice
// over restricted-growth strings) and fills `tuple` with domain values:
// distinct blocks receive distinct constants ("without repetition").
void GenerateShapedTuple(uint32_t arity, uint64_t dsize, Rng* rng,
                         std::vector<uint32_t>* tuple);

}  // namespace chase

#endif  // CHASE_GEN_DATA_GENERATOR_H_
