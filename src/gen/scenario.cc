#include "gen/scenario.h"

#include <algorithm>

#include "base/rng.h"
#include "base/status.h"
#include "gen/data_generator.h"
#include "logic/atom.h"
#include "logic/database.h"
#include "logic/schema.h"
#include "logic/tgd.h"
#include "storage/catalog.h"
#include "storage/shape_finder.h"
#include "storage/shape_source.h"

namespace chase {
namespace {

// Adds `count` tuples to `pred`, all with pairwise-distinct values (the
// all-distinct shape), drawn from an anonymous domain of size `dsize`.
Status AddDistinctTuples(Database* db, PredId pred, uint64_t count,
                         uint64_t dsize, Rng* rng) {
  db->EnsureAnonymousDomain(dsize);
  const uint32_t arity = db->schema().Arity(pred);
  std::vector<uint32_t> tuple(arity);
  for (uint64_t row = 0; row < count; ++row) {
    for (uint32_t i = 0; i < arity; ++i) {
      while (true) {
        const auto value = static_cast<uint32_t>(rng->Below(dsize));
        bool duplicate = false;
        for (uint32_t j = 0; j < i; ++j) {
          if (tuple[j] == value) {
            duplicate = true;
            break;
          }
        }
        if (!duplicate) {
          tuple[i] = value;
          break;
        }
      }
    }
    CHASE_RETURN_IF_ERROR(db->AddFact(pred, tuple));
  }
  return OkStatus();
}

// A simple-linear rule body(x̄) -> head with each head position existential
// with `existential_percent`% probability, non-empty frontier guaranteed.
StatusOr<Tgd> MakeMappingRule(const Schema& schema, PredId body_pred,
                              PredId head_pred, uint32_t existential_percent,
                              Rng* rng) {
  const uint32_t body_arity = schema.Arity(body_pred);
  const uint32_t head_arity = schema.Arity(head_pred);
  RuleAtom body(body_pred, {});
  body.args.resize(body_arity);
  for (uint32_t i = 0; i < body_arity; ++i) body.args[i] = i;
  RuleAtom head(head_pred, {});
  head.args.resize(head_arity);
  uint32_t next_existential = body_arity;
  bool has_frontier = false;
  for (uint32_t i = 0; i < head_arity; ++i) {
    if (rng->Percent(existential_percent)) {
      head.args[i] = next_existential++;
    } else {
      head.args[i] = static_cast<VarId>(rng->Below(body_arity));
      has_frontier = true;
    }
  }
  if (!has_frontier) {
    head.args[0] = static_cast<VarId>(rng->Below(body_arity));
  }
  return Tgd::Create({std::move(body)}, {std::move(head)});
}

}  // namespace

StatusOr<Scenario> MakeDeepScenario(uint32_t rules, uint64_t seed) {
  constexpr uint32_t kPreds = 1299;
  constexpr uint32_t kArity = 4;
  constexpr uint64_t kFacts = 1000;
  constexpr uint64_t kDomain = 1000;

  Rng rng(seed);
  Scenario scenario;
  scenario.name = "Deep-" + std::to_string(rules);
  Schema* schema = scenario.program.schema.get();
  std::vector<PredId> preds;
  preds.reserve(kPreds);
  for (uint32_t i = 0; i < kPreds; ++i) {
    CHASE_ASSIGN_OR_RETURN(PredId pred,
                           schema->AddPredicate("deep" + std::to_string(i),
                                                kArity));
    preds.push_back(pred);
  }

  // Rules always point from a lower-indexed predicate to a strictly
  // higher-indexed one, so the dependency graph is a DAG and the set is
  // weakly acyclic by construction — as the paper notes for the Deep family.
  while (scenario.program.tgds.size() < rules) {
    const auto body_index = static_cast<uint32_t>(rng.Below(kPreds - 1));
    const auto head_index = static_cast<uint32_t>(
        body_index + 1 + rng.Below(kPreds - body_index - 1));
    CHASE_ASSIGN_OR_RETURN(
        Tgd tgd, MakeMappingRule(*schema, preds[body_index],
                                 preds[head_index],
                                 /*existential_percent=*/20, &rng));
    scenario.program.tgds.push_back(std::move(tgd));
  }

  // 1000 facts, one per relation, with shape-varied tuples: many singleton
  // relations, which is what makes the in-memory shape finder win here.
  Database* db = scenario.program.database.get();
  db->EnsureAnonymousDomain(kDomain);
  std::vector<uint32_t> tuple;
  for (uint64_t i = 0; i < kFacts; ++i) {
    GenerateShapedTuple(kArity, kDomain, &rng, &tuple);
    CHASE_RETURN_IF_ERROR(db->AddFact(preds[i], tuple));
  }
  return scenario;
}

StatusOr<Scenario> MakeLubmScenario(const std::string& name, uint64_t atoms,
                                    uint64_t seed) {
  constexpr uint32_t kClasses = 60;  // unary predicates
  constexpr uint32_t kRoles = 44;    // binary predicates
  constexpr uint64_t kDomainPerAtom = 1;  // adom roughly tracks atom count

  Rng rng(seed);
  Scenario scenario;
  scenario.name = name;
  Schema* schema = scenario.program.schema.get();
  std::vector<PredId> classes, roles;
  for (uint32_t i = 0; i < kClasses; ++i) {
    CHASE_ASSIGN_OR_RETURN(
        PredId pred, schema->AddPredicate("Class" + std::to_string(i), 1));
    classes.push_back(pred);
  }
  for (uint32_t i = 0; i < kRoles; ++i) {
    CHASE_ASSIGN_OR_RETURN(
        PredId pred, schema->AddPredicate("role" + std::to_string(i), 2));
    roles.push_back(pred);
  }

  auto add_rule = [&](std::vector<RuleAtom> body,
                      std::vector<RuleAtom> head) -> Status {
    CHASE_ASSIGN_OR_RETURN(Tgd tgd,
                           Tgd::Create(std::move(body), std::move(head)));
    scenario.program.tgds.push_back(std::move(tgd));
    return OkStatus();
  };

  // Class hierarchy: a tree, child implies parent (59 rules).
  for (uint32_t i = 1; i < kClasses; ++i) {
    const auto parent = static_cast<uint32_t>(rng.Below(i));
    CHASE_RETURN_IF_ERROR(add_rule({RuleAtom(classes[i], {0})},
                                   {RuleAtom(classes[parent], {0})}));
  }
  // Domain axioms for every role (44 rules), range axioms for the first 24
  // (24 rules).
  for (uint32_t i = 0; i < kRoles; ++i) {
    const auto domain = static_cast<uint32_t>(rng.Below(kClasses));
    CHASE_RETURN_IF_ERROR(add_rule({RuleAtom(roles[i], {0, 1})},
                                   {RuleAtom(classes[domain], {0})}));
    if (i < 24) {
      const auto range = static_cast<uint32_t>(rng.Below(kClasses));
      CHASE_RETURN_IF_ERROR(add_rule({RuleAtom(roles[i], {0, 1})},
                                     {RuleAtom(classes[range], {1})}));
    }
  }
  // Role hierarchy (6 rules).
  for (uint32_t i = 0; i < 6; ++i) {
    const auto sub = static_cast<uint32_t>(rng.Below(kRoles));
    const auto super = static_cast<uint32_t>(rng.Below(kRoles));
    CHASE_RETURN_IF_ERROR(add_rule({RuleAtom(roles[sub], {0, 1})},
                                   {RuleAtom(roles[super], {0, 1})}));
  }
  // Mandatory participation: C(x) -> ∃z role(x,z) (4 rules). Total:
  // 59 + 44 + 24 + 6 + 4 = 137 rules, matching Table 1.
  for (uint32_t i = 0; i < 4; ++i) {
    const auto cls = static_cast<uint32_t>(rng.Below(kClasses));
    const auto role = static_cast<uint32_t>(rng.Below(kRoles));
    CHASE_RETURN_IF_ERROR(add_rule({RuleAtom(classes[cls], {0})},
                                   {RuleAtom(roles[role], {0, 1})}));
  }

  // UBA-style data: ~25 populated relations, 30 shapes (some roles also
  // carry reflexive [1,1] tuples). Roles hold most of the data.
  Database* db = scenario.program.database.get();
  const uint64_t dsize = std::max<uint64_t>(1000, atoms * kDomainPerAtom / 4);
  db->EnsureAnonymousDomain(dsize);
  const uint64_t role_atoms = atoms * 4 / 5;
  const uint64_t class_atoms = atoms - role_atoms;
  constexpr uint32_t kPopulatedRoles = 15;
  constexpr uint32_t kPopulatedClasses = 10;
  std::vector<uint32_t> tuple(2);
  for (uint32_t i = 0; i < kPopulatedRoles; ++i) {
    const uint64_t rows = role_atoms / kPopulatedRoles;
    CHASE_RETURN_IF_ERROR(
        AddDistinctTuples(db, roles[i], rows, dsize, &rng));
    if (i < 5) {  // five roles also exhibit the reflexive shape
      tuple[0] = tuple[1] = static_cast<uint32_t>(rng.Below(dsize));
      CHASE_RETURN_IF_ERROR(db->AddFact(roles[i], tuple));
    }
  }
  std::vector<uint32_t> unary(1);
  for (uint32_t i = 0; i < kPopulatedClasses; ++i) {
    const uint64_t rows = class_atoms / kPopulatedClasses;
    for (uint64_t row = 0; row < rows; ++row) {
      unary[0] = static_cast<uint32_t>(rng.Below(dsize));
      CHASE_RETURN_IF_ERROR(db->AddFact(classes[i], unary));
    }
  }
  return scenario;
}

StatusOr<Scenario> MakeIBenchScenario(const IBenchParams& params) {
  Rng rng(params.seed);
  Scenario scenario;
  scenario.name = params.name;
  Schema* schema = scenario.program.schema.get();
  // Predicate names must survive a print → parse round trip, so characters
  // outside the identifier alphabet ("STB-128"'s dash) become underscores.
  std::string prefix = params.name;
  for (char& c : prefix) {
    const bool identifier = (c >= 'a' && c <= 'z') ||
                            (c >= 'A' && c <= 'Z') ||
                            (c >= '0' && c <= '9') || c == '_';
    if (!identifier) c = '_';
  }
  CHASE_ASSIGN_OR_RETURN(
      std::vector<PredId> preds,
      DeclarePredicates(schema, prefix + "_r", params.preds,
                        params.min_arity, params.max_arity, &rng));

  // Mapping rules: mostly forward (source index < target index, a DAG), with
  // a few back-references like real iBench scenarios' self-joins.
  while (scenario.program.tgds.size() < params.rules) {
    auto body_index = static_cast<uint32_t>(rng.Below(params.preds));
    auto head_index = static_cast<uint32_t>(rng.Below(params.preds));
    if (rng.Percent(85) && body_index > head_index) {
      std::swap(body_index, head_index);
    }
    CHASE_ASSIGN_OR_RETURN(
        Tgd tgd, MakeMappingRule(*schema, preds[body_index],
                                 preds[head_index],
                                 /*existential_percent=*/15, &rng));
    scenario.program.tgds.push_back(std::move(tgd));
  }

  // Source data: `populated_relations` relations with all-distinct tuples,
  // so n-shapes == populated_relations.
  Database* db = scenario.program.database.get();
  const uint64_t dsize = std::max<uint64_t>(1000, params.atoms / 10);
  const uint64_t rows_per_relation =
      std::max<uint64_t>(1, params.atoms / params.populated_relations);
  for (uint32_t i = 0; i < params.populated_relations; ++i) {
    CHASE_RETURN_IF_ERROR(
        AddDistinctTuples(db, preds[i], rows_per_relation, dsize, &rng));
  }
  return scenario;
}

StatusOr<Scenario> MakeStb128Scenario(double atom_scale, uint64_t seed) {
  IBenchParams params;
  params.name = "STB-128";
  params.preds = 287;
  params.min_arity = 1;
  params.max_arity = 10;
  params.rules = 231;
  params.populated_relations = 129;
  params.atoms = static_cast<uint64_t>(1'109'037 * atom_scale);
  params.seed = seed;
  return MakeIBenchScenario(params);
}

StatusOr<Scenario> MakeOnt256Scenario(double atom_scale, uint64_t seed) {
  IBenchParams params;
  params.name = "ONT-256";
  params.preds = 662;
  params.min_arity = 1;
  params.max_arity = 11;
  params.rules = 785;
  params.populated_relations = 245;
  params.atoms = static_cast<uint64_t>(2'146'490 * atom_scale);
  params.seed = seed;
  return MakeIBenchScenario(params);
}

ScenarioStats ComputeScenarioStats(const Scenario& scenario) {
  ScenarioStats stats;
  const Schema& schema = *scenario.program.schema;
  stats.n_pred = schema.NumPredicates();
  stats.min_arity = UINT32_MAX;
  for (PredId pred = 0; pred < schema.NumPredicates(); ++pred) {
    stats.min_arity = std::min(stats.min_arity, schema.Arity(pred));
    stats.max_arity = std::max(stats.max_arity, schema.Arity(pred));
  }
  if (schema.NumPredicates() == 0) stats.min_arity = 0;
  stats.n_atoms = scenario.program.database->TotalFacts();
  storage::Catalog catalog(scenario.program.database.get());
  storage::MemoryShapeSource source(&catalog);
  // The in-memory scan cannot fail.
  stats.n_shapes = storage::FindShapes(source, {}).value().size();
  stats.n_rules = scenario.program.tgds.size();
  return stats;
}

}  // namespace chase
