// Generators for the Section 9 validation scenarios. The paper uses rule
// sets and databases from the literature (Deep from "Benchmarking the
// Chase", the LUBM ontology benchmark, and two iBench scenarios); those
// artifacts are not redistributable here, so each generator synthesizes a
// family member with the same statistics as the paper's Table 1 (number of
// predicates, arity range, atom/shape/rule counts) and the same structural
// character:
//
//  * Deep-N: layered, weakly-acyclic simple-linear source-to-target chains
//    over ~1300 arity-4 predicates; 1000 facts, one per relation, with
//    varied shapes (so in-memory shape finding wins: many tiny relations).
//  * LUBM-k: a DL-Lite style university ontology — a class hierarchy plus
//    role domain/range/inclusion axioms over 104 predicates of arity <= 2
//    (137 linear rules) and UBA-style data scaled by k (so in-database shape
//    finding wins: few predicates, few shapes, many tuples).
//  * STB-128 / ONT-256: iBench-style wide-arity copy/projection mappings
//    with existentials; ~300/~660 predicates of arity up to 10/11.
//
// Sizes scale with `scale` so the default bench run stays laptop-sized;
// Table 1's paper numbers are reproduced at scale = 1 except for total atom
// counts, which scale linearly (documented in EXPERIMENTS.md).

#ifndef CHASE_GEN_SCENARIO_H_
#define CHASE_GEN_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "logic/parser.h"

namespace chase {

struct Scenario {
  std::string name;
  Program program;  // schema + database + TGDs
};

// Deep-`rules` with rules in {4241, 4541, 4841} for Deep-100/200/300.
[[nodiscard]]
StatusOr<Scenario> MakeDeepScenario(uint32_t rules, uint64_t seed);

// LUBM with approximately `atoms` facts (paper: 100K/1.3M/13M/134M for
// LUBM-1/10/100/1K).
[[nodiscard]]
StatusOr<Scenario> MakeLubmScenario(const std::string& name, uint64_t atoms,
                                    uint64_t seed);

// iBench-style scenario with the given shape statistics.
struct IBenchParams {
  std::string name;
  uint32_t preds = 287;
  uint32_t min_arity = 1;
  uint32_t max_arity = 10;
  uint32_t rules = 231;
  uint32_t populated_relations = 129;  // ~ n-shapes
  uint64_t atoms = 1'109'037;
  uint64_t seed = 7;
};
[[nodiscard]] StatusOr<Scenario> MakeIBenchScenario(const IBenchParams& params);

// Convenience constructors matching Table 1 rows at a linear `atom_scale`
// (1.0 = paper-sized databases).
[[nodiscard]]
StatusOr<Scenario> MakeStb128Scenario(double atom_scale, uint64_t seed);
[[nodiscard]]
StatusOr<Scenario> MakeOnt256Scenario(double atom_scale, uint64_t seed);

struct ScenarioStats {
  size_t n_pred = 0;       // predicates in sch(Σ)
  uint32_t min_arity = 0;
  uint32_t max_arity = 0;
  size_t n_atoms = 0;
  size_t n_shapes = 0;
  size_t n_rules = 0;
};

// Computes the Table 1 statistics of a scenario.
ScenarioStats ComputeScenarioStats(const Scenario& scenario);

}  // namespace chase

#endif  // CHASE_GEN_SCENARIO_H_
