#include "gen/tgd_generator.h"

#include "base/rng.h"
#include "base/status.h"
#include "logic/atom.h"
#include "logic/schema.h"
#include "logic/tgd.h"

#include <algorithm>

namespace chase {

const char* TgdClassName(TgdClass tclass) {
  return tclass == TgdClass::kSimpleLinear ? "SL" : "L";
}

StatusOr<std::vector<Tgd>> GenerateTgds(const Schema& schema,
                                        const TgdGenParams& params) {
  if (params.min_arity == 0 || params.min_arity > params.max_arity) {
    return InvalidArgumentError("invalid arity range");
  }
  // Candidate predicates with arity in range.
  std::vector<PredId> candidates;
  for (PredId pred = 0; pred < schema.NumPredicates(); ++pred) {
    const uint32_t arity = schema.Arity(pred);
    if (arity >= params.min_arity && arity <= params.max_arity) {
      candidates.push_back(pred);
    }
  }
  if (candidates.size() < params.ssize) {
    return InvalidArgumentError(
        "schema has only " + std::to_string(candidates.size()) +
        " predicates in the arity range, need " +
        std::to_string(params.ssize));
  }

  Rng rng(params.seed);
  // Random subset S' of size ssize (partial Fisher–Yates).
  for (uint32_t i = 0; i < params.ssize; ++i) {
    const auto j = i + rng.Below(candidates.size() - i);
    std::swap(candidates[i], candidates[j]);
  }
  candidates.resize(params.ssize);

  std::vector<Tgd> tgds;
  tgds.reserve(params.tsize);
  for (uint64_t t = 0; t < params.tsize; ++t) {
    // Body and head predicates, drawn with repetition.
    const PredId body_pred = candidates[rng.Below(candidates.size())];
    const PredId head_pred = candidates[rng.Below(candidates.size())];
    const uint32_t body_arity = schema.Arity(body_pred);
    const uint32_t head_arity = schema.Arity(head_pred);

    RuleAtom body;
    body.pred = body_pred;
    body.args.resize(body_arity);
    uint32_t num_body_vars;
    if (params.tclass == TgdClass::kSimpleLinear) {
      // Distinct variables 0..arity-1.
      for (uint32_t i = 0; i < body_arity; ++i) body.args[i] = i;
      num_body_vars = body_arity;
    } else {
      // Draw a random shape; variable = block index.
      uint8_t max_block = 0;
      for (uint32_t i = 0; i < body_arity; ++i) {
        const auto block = static_cast<uint8_t>(rng.Range(1, max_block + 1));
        body.args[i] = block - 1;
        max_block = std::max(max_block, block);
      }
      num_body_vars = max_block;
    }

    RuleAtom head;
    head.pred = head_pred;
    head.args.resize(head_arity);
    // Existential variables get fresh ids above the body variables.
    uint32_t next_existential = num_body_vars;
    bool has_frontier = false;
    for (uint32_t i = 0; i < head_arity; ++i) {
      if (rng.Percent(params.existential_percent)) {
        head.args[i] = next_existential++;
      } else {
        head.args[i] = static_cast<VarId>(rng.Below(num_body_vars));
        has_frontier = true;
      }
    }
    if (!has_frontier) {
      // Non-empty frontier (Section 3): force position 0 universal.
      head.args[0] = static_cast<VarId>(rng.Below(num_body_vars));
    }

    CHASE_ASSIGN_OR_RETURN(Tgd tgd, Tgd::Create({std::move(body)},
                                                {std::move(head)}));
    tgds.push_back(std::move(tgd));
  }
  return tgds;
}

const char* NonLinearFamilyName(NonLinearFamily family) {
  switch (family) {
    case NonLinearFamily::kTriangle:
      return "triangle";
    case NonLinearFamily::kStar:
      return "star";
    case NonLinearFamily::kChain:
      return "chain";
    case NonLinearFamily::kCross:
      return "cross";
  }
  return "?";
}

StatusOr<std::vector<Tgd>> GenerateNonLinearTgds(
    const Schema& schema, const NonLinearGenParams& params) {
  if (params.body_atoms < 2) {
    return InvalidArgumentError("non-linear bodies need at least 2 atoms");
  }
  const uint32_t min_arity = std::max(2u, params.min_arity);
  if (min_arity > params.max_arity) {
    return InvalidArgumentError("invalid arity range");
  }
  std::vector<PredId> candidates;
  for (PredId pred = 0; pred < schema.NumPredicates(); ++pred) {
    const uint32_t arity = schema.Arity(pred);
    if (arity >= min_arity && arity <= params.max_arity) {
      candidates.push_back(pred);
    }
  }
  if (candidates.size() < params.ssize) {
    return InvalidArgumentError(
        "schema has only " + std::to_string(candidates.size()) +
        " predicates of arity >= 2 in range, need " +
        std::to_string(params.ssize));
  }

  Rng rng(params.seed);
  for (uint32_t i = 0; i < params.ssize; ++i) {
    const auto j = i + rng.Below(candidates.size() - i);
    std::swap(candidates[i], candidates[j]);
  }
  candidates.resize(params.ssize);

  std::vector<Tgd> tgds;
  tgds.reserve(params.tsize);
  const uint32_t k = params.body_atoms;
  for (uint64_t t = 0; t < params.tsize; ++t) {
    // Endpoint variables first: the family decides which endpoints are
    // shared. Every other position gets a fresh universal afterwards, so
    // variable ids stay deterministic given the seed.
    uint32_t next_var = 0;
    auto fresh = [&]() { return static_cast<VarId>(next_var++); };
    std::vector<RuleAtom> body(k);
    // endpoints[i] = {first-position var, last-position var} of atom i.
    std::vector<std::pair<VarId, VarId>> endpoints(k);
    switch (params.family) {
      case NonLinearFamily::kTriangle: {
        // Cycle variables V_0..V_{k-1}; atom i joins V_i to V_{i+1 mod k}.
        std::vector<VarId> cycle(k);
        for (uint32_t i = 0; i < k; ++i) cycle[i] = fresh();
        for (uint32_t i = 0; i < k; ++i) {
          endpoints[i] = {cycle[i], cycle[(i + 1) % k]};
        }
        break;
      }
      case NonLinearFamily::kStar: {
        const VarId hub = fresh();
        for (uint32_t i = 0; i < k; ++i) endpoints[i] = {hub, fresh()};
        break;
      }
      case NonLinearFamily::kChain: {
        // Path variables V_0..V_k; atom i joins V_i to V_{i+1}.
        std::vector<VarId> path(k + 1);
        for (uint32_t i = 0; i <= k; ++i) path[i] = fresh();
        for (uint32_t i = 0; i < k; ++i) {
          endpoints[i] = {path[i], path[i + 1]};
        }
        break;
      }
      case NonLinearFamily::kCross: {
        for (uint32_t i = 0; i < k; ++i) endpoints[i] = {fresh(), fresh()};
        break;
      }
    }
    for (uint32_t i = 0; i < k; ++i) {
      const PredId pred = candidates[rng.Below(candidates.size())];
      const uint32_t arity = schema.Arity(pred);
      body[i].pred = pred;
      body[i].args.resize(arity);
      body[i].args[0] = endpoints[i].first;
      body[i].args[arity - 1] = endpoints[i].second;
      for (uint32_t pos = 1; pos + 1 < arity; ++pos) {
        body[i].args[pos] = fresh();
      }
    }
    const uint32_t num_body_vars = next_var;

    const PredId head_pred = candidates[rng.Below(candidates.size())];
    const uint32_t head_arity = schema.Arity(head_pred);
    RuleAtom head;
    head.pred = head_pred;
    head.args.resize(head_arity);
    uint32_t next_existential = num_body_vars;
    bool has_frontier = false;
    for (uint32_t i = 0; i < head_arity; ++i) {
      if (rng.Percent(params.existential_percent)) {
        head.args[i] = next_existential++;
      } else {
        head.args[i] = static_cast<VarId>(rng.Below(num_body_vars));
        has_frontier = true;
      }
    }
    if (!has_frontier) {
      head.args[0] = static_cast<VarId>(rng.Below(num_body_vars));
    }

    CHASE_ASSIGN_OR_RETURN(Tgd tgd,
                           Tgd::Create(std::move(body), {std::move(head)}));
    tgds.push_back(std::move(tgd));
  }
  return tgds;
}

}  // namespace chase
