#include "gen/tgd_generator.h"

#include <algorithm>

namespace chase {

const char* TgdClassName(TgdClass tclass) {
  return tclass == TgdClass::kSimpleLinear ? "SL" : "L";
}

StatusOr<std::vector<Tgd>> GenerateTgds(const Schema& schema,
                                        const TgdGenParams& params) {
  if (params.min_arity == 0 || params.min_arity > params.max_arity) {
    return InvalidArgumentError("invalid arity range");
  }
  // Candidate predicates with arity in range.
  std::vector<PredId> candidates;
  for (PredId pred = 0; pred < schema.NumPredicates(); ++pred) {
    const uint32_t arity = schema.Arity(pred);
    if (arity >= params.min_arity && arity <= params.max_arity) {
      candidates.push_back(pred);
    }
  }
  if (candidates.size() < params.ssize) {
    return InvalidArgumentError(
        "schema has only " + std::to_string(candidates.size()) +
        " predicates in the arity range, need " +
        std::to_string(params.ssize));
  }

  Rng rng(params.seed);
  // Random subset S' of size ssize (partial Fisher–Yates).
  for (uint32_t i = 0; i < params.ssize; ++i) {
    const auto j = i + rng.Below(candidates.size() - i);
    std::swap(candidates[i], candidates[j]);
  }
  candidates.resize(params.ssize);

  std::vector<Tgd> tgds;
  tgds.reserve(params.tsize);
  for (uint64_t t = 0; t < params.tsize; ++t) {
    // Body and head predicates, drawn with repetition.
    const PredId body_pred = candidates[rng.Below(candidates.size())];
    const PredId head_pred = candidates[rng.Below(candidates.size())];
    const uint32_t body_arity = schema.Arity(body_pred);
    const uint32_t head_arity = schema.Arity(head_pred);

    RuleAtom body;
    body.pred = body_pred;
    body.args.resize(body_arity);
    uint32_t num_body_vars;
    if (params.tclass == TgdClass::kSimpleLinear) {
      // Distinct variables 0..arity-1.
      for (uint32_t i = 0; i < body_arity; ++i) body.args[i] = i;
      num_body_vars = body_arity;
    } else {
      // Draw a random shape; variable = block index.
      uint8_t max_block = 0;
      for (uint32_t i = 0; i < body_arity; ++i) {
        const auto block = static_cast<uint8_t>(rng.Range(1, max_block + 1));
        body.args[i] = block - 1;
        max_block = std::max(max_block, block);
      }
      num_body_vars = max_block;
    }

    RuleAtom head;
    head.pred = head_pred;
    head.args.resize(head_arity);
    // Existential variables get fresh ids above the body variables.
    uint32_t next_existential = num_body_vars;
    bool has_frontier = false;
    for (uint32_t i = 0; i < head_arity; ++i) {
      if (rng.Percent(params.existential_percent)) {
        head.args[i] = next_existential++;
      } else {
        head.args[i] = static_cast<VarId>(rng.Below(num_body_vars));
        has_frontier = true;
      }
    }
    if (!has_frontier) {
      // Non-empty frontier (Section 3): force position 0 universal.
      head.args[0] = static_cast<VarId>(rng.Below(num_body_vars));
    }

    CHASE_ASSIGN_OR_RETURN(Tgd tgd, Tgd::Create({std::move(body)},
                                                {std::move(head)}));
    tgds.push_back(std::move(tgd));
  }
  return tgds;
}

}  // namespace chase
