// The paper's TGD generator (Section 6.2).
//
// Takes a set S of predicates (a schema) and (ssize, min, max, tsize,
// tclass) and produces `tsize` single-head TGDs over a random subset of
// `ssize` predicates with arity in [min, max]:
//
//  * Simple-linear: body variables are all distinct; each head position is
//    existential with probability `existential_percent`%, otherwise it is a
//    uniformly random body variable.
//  * Linear: additionally draws a random shape for the body atom, so body
//    variables repeat according to the shape.
//
// Every generated TGD has a non-empty frontier (if all head positions roll
// existential, position 0 is re-rolled universal), matching the paper's
// Section 3 assumption.

#ifndef CHASE_GEN_TGD_GENERATOR_H_
#define CHASE_GEN_TGD_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "logic/schema.h"
#include "logic/tgd.h"

namespace chase {

enum class TgdClass {
  kSimpleLinear,  // SL
  kLinear,        // L
};

const char* TgdClassName(TgdClass tclass);

struct TgdGenParams {
  uint32_t ssize = 10;     // |sch(Σ)|
  uint32_t min_arity = 1;  // inclusive
  uint32_t max_arity = 5;  // inclusive
  uint64_t tsize = 100;    // |Σ|
  TgdClass tclass = TgdClass::kSimpleLinear;
  uint32_t existential_percent = 10;
  uint64_t seed = 1;
};

// Generates `params.tsize` TGDs over `schema`. Fails if fewer than
// `params.ssize` predicates of `schema` have arity in [min, max].
[[nodiscard]] StatusOr<std::vector<Tgd>> GenerateTgds(const Schema& schema,
                                        const TgdGenParams& params);

// -----------------------------------------------------------------------------
// Non-linear (multi-atom body) rule families — the ontology/data-exchange
// join shapes the parallel homomorphism search is exercised on. Every body
// atom uses its predicate's first and last positions as join "endpoints"
// (middle positions get fresh distinct universals), which lets one family
// definition run over any arity >= 2:
//
//  * kTriangle: a cyclic join — atom i links endpoint variable i to
//    variable (i+1) mod k, so every atom shares a variable with two
//    others (k = body_atoms, the classic triangle at k = 3).
//  * kStar: a hub join — every atom's first endpoint is the shared hub
//    variable, second endpoints are private (one hot hub value fans out
//    multiplicatively; the hot-row sub-partitioning case).
//  * kChain: a DL-Lite-style role chain — atom i links variable i to
//    variable i+1 (composition r1 ∘ r2 ∘ …).
//  * kCross: a disconnected body — no variable shared between atoms at
//    all, the pure cross-product that makes unbudgeted homomorphism
//    buffering explode.
enum class NonLinearFamily {
  kTriangle,
  kStar,
  kChain,
  kCross,
};

const char* NonLinearFamilyName(NonLinearFamily family);

struct NonLinearGenParams {
  uint32_t ssize = 10;     // predicate pool size (arity >= 2 only)
  uint32_t min_arity = 2;  // inclusive; must be >= 2 (endpoint positions)
  uint32_t max_arity = 5;  // inclusive
  uint64_t tsize = 20;     // |Σ|
  NonLinearFamily family = NonLinearFamily::kChain;
  uint32_t body_atoms = 3;  // atoms per body, >= 2
  uint32_t existential_percent = 10;
  uint64_t seed = 1;
};

// Generates `params.tsize` TGDs of the requested family over `schema`.
// Fails if fewer than `params.ssize` predicates have arity in
// [max(2, min_arity), max_arity], or if body_atoms < 2. Every TGD has a
// non-empty frontier, like GenerateTgds.
[[nodiscard]] StatusOr<std::vector<Tgd>> GenerateNonLinearTgds(
    const Schema& schema, const NonLinearGenParams& params);

}  // namespace chase

#endif  // CHASE_GEN_TGD_GENERATOR_H_
