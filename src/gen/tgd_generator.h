// The paper's TGD generator (Section 6.2).
//
// Takes a set S of predicates (a schema) and (ssize, min, max, tsize,
// tclass) and produces `tsize` single-head TGDs over a random subset of
// `ssize` predicates with arity in [min, max]:
//
//  * Simple-linear: body variables are all distinct; each head position is
//    existential with probability `existential_percent`%, otherwise it is a
//    uniformly random body variable.
//  * Linear: additionally draws a random shape for the body atom, so body
//    variables repeat according to the shape.
//
// Every generated TGD has a non-empty frontier (if all head positions roll
// existential, position 0 is re-rolled universal), matching the paper's
// Section 3 assumption.

#ifndef CHASE_GEN_TGD_GENERATOR_H_
#define CHASE_GEN_TGD_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "logic/schema.h"
#include "logic/tgd.h"

namespace chase {

enum class TgdClass {
  kSimpleLinear,  // SL
  kLinear,        // L
};

const char* TgdClassName(TgdClass tclass);

struct TgdGenParams {
  uint32_t ssize = 10;     // |sch(Σ)|
  uint32_t min_arity = 1;  // inclusive
  uint32_t max_arity = 5;  // inclusive
  uint64_t tsize = 100;    // |Σ|
  TgdClass tclass = TgdClass::kSimpleLinear;
  uint32_t existential_percent = 10;
  uint64_t seed = 1;
};

// Generates `params.tsize` TGDs over `schema`. Fails if fewer than
// `params.ssize` predicates of `schema` have arity in [min, max].
StatusOr<std::vector<Tgd>> GenerateTgds(const Schema& schema,
                                        const TgdGenParams& params);

}  // namespace chase

#endif  // CHASE_GEN_TGD_GENERATOR_H_
