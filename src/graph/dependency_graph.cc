#include "graph/dependency_graph.h"

#include "graph/digraph.h"
#include "logic/atom.h"
#include "logic/schema.h"
#include "logic/tgd.h"

#include <unordered_set>

namespace chase {

DependencyGraph BuildDependencyGraph(const Schema& schema,
                                     const std::vector<Tgd>& tgds) {
  const auto num_nodes = static_cast<uint32_t>(schema.NumPositions());
  std::vector<Edge> edges;
  // Packed (from, to, special) for deduplication. Positions fit in 32 bits
  // and special in one, so one uint64 with `special` in the low bit works
  // as long as to < 2^31, which a 32-bit position space guarantees in
  // practice (schemas here are far smaller).
  std::unordered_set<uint64_t> seen;
  auto add_edge = [&](uint32_t from, uint32_t to, bool special) {
    const uint64_t key =
        (static_cast<uint64_t>(from) << 32) | (to << 1) | (special ? 1 : 0);
    if (seen.insert(key).second) edges.push_back(Edge{from, to, special});
  };

  for (const Tgd& tgd : tgds) {
    for (VarId x : tgd.frontier()) {
      for (const RuleAtom& body_atom : tgd.body()) {
        for (uint32_t i = 0; i < body_atom.args.size(); ++i) {
          if (body_atom.args[i] != x) continue;
          const uint32_t from = schema.PositionId(body_atom.pred, i);
          for (const RuleAtom& head_atom : tgd.head()) {
            for (uint32_t j = 0; j < head_atom.args.size(); ++j) {
              const VarId head_var = head_atom.args[j];
              const uint32_t to = schema.PositionId(head_atom.pred, j);
              if (head_var == x) {
                add_edge(from, to, /*special=*/false);
              } else if (tgd.IsExistential(head_var)) {
                add_edge(from, to, /*special=*/true);
              }
            }
          }
        }
      }
    }
  }
  return DependencyGraph(&schema, Digraph(num_nodes, edges));
}

}  // namespace chase
