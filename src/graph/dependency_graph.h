// The dependency graph dg(Σ) of a set of TGDs (Section 3).
//
// Nodes are the predicate positions of sch(Σ). For each TGD σ, each frontier
// variable x, and each position π at which x occurs in the body:
//   * a normal edge (π, π') for every position π' of x in a head atom, and
//   * a special edge (π, π') for every position π' of an existentially
//     quantified variable in a head atom.
//
// dg(Σ) is formally a multigraph, but parallel edges are irrelevant for
// cycle/SCC detection, so BuildDependencyGraph deduplicates (from, to,
// special) triples — this matches the paper's appendix, which counts each
// distinct edge once. Construction is a single pass over the TGDs using the
// schema's dense position index (the "index structure" of Section 5.1).

#ifndef CHASE_GRAPH_DEPENDENCY_GRAPH_H_
#define CHASE_GRAPH_DEPENDENCY_GRAPH_H_

#include <vector>

#include "graph/digraph.h"
#include "logic/schema.h"
#include "logic/tgd.h"

namespace chase {

class DependencyGraph {
 public:
  DependencyGraph(const Schema* schema, Digraph graph)
      : schema_(schema), graph_(std::move(graph)) {}

  const Schema& schema() const { return *schema_; }
  const Digraph& graph() const { return graph_; }

  uint32_t num_nodes() const { return graph_.num_nodes(); }
  size_t num_edges() const { return graph_.num_edges(); }
  size_t num_special_edges() const { return graph_.num_special_edges(); }

  // The position encoded by a node id.
  Position PositionOf(uint32_t node) const {
    return schema_->PositionFromId(node);
  }
  uint32_t NodeOf(const Position& position) const {
    return schema_->PositionId(position);
  }

 private:
  const Schema* schema_;
  Digraph graph_;
};

// Builds dg(Σ). `schema` must contain every predicate used by `tgds` and must
// outlive the returned graph.
DependencyGraph BuildDependencyGraph(const Schema& schema,
                                     const std::vector<Tgd>& tgds);

}  // namespace chase

#endif  // CHASE_GRAPH_DEPENDENCY_GRAPH_H_
