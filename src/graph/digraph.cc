#include "graph/digraph.h"

namespace chase {

Digraph::Digraph(uint32_t num_nodes, const std::vector<Edge>& edges)
    : num_nodes_(num_nodes) {
  forward_offsets_.assign(num_nodes + 1, 0);
  reverse_offsets_.assign(num_nodes + 1, 0);
  for (const Edge& edge : edges) {
    ++forward_offsets_[edge.from + 1];
    ++reverse_offsets_[edge.to + 1];
    if (edge.special) ++num_special_edges_;
  }
  for (uint32_t node = 0; node < num_nodes; ++node) {
    forward_offsets_[node + 1] += forward_offsets_[node];
    reverse_offsets_[node + 1] += reverse_offsets_[node];
  }
  forward_.resize(edges.size());
  reverse_.resize(edges.size());
  std::vector<uint32_t> forward_fill(forward_offsets_.begin(),
                                     forward_offsets_.end() - 1);
  std::vector<uint32_t> reverse_fill(reverse_offsets_.begin(),
                                     reverse_offsets_.end() - 1);
  for (const Edge& edge : edges) {
    forward_[forward_fill[edge.from]++] = Arc{edge.to, edge.special};
    reverse_[reverse_fill[edge.to]++] = Arc{edge.from, edge.special};
  }
}

}  // namespace chase
