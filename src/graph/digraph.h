// A compact directed graph with optionally "special" edges, stored in CSR
// form with both forward and reverse adjacency. The reverse adjacency is the
// paper's "doubly linked" adjacency list (Section 5.1): it lets the Supports
// check traverse the dependency graph against the edge direction.

#ifndef CHASE_GRAPH_DIGRAPH_H_
#define CHASE_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

namespace chase {

struct Edge {
  uint32_t from;
  uint32_t to;
  bool special;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.from == b.from && a.to == b.to && a.special == b.special;
  }
};

// Target of an adjacency entry.
struct Arc {
  uint32_t node;
  bool special;
};

class Digraph {
 public:
  Digraph() = default;

  // Builds the CSR representation from an edge list (duplicates allowed).
  Digraph(uint32_t num_nodes, const std::vector<Edge>& edges);

  uint32_t num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return forward_.size(); }
  size_t num_special_edges() const { return num_special_edges_; }

  std::span<const Arc> OutArcs(uint32_t node) const {
    return {forward_.data() + forward_offsets_[node],
            forward_offsets_[node + 1] - forward_offsets_[node]};
  }
  std::span<const Arc> InArcs(uint32_t node) const {
    return {reverse_.data() + reverse_offsets_[node],
            reverse_offsets_[node + 1] - reverse_offsets_[node]};
  }

 private:
  uint32_t num_nodes_ = 0;
  size_t num_special_edges_ = 0;
  std::vector<uint32_t> forward_offsets_;
  std::vector<Arc> forward_;
  std::vector<uint32_t> reverse_offsets_;
  std::vector<Arc> reverse_;
};

}  // namespace chase

#endif  // CHASE_GRAPH_DIGRAPH_H_
