#include "graph/dot.h"

#include <sstream>
#include <vector>

#include "graph/dependency_graph.h"
#include "graph/digraph.h"
#include "graph/tarjan.h"
#include "logic/schema.h"

namespace chase {

void WriteDot(const DependencyGraph& graph, std::ostream& os,
              const DotOptions& options) {
  const Digraph& digraph = graph.graph();
  const Schema& schema = graph.schema();

  std::vector<bool> in_special_scc(digraph.num_nodes(), false);
  if (options.highlight_special_sccs) {
    const SccResult scc = TarjanScc(digraph);
    const SpecialSccs special = FindSpecialSccs(digraph, scc);
    std::vector<bool> special_component(scc.num_components, false);
    for (uint32_t component : special.components) {
      special_component[component] = true;
    }
    for (uint32_t node = 0; node < digraph.num_nodes(); ++node) {
      in_special_scc[node] = special_component[scc.component[node]];
    }
  }

  auto label = [&](uint32_t node) {
    const Position position = graph.PositionOf(node);
    return schema.PredicateName(position.pred) + "." +
           std::to_string(position.index + 1);
  };

  os << "digraph dg {\n  rankdir=LR;\n  node [shape=ellipse];\n";
  for (uint32_t node = 0; node < digraph.num_nodes(); ++node) {
    if (options.skip_isolated_nodes && digraph.OutArcs(node).empty() &&
        digraph.InArcs(node).empty()) {
      continue;
    }
    os << "  \"" << label(node) << "\"";
    if (in_special_scc[node]) {
      os << " [style=filled, fillcolor=\"#ffd0d0\"]";
    }
    os << ";\n";
  }
  for (uint32_t node = 0; node < digraph.num_nodes(); ++node) {
    for (const Arc& arc : digraph.OutArcs(node)) {
      os << "  \"" << label(node) << "\" -> \"" << label(arc.node) << "\"";
      if (arc.special) {
        os << " [style=dashed, color=red]";
      }
      os << ";\n";
    }
  }
  os << "}\n";
}

std::string ToDot(const DependencyGraph& graph, const DotOptions& options) {
  std::ostringstream os;
  WriteDot(graph, os, options);
  return os.str();
}

}  // namespace chase
