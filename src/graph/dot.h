// Graphviz (dot) rendering of dependency graphs, for debugging rule sets
// and for the figures in the documentation. Normal edges are solid, special
// edges dashed and red; nodes in special SCCs (the witnesses of potential
// non-termination) are filled.

#ifndef CHASE_GRAPH_DOT_H_
#define CHASE_GRAPH_DOT_H_

#include <ostream>
#include <string>

#include "graph/dependency_graph.h"

namespace chase {

struct DotOptions {
  // Drop isolated positions (no in/out edges); large schemas are unreadable
  // otherwise.
  bool skip_isolated_nodes = true;
  // Highlight the nodes of special SCCs.
  bool highlight_special_sccs = true;
};

void WriteDot(const DependencyGraph& graph, std::ostream& os,
              const DotOptions& options = {});
std::string ToDot(const DependencyGraph& graph, const DotOptions& options = {});

}  // namespace chase

#endif  // CHASE_GRAPH_DOT_H_
