#include "graph/kosaraju.h"

#include "graph/digraph.h"
#include "graph/tarjan.h"

namespace chase {

SccResult KosarajuScc(const Digraph& graph) {
  const uint32_t n = graph.num_nodes();

  // Pass 1: iterative DFS on the forward graph, recording finish order.
  std::vector<uint32_t> finish_order;
  finish_order.reserve(n);
  std::vector<bool> visited(n, false);
  struct Frame {
    uint32_t node;
    uint32_t arc;
  };
  std::vector<Frame> stack;
  for (uint32_t root = 0; root < n; ++root) {
    if (visited[root]) continue;
    visited[root] = true;
    stack.push_back(Frame{root, 0});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto arcs = graph.OutArcs(frame.node);
      bool descended = false;
      while (frame.arc < arcs.size()) {
        const uint32_t w = arcs[frame.arc].node;
        ++frame.arc;
        if (!visited[w]) {
          visited[w] = true;
          stack.push_back(Frame{w, 0});
          descended = true;
          break;
        }
      }
      if (descended) continue;
      finish_order.push_back(frame.node);
      stack.pop_back();
    }
  }

  // Pass 2: DFS on the reverse graph in decreasing finish order.
  SccResult result;
  constexpr uint32_t kUnassigned = 0xffffffffu;
  result.component.assign(n, kUnassigned);
  std::vector<uint32_t> work;
  for (auto it = finish_order.rbegin(); it != finish_order.rend(); ++it) {
    if (result.component[*it] != kUnassigned) continue;
    const uint32_t comp = result.num_components++;
    work.push_back(*it);
    result.component[*it] = comp;
    while (!work.empty()) {
      const uint32_t v = work.back();
      work.pop_back();
      for (const Arc& arc : graph.InArcs(v)) {
        if (result.component[arc.node] == kUnassigned) {
          result.component[arc.node] = comp;
          work.push_back(arc.node);
        }
      }
    }
  }
  return result;
}

}  // namespace chase
