// Kosaraju–Sharir SCC decomposition. Slower than Tarjan in practice (two
// passes) but structurally simple; used as the reference implementation in
// property tests that validate the Tarjan implementation, mirroring the
// paper's discussion of the two algorithms in Section 5.2.

#ifndef CHASE_GRAPH_KOSARAJU_H_
#define CHASE_GRAPH_KOSARAJU_H_

#include "graph/digraph.h"
#include "graph/tarjan.h"

namespace chase {

SccResult KosarajuScc(const Digraph& graph);

}  // namespace chase

#endif  // CHASE_GRAPH_KOSARAJU_H_
