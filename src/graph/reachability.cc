#include "graph/reachability.h"

#include "graph/dependency_graph.h"
#include "graph/digraph.h"
#include "logic/schema.h"

namespace chase {
namespace {

std::vector<bool> Reach(const Digraph& graph, std::span<const uint32_t> seeds,
                        bool reverse) {
  std::vector<bool> reached(graph.num_nodes(), false);
  std::vector<uint32_t> work;
  for (uint32_t seed : seeds) {
    if (!reached[seed]) {
      reached[seed] = true;
      work.push_back(seed);
    }
  }
  while (!work.empty()) {
    const uint32_t v = work.back();
    work.pop_back();
    const auto arcs = reverse ? graph.InArcs(v) : graph.OutArcs(v);
    for (const Arc& arc : arcs) {
      if (!reached[arc.node]) {
        reached[arc.node] = true;
        work.push_back(arc.node);
      }
    }
  }
  return reached;
}

}  // namespace

std::vector<bool> ReverseReachable(const Digraph& graph,
                                   std::span<const uint32_t> seeds) {
  return Reach(graph, seeds, /*reverse=*/true);
}

std::vector<bool> ForwardReachable(const Digraph& graph,
                                   std::span<const uint32_t> seeds) {
  return Reach(graph, seeds, /*reverse=*/false);
}

bool PredicateReachable(const DependencyGraph& graph, PredId from, PredId to) {
  if (from == to) return true;
  const Schema& schema = graph.schema();
  std::vector<uint32_t> seeds;
  for (uint32_t i = 0; i < schema.Arity(from); ++i) {
    seeds.push_back(schema.PositionId(from, i));
  }
  std::vector<bool> reached = ForwardReachable(graph.graph(), seeds);
  for (uint32_t i = 0; i < schema.Arity(to); ++i) {
    if (reached[schema.PositionId(to, i)]) return true;
  }
  return false;
}

}  // namespace chase
