// Graph reachability helpers used by the Supports check (Section 5.3) and by
// the predicate-level reachability notion of Section 2 ("P is reachable from
// R w.r.t. Σ").

#ifndef CHASE_GRAPH_REACHABILITY_H_
#define CHASE_GRAPH_REACHABILITY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/dependency_graph.h"
#include "graph/digraph.h"
#include "logic/schema.h"

namespace chase {

// Nodes from which some seed is reachable, i.e., the reachable set of `seeds`
// in the reversed graph. This is the Section 5.3 traversal "in the reverse
// order using the reverse links in the adjacency list".
std::vector<bool> ReverseReachable(const Digraph& graph,
                                   std::span<const uint32_t> seeds);

// Forward reachable set of `seeds`.
std::vector<bool> ForwardReachable(const Digraph& graph,
                                   std::span<const uint32_t> seeds);

// Predicate-level reachability w.r.t. a dependency graph: P is reachable
// from R iff R == P or some position of P is forward-reachable from some
// position of R (Section 2).
bool PredicateReachable(const DependencyGraph& graph, PredId from, PredId to);

}  // namespace chase

#endif  // CHASE_GRAPH_REACHABILITY_H_
