#include "graph/tarjan.h"

#include "graph/digraph.h"

#include <algorithm>

namespace chase {
namespace {

constexpr uint32_t kUnvisited = 0xffffffffu;

}  // namespace

SccResult TarjanScc(const Digraph& graph) {
  const uint32_t n = graph.num_nodes();
  SccResult result;
  result.component.assign(n, kUnvisited);

  std::vector<uint32_t> index(n, kUnvisited);  // DFS discovery order
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<uint32_t> scc_stack;  // the "SCC stack" of Section 5.2

  // Explicit DFS frames: (node, next out-arc to explore).
  struct Frame {
    uint32_t node;
    uint32_t arc;
  };
  std::vector<Frame> dfs_stack;
  uint32_t next_index = 0;

  for (uint32_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    dfs_stack.push_back(Frame{root, 0});
    while (!dfs_stack.empty()) {
      Frame& frame = dfs_stack.back();
      const uint32_t v = frame.node;
      if (frame.arc == 0) {
        index[v] = lowlink[v] = next_index++;
        scc_stack.push_back(v);
        on_stack[v] = true;
      }
      const auto arcs = graph.OutArcs(v);
      bool descended = false;
      while (frame.arc < arcs.size()) {
        const uint32_t w = arcs[frame.arc].node;
        ++frame.arc;
        if (index[w] == kUnvisited) {
          dfs_stack.push_back(Frame{w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      }
      if (descended) continue;
      // All arcs of v explored: maybe emit an SCC, then propagate lowlink.
      if (lowlink[v] == index[v]) {
        const uint32_t comp = result.num_components++;
        while (true) {
          const uint32_t w = scc_stack.back();
          scc_stack.pop_back();
          on_stack[w] = false;
          result.component[w] = comp;
          if (w == v) break;
        }
      }
      dfs_stack.pop_back();
      if (!dfs_stack.empty()) {
        const uint32_t parent = dfs_stack.back().node;
        lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
      }
    }
  }
  return result;
}

SpecialSccs FindSpecialSccs(const Digraph& graph, const SccResult& scc) {
  std::vector<bool> is_special(scc.num_components, false);
  for (uint32_t v = 0; v < graph.num_nodes(); ++v) {
    for (const Arc& arc : graph.OutArcs(v)) {
      if (arc.special && scc.component[v] == scc.component[arc.node]) {
        is_special[scc.component[v]] = true;
      }
    }
  }
  SpecialSccs out;
  std::vector<uint32_t> representative(scc.num_components, kUnvisited);
  for (uint32_t v = 0; v < graph.num_nodes(); ++v) {
    const uint32_t comp = scc.component[v];
    if (is_special[comp] && representative[comp] == kUnvisited) {
      representative[comp] = v;
    }
  }
  for (uint32_t comp = 0; comp < scc.num_components; ++comp) {
    if (is_special[comp]) {
      out.components.push_back(comp);
      out.representatives.push_back(representative[comp]);
    }
  }
  return out;
}

SpecialSccs FindSpecialSccs(const Digraph& graph) {
  return FindSpecialSccs(graph, TarjanScc(graph));
}

}  // namespace chase
