// Tarjan's strongly connected components algorithm (iterative, so graphs
// with millions of nodes do not overflow the call stack), plus the special-
// SCC detection that FindSpecialSCC (Section 5.2) needs.
//
// An SCC is *special* if it contains a special edge, i.e., some special edge
// has both endpoints inside the component — exactly the witnesses of cycles
// with a special edge required by (non-uniform) weak-acyclicity. See
// DESIGN.md §3 for why this exact check replaces the paper's dummy-token
// heuristic.

#ifndef CHASE_GRAPH_TARJAN_H_
#define CHASE_GRAPH_TARJAN_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"

namespace chase {

struct SccResult {
  // component[v] is the SCC id of node v. Tarjan emits components in reverse
  // topological order: if there is an edge u -> v across components, then
  // component[u] > component[v].
  std::vector<uint32_t> component;
  uint32_t num_components = 0;
};

SccResult TarjanScc(const Digraph& graph);

struct SpecialSccs {
  // Ids (w.r.t. SccResult::component) of the special SCCs.
  std::vector<uint32_t> components;
  // One arbitrary member node per special SCC, parallel to `components`.
  // Algorithm 1 uses exactly one representative per special SCC for the
  // support check ("it is not important how v_C is selected").
  std::vector<uint32_t> representatives;

  bool empty() const { return components.empty(); }
};

// Finds the special SCCs of `graph` given its SCC decomposition.
SpecialSccs FindSpecialSccs(const Digraph& graph, const SccResult& scc);

// Convenience wrapper: Tarjan + special-SCC scan.
SpecialSccs FindSpecialSccs(const Digraph& graph);

}  // namespace chase

#endif  // CHASE_GRAPH_TARJAN_H_
