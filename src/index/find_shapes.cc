#include "index/find_shapes.h"

#include <algorithm>

#include "base/status.h"
#include "index/sharded_shape_index.h"
#include "logic/shape.h"
#include "obs/trace.h"
#include "storage/shape_finder.h"
#include "storage/shape_source.h"

namespace chase {
namespace index {

StatusOr<std::vector<Shape>> FindShapes(
    const storage::ShapeSource& source,
    const storage::FindShapesOptions& options) {
  if (options.mode != storage::ShapeFinderMode::kIndex) {
    return storage::FindShapes(source, options);
  }
  const unsigned threads = options.pool != nullptr
                               ? std::max(1u, options.pool->threads())
                               : std::max(1u, options.threads);
  obs::TraceSpan find_span("storage", "find_shapes", "mode",
                           static_cast<int64_t>(options.mode), "threads",
                           static_cast<int64_t>(threads));
  // Same metering as storage::FindShapes: publish this run's access-stats
  // delta on every exit path.
  storage::ScopedAccessStatsMirror stats_mirror(source);
  // The index build consumes whole ranges, so read-ahead pays off — mirror
  // the scan plan's configuration.
  source.ConfigureReadAhead(options.prefetch);
  CHASE_ASSIGN_OR_RETURN(
      ShardedShapeIndex idx,
      ShardedShapeIndex::Build(source,
                               {options.index_shards, threads, options.pool}));
  return idx.CurrentShapes();
}

}  // namespace index
}  // namespace chase
