// index::FindShapes: the full plan dispatcher for shape(D), including the
// Section 10 index-backed plan (ShapeFinderMode::kIndex).
//
// storage::FindShapes implements the paper's two query plans (scan and
// exists) but sits below index/ in the layer DAG (tools/lint/layers.toml),
// so it cannot build a ShardedShapeIndex. This entry point completes the
// dispatch one layer up: kIndex builds (or reuses) the sharded materialized
// index over the source and extracts shape(D) from it; every other mode
// delegates straight to storage::FindShapes. Callers that may ever request
// kIndex — the termination checkers, the CLI, the differential sweeps —
// call this one; callers pinned to scan/exists may keep calling storage.
//
// All mode × backend × thread combinations return the same sorted set; the
// property test in tests/shape_source_test.cc enforces this across the
// dispatcher too.

#ifndef CHASE_INDEX_FIND_SHAPES_H_
#define CHASE_INDEX_FIND_SHAPES_H_

#include <vector>

#include "base/status.h"
#include "logic/shape.h"
#include "storage/shape_finder.h"
#include "storage/shape_source.h"

namespace chase {
namespace index {

// Returns shape(D) sorted by (pred, id), computed over `source` with the
// requested plan and parallelism. Identical contract and metering to
// storage::FindShapes, plus the kIndex plan.
[[nodiscard]] StatusOr<std::vector<Shape>> FindShapes(
    const storage::ShapeSource& source,
    const storage::FindShapesOptions& options = {});

}  // namespace index
}  // namespace chase

#endif  // CHASE_INDEX_FIND_SHAPES_H_
