#include "index/sharded_shape_index.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "base/hash.h"
#include "base/padded.h"
#include "base/status.h"
#include "base/sync.h"
#include "exec/frontier_pool.h"
#include "io/binary_io.h"
#include "logic/database.h"
#include "logic/schema.h"
#include "logic/shape.h"
#include "logic/term.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/shape_source.h"

namespace chase {
namespace index {

static_assert(ShardedShapeIndex::kMaxShards == io::kMaxSnapshotShards,
              "snapshot validation must accept every buildable shard count");

namespace {

unsigned ClampShards(unsigned shards) {
  if (shards == 0) return ShardedShapeIndex::kDefaultShards;
  return std::min(shards, ShardedShapeIndex::kMaxShards);
}

// Order-dependent fold of the fully mixed terms (Mix64's full avalanche
// keeps single-bit inputs — e.g. a Term's null tag — from cancelling
// linearly over pairs), mixed once more so the per-tuple hashes stay well
// distributed under 64-bit summation.
template <typename T>
uint64_t TupleFingerprintImpl(PredId pred, std::span<const T> tuple) {
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ pred;
  for (T v : tuple) {
    h ^= Mix64(static_cast<uint64_t>(v));
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

}  // namespace

uint64_t TupleFingerprint(PredId pred, std::span<const uint32_t> tuple) {
  return TupleFingerprintImpl(pred, tuple);
}

uint64_t TupleFingerprint(PredId pred, std::span<const Term> tuple) {
  return TupleFingerprintImpl(pred, tuple);
}

uint64_t DatabaseFingerprint(const Database& db) {
  uint64_t fingerprint = 0;
  for (PredId pred : db.NonEmptyPredicates()) {
    const uint32_t arity = db.schema().Arity(pred);
    const auto tuples = db.Tuples(pred);
    const size_t rows = tuples.size() / arity;
    for (size_t row = 0; row < rows; ++row) {
      fingerprint +=
          TupleFingerprint(pred, tuples.subspan(row * arity, arity));
    }
  }
  return fingerprint;
}

ShardedShapeIndex::ShardedShapeIndex(unsigned shards) {
  shards_.reserve(ClampShards(shards));
  for (unsigned i = 0; i < ClampShards(shards); ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ShardedShapeIndex::ShardedShapeIndex(ShardedShapeIndex&& other) noexcept
    : shards_(std::move(other.shards_)),
      fingerprint_(
          other.fingerprint_.load(std::memory_order_relaxed)) {}

ShardedShapeIndex& ShardedShapeIndex::operator=(
    ShardedShapeIndex&& other) noexcept {
  if (this != &other) {
    shards_ = std::move(other.shards_);
    fingerprint_.store(other.fingerprint_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  }
  return *this;
}

size_t ShardedShapeIndex::ShardOf(const Shape& shape) const {
  // Fibonacci final mix: ShapeHash's low bits also pick the bucket inside
  // the shard map, so shard selection reads the high bits instead.
  return static_cast<size_t>(FibonacciMix(ShapeHash{}(shape)) %
                             shards_.size());
}

void ShardedShapeIndex::AddShape(const Shape& shape, uint64_t count,
                                 uint64_t fingerprint) {
  if (count == 0) return;
  Shard& shard = *shards_[ShardOf(shape)];
  {
    MutexLock lock(shard.mu);
    shard.counts[shape] += count;
    shard.tuples += count;
  }
  if (fingerprint != 0) {
    fingerprint_.fetch_add(fingerprint, std::memory_order_relaxed);
  }
}

Status ShardedShapeIndex::RemoveShape(const Shape& shape,
                                      uint64_t fingerprint) {
  Shard& shard = *shards_[ShardOf(shape)];
  {
    MutexLock lock(shard.mu);
    auto it = shard.counts.find(shape);
    if (it == shard.counts.end()) {
      return FailedPreconditionError(
          "removing a tuple whose shape is not indexed");
    }
    if (--it->second == 0) shard.counts.erase(it);
    --shard.tuples;
  }
  if (fingerprint != 0) {
    fingerprint_.fetch_sub(fingerprint, std::memory_order_relaxed);
  }
  return OkStatus();
}

bool ShardedShapeIndex::Contains(const Shape& shape) const {
  const Shard& shard = *shards_[ShardOf(shape)];
  MutexLock lock(shard.mu);
  return shard.counts.find(shape) != shard.counts.end();
}

uint64_t ShardedShapeIndex::Count(const Shape& shape) const {
  const Shard& shard = *shards_[ShardOf(shape)];
  MutexLock lock(shard.mu);
  auto it = shard.counts.find(shape);
  return it == shard.counts.end() ? 0 : it->second;
}

size_t ShardedShapeIndex::NumShapes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->counts.size();
  }
  return total;
}

uint64_t ShardedShapeIndex::NumIndexedTuples() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->tuples;
  }
  return total;
}

size_t ShardedShapeIndex::ShardNumShapes(unsigned shard) const {
  MutexLock lock(shards_[shard]->mu);
  return shards_[shard]->counts.size();
}

void ShardedShapeIndex::MergeCounts(const CountMap& counts) {
  // Group by destination shard first so each shard latch is taken once per
  // fold, not once per shape.
  std::vector<std::vector<const CountMap::value_type*>> by_shard(
      shards_.size());
  // chase-lint: allow(unordered-iter) commutative fold: += into per-shard
  // counters, so visit order cannot change any final count
  for (const auto& entry : counts) {
    by_shard[ShardOf(entry.first)].push_back(&entry);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = *shards_[s];
    MutexLock lock(shard.mu);
    for (const auto* entry : by_shard[s]) {
      shard.counts[entry->first] += entry->second;
      shard.tuples += entry->second;
    }
  }
}

std::vector<Shape> ShardedShapeIndex::CurrentShapes() const {
  // Per-shard sorted extraction.
  std::vector<std::vector<Shape>> runs;
  runs.reserve(shards_.size());
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::vector<Shape> run;
    {
      MutexLock lock(shard->mu);
      run.reserve(shard->counts.size());
      // chase-lint: allow(unordered-iter) sorted before emit: std::sort on
      // the run directly below, then the k-way merge
      for (const auto& [shape, count] : shard->counts) run.push_back(shape);
    }
    std::sort(run.begin(), run.end());
    total += run.size();
    if (!run.empty()) runs.push_back(std::move(run));
  }

  // K-way merge of the runs. Shards partition the shape space, so the runs
  // are duplicate-free and so is the merge.
  std::vector<Shape> merged;
  merged.reserve(total);
  using Cursor = std::pair<size_t, size_t>;  // (run, offset)
  auto greater = [&](const Cursor& a, const Cursor& b) {
    return runs[b.first][b.second] < runs[a.first][a.second];
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(greater)> heap(
      greater);
  for (size_t r = 0; r < runs.size(); ++r) heap.push({r, 0});
  while (!heap.empty()) {
    auto [run, offset] = heap.top();
    heap.pop();
    merged.push_back(std::move(runs[run][offset]));
    if (offset + 1 < runs[run].size()) heap.push({run, offset + 1});
  }
  return merged;
}

StatusOr<ShardedShapeIndex> ShardedShapeIndex::Build(
    const storage::ShapeSource& source, const IndexBuildOptions& options) {
  ShardedShapeIndex index(ClampShards(options.shards));
  const unsigned threads = options.pool != nullptr
                               ? std::max(1u, options.pool->threads())
                               : std::max(1u, options.threads);
  obs::TraceSpan build_span("index", "build", "shards",
                            static_cast<int64_t>(index.num_shards()),
                            "threads", static_cast<int64_t>(threads));

  // The range-partitioned scan driver is shared with the scan-mode shape
  // finder; workers count into thread-local maps (and sum their tuples'
  // content fingerprints at cache-line stride), folded in per worker.
  std::vector<CountMap> local(threads);
  std::vector<PaddedU64> local_fp(threads);
  CHASE_RETURN_IF_ERROR(storage::ParallelTupleScan(
      source, source.NonEmptyRelations(), threads,
      [&](unsigned t, PredId pred, std::span<const uint32_t> tuple) {
        ++local[t][Shape(pred, IdOf(tuple))];
        local_fp[t].value += TupleFingerprint(pred, tuple);
      },
      options.pool));
  for (unsigned t = 0; t < threads; ++t) index.MergeCounts(local[t]);
  uint64_t fingerprint = 0;
  for (unsigned t = 0; t < threads; ++t) fingerprint += local_fp[t].value;
  index.fingerprint_.store(fingerprint, std::memory_order_relaxed);
  if (obs::MetricsRegistry::enabled()) {
    uint64_t tuples = 0;
    for (const CountMap& counts : local) {
      // chase-lint: allow(unordered-iter) commutative fold: a sum
      for (const auto& [shape, count] : counts) tuples += count;
    }
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
    registry.GetCounter("index.builds")->Add(1);
    registry.GetCounter("index.tuples_indexed")->Add(tuples);
    registry.SetGauge("index.shards",
                      static_cast<double>(index.num_shards()));
  }
  return index;
}

ShardedShapeIndex ShardedShapeIndex::Build(const Database& db,
                                           unsigned shards) {
  ShardedShapeIndex index(shards);
  for (PredId pred : db.NonEmptyPredicates()) {
    const uint32_t arity = db.schema().Arity(pred);
    const auto tuples = db.Tuples(pred);
    const size_t rows = tuples.size() / arity;
    for (size_t row = 0; row < rows; ++row) {
      index.Insert(pred, tuples.subspan(row * arity, arity));
    }
  }
  return index;
}

Status ShardedShapeIndex::Save(const std::string& path) const {
  io::ShapeSnapshot snapshot;
  snapshot.num_shards = num_shards();
  snapshot.fingerprint = ContentFingerprint();
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    // chase-lint: allow(unordered-iter) sorted before emit: entries sorted
    // by shape below, before SaveShapeSnapshot writes a byte
    for (const auto& [shape, count] : shard->counts) {
      snapshot.counts.push_back({shape, count});
    }
  }
  // Snapshot bytes are deterministic: entries sorted by shape.
  std::sort(snapshot.counts.begin(), snapshot.counts.end(),
            [](const io::ShapeCount& a, const io::ShapeCount& b) {
              return a.shape < b.shape;
            });
  return io::SaveShapeSnapshot(snapshot, path);
}

StatusOr<ShardedShapeIndex> ShardedShapeIndex::Load(const std::string& path) {
  CHASE_ASSIGN_OR_RETURN(io::ShapeSnapshot snapshot,
                         io::LoadShapeSnapshot(path));
  ShardedShapeIndex index(snapshot.num_shards);
  // chase-lint: allow(unordered-iter) not a hash map: io::ShapeSnapshot
  // ::counts is a vector, already shape-sorted by Save
  for (const io::ShapeCount& entry : snapshot.counts) {
    index.AddShape(entry.shape, entry.count);
  }
  // Shape records don't carry tuple contents; the envelope's fingerprint is
  // the authoritative content digest of the snapshotted database.
  index.fingerprint_.store(snapshot.fingerprint, std::memory_order_relaxed);
  return index;
}

}  // namespace index
}  // namespace chase
