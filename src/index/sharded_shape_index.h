// ShardedShapeIndex: the materialized, incrementally maintained shape(D) of
// Section 10, partitioned so maintenance scales across threads.
//
// storage::ShapeIndex is the single-threaded sketch of the paper's
// "materialize and incrementally keep updated the shapes in a database"
// proposal. This subsystem is the production form:
//
//  * Sharding: counters are partitioned across N shards by a mixed
//    hash(pred, id-tuple) — the same work-division playbook as the
//    work-partitioned parallel FindShapes — so concurrent writers touch
//    disjoint latches with probability (N-1)/N.
//  * Build: range-partitioned parallel scan over any storage::ShapeSource
//    (row store or buffer-pooled disk pager), workers accumulating into
//    thread-local counters that are folded into the shards once per worker.
//  * Reads: CurrentShapes() extracts each shard sorted and k-way merges the
//    runs — identical output to storage::FindShapes (sorted by (pred, id)).
//  * Persistence: binary snapshots (io/binary_io.h) so a front end can build
//    once and reuse the index across runs.
//
// Write-through integration points: storage::Catalog::InsertFact and
// ChaseOptions::shape_index route every tuple/atom insert through the index,
// and core::IsChaseFiniteL's LCheckOptions::shape_index reads it back, which
// turns the db-dependent component of every repeated termination check into
// a dictionary extraction.
//
// Thread safety: Insert/Remove/Contains/Count/NumShapes/CurrentShapes are
// safe to call concurrently. CurrentShapes locks one shard at a time, so it
// is a consistent snapshot only once writers are quiesced (the chase engine
// and the termination checkers alternate phases, so this is the natural
// usage pattern).

#ifndef CHASE_INDEX_SHARDED_SHAPE_INDEX_H_
#define CHASE_INDEX_SHARDED_SHAPE_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "base/sync.h"
#include "logic/database.h"
#include "logic/schema.h"
#include "logic/shape.h"
#include "logic/term.h"
#include "storage/catalog.h"
#include "storage/shape_source.h"

namespace chase {
namespace index {

struct IndexBuildOptions {
  unsigned shards = 0;   // 0 = kDefaultShards
  unsigned threads = 1;  // <= 1 scans serially
  // When non-null the build's scan runs on this caller-owned persistent
  // WorkerPool (its thread count wins over `threads`) — see
  // storage::ParallelTupleScan.
  WorkerPool* pool = nullptr;
};

// Order-independent content fingerprint machinery: every indexed tuple
// contributes a mixed hash of its (pred, tuple) pair, and the index keeps
// the running sum. Two databases with equal fingerprints almost surely hold
// the same multiset of facts, so a remove+insert pair that preserves tuple
// counts (which fools a count-only staleness check) still flips the
// fingerprint. Sums (not XORs) so duplicate tuples don't cancel, and
// removal is subtraction. The uint32_t and Term forms agree on constants
// (a constant id widens to the same 64-bit term encoding).
uint64_t TupleFingerprint(PredId pred, std::span<const uint32_t> tuple);
uint64_t TupleFingerprint(PredId pred, std::span<const Term> tuple);

// The fingerprint a freshly built index over `db` would carry — what the
// snapshot staleness guard compares against.
uint64_t DatabaseFingerprint(const Database& db);

// Implements storage::ShapeWriteThrough so a writable Catalog can
// maintain the index from its insert stream without storage/ ever naming
// this type (the dependency points index -> storage, per layers.toml).
class ShardedShapeIndex final : public storage::ShapeWriteThrough {
 public:
  static constexpr unsigned kDefaultShards = 16;
  static constexpr unsigned kMaxShards = 4096;

  explicit ShardedShapeIndex(unsigned shards = kDefaultShards);

  // Movable (the fingerprint atomic is transferred with relaxed loads;
  // don't move an index other threads are still writing).
  ShardedShapeIndex(ShardedShapeIndex&& other) noexcept;
  ShardedShapeIndex& operator=(ShardedShapeIndex&& other) noexcept;

  // Builds the index from any ShapeSource with `options.threads`
  // range-partitioned scan workers (the PR-1 chunking, so this works over
  // both the row store and the disk pager). Meters the scan into
  // source.stats() exactly like the scan-mode FindShapes.
  [[nodiscard]] static StatusOr<ShardedShapeIndex> Build(
      const storage::ShapeSource& source,
      const IndexBuildOptions& options = {});

  // Convenience: serial build straight from a raw database.
  static ShardedShapeIndex Build(const Database& db,
                                 unsigned shards = kDefaultShards);

  // Records one inserted tuple of `pred`. Thread-safe (per-shard latch).
  // The uint32_t overload serves the row store; the Term overload serves
  // chase instances — a shape depends only on the tuple's equality pattern,
  // so nulls and constants index identically. Both maintain the content
  // fingerprint from the actual tuple.
  void Insert(PredId pred, std::span<const uint32_t> tuple) override {
    AddShape(Shape(pred, IdOf(tuple)), 1, TupleFingerprint(pred, tuple));
  }
  void Insert(PredId pred, std::span<const Term> tuple) {
    AddShape(Shape(pred, IdOf(tuple)), 1, TupleFingerprint(pred, tuple));
  }

  // Records `count` tuples carrying `shape` directly (the write-through fast
  // path when the caller already computed the shape). `fingerprint` is the
  // tuples' total TupleFingerprint contribution; callers that cannot supply
  // it (shape-only replay) pass 0 and forfeit the staleness guard.
  void AddShape(const Shape& shape, uint64_t count = 1,
                uint64_t fingerprint = 0);

  // Records one deleted tuple of `pred`. Fails with kFailedPrecondition if
  // no tuple with that shape is indexed (the counter would go negative).
  [[nodiscard]] Status Remove(PredId pred, std::span<const uint32_t> tuple) {
    return RemoveShape(Shape(pred, IdOf(tuple)),
                       TupleFingerprint(pred, tuple));
  }
  [[nodiscard]] Status Remove(PredId pred, std::span<const Term> tuple) {
    return RemoveShape(Shape(pred, IdOf(tuple)),
                       TupleFingerprint(pred, tuple));
  }
  [[nodiscard]]
  Status RemoveShape(const Shape& shape, uint64_t fingerprint = 0);

  bool Contains(const Shape& shape) const;

  // Number of indexed tuples currently carrying `shape`.
  uint64_t Count(const Shape& shape) const;

  // Distinct shapes currently present (sums the shard sizes).
  size_t NumShapes() const;

  // Total indexed tuples (sum of all counters).
  uint64_t NumIndexedTuples() const;

  // Order-independent content fingerprint of the indexed tuples; equals
  // DatabaseFingerprint(db) for an index maintained from db's update
  // stream. Persisted in snapshots and compared by the staleness guard.
  uint64_t ContentFingerprint() const {
    return fingerprint_.load(std::memory_order_relaxed);
  }

  unsigned num_shards() const {
    return static_cast<unsigned>(shards_.size());
  }

  // Distinct shapes held by one shard — stat / balance diagnostics.
  size_t ShardNumShapes(unsigned shard) const;

  // shape(D) sorted by (pred, id) — same contract as storage::FindShapes:
  // per-shard sorted extraction, then a k-way merge of the runs.
  std::vector<Shape> CurrentShapes() const;

  // Snapshot persistence (format: io/binary_io.h). Load restores the saved
  // shard count.
  [[nodiscard]] Status Save(const std::string& path) const;
  [[nodiscard]]
  static StatusOr<ShardedShapeIndex> Load(const std::string& path);

 private:
  struct Shard {
    mutable Mutex mu;
    std::unordered_map<Shape, uint64_t, ShapeHash> counts GUARDED_BY(mu);
    uint64_t tuples GUARDED_BY(mu) = 0;  // sum of counts
  };

  using CountMap = std::unordered_map<Shape, uint64_t, ShapeHash>;

  // hash(pred, id-tuple) with a final mix so shard choice is decorrelated
  // from the buckets the same hash picks inside the shard map.
  size_t ShardOf(const Shape& shape) const;

  // Folds a worker's thread-local counters in, one shard lock per shard.
  void MergeCounts(const CountMap& counts);

  std::vector<std::unique_ptr<Shard>> shards_;
  // Sum of TupleFingerprint over indexed tuples (see above). Atomic so
  // concurrent writers on different shards maintain it without a global
  // lock.
  std::atomic<uint64_t> fingerprint_{0};
};

}  // namespace index
}  // namespace chase

#endif  // CHASE_INDEX_SHARDED_SHAPE_INDEX_H_
