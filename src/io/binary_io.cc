#include "io/binary_io.h"

#include <cstdio>
#include <memory>

#include "base/bytes.h"

namespace chase {
namespace io {

namespace {

constexpr uint32_t kMagic = 0x4e424843;  // "CHBN"
constexpr uint32_t kVersion = 1;

uint64_t Fnv1a(std::span<const uint8_t> bytes) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (uint8_t b : bytes) {
    hash ^= b;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void PutAtoms(ByteWriter* writer, const std::vector<RuleAtom>& atoms) {
  writer->PutU32(static_cast<uint32_t>(atoms.size()));
  for (const RuleAtom& atom : atoms) {
    writer->PutU32(atom.pred);
    std::vector<uint32_t> args(atom.args.begin(), atom.args.end());
    writer->PutU32Span(args);
  }
}

StatusOr<std::vector<RuleAtom>> GetAtoms(ByteReader* reader,
                                         const Schema& schema) {
  CHASE_ASSIGN_OR_RETURN(uint32_t count, reader->GetU32());
  std::vector<RuleAtom> atoms;
  atoms.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    CHASE_ASSIGN_OR_RETURN(uint32_t pred, reader->GetU32());
    if (pred >= schema.NumPredicates()) {
      return FailedPreconditionError("atom references unknown predicate");
    }
    CHASE_ASSIGN_OR_RETURN(std::vector<uint32_t> args, reader->GetU32Span());
    if (args.size() != schema.Arity(pred)) {
      return FailedPreconditionError("atom arity mismatch");
    }
    atoms.emplace_back(pred, std::vector<VarId>(args.begin(), args.end()));
  }
  return atoms;
}

}  // namespace

std::vector<uint8_t> SerializeProgram(const Schema& schema,
                                      const Database& database,
                                      const std::vector<Tgd>& tgds) {
  ByteWriter payload;
  // Schema.
  payload.PutU32(static_cast<uint32_t>(schema.NumPredicates()));
  for (PredId pred = 0; pred < schema.NumPredicates(); ++pred) {
    payload.PutString(schema.PredicateName(pred));
    payload.PutU32(schema.Arity(pred));
  }
  // Constants.
  payload.PutU32(static_cast<uint32_t>(database.NumNamedConstants()));
  for (uint32_t id = 0; id < database.NumNamedConstants(); ++id) {
    payload.PutString(database.ConstantName(id));
  }
  payload.PutU64(database.NumConstants());
  // Facts.
  for (PredId pred = 0; pred < schema.NumPredicates(); ++pred) {
    payload.PutU32Span(database.Tuples(pred));
  }
  // TGDs.
  payload.PutU32(static_cast<uint32_t>(tgds.size()));
  for (const Tgd& tgd : tgds) {
    PutAtoms(&payload, tgd.body());
    PutAtoms(&payload, tgd.head());
  }

  ByteWriter out;
  out.PutU32(kMagic);
  out.PutU32(kVersion);
  out.PutU64(payload.bytes().size());
  out.PutU64(Fnv1a(payload.bytes()));
  std::vector<uint8_t> result = out.Take();
  result.insert(result.end(), payload.bytes().begin(), payload.bytes().end());
  return result;
}

StatusOr<Program> DeserializeProgram(std::span<const uint8_t> bytes) {
  ByteReader header(bytes);
  CHASE_ASSIGN_OR_RETURN(uint32_t magic, header.GetU32());
  if (magic != kMagic) {
    return FailedPreconditionError("not a chase binary program (bad magic)");
  }
  CHASE_ASSIGN_OR_RETURN(uint32_t version, header.GetU32());
  if (version != kVersion) {
    return FailedPreconditionError("unsupported binary program version " +
                                   std::to_string(version));
  }
  CHASE_ASSIGN_OR_RETURN(uint64_t payload_size, header.GetU64());
  CHASE_ASSIGN_OR_RETURN(uint64_t checksum, header.GetU64());
  if (header.remaining() != payload_size) {
    return OutOfRangeError("binary program payload truncated");
  }
  std::span<const uint8_t> payload = bytes.subspan(bytes.size() -
                                                   payload_size);
  if (Fnv1a(payload) != checksum) {
    return FailedPreconditionError("binary program checksum mismatch");
  }

  ByteReader reader(payload);
  Program program;
  CHASE_ASSIGN_OR_RETURN(uint32_t num_preds, reader.GetU32());
  for (uint32_t i = 0; i < num_preds; ++i) {
    CHASE_ASSIGN_OR_RETURN(std::string name, reader.GetString());
    CHASE_ASSIGN_OR_RETURN(uint32_t arity, reader.GetU32());
    CHASE_ASSIGN_OR_RETURN(PredId pred,
                           program.schema->AddPredicate(name, arity));
    if (pred != i) return InternalError("predicate id mismatch");
  }
  CHASE_ASSIGN_OR_RETURN(uint32_t num_named, reader.GetU32());
  for (uint32_t i = 0; i < num_named; ++i) {
    CHASE_ASSIGN_OR_RETURN(std::string name, reader.GetString());
    program.database->InternConstant(name);
  }
  CHASE_ASSIGN_OR_RETURN(uint64_t domain, reader.GetU64());
  program.database->EnsureAnonymousDomain(domain);
  for (PredId pred = 0; pred < num_preds; ++pred) {
    CHASE_ASSIGN_OR_RETURN(std::vector<uint32_t> tuples,
                           reader.GetU32Span());
    const uint32_t arity = program.schema->Arity(pred);
    if (tuples.size() % arity != 0) {
      return FailedPreconditionError("relation payload not arity-strided");
    }
    for (size_t row = 0; row * arity < tuples.size(); ++row) {
      CHASE_RETURN_IF_ERROR(program.database->AddFact(
          pred, std::span<const uint32_t>(tuples).subspan(row * arity,
                                                          arity)));
    }
  }
  CHASE_ASSIGN_OR_RETURN(uint32_t num_tgds, reader.GetU32());
  program.tgds.reserve(num_tgds);
  for (uint32_t i = 0; i < num_tgds; ++i) {
    CHASE_ASSIGN_OR_RETURN(std::vector<RuleAtom> body,
                           GetAtoms(&reader, *program.schema));
    CHASE_ASSIGN_OR_RETURN(std::vector<RuleAtom> head,
                           GetAtoms(&reader, *program.schema));
    CHASE_ASSIGN_OR_RETURN(Tgd tgd,
                           Tgd::Create(std::move(body), std::move(head)));
    program.tgds.push_back(std::move(tgd));
  }
  if (!reader.AtEnd()) {
    return FailedPreconditionError("trailing bytes after program payload");
  }
  return program;
}

Status SaveProgram(const Schema& schema, const Database& database,
                   const std::vector<Tgd>& tgds, const std::string& path) {
  std::vector<uint8_t> bytes = SerializeProgram(schema, database, tgds);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return InternalError("cannot create file: " + path);
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), file);
  const bool closed = std::fclose(file) == 0;
  if (written != bytes.size() || !closed) {
    return InternalError("short write: " + path);
  }
  return OkStatus();
}

StatusOr<Program> LoadProgram(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return NotFoundError("cannot open file: " + path);
  }
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  const size_t read = std::fread(bytes.data(), 1, bytes.size(), file);
  std::fclose(file);
  if (read != bytes.size()) {
    return InternalError("short read: " + path);
  }
  return DeserializeProgram(bytes);
}

}  // namespace io
}  // namespace chase
