#include "io/binary_io.h"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "base/bytes.h"
#include "base/status.h"
#include "logic/atom.h"
#include "logic/database.h"
#include "logic/parser.h"
#include "logic/schema.h"
#include "logic/term.h"
#include "logic/tgd.h"

namespace chase {
namespace io {

namespace {

constexpr uint32_t kMagic = 0x4e424843;  // "CHBN"
constexpr uint32_t kVersion = 1;
constexpr uint32_t kSnapshotMagic = 0x49534843;  // "CHSI"
// Version 2 added the content fingerprint to the payload header.
constexpr uint32_t kSnapshotVersion = 2;
constexpr uint32_t kCheckpointMagic = 0x4b434843;  // "CHCK"
constexpr uint32_t kCheckpointVersion = 1;
// ChaseVariant has three enumerators (chase/chase_engine.h); the
// deserializer range-checks against this so a resume never reinterprets a
// corrupt variant byte as a different chase.
constexpr uint32_t kNumChaseVariants = 3;

uint64_t Fnv1a(std::span<const uint8_t> bytes) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (uint8_t b : bytes) {
    hash ^= b;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

// The shared artifact envelope: magic | version | payload size | checksum.
std::vector<uint8_t> WrapPayload(uint32_t magic, uint32_t version,
                                 const ByteWriter& payload) {
  ByteWriter out;
  out.PutU32(magic);
  out.PutU32(version);
  out.PutU64(payload.bytes().size());
  out.PutU64(Fnv1a(payload.bytes()));
  std::vector<uint8_t> result = out.Take();
  result.insert(result.end(), payload.bytes().begin(), payload.bytes().end());
  return result;
}

// Validates the envelope and returns the checksummed payload span.
StatusOr<std::span<const uint8_t>> UnwrapPayload(
    uint32_t magic, uint32_t version, std::span<const uint8_t> bytes,
    const char* what) {
  ByteReader header(bytes);
  CHASE_ASSIGN_OR_RETURN(uint32_t got_magic, header.GetU32());
  if (got_magic != magic) {
    return FailedPreconditionError(std::string("not a ") + what +
                                   " (bad magic)");
  }
  CHASE_ASSIGN_OR_RETURN(uint32_t got_version, header.GetU32());
  if (got_version != version) {
    return FailedPreconditionError(std::string("unsupported ") + what +
                                   " version " + std::to_string(got_version));
  }
  CHASE_ASSIGN_OR_RETURN(uint64_t payload_size, header.GetU64());
  CHASE_ASSIGN_OR_RETURN(uint64_t checksum, header.GetU64());
  if (header.remaining() != payload_size) {
    return OutOfRangeError(std::string(what) + " payload truncated");
  }
  std::span<const uint8_t> payload =
      bytes.subspan(bytes.size() - payload_size);
  if (Fnv1a(payload) != checksum) {
    return FailedPreconditionError(std::string(what) + " checksum mismatch");
  }
  return payload;
}

Status WriteFileBytes(std::span<const uint8_t> bytes,
                      const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return InternalError("cannot create file: " + path);
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), file);
  const bool closed = std::fclose(file) == 0;
  if (written != bytes.size() || !closed) {
    return InternalError("short write: " + path);
  }
  return OkStatus();
}

StatusOr<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return NotFoundError("cannot open file: " + path);
  }
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  const size_t read = std::fread(bytes.data(), 1, bytes.size(), file);
  std::fclose(file);
  if (read != bytes.size()) {
    return InternalError("short read: " + path);
  }
  return bytes;
}

void PutAtoms(ByteWriter* writer, const std::vector<RuleAtom>& atoms) {
  writer->PutU32(static_cast<uint32_t>(atoms.size()));
  for (const RuleAtom& atom : atoms) {
    writer->PutU32(atom.pred);
    std::vector<uint32_t> args(atom.args.begin(), atom.args.end());
    writer->PutU32Span(args);
  }
}

StatusOr<std::vector<RuleAtom>> GetAtoms(ByteReader* reader,
                                         const Schema& schema) {
  CHASE_ASSIGN_OR_RETURN(uint32_t count, reader->GetU32());
  std::vector<RuleAtom> atoms;
  atoms.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    CHASE_ASSIGN_OR_RETURN(uint32_t pred, reader->GetU32());
    if (pred >= schema.NumPredicates()) {
      return FailedPreconditionError("atom references unknown predicate");
    }
    CHASE_ASSIGN_OR_RETURN(std::vector<uint32_t> args, reader->GetU32Span());
    if (args.size() != schema.Arity(pred)) {
      return FailedPreconditionError("atom arity mismatch");
    }
    atoms.emplace_back(pred, std::vector<VarId>(args.begin(), args.end()));
  }
  return atoms;
}

}  // namespace

std::vector<uint8_t> SerializeProgram(const Schema& schema,
                                      const Database& database,
                                      const std::vector<Tgd>& tgds) {
  ByteWriter payload;
  // Schema.
  payload.PutU32(static_cast<uint32_t>(schema.NumPredicates()));
  for (PredId pred = 0; pred < schema.NumPredicates(); ++pred) {
    payload.PutString(schema.PredicateName(pred));
    payload.PutU32(schema.Arity(pred));
  }
  // Constants.
  payload.PutU32(static_cast<uint32_t>(database.NumNamedConstants()));
  for (uint32_t id = 0; id < database.NumNamedConstants(); ++id) {
    payload.PutString(database.ConstantName(id));
  }
  payload.PutU64(database.NumConstants());
  // Facts.
  for (PredId pred = 0; pred < schema.NumPredicates(); ++pred) {
    payload.PutU32Span(database.Tuples(pred));
  }
  // TGDs.
  payload.PutU32(static_cast<uint32_t>(tgds.size()));
  for (const Tgd& tgd : tgds) {
    PutAtoms(&payload, tgd.body());
    PutAtoms(&payload, tgd.head());
  }

  return WrapPayload(kMagic, kVersion, payload);
}

StatusOr<Program> DeserializeProgram(std::span<const uint8_t> bytes) {
  CHASE_ASSIGN_OR_RETURN(
      std::span<const uint8_t> payload,
      UnwrapPayload(kMagic, kVersion, bytes, "chase binary program"));

  ByteReader reader(payload);
  Program program;
  CHASE_ASSIGN_OR_RETURN(uint32_t num_preds, reader.GetU32());
  for (uint32_t i = 0; i < num_preds; ++i) {
    CHASE_ASSIGN_OR_RETURN(std::string name, reader.GetString());
    CHASE_ASSIGN_OR_RETURN(uint32_t arity, reader.GetU32());
    CHASE_ASSIGN_OR_RETURN(PredId pred,
                           program.schema->AddPredicate(name, arity));
    if (pred != i) return InternalError("predicate id mismatch");
  }
  CHASE_ASSIGN_OR_RETURN(uint32_t num_named, reader.GetU32());
  for (uint32_t i = 0; i < num_named; ++i) {
    CHASE_ASSIGN_OR_RETURN(std::string name, reader.GetString());
    program.database->InternConstant(name);
  }
  CHASE_ASSIGN_OR_RETURN(uint64_t domain, reader.GetU64());
  program.database->EnsureAnonymousDomain(domain);
  for (PredId pred = 0; pred < num_preds; ++pred) {
    CHASE_ASSIGN_OR_RETURN(std::vector<uint32_t> tuples,
                           reader.GetU32Span());
    const uint32_t arity = program.schema->Arity(pred);
    if (tuples.size() % arity != 0) {
      return FailedPreconditionError("relation payload not arity-strided");
    }
    for (size_t row = 0; row * arity < tuples.size(); ++row) {
      CHASE_RETURN_IF_ERROR(program.database->AddFact(
          pred, std::span<const uint32_t>(tuples).subspan(row * arity,
                                                          arity)));
    }
  }
  CHASE_ASSIGN_OR_RETURN(uint32_t num_tgds, reader.GetU32());
  program.tgds.reserve(num_tgds);
  for (uint32_t i = 0; i < num_tgds; ++i) {
    CHASE_ASSIGN_OR_RETURN(std::vector<RuleAtom> body,
                           GetAtoms(&reader, *program.schema));
    CHASE_ASSIGN_OR_RETURN(std::vector<RuleAtom> head,
                           GetAtoms(&reader, *program.schema));
    CHASE_ASSIGN_OR_RETURN(Tgd tgd,
                           Tgd::Create(std::move(body), std::move(head)));
    program.tgds.push_back(std::move(tgd));
  }
  if (!reader.AtEnd()) {
    return FailedPreconditionError("trailing bytes after program payload");
  }
  return program;
}

Status SaveProgram(const Schema& schema, const Database& database,
                   const std::vector<Tgd>& tgds, const std::string& path) {
  return WriteFileBytes(SerializeProgram(schema, database, tgds), path);
}

StatusOr<Program> LoadProgram(const std::string& path) {
  CHASE_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(path));
  return DeserializeProgram(bytes);
}

// ---------------------------------------------------------------------------
// Shape-index snapshots.

std::vector<uint8_t> SerializeShapeSnapshot(const ShapeSnapshot& snapshot) {
  ByteWriter payload;
  payload.PutU32(snapshot.num_shards);
  payload.PutU64(snapshot.fingerprint);
  payload.PutU64(snapshot.counts.size());
  for (const ShapeCount& entry : snapshot.counts) {
    payload.PutU32(entry.shape.pred);
    payload.PutU8(static_cast<uint8_t>(entry.shape.id.size()));
    for (uint8_t v : entry.shape.id) payload.PutU8(v);
    payload.PutU64(entry.count);
  }
  return WrapPayload(kSnapshotMagic, kSnapshotVersion, payload);
}

StatusOr<ShapeSnapshot> DeserializeShapeSnapshot(
    std::span<const uint8_t> bytes) {
  CHASE_ASSIGN_OR_RETURN(
      std::span<const uint8_t> payload,
      UnwrapPayload(kSnapshotMagic, kSnapshotVersion, bytes,
                    "chase shape snapshot"));

  ByteReader reader(payload);
  ShapeSnapshot snapshot;
  CHASE_ASSIGN_OR_RETURN(snapshot.num_shards, reader.GetU32());
  // Writers only produce shard counts in [1, kMaxSnapshotShards]; loading
  // stays equally strict so a load/save round-trip never rewrites the
  // header (canonical bytes).
  if (snapshot.num_shards == 0 ||
      snapshot.num_shards > kMaxSnapshotShards) {
    return FailedPreconditionError(
        "shape snapshot shard count out of range: " +
        std::to_string(snapshot.num_shards));
  }
  CHASE_ASSIGN_OR_RETURN(snapshot.fingerprint, reader.GetU64());
  CHASE_ASSIGN_OR_RETURN(uint64_t num_entries, reader.GetU64());
  snapshot.counts.reserve(
      std::min<uint64_t>(num_entries, reader.remaining() / 2));
  for (uint64_t i = 0; i < num_entries; ++i) {
    ShapeCount entry;
    CHASE_ASSIGN_OR_RETURN(entry.shape.pred, reader.GetU32());
    CHASE_ASSIGN_OR_RETURN(uint8_t arity, reader.GetU8());
    entry.shape.id.resize(arity);
    uint8_t max_id = 0;
    for (uint8_t j = 0; j < arity; ++j) {
      CHASE_ASSIGN_OR_RETURN(entry.shape.id[j], reader.GetU8());
      // id-tuples are restricted-growth strings: id[0] == 1 and each value
      // is at most one past the running maximum.
      if (entry.shape.id[j] == 0 || entry.shape.id[j] > max_id + 1) {
        return FailedPreconditionError(
            "shape snapshot entry is not a restricted-growth string");
      }
      max_id = std::max(max_id, entry.shape.id[j]);
    }
    CHASE_ASSIGN_OR_RETURN(entry.count, reader.GetU64());
    if (entry.count == 0) {
      return FailedPreconditionError("shape snapshot entry has zero count");
    }
    if (!snapshot.counts.empty() &&
        !(snapshot.counts.back().shape < entry.shape)) {
      return FailedPreconditionError("shape snapshot entries out of order");
    }
    snapshot.counts.push_back(std::move(entry));
  }
  if (!reader.AtEnd()) {
    return FailedPreconditionError("trailing bytes after snapshot payload");
  }
  return snapshot;
}

Status SaveShapeSnapshot(const ShapeSnapshot& snapshot,
                         const std::string& path) {
  return WriteFileBytes(SerializeShapeSnapshot(snapshot), path);
}

StatusOr<ShapeSnapshot> LoadShapeSnapshot(const std::string& path) {
  CHASE_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(path));
  return DeserializeShapeSnapshot(bytes);
}

// ---------------------------------------------------------------------------
// Chase checkpoints.

uint64_t ProgramFingerprint(const Schema& schema, const Database& database,
                            const std::vector<Tgd>& tgds) {
  return Fnv1a(SerializeProgram(schema, database, tgds));
}

std::vector<uint8_t> SerializeChaseCheckpoint(
    const ChaseCheckpoint& checkpoint) {
  ByteWriter payload;
  payload.PutU32(checkpoint.variant);
  payload.PutU64(checkpoint.input_fingerprint);
  payload.PutU64(checkpoint.rounds);
  payload.PutU64(checkpoint.triggers_fired);
  payload.PutU64(checkpoint.triggers_prefiltered);
  payload.PutU64(checkpoint.peak_buffered_homs);
  payload.PutU64(checkpoint.next_null);
  payload.PutU32(static_cast<uint32_t>(checkpoint.relations.size()));
  for (const ChaseCheckpoint::Relation& relation : checkpoint.relations) {
    payload.PutU32(relation.arity);
    payload.PutU64(relation.prev);
    payload.PutU64(relation.cur);
    payload.PutU64(relation.atoms.size() / relation.arity);  // row count
    for (Term term : relation.atoms) payload.PutU64(term);
  }
  payload.PutU64(checkpoint.fired_keys.size());
  for (const std::vector<uint64_t>& key : checkpoint.fired_keys) {
    payload.PutU32(static_cast<uint32_t>(key.size()));
    for (uint64_t value : key) payload.PutU64(value);
  }
  return WrapPayload(kCheckpointMagic, kCheckpointVersion, payload);
}

StatusOr<ChaseCheckpoint> DeserializeChaseCheckpoint(
    std::span<const uint8_t> bytes) {
  CHASE_ASSIGN_OR_RETURN(
      std::span<const uint8_t> payload,
      UnwrapPayload(kCheckpointMagic, kCheckpointVersion, bytes,
                    "chase checkpoint"));

  ByteReader reader(payload);
  ChaseCheckpoint checkpoint;
  CHASE_ASSIGN_OR_RETURN(checkpoint.variant, reader.GetU32());
  if (checkpoint.variant >= kNumChaseVariants) {
    return FailedPreconditionError(
        "chase checkpoint variant out of range: " +
        std::to_string(checkpoint.variant));
  }
  CHASE_ASSIGN_OR_RETURN(checkpoint.input_fingerprint, reader.GetU64());
  CHASE_ASSIGN_OR_RETURN(checkpoint.rounds, reader.GetU64());
  CHASE_ASSIGN_OR_RETURN(checkpoint.triggers_fired, reader.GetU64());
  CHASE_ASSIGN_OR_RETURN(checkpoint.triggers_prefiltered, reader.GetU64());
  CHASE_ASSIGN_OR_RETURN(checkpoint.peak_buffered_homs, reader.GetU64());
  CHASE_ASSIGN_OR_RETURN(checkpoint.next_null, reader.GetU64());
  CHASE_ASSIGN_OR_RETURN(uint32_t num_relations, reader.GetU32());
  checkpoint.relations.reserve(
      std::min<uint64_t>(num_relations, reader.remaining()));
  for (uint32_t i = 0; i < num_relations; ++i) {
    ChaseCheckpoint::Relation relation;
    CHASE_ASSIGN_OR_RETURN(relation.arity, reader.GetU32());
    if (relation.arity == 0 || relation.arity > Schema::kMaxArity) {
      return FailedPreconditionError(
          "chase checkpoint relation arity out of range: " +
          std::to_string(relation.arity));
    }
    CHASE_ASSIGN_OR_RETURN(relation.prev, reader.GetU64());
    CHASE_ASSIGN_OR_RETURN(relation.cur, reader.GetU64());
    CHASE_ASSIGN_OR_RETURN(uint64_t rows, reader.GetU64());
    if (relation.prev > relation.cur || relation.cur > rows) {
      return FailedPreconditionError(
          "chase checkpoint round window past the relation row count");
    }
    // Validate against the remaining length before sizing the buffer, so
    // an adversarial row count cannot force a huge allocation.
    if (rows > reader.remaining() / sizeof(uint64_t) / relation.arity) {
      return OutOfRangeError("chase checkpoint relation truncated");
    }
    relation.atoms.resize(rows * relation.arity);
    for (Term& term : relation.atoms) {
      CHASE_ASSIGN_OR_RETURN(term, reader.GetU64());
    }
    checkpoint.relations.push_back(std::move(relation));
  }
  CHASE_ASSIGN_OR_RETURN(uint64_t num_keys, reader.GetU64());
  checkpoint.fired_keys.reserve(
      std::min<uint64_t>(num_keys, reader.remaining()));
  for (uint64_t i = 0; i < num_keys; ++i) {
    CHASE_ASSIGN_OR_RETURN(uint32_t key_size, reader.GetU32());
    if (key_size == 0) {
      return FailedPreconditionError("chase checkpoint fired key is empty");
    }
    if (key_size > reader.remaining() / sizeof(uint64_t)) {
      return OutOfRangeError("chase checkpoint fired keys truncated");
    }
    std::vector<uint64_t> key(key_size);
    for (uint64_t& value : key) {
      CHASE_ASSIGN_OR_RETURN(value, reader.GetU64());
    }
    // Strictly ascending keeps checkpoint bytes canonical for a state and
    // makes duplicates impossible by construction.
    if (!checkpoint.fired_keys.empty() &&
        !(checkpoint.fired_keys.back() < key)) {
      return FailedPreconditionError(
          "chase checkpoint fired keys out of order");
    }
    checkpoint.fired_keys.push_back(std::move(key));
  }
  if (!reader.AtEnd()) {
    return FailedPreconditionError(
        "trailing bytes after checkpoint payload");
  }
  return checkpoint;
}

Status SaveChaseCheckpoint(const ChaseCheckpoint& checkpoint,
                           const std::string& path) {
  // Write-temp-then-rename: rename(2) within a filesystem is atomic, so
  // `path` always holds either the previous complete checkpoint or the new
  // one — never a torn mix, whatever signal or crash lands mid-write.
  const std::string tmp = path + ".tmp";
  CHASE_RETURN_IF_ERROR(
      WriteFileBytes(SerializeChaseCheckpoint(checkpoint), tmp));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return InternalError("cannot rename " + tmp + " to " + path);
  }
  return OkStatus();
}

StatusOr<ChaseCheckpoint> LoadChaseCheckpoint(const std::string& path) {
  CHASE_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(path));
  return DeserializeChaseCheckpoint(bytes);
}

}  // namespace io
}  // namespace chase
