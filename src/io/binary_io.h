// Binary serialization for programs (schema + database + TGDs) and for
// shape-index snapshots.
//
// The text format (logic/parser.h) is the interchange format; this binary
// format is the fast path for large generated workloads: loading skips
// lexing, predicate interning by name, and TGD re-normalization. The
// benches' 100K-rule inputs parse in seconds but load in tens of
// milliseconds, and chasectl uses it to snapshot generated scenarios.
//
// Both artifact kinds share one envelope (little-endian):
//   magic | format version | payload size | FNV-1a payload checksum
//
// Program payload (magic "CHBN"):
//   schema   : predicate count, then (name, arity) per predicate
//   constants: named-constant count + names, anonymous domain size
//   facts    : per predicate, the flat arity-strided tuple array
//   tgds     : per TGD, body and head atom lists (pred + variable ids)
//
// Shape-snapshot payload (magic "CHSI", version 2): shard count, the
// order-independent content fingerprint of the indexed tuples (the
// staleness guard of `chasectl check --shapes=index --snapshot`, maintained
// by the write-through paths), then the (pred, id-tuple, counter) entries
// sorted strictly by shape, so snapshot bytes are canonical for a given
// index state.
//
// Chase-checkpoint payload (magic "CHCK"): the complete state of a chase
// at a round boundary — variant, input fingerprint, result counters, the
// null counter, per-predicate atoms (insertion order, arity-strided terms)
// with the semi-naive round-window watermarks, and the fired-trigger dedup
// keys sorted lexicographically — so `chasectl chase --resume=FILE`
// bit-identically continues the run (see chase/chase_engine.h).
//
// Loading validates the checksum before parsing, and every read is bounds-
// checked (ByteReader), so corrupt or truncated files fail cleanly.

#ifndef CHASE_IO_BINARY_IO_H_
#define CHASE_IO_BINARY_IO_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "logic/database.h"
#include "logic/parser.h"
#include "logic/schema.h"
#include "logic/shape.h"
#include "logic/term.h"
#include "logic/tgd.h"

namespace chase {
namespace io {

// Serializes a program to bytes / a file.
std::vector<uint8_t> SerializeProgram(const Schema& schema,
                                      const Database& database,
                                      const std::vector<Tgd>& tgds);
[[nodiscard]] Status SaveProgram(const Schema& schema, const Database& database,
                   const std::vector<Tgd>& tgds, const std::string& path);

// Deserializes; fails with kFailedPrecondition on bad magic/version/
// checksum and kOutOfRange on truncation.
[[nodiscard]]
StatusOr<Program> DeserializeProgram(std::span<const uint8_t> bytes);
[[nodiscard]] StatusOr<Program> LoadProgram(const std::string& path);

// ---------------------------------------------------------------------------
// Shape-index snapshots (index/sharded_shape_index.h): the materialized
// shape(D) multiset, persisted so a front end builds the index once and
// reuses it across runs.

// Largest shard count a well-formed snapshot may declare; kept equal to
// index::ShardedShapeIndex::kMaxShards (static_assert'd there) so strict
// loading never has to clamp.
inline constexpr uint32_t kMaxSnapshotShards = 4096;

struct ShapeCount {
  Shape shape;
  uint64_t count = 0;
};

struct ShapeSnapshot {
  uint32_t num_shards = 0;
  // Sum of index::TupleFingerprint over the indexed tuples.
  uint64_t fingerprint = 0;
  // Sorted strictly by shape (enforced on load); counts are positive.
  std::vector<ShapeCount> counts;
};

std::vector<uint8_t> SerializeShapeSnapshot(const ShapeSnapshot& snapshot);
[[nodiscard]] Status SaveShapeSnapshot(const ShapeSnapshot& snapshot,
                         const std::string& path);

// Fails with kFailedPrecondition on bad magic/version/checksum, malformed
// id-tuples (every id must be a restricted-growth string), zero counts, or
// out-of-order entries; kOutOfRange on truncation.
[[nodiscard]] StatusOr<ShapeSnapshot> DeserializeShapeSnapshot(
    std::span<const uint8_t> bytes);
[[nodiscard]]
StatusOr<ShapeSnapshot> LoadShapeSnapshot(const std::string& path);

// ---------------------------------------------------------------------------
// Chase checkpoints (chase/chase_engine.h): everything a chase needs to
// continue from a round boundary exactly as if it had never stopped.
// Written periodically and on SIGUSR1/SIGTERM by RunChase, consumed by
// ChaseOptions::resume / `chasectl chase --resume=FILE`.

struct ChaseCheckpoint {
  // ChaseVariant as its underlying value (range-checked on load; RunChase
  // additionally requires it to match the resuming run's options).
  uint32_t variant = 0;
  // ProgramFingerprint of the (schema, database, TGDs) the chase ran on.
  // Resuming against a different program fails with kInvalidArgument —
  // never a silently divergent chase.
  uint64_t input_fingerprint = 0;
  // ChaseResult counters at the boundary.
  uint64_t rounds = 0;
  uint64_t triggers_fired = 0;
  uint64_t triggers_prefiltered = 0;
  uint64_t peak_buffered_homs = 0;
  // The instance's null counter (= the next null id to be handed out).
  uint64_t next_null = 0;
  struct Relation {
    uint32_t arity = 0;
    // The semi-naive round window: rows below `prev` existed before the
    // last completed round, rows below `cur` exist now. prev <= cur <=
    // row count (enforced on load).
    uint64_t prev = 0;
    uint64_t cur = 0;
    // Every atom of the predicate as arity-strided flat terms in
    // insertion order. The order IS the state: resume replays it, so the
    // by-predicate layout — and with it every downstream enumeration —
    // is bit-identical to the run that wrote the checkpoint.
    std::vector<Term> atoms;
  };
  // One entry per schema predicate, in predicate-id order.
  std::vector<Relation> relations;
  // Fired-trigger dedup keys ([rule, binding...]; oblivious and
  // semi-oblivious variants only — empty for restricted), sorted strictly
  // ascending so checkpoint bytes are canonical for a given chase state.
  std::vector<std::vector<uint64_t>> fired_keys;
};

// The identity of a chase input: FNV-1a over the serialized program.
uint64_t ProgramFingerprint(const Schema& schema, const Database& database,
                            const std::vector<Tgd>& tgds);

std::vector<uint8_t> SerializeChaseCheckpoint(
    const ChaseCheckpoint& checkpoint);
// Atomic: writes `path + ".tmp"`, then renames over `path`, so a reader —
// or a crash mid-write — never observes a torn checkpoint; the previous
// complete checkpoint stays intact until the new one fully lands.
[[nodiscard]] Status SaveChaseCheckpoint(const ChaseCheckpoint& checkpoint,
                           const std::string& path);

// Fails with kFailedPrecondition on bad magic/version/checksum, a variant
// out of range, malformed relations (zero or oversized arity, watermarks
// past the row count, terms not arity-strided), unsorted fired keys, or
// trailing bytes; kOutOfRange on truncation.
[[nodiscard]] StatusOr<ChaseCheckpoint> DeserializeChaseCheckpoint(
    std::span<const uint8_t> bytes);
[[nodiscard]]
StatusOr<ChaseCheckpoint> LoadChaseCheckpoint(const std::string& path);

}  // namespace io
}  // namespace chase

#endif  // CHASE_IO_BINARY_IO_H_
