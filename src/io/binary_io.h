// Binary serialization for programs (schema + database + TGDs).
//
// The text format (logic/parser.h) is the interchange format; this binary
// format is the fast path for large generated workloads: loading skips
// lexing, predicate interning by name, and TGD re-normalization. The
// benches' 100K-rule inputs parse in seconds but load in tens of
// milliseconds, and chasectl uses it to snapshot generated scenarios.
//
// Layout (little-endian):
//   magic "CHBN" | format version | payload bytes | FNV-1a checksum
//   schema   : predicate count, then (name, arity) per predicate
//   constants: named-constant count + names, anonymous domain size
//   facts    : per predicate, the flat arity-strided tuple array
//   tgds     : per TGD, body and head atom lists (pred + variable ids)
//
// Loading validates the checksum before parsing, and every read is bounds-
// checked (ByteReader), so corrupt or truncated files fail cleanly.

#ifndef CHASE_IO_BINARY_IO_H_
#define CHASE_IO_BINARY_IO_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "logic/parser.h"

namespace chase {
namespace io {

// Serializes a program to bytes / a file.
std::vector<uint8_t> SerializeProgram(const Schema& schema,
                                      const Database& database,
                                      const std::vector<Tgd>& tgds);
Status SaveProgram(const Schema& schema, const Database& database,
                   const std::vector<Tgd>& tgds, const std::string& path);

// Deserializes; fails with kFailedPrecondition on bad magic/version/
// checksum and kOutOfRange on truncation.
StatusOr<Program> DeserializeProgram(std::span<const uint8_t> bytes);
StatusOr<Program> LoadProgram(const std::string& path);

}  // namespace io
}  // namespace chase

#endif  // CHASE_IO_BINARY_IO_H_
