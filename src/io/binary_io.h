// Binary serialization for programs (schema + database + TGDs) and for
// shape-index snapshots.
//
// The text format (logic/parser.h) is the interchange format; this binary
// format is the fast path for large generated workloads: loading skips
// lexing, predicate interning by name, and TGD re-normalization. The
// benches' 100K-rule inputs parse in seconds but load in tens of
// milliseconds, and chasectl uses it to snapshot generated scenarios.
//
// Both artifact kinds share one envelope (little-endian):
//   magic | format version | payload size | FNV-1a payload checksum
//
// Program payload (magic "CHBN"):
//   schema   : predicate count, then (name, arity) per predicate
//   constants: named-constant count + names, anonymous domain size
//   facts    : per predicate, the flat arity-strided tuple array
//   tgds     : per TGD, body and head atom lists (pred + variable ids)
//
// Shape-snapshot payload (magic "CHSI", version 2): shard count, the
// order-independent content fingerprint of the indexed tuples (the
// staleness guard of `chasectl check --shapes=index --snapshot`, maintained
// by the write-through paths), then the (pred, id-tuple, counter) entries
// sorted strictly by shape, so snapshot bytes are canonical for a given
// index state.
//
// Loading validates the checksum before parsing, and every read is bounds-
// checked (ByteReader), so corrupt or truncated files fail cleanly.

#ifndef CHASE_IO_BINARY_IO_H_
#define CHASE_IO_BINARY_IO_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "logic/parser.h"
#include "logic/shape.h"

namespace chase {
namespace io {

// Serializes a program to bytes / a file.
std::vector<uint8_t> SerializeProgram(const Schema& schema,
                                      const Database& database,
                                      const std::vector<Tgd>& tgds);
Status SaveProgram(const Schema& schema, const Database& database,
                   const std::vector<Tgd>& tgds, const std::string& path);

// Deserializes; fails with kFailedPrecondition on bad magic/version/
// checksum and kOutOfRange on truncation.
StatusOr<Program> DeserializeProgram(std::span<const uint8_t> bytes);
StatusOr<Program> LoadProgram(const std::string& path);

// ---------------------------------------------------------------------------
// Shape-index snapshots (index/sharded_shape_index.h): the materialized
// shape(D) multiset, persisted so a front end builds the index once and
// reuses it across runs.

// Largest shard count a well-formed snapshot may declare; kept equal to
// index::ShardedShapeIndex::kMaxShards (static_assert'd there) so strict
// loading never has to clamp.
inline constexpr uint32_t kMaxSnapshotShards = 4096;

struct ShapeCount {
  Shape shape;
  uint64_t count = 0;
};

struct ShapeSnapshot {
  uint32_t num_shards = 0;
  // Sum of index::TupleFingerprint over the indexed tuples.
  uint64_t fingerprint = 0;
  // Sorted strictly by shape (enforced on load); counts are positive.
  std::vector<ShapeCount> counts;
};

std::vector<uint8_t> SerializeShapeSnapshot(const ShapeSnapshot& snapshot);
Status SaveShapeSnapshot(const ShapeSnapshot& snapshot,
                         const std::string& path);

// Fails with kFailedPrecondition on bad magic/version/checksum, malformed
// id-tuples (every id must be a restricted-growth string), zero counts, or
// out-of-order entries; kOutOfRange on truncation.
StatusOr<ShapeSnapshot> DeserializeShapeSnapshot(
    std::span<const uint8_t> bytes);
StatusOr<ShapeSnapshot> LoadShapeSnapshot(const std::string& path);

}  // namespace io
}  // namespace chase

#endif  // CHASE_IO_BINARY_IO_H_
