#include "logic/atom.h"

namespace chase {

std::vector<uint32_t> RuleAtom::PositionsOf(VarId var) const {
  std::vector<uint32_t> positions;
  for (uint32_t i = 0; i < args.size(); ++i) {
    if (args[i] == var) positions.push_back(i);
  }
  return positions;
}

bool RuleAtom::HasDistinctVars() const {
  for (size_t i = 0; i < args.size(); ++i) {
    for (size_t j = i + 1; j < args.size(); ++j) {
      if (args[i] == args[j]) return false;
    }
  }
  return true;
}

}  // namespace chase
