// Rule atoms (atoms over variables, used in TGD bodies and heads) and ground
// atoms (atoms over constants/nulls, used in instances).

#ifndef CHASE_LOGIC_ATOM_H_
#define CHASE_LOGIC_ATOM_H_

#include <cstdint>
#include <vector>

#include "logic/schema.h"
#include "logic/term.h"

namespace chase {

// Per-rule variable index. TGDs are constant-free (Section 2), so rule atoms
// carry only variables.
using VarId = uint32_t;

struct RuleAtom {
  PredId pred = 0;
  std::vector<VarId> args;

  RuleAtom() = default;
  RuleAtom(PredId p, std::vector<VarId> a) : pred(p), args(std::move(a)) {}

  // pos(atom, var): the 0-based argument indices at which `var` occurs.
  std::vector<uint32_t> PositionsOf(VarId var) const;

  // True if no variable occurs more than once (the "simple" condition).
  bool HasDistinctVars() const;

  friend bool operator==(const RuleAtom& a, const RuleAtom& b) {
    return a.pred == b.pred && a.args == b.args;
  }
};

struct GroundAtom {
  PredId pred = 0;
  std::vector<Term> args;

  GroundAtom() = default;
  GroundAtom(PredId p, std::vector<Term> a) : pred(p), args(std::move(a)) {}

  friend bool operator==(const GroundAtom& a, const GroundAtom& b) {
    return a.pred == b.pred && a.args == b.args;
  }
};

struct GroundAtomHash {
  size_t operator()(const GroundAtom& atom) const {
    uint64_t h = 0x9e3779b97f4a7c15ULL ^ atom.pred;
    for (Term t : atom.args) {
      h ^= t + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace chase

#endif  // CHASE_LOGIC_ATOM_H_
