#include "logic/database.h"

#include "base/status.h"
#include "logic/schema.h"

namespace chase {

Status Database::AddFact(PredId pred, std::span<const uint32_t> tuple) {
  if (pred >= schema_->NumPredicates()) {
    return InvalidArgumentError("unknown predicate id " + std::to_string(pred));
  }
  if (tuple.size() != schema_->Arity(pred)) {
    return InvalidArgumentError(
        "fact for '" + schema_->PredicateName(pred) + "' has " +
        std::to_string(tuple.size()) + " arguments, expected " +
        std::to_string(schema_->Arity(pred)));
  }
  if (pred >= relations_.size()) relations_.resize(pred + 1);
  relations_[pred].insert(relations_[pred].end(), tuple.begin(), tuple.end());
  return OkStatus();
}

std::vector<PredId> Database::NonEmptyPredicates() const {
  std::vector<PredId> preds;
  for (PredId pred = 0; pred < relations_.size(); ++pred) {
    if (!relations_[pred].empty()) preds.push_back(pred);
  }
  return preds;
}

size_t Database::TotalFacts() const {
  size_t total = 0;
  for (PredId pred = 0; pred < relations_.size(); ++pred) {
    total += NumTuples(pred);
  }
  return total;
}

}  // namespace chase
