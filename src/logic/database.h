// A database: a finite set of facts (atoms over constants) grouped by
// predicate. Tuples are stored as flat, arity-strided arrays of interned
// constant ids — the same layout the storage engine scans.

#ifndef CHASE_LOGIC_DATABASE_H_
#define CHASE_LOGIC_DATABASE_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "base/status.h"
#include "logic/schema.h"
#include "logic/symbols.h"

namespace chase {

class Database {
 public:
  // `schema` must outlive the database.
  explicit Database(const Schema* schema) : schema_(schema) {}

  const Schema& schema() const { return *schema_; }

  uint32_t InternConstant(std::string_view name) {
    return constants_.Intern(name);
  }

  // Generators use an anonymous integer domain {0, ..., size-1} instead of
  // interned names; anonymous constants print as "c<id>".
  void EnsureAnonymousDomain(uint64_t size) {
    anonymous_domain_ = std::max(anonymous_domain_, size);
  }

  std::string ConstantName(uint32_t constant_id) const {
    if (constant_id < constants_.size()) {
      return constants_.NameOf(constant_id);
    }
    return "c" + std::to_string(constant_id);
  }
  size_t NumConstants() const {
    return std::max<size_t>(constants_.size(), anonymous_domain_);
  }

  // Constants with interned names (ids [0, NumNamedConstants())); ids beyond
  // belong to the anonymous integer domain.
  size_t NumNamedConstants() const { return constants_.size(); }

  // Appends a fact; `tuple` must match the predicate arity.
  [[nodiscard]] Status AddFact(PredId pred, std::span<const uint32_t> tuple);

  // Number of tuples currently stored for `pred`.
  size_t NumTuples(PredId pred) const {
    if (pred >= relations_.size()) return 0;
    const uint32_t arity = schema_->Arity(pred);
    return relations_[pred].size() / arity;
  }

  // Flat tuple storage for `pred` (stride = arity). Empty if no facts.
  std::span<const uint32_t> Tuples(PredId pred) const {
    static const std::vector<uint32_t> kEmpty;
    return pred < relations_.size() ? std::span<const uint32_t>(relations_[pred])
                                    : std::span<const uint32_t>(kEmpty);
  }

  // One tuple by index.
  std::span<const uint32_t> Tuple(PredId pred, size_t row) const {
    const uint32_t arity = schema_->Arity(pred);
    return std::span<const uint32_t>(relations_[pred])
        .subspan(row * arity, arity);
  }

  bool IsEmpty(PredId pred) const { return NumTuples(pred) == 0; }

  // The predicates with at least one fact; this is what the paper's catalog
  // query ("list of non-empty relations", Section 5.3) returns.
  std::vector<PredId> NonEmptyPredicates() const;

  size_t TotalFacts() const;

 private:
  const Schema* schema_;
  SymbolTable constants_;
  uint64_t anonymous_domain_ = 0;
  std::vector<std::vector<uint32_t>> relations_;  // indexed by PredId
};

}  // namespace chase

#endif  // CHASE_LOGIC_DATABASE_H_
