#include "logic/parser.h"

#include "base/status.h"
#include "logic/atom.h"
#include "logic/database.h"
#include "logic/schema.h"
#include "logic/tgd.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_map>

namespace chase {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '?';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '\'';
}
bool IsVarStart(char c) {
  return (c >= 'A' && c <= 'Z') || c == '_' || c == '?';
}

// One statement's worth of parsed atoms, before conversion to Tgd / fact.
struct ParsedTerm {
  std::string_view text;
  bool is_variable;
};
struct ParsedAtom {
  std::string_view pred;
  std::vector<ParsedTerm> args;
};

class Parser {
 public:
  Parser(std::string_view text, Program* program, bool rules_only)
      : text_(text), program_(program), rules_only_(rules_only) {}

  Status Run() {
    while (true) {
      SkipTrivia();
      if (AtEnd()) return OkStatus();
      CHASE_RETURN_IF_ERROR(ParseStatement());
    }
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipTrivia() {
    while (!AtEnd()) {
      char c = Peek();
      if (c == ' ' || c == '\t' || c == '\r') {
        ++pos_;
      } else if (c == '\n') {
        ++pos_;
        ++line_;
        line_start_ = pos_;
      } else if (c == '%' || c == '#') {
        while (!AtEnd() && Peek() != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Status Error(const std::string& message) const {
    return InvalidArgumentError("parse error at line " + std::to_string(line_) +
                                ":" + std::to_string(pos_ - line_start_ + 1) +
                                ": " + message);
  }

  bool Consume(char expected) {
    if (!AtEnd() && Peek() == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeArrow() {
    if (pos_ + 1 < text_.size() && text_[pos_] == '-' &&
        text_[pos_ + 1] == '>') {
      pos_ += 2;
      return true;
    }
    return false;
  }

  // Reads an identifier or number token.
  StatusOr<std::string_view> ReadName() {
    if (AtEnd()) return Error("unexpected end of input, expected a name");
    char c = Peek();
    if (c == '"' || c == '\'') {
      const char quote = c;
      size_t start = ++pos_;
      while (!AtEnd() && Peek() != quote) ++pos_;
      if (AtEnd()) return Error("unterminated quoted name");
      std::string_view name = text_.substr(start, pos_ - start);
      ++pos_;  // closing quote
      return name;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
      return text_.substr(start, pos_ - start);
    }
    if (!IsIdentStart(c)) {
      return Error(std::string("unexpected character '") + c + "'");
    }
    size_t start = pos_;
    ++pos_;
    while (!AtEnd() && IsIdentChar(Peek())) ++pos_;
    return text_.substr(start, pos_ - start);
  }

  StatusOr<ParsedAtom> ParseAtom() {
    CHASE_ASSIGN_OR_RETURN(std::string_view pred, ReadName());
    SkipTrivia();
    if (!Consume('(')) return Error("expected '(' after predicate name");
    ParsedAtom atom;
    atom.pred = pred;
    do {
      SkipTrivia();
      size_t term_start = pos_;
      CHASE_ASSIGN_OR_RETURN(std::string_view term, ReadName());
      const char first = text_[term_start];
      const bool quoted = first == '"' || first == '\'';
      atom.args.push_back(ParsedTerm{term, !quoted && IsVarStart(first)});
      SkipTrivia();
    } while (Consume(','));
    if (!Consume(')')) return Error("expected ')' or ',' in atom");
    return atom;
  }

  StatusOr<std::vector<ParsedAtom>> ParseAtomList() {
    std::vector<ParsedAtom> atoms;
    do {
      SkipTrivia();
      CHASE_ASSIGN_OR_RETURN(ParsedAtom atom, ParseAtom());
      atoms.push_back(std::move(atom));
      SkipTrivia();
    } while (Consume(','));
    return atoms;
  }

  Status ParseStatement() {
    CHASE_ASSIGN_OR_RETURN(std::vector<ParsedAtom> body, ParseAtomList());
    SkipTrivia();
    if (ConsumeArrow()) {
      return FinishRule(std::move(body));
    }
    if (!Consume('.')) return Error("expected '.' or '->' after atom(s)");
    if (rules_only_) return Error("facts are not allowed in a rule file");
    if (body.size() != 1) {
      return Error("a fact must consist of a single atom");
    }
    return AddFact(body[0]);
  }

  Status FinishRule(std::vector<ParsedAtom> body) {
    SkipTrivia();
    // Optional "exists V1, V2 :" prefix; the listed variables must be
    // head-only, which Tgd::Create enforces structurally, so the list is
    // validated and otherwise ignored.
    std::vector<std::string_view> declared_existentials;
    if (PeekKeyword("exists")) {
      pos_ += 6;
      do {
        SkipTrivia();
        CHASE_ASSIGN_OR_RETURN(std::string_view var, ReadName());
        if (!IsVarStart(var[0])) {
          return Error("'exists' list must contain variables");
        }
        declared_existentials.push_back(var);
        SkipTrivia();
      } while (Consume(','));
      if (!Consume(':')) return Error("expected ':' after 'exists' list");
    }
    SkipTrivia();
    CHASE_ASSIGN_OR_RETURN(std::vector<ParsedAtom> head, ParseAtomList());
    SkipTrivia();
    if (!Consume('.')) return Error("expected '.' at end of rule");

    var_ids_.clear();
    CHASE_ASSIGN_OR_RETURN(std::vector<RuleAtom> body_atoms,
                           ConvertRuleAtoms(body));
    const size_t num_body_vars = var_ids_.size();
    CHASE_ASSIGN_OR_RETURN(std::vector<RuleAtom> head_atoms,
                           ConvertRuleAtoms(head));
    for (std::string_view var : declared_existentials) {
      auto it = var_ids_.find(var);
      if (it == var_ids_.end()) {
        return Error("existential variable '" + std::string(var) +
                     "' does not occur in the head");
      }
      if (it->second < num_body_vars) {
        return Error("variable '" + std::string(var) +
                     "' is declared existential but occurs in the body");
      }
    }
    auto tgd = Tgd::Create(std::move(body_atoms), std::move(head_atoms));
    if (!tgd.ok()) return Error(std::string(tgd.status().message()));
    program_->tgds.push_back(std::move(tgd).value());
    return OkStatus();
  }

  bool PeekKeyword(std::string_view keyword) {
    if (text_.substr(pos_, keyword.size()) != keyword) return false;
    const size_t after = pos_ + keyword.size();
    return after >= text_.size() || !IsIdentChar(text_[after]);
  }

  StatusOr<std::vector<RuleAtom>> ConvertRuleAtoms(
      const std::vector<ParsedAtom>& atoms) {
    std::vector<RuleAtom> out;
    out.reserve(atoms.size());
    for (const ParsedAtom& atom : atoms) {
      auto pred = program_->schema->GetOrAddPredicate(
          atom.pred, static_cast<uint32_t>(atom.args.size()));
      if (!pred.ok()) return Error(std::string(pred.status().message()));
      RuleAtom rule_atom;
      rule_atom.pred = pred.value();
      rule_atom.args.reserve(atom.args.size());
      for (const ParsedTerm& term : atom.args) {
        if (!term.is_variable) {
          return Error("constants are not allowed in rules (TGDs are "
                       "constant-free): '" +
                       std::string(term.text) + "'");
        }
        auto [it, inserted] = var_ids_.emplace(
            term.text, static_cast<VarId>(var_ids_.size()));
        rule_atom.args.push_back(it->second);
        (void)inserted;
      }
      out.push_back(std::move(rule_atom));
    }
    return out;
  }

  Status AddFact(const ParsedAtom& atom) {
    auto pred = program_->schema->GetOrAddPredicate(
        atom.pred, static_cast<uint32_t>(atom.args.size()));
    if (!pred.ok()) return Error(std::string(pred.status().message()));
    tuple_buffer_.clear();
    for (const ParsedTerm& term : atom.args) {
      if (term.is_variable) {
        return Error("variables are not allowed in facts: '" +
                     std::string(term.text) + "'");
      }
      tuple_buffer_.push_back(program_->database->InternConstant(term.text));
    }
    auto status = program_->database->AddFact(pred.value(), tuple_buffer_);
    if (!status.ok()) return Error(std::string(status.message()));
    return OkStatus();
  }

  std::string_view text_;
  Program* program_;
  bool rules_only_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t line_start_ = 0;
  std::unordered_map<std::string_view, VarId> var_ids_;
  std::vector<uint32_t> tuple_buffer_;
};

}  // namespace

StatusOr<Program> ParseProgram(std::string_view text) {
  Program program;
  CHASE_RETURN_IF_ERROR(ParseProgramInto(text, &program));
  return program;
}

Status ParseProgramInto(std::string_view text, Program* program) {
  Parser parser(text, program, /*rules_only=*/false);
  return parser.Run();
}

StatusOr<Program> ParseProgramFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseProgram(buffer.str());
}

StatusOr<std::vector<Tgd>> ParseTgds(std::string_view text, Schema* schema) {
  // Route through a Program that borrows the caller's schema.
  Program program;
  program.schema.reset(schema);
  program.database = std::make_unique<Database>(schema);
  Parser parser(text, &program, /*rules_only=*/true);
  Status status = parser.Run();
  program.schema.release();  // not owned
  if (!status.ok()) return status;
  return std::move(program.tgds);
}

StatusOr<Tgd> ParseTgd(std::string_view text, Schema* schema) {
  CHASE_ASSIGN_OR_RETURN(std::vector<Tgd> tgds, ParseTgds(text, schema));
  if (tgds.size() != 1) {
    return InvalidArgumentError("expected exactly one rule, found " +
                                std::to_string(tgds.size()));
  }
  return std::move(tgds[0]);
}

}  // namespace chase
