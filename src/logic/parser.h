// Hand-written recursive-descent parser for rule/data files.
//
// Syntax (Datalog± style):
//
//   % comment           # comment
//   r(X, Y) -> exists Z : s(Y, Z), t(Z).   % a TGD; "exists ... :" optional
//   r(X, Y) -> s(Y, Z).                    % head-only vars are existential
//   r(a, b).                               % a fact (ground atom)
//
// Variables start with an upper-case letter, '_' or '?'; constants are
// lower-case identifiers, numbers, or quoted strings. TGDs are constant-free
// (Section 2), so constants in rules and variables in facts are rejected.
// The schema is discovered from use; inconsistent arities are errors.

#ifndef CHASE_LOGIC_PARSER_H_
#define CHASE_LOGIC_PARSER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "logic/database.h"
#include "logic/schema.h"
#include "logic/tgd.h"

namespace chase {

// A parsed rule/data file: the discovered schema, the facts, and the TGDs.
// The database references the schema, so both live behind stable pointers.
struct Program {
  std::unique_ptr<Schema> schema;
  std::unique_ptr<Database> database;
  std::vector<Tgd> tgds;

  Program()
      : schema(std::make_unique<Schema>()),
        database(std::make_unique<Database>(schema.get())) {}
};

// Parses a complete program (rules and facts).
[[nodiscard]] StatusOr<Program> ParseProgram(std::string_view text);

// Parses `text` into an existing program (incremental loading).
[[nodiscard]] Status ParseProgramInto(std::string_view text, Program* program);

// Parses a file from disk.
[[nodiscard]] StatusOr<Program> ParseProgramFile(const std::string& path);

// Parses rules only, interning predicates into `schema`. Facts are rejected.
[[nodiscard]]
StatusOr<std::vector<Tgd>> ParseTgds(std::string_view text, Schema* schema);

// Parses exactly one rule.
[[nodiscard]] StatusOr<Tgd> ParseTgd(std::string_view text, Schema* schema);

}  // namespace chase

#endif  // CHASE_LOGIC_PARSER_H_
