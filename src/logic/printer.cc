#include "logic/printer.h"

#include "logic/atom.h"
#include "logic/database.h"
#include "logic/schema.h"
#include "logic/term.h"
#include "logic/tgd.h"

#include <sstream>

namespace chase {
namespace {

void AppendAtom(const Schema& schema, const Tgd& tgd, const RuleAtom& atom,
                std::string& out) {
  out += schema.PredicateName(atom.pred);
  out += '(';
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (i > 0) out += ',';
    out += VariableName(tgd, atom.args[i]);
  }
  out += ')';
}

}  // namespace

std::string VariableName(const Tgd& tgd, VarId var) {
  if (tgd.IsUniversal(var)) return "X" + std::to_string(var);
  return "Z" + std::to_string(var - tgd.num_universal());
}

std::string ToString(const Schema& schema, const Tgd& tgd,
                     const RuleAtom& atom) {
  std::string out;
  AppendAtom(schema, tgd, atom, out);
  return out;
}

std::string ToString(const Schema& schema, const Tgd& tgd) {
  std::string out;
  for (size_t i = 0; i < tgd.body().size(); ++i) {
    if (i > 0) out += ", ";
    AppendAtom(schema, tgd, tgd.body()[i], out);
  }
  out += " -> ";
  for (size_t i = 0; i < tgd.head().size(); ++i) {
    if (i > 0) out += ", ";
    AppendAtom(schema, tgd, tgd.head()[i], out);
  }
  out += '.';
  return out;
}

std::string ToString(const Schema& schema, const Database& database,
                     const GroundAtom& atom) {
  std::string out = schema.PredicateName(atom.pred);
  out += '(';
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (i > 0) out += ',';
    const Term term = atom.args[i];
    if (IsNull(term)) {
      out += "_:n" + std::to_string(NullId(term));
    } else {
      out += database.ConstantName(ConstantId(term));
    }
  }
  out += ')';
  return out;
}

void PrintTgds(const Schema& schema, const std::vector<Tgd>& tgds,
               std::ostream& os) {
  for (const Tgd& tgd : tgds) os << ToString(schema, tgd) << '\n';
}

std::string TgdsToString(const Schema& schema, const std::vector<Tgd>& tgds) {
  std::ostringstream out;
  PrintTgds(schema, tgds, out);
  return out.str();
}

void PrintDatabase(const Database& database, std::ostream& os) {
  const Schema& schema = database.schema();
  for (PredId pred : database.NonEmptyPredicates()) {
    const uint32_t arity = schema.Arity(pred);
    const size_t rows = database.NumTuples(pred);
    for (size_t row = 0; row < rows; ++row) {
      auto tuple = database.Tuple(pred, row);
      os << schema.PredicateName(pred) << '(';
      for (uint32_t i = 0; i < arity; ++i) {
        if (i > 0) os << ',';
        os << database.ConstantName(tuple[i]);
      }
      os << ").\n";
    }
  }
}

}  // namespace chase
