// Textual rendering of atoms, TGDs, facts and whole programs. The output is
// re-parseable by logic/parser.h, which the round-trip tests and the
// benchmark harness (which times parsing of generated rule files) rely on.

#ifndef CHASE_LOGIC_PRINTER_H_
#define CHASE_LOGIC_PRINTER_H_

#include <ostream>
#include <string>

#include "logic/atom.h"
#include "logic/database.h"
#include "logic/schema.h"
#include "logic/tgd.h"

namespace chase {

// Variable names: universal variables print as X0, X1, ...; existential
// variables as Z0, Z1, ... (relative to tgd.num_universal()).
std::string VariableName(const Tgd& tgd, VarId var);

std::string ToString(const Schema& schema, const Tgd& tgd,
                     const RuleAtom& atom);
std::string ToString(const Schema& schema, const Tgd& tgd);

// Ground atoms; nulls print as _:n<k>.
std::string ToString(const Schema& schema, const Database& database,
                     const GroundAtom& atom);

// Serializes all rules, one per line.
void PrintTgds(const Schema& schema, const std::vector<Tgd>& tgds,
               std::ostream& os);
std::string TgdsToString(const Schema& schema, const std::vector<Tgd>& tgds);

// Serializes all facts, one per line.
void PrintDatabase(const Database& database, std::ostream& os);

}  // namespace chase

#endif  // CHASE_LOGIC_PRINTER_H_
