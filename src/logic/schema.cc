#include "logic/schema.h"

#include "base/status.h"

#include <algorithm>

namespace chase {

StatusOr<PredId> Schema::AddPredicate(std::string_view name, uint32_t arity) {
  if (arity == 0) {
    return InvalidArgumentError("predicate '" + std::string(name) +
                                "' must have positive arity");
  }
  if (arity > kMaxArity) {
    return InvalidArgumentError(
        "predicate '" + std::string(name) + "' declares arity " +
        std::to_string(arity) + " but the maximum supported arity is " +
        std::to_string(kMaxArity));
  }
  if (names_.Find(name).has_value()) {
    return AlreadyExistsError("predicate '" + std::string(name) +
                              "' already declared");
  }
  const PredId id = names_.Intern(name);
  arities_.push_back(arity);
  offsets_.push_back(total_positions_);
  total_positions_ += arity;
  return id;
}

StatusOr<PredId> Schema::GetOrAddPredicate(std::string_view name,
                                           uint32_t arity) {
  if (auto existing = names_.Find(name); existing.has_value()) {
    if (arities_[*existing] != arity) {
      return InvalidArgumentError(
          "predicate '" + std::string(name) + "' used with arity " +
          std::to_string(arity) + " but declared with arity " +
          std::to_string(arities_[*existing]));
    }
    return *existing;
  }
  return AddPredicate(name, arity);
}

std::optional<PredId> Schema::FindPredicate(std::string_view name) const {
  return names_.Find(name);
}

Position Schema::PositionFromId(uint32_t position_id) const {
  // offsets_ is sorted; find the last offset <= position_id.
  auto it = std::upper_bound(offsets_.begin(), offsets_.end(), position_id);
  const auto pred = static_cast<PredId>(it - offsets_.begin() - 1);
  return Position{pred, position_id - offsets_[pred]};
}

uint32_t Schema::MaxArity() const {
  uint32_t max_arity = 0;
  for (uint32_t arity : arities_) max_arity = std::max(max_arity, arity);
  return max_arity;
}

}  // namespace chase
