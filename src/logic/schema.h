// Relational schema: a finite set of predicates with arities, plus the
// predicate-position machinery (Section 2 of the paper). A position (R, i)
// identifies the i-th argument of predicate R; positions are the nodes of the
// dependency graph, so the schema provides a dense encoding of pos(S).

#ifndef CHASE_LOGIC_SCHEMA_H_
#define CHASE_LOGIC_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "logic/symbols.h"

namespace chase {

using PredId = uint32_t;

// A predicate position (R, i) with 0-based argument index i.
struct Position {
  PredId pred;
  uint32_t index;

  friend bool operator==(const Position& a, const Position& b) {
    return a.pred == b.pred && a.index == b.index;
  }
};

class Schema {
 public:
  // Largest declarable arity. Shape machinery encodes id-tuples as uint8_t
  // restricted-growth strings and the EXISTS-probe compiler uses
  // fixed-width per-position scratch, so arities past 255 would silently
  // corrupt both; every schema load path (parser, binary loader,
  // generators) funnels through AddPredicate, which enforces the cap.
  static constexpr uint32_t kMaxArity = 255;

  Schema() = default;

  // Registers a predicate. Fails with kAlreadyExists if `name` is already
  // registered with a different arity and kInvalidArgument if `arity` is 0
  // or exceeds kMaxArity.
  [[nodiscard]]
  StatusOr<PredId> AddPredicate(std::string_view name, uint32_t arity);

  // Like AddPredicate but returns the existing id when the declaration
  // matches; this is how the parser discovers the schema from use.
  [[nodiscard]]
  StatusOr<PredId> GetOrAddPredicate(std::string_view name, uint32_t arity);

  std::optional<PredId> FindPredicate(std::string_view name) const;

  const std::string& PredicateName(PredId pred) const {
    return names_.NameOf(pred);
  }
  uint32_t Arity(PredId pred) const { return arities_[pred]; }

  size_t NumPredicates() const { return arities_.size(); }

  // Total number of predicate positions |pos(S)|.
  size_t NumPositions() const { return total_positions_; }

  // Dense encoding of positions into [0, NumPositions()).
  uint32_t PositionId(PredId pred, uint32_t index) const {
    return offsets_[pred] + index;
  }
  uint32_t PositionId(const Position& position) const {
    return PositionId(position.pred, position.index);
  }
  Position PositionFromId(uint32_t position_id) const;

  uint32_t MaxArity() const;

 private:
  SymbolTable names_;
  std::vector<uint32_t> arities_;
  std::vector<uint32_t> offsets_;  // prefix sums of arities_
  uint32_t total_positions_ = 0;
};

}  // namespace chase

#endif  // CHASE_LOGIC_SCHEMA_H_
