#include "logic/shape.h"

#include "logic/schema.h"

#include <algorithm>

namespace chase {

Shape ShapeOfTuple(PredId pred, std::span<const uint32_t> tuple) {
  return Shape(pred, IdOf(tuple));
}

std::string ShapeName(const Schema& schema, const Shape& shape) {
  std::string out = schema.PredicateName(shape.pred);
  out += "_[";
  for (size_t i = 0; i < shape.id.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(shape.id[i]);
  }
  out += ']';
  return out;
}

std::vector<IdTuple> EnumerateIdTuples(uint32_t arity) {
  std::vector<IdTuple> out;
  if (arity == 0) return out;
  IdTuple prefix;
  prefix.reserve(arity);
  auto recurse = [&](auto&& self, uint8_t max_so_far) -> void {
    if (prefix.size() == arity) {
      out.push_back(prefix);
      return;
    }
    const auto limit = static_cast<uint8_t>(max_so_far + 1);
    for (uint8_t value = 1; value <= limit; ++value) {
      prefix.push_back(value);
      self(self, std::max(max_so_far, value));
      prefix.pop_back();
    }
  };
  recurse(recurse, 0);
  return out;
}

uint64_t BellNumber(uint32_t n) {
  if (n == 0) return 1;
  auto saturating_add = [](uint64_t a, uint64_t b) {
    return a > UINT64_MAX - b ? UINT64_MAX : a + b;
  };
  // Bell triangle: row i starts with the last entry of row i-1, and each
  // entry adds its left neighbour and the entry above-left. B(i) is the
  // first entry of row i.
  std::vector<uint64_t> row = {1};  // row 0; B(0) = 1
  for (uint32_t i = 1; i <= n; ++i) {
    std::vector<uint64_t> next;
    next.reserve(i + 1);
    next.push_back(row.back());
    for (uint64_t value : row) {
      next.push_back(saturating_add(next.back(), value));
    }
    row = std::move(next);
  }
  return row.front();
}

bool CoarserOrEqual(const IdTuple& a, const IdTuple& b) {
  // Every equality of b must hold in a: positions sharing a value in b must
  // share a value in a. Compare each position against the first position of
  // its b-block.
  std::vector<uint32_t> first_of_block(b.size() + 1, UINT32_MAX);
  for (uint32_t i = 0; i < b.size(); ++i) {
    uint32_t& first = first_of_block[b[i]];
    if (first == UINT32_MAX) {
      first = i;
    } else if (a[i] != a[first]) {
      return false;
    }
  }
  return true;
}

IdTuple MergeBlocks(const IdTuple& id, uint32_t i, uint32_t j) {
  const uint8_t block_i = id[i];
  const uint8_t block_j = id[j];
  IdTuple merged = id;
  for (auto& value : merged) {
    if (value == block_j) value = block_i;
  }
  // Re-canonicalize to a restricted-growth string.
  IdTuple canonical(merged.size());
  std::vector<uint8_t> relabel(id.size() + 1, 0);
  uint8_t next = 1;
  for (size_t k = 0; k < merged.size(); ++k) {
    if (relabel[merged[k]] == 0) relabel[merged[k]] = next++;
    canonical[k] = relabel[merged[k]];
  }
  return canonical;
}

}  // namespace chase
