// Shapes of atoms (Section 3 of the paper).
//
// For a tuple t̄ = (t1, ..., tn), unique(t̄) keeps the first occurrence of
// each term, and id(t̄) maps each ti to the (1-based) index of ti within
// unique(t̄). E.g. t̄ = (x, y, x, z, y) gives unique(t̄) = (x, y, z) and
// id(t̄) = (1, 2, 1, 3, 2). The shape of an atom R(t̄) is the pair
// (R, id(t̄)); the simplification of R(t̄) is the atom R_{id(t̄)}(unique(t̄)).
//
// id-tuples are exactly the restricted-growth strings over [1, n]:
// id[0] == 1 and id[i] <= max(id[0..i-1]) + 1. They are in bijection with
// the set partitions of the positions [1, n], so the number of shapes of an
// arity-n predicate is the Bell number B(n).

#ifndef CHASE_LOGIC_SHAPE_H_
#define CHASE_LOGIC_SHAPE_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "logic/schema.h"

namespace chase {

using IdTuple = std::vector<uint8_t>;

// Computes id(t̄) for any term-like tuple.
template <typename T>
IdTuple IdOf(std::span<const T> tuple) {
  IdTuple id(tuple.size());
  uint8_t next = 1;
  for (size_t i = 0; i < tuple.size(); ++i) {
    uint8_t assigned = 0;
    for (size_t j = 0; j < i; ++j) {
      if (tuple[j] == tuple[i]) {
        assigned = id[j];
        break;
      }
    }
    id[i] = assigned != 0 ? assigned : next++;
  }
  return id;
}

// Computes unique(t̄).
template <typename T>
std::vector<T> UniqueOf(std::span<const T> tuple) {
  std::vector<T> unique;
  for (size_t i = 0; i < tuple.size(); ++i) {
    bool seen = false;
    for (size_t j = 0; j < i; ++j) {
      if (tuple[j] == tuple[i]) {
        seen = true;
        break;
      }
    }
    if (!seen) unique.push_back(tuple[i]);
  }
  return unique;
}

struct Shape {
  PredId pred = 0;
  IdTuple id;

  Shape() = default;
  Shape(PredId p, IdTuple i) : pred(p), id(std::move(i)) {}

  // Number of distinct blocks, i.e., the arity of the simplified predicate
  // R_{id}.
  uint32_t NumDistinct() const {
    uint8_t max_id = 0;
    for (uint8_t v : id) max_id = v > max_id ? v : max_id;
    return max_id;
  }

  friend bool operator==(const Shape& a, const Shape& b) {
    return a.pred == b.pred && a.id == b.id;
  }
  friend bool operator<(const Shape& a, const Shape& b) {
    if (a.pred != b.pred) return a.pred < b.pred;
    return a.id < b.id;
  }
};

struct ShapeHash {
  size_t operator()(const Shape& shape) const {
    uint64_t h = 0x9e3779b97f4a7c15ULL ^ shape.pred;
    for (uint8_t v : shape.id) h = (h ^ v) * 0x100000001b3ULL;
    return static_cast<size_t>(h);
  }
};

using ShapeSet = std::unordered_set<Shape, ShapeHash>;

// The shape of a ground tuple of predicate `pred`.
Shape ShapeOfTuple(PredId pred, std::span<const uint32_t> tuple);

// "R_[1,2,1]" — used in diagnostics and as the interned name of the
// simplified predicate R_{id}.
std::string ShapeName(const Schema& schema, const Shape& shape);

// All id-tuples of length `arity` (all restricted-growth strings), i.e., all
// shapes of an arity-`arity` predicate. Ordered lexicographically, from the
// all-equal tuple (1, ..., 1) to the all-distinct tuple (1, 2, ..., n).
std::vector<IdTuple> EnumerateIdTuples(uint32_t arity);

// The Bell number B(n) = |EnumerateIdTuples(n)| without enumerating;
// saturates at uint64 max.
uint64_t BellNumber(uint32_t n);

// The coarsening relation on id-tuples of equal length: `a` is coarser than
// or equal to `b` iff every equality in `b` also holds in `a` (i.e., `a`
// merges at least the positions `b` merges). Used by the Apriori pruning in
// the in-database shape finder.
bool CoarserOrEqual(const IdTuple& a, const IdTuple& b);

// Canonical id-tuple obtained from `id` by merging the blocks containing
// positions i and j.
IdTuple MergeBlocks(const IdTuple& id, uint32_t i, uint32_t j);

}  // namespace chase

#endif  // CHASE_LOGIC_SHAPE_H_
