#include "logic/symbols.h"

namespace chase {

uint32_t SymbolTable::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  const auto id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

std::optional<uint32_t> SymbolTable::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace chase
