// String interning. Predicate names and constant names are interned into
// dense 32-bit ids so the rest of the library works on integers.

#ifndef CHASE_LOGIC_SYMBOLS_H_
#define CHASE_LOGIC_SYMBOLS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace chase {

class SymbolTable {
 public:
  SymbolTable() = default;

  // Returns the id of `name`, interning it on first use.
  uint32_t Intern(std::string_view name);

  // Returns the id of `name` if present.
  std::optional<uint32_t> Find(std::string_view name) const;

  const std::string& NameOf(uint32_t id) const { return names_[id]; }

  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t> index_;
};

}  // namespace chase

#endif  // CHASE_LOGIC_SYMBOLS_H_
