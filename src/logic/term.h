// Ground terms. An instance term is either an interned constant or a labelled
// null; both are packed into a tagged 64-bit integer so instances are flat
// arrays of integers. Variables never appear in instances (they live in TGDs
// as per-rule indices, see logic/tgd.h).

#ifndef CHASE_LOGIC_TERM_H_
#define CHASE_LOGIC_TERM_H_

#include <cstdint>

namespace chase {

// Tagged ground term: top bit clear = constant id, top bit set = null id.
using Term = uint64_t;

inline constexpr Term kNullTag = uint64_t{1} << 63;

inline constexpr Term MakeConstant(uint32_t constant_id) {
  return constant_id;
}
inline constexpr Term MakeNull(uint64_t null_id) { return null_id | kNullTag; }

inline constexpr bool IsNull(Term term) { return (term & kNullTag) != 0; }
inline constexpr bool IsConstant(Term term) { return (term & kNullTag) == 0; }

inline constexpr uint32_t ConstantId(Term term) {
  return static_cast<uint32_t>(term);
}
inline constexpr uint64_t NullId(Term term) { return term & ~kNullTag; }

}  // namespace chase

#endif  // CHASE_LOGIC_TERM_H_
