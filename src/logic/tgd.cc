#include "logic/tgd.h"

#include "base/status.h"
#include "logic/atom.h"

#include <algorithm>
#include <unordered_map>

namespace chase {

StatusOr<Tgd> Tgd::Create(std::vector<RuleAtom> body,
                          std::vector<RuleAtom> head) {
  if (body.empty()) return InvalidArgumentError("TGD body must be non-empty");
  if (head.empty()) return InvalidArgumentError("TGD head must be non-empty");
  for (const RuleAtom& atom : body) {
    if (atom.args.empty()) {
      return InvalidArgumentError("TGD atoms must have positive arity");
    }
  }
  for (const RuleAtom& atom : head) {
    if (atom.args.empty()) {
      return InvalidArgumentError("TGD atoms must have positive arity");
    }
  }

  // Renumber: body variables first (first-occurrence order), then head-only
  // variables (first-occurrence order).
  std::unordered_map<VarId, VarId> renumber;
  auto visit = [&renumber](std::vector<RuleAtom>& atoms) {
    for (RuleAtom& atom : atoms) {
      for (VarId& var : atom.args) {
        auto [it, inserted] =
            renumber.emplace(var, static_cast<VarId>(renumber.size()));
        var = it->second;
        (void)inserted;
      }
    }
  };
  visit(body);
  const auto num_universal = static_cast<uint32_t>(renumber.size());
  visit(head);
  const auto num_vars = static_cast<uint32_t>(renumber.size());

  Tgd tgd;
  tgd.body_ = std::move(body);
  tgd.head_ = std::move(head);
  tgd.num_vars_ = num_vars;
  tgd.num_universal_ = num_universal;
  tgd.in_frontier_.assign(num_vars, false);
  for (const RuleAtom& atom : tgd.head_) {
    for (VarId var : atom.args) {
      if (var < num_universal) tgd.in_frontier_[var] = true;
    }
  }
  for (VarId var = 0; var < num_universal; ++var) {
    if (tgd.in_frontier_[var]) tgd.frontier_.push_back(var);
  }
  return tgd;
}

bool AllLinear(const std::vector<Tgd>& tgds) {
  return std::all_of(tgds.begin(), tgds.end(),
                     [](const Tgd& tgd) { return tgd.IsLinear(); });
}

bool AllSimpleLinear(const std::vector<Tgd>& tgds) {
  return std::all_of(tgds.begin(), tgds.end(),
                     [](const Tgd& tgd) { return tgd.IsSimpleLinear(); });
}

bool AllHaveNonEmptyFrontier(const std::vector<Tgd>& tgds) {
  return std::all_of(tgds.begin(), tgds.end(), [](const Tgd& tgd) {
    return tgd.HasNonEmptyFrontier();
  });
}

}  // namespace chase
