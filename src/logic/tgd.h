// Tuple-generating dependencies (TGDs, a.k.a. existential rules):
//
//   body(x̄, ȳ)  →  ∃ z̄  head(x̄, z̄)
//
// Variables are normalized per rule: ids [0, num_universal()) are the
// universally quantified variables (those occurring in the body, numbered in
// first-occurrence order), ids [num_universal(), num_vars()) are the
// existentially quantified variables (head-only). The frontier fr(σ) is the
// set of universal variables that also occur in the head.

#ifndef CHASE_LOGIC_TGD_H_
#define CHASE_LOGIC_TGD_H_

#include <cstdint>
#include <vector>

#include "base/status.h"
#include "logic/atom.h"

namespace chase {

class Tgd {
 public:
  // Builds a TGD from raw atoms whose variable ids are arbitrary (but
  // consistent within the rule); variables are renumbered as described above.
  // Fails if the body or head is empty, or if a body atom has no arguments.
  [[nodiscard]] static StatusOr<Tgd> Create(std::vector<RuleAtom> body,
                              std::vector<RuleAtom> head);

  const std::vector<RuleAtom>& body() const { return body_; }
  const std::vector<RuleAtom>& head() const { return head_; }

  uint32_t num_vars() const { return num_vars_; }
  uint32_t num_universal() const { return num_universal_; }
  uint32_t num_existential() const { return num_vars_ - num_universal_; }

  bool IsUniversal(VarId var) const { return var < num_universal_; }
  bool IsExistential(VarId var) const { return var >= num_universal_; }

  // fr(σ): universal variables occurring in the head, ascending.
  const std::vector<VarId>& frontier() const { return frontier_; }
  bool HasNonEmptyFrontier() const { return !frontier_.empty(); }
  bool InFrontier(VarId var) const { return in_frontier_[var]; }

  // Class membership: L = one body atom; SL = additionally no repeated
  // variable in the body atom.
  bool IsLinear() const { return body_.size() == 1; }
  bool IsSimpleLinear() const {
    return IsLinear() && body_[0].HasDistinctVars();
  }

  friend bool operator==(const Tgd& a, const Tgd& b) {
    return a.body_ == b.body_ && a.head_ == b.head_;
  }

 private:
  Tgd() = default;

  std::vector<RuleAtom> body_;
  std::vector<RuleAtom> head_;
  uint32_t num_vars_ = 0;
  uint32_t num_universal_ = 0;
  std::vector<VarId> frontier_;
  std::vector<bool> in_frontier_;  // indexed by VarId, size num_vars_
};

// Convenience predicates over rule sets.
bool AllLinear(const std::vector<Tgd>& tgds);
bool AllSimpleLinear(const std::vector<Tgd>& tgds);
bool AllHaveNonEmptyFrontier(const std::vector<Tgd>& tgds);

}  // namespace chase

#endif  // CHASE_LOGIC_TGD_H_
