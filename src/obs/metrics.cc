#include "obs/metrics.h"

#include "base/sync.h"

#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <thread>

namespace chase {
namespace obs {
namespace {

// One stripe per thread, picked once per thread: the same worker always
// lands on the same padded atomic, so Add is a relaxed RMW on a line no
// other core touches (modulo hash collisions across threads).
unsigned ThreadShard() {
  static thread_local const unsigned shard = [] {
    static std::atomic<unsigned> next{0};
    return next.fetch_add(1, std::memory_order_relaxed);
  }() % Counter::kShards;
  return shard;
}

// JSON string escaping for metric names (conservative: names are plain
// dotted identifiers by convention, but a malformed name must not produce
// malformed JSON).
void WriteJsonString(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          os << buffer;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

// Doubles must stay valid JSON: non-finite values (which JSON cannot
// represent) degrade to 0.
void WriteJsonDouble(std::ostream& os, double value) {
  if (!std::isfinite(value)) value = 0;
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  os << buffer;
}

}  // namespace

void Counter::Add(uint64_t delta) {
  shards_[ThreadShard()].value.fetch_add(delta, std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

void Histogram::Record(uint64_t value) {
  Shard& shard = shards_[ThreadShard()];
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  shard.buckets[std::bit_width(value)].fetch_add(1,
                                                 std::memory_order_relaxed);
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::Sum() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::array<uint64_t, Histogram::kBuckets> Histogram::Buckets() const {
  std::array<uint64_t, kBuckets> folded{};
  for (const Shard& shard : shards_) {
    for (unsigned b = 0; b < kBuckets; ++b) {
      folded[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return folded;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }
}

std::atomic<bool> MetricsRegistry::enabled_{false};

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::SetGauge(std::string_view name, double value) {
  if (!enabled()) return;
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::MaxGauge(std::string_view name, double value) {
  if (!enabled()) return;
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else if (value > it->second) {
    it->second = value;
  }
}

void MetricsRegistry::DumpJson(std::ostream& os) const {
  MutexLock lock(mu_);
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    WriteJsonString(os, name);
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%" PRIu64, counter->Value());
    os << ": " << buffer;
  }
  os << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    WriteJsonString(os, name);
    os << ": ";
    WriteJsonDouble(os, value);
  }
  os << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    WriteJsonString(os, name);
    os << ": {\"count\": " << histogram->Count()
       << ", \"sum\": " << histogram->Sum() << ", \"buckets\": [";
    const auto buckets = histogram->Buckets();
    bool first_bucket = true;
    for (unsigned b = 0; b < Histogram::kBuckets; ++b) {
      if (buckets[b] == 0) continue;
      if (!first_bucket) os << ", ";
      first_bucket = false;
      // Inclusive upper bound of bucket b (values of bit width b).
      const uint64_t le = b == 0 ? 0
                          : b >= 64 ? UINT64_MAX
                                    : (uint64_t{1} << b) - 1;
      os << "{\"le\": " << le << ", \"count\": " << buckets[b] << "}";
    }
    os << "]}";
  }
  os << (first ? "}" : "\n  }") << "\n}\n";
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
  gauges_.clear();
}

void SetGauge(std::string_view name, double value) {
  if (!MetricsRegistry::enabled()) return;
  MetricsRegistry::Get().SetGauge(name, value);
}

void RecordTimeParams(std::string_view prefix, const TimeParams& times) {
  if (!MetricsRegistry::enabled()) return;
  const std::string p(prefix);
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.SetGauge(p + ".t_parse_ms", times.parse_ms);
  registry.SetGauge(p + ".t_shapes_ms", times.shapes_ms);
  registry.SetGauge(p + ".t_graph_ms", times.graph_ms);
  registry.SetGauge(p + ".t_comp_ms", times.comp_ms);
  registry.SetGauge(p + ".t_total_ms", times.TotalMs());
}

}  // namespace obs
}  // namespace chase
