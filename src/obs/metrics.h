// The metrics registry: named counters, gauges, and histograms behind one
// process-wide enable gate, dumpable as JSON.
//
// The paper's whole point is predicting whether a chase terminates — yet a
// chase that runs for hours used to be a black box: timing lived in
// bench-only structs, counters were scattered across IoStats, buffer-pool
// shard stats, FrontierStats, and ChaseResult. This registry is the one
// place they all land (re-homed, like the paper's t-parse/t-graph/t-comp/
// t-shapes via TimeParams below, or mirrored at the layer that owns them:
// the chase engine publishes its result counters, IsChaseFinite its phase
// timings, the pager its pool traffic, the worker pool its busy/wait time).
//
// Overhead discipline: everything is OFF by default. Every hot-path
// publication site is gated on MetricsRegistry::enabled() — a single
// relaxed atomic load — so a disabled run does no clock read, no hash, no
// atomic RMW. When enabled, counters and histograms are sharded padded
// atomics (one stripe per thread hash), so concurrent publication from
// scan workers, pool workers, and prefetch threads never serializes on a
// latch and never false-shares a cache line. Metric objects live for the
// process: GetCounter/GetHistogram return stable pointers callers may
// cache, and Reset zeroes values without invalidating them.
//
// Naming convention (see README "Observability"): dotted lowercase paths,
// subsystem first — "chase.rounds", "check.t_shapes_ms", "pool.busy_us",
// "pager.pool_hits" — with unit suffixes (_ms, _us, _ns) on time values.

#ifndef CHASE_OBS_METRICS_H_
#define CHASE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>

#include "base/sync.h"

namespace chase {
namespace obs {

// The paper's four time parameters (Sections 7 and 8), re-homed from the
// bench-local TimeBreakdown so the library, the CLI, and the benches all
// account them in one struct and can publish them with RecordTimeParams.
// All values in milliseconds.
struct TimeParams {
  double parse_ms = 0;   // t-parse
  double shapes_ms = 0;  // t-shapes (db-dependent component; linear only)
  double graph_ms = 0;   // t-graph (includes simplification for linear TGDs)
  double comp_ms = 0;    // t-comp

  double TotalMs() const { return parse_ms + graph_ms + comp_ms + shapes_ms; }
  // The paper's t-total for the db-independent component (Section 8).
  double DbIndependentMs() const { return parse_ms + graph_ms + comp_ms; }
};

// A monotonically increasing counter, sharded across cache-line-padded
// relaxed atomics by thread hash so concurrent Add calls from a worker
// pool never contend on one line. Value() folds the shards.
class Counter {
 public:
  static constexpr unsigned kShards = 16;  // power of two (mask-indexed)

  void Add(uint64_t delta);
  uint64_t Value() const;
  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, kShards> shards_;
};

// A log2-bucketed histogram of non-negative values (bucket b holds values
// whose bit width is b, i.e. upper bounds 0, 1, 3, 7, ... 2^63-1), sharded
// like Counter. Fixed buckets keep Record latch-free and merge-free.
class Histogram {
 public:
  static constexpr unsigned kBuckets = 65;  // bit widths 0..64

  void Record(uint64_t value);
  uint64_t Count() const;
  uint64_t Sum() const;
  // Folded per-bucket counts (index = bit width of the recorded value).
  std::array<uint64_t, kBuckets> Buckets() const;
  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::array<std::atomic<uint64_t>, kBuckets> buckets{};
  };
  std::array<Shard, Counter::kShards> shards_;
};

class MetricsRegistry {
 public:
  // The process-wide registry. First use constructs it; metric pointers
  // stay valid for the life of the process.
  static MetricsRegistry& Get();

  // The global gate every publication site checks first. A single relaxed
  // atomic load: with metrics disabled no site reads a clock, hashes a
  // thread id, or touches an atomic counter.
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  // Find-or-create by name. The returned pointer is stable (metrics are
  // never destroyed before process exit) — hot paths look it up once and
  // cache it. Creation takes a latch; lookups of existing names do too,
  // which is why the contract is "cache the pointer".
  Counter* GetCounter(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  // Gauges: last-writer-wins doubles for run-level results (phase timings,
  // result counts). Latched — publication sites are per-run, not per-item.
  // No-op when the registry is disabled, so callers can publish
  // unconditionally.
  void SetGauge(std::string_view name, double value);
  // Like SetGauge but keeps the larger of the stored and new value — for
  // per-run peaks that should survive across runs of one session (e.g.
  // "frontier.max_frontier").
  void MaxGauge(std::string_view name, double value);

  // Dumps every metric as one JSON object:
  //   {"counters": {name: value, ...},
  //    "gauges": {name: value, ...},
  //    "histograms": {name: {"count": n, "sum": s,
  //                          "buckets": [{"le": bound, "count": c}, ...]}}}
  // Histogram buckets are emitted sparsely (zero-count buckets skipped);
  // "le" is the bucket's inclusive upper bound. Keys are sorted, so output
  // is deterministic for deterministic values.
  void DumpJson(std::ostream& os) const;

  // Zeroes every counter/histogram and clears the gauges. Registered
  // metric pointers stay valid (values reset in place) — tests isolate
  // themselves with this without invalidating cached pointers.
  void Reset();

 private:
  MetricsRegistry() = default;

  static std::atomic<bool> enabled_;

  mutable Mutex mu_;
  // std::map: stable pointers (node-based) and sorted dump order.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      GUARDED_BY(mu_);
  std::map<std::string, double, std::less<>> gauges_ GUARDED_BY(mu_);
};

// Convenience wrappers, all no-ops when the registry is disabled.
inline void CounterAdd(Counter* counter, uint64_t delta) {
  if (MetricsRegistry::enabled()) counter->Add(delta);
}
void SetGauge(std::string_view name, double value);

// Publishes `times` as gauges "<prefix>.t_parse_ms", "<prefix>.t_shapes_ms",
// "<prefix>.t_graph_ms", "<prefix>.t_comp_ms", "<prefix>.t_total_ms" — how
// the paper's time parameters reach `chasectl check --metrics`. No-op when
// disabled.
void RecordTimeParams(std::string_view prefix, const TimeParams& times);

}  // namespace obs
}  // namespace chase

#endif  // CHASE_OBS_METRICS_H_
