#include "obs/progress.h"

#include <cinttypes>
#include <cstdio>

#include "base/sync.h"
#include "obs/metrics.h"

namespace chase {
namespace obs {

ProgressReporter::ProgressReporter(std::ostream* os,
                                   const ChaseProgressSink* sink,
                                   std::chrono::seconds interval)
    : os_(os),
      sink_(sink),
      interval_(interval),
      last_tick_(std::chrono::steady_clock::now()),
      thread_([this] { Loop(); }) {}

ProgressReporter::~ProgressReporter() { Stop(); }

void ProgressReporter::Stop() {
  {
    MutexLock lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
  // Final line so a chase shorter than one interval still reports.
  PrintLine();
}

void ProgressReporter::Loop() {
  MutexLock lock(mu_);
  while (!stop_) {
    // Sleep out one interval, re-waiting on spurious wakeups; a Stop
    // notification breaks out before the deadline.
    const auto deadline = std::chrono::steady_clock::now() + interval_;
    while (!stop_ &&
           cv_.WaitUntil(mu_, deadline) != std::cv_status::timeout) {
    }
    if (stop_) break;
    PrintLine();
  }
}

void ProgressReporter::PrintLine() {
  const auto now = std::chrono::steady_clock::now();
  const double elapsed_s =
      std::chrono::duration<double>(now - last_tick_).count();
  const uint64_t triggers = sink_->triggers.load(std::memory_order_relaxed);
  const uint64_t delta = triggers - last_triggers_;
  const double rate = elapsed_s > 0 ? static_cast<double>(delta) / elapsed_s
                                    : 0;
  last_tick_ = now;
  last_triggers_ = triggers;
  char line[160];
  std::snprintf(line, sizeof(line),
                "[chase] round %" PRIu64 "  atoms %" PRIu64 "  nulls %" PRIu64
                "  triggers %" PRIu64 " (%.0f/s)\n",
                sink_->rounds.load(std::memory_order_relaxed),
                sink_->atoms.load(std::memory_order_relaxed),
                sink_->nulls.load(std::memory_order_relaxed), triggers, rate);
  (*os_) << line << std::flush;
}

MetricsDumper::MetricsDumper(std::ostream* os, std::chrono::seconds interval)
    : os_(os),
      interval_(interval),
      start_(std::chrono::steady_clock::now()),
      thread_([this] { Loop(); }) {}

MetricsDumper::~MetricsDumper() { Stop(); }

void MetricsDumper::Stop() {
  {
    MutexLock lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
  // Final dump so a chase shorter than one interval still reports.
  Dump();
}

void MetricsDumper::Loop() {
  MutexLock lock(mu_);
  while (!stop_) {
    const auto deadline = std::chrono::steady_clock::now() + interval_;
    while (!stop_ &&
           cv_.WaitUntil(mu_, deadline) != std::cv_status::timeout) {
    }
    if (stop_) break;
    Dump();
  }
}

void MetricsDumper::Dump() {
  const double t = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_)
                       .count();
  char marker[48];
  std::snprintf(marker, sizeof(marker), "[metrics t=%.1fs]\n", t);
  (*os_) << marker;
  MetricsRegistry::Get().DumpJson(*os_);
  (*os_) << std::flush;
}

}  // namespace obs
}  // namespace chase
