// Live progress for long (or non-terminating — the paper's whole subject)
// chases: the engine publishes cheap relaxed counters into a
// ChaseProgressSink; a ProgressReporter thread samples them on an interval
// and prints one status line per tick to a stream (stderr in chasectl).
//
// The publishing side is deliberately dumber than the trace recorder:
// four relaxed atomic stores, no clock, no buffer — the engine updates
// once per round plus every few thousand trigger firings, so even that is
// far off the hot path.

#ifndef CHASE_OBS_PROGRESS_H_
#define CHASE_OBS_PROGRESS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <ostream>
#include <thread>

#include "base/sync.h"

namespace chase {
namespace obs {

// Shared between the chase engine (writer) and a ProgressReporter
// (reader). All relaxed: a tick may see a slightly torn snapshot across
// fields (round from this wave, triggers from the last), which is fine for
// a human status line.
struct ChaseProgressSink {
  std::atomic<uint64_t> rounds{0};
  std::atomic<uint64_t> atoms{0};
  std::atomic<uint64_t> nulls{0};
  std::atomic<uint64_t> triggers{0};

  void Update(uint64_t round, uint64_t atom_count, uint64_t null_count,
              uint64_t trigger_count) {
    rounds.store(round, std::memory_order_relaxed);
    atoms.store(atom_count, std::memory_order_relaxed);
    nulls.store(null_count, std::memory_order_relaxed);
    triggers.store(trigger_count, std::memory_order_relaxed);
  }
};

// Prints "[chase] round R  atoms A  nulls N  triggers T (X/s)" to `os`
// every `interval` until stopped. Stop() (also run by the destructor)
// wakes the thread promptly via a condition variable — no up-to-a-tick
// shutdown stall — and prints one final line so short runs still report.
class ProgressReporter {
 public:
  ProgressReporter(std::ostream* os, const ChaseProgressSink* sink,
                   std::chrono::seconds interval);
  ~ProgressReporter();

  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  void Stop();

 private:
  void Loop();
  void PrintLine();

  std::ostream* const os_;
  const ChaseProgressSink* const sink_;
  const std::chrono::seconds interval_;

  Mutex mu_;
  CondVar cv_;
  bool stop_ GUARDED_BY(mu_) = false;

  // Touched only by the reporter thread, and by Stop after the join — a
  // strict handoff, so no latch.
  std::chrono::steady_clock::time_point last_tick_;
  uint64_t last_triggers_ = 0;

  std::thread thread_;
};

// Periodically dumps the whole metrics registry as JSON to `os` — the
// engine behind `chasectl chase --metrics-interval=SECS`, for watching the
// counters of a live chase evolve instead of only seeing the final
// `--metrics` snapshot. Each tick emits one self-contained JSON object
// (the DumpJson format) prefixed by a "[metrics t=<seconds>]" marker line
// so interleaved progress output stays parseable. Stop() (also run by the
// destructor) wakes the thread promptly and emits one final dump.
class MetricsDumper {
 public:
  MetricsDumper(std::ostream* os, std::chrono::seconds interval);
  ~MetricsDumper();

  MetricsDumper(const MetricsDumper&) = delete;
  MetricsDumper& operator=(const MetricsDumper&) = delete;

  void Stop();

 private:
  void Loop();
  void Dump();

  std::ostream* const os_;
  const std::chrono::seconds interval_;
  const std::chrono::steady_clock::time_point start_;

  Mutex mu_;
  CondVar cv_;
  bool stop_ GUARDED_BY(mu_) = false;

  std::thread thread_;
};

}  // namespace obs
}  // namespace chase

#endif  // CHASE_OBS_PROGRESS_H_
