#include "obs/trace.h"

#include "base/status.h"
#include "base/sync.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace chase {
namespace obs {
namespace {

// Thread-local handle: the session id the cached buffer belongs to, so a
// buffer from a finished session is abandoned (not reused) and the thread
// re-registers on its first emit of the new session.
struct LocalHandle {
  uint64_t session = 0;
  void* buffer = nullptr;
};
thread_local LocalHandle tls_handle;

}  // namespace

std::atomic<bool> TraceRecorder::enabled_{false};

TraceRecorder& TraceRecorder::Get() {
  static TraceRecorder* const recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::Start(size_t events_per_thread) {
  MutexLock lock(mu_);
  // Old-session buffers are intentionally leaked into buffers_ until
  // process exit: a thread that cached one must be able to dereference it
  // safely even if it emits exactly once more before noticing the session
  // changed. WriteJson filters by session id.
  session_.fetch_add(1, std::memory_order_relaxed);
  capacity_ = events_per_thread == 0 ? 1 : events_per_thread;
  session_start_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::Stop() {
  enabled_.store(false, std::memory_order_relaxed);
}

int64_t TraceRecorder::NowUs() const {
  return ToUs(std::chrono::steady_clock::now());
}

int64_t TraceRecorder::ToUs(std::chrono::steady_clock::time_point tp) const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             tp - session_start_)
      .count();
}

TraceRecorder::Buffer* TraceRecorder::LocalBuffer() {
  const uint64_t session = session_.load(std::memory_order_relaxed);
  if (tls_handle.buffer != nullptr && tls_handle.session == session) {
    return static_cast<Buffer*>(tls_handle.buffer);
  }
  MutexLock lock(mu_);
  buffers_.push_back(std::make_unique<Buffer>(
      capacity_, next_tid_++, session_.load(std::memory_order_relaxed)));
  Buffer* buffer = buffers_.back().get();
  tls_handle = {buffer->session, buffer};
  return buffer;
}

void TraceRecorder::Emit(const TraceEvent& event) {
  Buffer* buffer = LocalBuffer();
  const size_t i = buffer->head.load(std::memory_order_relaxed);
  if (i >= buffer->slots.size()) {
    buffer->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer->slots[i] = event;
  // Publish: a reader that acquires head > i sees the fully written slot.
  buffer->head.store(i + 1, std::memory_order_release);
}

uint64_t TraceRecorder::recorded() const {
  MutexLock lock(mu_);
  const uint64_t session = session_.load(std::memory_order_relaxed);
  uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    if (buffer->session != session) continue;
    total += buffer->head.load(std::memory_order_acquire);
  }
  return total;
}

uint64_t TraceRecorder::dropped() const {
  MutexLock lock(mu_);
  const uint64_t session = session_.load(std::memory_order_relaxed);
  uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    if (buffer->session != session) continue;
    total += buffer->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

namespace {

void WriteEventJson(std::ostream& os, const TraceEvent& event, uint32_t tid) {
  os << "{\"name\": \"" << event.name << "\", \"cat\": \"" << event.cat
     << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << tid
     << ", \"ts\": " << event.ts_us << ", \"dur\": " << event.dur_us;
  if (event.arg0_name != nullptr || event.arg1_name != nullptr) {
    os << ", \"args\": {";
    bool first = true;
    if (event.arg0_name != nullptr) {
      os << "\"" << event.arg0_name << "\": " << event.arg0;
      first = false;
    }
    if (event.arg1_name != nullptr) {
      if (!first) os << ", ";
      os << "\"" << event.arg1_name << "\": " << event.arg1;
    }
    os << "}";
  }
  os << "}";
}

}  // namespace

void TraceRecorder::WriteJson(std::ostream& os) {
  Stop();
  MutexLock lock(mu_);
  const uint64_t session = session_.load(std::memory_order_relaxed);
  uint64_t total_dropped = 0;
  os << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [";
  bool first = true;
  for (const auto& buffer : buffers_) {
    if (buffer->session != session) continue;
    total_dropped += buffer->dropped.load(std::memory_order_relaxed);
    // Thread name metadata so Perfetto labels the rows.
    os << (first ? "\n" : ",\n");
    first = false;
    os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": "
       << buffer->tid << ", \"args\": {\"name\": \"chase-" << buffer->tid
       << "\"}}";
    const size_t head = buffer->head.load(std::memory_order_acquire);
    for (size_t i = 0; i < head; ++i) {
      os << ",\n";
      WriteEventJson(os, buffer->slots[i], buffer->tid);
    }
  }
  os << "\n],\n\"otherData\": {\"droppedEvents\": \"" << total_dropped
     << "\"}\n}\n";
}

Status TraceRecorder::WriteJsonFile(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return InternalError("cannot open trace output file: " + path);
  }
  WriteJson(out);
  out.flush();
  if (!out) {
    return InternalError("failed writing trace output file: " + path);
  }
  return OkStatus();
}

}  // namespace obs
}  // namespace chase
