// The trace-span recorder: per-thread lock-free ring buffers of completed
// spans, written out as Chrome trace-event JSON that loads directly in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing.
//
// Design for a system whose hot loops are worker pools:
//
//  * Recording is OFF by default behind one process-wide atomic. A
//    disabled TraceSpan is a single relaxed load — no clock read, no
//    buffer touch — so instrumented layers (chase rounds, frontier depths,
//    pool epochs, pager faults) cost nothing when nobody is watching.
//  * Each emitting thread owns one ring buffer. Emit is wait-free for the
//    owner: write the slot, then publish it with a release store of the
//    head index. The writer is the only producer of its buffer, so there
//    is no CAS and no latch on the emit path; readers (WriteJson) acquire
//    the head and only read committed slots, so a concurrent snapshot is
//    race-free (it just misses in-flight spans).
//  * A full buffer DROPS new events and counts them (Buffer capacity is
//    fixed at Start) — slots are never recycled, so a late reader can
//    never observe a torn rewrite. The drop count is reported in the
//    artifact ("otherData.droppedEvents") and by dropped().
//
// Span names and categories must be string literals (or otherwise outlive
// the recorder session): events store the pointers, not copies — that is
// what keeps Emit allocation-free. Two optional integer args ride along
// and come out as the event's "args" object.
//
// Start/Stop delimit a session and must not race with in-flight spans
// (enable before spawning instrumented work, write after it quiesces —
// worker pools park between epochs, so any point between chasectl phases
// qualifies). Emit concurrent with WriteJson is safe, as above.

#ifndef CHASE_OBS_TRACE_H_
#define CHASE_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "base/status.h"
#include "base/sync.h"

namespace chase {
namespace obs {

// One completed ("ph":"X") span. POD so ring slots assign cheaply.
struct TraceEvent {
  const char* name = nullptr;  // static string
  const char* cat = nullptr;   // static string
  int64_t ts_us = 0;           // microseconds since session start
  int64_t dur_us = 0;
  const char* arg0_name = nullptr;  // static string or nullptr
  const char* arg1_name = nullptr;
  int64_t arg0 = 0;
  int64_t arg1 = 0;
};

class TraceRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;  // events per thread

  static TraceRecorder& Get();

  // The gate every span checks first — one relaxed atomic load.
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Begins a session: zeroes the session clock, allocates fresh per-thread
  // buffers lazily as threads emit (each holding `events_per_thread`
  // slots), and enables recording. Buffers of earlier sessions are kept
  // until process exit but excluded from WriteJson (a stale thread-local
  // pointer re-registers on first emit instead of dangling).
  void Start(size_t events_per_thread = kDefaultCapacity);

  // Disables recording. Events already committed stay readable.
  void Stop();

  // Stops (if still recording) and writes the session as Chrome
  // trace-event JSON: {"displayTimeUnit": "ms", "otherData":
  // {"droppedEvents": "<n>"}, "traceEvents": [...]} with one "M"
  // thread_name metadata event per emitting thread and one "X" complete
  // event per span.
  void WriteJson(std::ostream& os);
  [[nodiscard]] Status WriteJsonFile(const std::string& path);

  // Committed / dropped event counts for the current session.
  uint64_t recorded() const;
  uint64_t dropped() const;

  // Microseconds since session start (steady clock).
  int64_t NowUs() const;

  // Converts a steady_clock point captured earlier into microseconds since
  // session start. Back-dated events (a phase timed with its own clock
  // reads, emitted at the end) must derive BOTH ts and dur through this —
  // mixing a re-read NowUs() with a separately truncated duration shifts
  // the span by a few microseconds, enough to partially overlap a
  // neighboring span and break nesting in the viewer.
  //
  // Reads session_start_ without mu_: the session clock is written only by
  // Start, which must not race with in-flight spans (the file comment's
  // session contract) — that quiescence invariant replaces the latch.
  int64_t ToUs(std::chrono::steady_clock::time_point tp) const
      NO_THREAD_SAFETY_ANALYSIS;

  // Commits one completed span into the calling thread's buffer (wait-free
  // once the buffer exists; first emit per thread per session registers
  // one under a latch). Called by TraceSpan — use that instead.
  void Emit(const TraceEvent& event);

 private:
  struct Buffer {
    Buffer(size_t capacity, uint32_t tid, uint64_t session)
        : slots(capacity), tid(tid), session(session) {}
    std::vector<TraceEvent> slots;
    // Number of committed slots: the owner stores with release after
    // writing slots[head]; readers load with acquire and read below it.
    std::atomic<size_t> head{0};
    std::atomic<uint64_t> dropped{0};
    const uint32_t tid;
    const uint64_t session;
  };

  TraceRecorder() = default;
  Buffer* LocalBuffer();

  static std::atomic<bool> enabled_;

  mutable Mutex mu_;  // guards buffers_, session bookkeeping
  std::vector<std::unique_ptr<Buffer>> buffers_ GUARDED_BY(mu_);
  std::atomic<uint64_t> session_{0};
  size_t capacity_ GUARDED_BY(mu_) = kDefaultCapacity;
  uint32_t next_tid_ GUARDED_BY(mu_) = 1;
  // Written under mu_ (Start); read unlatched by ToUs under the session
  // quiescence contract.
  std::chrono::steady_clock::time_point session_start_ GUARDED_BY(mu_){};
};

// RAII span: records [construction, destruction) as one complete event on
// the calling thread. With the recorder disabled, construction is a single
// relaxed load and destruction a branch. `cat`, `name`, and the arg names
// must be string literals (see file comment).
class TraceSpan {
 public:
  TraceSpan(const char* cat, const char* name,
            const char* arg0_name = nullptr, int64_t arg0 = 0,
            const char* arg1_name = nullptr, int64_t arg1 = 0) {
    if (!TraceRecorder::enabled()) return;
    event_.cat = cat;
    event_.name = name;
    event_.arg0_name = arg0_name;
    event_.arg0 = arg0;
    event_.arg1_name = arg1_name;
    event_.arg1 = arg1;
    event_.ts_us = TraceRecorder::Get().NowUs();
    active_ = true;
  }

  ~TraceSpan() {
    // Spans open across a Stop are dropped (the session they started in is
    // over); the second check keeps that cheap and race-benign.
    if (!active_ || !TraceRecorder::enabled()) return;
    TraceRecorder& recorder = TraceRecorder::Get();
    event_.dur_us = recorder.NowUs() - event_.ts_us;
    recorder.Emit(event_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceEvent event_;
  bool active_ = false;
};

}  // namespace obs
}  // namespace chase

#endif  // CHASE_OBS_TRACE_H_
