#include "pager/buffer_pool.h"

#include <algorithm>
#include <cassert>
#include <thread>
#include <utility>

#include "base/hash.h"
#include "base/status.h"
#include "base/sync.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pager/disk_manager.h"
#include "pager/page.h"

namespace chase {
namespace pager {
namespace {

// Mirrors of the per-shard hit/miss stats in the metrics registry, so a
// `--metrics` dump sees pool traffic without polling stats(). Gated and
// cached: disabled runs pay one relaxed load, enabled runs one sharded
// relaxed fetch_add on a pointer resolved once per process.
void CountPoolHit() {
  if (!obs::MetricsRegistry::enabled()) return;
  static obs::Counter* const hits =
      obs::MetricsRegistry::Get().GetCounter("pager.pool_hits");
  hits->Add(1);
}

void CountPoolMiss() {
  if (!obs::MetricsRegistry::enabled()) return;
  static obs::Counter* const misses =
      obs::MetricsRegistry::Get().GetCounter("pager.pool_misses");
  misses->Add(1);
}

}  // namespace

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = std::exchange(other.pool_, nullptr);
    page_id_ = other.page_id_;
    frame_ = other.frame_;
  }
  return *this;
}

const Page& PageGuard::page() const {
  assert(valid());
  return pool_->shards_[pool_->ShardOf(page_id_)]->frames[frame_].page;
}

Page& PageGuard::MutablePage() {
  assert(valid());
  pool_->MarkDirty(page_id_, frame_);
  return pool_->shards_[pool_->ShardOf(page_id_)]->frames[frame_].page;
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(page_id_, frame_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(DiskManager* disk, uint32_t num_frames,
                       uint32_t num_shards)
    : disk_(disk), num_frames_(num_frames) {
  assert(num_frames >= 1);
  uint32_t shards =
      num_shards == 0
          ? std::min(kDefaultShards,
                     std::max(1u, num_frames / kMinFramesPerShard))
          : std::clamp(num_shards, 1u, num_frames);
  shards_.reserve(shards);
  for (uint32_t s = 0; s < shards; ++s) {
    auto shard = std::make_unique<Shard>();
    // Even split; the first (num_frames % shards) shards take one extra.
    shard->frames.resize(num_frames / shards + (s < num_frames % shards));
    shards_.push_back(std::move(shard));
  }
}

size_t BufferPool::ShardOf(PageId page_id) const {
  // Heap chains hand out consecutive page ids, so a raw modulus would deal
  // one relation's pages round-robin — fine — but interleave relations
  // poorly; a Fibonacci mix decorrelates shard choice from allocation
  // order.
  return static_cast<size_t>(
      FibonacciMix(static_cast<uint64_t>(page_id) + 1) % shards_.size());
}

namespace {

// Pins are transient in scan workloads (one page per worker, released
// before the next fetch), so a shard with every frame pinned usually
// frees up within microseconds. Fetch/Allocate wait it out with a bounded
// yield-retry before surfacing kResourceExhausted, so concurrency briefly
// exceeding a shard's frame count (e.g. more scan workers than frames per
// shard) degrades to a short stall instead of a probabilistic hard
// failure; genuinely stuck shards (every frame pinned indefinitely) still
// error out.
constexpr int kPinWaitRetries = 256;

}  // namespace

template <typename CheckHit, typename Install>
StatusOr<PageGuard> BufferPool::AcquireAndInstall(Shard& shard,
                                                  CheckHit&& check_hit,
                                                  Install&& install) {
  for (int attempt = 0;; ++attempt) {
    {
      MutexLock lock(shard.mu);
      if (std::optional<PageGuard> hit = check_hit()) {
        return std::move(*hit);
      }
      StatusOr<uint32_t> slot = AcquireFrame(&shard);
      if (slot.ok()) return install(*slot);
      if (slot.status().code() != StatusCode::kResourceExhausted ||
          attempt >= kPinWaitRetries) {
        return slot.status();
      }
    }
    std::this_thread::yield();
  }
}

StatusOr<PageGuard> BufferPool::Fetch(PageId page_id) {
  Shard& shard = *shards_[ShardOf(page_id)];
  {
    MutexLock lock(shard.mu);
    auto it = shard.page_table.find(page_id);
    if (it != shard.page_table.end()) {
      Frame& frame = shard.frames[it->second];
      ++frame.pin_count;
      frame.referenced = true;
      ++shard.stats.hits;
      CountPoolHit();
      return PageGuard(this, page_id, it->second);
    }
    // Counted here, exactly once per logical fetch — if a peer installs
    // the page while we stage the read below, that is still this fetch's
    // miss, not an extra hit.
    ++shard.stats.misses;
  }
  CountPoolMiss();
  // Miss: read outside the latch (like Prefetch), so concurrent faults on
  // different pages of one shard overlap their I/O instead of serializing
  // behind the latch.
  obs::TraceSpan fault_span("pager", "fault", "page",
                            static_cast<int64_t>(page_id));
  Page staged;
  CHASE_RETURN_IF_ERROR(disk_->ReadPage(page_id, &staged));
  // Both callbacks run with shard.mu held by AcquireAndInstall; the
  // analysis cannot follow the capability through the indirect call, hence
  // the per-lambda opt-outs.
  return AcquireAndInstall(
      shard,
      [&]() NO_THREAD_SAFETY_ANALYSIS -> std::optional<PageGuard> {
        auto it = shard.page_table.find(page_id);
        if (it == shard.page_table.end()) return std::nullopt;
        // A peer fetch or prefetch won the race; the staged read is
        // wasted, the resident frame is the one to pin.
        Frame& frame = shard.frames[it->second];
        ++frame.pin_count;
        frame.referenced = true;
        return PageGuard(this, page_id, it->second);
      },
      [&](uint32_t slot) NO_THREAD_SAFETY_ANALYSIS -> StatusOr<PageGuard> {
        Frame& frame = shard.frames[slot];
        frame.page = staged;
        frame.page_id = page_id;
        frame.pin_count = 1;
        frame.dirty = false;
        frame.referenced = true;
        shard.page_table[page_id] = slot;
        return PageGuard(this, page_id, slot);
      });
}

StatusOr<PageGuard> BufferPool::Allocate() {
  // The disk allocation must come first: the page id decides the shard.
  // If the shard then stays pin-exhausted past the retry budget, the
  // already-extended file keeps one zeroed page that is never linked into
  // a chain — harmless (unreachable, verifies as unsealed) and only
  // reachable through a failure path that aborts the caller's operation
  // anyway.
  CHASE_ASSIGN_OR_RETURN(PageId page_id, disk_->AllocatePage());
  Shard& shard = *shards_[ShardOf(page_id)];
  // The install callback runs with shard.mu held by AcquireAndInstall (see
  // the note in Fetch).
  return AcquireAndInstall(
      shard, [] { return std::optional<PageGuard>(); },
      [&](uint32_t slot) NO_THREAD_SAFETY_ANALYSIS -> StatusOr<PageGuard> {
        Frame& frame = shard.frames[slot];
        frame.page.Zero();
        // Stamp a default header so the page verifies even if the caller
        // never writes one before the frame is evicted.
        WritePageHeader(&frame.page, PageHeader{});
        frame.page_id = page_id;
        frame.pin_count = 1;
        frame.dirty = true;
        frame.referenced = true;
        shard.page_table[page_id] = slot;
        return PageGuard(this, page_id, slot);
      });
}

Status BufferPool::Prefetch(PageId page_id) {
  Shard& shard = *shards_[ShardOf(page_id)];
  {
    MutexLock lock(shard.mu);
    auto it = shard.page_table.find(page_id);
    if (it != shard.page_table.end()) {
      // Already resident: refresh the reference bit so the clock keeps it.
      shard.frames[it->second].referenced = true;
      ++shard.stats.prefetch_drops;
      return OkStatus();
    }
  }
  // Read outside the latch so foreground Fetches on this shard are not
  // blocked behind our I/O.
  obs::TraceSpan prefetch_span("pager", "prefetch", "page",
                               static_cast<int64_t>(page_id));
  Page staged;
  CHASE_RETURN_IF_ERROR(disk_->ReadPage(page_id, &staged));
  MutexLock lock(shard.mu);
  if (shard.page_table.count(page_id) > 0) {
    // A concurrent Fetch won the race; the staged read is wasted but the
    // pool state is already what we wanted.
    ++shard.stats.prefetch_drops;
    return OkStatus();
  }
  auto slot = AcquireFrame(&shard);
  if (!slot.ok()) {
    if (slot.status().code() != StatusCode::kResourceExhausted) {
      // A dirty victim's write-back failed — a real I/O error, not
      // back-pressure.
      return slot.status();
    }
    // Every frame pinned: read-ahead simply has nowhere to land. Not an
    // error for a best-effort prefetch.
    ++shard.stats.prefetch_drops;
    return OkStatus();
  }
  Frame& frame = shard.frames[*slot];
  frame.page = staged;
  frame.page_id = page_id;
  frame.pin_count = 0;
  frame.dirty = false;
  frame.referenced = true;
  shard.page_table[page_id] = *slot;
  ++shard.stats.prefetches;
  return OkStatus();
}

Status BufferPool::Flush() {
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    for (Frame& frame : shard->frames) {
      if (frame.page_id != kInvalidPageId && frame.dirty) {
        CHASE_RETURN_IF_ERROR(disk_->WritePage(frame.page_id, &frame.page));
        frame.dirty = false;
        ++shard->stats.dirty_writebacks;
      }
    }
  }
  return disk_->Sync();
}

uint32_t BufferPool::pinned_frames() const {
  uint32_t pinned = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    for (const Frame& frame : shard->frames) {
      if (frame.pin_count > 0) ++pinned;
    }
  }
  return pinned;
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats total;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total.MergeFrom(shard->stats);
  }
  return total;
}

void BufferPool::ResetStats() {
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    shard->stats.Reset();
  }
}

StatusOr<uint32_t> BufferPool::AcquireFrame(Shard* shard) {
  // Free frame first.
  for (uint32_t i = 0; i < shard->frames.size(); ++i) {
    if (shard->frames[i].page_id == kInvalidPageId) return i;
  }
  // Clock sweep: two full passes guarantee a victim is found if any frame is
  // unpinned (the first pass may only clear reference bits).
  const uint32_t n = static_cast<uint32_t>(shard->frames.size());
  for (uint32_t step = 0; step < 2 * n; ++step) {
    uint32_t slot = shard->clock_hand;
    shard->clock_hand = (shard->clock_hand + 1) % n;
    Frame& frame = shard->frames[slot];
    if (frame.pin_count > 0) continue;
    if (frame.referenced) {
      frame.referenced = false;
      continue;
    }
    if (frame.dirty) {
      CHASE_RETURN_IF_ERROR(disk_->WritePage(frame.page_id, &frame.page));
      ++shard->stats.dirty_writebacks;
    }
    shard->page_table.erase(frame.page_id);
    frame.page_id = kInvalidPageId;
    frame.dirty = false;
    ++shard->stats.evictions;
    return slot;
  }
  return ResourceExhaustedError(
      "all frames of the page's buffer-pool shard are pinned");
}

void BufferPool::Unpin(PageId page_id, uint32_t frame) {
  Shard& shard = *shards_[ShardOf(page_id)];
  MutexLock lock(shard.mu);
  assert(shard.frames[frame].pin_count > 0);
  --shard.frames[frame].pin_count;
}

void BufferPool::MarkDirty(PageId page_id, uint32_t frame) {
  Shard& shard = *shards_[ShardOf(page_id)];
  MutexLock lock(shard.mu);
  shard.frames[frame].dirty = true;
}

}  // namespace pager
}  // namespace chase
