#include "pager/buffer_pool.h"

#include <cassert>
#include <utility>

namespace chase {
namespace pager {

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = std::exchange(other.pool_, nullptr);
    page_id_ = other.page_id_;
    frame_ = other.frame_;
  }
  return *this;
}

const Page& PageGuard::page() const {
  assert(valid());
  return pool_->frames_[frame_].page;
}

Page& PageGuard::MutablePage() {
  assert(valid());
  pool_->MarkDirty(frame_);
  return pool_->frames_[frame_].page;
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(DiskManager* disk, uint32_t num_frames) : disk_(disk) {
  assert(num_frames >= 1);
  frames_.resize(num_frames);
}

StatusOr<PageGuard> BufferPool::Fetch(PageId page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    Frame& frame = frames_[it->second];
    ++frame.pin_count;
    frame.referenced = true;
    ++stats_.hits;
    return PageGuard(this, page_id, it->second);
  }
  ++stats_.misses;
  CHASE_ASSIGN_OR_RETURN(uint32_t slot, AcquireFrame());
  Frame& frame = frames_[slot];
  CHASE_RETURN_IF_ERROR(disk_->ReadPage(page_id, &frame.page));
  frame.page_id = page_id;
  frame.pin_count = 1;
  frame.dirty = false;
  frame.referenced = true;
  page_table_[page_id] = slot;
  return PageGuard(this, page_id, slot);
}

StatusOr<PageGuard> BufferPool::Allocate() {
  std::lock_guard<std::mutex> lock(mu_);
  CHASE_ASSIGN_OR_RETURN(PageId page_id, disk_->AllocatePage());
  CHASE_ASSIGN_OR_RETURN(uint32_t slot, AcquireFrame());
  Frame& frame = frames_[slot];
  frame.page.Zero();
  // Stamp a default header so the page verifies even if the caller never
  // writes one before the frame is evicted.
  WritePageHeader(&frame.page, PageHeader{});
  frame.page_id = page_id;
  frame.pin_count = 1;
  frame.dirty = true;
  frame.referenced = true;
  page_table_[page_id] = slot;
  return PageGuard(this, page_id, slot);
}

Status BufferPool::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Frame& frame : frames_) {
    if (frame.page_id != kInvalidPageId && frame.dirty) {
      CHASE_RETURN_IF_ERROR(disk_->WritePage(frame.page_id, &frame.page));
      frame.dirty = false;
      ++stats_.dirty_writebacks;
    }
  }
  return disk_->Sync();
}

uint32_t BufferPool::pinned_frames() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t pinned = 0;
  for (const Frame& frame : frames_) {
    if (frame.pin_count > 0) ++pinned;
  }
  return pinned;
}

StatusOr<uint32_t> BufferPool::AcquireFrame() {
  // Free frame first.
  for (uint32_t i = 0; i < frames_.size(); ++i) {
    if (frames_[i].page_id == kInvalidPageId) return i;
  }
  // Clock sweep: two full passes guarantee a victim is found if any frame is
  // unpinned (the first pass may only clear reference bits).
  const uint32_t n = static_cast<uint32_t>(frames_.size());
  for (uint32_t step = 0; step < 2 * n; ++step) {
    uint32_t slot = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % n;
    Frame& frame = frames_[slot];
    if (frame.pin_count > 0) continue;
    if (frame.referenced) {
      frame.referenced = false;
      continue;
    }
    if (frame.dirty) {
      CHASE_RETURN_IF_ERROR(disk_->WritePage(frame.page_id, &frame.page));
      ++stats_.dirty_writebacks;
    }
    page_table_.erase(frame.page_id);
    frame.page_id = kInvalidPageId;
    frame.dirty = false;
    ++stats_.evictions;
    return slot;
  }
  return ResourceExhaustedError("all buffer pool frames are pinned");
}

void BufferPool::Unpin(uint32_t frame) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(frames_[frame].pin_count > 0);
  --frames_[frame].pin_count;
}

void BufferPool::MarkDirty(uint32_t frame) {
  std::lock_guard<std::mutex> lock(mu_);
  frames_[frame].dirty = true;
}

}  // namespace pager
}  // namespace chase
