// BufferPool: a fixed set of in-memory frames caching disk pages, with
// clock (second-chance) eviction, pin counting, and dirty-page write-back.
//
// The pool is the single path between the disk-resident algorithms and the
// DiskManager, so its hit/miss/eviction counters — together with the
// DiskManager's page I/O counters — fully account for the cost of the
// on-disk FindShapes variants. Pages are pinned through the RAII PageGuard;
// a pinned page is never evicted, and the pool reports kResourceExhausted if
// every frame is pinned.
//
// The pool is thread-safe: Fetch/Allocate/Flush and guard release serialize
// on an internal mutex, so the parallel shape scanner can issue concurrent
// read-only scans through one pool. Reading a pinned page's payload needs
// no lock.

#ifndef CHASE_PAGER_BUFFER_POOL_H_
#define CHASE_PAGER_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "pager/disk_manager.h"
#include "pager/page.h"

namespace chase {
namespace pager {

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;

  void Reset() { *this = BufferPoolStats(); }
};

class BufferPool;

// Pins one page for the guard's lifetime. Mark dirty before mutating the
// payload; the pool writes dirty frames back on eviction and on Flush.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const { return page_id_; }

  const Page& page() const;
  Page& MutablePage();  // marks the frame dirty

  void Release();

 private:
  friend class BufferPool;
  PageGuard(BufferPool* pool, PageId page_id, uint32_t frame)
      : pool_(pool), page_id_(page_id), frame_(frame) {}

  BufferPool* pool_ = nullptr;
  PageId page_id_ = kInvalidPageId;
  uint32_t frame_ = 0;
};

class BufferPool {
 public:
  // `disk` must outlive the pool. `num_frames` >= 1.
  BufferPool(DiskManager* disk, uint32_t num_frames);

  // Pins the page, reading it from disk on a miss.
  StatusOr<PageGuard> Fetch(PageId page_id);

  // Allocates a fresh page on disk and pins it (already counted dirty so the
  // header written by the caller reaches disk).
  StatusOr<PageGuard> Allocate();

  // Writes back all dirty frames and syncs the file.
  Status Flush();

  uint32_t num_frames() const { return static_cast<uint32_t>(frames_.size()); }
  uint32_t pinned_frames() const;

  BufferPoolStats& stats() { return stats_; }
  const BufferPoolStats& stats() const { return stats_; }
  DiskManager& disk() { return *disk_; }

 private:
  friend class PageGuard;

  struct Frame {
    Page page;
    PageId page_id = kInvalidPageId;
    uint32_t pin_count = 0;
    bool dirty = false;
    bool referenced = false;
  };

  // Finds a free or evictable frame, writing back a dirty victim. Requires
  // mu_ held.
  StatusOr<uint32_t> AcquireFrame();

  void Unpin(uint32_t frame);
  void MarkDirty(uint32_t frame);

  // Guards the page table, frame bookkeeping, and DiskManager access.
  // Pinned frames' page payloads are read outside the lock (a pinned page
  // is never evicted, and read-only scans never mutate it), which is what
  // lets concurrent ScanRange workers overlap their hashing work.
  mutable std::mutex mu_;
  DiskManager* disk_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, uint32_t> page_table_;
  uint32_t clock_hand_ = 0;
  BufferPoolStats stats_;
};

}  // namespace pager
}  // namespace chase

#endif  // CHASE_PAGER_BUFFER_POOL_H_
