// BufferPool: a fixed set of in-memory frames caching disk pages, with
// clock (second-chance) eviction, pin counting, and dirty-page write-back.
//
// The pool is the single path between the disk-resident algorithms and the
// DiskManager, so its hit/miss/eviction counters — together with the
// DiskManager's page I/O counters — fully account for the cost of the
// on-disk FindShapes variants. Pages are pinned through the RAII PageGuard;
// a pinned page is never evicted. Fetch/Allocate briefly wait out a shard
// whose frames are all pinned (pins are transient in scan workloads) and
// report kResourceExhausted only if it stays full — e.g. when guards are
// held indefinitely.
//
// Concurrency: the pool is partitioned into N shards (page id → shard by a
// mixed hash), each with its own latch, page table, frame set, clock hand,
// and counters, so parallel disk scans touching different pages contend on
// different latches instead of one global mutex. Reading a pinned page's
// payload needs no lock (a pinned page is never evicted, and read-only
// scans never mutate it). Frames are divided evenly across shards; a shard
// whose frames are all pinned reports kResourceExhausted even if another
// shard has free frames — size pools with at least a few frames per shard.
//
// Prefetch(page_id) faults a page into its shard without pinning it: the
// disk read happens outside the shard latch (into a scratch buffer), so
// background read-ahead threads overlap I/O with the scan threads' hashing
// work instead of blocking them.

#ifndef CHASE_PAGER_BUFFER_POOL_H_
#define CHASE_PAGER_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "base/sync.h"
#include "pager/disk_manager.h"
#include "pager/page.h"

namespace chase {
namespace pager {

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;
  uint64_t prefetches = 0;       // pages faulted in by Prefetch
  uint64_t prefetch_drops = 0;   // Prefetch calls that found nothing to do

  void Reset() { *this = BufferPoolStats(); }

  BufferPoolStats& MergeFrom(const BufferPoolStats& other) {
    hits += other.hits;
    misses += other.misses;
    evictions += other.evictions;
    dirty_writebacks += other.dirty_writebacks;
    prefetches += other.prefetches;
    prefetch_drops += other.prefetch_drops;
    return *this;
  }
};

class BufferPool;

// Pins one page for the guard's lifetime. Mark dirty before mutating the
// payload; the pool writes dirty frames back on eviction and on Flush.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const { return page_id_; }

  // Payload reads go through the frame vector without the shard latch: the
  // guard's pin is the invariant that replaces it (a pinned frame is never
  // evicted or re-pointed), which the analysis cannot express.
  const Page& page() const NO_THREAD_SAFETY_ANALYSIS;
  Page& MutablePage() NO_THREAD_SAFETY_ANALYSIS;  // marks the frame dirty

  void Release();

 private:
  friend class BufferPool;
  PageGuard(BufferPool* pool, PageId page_id, uint32_t frame)
      : pool_(pool), page_id_(page_id), frame_(frame) {}

  BufferPool* pool_ = nullptr;
  PageId page_id_ = kInvalidPageId;
  uint32_t frame_ = 0;  // slot within the page's shard
};

class BufferPool {
 public:
  // Default shard count for pools large enough to split (see the
  // constructor); small pools stay single-sharded so per-shard capacity
  // semantics match the unsharded pool.
  static constexpr uint32_t kDefaultShards = 8;
  // Auto-sharding keeps at least this many frames per shard.
  static constexpr uint32_t kMinFramesPerShard = 8;

  // `disk` must outlive the pool. `num_frames` >= 1. `num_shards` = 0 picks
  // min(kDefaultShards, num_frames / kMinFramesPerShard) (at least 1);
  // explicit counts are clamped to [1, num_frames].
  BufferPool(DiskManager* disk, uint32_t num_frames, uint32_t num_shards = 0);

  // Pins the page, reading it from disk on a miss. Miss reads are staged
  // outside the shard latch so concurrent faults on one shard overlap
  // their I/O; like Prefetch, this means Fetch must not race with a
  // writer of the same page (see the contract on Prefetch — write phases
  // and scan phases alternate in every current deployment).
  [[nodiscard]] StatusOr<PageGuard> Fetch(PageId page_id);

  // Allocates a fresh page on disk and pins it (already counted dirty so the
  // header written by the caller reaches disk).
  [[nodiscard]] StatusOr<PageGuard> Allocate();

  // Faults `page_id` into its shard without pinning it — the read-ahead
  // path. The disk read runs outside the shard latch; if the page arrived
  // meanwhile (or is already resident) the call is a cheap no-op. Errors
  // are real I/O failures; callers doing best-effort read-ahead may ignore
  // them (the foreground Fetch will surface the same error).
  //
  // Contract: must not race with writers of the same page. The unlatched
  // read cannot tell a concurrent mutate+evict apart from the quiescent
  // case and would re-install the pre-write image as a clean frame. The
  // scan drivers that use it are read-only; a future writer-concurrent
  // deployment needs page versioning here.
  [[nodiscard]] Status Prefetch(PageId page_id);

  // Writes back all dirty frames and syncs the file.
  [[nodiscard]] Status Flush();

  uint32_t num_frames() const { return num_frames_; }
  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }
  uint32_t pinned_frames() const;

  // Aggregated counters across shards; each shard is read under its latch,
  // so the snapshot is race-free (though shards are not frozen relative to
  // one another while scans run).
  BufferPoolStats stats() const;
  void ResetStats();

  DiskManager& disk() { return *disk_; }

 private:
  friend class PageGuard;

  struct Frame {
    Page page;
    PageId page_id = kInvalidPageId;
    uint32_t pin_count = 0;
    bool dirty = false;
    bool referenced = false;
  };

  struct Shard {
    // Guards the shard's page table, frame bookkeeping, and counters.
    // Pinned frames' page payloads are read outside the latch (see
    // PageGuard::page).
    mutable Mutex mu;
    std::vector<Frame> frames GUARDED_BY(mu);
    std::unordered_map<PageId, uint32_t> page_table GUARDED_BY(mu);
    uint32_t clock_hand GUARDED_BY(mu) = 0;
    BufferPoolStats stats GUARDED_BY(mu);
  };

  size_t ShardOf(PageId page_id) const;

  // Shared Fetch/Allocate scaffold: waits out transient pin-exhaustion of
  // `shard` with a bounded yield-retry, calling `check_hit` (latch held;
  // may short-circuit with an already-resident frame) and, once a frame
  // is free, `install` (latch held).
  template <typename CheckHit, typename Install>
  [[nodiscard]]
  StatusOr<PageGuard> AcquireAndInstall(Shard& shard, CheckHit&& check_hit,
                                        Install&& install);

  // Finds a free or evictable frame in `shard`, writing back a dirty
  // victim.
  [[nodiscard]]
  StatusOr<uint32_t> AcquireFrame(Shard* shard) REQUIRES(shard->mu);

  void Unpin(PageId page_id, uint32_t frame);
  void MarkDirty(PageId page_id, uint32_t frame);

  DiskManager* disk_;
  uint32_t num_frames_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace pager
}  // namespace chase

#endif  // CHASE_PAGER_BUFFER_POOL_H_
