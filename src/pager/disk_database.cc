#include "pager/disk_database.h"

#include <utility>

#include "base/bytes.h"
#include "base/status.h"
#include "logic/database.h"
#include "logic/schema.h"
#include "pager/buffer_pool.h"
#include "pager/disk_manager.h"
#include "pager/heap_file.h"
#include "pager/page.h"

namespace chase {
namespace pager {

namespace {

constexpr uint32_t kCatalogVersion = 1;
constexpr uint32_t kCatalogPayload = kPageSize - kPageHeaderSize;

}  // namespace

StatusOr<std::unique_ptr<DiskDatabase>> DiskDatabase::Create(
    const std::string& path, const Database& db, uint32_t num_frames,
    uint32_t pool_shards) {
  CHASE_ASSIGN_OR_RETURN(DiskManager manager, DiskManager::Create(path));
  auto disk_db = std::unique_ptr<DiskDatabase>(new DiskDatabase());
  disk_db->disk_ = std::make_unique<DiskManager>(std::move(manager));
  disk_db->pool_ = std::make_unique<BufferPool>(disk_db->disk_.get(),
                                                num_frames, pool_shards);

  const Schema& schema = db.schema();
  for (PredId pred = 0; pred < schema.NumPredicates(); ++pred) {
    CHASE_ASSIGN_OR_RETURN(
        PredId copied,
        disk_db->schema_.AddPredicate(schema.PredicateName(pred),
                                      schema.Arity(pred)));
    if (copied != pred) return InternalError("schema copy id mismatch");
    CHASE_ASSIGN_OR_RETURN(
        HeapFile heap,
        HeapFile::Create(disk_db->pool_.get(), schema.Arity(pred)));
    const uint32_t arity = schema.Arity(pred);
    const auto tuples = db.Tuples(pred);
    for (size_t row = 0; row * arity < tuples.size(); ++row) {
      CHASE_RETURN_IF_ERROR(
          heap.Append(tuples.subspan(row * arity, arity)));
    }
    disk_db->relations_.push_back(std::move(heap));
  }

  disk_db->anonymous_domain_ = db.NumConstants();
  disk_db->constant_names_.reserve(db.NumNamedConstants());
  for (uint32_t id = 0; id < db.NumNamedConstants(); ++id) {
    disk_db->constant_names_.push_back(db.ConstantName(id));
  }

  CHASE_RETURN_IF_ERROR(disk_db->SaveCatalog());
  return disk_db;
}

StatusOr<std::unique_ptr<DiskDatabase>> DiskDatabase::Open(
    const std::string& path, uint32_t num_frames, uint32_t pool_shards) {
  CHASE_ASSIGN_OR_RETURN(DiskManager manager, DiskManager::Open(path));
  auto disk_db = std::unique_ptr<DiskDatabase>(new DiskDatabase());
  disk_db->disk_ = std::make_unique<DiskManager>(std::move(manager));
  disk_db->pool_ = std::make_unique<BufferPool>(disk_db->disk_.get(),
                                                num_frames, pool_shards);
  CHASE_RETURN_IF_ERROR(disk_db->LoadCatalog());
  return disk_db;
}

uint64_t DiskDatabase::TotalTuples() const {
  uint64_t total = 0;
  for (const HeapFile& heap : relations_) total += heap.num_tuples();
  return total;
}

std::vector<PredId> DiskDatabase::NonEmptyPredicates() const {
  std::vector<PredId> preds;
  for (PredId pred = 0; pred < relations_.size(); ++pred) {
    if (relations_[pred].num_tuples() > 0) preds.push_back(pred);
  }
  return preds;
}

Status DiskDatabase::Append(PredId pred, std::span<const uint32_t> tuple) {
  if (pred >= relations_.size()) {
    return InvalidArgumentError("unknown predicate id " +
                                std::to_string(pred));
  }
  return relations_[pred].Append(tuple);
}

Status DiskDatabase::SaveCatalog() {
  ByteWriter writer;
  writer.PutU32(kCatalogVersion);
  writer.PutU32(static_cast<uint32_t>(schema_.NumPredicates()));
  for (PredId pred = 0; pred < schema_.NumPredicates(); ++pred) {
    writer.PutString(schema_.PredicateName(pred));
    writer.PutU32(schema_.Arity(pred));
    writer.PutU32(relations_[pred].first_page());
    writer.PutU32(relations_[pred].last_page());
    writer.PutU64(relations_[pred].num_tuples());
  }
  writer.PutU64(anonymous_domain_);
  writer.PutU32(static_cast<uint32_t>(constant_names_.size()));
  for (const std::string& name : constant_names_) writer.PutString(name);

  // Spill the stream over the page-0 catalog chain, extending it on demand.
  const std::vector<uint8_t>& bytes = writer.bytes();
  size_t offset = 0;
  PageId current = 0;
  while (true) {
    CHASE_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(current));
    Page& page = guard.MutablePage();
    PageHeader header = ReadPageHeader(page);
    header.kind = static_cast<uint32_t>(PageKind::kCatalog);
    const size_t chunk = std::min<size_t>(kCatalogPayload,
                                          bytes.size() - offset);
    std::memcpy(page.bytes.data() + kPageHeaderSize, bytes.data() + offset,
                chunk);
    header.count = static_cast<uint32_t>(chunk);
    offset += chunk;
    if (offset == bytes.size()) {
      header.next = kInvalidPageId;  // truncate any stale chain tail
      WritePageHeader(&page, header);
      break;
    }
    if (header.next == kInvalidPageId) {
      CHASE_ASSIGN_OR_RETURN(PageGuard fresh, pool_->Allocate());
      PageHeader fresh_header;
      fresh_header.kind = static_cast<uint32_t>(PageKind::kCatalog);
      WritePageHeader(&fresh.MutablePage(), fresh_header);
      header.next = fresh.page_id();
    }
    WritePageHeader(&page, header);
    current = header.next;
  }
  return pool_->Flush();
}

Status DiskDatabase::LoadCatalog() {
  std::vector<uint8_t> bytes;
  PageId current = 0;
  while (current != kInvalidPageId) {
    CHASE_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(current));
    const Page& page = guard.page();
    PageHeader header = ReadPageHeader(page);
    if (header.kind != static_cast<uint32_t>(PageKind::kCatalog)) {
      return InternalError("catalog chain reached a non-catalog page");
    }
    if (header.count > kCatalogPayload) {
      return InternalError("catalog page payload size out of range");
    }
    bytes.insert(bytes.end(), page.bytes.data() + kPageHeaderSize,
                 page.bytes.data() + kPageHeaderSize + header.count);
    current = header.next;
  }

  ByteReader reader(bytes);
  CHASE_ASSIGN_OR_RETURN(uint32_t version, reader.GetU32());
  if (version != kCatalogVersion) {
    return FailedPreconditionError("unsupported catalog version " +
                                   std::to_string(version));
  }
  CHASE_ASSIGN_OR_RETURN(uint32_t num_preds, reader.GetU32());
  for (uint32_t i = 0; i < num_preds; ++i) {
    CHASE_ASSIGN_OR_RETURN(std::string name, reader.GetString());
    CHASE_ASSIGN_OR_RETURN(uint32_t arity, reader.GetU32());
    CHASE_ASSIGN_OR_RETURN(uint32_t first_page, reader.GetU32());
    CHASE_ASSIGN_OR_RETURN(uint32_t last_page, reader.GetU32());
    CHASE_ASSIGN_OR_RETURN(uint64_t num_tuples, reader.GetU64());
    CHASE_ASSIGN_OR_RETURN(PredId pred, schema_.AddPredicate(name, arity));
    if (pred != i) return InternalError("catalog predicate id mismatch");
    relations_.emplace_back(pool_.get(), arity, first_page, last_page,
                            num_tuples);
  }
  CHASE_ASSIGN_OR_RETURN(anonymous_domain_, reader.GetU64());
  CHASE_ASSIGN_OR_RETURN(uint32_t num_names, reader.GetU32());
  for (uint32_t i = 0; i < num_names; ++i) {
    CHASE_ASSIGN_OR_RETURN(std::string name, reader.GetString());
    constant_names_.push_back(std::move(name));
  }
  if (!reader.AtEnd()) {
    return InternalError("trailing bytes after catalog");
  }
  return OkStatus();
}

StatusOr<Database> DiskDatabase::ToDatabase() const {
  Database db(&schema_);
  for (const std::string& name : constant_names_) db.InternConstant(name);
  db.EnsureAnonymousDomain(anonymous_domain_);
  for (PredId pred = 0; pred < relations_.size(); ++pred) {
    Status append_status = OkStatus();
    Status scan_status =
        Scan(pred, [&](std::span<const uint32_t> tuple) {
          append_status = db.AddFact(pred, tuple);
          return append_status.ok();
        });
    CHASE_RETURN_IF_ERROR(scan_status);
    CHASE_RETURN_IF_ERROR(append_status);
  }
  return db;
}

std::string DiskDatabase::ConstantName(uint32_t constant_id) const {
  if (constant_id < constant_names_.size()) {
    return constant_names_[constant_id];
  }
  return "c" + std::to_string(constant_id);
}

}  // namespace pager
}  // namespace chase
