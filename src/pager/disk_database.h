// DiskDatabase: a database persisted in a single page file.
//
// Layout: page 0 heads a chain of catalog pages holding the serialized
// schema (predicate names and arities), per-relation heap-chain locations
// and tuple counts, and the constant dictionary; every relation is a
// HeapFile chain of fixed-width tuple pages. All access goes through a
// BufferPool, so the disk-resident FindShapes variants report exact I/O and
// cache behaviour.
//
// This is the substrate standing in for "the database lives in PostgreSQL"
// when data must survive a process or is too large to keep resident; the
// in-memory storage::Catalog remains the default for the paper's benches.

#ifndef CHASE_PAGER_DISK_DATABASE_H_
#define CHASE_PAGER_DISK_DATABASE_H_

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "base/status.h"
#include "logic/database.h"
#include "logic/schema.h"
#include "pager/buffer_pool.h"
#include "pager/disk_manager.h"
#include "pager/heap_file.h"

namespace chase {
namespace pager {

class DiskDatabase {
 public:
  // Materializes `db` into a new file at `path` (truncates any existing
  // file) and leaves it open. `pool_shards` is forwarded to the BufferPool
  // (0 = auto: split only when the pool is large enough).
  [[nodiscard]] static StatusOr<std::unique_ptr<DiskDatabase>> Create(
      const std::string& path, const Database& db, uint32_t num_frames = 64,
      uint32_t pool_shards = 0);

  // Opens an existing file and loads its catalog.
  [[nodiscard]] static StatusOr<std::unique_ptr<DiskDatabase>> Open(
      const std::string& path, uint32_t num_frames = 64,
      uint32_t pool_shards = 0);

  const Schema& schema() const { return schema_; }

  uint64_t NumTuples(PredId pred) const {
    return relations_[pred].num_tuples();
  }
  bool IsEmpty(PredId pred) const { return NumTuples(pred) == 0; }
  uint64_t TotalTuples() const;

  // The catalog query of Section 5.3, answered from catalog metadata only.
  std::vector<PredId> NonEmptyPredicates() const;

  // Scans `pred` in heap order; stops early when `visit` returns false.
  [[nodiscard]] Status Scan(PredId pred,
              const std::function<bool(std::span<const uint32_t>)>& visit)
      const {
    return relations_[pred].Scan(visit);
  }

  // The heap chain backing `pred` — DiskShapeSource seeks through it for
  // row-range scans.
  const HeapFile& relation(PredId pred) const { return relations_[pred]; }

  // Appends a tuple and updates the catalog's in-memory view; call
  // SaveCatalog (or Close) to persist the new counts and chain tails.
  [[nodiscard]] Status Append(PredId pred, std::span<const uint32_t> tuple);

  // Serializes the catalog into the page-0 chain and flushes the pool.
  [[nodiscard]] Status SaveCatalog();

  // Reloads the whole file into an in-memory Database.
  [[nodiscard]] StatusOr<Database> ToDatabase() const;

  std::string ConstantName(uint32_t constant_id) const;

  BufferPool& buffer_pool() const { return *pool_; }
  DiskManager& disk() const { return *disk_; }

 private:
  DiskDatabase() = default;

  [[nodiscard]] Status LoadCatalog();

  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  Schema schema_;
  std::vector<HeapFile> relations_;  // indexed by PredId
  std::vector<std::string> constant_names_;
  uint64_t anonymous_domain_ = 0;
};

}  // namespace pager
}  // namespace chase

#endif  // CHASE_PAGER_DISK_DATABASE_H_
