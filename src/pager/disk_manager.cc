#include "pager/disk_manager.h"

#include <algorithm>
#include <utility>

namespace chase {
namespace pager {

namespace {

bool AllZero(const Page& page) {
  return std::all_of(page.bytes.begin(), page.bytes.end(),
                     [](uint8_t b) { return b == 0; });
}

}  // namespace

StatusOr<DiskManager> DiskManager::Create(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb+");
  if (file == nullptr) {
    return InternalError("cannot create file: " + path);
  }
  DiskManager manager(file, path, 0);
  CHASE_ASSIGN_OR_RETURN(PageId root, manager.AllocatePage());
  Page page;
  page.Zero();
  PageHeader header;
  header.kind = static_cast<uint32_t>(PageKind::kCatalog);
  WritePageHeader(&page, header);
  CHASE_RETURN_IF_ERROR(manager.WritePage(root, &page));
  return manager;
}

StatusOr<DiskManager> DiskManager::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb+");
  if (file == nullptr) {
    return NotFoundError("cannot open file: " + path);
  }
  if (std::fseek(file, 0, SEEK_END) != 0) {
    std::fclose(file);
    return InternalError("seek failed: " + path);
  }
  long size = std::ftell(file);
  if (size < 0 || size % kPageSize != 0) {
    std::fclose(file);
    return FailedPreconditionError(path + ": size is not page-aligned");
  }
  return DiskManager(file, path, static_cast<PageId>(size / kPageSize));
}

DiskManager::DiskManager(DiskManager&& other) noexcept
    : file_(std::exchange(other.file_, nullptr)),
      path_(std::move(other.path_)),
      num_pages_(other.num_pages_),
      stats_(other.stats_),
      read_fault_(std::move(other.read_fault_)),
      write_fault_(std::move(other.write_fault_)) {}

DiskManager& DiskManager::operator=(DiskManager&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = std::exchange(other.file_, nullptr);
    path_ = std::move(other.path_);
    num_pages_ = other.num_pages_;
    stats_ = other.stats_;
    read_fault_ = std::move(other.read_fault_);
    write_fault_ = std::move(other.write_fault_);
  }
  return *this;
}

DiskManager::~DiskManager() {
  if (file_ != nullptr) std::fclose(file_);
}

StatusOr<PageId> DiskManager::AllocatePage() {
  if (num_pages_ == kInvalidPageId) {
    return ResourceExhaustedError("page id space exhausted");
  }
  PageId id = num_pages_;
  Page zero;
  zero.Zero();
  if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0 ||
      std::fwrite(zero.bytes.data(), 1, kPageSize, file_) != kPageSize) {
    return InternalError("allocation write failed at page " +
                         std::to_string(id));
  }
  ++num_pages_;
  ++stats_.pages_allocated;
  return id;
}

Status DiskManager::ReadPage(PageId page_id, Page* page) {
  if (page_id >= num_pages_) {
    return OutOfRangeError("read of unallocated page " +
                           std::to_string(page_id));
  }
  if (read_fault_) CHASE_RETURN_IF_ERROR(read_fault_(page_id));
  if (std::fseek(file_, static_cast<long>(page_id) * kPageSize, SEEK_SET) !=
          0 ||
      std::fread(page->bytes.data(), 1, kPageSize, file_) != kPageSize) {
    return InternalError("short read at page " + std::to_string(page_id));
  }
  ++stats_.pages_read;
  if (!AllZero(*page) && !VerifyPage(*page)) {
    return InternalError("checksum mismatch at page " +
                         std::to_string(page_id));
  }
  return OkStatus();
}

Status DiskManager::WritePage(PageId page_id, Page* page) {
  if (page_id >= num_pages_) {
    return OutOfRangeError("write of unallocated page " +
                           std::to_string(page_id));
  }
  if (write_fault_) CHASE_RETURN_IF_ERROR(write_fault_(page_id));
  SealPage(page);
  if (std::fseek(file_, static_cast<long>(page_id) * kPageSize, SEEK_SET) !=
          0 ||
      std::fwrite(page->bytes.data(), 1, kPageSize, file_) != kPageSize) {
    return InternalError("short write at page " + std::to_string(page_id));
  }
  ++stats_.pages_written;
  return OkStatus();
}

Status DiskManager::Sync() {
  if (std::fflush(file_) != 0) {
    return InternalError("fflush failed: " + path_);
  }
  ++stats_.syncs;
  return OkStatus();
}

}  // namespace pager
}  // namespace chase
