#include "pager/disk_manager.h"

#include "base/status.h"
#include "base/sync.h"
#include "pager/page.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>

namespace chase {
namespace pager {

namespace {

bool AllZero(const Page& page) {
  return std::all_of(page.bytes.begin(), page.bytes.end(),
                     [](uint8_t b) { return b == 0; });
}

// Full-page positional read/write; POSIX pread/pwrite may return short on
// signals, so loop until the page is transferred.
bool PreadPage(int fd, PageId page_id, uint8_t* data) {
  size_t done = 0;
  while (done < kPageSize) {
    const ssize_t n =
        ::pread(fd, data + done, kPageSize - done,
                static_cast<off_t>(page_id) * kPageSize + done);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

bool PwritePage(int fd, PageId page_id, const uint8_t* data) {
  size_t done = 0;
  while (done < kPageSize) {
    const ssize_t n =
        ::pwrite(fd, data + done, kPageSize - done,
                 static_cast<off_t>(page_id) * kPageSize + done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

StatusOr<DiskManager> DiskManager::Create(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return InternalError("cannot create file: " + path);
  }
  DiskManager manager(fd, path, 0);
  CHASE_ASSIGN_OR_RETURN(PageId root, manager.AllocatePage());
  Page page;
  page.Zero();
  PageHeader header;
  header.kind = static_cast<uint32_t>(PageKind::kCatalog);
  WritePageHeader(&page, header);
  CHASE_RETURN_IF_ERROR(manager.WritePage(root, &page));
  return manager;
}

StatusOr<DiskManager> DiskManager::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return NotFoundError("cannot open file: " + path);
  }
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return InternalError("seek failed: " + path);
  }
  if (size % kPageSize != 0) {
    ::close(fd);
    return FailedPreconditionError(path + ": size is not page-aligned");
  }
  return DiskManager(fd, path, static_cast<PageId>(size / kPageSize));
}

DiskManager::DiskManager(DiskManager&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      num_pages_(other.num_pages_.load(std::memory_order_relaxed)),
      stats_(other.stats_),
      read_fault_(std::move(other.read_fault_)),
      write_fault_(std::move(other.write_fault_)),
      alloc_mu_(std::move(other.alloc_mu_)) {}

DiskManager& DiskManager::operator=(DiskManager&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    num_pages_.store(other.num_pages_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    stats_ = other.stats_;
    read_fault_ = std::move(other.read_fault_);
    write_fault_ = std::move(other.write_fault_);
    alloc_mu_ = std::move(other.alloc_mu_);
  }
  return *this;
}

DiskManager::~DiskManager() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<PageId> DiskManager::AllocatePage() {
  MutexLock lock(*alloc_mu_);
  const PageId id = num_pages_.load(std::memory_order_relaxed);
  if (id == kInvalidPageId) {
    return ResourceExhaustedError("page id space exhausted");
  }
  Page zero;
  zero.Zero();
  if (!PwritePage(fd_, id, zero.bytes.data())) {
    return InternalError("allocation write failed at page " +
                         std::to_string(id));
  }
  // Release so readers that learn the id through the allocating thread's
  // page table observe the extended file length.
  num_pages_.store(id + 1, std::memory_order_release);
  stats_.pages_allocated.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Status DiskManager::ReadPage(PageId page_id, Page* page) {
  if (page_id >= num_pages()) {
    return OutOfRangeError("read of unallocated page " +
                           std::to_string(page_id));
  }
  if (read_fault_) CHASE_RETURN_IF_ERROR(read_fault_(page_id));
  if (!PreadPage(fd_, page_id, page->bytes.data())) {
    return InternalError("short read at page " + std::to_string(page_id));
  }
  stats_.pages_read.fetch_add(1, std::memory_order_relaxed);
  if (!AllZero(*page) && !VerifyPage(*page)) {
    return InternalError("checksum mismatch at page " +
                         std::to_string(page_id));
  }
  return OkStatus();
}

Status DiskManager::WritePage(PageId page_id, Page* page) {
  if (page_id >= num_pages()) {
    return OutOfRangeError("write of unallocated page " +
                           std::to_string(page_id));
  }
  if (write_fault_) CHASE_RETURN_IF_ERROR(write_fault_(page_id));
  SealPage(page);
  if (!PwritePage(fd_, page_id, page->bytes.data())) {
    return InternalError("short write at page " + std::to_string(page_id));
  }
  stats_.pages_written.fetch_add(1, std::memory_order_relaxed);
  return OkStatus();
}

Status DiskManager::Sync() {
  if (::fdatasync(fd_) != 0 && errno != EINVAL && errno != EROFS) {
    return InternalError("fdatasync failed: " + path_);
  }
  stats_.syncs.fetch_add(1, std::memory_order_relaxed);
  return OkStatus();
}

}  // namespace pager
}  // namespace chase
