// DiskManager: page-granular file I/O with metered access and injectable
// faults.
//
// All reads and writes go through this class, so the I/O counters give an
// exact page-level cost model for the disk-resident FindShapes variants, and
// the fault hooks let tests exercise every error path (short read, failed
// write, checksum mismatch) without a real failing disk.

#ifndef CHASE_PAGER_DISK_MANAGER_H_
#define CHASE_PAGER_DISK_MANAGER_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "base/status.h"
#include "pager/page.h"

namespace chase {
namespace pager {

struct IoStats {
  uint64_t pages_read = 0;
  uint64_t pages_written = 0;
  uint64_t pages_allocated = 0;
  uint64_t syncs = 0;

  void Reset() { *this = IoStats(); }
};

// Decides whether a particular I/O should fail. Called before the I/O with
// the page id; returning a non-OK status aborts the operation with that
// status. Used by failure-injection tests.
using FaultHook = std::function<Status(PageId page_id)>;

class DiskManager {
 public:
  // Creates a new file (truncating any existing one) whose page 0 is a
  // zeroed, sealed catalog root.
  static StatusOr<DiskManager> Create(const std::string& path);

  // Opens an existing file; fails with kNotFound if it does not exist and
  // kFailedPrecondition if its size is not page-aligned.
  static StatusOr<DiskManager> Open(const std::string& path);

  DiskManager(DiskManager&& other) noexcept;
  DiskManager& operator=(DiskManager&& other) noexcept;
  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;
  ~DiskManager();

  // Appends a zeroed page and returns its id.
  StatusOr<PageId> AllocatePage();

  // Reads `page_id` into `*page`, verifying the checksum unless the page is
  // all-zero (freshly allocated pages are legitimately unsealed).
  Status ReadPage(PageId page_id, Page* page);

  // Seals (checksums) and writes the page.
  Status WritePage(PageId page_id, Page* page);

  Status Sync();

  PageId num_pages() const { return num_pages_; }
  const std::string& path() const { return path_; }

  IoStats& stats() { return stats_; }
  const IoStats& stats() const { return stats_; }

  // Fault injection; pass nullptr to clear.
  void set_read_fault(FaultHook hook) { read_fault_ = std::move(hook); }
  void set_write_fault(FaultHook hook) { write_fault_ = std::move(hook); }

 private:
  DiskManager(std::FILE* file, std::string path, PageId num_pages)
      : file_(file), path_(std::move(path)), num_pages_(num_pages) {}

  std::FILE* file_ = nullptr;
  std::string path_;
  PageId num_pages_ = 0;
  IoStats stats_;
  FaultHook read_fault_;
  FaultHook write_fault_;
};

}  // namespace pager
}  // namespace chase

#endif  // CHASE_PAGER_DISK_MANAGER_H_
