// DiskManager: page-granular file I/O with metered access and injectable
// faults.
//
// All reads and writes go through this class, so the I/O counters give an
// exact page-level cost model for the disk-resident FindShapes variants, and
// the fault hooks let tests exercise every error path (short read, failed
// write, checksum mismatch) without a real failing disk.
//
// The manager is thread-safe and lock-free on the data path: reads and
// writes use positional I/O (pread/pwrite), which POSIX makes atomic with
// respect to the file offset, so concurrent buffer-pool shards and prefetch
// threads issue page I/O in parallel without serializing on a file lock.
// Only AllocatePage (file extension) takes a mutex. The I/O counters are
// atomics, so they can be read (e.g. by DiskShapeSource::Io) while scans
// are in flight. The fault hooks themselves are test-only and must be set
// before concurrent use.

#ifndef CHASE_PAGER_DISK_MANAGER_H_
#define CHASE_PAGER_DISK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "base/status.h"
#include "base/sync.h"
#include "pager/page.h"

namespace chase {
namespace pager {

// Cumulative I/O counters. Fields are atomics so writers (concurrent page
// I/O) and readers (metering snapshots taken mid-scan) never race; the
// copy operations take a relaxed per-field snapshot.
struct IoStats {
  std::atomic<uint64_t> pages_read{0};
  std::atomic<uint64_t> pages_written{0};
  std::atomic<uint64_t> pages_allocated{0};
  std::atomic<uint64_t> syncs{0};

  IoStats() = default;
  IoStats(const IoStats& other) { *this = other; }
  IoStats& operator=(const IoStats& other) {
    pages_read.store(other.pages_read.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    pages_written.store(other.pages_written.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    pages_allocated.store(
        other.pages_allocated.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    syncs.store(other.syncs.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    return *this;
  }

  void Reset() { *this = IoStats(); }
};

// Decides whether a particular I/O should fail. Called before the I/O with
// the page id; returning a non-OK status aborts the operation with that
// status. Used by failure-injection tests. May be invoked concurrently from
// scan and prefetch threads.
using FaultHook = std::function<Status(PageId page_id)>;

class DiskManager {
 public:
  // Creates a new file (truncating any existing one) whose page 0 is a
  // zeroed, sealed catalog root.
  [[nodiscard]] static StatusOr<DiskManager> Create(const std::string& path);

  // Opens an existing file; fails with kNotFound if it does not exist and
  // kFailedPrecondition if its size is not page-aligned.
  [[nodiscard]] static StatusOr<DiskManager> Open(const std::string& path);

  DiskManager(DiskManager&& other) noexcept;
  DiskManager& operator=(DiskManager&& other) noexcept;
  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;
  ~DiskManager();

  // Appends a zeroed page and returns its id. Serialized internally.
  [[nodiscard]] StatusOr<PageId> AllocatePage();

  // Reads `page_id` into `*page`, verifying the checksum unless the page is
  // all-zero (freshly allocated pages are legitimately unsealed).
  [[nodiscard]] Status ReadPage(PageId page_id, Page* page);

  // Seals (checksums) and writes the page.
  [[nodiscard]] Status WritePage(PageId page_id, Page* page);

  [[nodiscard]] Status Sync();

  PageId num_pages() const {
    return num_pages_.load(std::memory_order_acquire);
  }
  const std::string& path() const { return path_; }

  IoStats& stats() { return stats_; }
  const IoStats& stats() const { return stats_; }

  // Fault injection; pass nullptr to clear. Not synchronized against
  // in-flight I/O — set before starting concurrent work.
  void set_read_fault(FaultHook hook) { read_fault_ = std::move(hook); }
  void set_write_fault(FaultHook hook) { write_fault_ = std::move(hook); }

 private:
  DiskManager(int fd, std::string path, PageId num_pages)
      : fd_(fd),
        path_(std::move(path)),
        num_pages_(num_pages),
        alloc_mu_(std::make_unique<Mutex>()) {}

  int fd_ = -1;
  std::string path_;
  std::atomic<PageId> num_pages_{0};
  IoStats stats_;
  FaultHook read_fault_;
  FaultHook write_fault_;
  // Serializes file extension; the read/write data path is lock-free.
  // Behind a unique_ptr so the manager stays movable (num_pages_ is the
  // only state it guards, and that is an atomic annotated by convention,
  // not GUARDED_BY — readers snapshot it lock-free).
  std::unique_ptr<Mutex> alloc_mu_;
};

}  // namespace pager
}  // namespace chase

#endif  // CHASE_PAGER_DISK_MANAGER_H_
