#include "pager/disk_shape_finder.h"

#include "base/status.h"
#include "logic/shape.h"
#include "pager/disk_database.h"
#include "pager/disk_shape_source.h"
#include "storage/shape_finder.h"

namespace chase {
namespace pager {

StatusOr<std::vector<Shape>> FindShapesOnDiskScan(const DiskDatabase& db) {
  DiskShapeSource source(&db);
  return storage::FindShapes(source,
                             {storage::ShapeFinderMode::kScan, /*threads=*/1});
}

StatusOr<std::vector<Shape>> FindShapesOnDiskExists(const DiskDatabase& db) {
  DiskShapeSource source(&db);
  return storage::FindShapes(
      source, {storage::ShapeFinderMode::kExists, /*threads=*/1});
}

}  // namespace pager
}  // namespace chase
