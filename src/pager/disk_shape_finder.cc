#include "pager/disk_shape_finder.h"

#include <algorithm>

#include "storage/shape_lattice.h"

namespace chase {
namespace pager {

namespace {

std::vector<Shape> Sorted(ShapeSet shapes) {
  std::vector<Shape> out(std::make_move_iterator(shapes.begin()),
                         std::make_move_iterator(shapes.end()));
  std::sort(out.begin(), out.end());
  return out;
}

// True iff `tuple` satisfies the equalities of `id` (relaxed query), i.e.,
// its id-tuple is coarser than or equal to `id`.
bool SatisfiesEqualities(std::span<const uint32_t> tuple, const IdTuple& id) {
  for (size_t i = 0; i < id.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (id[j] == id[i] && tuple[j] != tuple[i]) return false;
    }
  }
  return true;
}

}  // namespace

StatusOr<std::vector<Shape>> FindShapesOnDiskScan(const DiskDatabase& db) {
  ShapeSet shapes;
  for (PredId pred : db.NonEmptyPredicates()) {
    Status status = db.Scan(pred, [&](std::span<const uint32_t> tuple) {
      shapes.insert(ShapeOfTuple(pred, tuple));
      return true;
    });
    CHASE_RETURN_IF_ERROR(status);
  }
  return Sorted(std::move(shapes));
}

StatusOr<std::vector<Shape>> FindShapesOnDiskExists(const DiskDatabase& db) {
  ShapeSet shapes;
  for (PredId pred : db.NonEmptyPredicates()) {
    Status scan_status = OkStatus();
    // Each query is an early-exit scan of the relation's heap chain, the
    // same plan the paper's EXISTS queries execute in PostgreSQL.
    auto exists = [&](const IdTuple& id, bool exact) {
      bool found = false;
      Status status = db.Scan(pred, [&](std::span<const uint32_t> tuple) {
        const bool match = exact ? IdOf(tuple) == id
                                 : SatisfiesEqualities(tuple, id);
        if (match) {
          found = true;
          return false;  // stop the scan
        }
        return true;
      });
      if (!status.ok()) scan_status = status;
      return found;
    };
    storage::WalkShapeLattice(
        db.schema().Arity(pred),
        [&](const IdTuple& id) { return exists(id, /*exact=*/false); },
        [&](const IdTuple& id) { return exists(id, /*exact=*/true); },
        [&](const IdTuple& id) { shapes.insert(Shape(pred, id)); });
    CHASE_RETURN_IF_ERROR(scan_status);
  }
  return Sorted(std::move(shapes));
}

}  // namespace pager
}  // namespace chase
