// FindShapes over a DiskDatabase — the disk-resident counterparts of the
// paper's two implementations (Section 5.4), plus the I/O accounting needed
// to compare them against the in-memory row store:
//
//  * Scan mode mirrors the "in-memory" variant: one full heap scan per
//    relation through the buffer pool, hashing every tuple's id-tuple.
//  * Exists mode mirrors the "in-database" variant: one early-exit heap scan
//    per candidate query, walking the shape lattice with the same
//    Apriori-style pruning as storage::FindShapesInDatabase.
//
// Both return shape(D) sorted by (pred, id); a property test checks they
// agree with each other and with the in-memory finders.

#ifndef CHASE_PAGER_DISK_SHAPE_FINDER_H_
#define CHASE_PAGER_DISK_SHAPE_FINDER_H_

#include <vector>

#include "base/status.h"
#include "logic/shape.h"
#include "pager/disk_database.h"

namespace chase {
namespace pager {

StatusOr<std::vector<Shape>> FindShapesOnDiskScan(const DiskDatabase& db);
StatusOr<std::vector<Shape>> FindShapesOnDiskExists(const DiskDatabase& db);

}  // namespace pager
}  // namespace chase

#endif  // CHASE_PAGER_DISK_SHAPE_FINDER_H_
