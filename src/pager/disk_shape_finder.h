// FindShapes over a DiskDatabase — legacy entry points, now thin shims over
// the unified ShapeSource-based implementation (storage/shape_finder.h) via
// pager::DiskShapeSource:
//
//  * Scan mode mirrors the "in-memory" variant: one full heap scan per
//    relation through the buffer pool, hashing every tuple's id-tuple.
//  * Exists mode mirrors the "in-database" variant: one early-exit heap scan
//    per candidate query, walking the shape lattice with the same
//    Apriori-style pruning as the row-store exists plan.
//
// Prefer FindShapes(DiskShapeSource, {mode, threads}) directly — it also
// offers the parallel plans these shims predate. Both return shape(D)
// sorted by (pred, id); a property test checks all combinations agree.

#ifndef CHASE_PAGER_DISK_SHAPE_FINDER_H_
#define CHASE_PAGER_DISK_SHAPE_FINDER_H_

#include <vector>

#include "base/status.h"
#include "logic/shape.h"
#include "pager/disk_database.h"

namespace chase {
namespace pager {

[[nodiscard]]
StatusOr<std::vector<Shape>> FindShapesOnDiskScan(const DiskDatabase& db);
[[nodiscard]]
StatusOr<std::vector<Shape>> FindShapesOnDiskExists(const DiskDatabase& db);

}  // namespace pager
}  // namespace chase

#endif  // CHASE_PAGER_DISK_SHAPE_FINDER_H_
