#include "pager/disk_shape_source.h"

#include <algorithm>

#include "pager/heap_file.h"

namespace chase {
namespace pager {

std::vector<PredId> DiskShapeSource::NonEmptyRelations() const {
  ++stats_.catalog_queries;
  return db_->NonEmptyPredicates();
}

StatusOr<const std::vector<PageId>*> DiskShapeSource::PageDirectory(
    PredId pred) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = directories_.find(pred);
  if (it != directories_.end()) return &it->second;
  std::vector<PageId> pages;
  CHASE_RETURN_IF_ERROR(db_->relation(pred).CollectPageIds(&pages));
  return &directories_.emplace(pred, std::move(pages)).first->second;
}

Status DiskShapeSource::ScanRange(PredId pred, uint64_t first_row,
                                  uint64_t num_rows,
                                  const storage::TupleVisitor& visit) const {
  const uint64_t rows = db_->NumTuples(pred);
  const uint64_t begin = std::min<uint64_t>(first_row, rows);
  const uint64_t last = std::min<uint64_t>(rows, begin + num_rows);
  if (begin >= last) return OkStatus();
  const HeapFile& relation = db_->relation(pred);
  if (begin == 0) {
    // Full-prefix scans (the serial scanner and every EXISTS probe) walk
    // straight from the chain head — no directory needed, and early exits
    // stay cheap.
    return relation.ScanFrom(relation.first_page(), 0, last, visit);
  }
  const uint32_t per_page = HeapFile::TuplesPerPage(relation.arity());
  CHASE_ASSIGN_OR_RETURN(const std::vector<PageId>* directory,
                         PageDirectory(pred));
  const uint64_t page_index = begin / per_page;
  if (page_index >= directory->size()) {
    return InternalError("heap page directory shorter than tuple count");
  }
  return relation.ScanFrom((*directory)[page_index], begin % per_page,
                           last - begin, visit);
}

storage::IoCounters DiskShapeSource::Io() const {
  const IoStats& io = db_->disk().stats();
  const BufferPoolStats& pool = db_->buffer_pool().stats();
  storage::IoCounters out;
  out.pages_read = io.pages_read;
  out.pages_written = io.pages_written;
  out.pool_hits = pool.hits;
  out.pool_misses = pool.misses;
  return out;
}

}  // namespace pager
}  // namespace chase
