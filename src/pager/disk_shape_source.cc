#include "pager/disk_shape_source.h"

#include <algorithm>

#include "base/status.h"
#include "base/sync.h"
#include "logic/schema.h"
#include "pager/buffer_pool.h"
#include "pager/disk_manager.h"
#include "pager/heap_file.h"
#include "pager/page.h"
#include "pager/prefetcher.h"
#include "storage/shape_source.h"

namespace chase {
namespace pager {

std::vector<PredId> DiskShapeSource::NonEmptyRelations() const {
  ++stats_.catalog_queries;
  return db_->NonEmptyPredicates();
}

const std::vector<PageId>* DiskShapeSource::CachedPageDirectory(
    PredId pred) const {
  MutexLock lock(mu_);
  auto it = directories_.find(pred);
  return it == directories_.end() ? nullptr : &it->second;
}

StatusOr<const std::vector<PageId>*> DiskShapeSource::PageDirectory(
    PredId pred) const {
  MutexLock lock(mu_);
  auto it = directories_.find(pred);
  if (it != directories_.end()) return &it->second;
  std::vector<PageId> pages;
  CHASE_RETURN_IF_ERROR(db_->relation(pred).CollectPageIds(&pages));
  return &directories_.emplace(pred, std::move(pages)).first->second;
}

Prefetcher* DiskShapeSource::EnsurePrefetcher() const {
  MutexLock lock(mu_);
  if (prefetcher_ == nullptr) {
    prefetcher_ = std::make_unique<Prefetcher>(&db_->buffer_pool());
  }
  return prefetcher_.get();
}

Status DiskShapeSource::ScanRange(PredId pred, uint64_t first_row,
                                  uint64_t num_rows,
                                  const storage::TupleVisitor& visit) const {
  const uint64_t rows = db_->NumTuples(pred);
  const uint64_t begin = std::min<uint64_t>(first_row, rows);
  const uint64_t last = std::min<uint64_t>(rows, begin + num_rows);
  if (begin >= last) return OkStatus();
  const HeapFile& relation = db_->relation(pred);
  const unsigned depth = read_ahead();
  const std::vector<PageId>* directory = nullptr;
  if (begin == 0) {
    // Full-prefix scans (the serial scanner and every EXISTS probe) walk
    // straight from the chain head — no directory needed, and early exits
    // stay cheap. With read-ahead on, a directory some ranged chunk
    // already built is reused for page-by-page prefetching, but never
    // built here: CollectPageIds is itself a full cold chain walk, which
    // would double the physical I/O of the very scan read-ahead is meant
    // to speed up.
    if (depth > 0) directory = CachedPageDirectory(pred);
    if (directory == nullptr) {
      return relation.ScanFrom(relation.first_page(), 0, last, visit);
    }
  }
  const uint32_t per_page = HeapFile::TuplesPerPage(relation.arity());
  if (directory == nullptr) {
    CHASE_ASSIGN_OR_RETURN(directory, PageDirectory(pred));
  }
  const uint64_t last_page = (last - 1) / per_page;
  if (last_page >= directory->size()) {
    return InternalError("heap page directory shorter than tuple count");
  }
  if (depth == 0) {
    return relation.ScanFrom((*directory)[begin / per_page],
                             begin % per_page, last - begin, visit);
  }

  // Read-ahead path: drive the scan page by page so the prefetcher can be
  // kept `depth` pages in front of the cursor while `visit` hashes the
  // current page's tuples. Look-ahead extends past this call's range to the
  // end of the relation: the parallel scanner deals sub-page chunks of the
  // same heap chain to its workers, and whoever draws the next chunk wants
  // those pages resident too.
  Prefetcher* prefetcher = EnsurePrefetcher();
  // Clamp the look-ahead so the scans in flight can't collectively
  // prefetch more pages than the pool can hold — past that point
  // read-ahead evicts its own not-yet-consumed pages and every fault is
  // paid twice. The budget is divided by the number of concurrently active
  // ranged scans (the parallel scanner's workers), not just per call.
  struct ScanCount {
    std::atomic<unsigned>& count;
    ~ScanCount() { count.fetch_sub(1, std::memory_order_relaxed); }
  };
  const unsigned active =
      active_scans_.fetch_add(1, std::memory_order_relaxed) + 1;
  ScanCount scope{active_scans_};
  const uint64_t effective_depth = std::min<uint64_t>(
      depth,
      std::max(1u, db_->buffer_pool().num_frames() / (4 * active)));
  uint64_t page_index = begin / per_page;
  uint64_t skip = begin % per_page;
  uint64_t row = begin;
  uint64_t enqueued = page_index;  // directory index after the last request
  bool stopped = false;
  while (row < last && !stopped) {
    const uint64_t want = std::min<uint64_t>(
        directory->size(), page_index + 1 + effective_depth);
    if (enqueued <= page_index) enqueued = page_index + 1;
    if (enqueued < want) {
      prefetcher->Enqueue(std::span<const PageId>(
          directory->data() + enqueued, want - enqueued));
      enqueued = want;
    }
    const uint64_t rows_here =
        std::min<uint64_t>(per_page - skip, last - row);
    CHASE_RETURN_IF_ERROR(relation.ScanFrom(
        (*directory)[page_index], skip, rows_here,
        [&](std::span<const uint32_t> tuple) {
          if (!visit(tuple)) {
            stopped = true;
            return false;
          }
          return true;
        }));
    row += rows_here;
    skip = 0;
    ++page_index;
  }
  return OkStatus();
}

storage::IoCounters DiskShapeSource::Io() const {
  // Quiesce tail read-ahead first: the workers drain on their own
  // schedule, and a snapshot taken mid-drain would report nondeterministic
  // prefetch and page-read counts (and bleed one run's tail I/O into the
  // next run's delta).
  Prefetcher* prefetcher = nullptr;
  {
    MutexLock lock(mu_);
    prefetcher = prefetcher_.get();
  }
  if (prefetcher != nullptr) prefetcher->Drain();
  const IoStats& io = db_->disk().stats();
  const BufferPoolStats pool = db_->buffer_pool().stats();
  storage::IoCounters out;
  out.pages_read = io.pages_read.load(std::memory_order_relaxed);
  out.pages_written = io.pages_written.load(std::memory_order_relaxed);
  out.pool_hits = pool.hits;
  out.pool_misses = pool.misses;
  out.pool_prefetches = pool.prefetches;
  return out;
}

}  // namespace pager
}  // namespace chase
