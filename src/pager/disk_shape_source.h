// DiskShapeSource: the ShapeSource backend over a pager::DiskDatabase, so
// the unified FindShapes algorithms (storage/shape_finder.h) — including
// the work-partitioned parallel scanner — run against buffer-pooled heap
// files exactly as they run against the in-memory row store.
//
// Row-range scans seek through a lazily built per-relation page directory
// (the heap chain's page ids in order): appends only ever fill the tail
// page, so every non-tail page is full and row r lives at page
// r / TuplesPerPage, offset r % TuplesPerPage. The directory is built once
// per relation on first ranged access and shared by all workers.
//
// I/O metering maps onto the DiskManager page counters and BufferPool
// hit/miss counters, giving the exact physical cost of each plan.

#ifndef CHASE_PAGER_DISK_SHAPE_SOURCE_H_
#define CHASE_PAGER_DISK_SHAPE_SOURCE_H_

#include <mutex>
#include <unordered_map>
#include <vector>

#include "pager/disk_database.h"
#include "storage/shape_source.h"

namespace chase {
namespace pager {

class DiskShapeSource final : public storage::ShapeSource {
 public:
  // `db` must outlive the source.
  explicit DiskShapeSource(const DiskDatabase* db) : db_(db) {}

  const char* Name() const override { return "disk"; }
  const Schema& schema() const override { return db_->schema(); }
  std::vector<PredId> NonEmptyRelations() const override;
  uint64_t NumTuples(PredId pred) const override {
    return db_->NumTuples(pred);
  }
  Status ScanRange(PredId pred, uint64_t first_row, uint64_t num_rows,
                   const storage::TupleVisitor& visit) const override;
  storage::AccessStats& stats() const override { return stats_; }
  storage::IoCounters Io() const override;

 private:
  // Returns the page directory of `pred`, building it on first use.
  StatusOr<const std::vector<PageId>*> PageDirectory(PredId pred) const;

  const DiskDatabase* db_;
  mutable storage::AccessStats stats_;
  mutable std::mutex mu_;  // guards directories_
  mutable std::unordered_map<PredId, std::vector<PageId>> directories_;
};

}  // namespace pager
}  // namespace chase

#endif  // CHASE_PAGER_DISK_SHAPE_SOURCE_H_
