// DiskShapeSource: the ShapeSource backend over a pager::DiskDatabase, so
// the unified FindShapes algorithms (storage/shape_finder.h) — including
// the work-partitioned parallel scanner — run against buffer-pooled heap
// files exactly as they run against the in-memory row store.
//
// Row-range scans seek through a lazily built per-relation page directory
// (the heap chain's page ids in order): appends only ever fill the tail
// page, so every non-tail page is full and row r lives at page
// r / TuplesPerPage, offset r % TuplesPerPage. The directory is built once
// per relation on first ranged access and shared by all workers.
//
// With ConfigureReadAhead(depth > 0), ScanRange additionally feeds the next
// `depth` pages of its range to a background Prefetcher while hashing the
// current page, so cold-pool scans overlap their I/O stalls with compute.
// Read-ahead is best-effort and does not change scan results.
//
// I/O metering maps onto the DiskManager page counters and BufferPool
// hit/miss/prefetch counters, giving the exact physical cost of each plan.

#ifndef CHASE_PAGER_DISK_SHAPE_SOURCE_H_
#define CHASE_PAGER_DISK_SHAPE_SOURCE_H_

#include <atomic>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "base/sync.h"
#include "logic/schema.h"
#include "pager/disk_database.h"
#include "pager/page.h"
#include "pager/prefetcher.h"
#include "storage/catalog.h"
#include "storage/shape_source.h"

namespace chase {
namespace pager {

class DiskShapeSource final : public storage::ShapeSource {
 public:
  // `db` must outlive the source. `read_ahead` is the initial prefetch
  // depth in pages (0 = off); FindShapesOptions::prefetch overrides it per
  // run through ConfigureReadAhead.
  explicit DiskShapeSource(const DiskDatabase* db, unsigned read_ahead = 0)
      : db_(db), read_ahead_(read_ahead) {}

  const char* Name() const override { return "disk"; }
  const Schema& schema() const override { return db_->schema(); }
  std::vector<PredId> NonEmptyRelations() const override;
  uint64_t NumTuples(PredId pred) const override {
    return db_->NumTuples(pred);
  }
  [[nodiscard]]
  Status ScanRange(PredId pred, uint64_t first_row, uint64_t num_rows,
                   const storage::TupleVisitor& visit) const override;
  storage::AccessStats& stats() const override { return stats_; }
  storage::IoCounters Io() const override;
  void ConfigureReadAhead(unsigned depth) const override {
    read_ahead_.store(depth, std::memory_order_relaxed);
  }

  unsigned read_ahead() const {
    return read_ahead_.load(std::memory_order_relaxed);
  }

 private:
  // Returns the page directory of `pred`, building it on first use.
  [[nodiscard]]
  StatusOr<const std::vector<PageId>*> PageDirectory(PredId pred) const;

  // The directory if some ranged access already built it, else nullptr —
  // lets full-prefix scans opt into read-ahead without paying a build.
  const std::vector<PageId>* CachedPageDirectory(PredId pred) const;

  // Lazily started background read-ahead workers (guarded by mu_).
  Prefetcher* EnsurePrefetcher() const;

  const DiskDatabase* db_;
  mutable storage::AccessStats stats_;
  mutable std::atomic<unsigned> read_ahead_;
  // Ranged scans currently inside the read-ahead path; divides the
  // look-ahead budget so concurrent workers don't overrun the pool.
  mutable std::atomic<unsigned> active_scans_{0};
  mutable Mutex mu_;  // guards directories_ and prefetcher_ creation
  mutable std::unordered_map<PredId, std::vector<PageId>> directories_
      GUARDED_BY(mu_);
  mutable std::unique_ptr<Prefetcher> prefetcher_ GUARDED_BY(mu_);
};

}  // namespace pager
}  // namespace chase

#endif  // CHASE_PAGER_DISK_SHAPE_SOURCE_H_
