#include "pager/heap_file.h"

#include "base/status.h"
#include "pager/buffer_pool.h"
#include "pager/page.h"

#include <cassert>
#include <cstring>

namespace chase {
namespace pager {

uint32_t HeapFile::TuplesPerPage(uint32_t arity) {
  assert(arity > 0);
  return (kPageSize - kPageHeaderSize) / (arity * sizeof(uint32_t));
}

StatusOr<HeapFile> HeapFile::Create(BufferPool* pool, uint32_t arity) {
  if (arity == 0) return InvalidArgumentError("heap file arity must be > 0");
  if (TuplesPerPage(arity) == 0) {
    return InvalidArgumentError("arity too large for page size");
  }
  CHASE_ASSIGN_OR_RETURN(PageGuard guard, pool->Allocate());
  PageHeader header;
  header.kind = static_cast<uint32_t>(PageKind::kHeap);
  WritePageHeader(&guard.MutablePage(), header);
  return HeapFile(pool, arity, guard.page_id(), guard.page_id(), 0);
}

Status HeapFile::Append(std::span<const uint32_t> tuple) {
  if (tuple.size() != arity_) {
    return InvalidArgumentError("tuple width does not match heap file arity");
  }
  const uint32_t capacity = TuplesPerPage(arity_);
  CHASE_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(last_page_));
  PageHeader header = ReadPageHeader(guard.page());
  if (header.count == capacity) {
    CHASE_ASSIGN_OR_RETURN(PageGuard fresh, pool_->Allocate());
    PageHeader fresh_header;
    fresh_header.kind = static_cast<uint32_t>(PageKind::kHeap);
    WritePageHeader(&fresh.MutablePage(), fresh_header);
    header.next = fresh.page_id();
    WritePageHeader(&guard.MutablePage(), header);
    last_page_ = fresh.page_id();
    guard = std::move(fresh);
    header = fresh_header;
  }
  const uint32_t offset =
      kPageHeaderSize + header.count * arity_ * sizeof(uint32_t);
  Page& page = guard.MutablePage();
  std::memcpy(page.bytes.data() + offset, tuple.data(),
              arity_ * sizeof(uint32_t));
  ++header.count;
  WritePageHeader(&page, header);
  ++num_tuples_;
  return OkStatus();
}

Status HeapFile::Scan(
    const std::function<bool(std::span<const uint32_t>)>& visit) const {
  return ScanFrom(first_page_, 0, num_tuples_, visit);
}

Status HeapFile::ScanFrom(
    PageId start_page, uint64_t skip_rows, uint64_t num_rows,
    const std::function<bool(std::span<const uint32_t>)>& visit) const {
  PageId current = start_page;
  while (current != kInvalidPageId && num_rows > 0) {
    CHASE_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(current));
    const Page& page = guard.page();
    PageHeader header = ReadPageHeader(page);
    if (header.kind != static_cast<uint32_t>(PageKind::kHeap)) {
      return InternalError("heap chain reached a non-heap page " +
                           std::to_string(current));
    }
    const uint32_t* tuples = reinterpret_cast<const uint32_t*>(
        page.bytes.data() + kPageHeaderSize);
    uint32_t row = 0;
    if (skip_rows >= header.count) {
      skip_rows -= header.count;
    } else {
      row = static_cast<uint32_t>(skip_rows);
      skip_rows = 0;
      for (; row < header.count && num_rows > 0; ++row, --num_rows) {
        if (!visit({tuples + row * arity_, arity_})) return OkStatus();
      }
    }
    current = header.next;
  }
  return OkStatus();
}

Status HeapFile::CollectPageIds(std::vector<PageId>* out) const {
  PageId current = first_page_;
  while (current != kInvalidPageId) {
    CHASE_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(current));
    PageHeader header = ReadPageHeader(guard.page());
    if (header.kind != static_cast<uint32_t>(PageKind::kHeap)) {
      return InternalError("heap chain reached a non-heap page " +
                           std::to_string(current));
    }
    out->push_back(current);
    current = header.next;
  }
  return OkStatus();
}

}  // namespace pager
}  // namespace chase
