// HeapFile: one relation's tuples stored in a chain of fixed-width pages.
//
// A heap page holds floor((kPageSize - header) / (arity * 4)) tuples, packed
// back-to-back after the header; the header's `count` is the number of
// tuples in the page and `next` chains to the following page. Appends go to
// the tail page; scans walk the chain through the buffer pool, which makes
// scan cost (pages touched, hits vs misses) directly observable.

#ifndef CHASE_PAGER_HEAP_FILE_H_
#define CHASE_PAGER_HEAP_FILE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "base/status.h"
#include "pager/buffer_pool.h"
#include "pager/page.h"

namespace chase {
namespace pager {

class HeapFile {
 public:
  // Creates an empty heap file with a fresh head page.
  [[nodiscard]]
  static StatusOr<HeapFile> Create(BufferPool* pool, uint32_t arity);

  // Adopts an existing chain (from the disk catalog).
  HeapFile(BufferPool* pool, uint32_t arity, PageId first_page,
           PageId last_page, uint64_t num_tuples)
      : pool_(pool),
        arity_(arity),
        first_page_(first_page),
        last_page_(last_page),
        num_tuples_(num_tuples) {}

  // Appends one tuple; `tuple.size()` must equal the arity.
  [[nodiscard]] Status Append(std::span<const uint32_t> tuple);

  // Calls `visit` for every tuple in chain order; stops early (and returns
  // OK) when `visit` returns false.
  [[nodiscard]] Status Scan(
      const std::function<bool(std::span<const uint32_t>)>& visit) const;

  // Visits at most `num_rows` tuples starting from `skip_rows` tuples after
  // the beginning of `start_page` (which must be a page of this chain).
  // With `start_page` = first_page() and `skip_rows` counted from the head,
  // this is a plain row-range scan; callers holding a page directory (see
  // CollectPageIds) jump straight to `skip_rows / TuplesPerPage(arity)`.
  [[nodiscard]] Status ScanFrom(
      PageId start_page, uint64_t skip_rows, uint64_t num_rows,
      const std::function<bool(std::span<const uint32_t>)>& visit) const;

  // Appends the chain's page ids in order to `*out` — the page directory a
  // ranged scan seeks through. Appends only write to the tail page, and
  // every non-tail page is full, so row r lives in page
  // out[r / TuplesPerPage(arity)] at offset r % TuplesPerPage(arity).
  [[nodiscard]] Status CollectPageIds(std::vector<PageId>* out) const;

  uint32_t arity() const { return arity_; }
  PageId first_page() const { return first_page_; }
  PageId last_page() const { return last_page_; }
  uint64_t num_tuples() const { return num_tuples_; }

  // Tuples that fit in one page for a given arity.
  static uint32_t TuplesPerPage(uint32_t arity);

 private:
  BufferPool* pool_ = nullptr;
  uint32_t arity_ = 0;
  PageId first_page_ = kInvalidPageId;
  PageId last_page_ = kInvalidPageId;
  uint64_t num_tuples_ = 0;
};

}  // namespace pager
}  // namespace chase

#endif  // CHASE_PAGER_HEAP_FILE_H_
