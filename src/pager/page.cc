#include "pager/page.h"

namespace chase {
namespace pager {

uint64_t PageChecksum(const uint8_t* data, size_t size) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

PageHeader ReadPageHeader(const Page& page) {
  PageHeader header;
  std::memcpy(&header, page.bytes.data(), sizeof(header));
  return header;
}

void WritePageHeader(Page* page, const PageHeader& header) {
  std::memcpy(page->bytes.data(), &header, sizeof(header));
}

void SealPage(Page* page) {
  PageHeader header = ReadPageHeader(*page);
  header.checksum = PageChecksum(page->bytes.data() + kPageHeaderSize,
                                 kPageSize - kPageHeaderSize);
  WritePageHeader(page, header);
}

bool VerifyPage(const Page& page) {
  PageHeader header = ReadPageHeader(page);
  if (header.magic != PageHeader::kMagic) return false;
  return header.checksum == PageChecksum(page.bytes.data() + kPageHeaderSize,
                                         kPageSize - kPageHeaderSize);
}

}  // namespace pager
}  // namespace chase
