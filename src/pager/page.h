// Fixed-size pages, the unit of disk I/O for the on-disk storage engine.
//
// The paper stores every database in PostgreSQL; this library's default
// storage is the in-memory row store (storage::Catalog). The pager module is
// the disk-backed counterpart: an 8 KiB-page file layout with a buffer pool,
// used by the disk-resident FindShapes implementations and by chasectl for
// persisted databases. Keeping the page format tiny and fixed-width (tuples
// are arity-strided arrays of interned uint32 constant ids, exactly the
// in-memory layout) means a page scan on disk does the same work per tuple
// as an in-memory scan, so in-memory vs on-disk comparisons isolate I/O and
// buffer-pool behaviour.

#ifndef CHASE_PAGER_PAGE_H_
#define CHASE_PAGER_PAGE_H_

#include <array>
#include <cstdint>
#include <cstring>

namespace chase {
namespace pager {

inline constexpr uint32_t kPageSize = 8192;

// Page ids are 0-based offsets into the backing file. Page 0 is always the
// catalog root; kInvalidPageId terminates page chains.
using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xffffffffu;

// Raw page payload. Alignment allows reinterpretation as uint32 words.
struct alignas(8) Page {
  std::array<uint8_t, kPageSize> bytes;

  void Zero() { bytes.fill(0); }

  // Unchecked word accessors; offsets are in bytes and must be 4-aligned.
  uint32_t ReadU32(uint32_t offset) const {
    uint32_t value;
    std::memcpy(&value, bytes.data() + offset, sizeof(value));
    return value;
  }
  void WriteU32(uint32_t offset, uint32_t value) {
    std::memcpy(bytes.data() + offset, &value, sizeof(value));
  }
  uint64_t ReadU64(uint32_t offset) const {
    uint64_t value;
    std::memcpy(&value, bytes.data() + offset, sizeof(value));
    return value;
  }
  void WriteU64(uint32_t offset, uint64_t value) {
    std::memcpy(bytes.data() + offset, &value, sizeof(value));
  }
};

// FNV-1a over a page body; stored in page headers to detect torn or
// corrupted pages on read.
uint64_t PageChecksum(const uint8_t* data, size_t size);

// Every page starts with this header. `kind` distinguishes catalog pages
// from heap (tuple) pages; `next` chains pages of the same object.
// The checksum covers bytes [kPageHeaderSize, kPageSize).
struct PageHeader {
  static constexpr uint32_t kMagic = 0x43485053;  // "CHPS"

  uint32_t magic = kMagic;
  uint32_t kind = 0;
  PageId next = kInvalidPageId;
  uint32_t count = 0;  // catalog: entries; heap: tuples
  uint64_t checksum = 0;
};

inline constexpr uint32_t kPageHeaderSize = 24;
static_assert(sizeof(PageHeader) == kPageHeaderSize);

enum class PageKind : uint32_t {
  kFree = 0,
  kCatalog = 1,
  kHeap = 2,
};

PageHeader ReadPageHeader(const Page& page);
void WritePageHeader(Page* page, const PageHeader& header);

// Recomputes and stores the checksum of `page`'s body into its header.
void SealPage(Page* page);

// True iff the stored checksum matches the body and the magic is intact.
bool VerifyPage(const Page& page);

}  // namespace pager
}  // namespace chase

#endif  // CHASE_PAGER_PAGE_H_
