#include "pager/prefetcher.h"

#include <algorithm>

#include "obs/metrics.h"

namespace chase {
namespace pager {

Prefetcher::Prefetcher(BufferPool* pool, unsigned threads) : pool_(pool) {
  threads = std::max(1u, threads);
  workers_.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers_.emplace_back(&Prefetcher::Loop, this);
  }
}

Prefetcher::~Prefetcher() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void Prefetcher::Enqueue(std::span<const PageId> pages) {
  if (pages.empty()) return;
  size_t admitted = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < pages.size(); ++i) {
      if (queue_.size() >= kMaxQueue) {
        dropped_ += pages.size() - i;
        break;
      }
      queue_.push_back(pages[i]);
      ++admitted;
    }
  }
  if (obs::MetricsRegistry::enabled()) {
    static obs::Counter* const admitted_counter =
        obs::MetricsRegistry::Get().GetCounter("pager.prefetch_admitted");
    static obs::Counter* const dropped_counter =
        obs::MetricsRegistry::Get().GetCounter("pager.prefetch_dropped");
    admitted_counter->Add(admitted);
    dropped_counter->Add(pages.size() - admitted);
  }
  // Each admitted page is handled by exactly one worker, so wake exactly
  // one worker per page (capped at the pool size) — notify_all here made
  // every ranged scan's per-page Enqueue stampede the whole pool awake to
  // fight over one queue entry, and woke workers even when a full queue
  // admitted nothing.
  for (size_t i = std::min(admitted, workers_.size()); i > 0; --i) {
    cv_.notify_one();
  }
}

uint64_t Prefetcher::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void Prefetcher::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
}

void Prefetcher::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    const PageId page = queue_.front();
    queue_.pop_front();
    ++in_flight_;
    lock.unlock();
    // Best-effort: errors resurface on the foreground Fetch.
    (void)pool_->Prefetch(page);
    lock.lock();
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) drained_.notify_all();
  }
}

}  // namespace pager
}  // namespace chase
