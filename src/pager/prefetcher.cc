#include "pager/prefetcher.h"

#include <algorithm>

#include "base/sync.h"
#include "obs/metrics.h"
#include "pager/buffer_pool.h"
#include "pager/page.h"

namespace chase {
namespace pager {

Prefetcher::Prefetcher(BufferPool* pool, unsigned threads) : pool_(pool) {
  threads = std::max(1u, threads);
  workers_.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers_.emplace_back(&Prefetcher::Loop, this);
  }
}

Prefetcher::~Prefetcher() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void Prefetcher::Enqueue(std::span<const PageId> pages) {
  if (pages.empty()) return;
  size_t admitted = 0;
  {
    MutexLock lock(mu_);
    for (size_t i = 0; i < pages.size(); ++i) {
      if (queue_.size() >= kMaxQueue) {
        dropped_ += pages.size() - i;
        break;
      }
      queue_.push_back(pages[i]);
      ++admitted;
    }
  }
  if (obs::MetricsRegistry::enabled()) {
    static obs::Counter* const admitted_counter =
        obs::MetricsRegistry::Get().GetCounter("pager.prefetch_admitted");
    static obs::Counter* const dropped_counter =
        obs::MetricsRegistry::Get().GetCounter("pager.prefetch_dropped");
    admitted_counter->Add(admitted);
    dropped_counter->Add(pages.size() - admitted);
  }
  // Each admitted page is handled by exactly one worker, so wake exactly
  // one worker per page (capped at the pool size) — notify_all here made
  // every ranged scan's per-page Enqueue stampede the whole pool awake to
  // fight over one queue entry, and woke workers even when a full queue
  // admitted nothing.
  for (size_t i = std::min(admitted, workers_.size()); i > 0; --i) {
    cv_.NotifyOne();
  }
}

uint64_t Prefetcher::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

void Prefetcher::Drain() {
  MutexLock lock(mu_);
  while (!queue_.empty() || in_flight_ != 0) drained_.Wait(mu_);
}

void Prefetcher::Loop() {
  mu_.Lock();
  while (true) {
    while (!stop_ && queue_.empty()) cv_.Wait(mu_);
    if (stop_) {
      mu_.Unlock();
      return;
    }
    const PageId page = queue_.front();
    queue_.pop_front();
    ++in_flight_;
    mu_.Unlock();
    // Best-effort: errors resurface on the foreground Fetch.
    (void)pool_->Prefetch(page);
    mu_.Lock();
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) drained_.NotifyAll();
  }
}

}  // namespace pager
}  // namespace chase
