// Prefetcher: background read-ahead threads over a BufferPool.
//
// Scan drivers that know their upcoming pages (DiskShapeSource::ScanRange
// seeks through a per-relation page directory) enqueue those page ids here;
// worker threads pop them and call BufferPool::Prefetch, faulting the pages
// into their shards while the scan thread is still hashing the current
// page. By the time the scan reaches the next page, Fetch hits.
//
// Everything is best-effort: the queue is bounded (excess requests are
// dropped, the scan just misses as it would have anyway), duplicate
// requests collapse into cheap no-ops inside the pool, and I/O errors are
// swallowed — the foreground Fetch of the same page surfaces the identical
// error to the caller that cares.

#ifndef CHASE_PAGER_PREFETCHER_H_
#define CHASE_PAGER_PREFETCHER_H_

#include <cstdint>
#include <deque>
#include <span>
#include <thread>
#include <vector>

#include "base/sync.h"
#include "pager/buffer_pool.h"
#include "pager/page.h"

namespace chase {
namespace pager {

class Prefetcher {
 public:
  static constexpr size_t kMaxQueue = 4096;

  // `pool` must outlive the prefetcher. `threads` >= 1.
  explicit Prefetcher(BufferPool* pool, unsigned threads = 2);
  ~Prefetcher();

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  // Queues pages for read-ahead; silently drops requests past kMaxQueue.
  // Wakes one worker per admitted page (no wakeup at all when the queue
  // was full), so a scan enqueueing page-by-page never stampedes the pool.
  void Enqueue(std::span<const PageId> pages);
  void Enqueue(PageId page) { Enqueue(std::span<const PageId>(&page, 1)); }

  // Blocks until the queue is empty and no request is in flight. Metering
  // snapshots call this so prefetch counters are deterministic — without
  // it, tail read-ahead from a finished scan would still be mutating the
  // pool and disk counters on the workers' schedule.
  void Drain();

  // Requests dropped because the queue was full (diagnostics).
  uint64_t dropped() const;

 private:
  void Loop();

  BufferPool* pool_;
  mutable Mutex mu_;
  CondVar cv_;        // wakes workers
  CondVar drained_;   // wakes Drain waiters
  std::deque<PageId> queue_ GUARDED_BY(mu_);
  unsigned in_flight_ GUARDED_BY(mu_) = 0;
  uint64_t dropped_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace pager
}  // namespace chase

#endif  // CHASE_PAGER_PREFETCHER_H_
