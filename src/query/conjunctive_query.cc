#include "query/conjunctive_query.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <set>
#include <utility>

#include "base/status.h"
#include "chase/chase_engine.h"
#include "chase/instance.h"
#include "core/is_chase_finite.h"
#include "logic/atom.h"
#include "logic/database.h"
#include "logic/schema.h"
#include "logic/term.h"
#include "logic/tgd.h"

namespace chase {
namespace query {

namespace {

// A minimal lexer for the query syntax. Kept local: queries are a handful
// of tokens, and reusing the rule parser would drag fact/TGD handling in.
class QueryLexer {
 public:
  explicit QueryLexer(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ConsumeChar(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeTurnstile() {
    SkipSpace();
    if (pos_ + 1 < text_.size() && text_[pos_] == ':' &&
        text_[pos_ + 1] == '-') {
      pos_ += 2;
      return true;
    }
    return false;
  }

  StatusOr<std::string> ConsumeName() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '?')) {
      ++pos_;
    }
    if (start == pos_) {
      return InvalidArgumentError("expected a name at offset " +
                                  std::to_string(pos_));
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

bool IsVariableName(std::string_view name) {
  const char c = name.front();
  return std::isupper(static_cast<unsigned char>(c)) || c == '_' || c == '?';
}

}  // namespace

StatusOr<ConjunctiveQuery> ParseQuery(std::string_view text, Schema* schema) {
  QueryLexer lexer(text);
  ConjunctiveQuery cq;
  std::map<std::string, VarId> vars;
  auto var_of = [&](const std::string& name) {
    auto [it, inserted] = vars.emplace(name, cq.num_vars);
    if (inserted) ++cq.num_vars;
    return it->second;
  };

  // Head: name(V1, ..., Vk)
  CHASE_ASSIGN_OR_RETURN(cq.name, lexer.ConsumeName());
  if (!lexer.ConsumeChar('(')) {
    return InvalidArgumentError("expected '(' after query name");
  }
  if (!lexer.ConsumeChar(')')) {
    while (true) {
      CHASE_ASSIGN_OR_RETURN(std::string name, lexer.ConsumeName());
      if (!IsVariableName(name)) {
        return InvalidArgumentError("query head must use variables, got '" +
                                    name + "'");
      }
      cq.answer_vars.push_back(var_of(name));
      if (lexer.ConsumeChar(')')) break;
      if (!lexer.ConsumeChar(',')) {
        return InvalidArgumentError("expected ',' or ')' in query head");
      }
    }
  }
  if (!lexer.ConsumeTurnstile()) {
    return InvalidArgumentError("expected ':-' after query head");
  }

  // Body: atom, atom, ... '.'
  while (true) {
    CHASE_ASSIGN_OR_RETURN(std::string pred_name, lexer.ConsumeName());
    if (!lexer.ConsumeChar('(')) {
      return InvalidArgumentError("expected '(' after predicate '" +
                                  pred_name + "'");
    }
    std::vector<VarId> args;
    if (!lexer.ConsumeChar(')')) {
      while (true) {
        CHASE_ASSIGN_OR_RETURN(std::string name, lexer.ConsumeName());
        if (!IsVariableName(name)) {
          return InvalidArgumentError(
              "query bodies are variable-only (TGDs are constant-free), "
              "got '" + name + "'");
        }
        args.push_back(var_of(name));
        if (lexer.ConsumeChar(')')) break;
        if (!lexer.ConsumeChar(',')) {
          return InvalidArgumentError("expected ',' or ')' in atom");
        }
      }
    }
    if (args.empty()) {
      return InvalidArgumentError("atoms must have at least one argument");
    }
    CHASE_ASSIGN_OR_RETURN(
        PredId pred,
        schema->GetOrAddPredicate(pred_name,
                                  static_cast<uint32_t>(args.size())));
    cq.body.emplace_back(pred, std::move(args));
    if (lexer.ConsumeChar('.')) break;
    if (!lexer.ConsumeChar(',')) {
      return InvalidArgumentError("expected ',' or '.' after atom");
    }
  }
  if (!lexer.AtEnd()) {
    return InvalidArgumentError("trailing input after query");
  }
  if (cq.body.empty()) {
    return InvalidArgumentError("query body must not be empty");
  }

  // Safety: every answer variable occurs in the body.
  std::vector<bool> in_body(cq.num_vars, false);
  for (const RuleAtom& atom : cq.body) {
    for (VarId v : atom.args) in_body[v] = true;
  }
  for (VarId v : cq.answer_vars) {
    if (!in_body[v]) {
      return InvalidArgumentError("unsafe query: answer variable not bound "
                                  "by the body");
    }
  }
  return cq;
}

namespace {

constexpr Term kUnbound = ~Term{0};

void MatchAtoms(const Instance& instance, const ConjunctiveQuery& query,
                size_t atom_index, std::vector<Term>* assignment,
                std::set<Answer>* answers) {
  if (atom_index == query.body.size()) {
    Answer answer;
    answer.reserve(query.answer_vars.size());
    for (VarId v : query.answer_vars) answer.push_back((*assignment)[v]);
    answers->insert(std::move(answer));
    return;
  }
  const RuleAtom& atom = query.body[atom_index];
  for (const GroundAtom& candidate : instance.AtomsOf(atom.pred)) {
    std::vector<std::pair<VarId, Term>> bound;
    bool ok = true;
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const VarId var = atom.args[i];
      const Term term = candidate.args[i];
      if ((*assignment)[var] == kUnbound) {
        (*assignment)[var] = term;
        bound.emplace_back(var, term);
      } else if ((*assignment)[var] != term) {
        ok = false;
        break;
      }
    }
    if (ok) MatchAtoms(instance, query, atom_index + 1, assignment, answers);
    for (const auto& [var, term] : bound) (*assignment)[var] = kUnbound;
  }
}

}  // namespace

std::vector<Answer> Evaluate(const Instance& instance,
                             const ConjunctiveQuery& query) {
  std::set<Answer> answers;
  std::vector<Term> assignment(query.num_vars, kUnbound);
  MatchAtoms(instance, query, 0, &assignment, &answers);
  return {answers.begin(), answers.end()};
}

std::vector<Answer> Evaluate(const Database& database,
                             const ConjunctiveQuery& query) {
  return Evaluate(Instance::FromDatabase(database), query);
}

StatusOr<CertainAnswersResult> CertainAnswers(
    const Database& database, const std::vector<Tgd>& tgds,
    const ConjunctiveQuery& query, const CertainAnswersOptions& options) {
  // For linear TGDs the termination checkers give an exact a-priori answer;
  // otherwise the atom bound guards the materialization.
  if (AllLinear(tgds) && AllHaveNonEmptyFrontier(tgds) && !tgds.empty()) {
    StatusOr<bool> finite =
        AllSimpleLinear(tgds) ? IsChaseFiniteSL(database, tgds)
                              : IsChaseFiniteL(database, tgds);
    CHASE_RETURN_IF_ERROR(finite.status());
    if (!finite.value()) {
      return FailedPreconditionError(
          "chase(D, Σ) is infinite; certain answers require a terminating "
          "chase");
    }
  }
  ChaseOptions chase_options;
  chase_options.variant = ChaseVariant::kSemiOblivious;
  chase_options.max_atoms = options.max_atoms;
  CHASE_ASSIGN_OR_RETURN(ChaseResult chased,
                         RunChase(database, tgds, chase_options));
  if (chased.outcome != ChaseOutcome::kFixpoint) {
    return ResourceExhaustedError(
        "chase materialization exceeded max_atoms");
  }
  CertainAnswersResult result;
  result.chase_atoms = chased.instance.NumAtoms();
  for (Answer& answer : Evaluate(chased.instance, query)) {
    const bool null_free =
        std::none_of(answer.begin(), answer.end(),
                     [](Term t) { return IsNull(t); });
    if (null_free) result.answers.push_back(std::move(answer));
  }
  return result;
}

}  // namespace query
}  // namespace chase
