// Conjunctive queries over the library's schemas, and their evaluation on
// databases and chase instances.
//
// The paper motivates chase termination through materialization-based
// reasoning: once chase(D, Σ) is finite, it is a universal model, so the
// certain answers of a conjunctive query q over (D, Σ) are exactly the
// null-free answers of q on the materialized instance. This module supplies
// that final step — the paper's downstream use case — on top of the chase
// engine and the termination checkers.
//
// Syntax:   q(X, Y) :- r(X, Z), s(Z, Y).
// Variables start with an upper-case letter, '_' or '?'; the head may also
// repeat variables and must use only variables occurring in the body
// (safety). A head with no arguments ("q() :- ...") is a Boolean query.

#ifndef CHASE_QUERY_CONJUNCTIVE_QUERY_H_
#define CHASE_QUERY_CONJUNCTIVE_QUERY_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "chase/instance.h"
#include "logic/atom.h"
#include "logic/database.h"
#include "logic/schema.h"
#include "logic/term.h"
#include "logic/tgd.h"

namespace chase {
namespace query {

struct ConjunctiveQuery {
  std::string name;                // the head predicate symbol ("q")
  std::vector<VarId> answer_vars;  // head argument variables
  std::vector<RuleAtom> body;      // joined atoms
  uint32_t num_vars = 0;           // body variables are [0, num_vars)

  bool IsBoolean() const { return answer_vars.empty(); }
  size_t arity() const { return answer_vars.size(); }
};

// Parses one query, interning predicates into `schema` (arities are
// discovered from use, consistent with the rule parser).
[[nodiscard]]
StatusOr<ConjunctiveQuery> ParseQuery(std::string_view text, Schema* schema);

// An answer is one term per answer variable. Answers over instances may
// contain nulls; CertainAnswers filters them.
using Answer = std::vector<Term>;

// All homomorphic answers of `query` on `instance`, deduplicated and
// sorted. For a Boolean query the result is empty (no match) or holds one
// empty tuple (match).
std::vector<Answer> Evaluate(const Instance& instance,
                             const ConjunctiveQuery& query);

// Convenience overload evaluating directly on a database.
std::vector<Answer> Evaluate(const Database& database,
                             const ConjunctiveQuery& query);

struct CertainAnswersOptions {
  // Bound on the materialized instance; kResourceExhausted beyond it.
  uint64_t max_atoms = 1'000'000;
};

struct CertainAnswersResult {
  std::vector<Answer> answers;  // null-free, sorted
  uint64_t chase_atoms = 0;     // |chase(D, Σ)|
};

// The certain answers of `query` over (database, tgds), computed by
// materializing the semi-oblivious chase and keeping the null-free answers.
// Fails with kFailedPrecondition if chase(D, Σ) is infinite (detected with
// IsChaseFinite[SL/L] when the TGDs are linear, and by the atom bound
// otherwise).
[[nodiscard]] StatusOr<CertainAnswersResult> CertainAnswers(
    const Database& database, const std::vector<Tgd>& tgds,
    const ConjunctiveQuery& query, const CertainAnswersOptions& options = {});

}  // namespace query
}  // namespace chase

#endif  // CHASE_QUERY_CONJUNCTIVE_QUERY_H_
