#include "query/rewriting.h"

#include "base/status.h"
#include "chase/instance.h"
#include "logic/atom.h"
#include "logic/database.h"
#include "logic/term.h"
#include "logic/tgd.h"
#include "query/conjunctive_query.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <unordered_set>

namespace chase {
namespace query {

namespace {

// Renumbers a query's variables to [0, n) in first-occurrence order
// (answer variables first, so equal queries with permuted body variables
// canonicalize identically given the same atom order).
ConjunctiveQuery Renumber(const ConjunctiveQuery& cq) {
  ConjunctiveQuery out;
  out.name = cq.name;
  std::map<VarId, VarId> rename;
  auto map = [&](VarId v) {
    auto [it, inserted] = rename.emplace(v, out.num_vars);
    if (inserted) ++out.num_vars;
    return it->second;
  };
  for (VarId v : cq.answer_vars) out.answer_vars.push_back(map(v));
  for (const RuleAtom& atom : cq.body) {
    std::vector<VarId> args;
    args.reserve(atom.args.size());
    for (VarId v : atom.args) args.push_back(map(v));
    out.body.emplace_back(atom.pred, std::move(args));
  }
  return out;
}

// A canonical key for duplicate elimination up to variable renaming. Atoms
// are sorted by a variable-independent signature first, variables are then
// renumbered in traversal order, and the result is serialized. Greedy tie-
// breaking may distinguish some isomorphic queries; that only costs
// redundant (subsumed) disjuncts, never soundness or completeness.
std::string CanonicalKey(const ConjunctiveQuery& cq) {
  // Variable-independent atom signature: predicate + equality pattern +
  // answer-variable markers.
  std::vector<bool> is_answer;
  is_answer.resize(cq.num_vars, false);
  std::map<VarId, int> answer_index;
  for (size_t i = 0; i < cq.answer_vars.size(); ++i) {
    is_answer[cq.answer_vars[i]] = true;
    answer_index.emplace(cq.answer_vars[i], static_cast<int>(i));
  }
  auto signature = [&](const RuleAtom& atom) {
    std::ostringstream os;
    os << atom.pred << ':';
    std::map<VarId, int> local;
    for (VarId v : atom.args) {
      auto it = answer_index.find(v);
      if (it != answer_index.end()) {
        os << 'a' << it->second << '.';
      } else {
        auto [lit, inserted] = local.emplace(v, static_cast<int>(local.size()));
        os << 'v' << lit->second << '.';
      }
    }
    return os.str();
  };
  std::vector<size_t> order(cq.body.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<std::string> sigs;
  sigs.reserve(cq.body.size());
  for (const RuleAtom& atom : cq.body) sigs.push_back(signature(atom));
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return sigs[a] != sigs[b] ? sigs[a] < sigs[b] : a < b;
  });

  std::map<VarId, int> rename;
  for (size_t i = 0; i < cq.answer_vars.size(); ++i) {
    rename.emplace(cq.answer_vars[i], -1000 - static_cast<int>(i));
  }
  std::ostringstream os;
  os << cq.answer_vars.size() << '|';
  for (size_t i = 0; i < cq.answer_vars.size(); ++i) {
    os << rename[cq.answer_vars[i]] << ',';
  }
  for (size_t index : order) {
    const RuleAtom& atom = cq.body[index];
    os << '|' << atom.pred << '(';
    for (VarId v : atom.args) {
      auto [it, inserted] = rename.emplace(v, static_cast<int>(rename.size()));
      os << it->second << ',';
    }
    os << ')';
  }
  return os.str();
}

// Union-find over query variables used by the resolution unifier.
class VarUnion {
 public:
  explicit VarUnion(uint32_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  VarId Find(VarId v) {
    while (parent_[v] != v) v = parent_[v] = parent_[parent_[v]];
    return v;
  }
  void Union(VarId a, VarId b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<VarId> parent_;
};

ConjunctiveQuery ApplyRepresentatives(const ConjunctiveQuery& cq,
                                      VarUnion* vars) {
  ConjunctiveQuery out;
  out.name = cq.name;
  out.num_vars = cq.num_vars;  // renumbered later
  for (VarId v : cq.answer_vars) out.answer_vars.push_back(vars->Find(v));
  for (const RuleAtom& atom : cq.body) {
    std::vector<VarId> args;
    args.reserve(atom.args.size());
    for (VarId v : atom.args) args.push_back(vars->Find(v));
    out.body.emplace_back(atom.pred, std::move(args));
  }
  return out;
}

// Attempts the resolution step of atom `target` of `cq` with TGD `tgd`
// (single-head, linear). Returns the rewritten query or nullopt if the
// atom does not unify with the head.
std::optional<ConjunctiveQuery> ResolveAtom(const ConjunctiveQuery& cq,
                                            size_t target, const Tgd& tgd) {
  const RuleAtom& head = tgd.head()[0];
  const RuleAtom& alpha = cq.body[target];
  if (alpha.pred != head.pred) return std::nullopt;

  // Step 1: repeated frontier variables in the head merge query variables.
  VarUnion vars(cq.num_vars);
  for (size_t i = 0; i < head.args.size(); ++i) {
    if (!tgd.IsUniversal(head.args[i])) continue;
    for (size_t j = 0; j < i; ++j) {
      if (head.args[j] == head.args[i]) {
        vars.Union(alpha.args[i], alpha.args[j]);
      }
    }
  }
  ConjunctiveQuery merged = ApplyRepresentatives(cq, &vars);
  const RuleAtom& malpha = merged.body[target];

  // Step 2: existential positions absorb query variables. A query variable
  // sitting under existential variable z is mapped to the chase witness
  // ⊥_z, so it must be a non-answer variable whose every occurrence is in
  // THIS atom occurrence, under the same z.
  std::map<VarId, VarId> absorbed_by;  // query var -> existential var
  for (size_t i = 0; i < head.args.size(); ++i) {
    if (tgd.IsUniversal(head.args[i])) continue;
    const VarId qvar = malpha.args[i];
    auto [it, inserted] = absorbed_by.emplace(qvar, head.args[i]);
    if (!inserted && it->second != head.args[i]) {
      return std::nullopt;  // one variable under two distinct witnesses
    }
  }
  if (!absorbed_by.empty()) {
    for (VarId v : merged.answer_vars) {
      if (absorbed_by.count(v) > 0) return std::nullopt;
    }
    for (size_t a = 0; a < merged.body.size(); ++a) {
      const RuleAtom& atom = merged.body[a];
      for (size_t i = 0; i < atom.args.size(); ++i) {
        auto it = absorbed_by.find(atom.args[i]);
        if (it == absorbed_by.end()) continue;
        // Every occurrence must be inside the target atom at a position of
        // the same existential variable.
        if (a != target || tgd.IsUniversal(head.args[i]) ||
            head.args[i] != it->second) {
          return std::nullopt;
        }
      }
    }
  }

  // Step 3: frontier images. Every frontier variable of the TGD occurs in
  // the head; take its image from any head occurrence (consistent after
  // step 1).
  std::map<VarId, VarId> frontier_image;
  for (size_t i = 0; i < head.args.size(); ++i) {
    if (tgd.IsUniversal(head.args[i])) {
      frontier_image.emplace(head.args[i], malpha.args[i]);
    }
  }

  // Step 4: build the rewritten query: replace the target atom by the
  // TGD's body atom; body-only variables become fresh.
  ConjunctiveQuery out;
  out.name = merged.name;
  out.num_vars = merged.num_vars;
  out.answer_vars = merged.answer_vars;
  std::map<VarId, VarId> fresh;
  const RuleAtom& body = tgd.body()[0];
  std::vector<VarId> new_args;
  new_args.reserve(body.args.size());
  for (VarId x : body.args) {
    auto it = frontier_image.find(x);
    if (it != frontier_image.end()) {
      new_args.push_back(it->second);
    } else {
      auto [fit, inserted] = fresh.emplace(x, out.num_vars);
      if (inserted) ++out.num_vars;
      new_args.push_back(fit->second);
    }
  }
  for (size_t a = 0; a < merged.body.size(); ++a) {
    if (a == target) {
      out.body.emplace_back(body.pred, new_args);
    } else {
      out.body.push_back(merged.body[a]);
    }
  }
  return Renumber(out);
}

// Factorization: merge two same-predicate atoms position-wise (queries are
// variable-only, so the merge always succeeds unless it equates an answer
// variable with... another variable, which is fine). The result is a
// specialization of `cq` — sound to include — and may unlock resolution
// steps blocked by the absorbed-occurrences condition.
std::optional<ConjunctiveQuery> FactorizePair(const ConjunctiveQuery& cq,
                                              size_t a, size_t b) {
  const RuleAtom& atom_a = cq.body[a];
  const RuleAtom& atom_b = cq.body[b];
  if (atom_a.pred != atom_b.pred) return std::nullopt;
  VarUnion vars(cq.num_vars);
  for (size_t i = 0; i < atom_a.args.size(); ++i) {
    vars.Union(atom_a.args[i], atom_b.args[i]);
  }
  ConjunctiveQuery merged = ApplyRepresentatives(cq, &vars);
  merged.body.erase(merged.body.begin() + static_cast<ptrdiff_t>(b));
  return Renumber(merged);
}

}  // namespace

std::vector<Answer> UnionOfCqs::Evaluate(const Instance& instance) const {
  std::set<Answer> all;
  for (const ConjunctiveQuery& cq : disjuncts) {
    for (Answer& answer : query::Evaluate(instance, cq)) {
      const bool null_free = std::none_of(
          answer.begin(), answer.end(), [](Term t) { return IsNull(t); });
      if (null_free) all.insert(std::move(answer));
    }
  }
  return {all.begin(), all.end()};
}

std::vector<Answer> UnionOfCqs::Evaluate(const Database& database) const {
  return Evaluate(Instance::FromDatabase(database));
}

StatusOr<UnionOfCqs> RewriteUnderTgds(const ConjunctiveQuery& cq,
                                      const std::vector<Tgd>& tgds,
                                      const RewriteOptions& options) {
  for (const Tgd& tgd : tgds) {
    if (!tgd.IsLinear() || tgd.head().size() != 1) {
      return InvalidArgumentError(
          "RewriteUnderTgds requires single-head linear TGDs");
    }
    if (!tgd.HasNonEmptyFrontier()) {
      return InvalidArgumentError(
          "RewriteUnderTgds requires non-empty frontiers (normalize first)");
    }
  }

  UnionOfCqs result;
  std::unordered_set<std::string> seen;
  std::vector<size_t> worklist;
  auto add = [&](ConjunctiveQuery candidate) -> bool {
    std::string key = CanonicalKey(candidate);
    if (!seen.insert(std::move(key)).second) return true;
    result.disjuncts.push_back(std::move(candidate));
    worklist.push_back(result.disjuncts.size() - 1);
    return result.disjuncts.size() <= options.max_queries;
  };
  if (!add(Renumber(cq))) {
    return ResourceExhaustedError("rewriting exceeded max_queries");
  }

  while (!worklist.empty()) {
    const size_t index = worklist.back();
    worklist.pop_back();
    // Copy: `add` may reallocate the disjunct vector.
    const ConjunctiveQuery current = result.disjuncts[index];
    // Resolution steps.
    for (size_t target = 0; target < current.body.size(); ++target) {
      for (const Tgd& tgd : tgds) {
        std::optional<ConjunctiveQuery> rewritten =
            ResolveAtom(current, target, tgd);
        if (rewritten.has_value() && !add(std::move(*rewritten))) {
          return ResourceExhaustedError("rewriting exceeded max_queries");
        }
      }
    }
    // Factorization steps.
    for (size_t a = 0; a < current.body.size(); ++a) {
      for (size_t b = a + 1; b < current.body.size(); ++b) {
        std::optional<ConjunctiveQuery> factorized =
            FactorizePair(current, a, b);
        if (factorized.has_value() && !add(std::move(*factorized))) {
          return ResourceExhaustedError("rewriting exceeded max_queries");
        }
      }
    }
  }
  return result;
}

}  // namespace query
}  // namespace chase
