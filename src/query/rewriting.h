// UCQ rewriting for linear TGDs — the materialization-free route to
// certain answers.
//
// The paper motivates chase termination by materialization-based query
// answering; the classical alternative for linear TGDs (which are a finite
// unification set, hence first-order rewritable) is to compile the TGDs
// into the query: compute a union of conjunctive queries q1 ∨ ... ∨ qk such
// that for EVERY database D,
//
//     certain(q, D, Σ)  =  q1(D) ∪ ... ∪ qk(D),
//
// with no chase at all — in particular this works even when chase(D, Σ) is
// infinite, the case the termination checkers reject. The trade-off is the
// size of the rewriting (worst-case exponential in |q|) versus the size of
// the materialization; bench/ablation_rewrite_vs_materialize measures it.
//
// The algorithm is the standard piece-wise resolution procedure (in the
// style of XRewrite / PerfectRef) restricted to single-head linear TGDs
// (multi-head rule sets are rejected; DL-Lite_R and inclusion dependencies
// are single-head):
//
//  * Factorization: unify two unifiable atoms of a CQ (completeness
//    requires considering these merged variants as rewriting inputs).
//  * Resolution: an atom α of a CQ unifies with the head H of σ if at every
//    position where H carries an existential variable, α carries a variable
//    that is non-answer and occurs nowhere else in the query (it can be
//    "absorbed" by the invented witness), consistently across repeated
//    existential variables; α is then replaced by σ's body with frontier
//    variables instantiated by the unifier and the other body variables
//    fresh.
//
// CQs are deduplicated up to variable renaming via a canonical form, and
// the expansion is budgeted: exceeding `max_queries` returns
// kResourceExhausted. A property test checks, on random terminating inputs,
// that evaluating the rewriting over D alone agrees with chase-based
// CertainAnswers — and on non-terminating inputs that the rewriting still
// answers (validated against a bounded chase prefix).

#ifndef CHASE_QUERY_REWRITING_H_
#define CHASE_QUERY_REWRITING_H_

#include <vector>

#include "base/status.h"
#include "chase/instance.h"
#include "logic/database.h"
#include "logic/tgd.h"
#include "query/conjunctive_query.h"

namespace chase {
namespace query {

struct RewriteOptions {
  // Bound on the number of CQs the rewriting may contain.
  size_t max_queries = 10'000;
};

struct UnionOfCqs {
  std::vector<ConjunctiveQuery> disjuncts;

  // Evaluates every disjunct and unions the (deduplicated, sorted) null-free
  // answers. Evaluating over a plain database yields the certain answers.
  std::vector<Answer> Evaluate(const Database& database) const;
  std::vector<Answer> Evaluate(const Instance& instance) const;
};

// Rewrites `cq` w.r.t. `tgds` (single-head linear TGDs with non-empty
// frontiers). The result always contains `cq` itself.
[[nodiscard]] StatusOr<UnionOfCqs> RewriteUnderTgds(const ConjunctiveQuery& cq,
                                      const std::vector<Tgd>& tgds,
                                      const RewriteOptions& options = {});

}  // namespace query
}  // namespace chase

#endif  // CHASE_QUERY_REWRITING_H_
