#include "storage/catalog.h"

namespace chase {
namespace storage {

std::vector<PredId> Catalog::ListNonEmptyRelations() const {
  ++stats_.catalog_queries;
  return database_->NonEmptyPredicates();
}

}  // namespace storage
}  // namespace chase
