#include "storage/catalog.h"

#include "base/status.h"
#include "logic/schema.h"

namespace chase {
namespace storage {

std::vector<PredId> Catalog::ListNonEmptyRelations() const {
  ++stats_.catalog_queries;
  return database_->NonEmptyPredicates();
}

Status Catalog::InsertFact(PredId pred, std::span<const uint32_t> tuple) {
  if (mutable_database_ == nullptr) {
    return FailedPreconditionError("InsertFact on a read-only catalog");
  }
  CHASE_RETURN_IF_ERROR(mutable_database_->AddFact(pred, tuple));
  if (shape_index_ != nullptr) shape_index_->Insert(pred, tuple);
  return OkStatus();
}

}  // namespace storage
}  // namespace chase
