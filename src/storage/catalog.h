// A thin DBMS-style facade over a Database. The paper stores databases in
// PostgreSQL and interacts with them through (a) the system catalog (to list
// non-empty relations without touching data, Section 5.3) and (b) SQL
// queries (Section 5.4). Catalog reproduces that interface over the
// in-memory row store and meters the work performed, so benches can report
// query counts and scanned-tuple counts.
//
// A catalog built over a mutable Database additionally offers the
// transactional write path (InsertFact) with write-through maintenance of
// an attached ShapeWriteThrough sink — the Section 10 deployment where
// the materialized shape(D) is kept current by the update stream instead
// of being recomputed per termination check. The sink is an abstract
// seam on purpose: index::ShardedShapeIndex implements it one layer up,
// so storage never depends on index/ (the layer DAG in
// tools/lint/layers.toml points the other way).

#ifndef CHASE_STORAGE_CATALOG_H_
#define CHASE_STORAGE_CATALOG_H_

#include <cstdint>
#include <span>
#include <vector>

#include "base/status.h"
#include "logic/database.h"
#include "logic/schema.h"

namespace chase {
namespace storage {

// Observer of the catalog's write path: receives every fact appended
// through InsertFact. Implementations must be safe against concurrent
// Insert calls if the catalog is written from several threads (the
// sharded shape index is; see index/sharded_shape_index.h).
class ShapeWriteThrough {
 public:
  virtual ~ShapeWriteThrough() = default;

  // Records one inserted tuple of `pred`.
  virtual void Insert(PredId pred, std::span<const uint32_t> tuple) = 0;
};

struct AccessStats {
  uint64_t catalog_queries = 0;
  uint64_t exists_queries = 0;
  uint64_t tuples_scanned = 0;
  uint64_t relations_loaded = 0;  // scan-mode FindShapes bulk loads

  void Reset() { *this = AccessStats(); }

  // Adds `other`'s counters; the parallel shape finders accumulate into
  // thread-local stats and merge them here.
  void MergeFrom(const AccessStats& other) {
    catalog_queries += other.catalog_queries;
    exists_queries += other.exists_queries;
    tuples_scanned += other.tuples_scanned;
    relations_loaded += other.relations_loaded;
  }
};

class Catalog {
 public:
  // Read-only catalog. `database` must outlive the catalog.
  explicit Catalog(const Database* database) : database_(database) {}

  // Writable catalog: InsertFact becomes available. `database` must outlive
  // the catalog.
  explicit Catalog(Database* database)
      : database_(database), mutable_database_(database) {}

  const Database& database() const { return *database_; }

  // The catalog query of Section 5.3: the list of non-empty relations,
  // answered from metadata only (no tuple access).
  std::vector<PredId> ListNonEmptyRelations() const;

  // Attaches a write-through shape sink (in practice the materialized
  // index::ShardedShapeIndex): every InsertFact also records the tuple's
  // shape there, keeping the materialized shape(D) current. The sink must
  // outlive the catalog (pass nullptr to detach) and must already reflect
  // the database's current contents.
  void AttachShapeIndex(ShapeWriteThrough* shape_index) {
    shape_index_ = shape_index;
  }
  ShapeWriteThrough* shape_index() const { return shape_index_; }

  // The metered write path: appends the fact and maintains the attached
  // shape index. Fails with kFailedPrecondition on a read-only catalog.
  [[nodiscard]] Status InsertFact(PredId pred, std::span<const uint32_t> tuple);

  AccessStats& stats() const { return stats_; }

 private:
  const Database* database_;
  Database* mutable_database_ = nullptr;
  ShapeWriteThrough* shape_index_ = nullptr;
  mutable AccessStats stats_;
};

}  // namespace storage
}  // namespace chase

#endif  // CHASE_STORAGE_CATALOG_H_
