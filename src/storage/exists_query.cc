#include "storage/exists_query.h"

#include "logic/schema.h"
#include "logic/shape.h"
#include "storage/catalog.h"
#include "storage/shape_source.h"

namespace chase {
namespace storage {

bool ExistsTupleWithShape(const Catalog& catalog, PredId pred,
                          const IdTuple& id) {
  MemoryShapeSource source(&catalog);
  // The in-memory backend cannot fail.
  return ProbeShapeExists(source, pred, id, /*exact=*/true, &source.stats())
      .value();
}

bool ExistsTupleSatisfyingEqualities(const Catalog& catalog, PredId pred,
                                     const IdTuple& id) {
  MemoryShapeSource source(&catalog);
  return ProbeShapeExists(source, pred, id, /*exact=*/false, &source.stats())
      .value();
}

}  // namespace storage
}  // namespace chase
