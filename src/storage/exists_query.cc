#include "storage/exists_query.h"

namespace chase {
namespace storage {
namespace {

// For each position, the first position carrying the same id value; the
// equality conditions are t[i] == t[first[i]].
void FirstOfBlock(const IdTuple& id, uint32_t* first) {
  uint32_t first_seen[256];
  for (size_t i = 0; i < id.size(); ++i) first_seen[id[i]] = UINT32_MAX;
  for (uint32_t i = 0; i < id.size(); ++i) {
    if (first_seen[id[i]] == UINT32_MAX) first_seen[id[i]] = i;
    first[i] = first_seen[id[i]];
  }
}

template <bool kEnforceDisequalities>
bool ScanForShape(const Catalog& catalog, PredId pred, const IdTuple& id) {
  const Database& db = catalog.database();
  const uint32_t arity = db.schema().Arity(pred);
  const auto tuples = db.Tuples(pred);
  const size_t rows = tuples.size() / (arity == 0 ? 1 : arity);

  uint32_t first[256];
  FirstOfBlock(id, first);

  ++catalog.stats().exists_queries;
  for (size_t row = 0; row < rows; ++row) {
    ++catalog.stats().tuples_scanned;
    const uint32_t* tuple = tuples.data() + row * arity;
    bool match = true;
    for (uint32_t i = 0; i < arity && match; ++i) {
      if (first[i] != i) {
        // Equality condition: position i repeats the block representative.
        match = tuple[i] == tuple[first[i]];
      } else if constexpr (kEnforceDisequalities) {
        // Disequality conditions: a block representative must differ from
        // all earlier representatives.
        for (uint32_t j = 0; j < i; ++j) {
          if (first[j] == j && tuple[j] == tuple[i]) {
            match = false;
            break;
          }
        }
      }
    }
    if (match) return true;  // EXISTS: early exit on first witness
  }
  return false;
}

}  // namespace

bool ExistsTupleWithShape(const Catalog& catalog, PredId pred,
                          const IdTuple& id) {
  return ScanForShape</*kEnforceDisequalities=*/true>(catalog, pred, id);
}

bool ExistsTupleSatisfyingEqualities(const Catalog& catalog, PredId pred,
                                     const IdTuple& id) {
  return ScanForShape</*kEnforceDisequalities=*/false>(catalog, pred, id);
}

}  // namespace storage
}  // namespace chase
