// Shape-existence queries (Section 5.4). Each candidate shape of a relation
// R translates to
//
//   SELECT CASE WHEN EXISTS
//     (SELECT * FROM R WHERE <equalities> AND <disequalities>)
//   THEN 1 ELSE 0 END
//
// and its relaxed variant drops the disequality conditions. We execute these
// as early-exit scans over the row store: a tuple satisfies the full
// condition iff its id-tuple equals the shape's id-tuple, and the relaxed
// condition iff its id-tuple is coarser than or equal to it.
//
// These are now thin shims over the backend-independent probe,
// storage::ProbeShapeExists (shape_source.h), kept for callers wedded to
// the Catalog API.

#ifndef CHASE_STORAGE_EXISTS_QUERY_H_
#define CHASE_STORAGE_EXISTS_QUERY_H_

#include "logic/schema.h"
#include "logic/shape.h"
#include "storage/catalog.h"

namespace chase {
namespace storage {

// The full query: does some tuple of `pred` have exactly this id-tuple?
bool ExistsTupleWithShape(const Catalog& catalog, PredId pred,
                          const IdTuple& id);

// The relaxed query (equalities only): does some tuple of `pred` satisfy at
// least the equalities of `id`?
bool ExistsTupleSatisfyingEqualities(const Catalog& catalog, PredId pred,
                                     const IdTuple& id);

}  // namespace storage
}  // namespace chase

#endif  // CHASE_STORAGE_EXISTS_QUERY_H_
