#include "storage/parallel_shape_finder.h"

#include "logic/shape.h"
#include "storage/catalog.h"
#include "storage/shape_finder.h"
#include "storage/shape_source.h"

namespace chase {
namespace storage {

std::vector<Shape> FindShapesParallel(const Catalog& catalog,
                                      unsigned num_threads) {
  MemoryShapeSource source(&catalog);
  // The in-memory backend cannot fail.
  return std::move(FindShapes(
                       source, {ShapeFinderMode::kScan, num_threads}))
      .value();
}

}  // namespace storage
}  // namespace chase
