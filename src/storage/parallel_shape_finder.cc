#include "storage/parallel_shape_finder.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "storage/shape_finder.h"

namespace chase {
namespace storage {

namespace {

// One unit of scan work: a row range of one relation.
struct Chunk {
  PredId pred;
  size_t first_row;
  size_t num_rows;
};

}  // namespace

std::vector<Shape> FindShapesParallel(const Catalog& catalog,
                                      unsigned num_threads) {
  if (num_threads <= 1) return FindShapesInMemory(catalog);
  const Database& db = catalog.database();

  // Split into chunks of roughly equal tuple counts. Target a few chunks
  // per thread so uneven arities still balance.
  uint64_t total_rows = 0;
  std::vector<PredId> preds = catalog.ListNonEmptyRelations();
  for (PredId pred : preds) total_rows += db.NumTuples(pred);
  const uint64_t target =
      std::max<uint64_t>(1, total_rows / (4 * num_threads));
  std::vector<Chunk> chunks;
  for (PredId pred : preds) {
    ++catalog.stats().relations_loaded;
    const size_t rows = db.NumTuples(pred);
    for (size_t first = 0; first < rows; first += target) {
      chunks.push_back(
          {pred, first, std::min<size_t>(target, rows - first)});
    }
  }

  std::vector<ShapeSet> local(num_threads);
  std::vector<uint64_t> scanned(num_threads, 0);
  std::vector<std::thread> workers;
  std::atomic<size_t> next_chunk{0};
  workers.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    workers.emplace_back([&, t] {
      while (true) {
        const size_t index = next_chunk.fetch_add(1);
        if (index >= chunks.size()) break;
        const Chunk& chunk = chunks[index];
        const uint32_t arity = db.schema().Arity(chunk.pred);
        const auto tuples = db.Tuples(chunk.pred);
        for (size_t row = chunk.first_row;
             row < chunk.first_row + chunk.num_rows; ++row) {
          ++scanned[t];
          local[t].insert(ShapeOfTuple(
              chunk.pred, tuples.subspan(row * arity, arity)));
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  ShapeSet merged;
  for (unsigned t = 0; t < num_threads; ++t) {
    merged.merge(local[t]);
    catalog.stats().tuples_scanned += scanned[t];
  }
  std::vector<Shape> out(std::make_move_iterator(merged.begin()),
                         std::make_move_iterator(merged.end()));
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace storage
}  // namespace chase
