// Parallel in-memory FindShapes — legacy entry point, now a thin shim over
// the unified work-partitioned scanner in shape_finder.h (which also runs
// over the disk backend). Prefer FindShapes(source, {mode, threads}).

#ifndef CHASE_STORAGE_PARALLEL_SHAPE_FINDER_H_
#define CHASE_STORAGE_PARALLEL_SHAPE_FINDER_H_

#include <vector>

#include "logic/shape.h"
#include "storage/catalog.h"
#include "storage/shape_finder.h"

namespace chase {
namespace storage {

// Returns shape(D) sorted by (pred, id) — identical to FindShapesInMemory
// (a property test enforces it). `num_threads` <= 1 degrades to the serial
// scan. Access stats are metered like the serial variant.
std::vector<Shape> FindShapesParallel(const Catalog& catalog,
                                      unsigned num_threads);

}  // namespace storage
}  // namespace chase

#endif  // CHASE_STORAGE_PARALLEL_SHAPE_FINDER_H_
