// Parallel in-memory FindShapes: the paper's conclusion invites improving
// the db-dependent component, and the in-memory scan is embarrassingly
// parallel — relations are independent, and a single relation can be split
// into row ranges with the per-thread shape sets unioned at the end
// (shape(D) is a set union over tuples).
//
// The partitioning is by estimated work (tuples × arity) over both whole
// relations and row ranges of large relations, so a single huge relation
// (LUBM-1K's layout) still spreads across all threads.

#ifndef CHASE_STORAGE_PARALLEL_SHAPE_FINDER_H_
#define CHASE_STORAGE_PARALLEL_SHAPE_FINDER_H_

#include <vector>

#include "logic/shape.h"
#include "storage/catalog.h"

namespace chase {
namespace storage {

// Returns shape(D) sorted by (pred, id) — identical to FindShapesInMemory
// (a property test enforces it). `num_threads` <= 1 degrades to the serial
// scan. Access stats are metered like the serial variant.
std::vector<Shape> FindShapesParallel(const Catalog& catalog,
                                      unsigned num_threads);

}  // namespace storage
}  // namespace chase

#endif  // CHASE_STORAGE_PARALLEL_SHAPE_FINDER_H_
