#include "storage/shape_finder.h"

#include <algorithm>

#include "base/status.h"
#include "exec/frontier_pool.h"
#include "logic/schema.h"
#include "logic/shape.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/catalog.h"
#include "storage/shape_lattice.h"
#include "storage/shape_source.h"

namespace chase {
namespace storage {
namespace {

std::vector<Shape> Sorted(ShapeSet shapes) {
  std::vector<Shape> out(std::make_move_iterator(shapes.begin()),
                         std::make_move_iterator(shapes.end()));
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Scan plan: full strided scans, hashing every tuple's id-tuple. The scan
// driver (chunking, worker pool, metering) is ParallelTupleScan in the
// ShapeSource layer, shared with the sharded-index build.

Status ScanShapes(const ShapeSource& source,
                  const std::vector<PredId>& preds, unsigned threads,
                  WorkerPool* pool, ShapeSet* shapes) {
  std::vector<ShapeSet> local(threads);
  CHASE_RETURN_IF_ERROR(ParallelTupleScan(
      source, preds, threads,
      [&](unsigned t, PredId pred, std::span<const uint32_t> tuple) {
        local[t].insert(ShapeOfTuple(pred, tuple));
      },
      pool));
  for (unsigned t = 0; t < threads; ++t) shapes->merge(local[t]);
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Exists plan: the Apriori lattice walk over EXISTS probes.

Status WalkShapesForPred(const ShapeSource& source, PredId pred,
                         AccessStats* stats, ShapeSet* shapes) {
  Status failure = OkStatus();
  auto probe = [&](const IdTuple& id, bool exact) {
    if (!failure.ok()) return false;  // abort the walk on the first error
    StatusOr<bool> found = ProbeShapeExists(source, pred, id, exact, stats);
    if (!found.ok()) {
      failure = found.status();
      return false;
    }
    return *found;
  };
  WalkShapeLattice(
      source.schema().Arity(pred),
      [&](const IdTuple& id) { return probe(id, /*exact=*/false); },
      [&](const IdTuple& id) { return probe(id, /*exact=*/true); },
      [&](const IdTuple& id) { shapes->insert(Shape(pred, id)); });
  return failure;
}

// Frontier-parallel exists plan: the lattices of every predicate form one
// global frontier of candidate shapes — seeded with each predicate's
// all-distinct tuple — that FrontierPool expands depth-synchronously. The
// probes of one depth are independent, so a single high-arity predicate
// (one huge lattice) spreads across the whole pool instead of pinning one
// worker, and pruning stays exact: a candidate only discovers its coarser
// children when its relaxed query succeeded, just like the serial walk.
Status WalkShapesFrontier(const ShapeSource& source,
                          const std::vector<PredId>& preds, unsigned threads,
                          bool parallel_absorb, WorkerPool* worker_pool,
                          ShapeSet* shapes, FrontierStats* frontier_stats) {
  struct Probe {
    bool present = false;
  };
  std::vector<Shape> seeds;
  seeds.reserve(preds.size());
  for (PredId pred : preds) {
    seeds.emplace_back(pred, AllDistinctIdTuple(source.schema().Arity(pred)));
  }

  std::vector<AccessStats> local_stats(threads);
  FrontierPool<Shape, Probe, ShapeHash> pool(
      {.threads = threads, .pool = worker_pool});
  const auto expand =
      [&](unsigned worker, const Shape& candidate, Probe* out,
          FrontierPool<Shape, Probe, ShapeHash>::Discoveries* discovered)
      -> Status {
    AccessStats* stats = &local_stats[worker];
    CHASE_ASSIGN_OR_RETURN(
        const bool relaxed,
        ProbeShapeExists(source, candidate.pred, candidate.id,
                         /*exact=*/false, stats));
    if (!relaxed) return OkStatus();  // prunes the whole subtree
    CHASE_ASSIGN_OR_RETURN(
        const bool full,
        ProbeShapeExists(source, candidate.pred, candidate.id,
                         /*exact=*/true, stats));
    out->present = full;
    ForEachChild(candidate.id, [&](IdTuple child) {
      discovered->Discover(Shape(candidate.pred, std::move(child)));
    });
    return OkStatus();
  };
  Status status;
  if (parallel_absorb) {
    // Shape inserts are associative and commutative (the caller sorts on
    // extraction), so each depth's confirmed shapes are absorbed per-chunk
    // on the pool into worker-private sets merged once at the end —
    // nothing of the depth's tail runs serially between barriers.
    std::vector<ShapeSet> local_shapes(threads);
    status = pool.RunParallelAbsorb(
        std::move(seeds), expand,
        [&](unsigned worker, std::span<const Shape> frontier,
            std::span<Probe> outs) -> Status {
          for (size_t i = 0; i < frontier.size(); ++i) {
            if (outs[i].present) local_shapes[worker].insert(frontier[i]);
          }
          return OkStatus();
        },
        frontier_stats);
    for (unsigned t = 0; t < threads; ++t) shapes->merge(local_shapes[t]);
  } else {
    status = pool.Run(
        std::move(seeds), expand,
        [&](std::span<const Shape> frontier,
            std::span<Probe> outs) -> Status {
          for (size_t i = 0; i < frontier.size(); ++i) {
            if (outs[i].present) shapes->insert(frontier[i]);
          }
          return OkStatus();
        },
        frontier_stats);
  }
  for (unsigned t = 0; t < threads; ++t) {
    source.stats().MergeFrom(local_stats[t]);
  }
  return status;
}

}  // namespace

ScopedAccessStatsMirror::~ScopedAccessStatsMirror() {
  if (!obs::MetricsRegistry::enabled()) return;
  const AccessStats& now = source_.stats();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  registry.GetCounter("storage.catalog_queries")
      ->Add(now.catalog_queries - before_.catalog_queries);
  registry.GetCounter("storage.exists_queries")
      ->Add(now.exists_queries - before_.exists_queries);
  registry.GetCounter("storage.tuples_scanned")
      ->Add(now.tuples_scanned - before_.tuples_scanned);
  registry.GetCounter("storage.relations_loaded")
      ->Add(now.relations_loaded - before_.relations_loaded);
}

const char* ShapeFinderModeName(ShapeFinderMode mode) {
  switch (mode) {
    case ShapeFinderMode::kScan:
      return "scan";
    case ShapeFinderMode::kExists:
      return "exists";
    case ShapeFinderMode::kIndex:
      return "index";
  }
  return "?";
}

StatusOr<std::vector<Shape>> FindShapes(const ShapeSource& source,
                                        const FindShapesOptions& options) {
  // A caller-owned pool overrides the thread count — the plans dispatch on
  // the threads that will actually run, and every plan returns the same
  // set at any thread count, so sharing a pool never changes results.
  const unsigned threads = options.pool != nullptr
                               ? std::max(1u, options.pool->threads())
                               : std::max(1u, options.threads);
  obs::TraceSpan find_span("storage", "find_shapes", "mode",
                           static_cast<int64_t>(options.mode), "threads",
                           static_cast<int64_t>(threads));
  // Mirror this run's access-stats delta into the metrics registry on
  // every exit path.
  ScopedAccessStatsMirror stats_mirror(source);
  // Read-ahead pays off only for plans that consume whole ranges (scan and
  // the index build). The exists plan's probes early-exit — usually within
  // the first page — so read-ahead there would trade the cheap chain-head
  // walk for a full page-directory build plus faults past the exit point.
  source.ConfigureReadAhead(
      options.mode == ShapeFinderMode::kExists ? 0 : options.prefetch);
  if (options.mode == ShapeFinderMode::kIndex) {
    // The index-backed plan lives one layer up (index::FindShapes in
    // index/find_shapes.h): storage sits below index/ in the layer DAG,
    // so this dispatcher cannot name ShardedShapeIndex.
    return InvalidArgumentError(
        "ShapeFinderMode::kIndex is dispatched by index::FindShapes "
        "(include index/find_shapes.h); storage::FindShapes serves only "
        "the scan and exists plans");
  }
  const std::vector<PredId> preds = source.NonEmptyRelations();
  ShapeSet shapes;
  Status status = OkStatus();
  if (options.mode == ShapeFinderMode::kScan) {
    status = ScanShapes(source, preds, threads, options.pool, &shapes);
  } else if (threads == 1) {
    // The serial reference walk — the oracle the frontier-parallel plan is
    // differentially tested against (tests/frontier_equivalence_test.cc).
    for (PredId pred : preds) {
      status = WalkShapesForPred(source, pred, &source.stats(), &shapes);
      if (!status.ok()) break;
    }
  } else {
    status = WalkShapesFrontier(source, preds, threads,
                                options.parallel_absorb, options.pool,
                                &shapes, options.frontier_stats);
  }
  CHASE_RETURN_IF_ERROR(status);
  return Sorted(std::move(shapes));
}

std::vector<Shape> FindShapesInMemory(const Catalog& catalog) {
  MemoryShapeSource source(&catalog);
  // The in-memory backend cannot fail.
  return std::move(FindShapes(source, {ShapeFinderMode::kScan, 1})).value();
}

std::vector<Shape> FindShapesInDatabase(const Catalog& catalog) {
  MemoryShapeSource source(&catalog);
  return std::move(FindShapes(source, {ShapeFinderMode::kExists, 1})).value();
}

std::vector<Shape> FindShapes(const Catalog& catalog, ShapeFinderMode mode) {
  MemoryShapeSource source(&catalog);
  return std::move(FindShapes(source, {mode, 1})).value();
}

}  // namespace storage
}  // namespace chase
