#include "storage/shape_finder.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "index/sharded_shape_index.h"
#include "storage/shape_lattice.h"

namespace chase {
namespace storage {
namespace {

std::vector<Shape> Sorted(ShapeSet shapes) {
  std::vector<Shape> out(std::make_move_iterator(shapes.begin()),
                         std::make_move_iterator(shapes.end()));
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Scan plan: full strided scans, hashing every tuple's id-tuple. The scan
// driver (chunking, worker pool, metering) is ParallelTupleScan in the
// ShapeSource layer, shared with the sharded-index build.

Status ScanShapes(const ShapeSource& source,
                  const std::vector<PredId>& preds, unsigned threads,
                  ShapeSet* shapes) {
  std::vector<ShapeSet> local(threads);
  CHASE_RETURN_IF_ERROR(ParallelTupleScan(
      source, preds, threads,
      [&](unsigned t, PredId pred, std::span<const uint32_t> tuple) {
        local[t].insert(ShapeOfTuple(pred, tuple));
      }));
  for (unsigned t = 0; t < threads; ++t) shapes->merge(local[t]);
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Exists plan: the Apriori lattice walk over EXISTS probes.

Status WalkShapesForPred(const ShapeSource& source, PredId pred,
                         AccessStats* stats, ShapeSet* shapes) {
  Status failure = OkStatus();
  auto probe = [&](const IdTuple& id, bool exact) {
    if (!failure.ok()) return false;  // abort the walk on the first error
    StatusOr<bool> found = ProbeShapeExists(source, pred, id, exact, stats);
    if (!found.ok()) {
      failure = found.status();
      return false;
    }
    return *found;
  };
  WalkShapeLattice(
      source.schema().Arity(pred),
      [&](const IdTuple& id) { return probe(id, /*exact=*/false); },
      [&](const IdTuple& id) { return probe(id, /*exact=*/true); },
      [&](const IdTuple& id) { shapes->insert(Shape(pred, id)); });
  return failure;
}

Status WalkShapesParallel(const ShapeSource& source, std::vector<PredId> preds,
                          unsigned threads, ShapeSet* shapes) {
  // Deal whole predicates to workers — each predicate's lattice walk is
  // independent — biggest relations first so they don't trail the rest.
  std::stable_sort(preds.begin(), preds.end(), [&](PredId a, PredId b) {
    return source.NumTuples(a) > source.NumTuples(b);
  });

  std::vector<ShapeSet> local(threads);
  std::vector<AccessStats> local_stats(threads);
  std::vector<Status> worker_status(threads);
  std::vector<std::thread> workers;
  std::atomic<size_t> next_pred{0};
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      while (worker_status[t].ok()) {
        const size_t index = next_pred.fetch_add(1);
        if (index >= preds.size()) break;
        worker_status[t] = WalkShapesForPred(source, preds[index],
                                             &local_stats[t], &local[t]);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  for (unsigned t = 0; t < threads; ++t) {
    source.stats().MergeFrom(local_stats[t]);
  }
  for (unsigned t = 0; t < threads; ++t) {
    CHASE_RETURN_IF_ERROR(worker_status[t]);
  }
  for (unsigned t = 0; t < threads; ++t) shapes->merge(local[t]);
  return OkStatus();
}

}  // namespace

const char* ShapeFinderModeName(ShapeFinderMode mode) {
  switch (mode) {
    case ShapeFinderMode::kScan:
      return "scan";
    case ShapeFinderMode::kExists:
      return "exists";
    case ShapeFinderMode::kIndex:
      return "index";
  }
  return "?";
}

StatusOr<std::vector<Shape>> FindShapes(const ShapeSource& source,
                                        const FindShapesOptions& options) {
  const unsigned threads = std::max(1u, options.threads);
  // Read-ahead pays off only for plans that consume whole ranges (scan and
  // the index build). The exists plan's probes early-exit — usually within
  // the first page — so read-ahead there would trade the cheap chain-head
  // walk for a full page-directory build plus faults past the exit point.
  source.ConfigureReadAhead(
      options.mode == ShapeFinderMode::kExists ? 0 : options.prefetch);
  if (options.mode == ShapeFinderMode::kIndex) {
    CHASE_ASSIGN_OR_RETURN(
        index::ShardedShapeIndex idx,
        index::ShardedShapeIndex::Build(source,
                                        {options.index_shards, threads}));
    return idx.CurrentShapes();
  }
  const std::vector<PredId> preds = source.NonEmptyRelations();
  ShapeSet shapes;
  Status status = OkStatus();
  if (options.mode == ShapeFinderMode::kScan) {
    status = ScanShapes(source, preds, threads, &shapes);
  } else if (threads == 1) {
    for (PredId pred : preds) {
      status = WalkShapesForPred(source, pred, &source.stats(), &shapes);
      if (!status.ok()) break;
    }
  } else {
    status = WalkShapesParallel(source, preds, threads, &shapes);
  }
  CHASE_RETURN_IF_ERROR(status);
  return Sorted(std::move(shapes));
}

std::vector<Shape> FindShapesInMemory(const Catalog& catalog) {
  MemoryShapeSource source(&catalog);
  // The in-memory backend cannot fail.
  return std::move(FindShapes(source, {ShapeFinderMode::kScan, 1})).value();
}

std::vector<Shape> FindShapesInDatabase(const Catalog& catalog) {
  MemoryShapeSource source(&catalog);
  return std::move(FindShapes(source, {ShapeFinderMode::kExists, 1})).value();
}

std::vector<Shape> FindShapes(const Catalog& catalog, ShapeFinderMode mode) {
  MemoryShapeSource source(&catalog);
  return std::move(FindShapes(source, {mode, 1})).value();
}

}  // namespace storage
}  // namespace chase
