#include "storage/shape_finder.h"

#include <algorithm>

#include "storage/exists_query.h"
#include "storage/shape_lattice.h"

namespace chase {
namespace storage {
namespace {

std::vector<Shape> Sorted(ShapeSet shapes) {
  std::vector<Shape> out(std::make_move_iterator(shapes.begin()),
                         std::make_move_iterator(shapes.end()));
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

const char* ShapeFinderModeName(ShapeFinderMode mode) {
  return mode == ShapeFinderMode::kInMemory ? "in-memory" : "in-database";
}

std::vector<Shape> FindShapesInMemory(const Catalog& catalog) {
  const Database& db = catalog.database();
  ShapeSet shapes;
  for (PredId pred : catalog.ListNonEmptyRelations()) {
    // "Load all the tuples of R into the main memory" — over the row store
    // this is the full scan below; we meter it as one relation load.
    ++catalog.stats().relations_loaded;
    const uint32_t arity = db.schema().Arity(pred);
    const auto tuples = db.Tuples(pred);
    const size_t rows = tuples.size() / arity;
    for (size_t row = 0; row < rows; ++row) {
      ++catalog.stats().tuples_scanned;
      shapes.insert(ShapeOfTuple(
          pred, std::span<const uint32_t>(tuples.data() + row * arity, arity)));
    }
  }
  return Sorted(std::move(shapes));
}

std::vector<Shape> FindShapesInDatabase(const Catalog& catalog) {
  const Database& db = catalog.database();
  ShapeSet shapes;
  for (PredId pred : catalog.ListNonEmptyRelations()) {
    WalkShapeLattice(
        db.schema().Arity(pred),
        [&](const IdTuple& id) {
          return ExistsTupleSatisfyingEqualities(catalog, pred, id);
        },
        [&](const IdTuple& id) {
          return ExistsTupleWithShape(catalog, pred, id);
        },
        [&](const IdTuple& id) { shapes.insert(Shape(pred, id)); });
  }
  return Sorted(std::move(shapes));
}

std::vector<Shape> FindShapes(const Catalog& catalog, ShapeFinderMode mode) {
  return mode == ShapeFinderMode::kInMemory ? FindShapesInMemory(catalog)
                                            : FindShapesInDatabase(catalog);
}

}  // namespace storage
}  // namespace chase
