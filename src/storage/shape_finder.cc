#include "storage/shape_finder.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "storage/shape_lattice.h"

namespace chase {
namespace storage {
namespace {

std::vector<Shape> Sorted(ShapeSet shapes) {
  std::vector<Shape> out(std::make_move_iterator(shapes.begin()),
                         std::make_move_iterator(shapes.end()));
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Scan plan: full strided scans, hashing every tuple's id-tuple.

// One unit of parallel scan work: a row range of one relation.
struct Chunk {
  PredId pred;
  uint64_t first_row;
  uint64_t num_rows;
};

Status ScanShapesSerial(const ShapeSource& source,
                        const std::vector<PredId>& preds, ShapeSet* shapes) {
  for (PredId pred : preds) {
    // "Load all the tuples of R into the main memory" — one full strided
    // scan, metered as one relation load.
    ++source.stats().relations_loaded;
    uint64_t scanned = 0;
    Status status =
        source.ScanAll(pred, [&](std::span<const uint32_t> tuple) {
          ++scanned;
          shapes->insert(ShapeOfTuple(pred, tuple));
          return true;
        });
    source.stats().tuples_scanned += scanned;
    CHASE_RETURN_IF_ERROR(status);
  }
  return OkStatus();
}

Status ScanShapesParallel(const ShapeSource& source,
                          const std::vector<PredId>& preds, unsigned threads,
                          ShapeSet* shapes) {
  // Split into chunks of roughly equal tuple counts. Target a few chunks
  // per thread so uneven relation sizes still balance.
  uint64_t total_rows = 0;
  for (PredId pred : preds) total_rows += source.NumTuples(pred);
  const uint64_t target = std::max<uint64_t>(1, total_rows / (4 * threads));
  std::vector<Chunk> chunks;
  for (PredId pred : preds) {
    ++source.stats().relations_loaded;
    const uint64_t rows = source.NumTuples(pred);
    for (uint64_t first = 0; first < rows; first += target) {
      chunks.push_back(
          {pred, first, std::min<uint64_t>(target, rows - first)});
    }
  }

  std::vector<ShapeSet> local(threads);
  std::vector<uint64_t> scanned(threads, 0);
  std::vector<Status> worker_status(threads);
  std::vector<std::thread> workers;
  std::atomic<size_t> next_chunk{0};
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      while (worker_status[t].ok()) {
        const size_t index = next_chunk.fetch_add(1);
        if (index >= chunks.size()) break;
        const Chunk& chunk = chunks[index];
        worker_status[t] = source.ScanRange(
            chunk.pred, chunk.first_row, chunk.num_rows,
            [&](std::span<const uint32_t> tuple) {
              ++scanned[t];
              local[t].insert(ShapeOfTuple(chunk.pred, tuple));
              return true;
            });
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  for (unsigned t = 0; t < threads; ++t) {
    source.stats().tuples_scanned += scanned[t];
  }
  for (unsigned t = 0; t < threads; ++t) {
    CHASE_RETURN_IF_ERROR(worker_status[t]);
  }
  for (unsigned t = 0; t < threads; ++t) shapes->merge(local[t]);
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Exists plan: the Apriori lattice walk over EXISTS probes.

Status WalkShapesForPred(const ShapeSource& source, PredId pred,
                         AccessStats* stats, ShapeSet* shapes) {
  Status failure = OkStatus();
  auto probe = [&](const IdTuple& id, bool exact) {
    if (!failure.ok()) return false;  // abort the walk on the first error
    StatusOr<bool> found = ProbeShapeExists(source, pred, id, exact, stats);
    if (!found.ok()) {
      failure = found.status();
      return false;
    }
    return *found;
  };
  WalkShapeLattice(
      source.schema().Arity(pred),
      [&](const IdTuple& id) { return probe(id, /*exact=*/false); },
      [&](const IdTuple& id) { return probe(id, /*exact=*/true); },
      [&](const IdTuple& id) { shapes->insert(Shape(pred, id)); });
  return failure;
}

Status WalkShapesParallel(const ShapeSource& source, std::vector<PredId> preds,
                          unsigned threads, ShapeSet* shapes) {
  // Deal whole predicates to workers — each predicate's lattice walk is
  // independent — biggest relations first so they don't trail the rest.
  std::stable_sort(preds.begin(), preds.end(), [&](PredId a, PredId b) {
    return source.NumTuples(a) > source.NumTuples(b);
  });

  std::vector<ShapeSet> local(threads);
  std::vector<AccessStats> local_stats(threads);
  std::vector<Status> worker_status(threads);
  std::vector<std::thread> workers;
  std::atomic<size_t> next_pred{0};
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      while (worker_status[t].ok()) {
        const size_t index = next_pred.fetch_add(1);
        if (index >= preds.size()) break;
        worker_status[t] = WalkShapesForPred(source, preds[index],
                                             &local_stats[t], &local[t]);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  for (unsigned t = 0; t < threads; ++t) {
    source.stats().MergeFrom(local_stats[t]);
  }
  for (unsigned t = 0; t < threads; ++t) {
    CHASE_RETURN_IF_ERROR(worker_status[t]);
  }
  for (unsigned t = 0; t < threads; ++t) shapes->merge(local[t]);
  return OkStatus();
}

}  // namespace

const char* ShapeFinderModeName(ShapeFinderMode mode) {
  return mode == ShapeFinderMode::kScan ? "scan" : "exists";
}

StatusOr<std::vector<Shape>> FindShapes(const ShapeSource& source,
                                        const FindShapesOptions& options) {
  const std::vector<PredId> preds = source.NonEmptyRelations();
  const unsigned threads = std::max(1u, options.threads);
  ShapeSet shapes;
  Status status = OkStatus();
  if (options.mode == ShapeFinderMode::kScan) {
    status = threads == 1
                 ? ScanShapesSerial(source, preds, &shapes)
                 : ScanShapesParallel(source, preds, threads, &shapes);
  } else if (threads == 1) {
    for (PredId pred : preds) {
      status = WalkShapesForPred(source, pred, &source.stats(), &shapes);
      if (!status.ok()) break;
    }
  } else {
    status = WalkShapesParallel(source, preds, threads, &shapes);
  }
  CHASE_RETURN_IF_ERROR(status);
  return Sorted(std::move(shapes));
}

std::vector<Shape> FindShapesInMemory(const Catalog& catalog) {
  MemoryShapeSource source(&catalog);
  // The in-memory backend cannot fail.
  return std::move(FindShapes(source, {ShapeFinderMode::kScan, 1})).value();
}

std::vector<Shape> FindShapesInDatabase(const Catalog& catalog) {
  MemoryShapeSource source(&catalog);
  return std::move(FindShapes(source, {ShapeFinderMode::kExists, 1})).value();
}

std::vector<Shape> FindShapes(const Catalog& catalog, ShapeFinderMode mode) {
  MemoryShapeSource source(&catalog);
  return std::move(FindShapes(source, {mode, 1})).value();
}

}  // namespace storage
}  // namespace chase
