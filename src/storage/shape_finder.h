// FindShapes: computing shape(D), the set of shapes of the atoms of a
// database (Section 5.4). Two interchangeable implementations, matching the
// paper's in-memory and in-database variants:
//
//  * In-memory: load each relation and hash the id-tuple of every tuple.
//    Cost: one full scan of the database plus hashing.
//  * In-database: issue one EXISTS query pair per candidate shape, walking
//    the shape lattice of each predicate from the all-distinct shape towards
//    coarser shapes and applying the Apriori-style pruning of Section 5.4:
//    a shape is only considered if some already-confirmed relaxed query
//    covers it, and if the relaxed (equalities-only) query of a shape fails,
//    every coarser shape is pruned without touching the data.
//
// Both return the same set; a property test enforces this.

#ifndef CHASE_STORAGE_SHAPE_FINDER_H_
#define CHASE_STORAGE_SHAPE_FINDER_H_

#include <vector>

#include "logic/shape.h"
#include "storage/catalog.h"

namespace chase {
namespace storage {

enum class ShapeFinderMode {
  kInMemory,
  kInDatabase,
};

const char* ShapeFinderModeName(ShapeFinderMode mode);

// Returns shape(D) sorted by (pred, id).
std::vector<Shape> FindShapesInMemory(const Catalog& catalog);
std::vector<Shape> FindShapesInDatabase(const Catalog& catalog);
std::vector<Shape> FindShapes(const Catalog& catalog, ShapeFinderMode mode);

}  // namespace storage
}  // namespace chase

#endif  // CHASE_STORAGE_SHAPE_FINDER_H_
