// FindShapes: computing shape(D), the set of shapes of the atoms of a
// database (Section 5.4), against any ShapeSource backend. The two query
// plans of the paper, each implemented exactly once:
//
//  * Scan mode (the paper's "in-memory" variant): one full strided scan per
//    relation, hashing the id-tuple of every tuple.
//  * Exists mode (the paper's "in-database" variant): one EXISTS query pair
//    per candidate shape, walking the shape lattice of each predicate from
//    the all-distinct shape towards coarser shapes with the Apriori-style
//    pruning of Section 5.4: a shape is only considered if some already-
//    confirmed relaxed query covers it, and if the relaxed (equalities-only)
//    query of a shape fails, every coarser shape is pruned without touching
//    the data.
//
// Both modes also run work-partitioned in parallel (`threads` > 1): scan
// mode splits relations into row ranges of roughly equal estimated work and
// unions per-thread shape sets; exists mode walks the shape lattices of all
// predicates as one depth-synchronous frontier through chase::FrontierPool,
// so the candidate shapes themselves — not whole predicates — are dealt to
// workers and one high-arity predicate (a large lattice) cannot pin a
// single worker. This works over both backends — including parallel
// shape-finding over pager::DiskDatabase.
//
// All mode × backend × thread combinations return the same sorted set; a
// property test (tests/shape_source_test.cc) enforces this.

#ifndef CHASE_STORAGE_SHAPE_FINDER_H_
#define CHASE_STORAGE_SHAPE_FINDER_H_

#include <vector>

#include "base/status.h"
#include "exec/frontier_pool.h"
#include "logic/shape.h"
#include "storage/catalog.h"
#include "storage/shape_source.h"

namespace chase {
namespace storage {

// The query plans. kScan and kExists are the paper's two; kIndex is the
// Section 10 deployment — build (or reuse) a sharded materialized shape
// index over the source and extract shape(D) from it, so repeated checks
// pay a dictionary extraction instead of a scan. The legacy names predate
// the ShapeSource layer, when each plan was welded to one backend; they
// alias the plan that backend used.
enum class ShapeFinderMode {
  kScan,
  kExists,
  kIndex,
  kInMemory = kScan,
  kInDatabase = kExists,
};

const char* ShapeFinderModeName(ShapeFinderMode mode);

struct FindShapesOptions {
  ShapeFinderMode mode = ShapeFinderMode::kScan;
  unsigned threads = 1;     // <= 1 runs serially
  unsigned index_shards = 0;  // kIndex only: shard count (0 = default)
  // Scan read-ahead depth in pages, applied to the source via
  // ConfigureReadAhead for the run (0 = off). Only backends with physical
  // I/O (pager::DiskShapeSource) act on it, and only the range-consuming
  // plans (kScan, kIndex) use it — the exists plan's early-exit probes
  // ignore it. Overlaps cold-pool page faults with tuple hashing; never
  // changes results.
  unsigned prefetch = 0;
  // Exists plan with threads > 1 only: absorb each depth's confirmed
  // shapes per-chunk on the worker pool instead of serially between
  // barriers. Shape insertion is associative and commutative (the result
  // is sorted on extraction), so this never changes the returned set —
  // the knob exists so the serial-absorb oracle stays reachable for the
  // differential sweeps (tests/frontier_equivalence_test.cc).
  bool parallel_absorb = true;
  // When non-null and the exists plan runs frontier-parallel (threads > 1),
  // receives the engine's depth/expansion counters — per-worker expansion
  // counts included, which is how bench/ablation_frontier_parallel.cc shows
  // the lattice frontier itself being split across workers.
  FrontierStats* frontier_stats = nullptr;
  // When non-null, the parallel plans (scan chunks, the exists plan's
  // frontier, the index build's scan) run on this caller-owned persistent
  // WorkerPool — its thread count wins over `threads` — so one pool serves
  // several phases of one algorithm (e.g. the whole IsChaseFiniteL check:
  // FindShapes here plus the dynamic-simplification worklist, one spawn
  // instead of two). Results are unchanged either way: every plan is
  // deterministic in its effective thread count, and the returned set is
  // thread-count-independent besides.
  WorkerPool* pool = nullptr;
};

// Mirrors one run's access-stats delta into the metrics registry on every
// exit path. The source's stats are cumulative for its lifetime, so the
// guard snapshots them at construction and publishes the difference on
// destruction. Shared by storage::FindShapes and the index-backed plan
// one layer up (index::FindShapes), so every plan meters identically.
class ScopedAccessStatsMirror {
 public:
  explicit ScopedAccessStatsMirror(const ShapeSource& source)
      : source_(source), before_(source.stats()) {}
  ~ScopedAccessStatsMirror();

  ScopedAccessStatsMirror(const ScopedAccessStatsMirror&) = delete;
  ScopedAccessStatsMirror& operator=(const ScopedAccessStatsMirror&) = delete;

 private:
  const ShapeSource& source_;
  AccessStats before_;
};

// The unified entry point: returns shape(D) sorted by (pred, id), computed
// over `source` with the requested plan and parallelism. Errors surface
// only from fallible backends (disk I/O); the in-memory backend never
// fails. The kIndex plan is dispatched one layer up by index::FindShapes
// (index/find_shapes.h) — passing it here is an InvalidArgument error,
// because storage/ sits below index/ in the layer DAG and cannot name the
// sharded index.
[[nodiscard]] StatusOr<std::vector<Shape>> FindShapes(
    const ShapeSource& source, const FindShapesOptions& options = {});

// ---------------------------------------------------------------------------
// Legacy entry points, kept as thin shims over the unified implementation.

// Scan plan over the in-memory row store.
std::vector<Shape> FindShapesInMemory(const Catalog& catalog);

// Exists plan over the in-memory row store.
std::vector<Shape> FindShapesInDatabase(const Catalog& catalog);

// Plan dispatch over the in-memory row store.
std::vector<Shape> FindShapes(const Catalog& catalog, ShapeFinderMode mode);

}  // namespace storage
}  // namespace chase

#endif  // CHASE_STORAGE_SHAPE_FINDER_H_
