#include "storage/shape_index.h"

#include "base/status.h"
#include "logic/database.h"
#include "logic/schema.h"
#include "logic/shape.h"

#include <algorithm>

namespace chase {
namespace storage {

ShapeIndex ShapeIndex::Build(const Database& db) {
  ShapeIndex index;
  for (PredId pred : db.NonEmptyPredicates()) {
    const uint32_t arity = db.schema().Arity(pred);
    const auto tuples = db.Tuples(pred);
    const size_t rows = tuples.size() / arity;
    for (size_t row = 0; row < rows; ++row) {
      index.Insert(pred, tuples.subspan(row * arity, arity));
    }
  }
  return index;
}

void ShapeIndex::Insert(PredId pred, std::span<const uint32_t> tuple) {
  ++counts_[ShapeOfTuple(pred, tuple)];
}

Status ShapeIndex::Remove(PredId pred, std::span<const uint32_t> tuple) {
  Shape shape = ShapeOfTuple(pred, tuple);
  auto it = counts_.find(shape);
  if (it == counts_.end()) {
    return FailedPreconditionError("removing a tuple whose shape is not indexed");
  }
  if (--it->second == 0) counts_.erase(it);
  return OkStatus();
}

std::vector<Shape> ShapeIndex::CurrentShapes() const {
  std::vector<Shape> shapes;
  shapes.reserve(counts_.size());
  for (const auto& [shape, count] : counts_) shapes.push_back(shape);
  std::sort(shapes.begin(), shapes.end());
  return shapes;
}

}  // namespace storage
}  // namespace chase
