// ShapeIndex: incrementally maintained shape(D).
//
// The paper's conclusion (Section 10) singles out "materialize and
// incrementally keep updated the shapes in a database" as the way to
// improve the db-dependent component, whose FindShapes scan dominates the
// end-to-end runtime of IsChaseFinite[L]. This class is that materialized
// view: a multiset of shapes with one counter per (predicate, id-tuple).
//
//  * Build: one scan of the database (same cost as in-memory FindShapes).
//  * Insert/Remove: O(arity²) to compute the tuple's id-tuple plus one hash
//    update — independent of the database size, which turns every
//    subsequent termination check's t-shapes into a dictionary lookup.
//  * CurrentShapes: the sorted shape set, interchangeable with the output
//    of storage::FindShapes (a property test enforces agreement).
//
// The counters make deletions exact: a shape disappears only when the last
// tuple carrying it is removed.

#ifndef CHASE_STORAGE_SHAPE_INDEX_H_
#define CHASE_STORAGE_SHAPE_INDEX_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "logic/database.h"
#include "logic/schema.h"
#include "logic/shape.h"

namespace chase {
namespace storage {

class ShapeIndex {
 public:
  ShapeIndex() = default;

  // Builds the index with one scan of `db`.
  static ShapeIndex Build(const Database& db);

  // Records one inserted tuple of `pred`.
  void Insert(PredId pred, std::span<const uint32_t> tuple);

  // Records one deleted tuple of `pred`. Fails with kFailedPrecondition if
  // no tuple with that shape is currently indexed (the index would go
  // negative, i.e., the caller deleted a tuple that was never inserted).
  [[nodiscard]] Status Remove(PredId pred, std::span<const uint32_t> tuple);

  bool Contains(const Shape& shape) const {
    return counts_.find(shape) != counts_.end();
  }

  // Number of indexed tuples currently carrying `shape`.
  uint64_t Count(const Shape& shape) const {
    auto it = counts_.find(shape);
    return it == counts_.end() ? 0 : it->second;
  }

  // Distinct shapes currently present.
  size_t NumShapes() const { return counts_.size(); }

  // shape(D) sorted by (pred, id) — same contract as storage::FindShapes.
  std::vector<Shape> CurrentShapes() const;

 private:
  std::unordered_map<Shape, uint64_t, ShapeHash> counts_;
};

}  // namespace storage
}  // namespace chase

#endif  // CHASE_STORAGE_SHAPE_INDEX_H_
