#include "storage/shape_lattice.h"

#include <queue>
#include <set>
#include <vector>

namespace chase {
namespace storage {

void WalkShapeLattice(
    uint32_t arity,
    const std::function<bool(const IdTuple&)>& relaxed_exists,
    const std::function<bool(const IdTuple&)>& full_exists,
    const std::function<void(const IdTuple&)>& emit) {
  std::set<IdTuple> enqueued;
  std::queue<IdTuple> frontier;
  IdTuple all_distinct(arity);
  for (uint32_t i = 0; i < arity; ++i) {
    all_distinct[i] = static_cast<uint8_t>(i + 1);
  }
  frontier.push(all_distinct);
  enqueued.insert(all_distinct);

  while (!frontier.empty()) {
    IdTuple id = std::move(frontier.front());
    frontier.pop();
    if (!relaxed_exists(id)) continue;
    if (full_exists(id)) emit(id);

    // Children: merge any two blocks (by their representatives).
    uint8_t blocks = 0;
    for (uint8_t v : id) blocks = v > blocks ? v : blocks;
    if (blocks <= 1) continue;
    std::vector<uint32_t> representative(blocks + 1, UINT32_MAX);
    for (uint32_t i = 0; i < arity; ++i) {
      if (representative[id[i]] == UINT32_MAX) representative[id[i]] = i;
    }
    for (uint8_t a = 1; a <= blocks; ++a) {
      for (uint8_t b = a + 1; b <= blocks; ++b) {
        IdTuple child = MergeBlocks(id, representative[a], representative[b]);
        if (enqueued.insert(child).second) frontier.push(child);
      }
    }
  }
}

}  // namespace storage
}  // namespace chase
