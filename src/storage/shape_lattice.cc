#include "storage/shape_lattice.h"

#include "logic/shape.h"

#include <queue>
#include <set>
#include <vector>

namespace chase {
namespace storage {

IdTuple AllDistinctIdTuple(uint32_t arity) {
  IdTuple all_distinct(arity);
  for (uint32_t i = 0; i < arity; ++i) {
    all_distinct[i] = static_cast<uint8_t>(i + 1);
  }
  return all_distinct;
}

void ForEachChild(const IdTuple& id,
                  const std::function<void(IdTuple)>& child) {
  uint8_t blocks = 0;
  for (uint8_t v : id) blocks = v > blocks ? v : blocks;
  if (blocks <= 1) return;
  std::vector<uint32_t> representative(blocks + 1, UINT32_MAX);
  for (uint32_t i = 0; i < id.size(); ++i) {
    if (representative[id[i]] == UINT32_MAX) representative[id[i]] = i;
  }
  // 32-bit counters: with uint8_t and blocks == 255 (the Schema::kMaxArity
  // ceiling) `b <= blocks` would hold forever and wrap b through 0, reading
  // representative[0] == UINT32_MAX and indexing id out of bounds.
  for (uint32_t a = 1; a <= blocks; ++a) {
    for (uint32_t b = a + 1; b <= blocks; ++b) {
      child(MergeBlocks(id, representative[a], representative[b]));
    }
  }
}

void WalkShapeLattice(
    uint32_t arity,
    const std::function<bool(const IdTuple&)>& relaxed_exists,
    const std::function<bool(const IdTuple&)>& full_exists,
    const std::function<void(const IdTuple&)>& emit) {
  std::set<IdTuple> enqueued;
  std::queue<IdTuple> frontier;
  IdTuple all_distinct = AllDistinctIdTuple(arity);
  frontier.push(all_distinct);
  enqueued.insert(std::move(all_distinct));

  while (!frontier.empty()) {
    IdTuple id = std::move(frontier.front());
    frontier.pop();
    if (!relaxed_exists(id)) continue;
    if (full_exists(id)) emit(id);
    ForEachChild(id, [&](IdTuple child) {
      if (enqueued.insert(child).second) frontier.push(std::move(child));
    });
  }
}

}  // namespace storage
}  // namespace chase
