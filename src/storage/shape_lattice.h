// The Apriori-style walk of the shape (partition) lattice of Section 5.4,
// factored out so the in-memory row store and the disk-backed pager can run
// identical query plans with their own EXISTS evaluators.
//
// The walk starts at the all-distinct id-tuple and explores coarser tuples
// breadth-first. For each candidate it first evaluates the relaxed query
// (equalities only); if that fails, every coarser tuple also fails and the
// subtree is pruned without touching the data. Otherwise the full query
// (equalities and disequalities) decides whether the exact shape is present.

#ifndef CHASE_STORAGE_SHAPE_LATTICE_H_
#define CHASE_STORAGE_SHAPE_LATTICE_H_

#include <functional>

#include "logic/shape.h"

namespace chase {
namespace storage {

// Calls `emit(id)` for every id-tuple of length `arity` whose full query
// succeeds, pruning via the relaxed query as described above. Serial; the
// frontier-parallel exists plan in shape_finder.cc runs the same walk
// depth-synchronously through chase::FrontierPool, sharing ForEachChild
// below, and is property-tested equal to this reference.
void WalkShapeLattice(
    uint32_t arity,
    const std::function<bool(const IdTuple&)>& relaxed_exists,
    const std::function<bool(const IdTuple&)>& full_exists,
    const std::function<void(const IdTuple&)>& emit);

// Calls `child(c)` for each immediate coarsening of `id` — every id-tuple
// obtained by merging two of its blocks. Distinct block pairs yield
// distinct partitions, so no child repeats within one call; children of
// different parents can coincide and must be deduplicated by the walker.
void ForEachChild(const IdTuple& id,
                  const std::function<void(IdTuple)>& child);

// The all-distinct id-tuple (1, 2, ..., arity): the lattice's top element,
// where every walk starts.
IdTuple AllDistinctIdTuple(uint32_t arity);

}  // namespace storage
}  // namespace chase

#endif  // CHASE_STORAGE_SHAPE_LATTICE_H_
