#include "storage/shape_source.h"

#include <algorithm>
#include <atomic>

#include "base/padded.h"
#include "base/status.h"
#include "exec/frontier_pool.h"
#include "logic/database.h"
#include "logic/schema.h"
#include "logic/shape.h"
#include "storage/catalog.h"

namespace chase {
namespace storage {
namespace {

// Fixed scratch width of the compiled EXISTS condition: one slot per tuple
// position. Schema::kMaxArity caps declared arities below this, and
// ProbeShapeExists rejects longer id-tuples before indexing, so the stack
// arrays sized by it can never be overrun by tuple contents.
constexpr size_t kMaxProbePositions = Schema::kMaxArity;

// For each position, the first position carrying the same id value; the
// equality conditions of the EXISTS queries are t[i] == t[first[i]].
// Requires id.size() <= kMaxProbePositions (id values are 1-based, hence
// the + 1 on the scratch table).
void FirstOfBlock(const IdTuple& id, uint32_t* first) {
  uint32_t first_seen[kMaxProbePositions + 1];
  for (size_t i = 0; i < id.size(); ++i) first_seen[id[i]] = UINT32_MAX;
  for (uint32_t i = 0; i < id.size(); ++i) {
    if (first_seen[id[i]] == UINT32_MAX) first_seen[id[i]] = i;
    first[i] = first_seen[id[i]];
  }
}

// One tuple against one compiled shape condition. `exact` additionally
// enforces the disequalities between block representatives.
bool MatchesShape(std::span<const uint32_t> tuple, const uint32_t* first,
                  bool exact) {
  for (uint32_t i = 0; i < tuple.size(); ++i) {
    if (first[i] != i) {
      // Equality condition: position i repeats the block representative.
      if (tuple[i] != tuple[first[i]]) return false;
    } else if (exact) {
      // Disequality conditions: a block representative must differ from
      // all earlier representatives.
      for (uint32_t j = 0; j < i; ++j) {
        if (first[j] == j && tuple[j] == tuple[i]) return false;
      }
    }
  }
  return true;
}

// One unit of partitioned scan work: a row range of one relation.
struct Chunk {
  PredId pred;
  uint64_t first_row;
  uint64_t num_rows;
};

}  // namespace

Status ParallelTupleScan(const ShapeSource& source,
                         const std::vector<PredId>& preds, unsigned threads,
                         const ParallelTupleVisitor& visit,
                         WorkerPool* pool) {
  threads = pool != nullptr ? std::max(1u, pool->threads())
                            : std::max(1u, threads);

  // Chunks of roughly equal tuple counts, a few per thread.
  uint64_t total_rows = 0;
  for (PredId pred : preds) total_rows += source.NumTuples(pred);
  const uint64_t target = std::max<uint64_t>(1, total_rows / (4 * threads));
  std::vector<Chunk> chunks;
  for (PredId pred : preds) {
    ++source.stats().relations_loaded;
    const uint64_t rows = source.NumTuples(pred);
    for (uint64_t first = 0; first < rows; first += target) {
      chunks.push_back(
          {pred, first, std::min<uint64_t>(target, rows - first)});
    }
  }

  // Per-worker tuple counters at cache-line stride (see base/padded.h).
  std::vector<PaddedU64> scanned(threads);
  std::vector<Status> worker_status(threads);
  auto scan_chunk = [&](unsigned t, size_t index) {
    if (!worker_status[t].ok()) return;
    const Chunk& chunk = chunks[index];
    worker_status[t] = source.ScanRange(
        chunk.pred, chunk.first_row, chunk.num_rows,
        [&](std::span<const uint32_t> tuple) {
          ++scanned[t].value;
          visit(t, chunk.pred, tuple);
          return true;
        });
  };
  if (pool != nullptr) {
    // A caller-owned persistent pool: chunks dealt through its barrier, no
    // thread spawn on this call at all.
    pool->ParallelFor(chunks.size(), scan_chunk);
  } else if (threads == 1) {
    for (size_t index = 0; index < chunks.size(); ++index) {
      scan_chunk(0, index);
    }
  } else {
    // Transient pool for this scan: same dynamic chunk dealing as the
    // caller-owned path (scan_chunk skips work once its worker's status is
    // bad, matching the old hand-rolled spawn's early exit), and thread
    // creation stays inside the one sanctioned spawner.
    WorkerPool scan_pool(threads);
    scan_pool.ParallelFor(chunks.size(), scan_chunk);
  }

  for (unsigned t = 0; t < threads; ++t) {
    source.stats().tuples_scanned += scanned[t].value;
  }
  for (unsigned t = 0; t < threads; ++t) {
    CHASE_RETURN_IF_ERROR(worker_status[t]);
  }
  return OkStatus();
}

StatusOr<bool> ProbeShapeExists(const ShapeSource& source, PredId pred,
                                const IdTuple& id, bool exact,
                                AccessStats* stats) {
  if (id.size() > kMaxProbePositions) {
    return InvalidArgumentError(
        "shape probe arity " + std::to_string(id.size()) +
        " exceeds the supported maximum of " +
        std::to_string(kMaxProbePositions));
  }
  uint32_t first[kMaxProbePositions];
  FirstOfBlock(id, first);

  ++stats->exists_queries;
  bool found = false;
  uint64_t scanned = 0;
  Status status =
      source.ScanAll(pred, [&](std::span<const uint32_t> tuple) {
        ++scanned;
        if (MatchesShape(tuple, first, exact)) {
          found = true;
          return false;  // EXISTS: early exit on first witness
        }
        return true;
      });
  stats->tuples_scanned += scanned;
  CHASE_RETURN_IF_ERROR(status);
  return found;
}

Status MemoryShapeSource::ScanRange(PredId pred, uint64_t first_row,
                                    uint64_t num_rows,
                                    const TupleVisitor& visit) const {
  const Database& db = catalog_->database();
  const uint32_t arity = db.schema().Arity(pred);
  if (arity == 0) return OkStatus();
  const auto tuples = db.Tuples(pred);
  const uint64_t rows = tuples.size() / arity;
  const uint64_t begin = std::min<uint64_t>(first_row, rows);
  const uint64_t last = std::min<uint64_t>(rows, begin + num_rows);
  for (uint64_t row = begin; row < last; ++row) {
    if (!visit(tuples.subspan(row * arity, arity))) return OkStatus();
  }
  return OkStatus();
}

}  // namespace storage
}  // namespace chase
