// ShapeSource: the narrow storage seam the FindShapes algorithms run
// against (Section 5.4). The paper evaluates its db-dependent component
// twice — in memory and inside PostgreSQL — and this repo adds a
// disk-resident pager; ShapeSource is the one interface all of them
// implement, so the scanning, lattice-walking, and work-partitioned
// parallel algorithms in shape_finder.{h,cc} are written exactly once:
//
//   * relation metadata: schema, non-empty relations (the catalog query of
//     Section 5.3), per-relation tuple counts;
//   * strided tuple scans, full and row-range, with early exit — the
//     row-range form is what the parallel scanner partitions over;
//   * access metering: logical counters (AccessStats) written by the
//     algorithms, physical I/O counters (IoCounters) reported by the
//     backend.
//
// Backends: MemoryShapeSource (below) over storage::Catalog, and
// pager::DiskShapeSource over pager::DiskDatabase.

#ifndef CHASE_STORAGE_SHAPE_SOURCE_H_
#define CHASE_STORAGE_SHAPE_SOURCE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "base/status.h"
#include "logic/schema.h"
#include "logic/shape.h"
#include "storage/catalog.h"

namespace chase {

class WorkerPool;

namespace storage {

// Physical I/O performed by a backend. The in-memory row store does no I/O
// and reports zeros; the disk backend maps these onto its DiskManager and
// BufferPool counters. Snapshot semantics: Io() returns cumulative totals
// for the underlying store, so benches diff before/after a run.
struct IoCounters {
  uint64_t pages_read = 0;
  uint64_t pages_written = 0;
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  uint64_t pool_prefetches = 0;  // pages faulted in by background read-ahead

  // The delta against an earlier snapshot of the same store — how benches
  // and the CLI meter one run out of the cumulative totals.
  IoCounters Since(const IoCounters& before) const {
    IoCounters delta;
    delta.pages_read = pages_read - before.pages_read;
    delta.pages_written = pages_written - before.pages_written;
    delta.pool_hits = pool_hits - before.pool_hits;
    delta.pool_misses = pool_misses - before.pool_misses;
    delta.pool_prefetches = pool_prefetches - before.pool_prefetches;
    return delta;
  }
};

// Visits one tuple (stride = arity); return false to stop the scan early.
using TupleVisitor = std::function<bool(std::span<const uint32_t>)>;

class ShapeSource {
 public:
  virtual ~ShapeSource() = default;

  // "memory" or "disk" — used in diagnostics and bench tables.
  virtual const char* Name() const = 0;

  virtual const Schema& schema() const = 0;

  // The catalog query of Section 5.3: the non-empty relations, answered
  // from metadata only. Metered as one catalog query in stats().
  virtual std::vector<PredId> NonEmptyRelations() const = 0;

  virtual uint64_t NumTuples(PredId pred) const = 0;

  // Visits rows [first_row, first_row + num_rows) of `pred` in storage
  // order; stops early (and returns OK) once `visit` returns false. Rows
  // past the end of the relation are silently clamped.
  //
  // Thread safety: concurrent ScanRange calls on one source must be safe —
  // the parallel scanner issues them from worker threads.
  [[nodiscard]]
  virtual Status ScanRange(PredId pred, uint64_t first_row, uint64_t num_rows,
                           const TupleVisitor& visit) const = 0;

  // Full scan of `pred`.
  [[nodiscard]] Status ScanAll(PredId pred, const TupleVisitor& visit) const {
    return ScanRange(pred, 0, NumTuples(pred), visit);
  }

  // Logical access metering (queries issued, tuples scanned, relations
  // loaded). Written by the FindShapes algorithms, not by ScanRange, so
  // parallel workers can accumulate into thread-local stats and merge.
  virtual AccessStats& stats() const = 0;

  // Physical I/O metering; zeros for backends that do no I/O.
  virtual IoCounters Io() const { return {}; }

  // Sets the scan read-ahead depth in pages (0 = off) for backends that can
  // overlap their page faults with the caller's compute; a no-op for
  // backends without physical I/O. FindShapes applies its options.prefetch
  // through this, so the knob of the run in progress always wins. Like
  // stats(), this is per-source run state: concurrent FindShapes runs over
  // one source share it (and smear each other's metering) — use one source
  // per logical run.
  virtual void ConfigureReadAhead(unsigned /*depth*/) const {}
};

// Visits every tuple of `preds` with a work-partitioned scan: relations are
// chunked into row ranges of roughly equal tuple counts (a few chunks per
// thread, so uneven relation sizes still balance) and dealt to `threads`
// workers; `threads` <= 1 scans inline on the calling thread. `visit` runs
// concurrently from workers, keyed by a thread id in [0, threads) so
// callers accumulate into thread-local state without synchronization.
// Meters one relation load per predicate and every scanned tuple into
// source.stats() — the scan-plan FindShapes convention. This is the one
// scan driver behind both the scan-mode shape finder and the sharded-index
// build.
//
// When `pool` is non-null the chunks run on that caller-owned persistent
// WorkerPool instead of a per-call transient one (its thread count wins
// over `threads`), so a caller running several parallel phases — FindShapes
// plus a simplification worklist, say — pays one thread spawn for all of
// them. The visit contract is unchanged: thread ids stay in [0, threads).
using ParallelTupleVisitor =
    std::function<void(unsigned thread, PredId pred,
                       std::span<const uint32_t> tuple)>;
[[nodiscard]] Status ParallelTupleScan(const ShapeSource& source,
                         const std::vector<PredId>& preds, unsigned threads,
                         const ParallelTupleVisitor& visit,
                         WorkerPool* pool = nullptr);

// The early-exit shape-existence probe both query plans of Section 5.4
// compile to. With `exact` set it answers the full EXISTS query (equalities
// and disequalities: some tuple has exactly this id-tuple); without it, the
// relaxed query (equalities only: some tuple is coarser than or equal to
// `id`). Meters one exists query plus the visited tuples into `stats`
// (pass the source's own stats for the serial path, a thread-local copy for
// parallel walkers). Fails with kInvalidArgument if `id` is longer than
// Schema::kMaxArity positions (the compiled condition uses fixed-width
// scratch; schemas loaded through logic::Schema can never exceed it).
[[nodiscard]]
StatusOr<bool> ProbeShapeExists(const ShapeSource& source, PredId pred,
                                const IdTuple& id, bool exact,
                                AccessStats* stats);

// In-memory backend: the row store behind storage::Catalog. Shares the
// catalog's AccessStats, so existing benches keep reading their counters
// from the catalog.
class MemoryShapeSource final : public ShapeSource {
 public:
  // `catalog` must outlive the source.
  explicit MemoryShapeSource(const Catalog* catalog) : catalog_(catalog) {}

  const char* Name() const override { return "memory"; }
  const Schema& schema() const override {
    return catalog_->database().schema();
  }
  std::vector<PredId> NonEmptyRelations() const override {
    return catalog_->ListNonEmptyRelations();
  }
  uint64_t NumTuples(PredId pred) const override {
    return catalog_->database().NumTuples(pred);
  }
  [[nodiscard]]
  Status ScanRange(PredId pred, uint64_t first_row, uint64_t num_rows,
                   const TupleVisitor& visit) const override;
  AccessStats& stats() const override { return catalog_->stats(); }

 private:
  const Catalog* catalog_;
};

}  // namespace storage
}  // namespace chase

#endif  // CHASE_STORAGE_SHAPE_SOURCE_H_
