#include <string>

#include <gtest/gtest.h>

#include "acyclicity/joint_acyclicity.h"
#include "acyclicity/mfa.h"
#include "acyclicity/super_weak_acyclicity.h"
#include "acyclicity/uniform.h"
#include "base/rng.h"
#include "chase/chase_engine.h"
#include "core/weak_acyclicity.h"
#include "gen/tgd_generator.h"
#include "logic/parser.h"
#include "logic/printer.h"

namespace chase {
namespace acyclicity {
namespace {

Program MustParse(const std::string& text) {
  auto program = ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status();
  return std::move(program).value();
}

bool Ja(const Program& p) {
  return IsJointlyAcyclic(*p.schema, p.tgds);
}
bool Swa(const Program& p) {
  return IsSuperWeaklyAcyclic(*p.schema, p.tgds);
}
bool Mfa(const Program& p) {
  auto verdict = IsModelFaithfulAcyclic(*p.schema, p.tgds);
  EXPECT_TRUE(verdict.ok()) << verdict.status();
  return verdict.value();
}
bool Wa(const Program& p) { return IsWeaklyAcyclic(*p.schema, p.tgds); }

// ---------------------------------------------------------------------------
// Joint acyclicity

TEST(JointAcyclicityTest, EmptyRuleSetIsAcyclic) {
  Program p = MustParse("r(a,b).");
  EXPECT_TRUE(Ja(p));
}

TEST(JointAcyclicityTest, NoExistentialsIsAcyclic) {
  Program p = MustParse("r(X,Y) -> s(Y,X).\ns(X,Y) -> r(X,Y).");
  EXPECT_TRUE(Ja(p));
}

TEST(JointAcyclicityTest, SelfFeedingRuleIsCyclic) {
  // R(x,y) → ∃z R(y,z): the invented value reaches position R2, from where
  // the rule fires again.
  Program p = MustParse("r(X,Y) -> r(Y,Z).");
  EXPECT_FALSE(Ja(p));
}

TEST(JointAcyclicityTest, AcyclicChainIsAcyclic) {
  Program p = MustParse("a(X) -> b(X,Z).\nb(X,Y) -> c(Y).");
  EXPECT_TRUE(Ja(p));
}

TEST(JointAcyclicityTest, TwoRuleCycleIsCyclic) {
  Program p = MustParse("a(X) -> b(X,Z).\nb(X,Y) -> a(Y).");
  EXPECT_FALSE(Ja(p));
}

TEST(JointAcyclicityTest, SeparatedFromWeakAcyclicityByPartialCoverage) {
  // The classic gap: weak acyclicity sees the special edge A1 → R2 on a
  // cycle, but the invented value can never cover *both* body occurrences
  // of y in the multi-atom rule, so no new invention is triggered.
  Program p = MustParse("a(X) -> r(X,Z).\nr(X,Y), r(Y,X) -> a(Y).");
  EXPECT_FALSE(Wa(p));
  EXPECT_TRUE(Ja(p));
  // The semi-oblivious chase indeed terminates from the critical-style
  // database {a(c), r(c,c)}.
  Program with_data =
      MustParse("a(c). r(c,c).\na(X) -> r(X,Z).\nr(X,Y), r(Y,X) -> a(Y).");
  ChaseOptions options;
  options.max_atoms = 10'000;
  auto result = RunChase(*with_data.database, with_data.tgds, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, ChaseOutcome::kFixpoint);
}

TEST(JointAcyclicityTest, WeakAcyclicityImpliesJointOnExamples) {
  // Weakly acyclic data-exchange-style mapping.
  Program p = MustParse(R"(
    emp(X) -> works(X, Z).
    works(X, Y) -> dept(Y).
    dept(X) -> hasMgr(X, Z).
    hasMgr(X, Y) -> mgr(Y).
  )");
  EXPECT_TRUE(Wa(p));
  EXPECT_TRUE(Ja(p));
}

// ---------------------------------------------------------------------------
// Super-weak acyclicity

TEST(SuperWeakAcyclicityTest, EmptyAndDatalogAreAcyclic) {
  Program p = MustParse("r(X,Y) -> s(Y,X).\ns(X,Y) -> r(X,Y).");
  EXPECT_TRUE(Swa(p));
}

TEST(SuperWeakAcyclicityTest, SelfFeedingRuleIsCyclic) {
  Program p = MustParse("r(X,Y) -> r(Y,Z).");
  EXPECT_FALSE(Swa(p));
}

TEST(SuperWeakAcyclicityTest, OccursCheckAlsoVisibleToJointAcyclicity) {
  // σ1 invents z at s2; σ2 reads s(u,u). The skolemized head s(x, f(x))
  // cannot unify with s(u,u) (occurs check: u = x = f(x)), so SWA sees no
  // feedback. Joint acyclicity reaches the same verdict here through its
  // coverage condition: position s1 never joins Move(z).
  Program p = MustParse(R"(
    a(X) -> s(X, Z).
    s(U, U) -> a(U).
  )");
  EXPECT_TRUE(Ja(p));
  EXPECT_TRUE(Swa(p));
}

TEST(SuperWeakAcyclicityTest, SeparatedFromJointByPlaceGranularity) {
  // σ1 writes the invented z into *both* positions of s across its two head
  // atoms, so Move(z) = {s1, s2} at the position level and joint acyclicity
  // must assume σ2 can re-fire — it rejects. SWA tracks atoms: covering
  // s(u,u) by either head atom forces u = x = f(x), which fails the occurs
  // check, so no feedback exists and SWA accepts.
  Program p = MustParse(R"(
    a(X) -> s(X, Z), s(Z, X).
    s(U, U) -> a(U).
  )");
  EXPECT_FALSE(Ja(p));
  EXPECT_TRUE(Swa(p));
  // Confirm termination empirically from a database realizing every shape.
  Program with_data = MustParse(R"(
    a(c). s(c, c). s(c, d).
    a(X) -> s(X, Z), s(Z, X).
    s(U, U) -> a(U).
  )");
  ChaseOptions options;
  options.max_atoms = 10'000;
  auto result = RunChase(*with_data.database, with_data.tgds, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, ChaseOutcome::kFixpoint);
}

TEST(SuperWeakAcyclicityTest, DistinctSkolemsBlockUnification) {
  // Head r(x, f_y(x), f_z(x)) vs body r(u, v, v): v = f_y(x) = f_z(x) is a
  // function clash, so the rule cannot re-fire on its own output.
  Program p = MustParse(R"(
    a(X) -> r(X, Y, Z).
    r(U, V, V) -> a(V).
  )");
  EXPECT_TRUE(Swa(p));
}

TEST(SuperWeakAcyclicityTest, GenuineCycleThroughTwoRules) {
  Program p = MustParse(R"(
    a(X) -> r(X, Z).
    r(X, Y) -> a(Y).
  )");
  EXPECT_FALSE(Swa(p));
}

// ---------------------------------------------------------------------------
// MFA

TEST(MfaTest, DatalogIsMfa) {
  Program p = MustParse("r(X,Y) -> s(Y,X).\ns(X,Y) -> r(X,Y).");
  EXPECT_TRUE(Mfa(p));
}

TEST(MfaTest, SelfFeedingRuleIsNotMfa) {
  Program p = MustParse("r(X,Y) -> r(Y,Z).");
  EXPECT_FALSE(Mfa(p));
}

TEST(MfaTest, TerminatingInventionIsMfa) {
  Program p = MustParse("a(X) -> b(X,Z).\nb(X,Y) -> c(Y).");
  EXPECT_TRUE(Mfa(p));
}

TEST(MfaTest, SeparatedFromSuperWeakByValueSensitivity) {
  // The swap rule σ3 lets SWA cover both body places of σ2's repeated
  // variable u *independently* (per-place covering cannot insist the two
  // slots hold the same value simultaneously), so SWA rejects. The MFA
  // chase works with actual values: the invented null only ever appears
  // opposite the star constant, s(u,u) never matches, and the critical
  // chase reaches a fixpoint — MFA accepts.
  Program p = MustParse(R"(
    a(X) -> s(X, Z).
    s(U, U) -> a(U).
    s(U, W) -> s(W, U).
  )");
  EXPECT_FALSE(Swa(p));
  EXPECT_TRUE(Mfa(p));
  // Termination holds empirically as well.
  Program with_data = MustParse(R"(
    a(c). s(c, c). s(c, d).
    a(X) -> s(X, Z).
    s(U, U) -> a(U).
    s(U, W) -> s(W, U).
  )");
  ChaseOptions options;
  options.max_atoms = 10'000;
  auto result = RunChase(*with_data.database, with_data.tgds, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, ChaseOutcome::kFixpoint);
}

TEST(MfaTest, ResourceExhaustionIsReported) {
  // Binary-tree blow-up: each fact invents two successors; acyclic nesting
  // of distinct tags keeps the MFA chase growing past a tiny budget even
  // though each tag appears once per path... here the same rule re-invents,
  // so pick a budget smaller than the first rounds instead.
  Program p = MustParse(R"(
    n0(X) -> n1(X, Y), n1(X, Z).
    n1(X, Y) -> n2(Y, Z), n2(Y, W).
    n2(X, Y) -> n3(Y, Z), n3(Y, W).
  )");
  MfaOptions options;
  options.max_atoms = 4;
  auto verdict = IsModelFaithfulAcyclic(*p.schema, p.tgds, options);
  EXPECT_EQ(verdict.status().code(), StatusCode::kResourceExhausted);
}

TEST(MfaTest, MultiHeadSharedNullIsTracked) {
  // The same invented null appears in two head atoms; its reuse through
  // either atom must carry provenance.
  Program p = MustParse(R"(
    a(X) -> r(X, Z), s(Z, X).
    s(Y, X) -> a(Y).
  )");
  EXPECT_FALSE(Mfa(p));
}

// ---------------------------------------------------------------------------
// Uniform termination (linear TGDs)

TEST(UniformTest, CriticalShapeDatabaseHasBellManyFacts) {
  Program p = MustParse("r(X,Y,U) -> s(X).\ns(X) -> t(X,Z).");
  Database critical = CriticalShapeDatabase(*p.schema);
  // r/3 contributes B(3)=5, s/1 contributes 1, t/2 contributes 2.
  EXPECT_EQ(critical.TotalFacts(), 5u + 1u + 2u);
}

TEST(UniformTest, RequiresLinearity) {
  Program p = MustParse("r(X,Y), s(Y,X) -> t(X).");
  auto verdict = IsChaseFiniteUniform(*p.schema, p.tgds);
  EXPECT_EQ(verdict.status().code(), StatusCode::kInvalidArgument);
}

TEST(UniformTest, SimpleLinearUsesWeakAcyclicity) {
  Program uniform = MustParse("a(X) -> b(X,Z).\nb(X,Y) -> c(Y).");
  auto verdict = IsChaseFiniteUniform(*uniform.schema, uniform.tgds);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict.value());

  Program infinite = MustParse("r(X,Y) -> r(Y,Z).");
  verdict = IsChaseFiniteUniform(*infinite.schema, infinite.tgds);
  ASSERT_TRUE(verdict.ok());
  EXPECT_FALSE(verdict.value());
}

TEST(UniformTest, NonSimpleLinearTerminatingForAllDatabases) {
  // Example 3.4 of the paper: R(x,x) → ∃z R(z,x). For *every* database the
  // chase terminates: firing on R(c,c) yields R(n,c), whose arguments are
  // distinct, so the rule never re-fires on invented atoms.
  Program p = MustParse("r(X,X) -> r(Z,X).");
  auto verdict = IsChaseFiniteUniform(*p.schema, p.tgds);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict.value());
}

TEST(UniformTest, NonSimpleLinearInfiniteSomewhere) {
  Program p = MustParse("r(X,Y) -> r(Y,Z).");
  auto verdict = IsChaseFiniteUniform(*p.schema, p.tgds);
  ASSERT_TRUE(verdict.ok());
  EXPECT_FALSE(verdict.value());
}

// ---------------------------------------------------------------------------
// Hierarchy properties on random rule sets: WA ⇒ JA ⇒ SWA ⇒ MFA, and MFA
// implies the critical-instance chase terminates.

struct ZooVerdicts {
  bool wa;
  bool ja;
  bool swa;
  std::optional<bool> mfa;  // nullopt if the budget ran out
};

class ZooHierarchyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(ZooHierarchyTest, ContainmentsHoldOnRandomRuleSets) {
  Rng rng(GetParam());
  int accepted[4] = {0, 0, 0, 0};
  for (int trial = 0; trial < 150; ++trial) {
    Program p;
    // Small random schema.
    const uint32_t num_preds = 2 + static_cast<uint32_t>(rng.Below(3));
    std::vector<PredId> preds;
    for (uint32_t i = 0; i < num_preds; ++i) {
      auto pred = p.schema->AddPredicate(
          "p" + std::to_string(i), 1 + static_cast<uint32_t>(rng.Below(3)));
      ASSERT_TRUE(pred.ok());
      preds.push_back(*pred);
    }
    TgdGenParams params;
    params.ssize = num_preds;
    params.min_arity = 1;
    params.max_arity = 3;
    params.tsize = 1 + rng.Below(4);
    params.tclass = rng.Below(2) == 0 ? TgdClass::kSimpleLinear
                                      : TgdClass::kLinear;
    params.existential_percent = 35;
    params.seed = rng.Next();
    auto tgds = GenerateTgds(*p.schema, params);
    ASSERT_TRUE(tgds.ok()) << tgds.status();
    p.tgds = std::move(tgds).value();

    ZooVerdicts v;
    v.wa = Wa(p);
    v.ja = Ja(p);
    v.swa = Swa(p);
    MfaOptions mfa_options;
    mfa_options.max_atoms = 50'000;
    auto mfa = IsModelFaithfulAcyclic(*p.schema, p.tgds, mfa_options);
    if (mfa.ok()) {
      v.mfa = mfa.value();
    } else {
      ASSERT_EQ(mfa.status().code(), StatusCode::kResourceExhausted);
      v.mfa = std::nullopt;
    }

    const std::string description = TgdsToString(*p.schema, p.tgds);
    EXPECT_TRUE(!v.wa || v.ja) << "WA but not JA:\n" << description;
    EXPECT_TRUE(!v.ja || v.swa) << "JA but not SWA:\n" << description;
    if (v.mfa.has_value()) {
      EXPECT_TRUE(!v.swa || *v.mfa) << "SWA but not MFA:\n" << description;
      if (*v.mfa) {
        // MFA ⇒ the semi-oblivious chase of the critical-style database
        // (every predicate populated with one all-distinct fact) reaches a
        // fixpoint.
        Database critical = CriticalShapeDatabase(*p.schema);
        ChaseOptions chase_options;
        chase_options.max_atoms = 200'000;
        auto result = RunChase(critical, p.tgds, chase_options);
        ASSERT_TRUE(result.ok());
        EXPECT_EQ(result->outcome, ChaseOutcome::kFixpoint)
            << "MFA accepted a non-terminating set:\n" << description;
      }
    }
    accepted[0] += v.wa;
    accepted[1] += v.ja;
    accepted[2] += v.swa;
    accepted[3] += v.mfa.value_or(false);
  }
  // The sample must exercise both verdicts for the test to mean anything.
  EXPECT_GT(accepted[0], 5);
  EXPECT_LT(accepted[3], 150);
  // The zoo is ordered by generality.
  EXPECT_LE(accepted[0], accepted[1]);
  EXPECT_LE(accepted[1], accepted[2]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZooHierarchyTest,
                         testing::Values(7, 77, 777, 7777));

// Uniform check agrees with the zoo's soundness on linear inputs: if any
// zoo notion accepts, the uniform check must accept too.
class UniformSoundnessTest : public testing::TestWithParam<uint64_t> {};

TEST_P(UniformSoundnessTest, ZooNotionsAreSoundForUniformTermination) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    Program p;
    const uint32_t num_preds = 2 + static_cast<uint32_t>(rng.Below(3));
    for (uint32_t i = 0; i < num_preds; ++i) {
      ASSERT_TRUE(p.schema
                      ->AddPredicate("p" + std::to_string(i),
                                     1 + static_cast<uint32_t>(rng.Below(3)))
                      .ok());
    }
    TgdGenParams params;
    params.ssize = num_preds;
    params.min_arity = 1;
    params.max_arity = 3;
    params.tsize = 1 + rng.Below(4);
    params.tclass = TgdClass::kLinear;
    params.existential_percent = 35;
    params.seed = rng.Next();
    auto tgds = GenerateTgds(*p.schema, params);
    ASSERT_TRUE(tgds.ok());
    p.tgds = std::move(tgds).value();

    auto uniform = IsChaseFiniteUniform(*p.schema, p.tgds);
    ASSERT_TRUE(uniform.ok()) << uniform.status();
    const std::string description = TgdsToString(*p.schema, p.tgds);
    if (Wa(p) || Ja(p) || Swa(p)) {
      EXPECT_TRUE(uniform.value())
          << "zoo accepted but uniform check rejects:\n" << description;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UniformSoundnessTest,
                         testing::Values(13, 131, 1313));

}  // namespace
}  // namespace acyclicity
}  // namespace chase
