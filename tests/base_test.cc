#include <gtest/gtest.h>

#include <sstream>

#include "base/rng.h"
#include "base/status.h"
#include "base/strings.h"
#include "base/table_printer.h"
#include "base/timer.h"
#include "obs/metrics.h"

namespace chase {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = InvalidArgumentError("bad rule");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad rule");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad rule");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(OkStatus(), Status());
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << NotFoundError("missing");
  EXPECT_EQ(os.str(), "NOT_FOUND: missing");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = NotFoundError("nope");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> value = std::move(result).value();
  EXPECT_EQ(*value, 7);
}

StatusOr<int> FailingHelper() { return OutOfRangeError("limit"); }
Status UsesAssignOrReturn() {
  CHASE_ASSIGN_OR_RETURN(int value, FailingHelper());
  (void)value;
  return OkStatus();
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  EXPECT_EQ(UsesAssignOrReturn().code(), StatusCode::kOutOfRange);
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 10; ++i) differences += a.Next() != b.Next();
  EXPECT_GT(differences, 0);
}

TEST(RngTest, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t value = rng.Range(3, 5);
    EXPECT_GE(value, 3u);
    EXPECT_LE(value, 5u);
    saw_lo |= value == 3;
    saw_hi |= value == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(42);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.Below(kBuckets)];
  for (int bucket = 0; bucket < kBuckets; ++bucket) {
    EXPECT_NEAR(counts[bucket], kDraws / kBuckets, kDraws / kBuckets / 5);
  }
}

TEST(RngTest, PercentZeroAndHundred) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Percent(0));
    EXPECT_TRUE(rng.Percent(100));
  }
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(11);
  Rng child = parent.Fork();
  // The child should not replay the parent's stream.
  Rng parent_copy(11);
  parent_copy.Fork();
  EXPECT_EQ(parent.Next(), parent_copy.Next());
  (void)child;
}

TEST(StringsTest, StrSplitBasic) {
  auto pieces = StrSplit("a,b,,c", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "");
  EXPECT_EQ(pieces[3], "c");
}

TEST(StringsTest, StrSplitNoSeparator) {
  auto pieces = StrSplit("abc", ',');
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "abc");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(StartsWith("foo", ""));
  EXPECT_FALSE(StartsWith("f", "foo"));
}

TEST(StringsTest, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

TEST(StringsTest, FormatWithCommas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(FormatWithCommas(-1234), "-1,234");
}

TEST(StringsTest, FormatMillis) {
  EXPECT_EQ(FormatMillis(0.5), "500 us");
  EXPECT_EQ(FormatMillis(12.345), "12.35 ms");
  EXPECT_EQ(FormatMillis(2500), "2.50 s");
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  volatile uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedMillis(), 0.0);
  EXPECT_GE(timer.ElapsedMicros(), 0);
}

TEST(TimeParamsTest, Totals) {
  obs::TimeParams times;
  times.parse_ms = 1;
  times.graph_ms = 2;
  times.comp_ms = 3;
  times.shapes_ms = 4;
  EXPECT_DOUBLE_EQ(times.TotalMs(), 10);
  EXPECT_DOUBLE_EQ(times.DbIndependentMs(), 6);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer", "22"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table({"x", "y"});
  table.AddRow({"1", "2"});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

}  // namespace
}  // namespace chase
