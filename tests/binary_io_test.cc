#include <string>

#include <gtest/gtest.h>

#include "gen/data_generator.h"
#include "gen/tgd_generator.h"
#include "io/binary_io.h"
#include "logic/parser.h"
#include "logic/printer.h"

namespace chase {
namespace io {
namespace {

Program MustParse(const std::string& text) {
  auto program = ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status();
  return std::move(program).value();
}

void ExpectSamePrograms(const Program& a, const Program& b) {
  ASSERT_EQ(a.schema->NumPredicates(), b.schema->NumPredicates());
  for (PredId pred = 0; pred < a.schema->NumPredicates(); ++pred) {
    EXPECT_EQ(a.schema->PredicateName(pred), b.schema->PredicateName(pred));
    EXPECT_EQ(a.schema->Arity(pred), b.schema->Arity(pred));
    auto ta = a.database->Tuples(pred);
    auto tb = b.database->Tuples(pred);
    ASSERT_EQ(ta.size(), tb.size());
    EXPECT_TRUE(std::equal(ta.begin(), ta.end(), tb.begin()));
  }
  EXPECT_EQ(a.database->NumConstants(), b.database->NumConstants());
  ASSERT_EQ(a.tgds.size(), b.tgds.size());
  for (size_t i = 0; i < a.tgds.size(); ++i) {
    EXPECT_EQ(a.tgds[i], b.tgds[i]);
  }
}

TEST(BinaryIoTest, RoundTripParsedProgram) {
  Program p = MustParse(R"(
    person(alice). person(bob). knows(alice, bob).
    person(X) -> knows(X, Y), person(Y).
    knows(X, Y) -> knows(Y, X).
    r(A, A, B) -> s(B, A).
  )");
  std::vector<uint8_t> bytes =
      SerializeProgram(*p.schema, *p.database, p.tgds);
  auto loaded = DeserializeProgram(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectSamePrograms(p, *loaded);
  // Constant names survive.
  EXPECT_EQ(loaded->database->ConstantName(0), "alice");
}

TEST(BinaryIoTest, RoundTripGeneratedWorkload) {
  DataGenParams data_params;
  data_params.preds = 10;
  data_params.min_arity = 1;
  data_params.max_arity = 5;
  data_params.dsize = 500;
  data_params.rsize = 200;
  data_params.seed = 5;
  auto data = GenerateData(data_params);
  ASSERT_TRUE(data.ok());
  TgdGenParams tgd_params;
  tgd_params.ssize = 10;
  tgd_params.min_arity = 1;
  tgd_params.max_arity = 5;
  tgd_params.tsize = 300;
  tgd_params.tclass = TgdClass::kLinear;
  tgd_params.seed = 6;
  auto tgds = GenerateTgds(*data->schema, tgd_params);
  ASSERT_TRUE(tgds.ok());

  std::vector<uint8_t> bytes =
      SerializeProgram(*data->schema, *data->database, tgds.value());
  auto loaded = DeserializeProgram(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->tgds.size(), tgds->size());
  EXPECT_EQ(loaded->database->TotalFacts(), data->database->TotalFacts());
}

TEST(BinaryIoTest, FileRoundTrip) {
  Program p = MustParse("r(a, b).\nr(X, Y) -> r(Y, Z).");
  const std::string path = testing::TempDir() + "/bin_io_roundtrip.chbin";
  ASSERT_TRUE(SaveProgram(*p.schema, *p.database, p.tgds, path).ok());
  auto loaded = LoadProgram(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectSamePrograms(p, *loaded);
}

TEST(BinaryIoTest, BadMagicRejected) {
  std::vector<uint8_t> bytes = {'n', 'o', 'p', 'e', 0, 0, 0, 0};
  auto loaded = DeserializeProgram(bytes);
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
}

TEST(BinaryIoTest, TruncationRejected) {
  Program p = MustParse("r(a, b).\nr(X, Y) -> r(Y, Z).");
  std::vector<uint8_t> bytes =
      SerializeProgram(*p.schema, *p.database, p.tgds);
  bytes.resize(bytes.size() / 2);
  auto loaded = DeserializeProgram(bytes);
  EXPECT_FALSE(loaded.ok());
}

TEST(BinaryIoTest, CorruptionRejectedByChecksum) {
  Program p = MustParse("r(a, b).\nr(X, Y) -> r(Y, Z).");
  std::vector<uint8_t> bytes =
      SerializeProgram(*p.schema, *p.database, p.tgds);
  bytes[bytes.size() - 3] ^= 0xff;
  auto loaded = DeserializeProgram(bytes);
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
}

TEST(BinaryIoTest, MissingFileIsNotFound) {
  auto loaded = LoadProgram(testing::TempDir() + "/does_not_exist.chbin");
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(BinaryIoTest, EmptyProgramRoundTrips) {
  Program p;
  std::vector<uint8_t> bytes =
      SerializeProgram(*p.schema, *p.database, p.tgds);
  auto loaded = DeserializeProgram(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->schema->NumPredicates(), 0u);
  EXPECT_TRUE(loaded->tgds.empty());
}

}  // namespace
}  // namespace io
}  // namespace chase
