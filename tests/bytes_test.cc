#include <vector>

#include <gtest/gtest.h>

#include "base/bytes.h"

namespace chase {
namespace {

TEST(BytesTest, ScalarRoundTrip) {
  ByteWriter writer;
  writer.PutU8(7);
  writer.PutU32(0xdeadbeef);
  writer.PutU64(0x0123456789abcdefULL);
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.GetU8().value(), 7);
  EXPECT_EQ(reader.GetU32().value(), 0xdeadbeefu);
  EXPECT_EQ(reader.GetU64().value(), 0x0123456789abcdefULL);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BytesTest, StringRoundTrip) {
  ByteWriter writer;
  writer.PutString("hello");
  writer.PutString("");
  writer.PutString(std::string("with\0nul", 8));
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.GetString().value(), "hello");
  EXPECT_EQ(reader.GetString().value(), "");
  EXPECT_EQ(reader.GetString().value(), std::string("with\0nul", 8));
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BytesTest, SpanRoundTrip) {
  ByteWriter writer;
  std::vector<uint32_t> values = {1, 2, 3, 0xffffffff};
  writer.PutU32Span(values);
  writer.PutU32Span({});
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.GetU32Span().value(), values);
  EXPECT_TRUE(reader.GetU32Span().value().empty());
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BytesTest, TruncatedReadsFailCleanly) {
  ByteWriter writer;
  writer.PutU32(42);
  std::vector<uint8_t> bytes = writer.Take();
  bytes.pop_back();
  ByteReader reader(bytes);
  EXPECT_EQ(reader.GetU32().status().code(), StatusCode::kOutOfRange);
}

TEST(BytesTest, TruncatedStringFails) {
  ByteWriter writer;
  writer.PutString("abcdef");
  std::vector<uint8_t> bytes = writer.Take();
  bytes.resize(bytes.size() - 3);
  ByteReader reader(bytes);
  EXPECT_EQ(reader.GetString().status().code(), StatusCode::kOutOfRange);
}

TEST(BytesTest, LyingLengthPrefixDoesNotOverflow) {
  // Length prefixes far larger than the buffer must fail, not wrap —
  // including counts whose byte size overflows uint64 exactly (2^62 * 4).
  for (uint64_t count : {~uint64_t{0}, uint64_t{1} << 62, uint64_t{1} << 32}) {
    ByteWriter writer;
    writer.PutU64(count);
    ByteReader reader(writer.bytes());
    EXPECT_EQ(reader.GetU32Span().status().code(), StatusCode::kOutOfRange);
  }
}

TEST(BytesTest, RemainingTracksPosition) {
  ByteWriter writer;
  writer.PutU32(1);
  writer.PutU32(2);
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.remaining(), 8u);
  ASSERT_TRUE(reader.GetU32().ok());
  EXPECT_EQ(reader.remaining(), 4u);
}

}  // namespace
}  // namespace chase
