// Checkpoint/restart for long chases: the CHCK envelope (round-trip,
// canonical bytes, and a corruption suite mirroring the CHBN/CHSI ones),
// the engine's periodic and signal-triggered checkpoint protocol with its
// bit-identical --resume contract, the signal-flag shim itself, and the
// chase limit-enforcement fixes that rode along (deterministic atom-limit
// cut with a bounded overshoot, atom limit outranking the round limit).
//
// Signal-path tests drive the protocol through ScopedSignalFlags'
// Post*Request seams (and one real raise()) so they stay deterministic:
// a pre-posted request is served at the first round boundary.
//
// Standalone via `ctest -L checkpoint`.

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "base/signal_flag.h"
#include "chase/chase_engine.h"
#include "io/binary_io.h"
#include "logic/parser.h"

namespace chase {
namespace {

using io::ChaseCheckpoint;

Program MustParse(const std::string& text) {
  auto program = ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status();
  return std::move(program).value();
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<GroundAtom> CollectAtoms(const Instance& instance) {
  std::vector<GroundAtom> atoms;
  instance.ForEachAtom(
      [&](const GroundAtom& atom) { atoms.push_back(atom); });
  return atoms;
}

std::vector<uint8_t> ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

bool FileExists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return in.good();
}

// A handcrafted state with two relations and a few fired keys — enough to
// exercise every field of the envelope.
ChaseCheckpoint MakeSampleCheckpoint() {
  ChaseCheckpoint ckpt;
  ckpt.variant = 1;
  ckpt.input_fingerprint = 0xfeedfacecafef00dull;
  ckpt.rounds = 7;
  ckpt.triggers_fired = 19;
  ckpt.triggers_prefiltered = 3;
  ckpt.peak_buffered_homs = 12;
  ckpt.next_null = 5;
  ChaseCheckpoint::Relation r0;
  r0.arity = 2;
  r0.prev = 1;
  r0.cur = 3;
  r0.atoms = {1, 2, 2, 3, 3, 4};
  ChaseCheckpoint::Relation r1;
  r1.arity = 1;
  r1.prev = 0;
  r1.cur = 1;
  r1.atoms = {9};
  ckpt.relations = {r0, r1};
  ckpt.fired_keys = {{0, 1}, {0, 2}, {1, 9, 9}};
  return ckpt;
}

// Everything but the two diagnostic counters (triggers_prefiltered,
// peak_buffered_homs), which are documented as thread-count-dependent and
// excluded from the bit-identical-result contract.
void ExpectSameCheckpointState(const ChaseCheckpoint& a,
                               const ChaseCheckpoint& b) {
  EXPECT_EQ(a.variant, b.variant);
  EXPECT_EQ(a.input_fingerprint, b.input_fingerprint);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.triggers_fired, b.triggers_fired);
  EXPECT_EQ(a.next_null, b.next_null);
  ASSERT_EQ(a.relations.size(), b.relations.size());
  for (size_t i = 0; i < a.relations.size(); ++i) {
    EXPECT_EQ(a.relations[i].arity, b.relations[i].arity) << i;
    EXPECT_EQ(a.relations[i].prev, b.relations[i].prev) << i;
    EXPECT_EQ(a.relations[i].cur, b.relations[i].cur) << i;
    EXPECT_EQ(a.relations[i].atoms, b.relations[i].atoms) << i;
  }
  EXPECT_EQ(a.fired_keys, b.fired_keys);
}

void ExpectSameCheckpoints(const ChaseCheckpoint& a,
                           const ChaseCheckpoint& b) {
  ExpectSameCheckpointState(a, b);
  EXPECT_EQ(a.triggers_prefiltered, b.triggers_prefiltered);
  EXPECT_EQ(a.peak_buffered_homs, b.peak_buffered_homs);
}

// ---------------------------------------------------------------------------
// The CHCK envelope.

TEST(ChaseCheckpointEnvelopeTest, RoundTripsAndIsCanonical) {
  ChaseCheckpoint ckpt = MakeSampleCheckpoint();
  std::vector<uint8_t> bytes = io::SerializeChaseCheckpoint(ckpt);
  auto loaded = io::DeserializeChaseCheckpoint(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectSameCheckpoints(ckpt, *loaded);
  // Same state, same bytes: serialization is deterministic.
  EXPECT_EQ(io::SerializeChaseCheckpoint(*loaded), bytes);
}

TEST(ChaseCheckpointEnvelopeTest, FileRoundTripLeavesNoTempBehind) {
  const std::string path = TempPath("chck_roundtrip.chck");
  ChaseCheckpoint ckpt = MakeSampleCheckpoint();
  ASSERT_TRUE(io::SaveChaseCheckpoint(ckpt, path).ok());
  // The write-temp-then-rename protocol must not leave the temp around.
  EXPECT_FALSE(FileExists(path + ".tmp"));
  auto loaded = io::LoadChaseCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectSameCheckpoints(ckpt, *loaded);
  std::remove(path.c_str());
}

TEST(ChaseCheckpointEnvelopeTest, MissingFileIsNotFound) {
  auto loaded = io::LoadChaseCheckpoint(TempPath("no_such.chck"));
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(ChaseCheckpointEnvelopeTest, TruncationAtEveryLengthRejected) {
  std::vector<uint8_t> bytes =
      io::SerializeChaseCheckpoint(MakeSampleCheckpoint());
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto loaded = io::DeserializeChaseCheckpoint(
        std::span<const uint8_t>(bytes.data(), len));
    EXPECT_FALSE(loaded.ok()) << "accepted a prefix of " << len << " bytes";
  }
}

TEST(ChaseCheckpointEnvelopeTest, EveryBitFlipRejected) {
  std::vector<uint8_t> bytes =
      io::SerializeChaseCheckpoint(MakeSampleCheckpoint());
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::vector<uint8_t> corrupt = bytes;
    corrupt[i] ^= 0x40;
    auto loaded = io::DeserializeChaseCheckpoint(corrupt);
    EXPECT_FALSE(loaded.ok()) << "accepted a flip at byte " << i;
  }
}

TEST(ChaseCheckpointEnvelopeTest, WrongMagicAndVersionRejected) {
  std::vector<uint8_t> bytes =
      io::SerializeChaseCheckpoint(MakeSampleCheckpoint());
  std::vector<uint8_t> wrong_magic = bytes;
  wrong_magic[0] = 'X';
  EXPECT_EQ(io::DeserializeChaseCheckpoint(wrong_magic).status().code(),
            StatusCode::kFailedPrecondition);
  std::vector<uint8_t> wrong_version = bytes;
  wrong_version[4] += 1;
  EXPECT_EQ(io::DeserializeChaseCheckpoint(wrong_version).status().code(),
            StatusCode::kFailedPrecondition);
  // A CHSI snapshot is not a checkpoint, however valid its envelope.
  std::vector<uint8_t> snapshot_bytes =
      io::SerializeShapeSnapshot(io::ShapeSnapshot{});
  EXPECT_EQ(
      io::DeserializeChaseCheckpoint(snapshot_bytes).status().code(),
      StatusCode::kFailedPrecondition);
}

TEST(ChaseCheckpointEnvelopeTest, SemanticValidationRejects) {
  ChaseCheckpoint bad_variant = MakeSampleCheckpoint();
  bad_variant.variant = 3;  // kNumChaseVariants
  EXPECT_EQ(io::DeserializeChaseCheckpoint(
                io::SerializeChaseCheckpoint(bad_variant))
                .status()
                .code(),
            StatusCode::kFailedPrecondition);

  ChaseCheckpoint bad_window = MakeSampleCheckpoint();
  bad_window.relations[0].prev = 4;  // > cur
  EXPECT_EQ(io::DeserializeChaseCheckpoint(
                io::SerializeChaseCheckpoint(bad_window))
                .status()
                .code(),
            StatusCode::kFailedPrecondition);

  ChaseCheckpoint unordered_keys = MakeSampleCheckpoint();
  std::swap(unordered_keys.fired_keys[0], unordered_keys.fired_keys[2]);
  EXPECT_EQ(io::DeserializeChaseCheckpoint(
                io::SerializeChaseCheckpoint(unordered_keys))
                .status()
                .code(),
            StatusCode::kFailedPrecondition);

  ChaseCheckpoint empty_key = MakeSampleCheckpoint();
  empty_key.fired_keys[0].clear();
  EXPECT_EQ(io::DeserializeChaseCheckpoint(
                io::SerializeChaseCheckpoint(empty_key))
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// The signal shim.

TEST(ScopedSignalFlagsTest, RealSignalsSetFlagsAndConsumingClears) {
  ScopedSignalFlags flags;
  EXPECT_FALSE(ScopedSignalFlags::ConsumeCheckpointRequest());
  EXPECT_FALSE(ScopedSignalFlags::ConsumeStopRequest());
  ASSERT_EQ(std::raise(SIGUSR1), 0);
  EXPECT_TRUE(ScopedSignalFlags::ConsumeCheckpointRequest());
  EXPECT_FALSE(ScopedSignalFlags::ConsumeCheckpointRequest());
  ASSERT_EQ(std::raise(SIGTERM), 0);
  EXPECT_TRUE(ScopedSignalFlags::ConsumeStopRequest());
  EXPECT_FALSE(ScopedSignalFlags::ConsumeStopRequest());
}

// ---------------------------------------------------------------------------
// The engine protocol. `e(X,Y) -> e(Y,Z)` never terminates (one fresh
// null per round), so every run below ends at a limit or a signal — the
// checkpoint protocol's home turf.

constexpr char kNonTerminating[] = R"(
  e(a, b).
  e(X, Y) -> e(Y, Z).
  e(X, Y) -> p(X).
)";

TEST(ChaseCheckpointEngineTest, CheckpointKnobsRequireAPath) {
  Program p = MustParse(kNonTerminating);
  ChaseOptions options;
  options.max_rounds = 2;
  options.checkpoint_every_rounds = 1;
  EXPECT_EQ(RunChase(*p.database, p.tgds, options).status().code(),
            StatusCode::kInvalidArgument);
  options.checkpoint_every_rounds = 0;
  options.checkpoint_on_signal = true;
  EXPECT_EQ(RunChase(*p.database, p.tgds, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ChaseCheckpointEngineTest, PeriodicCheckpointResumesBitIdentically) {
  Program p = MustParse(kNonTerminating);
  ChaseOptions straight_options;
  straight_options.max_rounds = 7;
  auto straight = RunChase(*p.database, p.tgds, straight_options);
  ASSERT_TRUE(straight.ok()) << straight.status();
  ASSERT_EQ(straight->outcome, ChaseOutcome::kRoundLimit);

  const std::string path = TempPath("chck_periodic.chck");
  ChaseOptions leg1_options;
  leg1_options.max_rounds = 3;
  leg1_options.checkpoint_path = path;
  leg1_options.checkpoint_every_rounds = 1;
  auto leg1 = RunChase(*p.database, p.tgds, leg1_options);
  ASSERT_TRUE(leg1.ok()) << leg1.status();
  ASSERT_EQ(leg1->outcome, ChaseOutcome::kRoundLimit);

  auto ckpt = io::LoadChaseCheckpoint(path);
  ASSERT_TRUE(ckpt.ok()) << ckpt.status();
  EXPECT_EQ(ckpt->rounds, 3u);
  EXPECT_EQ(ckpt->triggers_fired, leg1->triggers_fired);
  EXPECT_EQ(ckpt->next_null, leg1->instance.NumNulls());

  ChaseOptions leg2_options;
  leg2_options.max_rounds = 7;  // totals across both legs
  leg2_options.resume = &*ckpt;
  auto leg2 = RunChase(*p.database, p.tgds, leg2_options);
  ASSERT_TRUE(leg2.ok()) << leg2.status();
  EXPECT_EQ(leg2->outcome, straight->outcome);
  EXPECT_EQ(leg2->rounds, straight->rounds);
  EXPECT_EQ(leg2->triggers_fired, straight->triggers_fired);
  EXPECT_EQ(leg2->instance.NumNulls(), straight->instance.NumNulls());
  EXPECT_EQ(CollectAtoms(leg2->instance), CollectAtoms(straight->instance));
  std::remove(path.c_str());
}

TEST(ChaseCheckpointEngineTest, CheckpointStateIsThreadCountInvariant) {
  // The checkpoint serializes canonical state (fired keys sorted, atoms in
  // insertion order): every state field must be identical at any
  // frontier_threads, and at a fixed thread count repeated runs must write
  // the identical file — only the two diagnostic counters, which the
  // ChaseResult contract already scopes per thread count, may vary across
  // thread counts.
  Program p = MustParse(kNonTerminating);
  const std::string path1 = TempPath("chck_canon_t1.chck");
  const std::string path4 = TempPath("chck_canon_t4.chck");
  const std::string path4_again = TempPath("chck_canon_t4_again.chck");
  for (const auto& [path, threads] :
       {std::pair<std::string, unsigned>{path1, 1},
        {path4, 4},
        {path4_again, 4}}) {
    ChaseOptions options;
    options.max_rounds = 5;
    options.frontier_threads = threads;
    options.checkpoint_path = path;
    options.checkpoint_every_rounds = 5;
    auto result = RunChase(*p.database, p.tgds, options);
    ASSERT_TRUE(result.ok()) << result.status();
  }
  EXPECT_EQ(ReadAllBytes(path4), ReadAllBytes(path4_again));
  auto serial = io::LoadChaseCheckpoint(path1);
  auto parallel = io::LoadChaseCheckpoint(path4);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  ExpectSameCheckpointState(*serial, *parallel);
  std::remove(path1.c_str());
  std::remove(path4.c_str());
  std::remove(path4_again.c_str());
}

TEST(ChaseCheckpointEngineTest, ResumeRejectsMismatchedProgramOrVariant) {
  Program p = MustParse(kNonTerminating);
  const std::string path = TempPath("chck_mismatch.chck");
  ChaseOptions leg1_options;
  leg1_options.max_rounds = 2;
  leg1_options.checkpoint_path = path;
  leg1_options.checkpoint_every_rounds = 1;
  ASSERT_TRUE(RunChase(*p.database, p.tgds, leg1_options).ok());
  auto ckpt = io::LoadChaseCheckpoint(path);
  ASSERT_TRUE(ckpt.ok()) << ckpt.status();

  ChaseOptions resume_options;
  resume_options.resume = &*ckpt;

  // A different seed database: the input fingerprint catches it.
  Program other = MustParse("e(a, c).\ne(X, Y) -> e(Y, Z).\ne(X, Y) -> p(X).");
  EXPECT_EQ(
      RunChase(*other.database, other.tgds, resume_options).status().code(),
      StatusCode::kInvalidArgument);

  // Same program, different variant.
  resume_options.variant = ChaseVariant::kOblivious;
  EXPECT_EQ(RunChase(*p.database, p.tgds, resume_options).status().code(),
            StatusCode::kInvalidArgument);
  resume_options.variant = ChaseVariant::kSemiOblivious;

  // A round window that no longer covers the relation.
  ChaseCheckpoint narrow = *ckpt;
  for (auto& relation : narrow.relations) {
    if (relation.cur > 0) {
      relation.cur -= 1;
      break;
    }
  }
  resume_options.resume = &narrow;
  EXPECT_EQ(RunChase(*p.database, p.tgds, resume_options).status().code(),
            StatusCode::kInvalidArgument);

  // Duplicate atoms in a stored relation.
  ChaseCheckpoint duplicated = *ckpt;
  for (auto& relation : duplicated.relations) {
    const size_t arity = relation.arity;
    if (relation.atoms.size() >= 2 * arity) {
      std::copy(relation.atoms.begin(), relation.atoms.begin() + arity,
                relation.atoms.begin() + arity);
      break;
    }
  }
  resume_options.resume = &duplicated;
  EXPECT_EQ(RunChase(*p.database, p.tgds, resume_options).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ChaseCheckpointEngineTest, PostedCheckpointRequestWritesAndContinues) {
  // A pre-posted SIGUSR1-equivalent is served at the first round boundary:
  // one checkpoint, run continues to its limit.
  Program p = MustParse(kNonTerminating);
  const std::string path = TempPath("chck_usr1.chck");
  ScopedSignalFlags::PostCheckpointRequest();
  ChaseOptions options;
  options.max_rounds = 4;
  options.checkpoint_path = path;
  options.checkpoint_on_signal = true;
  auto result = RunChase(*p.database, p.tgds, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->outcome, ChaseOutcome::kRoundLimit);
  EXPECT_EQ(result->rounds, 4u);
  auto ckpt = io::LoadChaseCheckpoint(path);
  ASSERT_TRUE(ckpt.ok()) << ckpt.status();
  EXPECT_EQ(ckpt->rounds, 1u);  // served at the first boundary
  std::remove(path.c_str());
}

TEST(ChaseCheckpointEngineTest, PostedStopInterruptsAndResumeContinues) {
  Program p = MustParse(kNonTerminating);
  ChaseOptions straight_options;
  straight_options.max_rounds = 6;
  auto straight = RunChase(*p.database, p.tgds, straight_options);
  ASSERT_TRUE(straight.ok()) << straight.status();

  const std::string path = TempPath("chck_term.chck");
  ScopedSignalFlags::PostStopRequest();
  ChaseOptions leg1_options;
  leg1_options.max_rounds = 6;
  leg1_options.checkpoint_path = path;
  leg1_options.checkpoint_on_signal = true;
  auto leg1 = RunChase(*p.database, p.tgds, leg1_options);
  ASSERT_TRUE(leg1.ok()) << leg1.status();
  EXPECT_EQ(leg1->outcome, ChaseOutcome::kInterrupted);
  EXPECT_EQ(leg1->rounds, 1u);  // stopped at the first boundary

  auto ckpt = io::LoadChaseCheckpoint(path);
  ASSERT_TRUE(ckpt.ok()) << ckpt.status();
  ChaseOptions leg2_options;
  leg2_options.max_rounds = 6;
  leg2_options.resume = &*ckpt;
  auto leg2 = RunChase(*p.database, p.tgds, leg2_options);
  ASSERT_TRUE(leg2.ok()) << leg2.status();
  EXPECT_EQ(leg2->outcome, straight->outcome);
  EXPECT_EQ(leg2->rounds, straight->rounds);
  EXPECT_EQ(leg2->triggers_fired, straight->triggers_fired);
  EXPECT_EQ(CollectAtoms(leg2->instance), CollectAtoms(straight->instance));
  std::remove(path.c_str());
}

TEST(ChaseCheckpointEngineTest, InterruptedOutcomeHasAName) {
  EXPECT_STREQ(ChaseOutcomeName(ChaseOutcome::kInterrupted), "interrupted");
}

// ---------------------------------------------------------------------------
// Limit enforcement.

TEST(ChaseLimitTest, AtomLimitCutIsDeterministicAndBounded) {
  // Two-atom heads: the one trigger allowed to overshoot adds at most the
  // largest head atom count, and the cut lands at the same trigger for
  // every thread count.
  Program p = MustParse(R"(
    e(a, b).
    e(X, Y) -> e(Y, Z), e(Z, W).
  )");
  constexpr uint64_t kMaxAtoms = 50;
  constexpr uint64_t kMaxHeadAtoms = 2;
  std::vector<GroundAtom> serial_atoms;
  for (unsigned threads : {1u, 2u, 4u}) {
    ChaseOptions options;
    options.max_atoms = kMaxAtoms;
    options.frontier_threads = threads;
    auto result = RunChase(*p.database, p.tgds, options);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->outcome, ChaseOutcome::kAtomLimit) << threads;
    EXPECT_GT(result->instance.NumAtoms(), kMaxAtoms) << threads;
    EXPECT_LE(result->instance.NumAtoms(), kMaxAtoms + kMaxHeadAtoms)
        << threads;
    if (threads == 1) {
      serial_atoms = CollectAtoms(result->instance);
    } else {
      EXPECT_EQ(CollectAtoms(result->instance), serial_atoms) << threads;
    }
  }
}

TEST(ChaseLimitTest, SeedOverLimitReportsAtomLimitEvenAtZeroRounds) {
  // Before the fix the round check ran first, so a seed already past the
  // atom budget reported kRoundLimit at max_rounds = 0.
  Program p = MustParse("e(a, b). e(b, c). e(c, d).");
  ChaseOptions options;
  options.max_atoms = 2;
  options.max_rounds = 0;
  auto result = RunChase(*p.database, p.tgds, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->outcome, ChaseOutcome::kAtomLimit);
  EXPECT_EQ(result->rounds, 0u);
  EXPECT_EQ(result->triggers_fired, 0u);
}

TEST(ChaseLimitTest, AtomLimitOutranksRoundLimitWhenBothTrip) {
  // The chain grows one atom per round from one seed: after round 3 the
  // instance holds 4 atoms, so max_atoms = 3 and max_rounds = 3 exhaust in
  // the same round — the atom limit must win.
  Program p = MustParse("e(a, b).\ne(X, Y) -> e(Y, Z).");
  ChaseOptions options;
  options.max_atoms = 3;
  options.max_rounds = 3;
  auto result = RunChase(*p.database, p.tgds, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->outcome, ChaseOutcome::kAtomLimit);
  EXPECT_EQ(result->rounds, 3u);

  // Sanity: with a roomy atom budget the same round cap is a round limit.
  options.max_atoms = 1'000;
  auto roomy = RunChase(*p.database, p.tgds, options);
  ASSERT_TRUE(roomy.ok()) << roomy.status();
  EXPECT_EQ(roomy->outcome, ChaseOutcome::kRoundLimit);
}

}  // namespace
}  // namespace chase
