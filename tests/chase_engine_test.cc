#include <gtest/gtest.h>

#include "chase/chase_engine.h"
#include "chase/instance.h"
#include "logic/parser.h"

namespace chase {
namespace {

Program MustParse(const std::string& text) {
  auto program = ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status();
  return std::move(program).value();
}

ChaseResult MustChase(const Program& p, ChaseVariant variant,
                      uint64_t max_atoms = 10000) {
  ChaseOptions options;
  options.variant = variant;
  options.max_atoms = max_atoms;
  auto result = RunChase(*p.database, p.tgds, options);
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

TEST(InstanceTest, DeduplicatesAtoms) {
  Schema schema;
  const PredId r = schema.AddPredicate("r", 1).value();
  Instance instance(&schema);
  EXPECT_TRUE(instance.AddAtom(GroundAtom(r, {MakeConstant(1)})));
  EXPECT_FALSE(instance.AddAtom(GroundAtom(r, {MakeConstant(1)})));
  EXPECT_TRUE(instance.AddAtom(GroundAtom(r, {MakeConstant(2)})));
  EXPECT_EQ(instance.NumAtoms(), 2u);
  EXPECT_TRUE(instance.Contains(GroundAtom(r, {MakeConstant(1)})));
  EXPECT_FALSE(instance.Contains(GroundAtom(r, {MakeConstant(3)})));
}

TEST(InstanceTest, FromDatabase) {
  Program p = MustParse("r(a,b). r(b,c). s(a).");
  Instance instance = Instance::FromDatabase(*p.database);
  EXPECT_EQ(instance.NumAtoms(), 3u);
  size_t count = 0;
  instance.ForEachAtom([&](const GroundAtom&) { ++count; });
  EXPECT_EQ(count, 3u);
}

TEST(ChaseTest, PaperExample11RestrictedVsSemiOblivious) {
  // Example 1.1: D = {R(a,a)}, R(x,y) -> exists z R(z,x).
  // Restricted: already satisfied, no application. (Semi-)oblivious: grows
  // forever.
  Program p = MustParse("r(a,a).\nr(X,Y) -> r(Z,X).");

  ChaseResult restricted = MustChase(p, ChaseVariant::kRestricted);
  EXPECT_EQ(restricted.outcome, ChaseOutcome::kFixpoint);
  EXPECT_EQ(restricted.instance.NumAtoms(), 1u);
  EXPECT_EQ(restricted.triggers_fired, 0u);

  ChaseResult semi = MustChase(p, ChaseVariant::kSemiOblivious, 200);
  EXPECT_EQ(semi.outcome, ChaseOutcome::kAtomLimit);

  ChaseResult oblivious = MustChase(p, ChaseVariant::kOblivious, 200);
  EXPECT_EQ(oblivious.outcome, ChaseOutcome::kAtomLimit);
}

TEST(ChaseTest, Section3InfiniteExample) {
  // D = {R(a,b)}, R(x,y) -> exists z R(y,z): chase(D, Σ) is infinite.
  Program p = MustParse("r(a,b).\nr(X,Y) -> r(Y,Z).");
  ChaseResult semi = MustChase(p, ChaseVariant::kSemiOblivious, 500);
  EXPECT_EQ(semi.outcome, ChaseOutcome::kAtomLimit);
  // Restricted also runs forever here (every new null needs a successor).
  ChaseResult restricted = MustChase(p, ChaseVariant::kRestricted, 500);
  EXPECT_EQ(restricted.outcome, ChaseOutcome::kAtomLimit);
}

TEST(ChaseTest, SemiObliviousFiresOncePerFrontierWitness) {
  // R(x,y) -> exists z S(x,z): two facts sharing x fire one trigger in the
  // semi-oblivious chase (frontier {x}) but two in the oblivious chase.
  Program p = MustParse("r(a,b). r(a,c).\nr(X,Y) -> s(X,Z).");
  ChaseResult semi = MustChase(p, ChaseVariant::kSemiOblivious);
  EXPECT_EQ(semi.outcome, ChaseOutcome::kFixpoint);
  EXPECT_EQ(semi.triggers_fired, 1u);
  EXPECT_EQ(semi.instance.NumAtoms(), 3u);

  ChaseResult oblivious = MustChase(p, ChaseVariant::kOblivious);
  EXPECT_EQ(oblivious.outcome, ChaseOutcome::kFixpoint);
  EXPECT_EQ(oblivious.triggers_fired, 2u);
  EXPECT_EQ(oblivious.instance.NumAtoms(), 4u);

  // Restricted: one application satisfies the other trigger too.
  ChaseResult restricted = MustChase(p, ChaseVariant::kRestricted);
  EXPECT_EQ(restricted.outcome, ChaseOutcome::kFixpoint);
  EXPECT_EQ(restricted.instance.NumAtoms(), 3u);
}

TEST(ChaseTest, TerminatingTransitiveClosureStyleRules) {
  Program p = MustParse(R"(
    e(a,b). e(b,c). e(c,d).
    e(X,Y) -> t(X,Y).
    t(X,Y), e(Y,W) -> t(X,W).
  )");
  ChaseResult result = MustChase(p, ChaseVariant::kSemiOblivious);
  EXPECT_EQ(result.outcome, ChaseOutcome::kFixpoint);
  // t = transitive closure: (a,b),(b,c),(c,d),(a,c),(b,d),(a,d).
  const PredId t = p.schema->FindPredicate("t").value();
  EXPECT_EQ(result.instance.AtomsOf(t).size(), 6u);
  EXPECT_TRUE(Satisfies(result.instance, p.tgds));
}

TEST(ChaseTest, MultiHeadSharesNulls) {
  // r(x) -> s(x,z), t(z): the same null must appear in both head atoms.
  Program p = MustParse("r(a).\nr(X) -> s(X,Z), t(Z).");
  ChaseResult result = MustChase(p, ChaseVariant::kSemiOblivious);
  EXPECT_EQ(result.outcome, ChaseOutcome::kFixpoint);
  const PredId s = p.schema->FindPredicate("s").value();
  const PredId t = p.schema->FindPredicate("t").value();
  ASSERT_EQ(result.instance.AtomsOf(s).size(), 1u);
  ASSERT_EQ(result.instance.AtomsOf(t).size(), 1u);
  const Term null_in_s = result.instance.AtomsOf(s)[0].args[1];
  const Term null_in_t = result.instance.AtomsOf(t)[0].args[0];
  EXPECT_TRUE(IsNull(null_in_s));
  EXPECT_EQ(null_in_s, null_in_t);
}

TEST(ChaseTest, ResultSatisfiesRulesWhenFinite) {
  Program p = MustParse(R"(
    r(a,b). r(b,c).
    r(X,Y) -> s(Y).
    s(X) -> u(X,X).
    u(X,Y) -> w(X).
  )");
  for (ChaseVariant variant :
       {ChaseVariant::kOblivious, ChaseVariant::kSemiOblivious,
        ChaseVariant::kRestricted}) {
    ChaseResult result = MustChase(p, variant);
    EXPECT_EQ(result.outcome, ChaseOutcome::kFixpoint)
        << ChaseVariantName(variant);
    EXPECT_TRUE(Satisfies(result.instance, p.tgds))
        << ChaseVariantName(variant);
  }
}

TEST(ChaseTest, VariantInstanceSizeOrdering) {
  // restricted <= semi-oblivious <= oblivious on terminating inputs.
  Program p = MustParse(R"(
    r(a,b). r(a,c). r(b,b).
    r(X,Y) -> s(X,Z).
    s(X,Y) -> t(X).
  )");
  const auto restricted =
      MustChase(p, ChaseVariant::kRestricted).instance.NumAtoms();
  const auto semi =
      MustChase(p, ChaseVariant::kSemiOblivious).instance.NumAtoms();
  const auto oblivious =
      MustChase(p, ChaseVariant::kOblivious).instance.NumAtoms();
  EXPECT_LE(restricted, semi);
  EXPECT_LE(semi, oblivious);
}

TEST(ChaseTest, EmptyDatabaseFixpointImmediately) {
  Program p = MustParse("r(X,Y) -> r(Y,Z).");
  ChaseResult result = MustChase(p, ChaseVariant::kSemiOblivious);
  EXPECT_EQ(result.outcome, ChaseOutcome::kFixpoint);
  EXPECT_EQ(result.instance.NumAtoms(), 0u);
}

TEST(ChaseTest, NoRulesIsFixpoint) {
  Program p = MustParse("r(a,b).");
  ChaseResult result = MustChase(p, ChaseVariant::kSemiOblivious);
  EXPECT_EQ(result.outcome, ChaseOutcome::kFixpoint);
  EXPECT_EQ(result.instance.NumAtoms(), 1u);
  EXPECT_EQ(result.rounds, 1u);
}

TEST(ChaseTest, RoundLimit) {
  Program p = MustParse("r(a,b).\nr(X,Y) -> r(Y,Z).");
  ChaseOptions options;
  options.variant = ChaseVariant::kSemiOblivious;
  options.max_rounds = 3;
  auto result = RunChase(*p.database, p.tgds, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, ChaseOutcome::kRoundLimit);
  EXPECT_EQ(result->rounds, 3u);
}

TEST(ChaseTest, NullNamesAreFunctionalInSemiOblivious) {
  // Two rules with the same body: each fires once; nulls across rules are
  // distinct.
  Program p = MustParse(R"(
    r(a).
    r(X) -> s(X,Z).
    r(X) -> t(X,Z).
  )");
  ChaseResult result = MustChase(p, ChaseVariant::kSemiOblivious);
  const PredId s = p.schema->FindPredicate("s").value();
  const PredId t = p.schema->FindPredicate("t").value();
  const Term null_s = result.instance.AtomsOf(s)[0].args[1];
  const Term null_t = result.instance.AtomsOf(t)[0].args[1];
  EXPECT_NE(null_s, null_t);
}

TEST(ChaseTest, RepeatedBodyVariableFiltersMatches) {
  // r(x,x) -> s(x): only the diagonal tuple matches.
  Program p = MustParse("r(a,a). r(a,b).\nr(X,X) -> s(X).");
  ChaseResult result = MustChase(p, ChaseVariant::kSemiOblivious);
  const PredId s = p.schema->FindPredicate("s").value();
  EXPECT_EQ(result.instance.AtomsOf(s).size(), 1u);
  EXPECT_EQ(result.instance.AtomsOf(s)[0].args[0], MakeConstant(0));
}

TEST(ChaseTest, PaperExample34NoTrigger) {
  // Example 3.4: D = {R(a,b)}, R(x,x) -> exists z R(z,x): no trigger, the
  // chase equals D.
  Program p = MustParse("r(a,b).\nr(X,X) -> r(Z,X).");
  for (ChaseVariant variant :
       {ChaseVariant::kOblivious, ChaseVariant::kSemiOblivious,
        ChaseVariant::kRestricted}) {
    ChaseResult result = MustChase(p, variant);
    EXPECT_EQ(result.outcome, ChaseOutcome::kFixpoint);
    EXPECT_EQ(result.instance.NumAtoms(), 1u);
    EXPECT_EQ(result.triggers_fired, 0u);
  }
}

TEST(ChaseTest, SatisfiesDetectsViolation) {
  Program p = MustParse("r(a,b).\nr(X,Y) -> s(X).");
  Instance instance = Instance::FromDatabase(*p.database);
  EXPECT_FALSE(Satisfies(instance, p.tgds));
}

TEST(ChaseTest, RejectsRuleOverForeignSchema) {
  Program rules = MustParse("r(X) -> s(X).");
  Schema other;
  Database db(&other);
  EXPECT_FALSE(RunChase(db, rules.tgds, {}).ok());
}

}  // namespace
}  // namespace chase
