// CLI regression suite for chasectl, driving the real binary (path baked
// in as CHASECTL_PATH by CMake). The focus is flag hygiene: every numeric
// flag of every subcommand must diagnose a malformed value and exit with
// code 2 — never die by an uncaught std::invalid_argument out of a raw
// string-to-integer conversion, which is exactly how `--threads=abc` used
// to kill the process. A signal death (WIFEXITED false) fails the test, so
// any resurrected uncaught-exception path is caught here.

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

namespace {

std::string TempDir() {
  const char* dir = std::getenv("TMPDIR");
  return dir != nullptr ? dir : "/tmp";
}

// Runs `chasectl <args>`, asserting the process exited (as opposed to
// dying by signal — an uncaught exception aborts) and returning its exit
// code.
int RunChasectl(const std::string& args) {
  const std::string command =
      std::string(CHASECTL_PATH) + " " + args + " >/dev/null 2>&1";
  const int raw = std::system(command.c_str());
  EXPECT_TRUE(WIFEXITED(raw)) << "chasectl died by signal on: " << args;
  return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
}

class ChasectlCliTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    program_path_ = TempDir() + "/chasectl_cli_test.dlgp";
    std::ofstream out(program_path_);
    out << "r(a,b). r(c,c). s(a).\n"
           "r(X,Y) -> r(Y,X).\n";
  }

  static std::string program_path_;
};

std::string ChasectlCliTest::program_path_;

TEST_F(ChasectlCliTest, MalformedNumericFlagsExitTwo) {
  const std::string file = program_path_;
  const std::string out_idx = TempDir() + "/chasectl_cli_test_bad.chidx";
  const std::string out_gen = TempDir() + "/chasectl_cli_test_bad.dlgp";
  // Every (invocation, numeric flag) pair the CLI accepts; %s is replaced
  // with each malformed value below.
  const std::vector<std::string> invocations = {
      "check " + file + " --mode=l --threads=%s",
      "chase " + file + " --threads=%s",
      "chase " + file + " --max-atoms=%s",
      "chase " + file + " --hom-budget=%s",
      "chase " + file + " --metrics-interval=%s",
      "chase " + file + " --max-rounds=%s",
      "chase " + file + " --checkpoint=" + TempDir() +
          "/chasectl_cli_test.chck --checkpoint-every=%s",
      "simplify " + file + " --threads=%s",
      "findshapes " + file + " --threads=%s",
      "findshapes " + file + " --shards=%s",
      "findshapes " + file + " --pool-shards=%s",
      "findshapes " + file + " --prefetch=%s",
      "index build " + file + " " + out_idx + " --threads=%s",
      "index build " + file + " " + out_idx + " --shards=%s",
      "generate " + out_gen + " --preds=%s",
      "generate " + out_gen + " --arity=%s",
      "generate " + out_gen + " --domain=%s",
      "generate " + out_gen + " --tuples=%s",
      "generate " + out_gen + " --seed=%s",
      "generate " + out_gen + " --tgds=%s",
  };
  // Non-numeric, trailing garbage, negative, and past-uint64 overflow.
  const std::vector<std::string> bad_values = {
      "abc", "3x", "-3", "18446744073709551616"};
  for (const std::string& invocation : invocations) {
    for (const std::string& value : bad_values) {
      std::string args = invocation;
      args.replace(args.find("%s"), 2, value);
      EXPECT_EQ(RunChasectl(args), 2) << args;
    }
  }
}

TEST_F(ChasectlCliTest, OutOfRangeNumericFlagsExitTwo) {
  // In-format but out-of-bounds values: threads has a [1, 1024] window,
  // hom-budget needs at least 1, and generate's arity is capped at
  // Schema::kMaxArity.
  EXPECT_EQ(RunChasectl("chase " + program_path_ + " --threads=0"), 2);
  EXPECT_EQ(RunChasectl("chase " + program_path_ + " --threads=4096"), 2);
  EXPECT_EQ(RunChasectl("chase " + program_path_ + " --hom-budget=0"), 2);
  EXPECT_EQ(RunChasectl("generate " + TempDir() +
                        "/chasectl_cli_test_bad.dlgp --arity=300"),
            2);
}

TEST_F(ChasectlCliTest, WellFormedFlagsStillRun) {
  EXPECT_EQ(RunChasectl("chase " + program_path_ +
                        " --variant=re --threads=2 --max-atoms=1000"),
            0);
  // hom-budget=1 drives the budgeted protocol at its tightest setting.
  EXPECT_EQ(RunChasectl("chase " + program_path_ +
                        " --variant=so --threads=2 --hom-budget=1"),
            0);
  EXPECT_EQ(RunChasectl("findshapes " + program_path_ +
                        " --mode=exists --threads=2 --absorb=parallel"),
            0);
  EXPECT_EQ(RunChasectl("findshapes " + program_path_ +
                        " --mode=exists --threads=2 --absorb=serial"),
            0);
  EXPECT_EQ(RunChasectl("check " + program_path_ + " --mode=l --threads=2"),
            0);
}

TEST_F(ChasectlCliTest, UnknownEnumValuesExitTwo) {
  EXPECT_EQ(RunChasectl("findshapes " + program_path_ + " --absorb=bogus"),
            2);
  EXPECT_EQ(RunChasectl("chase " + program_path_ + " --variant=bogus"), 2);
}

TEST_F(ChasectlCliTest, MalformedObservabilityFlagsExitTwo) {
  // --progress takes an optional whole-seconds value in [1, 86400]; bare
  // --progress is fine (tested below) but garbage values are diagnosed.
  for (const std::string value : {"abc", "1.5", "-3", "0", "86401"}) {
    EXPECT_EQ(RunChasectl("chase " + program_path_ + " --progress=" + value),
              2)
        << value;
  }
  // --metrics-interval has no bare form (a cadence needs a value) and the
  // same [1, 86400] whole-seconds window as --progress.
  EXPECT_EQ(RunChasectl("chase " + program_path_ + " --metrics-interval"), 2);
  for (const std::string value : {"abc", "1.5", "-3", "0", "86401"}) {
    EXPECT_EQ(RunChasectl("chase " + program_path_ +
                          " --metrics-interval=" + value),
              2)
        << value;
  }
  // --trace / --metrics require a path: the bare-flag form is a syntax
  // error, not a run that silently drops the artifact.
  EXPECT_EQ(RunChasectl("chase " + program_path_ + " --trace"), 2);
  EXPECT_EQ(RunChasectl("chase " + program_path_ + " --metrics"), 2);
  EXPECT_EQ(RunChasectl("check " + program_path_ + " --trace"), 2);
  EXPECT_EQ(RunChasectl("findshapes " + program_path_ + " --metrics"), 2);
}

TEST_F(ChasectlCliTest, UnwritableArtifactPathsFailCleanlyUpFront) {
  // A path in a nonexistent directory must be a clean diagnosed exit 1
  // (probed before the run) — never a crash, and never exit 0 with the
  // artifact missing. RunChasectl itself asserts "exited, not signaled".
  const std::string bad = "/nonexistent-dir-for-chasectl-test/out.json";
  EXPECT_EQ(RunChasectl("chase " + program_path_ + " --trace=" + bad), 1);
  EXPECT_EQ(RunChasectl("chase " + program_path_ + " --metrics=" + bad), 1);
  EXPECT_EQ(RunChasectl("check " + program_path_ + " --trace=" + bad), 1);
  EXPECT_EQ(RunChasectl("simplify " + program_path_ + " --metrics=" + bad),
            1);
}

TEST_F(ChasectlCliTest, MalformedCheckpointFlagsExitTwo) {
  const std::string ck = TempDir() + "/chasectl_cli_test_flags.chck";
  // --checkpoint and --resume require a path: the bare-flag form is a
  // syntax error, not a run that silently drops the checkpoint.
  EXPECT_EQ(RunChasectl("chase " + program_path_ + " --checkpoint"), 2);
  EXPECT_EQ(RunChasectl("chase " + program_path_ + " --resume"), 2);
  // A cadence without a file to write has nothing to mean.
  EXPECT_EQ(RunChasectl("chase " + program_path_ + " --checkpoint-every=2"),
            2);
  // The cadence is a whole positive round count.
  EXPECT_EQ(RunChasectl("chase " + program_path_ + " --checkpoint=" + ck +
                        " --checkpoint-every=0"),
            2);
}

TEST_F(ChasectlCliTest, CheckpointPathProblemsFailCleanlyUpFront) {
  // An unwritable checkpoint destination is probed before the run; a
  // missing resume source is a clean load failure. Both exit 1, never a
  // crash and never a run whose checkpoint silently went nowhere.
  EXPECT_EQ(RunChasectl("chase " + program_path_ +
                        " --checkpoint=/nonexistent-dir-for-chasectl/x.chck"),
            1);
  EXPECT_EQ(RunChasectl("chase " + program_path_ + " --resume=" + TempDir() +
                        "/chasectl_cli_test_missing.chck"),
            1);
}

TEST_F(ChasectlCliTest, CheckpointResumeRoundTrips) {
  // A non-terminating chain, so both legs end at their round limits.
  const std::string file = TempDir() + "/chasectl_cli_test_nonterm.dlgp";
  {
    std::ofstream out(file);
    out << "e(a,b).\ne(X,Y) -> e(Y,Z).\n";
  }
  const std::string ck = TempDir() + "/chasectl_cli_test_resume.chck";
  std::remove(ck.c_str());
  EXPECT_EQ(RunChasectl("chase " + file + " --variant=ob --max-rounds=2" +
                        " --checkpoint=" + ck + " --checkpoint-every=1"),
            0);
  std::ifstream in(ck, std::ios::binary);
  ASSERT_TRUE(in.good()) << ck;
  // --resume without --variant adopts the checkpoint's variant; a
  // conflicting explicit variant is a diagnosed failure, not a divergent
  // chase.
  EXPECT_EQ(RunChasectl("chase " + file + " --resume=" + ck +
                        " --max-rounds=4"),
            0);
  EXPECT_EQ(RunChasectl("chase " + file + " --resume=" + ck +
                        " --variant=so --max-rounds=4"),
            1);
  std::remove(ck.c_str());
  std::remove(file.c_str());
}

TEST_F(ChasectlCliTest, ObservabilityRunsProduceArtifacts) {
  const std::string trace_path = TempDir() + "/chasectl_cli_test_trace.json";
  const std::string metrics_path =
      TempDir() + "/chasectl_cli_test_metrics.json";
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
  EXPECT_EQ(RunChasectl("chase " + program_path_ +
                        " --threads=2 --progress --trace=" + trace_path +
                        " --metrics=" + metrics_path),
            0);
  // Non-empty artifacts that at least look like JSON objects; the real
  // structural validation lives in obs_test and the CI jq smoke.
  for (const std::string& path : {trace_path, metrics_path}) {
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    char first = '\0';
    in >> first;
    EXPECT_EQ(first, '{') << path;
  }
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());

  // --progress with an explicit interval still runs.
  EXPECT_EQ(RunChasectl("chase " + program_path_ + " --progress=1"), 0);
  // --metrics-interval runs standalone (registry enabled just for the
  // periodic stderr dumps) and alongside a --metrics artifact.
  EXPECT_EQ(RunChasectl("chase " + program_path_ + " --metrics-interval=1"),
            0);
  EXPECT_EQ(RunChasectl("chase " + program_path_ +
                        " --metrics-interval=1 --metrics=" + metrics_path),
            0);
  std::remove(metrics_path.c_str());
  // check --metrics exercises the RecordTimeParams path.
  EXPECT_EQ(RunChasectl("check " + program_path_ +
                        " --mode=l --metrics=" + metrics_path),
            0);
  std::ifstream in(metrics_path);
  ASSERT_TRUE(in.good());
  std::string dump((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(dump.find("check.t_total_ms"), std::string::npos);
  std::remove(metrics_path.c_str());
}

}  // namespace
