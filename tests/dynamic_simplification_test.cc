#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "base/rng.h"
#include "core/dynamic_simplification.h"
#include "core/simplification.h"
#include "gen/data_generator.h"
#include "gen/tgd_generator.h"
#include "logic/parser.h"
#include "logic/printer.h"

namespace chase {
namespace {

Program MustParse(const std::string& text) {
  auto program = ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status();
  return std::move(program).value();
}

// Renders a simplified rule set as a canonical set of strings so results of
// different runs (with differently ordered shape schemas) can be compared.
std::set<std::string> CanonicalRules(const Schema& schema,
                                     const std::vector<Tgd>& tgds) {
  std::set<std::string> out;
  for (const Tgd& tgd : tgds) out.insert(ToString(schema, tgd));
  return out;
}

TEST(DynamicSimplificationTest, KeepsOnlyReachableShapes) {
  // The database only has the shape r_[1,2]; the specialization merging the
  // two body variables is unreachable and must be dropped.
  Program p = MustParse("r(a,b).\nr(X,Y) -> r(Y,X).");
  auto dynamic = DynamicSimplification(*p.database, p.tgds);
  ASSERT_TRUE(dynamic.ok()) << dynamic.status();
  EXPECT_EQ(dynamic->num_initial_shapes, 1u);
  EXPECT_EQ(dynamic->num_derived_shapes, 1u);
  ASSERT_EQ(dynamic->tgds.size(), 1u);
  EXPECT_EQ(ToString(dynamic->shape_schema->schema(), dynamic->tgds[0]),
            "r_[1,2](X0,X1) -> r_[1,2](X1,X0).");
}

TEST(DynamicSimplificationTest, PaperExample34) {
  // Example 3.4: D = {R(a,b)}, R(x,x) -> exists z R(z,x). The only database
  // shape is R_[1,2], which does not admit a homomorphism from R(x,x), so
  // simple_D(Σ) is empty (and the chase is trivially finite).
  Program p = MustParse("r(a,b).\nr(X,X) -> r(Z,X).");
  auto dynamic = DynamicSimplification(*p.database, p.tgds);
  ASSERT_TRUE(dynamic.ok());
  EXPECT_TRUE(dynamic->tgds.empty());
  EXPECT_EQ(dynamic->num_derived_shapes, 1u);
}

TEST(DynamicSimplificationTest, DerivesNewShapesTransitively) {
  // r(a,b) gives r_[1,2]; the first rule derives s_[1,1] (head s(y,y)), the
  // second rule then applies to s_[1,1].
  Program p = MustParse(R"(
    r(a,b).
    r(X,Y) -> s(Y,Y).
    s(X,X) -> t(X).
  )");
  auto dynamic = DynamicSimplification(*p.database, p.tgds);
  ASSERT_TRUE(dynamic.ok());
  // Shapes: r_[1,2], s_[1,1], t_[1].
  EXPECT_EQ(dynamic->num_derived_shapes, 3u);
  EXPECT_EQ(dynamic->tgds.size(), 2u);
}

TEST(DynamicSimplificationTest, HomRequiresConsistentIds) {
  // s(x,x) only maps onto the shape s_[1,1], not s_[1,2].
  Program p = MustParse("s(a,b). s(c,c).\ns(X,X) -> t(X).");
  auto dynamic = DynamicSimplification(*p.database, p.tgds);
  ASSERT_TRUE(dynamic.ok());
  ASSERT_EQ(dynamic->tgds.size(), 1u);
  EXPECT_EQ(ToString(dynamic->shape_schema->schema(), dynamic->tgds[0]),
            "s_[1,1](X0) -> t_[1](X0).");
}

TEST(DynamicSimplificationTest, IsSubsetOfStaticSimplification) {
  Program p = MustParse(R"(
    r(a,b). r(c,c). q(d,e,f).
    r(X,Y) -> q(Y,X,Z).
    q(X,Y,W) -> r(X,W).
    q(X,X,Y) -> r(Y,Y).
  )");
  auto dynamic = DynamicSimplification(*p.database, p.tgds);
  ASSERT_TRUE(dynamic.ok());
  auto static_result = StaticSimplification(*p.schema, p.tgds);
  ASSERT_TRUE(static_result.ok());
  auto dynamic_rules =
      CanonicalRules(dynamic->shape_schema->schema(), dynamic->tgds);
  auto static_rules = CanonicalRules(static_result->shape_schema->schema(), static_result->tgds);
  for (const std::string& rule : dynamic_rules) {
    EXPECT_TRUE(static_rules.count(rule)) << "missing: " << rule;
  }
  EXPECT_LE(dynamic_rules.size(), static_rules.size());
}

TEST(DynamicSimplificationTest, EmptyDatabaseYieldsEmptySet) {
  Program p = MustParse("r(X,Y) -> r(Y,Z).");
  auto dynamic = DynamicSimplification(*p.database, p.tgds);
  ASSERT_TRUE(dynamic.ok());
  EXPECT_TRUE(dynamic->tgds.empty());
  EXPECT_EQ(dynamic->num_initial_shapes, 0u);
}

TEST(DynamicSimplificationTest, RejectsNonLinear) {
  Program p = MustParse("r(X), s(X) -> t(X).");
  EXPECT_FALSE(DynamicSimplification(*p.database, p.tgds).ok());
}

TEST(DynamicSimplificationTest, ProcessesEachRuleShapePairOnce) {
  // Two rules over the same body predicate; three database shapes.
  Program p = MustParse(R"(
    r(a,b). r(c,c).
    r(X,Y) -> s(X,Y).
    r(X,Y) -> s(Y,X).
  )");
  auto dynamic = DynamicSimplification(*p.database, p.tgds);
  ASSERT_TRUE(dynamic.ok());
  // Each of the 2 rules applies to each of the 2 r-shapes: 4 simplified
  // TGDs. Under the merging shape r_[1,1] the two rules collapse to the same
  // simplification, so only 3 are distinct as a set.
  EXPECT_EQ(dynamic->tgds.size(), 4u);
  auto rules = CanonicalRules(dynamic->shape_schema->schema(), dynamic->tgds);
  EXPECT_EQ(rules.size(), 3u);
}

TEST(DynamicSimplificationTest, BothFinderModesAgree) {
  DataGenParams data_params;
  data_params.preds = 6;
  data_params.min_arity = 1;
  data_params.max_arity = 4;
  data_params.dsize = 100;
  data_params.rsize = 40;
  data_params.seed = 3;
  auto data = GenerateData(data_params);
  ASSERT_TRUE(data.ok());
  TgdGenParams tgd_params;
  tgd_params.ssize = 6;
  tgd_params.tsize = 30;
  tgd_params.tclass = TgdClass::kLinear;
  tgd_params.seed = 4;
  auto tgds = GenerateTgds(*data->schema, tgd_params);
  ASSERT_TRUE(tgds.ok());
  auto in_memory =
      DynamicSimplification(*data->database, tgds.value(),
                            storage::ShapeFinderMode::kInMemory);
  auto in_db = DynamicSimplification(*data->database, tgds.value(),
                                     storage::ShapeFinderMode::kInDatabase);
  ASSERT_TRUE(in_memory.ok());
  ASSERT_TRUE(in_db.ok());
  EXPECT_EQ(CanonicalRules(in_memory->shape_schema->schema(),
                           in_memory->tgds),
            CanonicalRules(in_db->shape_schema->schema(), in_db->tgds));
}

TEST(DynamicSimplificationTest, CanonicalTgdOrder) {
  // Regression pin for the canonical emission order documented on
  // DynamicSimplificationResult: depth-grouped (database shapes first),
  // body shape ascending in (pred, id) within a depth, rule index ascending
  // per shape, duplicates kept — identical for every thread count. The old
  // worklist emitted in nondeterministic-looking pop order instead.
  Program p = MustParse(R"(
    r(a,b). r(c,c).
    r(X,Y) -> s(X,Y).
    r(X,Y) -> s(Y,X).
    s(X,Y) -> t(X).
  )");
  const std::vector<std::string> expected = {
      // Depth 0: r_[1,1] (rules 0, 1), then r_[1,2] (rules 0, 1).
      "r_[1,1](X0) -> s_[1,1](X0).",
      "r_[1,1](X0) -> s_[1,1](X0).",
      "r_[1,2](X0,X1) -> s_[1,2](X0,X1).",
      "r_[1,2](X0,X1) -> s_[1,2](X1,X0).",
      // Depth 1: the derived s-shapes, ascending.
      "s_[1,1](X0) -> t_[1](X0).",
      "s_[1,2](X0,X1) -> t_[1](X0).",
  };
  for (unsigned threads : {1u, 4u}) {
    auto dynamic = DynamicSimplification(
        *p.database, p.tgds, storage::ShapeFinderMode::kInMemory, threads);
    ASSERT_TRUE(dynamic.ok()) << dynamic.status();
    std::vector<std::string> got;
    for (const Tgd& tgd : dynamic->tgds) {
      got.push_back(ToString(dynamic->shape_schema->schema(), tgd));
    }
    EXPECT_EQ(got, expected) << "threads " << threads;
    EXPECT_EQ(dynamic->num_initial_shapes, 2u);
    // r_[1,1], r_[1,2], s_[1,1], s_[1,2], t_[1].
    EXPECT_EQ(dynamic->num_derived_shapes, 5u);
    // Depth 2 expands t_[1], which matches no rule.
    EXPECT_EQ(dynamic->frontier.depths, 3u);
  }
}

TEST(DynamicSimplificationTest, OutputIsAlwaysSimpleLinear) {
  Program p = MustParse(R"(
    r(a,a,b).
    r(X,X,Y) -> r(Y,X,Z).
  )");
  auto dynamic = DynamicSimplification(*p.database, p.tgds);
  ASSERT_TRUE(dynamic.ok());
  for (const Tgd& tgd : dynamic->tgds) {
    EXPECT_TRUE(tgd.IsSimpleLinear());
  }
}

}  // namespace
}  // namespace chase
