#include <string>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "core/explain.h"
#include "core/is_chase_finite.h"
#include "gen/tgd_generator.h"
#include "logic/parser.h"

namespace chase {
namespace {

Program MustParse(const std::string& text) {
  auto program = ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status();
  return std::move(program).value();
}

// Validates the structural invariants of a witness against the input.
void CheckWitness(const Program& p, const NonTerminationWitness& witness) {
  ASSERT_FALSE(witness.cycle.empty());
  // The cycle closes.
  EXPECT_EQ(witness.cycle.front().from, witness.cycle.back().to);
  // Consecutive edges connect.
  for (size_t i = 0; i + 1 < witness.cycle.size(); ++i) {
    EXPECT_EQ(witness.cycle[i].to, witness.cycle[i + 1].from);
  }
  // At least one special edge.
  bool any_special = false;
  for (const WitnessEdge& edge : witness.cycle) any_special |= edge.special;
  EXPECT_TRUE(any_special);
  // Every edge is genuinely induced by its reported rule.
  auto check_edge = [&](const WitnessEdge& edge) {
    ASSERT_LT(edge.rule_index, p.tgds.size());
    const Tgd& tgd = p.tgds[edge.rule_index];
    const RuleAtom& body = tgd.body()[0];
    ASSERT_EQ(body.pred, edge.from.pred);
    const VarId x = body.args[edge.from.index];
    EXPECT_TRUE(tgd.InFrontier(x));
    bool induced = false;
    for (const RuleAtom& head : tgd.head()) {
      if (head.pred != edge.to.pred) continue;
      const VarId target = head.args[edge.to.index];
      induced |= edge.special ? tgd.IsExistential(target) : target == x;
    }
    EXPECT_TRUE(induced);
  };
  for (const WitnessEdge& edge : witness.cycle) check_edge(edge);
  for (const WitnessEdge& edge : witness.support_path) check_edge(edge);
  // The support path (or the cycle itself) starts at a non-empty relation.
  const Position start = witness.support_path.empty()
                             ? witness.cycle.front().from
                             : witness.support_path.front().from;
  EXPECT_FALSE(p.database->IsEmpty(start.pred));
  // The support path connects and ends on the cycle.
  if (!witness.support_path.empty()) {
    for (size_t i = 0; i + 1 < witness.support_path.size(); ++i) {
      EXPECT_EQ(witness.support_path[i].to,
                witness.support_path[i + 1].from);
    }
    bool lands_on_cycle = false;
    for (const WitnessEdge& edge : witness.cycle) {
      lands_on_cycle |= witness.support_path.back().to == edge.from;
    }
    EXPECT_TRUE(lands_on_cycle);
  }
}

TEST(ExplainTest, SelfLoopWitness) {
  Program p = MustParse("e(a, b).\ne(X, Y) -> e(Y, Z).");
  auto witness = ExplainNonTerminationSL(*p.database, p.tgds);
  ASSERT_TRUE(witness.ok()) << witness.status();
  CheckWitness(p, *witness);
  EXPECT_TRUE(witness->support_path.empty());  // e itself is non-empty
}

TEST(ExplainTest, SupportPathFromDistantRelation) {
  Program p = MustParse(R"(
    start(a).
    start(X) -> mid(X).
    mid(X) -> e(X, X).
    e(X, Y) -> e(Y, Z).
  )");
  auto witness = ExplainNonTerminationSL(*p.database, p.tgds);
  ASSERT_TRUE(witness.ok()) << witness.status();
  CheckWitness(p, *witness);
  EXPECT_FALSE(witness->support_path.empty());
  EXPECT_EQ(witness->support_path.front().from.pred,
            p.schema->FindPredicate("start").value());
}

TEST(ExplainTest, MultiRuleCycle) {
  Program p = MustParse(R"(
    a(c).
    a(X) -> b(X, Z).
    b(X, Y) -> a(Y).
  )");
  auto witness = ExplainNonTerminationSL(*p.database, p.tgds);
  ASSERT_TRUE(witness.ok()) << witness.status();
  CheckWitness(p, *witness);
  EXPECT_GE(witness->cycle.size(), 2u);
}

TEST(ExplainTest, FiniteChaseHasNothingToExplain) {
  Program p = MustParse("q(a).\ne(X, Y) -> e(Y, Z).");  // cycle unsupported
  auto witness = ExplainNonTerminationSL(*p.database, p.tgds);
  EXPECT_EQ(witness.status().code(), StatusCode::kFailedPrecondition);

  Program acyclic = MustParse("a(c).\na(X) -> b(X, Z).");
  witness = ExplainNonTerminationSL(*acyclic.database, acyclic.tgds);
  EXPECT_EQ(witness.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ExplainTest, NonSimpleLinearRejected) {
  Program p = MustParse("r(X, X) -> r(Z, X).");
  auto witness = ExplainNonTerminationSL(*p.database, p.tgds);
  EXPECT_EQ(witness.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExplainTest, FormatMentionsRulesAndSpecialEdges) {
  Program p = MustParse("e(a, b).\ne(X, Y) -> e(Y, Z).");
  auto witness = ExplainNonTerminationSL(*p.database, p.tgds);
  ASSERT_TRUE(witness.ok());
  const std::string text = FormatWitness(*p.schema, *witness, p.tgds);
  EXPECT_NE(text.find("cycle with a special edge"), std::string::npos);
  EXPECT_NE(text.find("--(exists)-->"), std::string::npos);
  EXPECT_NE(text.find("rule #0"), std::string::npos);
}

// Property: Explain succeeds exactly when IsChaseFinite[SL] says infinite,
// and its witness always validates.
class ExplainPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(ExplainPropertyTest, WitnessExistsIffChaseInfinite) {
  Rng rng(GetParam());
  int infinite = 0;
  for (int trial = 0; trial < 150; ++trial) {
    Program p;
    const uint32_t num_preds = 2 + static_cast<uint32_t>(rng.Below(4));
    for (uint32_t i = 0; i < num_preds; ++i) {
      ASSERT_TRUE(p.schema
                      ->AddPredicate("p" + std::to_string(i),
                                     1 + static_cast<uint32_t>(rng.Below(3)))
                      .ok());
    }
    TgdGenParams params;
    params.ssize = num_preds;
    params.min_arity = 1;
    params.max_arity = 3;
    params.tsize = 1 + rng.Below(5);
    params.tclass = TgdClass::kSimpleLinear;
    params.existential_percent = 30;
    params.seed = rng.Next();
    auto tgds = GenerateTgds(*p.schema, params);
    ASSERT_TRUE(tgds.ok());
    p.tgds = std::move(tgds).value();
    // Populate a random subset of predicates.
    p.database->EnsureAnonymousDomain(4);
    for (PredId pred = 0; pred < num_preds; ++pred) {
      if (rng.Below(2) == 0) continue;
      std::vector<uint32_t> tuple(p.schema->Arity(pred));
      for (uint32_t i = 0; i < tuple.size(); ++i) tuple[i] = i;
      ASSERT_TRUE(p.database->AddFact(pred, tuple).ok());
    }

    auto finite = IsChaseFiniteSL(*p.database, p.tgds);
    ASSERT_TRUE(finite.ok());
    auto witness = ExplainNonTerminationSL(*p.database, p.tgds);
    if (finite.value()) {
      EXPECT_EQ(witness.status().code(), StatusCode::kFailedPrecondition);
    } else {
      ++infinite;
      ASSERT_TRUE(witness.ok()) << witness.status();
      CheckWitness(p, *witness);
    }
  }
  EXPECT_GT(infinite, 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExplainPropertyTest,
                         testing::Values(91, 92, 93, 94));

}  // namespace
}  // namespace chase
