// End-to-end integration across the extension modules: a workload flows
// generator → binary snapshot → disk store → incremental shape index →
// termination check (index-fed) → chase materialization → query answering →
// rewriting, with every stage's output validated against an independent
// path.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "acyclicity/joint_acyclicity.h"
#include "acyclicity/uniform.h"
#include "chase/chase_engine.h"
#include "core/explain.h"
#include "core/is_chase_finite.h"
#include "core/normalize.h"
#include "gen/data_generator.h"
#include "gen/tgd_generator.h"
#include "io/binary_io.h"
#include "logic/parser.h"
#include "pager/disk_database.h"
#include "pager/disk_shape_finder.h"
#include "query/conjunctive_query.h"
#include "query/rewriting.h"
#include "storage/catalog.h"
#include "storage/shape_finder.h"
#include "storage/shape_index.h"

namespace chase {
namespace {

TEST(ExtensionIntegrationTest, GeneratedWorkloadFullPipeline) {
  // 1. Generate a workload.
  DataGenParams data_params;
  data_params.preds = 8;
  data_params.min_arity = 1;
  data_params.max_arity = 4;
  data_params.dsize = 500;
  data_params.rsize = 300;
  data_params.seed = 4242;
  auto data = GenerateData(data_params);
  ASSERT_TRUE(data.ok());
  TgdGenParams tgd_params;
  tgd_params.ssize = 8;
  tgd_params.min_arity = 1;
  tgd_params.max_arity = 4;
  tgd_params.tsize = 30;
  tgd_params.tclass = TgdClass::kLinear;
  tgd_params.seed = 4243;
  auto tgds = GenerateTgds(*data->schema, tgd_params);
  ASSERT_TRUE(tgds.ok());

  // 2. Snapshot to the binary format and load back.
  const std::string snapshot = testing::TempDir() + "/integration.chbin";
  ASSERT_TRUE(io::SaveProgram(*data->schema, *data->database, tgds.value(),
                              snapshot)
                  .ok());
  auto loaded = io::LoadProgram(snapshot);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->tgds.size(), tgds->size());
  EXPECT_EQ(loaded->database->TotalFacts(), data->database->TotalFacts());

  // 3. Persist to the disk store; its shape scan matches the row store's.
  const std::string store_path = testing::TempDir() + "/integration.db";
  auto store = pager::DiskDatabase::Create(store_path, *loaded->database);
  ASSERT_TRUE(store.ok());
  auto disk_shapes = pager::FindShapesOnDiskScan(**store);
  ASSERT_TRUE(disk_shapes.ok());
  storage::Catalog catalog(loaded->database.get());
  EXPECT_EQ(*disk_shapes, storage::FindShapesInMemory(catalog));

  // 4. Index-fed termination check agrees with both scanning modes.
  storage::ShapeIndex index = storage::ShapeIndex::Build(*loaded->database);
  std::vector<Shape> shapes = index.CurrentShapes();
  EXPECT_EQ(shapes, *disk_shapes);
  LCheckOptions indexed;
  indexed.precomputed_shapes = &shapes;
  auto verdict_indexed =
      IsChaseFiniteL(*loaded->database, loaded->tgds, indexed);
  ASSERT_TRUE(verdict_indexed.ok());
  LCheckOptions in_db;
  in_db.shape_finder = storage::ShapeFinderMode::kInDatabase;
  auto verdict_db = IsChaseFiniteL(*loaded->database, loaded->tgds, in_db);
  ASSERT_TRUE(verdict_db.ok());
  EXPECT_EQ(verdict_indexed.value(), verdict_db.value());

  // 5. The verdict is confirmed by the bounded chase.
  ChaseOptions chase_options;
  chase_options.max_atoms = 500'000;
  auto chased = RunChase(*loaded->database, loaded->tgds, chase_options);
  ASSERT_TRUE(chased.ok());
  EXPECT_EQ(verdict_indexed.value(),
            chased->outcome == ChaseOutcome::kFixpoint);

  // 6. Uniform checks are sound w.r.t. the per-database verdict.
  auto uniform = acyclicity::IsChaseFiniteUniform(*loaded->schema,
                                                  loaded->tgds);
  ASSERT_TRUE(uniform.ok());
  if (uniform.value()) EXPECT_TRUE(verdict_indexed.value());
  if (acyclicity::IsJointlyAcyclic(*loaded->schema, loaded->tgds)) {
    EXPECT_TRUE(uniform.value());
  }

  std::remove(snapshot.c_str());
  std::remove(store_path.c_str());
}

TEST(ExtensionIntegrationTest, OntologyQueryAnsweringBothRoutes) {
  // A DL-Lite-style ontology answered by materialization AND rewriting;
  // both routes agree, and the explain/normalize tooling composes.
  auto program = ParseProgram(R"(
    person(ada). person(alan).
    advises(ada, alan).
    advises(X, Y) -> person(X).
    advises(X, Y) -> person(Y).
    person(X) -> memberOf(X, D).
    memberOf(X, D) -> dept(D).
  )");
  ASSERT_TRUE(program.ok());
  Schema* schema = program->schema.get();

  auto cq = query::ParseQuery("q(X) :- person(X), memberOf(X, D).", schema);
  ASSERT_TRUE(cq.ok());

  auto materialized =
      query::CertainAnswers(*program->database, program->tgds, *cq);
  ASSERT_TRUE(materialized.ok()) << materialized.status();

  auto rewriting = query::RewriteUnderTgds(*cq, program->tgds);
  ASSERT_TRUE(rewriting.ok()) << rewriting.status();
  EXPECT_EQ(rewriting->Evaluate(*program->database),
            materialized->answers);
  EXPECT_EQ(materialized->answers.size(), 2u);  // ada, alan

  // The ontology terminates, so there is nothing to explain...
  auto witness =
      ExplainNonTerminationSL(*program->database, program->tgds);
  EXPECT_EQ(witness.status().code(), StatusCode::kFailedPrecondition);

  // ...until a cyclic axiom is added; then the witness pinpoints it.
  auto extended = ParseTgd("dept(D) -> headedBy(D, H), person(H).", schema);
  ASSERT_TRUE(extended.ok());
  std::vector<Tgd> cyclic = program->tgds;
  cyclic.push_back(std::move(extended).value());
  auto finite = IsChaseFiniteSL(*program->database, cyclic);
  ASSERT_TRUE(finite.ok());
  ASSERT_FALSE(finite.value());
  witness = ExplainNonTerminationSL(*program->database, cyclic);
  ASSERT_TRUE(witness.ok()) << witness.status();
  bool mentions_new_rule = false;
  for (const WitnessEdge& edge : witness->cycle) {
    mentions_new_rule |= edge.rule_index == cyclic.size() - 1;
  }
  EXPECT_TRUE(mentions_new_rule);
}

}  // namespace
}  // namespace chase
