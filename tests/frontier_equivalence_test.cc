// Differential harness for the frontier-parallel engines: "parallel must
// equal serial" is the whole correctness contract of the depth-synchronous
// FrontierPool, so every consumer is swept against its serial oracle on
// seeded random workloads —
//
//  * the EXISTS shape plan: {1, 2, 4, 8} threads x {memory, disk, index}
//    backends must return the bit-identical sorted shape(D) the serial
//    per-predicate lattice walk returns;
//  * dynamic simplification: every thread count must emit the bit-identical
//    canonical simplified-TGD list (same TGDs, same order, same interned
//    shape-schema predicates) and the same initial/derived shape counts;
//  * the chase engine's frontier-parallel trigger enumeration: instance,
//    null numbering, rounds, and trigger counts must match the serial run —
//    for linear rules and for every non-linear join family (triangle, star,
//    chain, cross-product), across the thread sweep and homomorphism
//    budgets down to 1, with the budgeted protocol's peak-buffer bound
//    (threads × hom_budget) asserted on every run.
//
// Plus the EXISTS-probe edge cases the frontier split exposes: empty
// relations, arity-1 predicates (trivial lattices), duplicate database
// shapes in the seed frontier, and more threads than frontier items.
//
// The checkpoint/restart protocol rides the same contract: a chase
// checkpointed at ANY round boundary and resumed must replay the
// uninterrupted run bit-for-bit — instance bytes, null ids, rounds,
// trigger counts, and the checkpoint file bytes themselves — at any
// thread count, for all three variants, with and without index
// write-through. The sweep at the bottom cuts at every round.
//
// Runs in both the normal and the ThreadSanitizer CI jobs, and standalone
// via `ctest -L frontier` (the resume sweep also under `-L checkpoint`).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <numeric>
#include <optional>
#include <string>
#include <vector>

#include "base/rng.h"
#include "chase/chase_engine.h"
#include "core/dynamic_simplification.h"
#include "gen/data_generator.h"
#include "gen/tgd_generator.h"
#include "index/find_shapes.h"
#include "index/sharded_shape_index.h"
#include "io/binary_io.h"
#include "logic/parser.h"
#include "pager/disk_database.h"
#include "pager/disk_shape_source.h"
#include "storage/catalog.h"
#include "storage/shape_finder.h"
#include "storage/shape_source.h"

namespace chase {
namespace {

using storage::ShapeFinderMode;

constexpr unsigned kThreadSweep[] = {1, 2, 4, 8};

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

GeneratedData MakeRandomData(Rng* rng) {
  DataGenParams params;
  params.preds = 1 + static_cast<uint32_t>(rng->Below(6));
  params.min_arity = 1;
  params.max_arity = 1 + static_cast<uint32_t>(rng->Below(6));
  // Small domains force repeated constants, so coarse shapes actually occur
  // (64 is the generator's minimum).
  params.dsize = 64 + rng->Below(150);
  params.rsize = rng->Below(600);
  params.seed = rng->Next();
  auto data = GenerateData(params);
  EXPECT_TRUE(data.ok()) << data.status();
  return std::move(data).value();
}

std::vector<Tgd> MakeLinearTgds(const Schema& schema, uint64_t seed,
                                uint64_t count) {
  TgdGenParams params;
  params.ssize = schema.NumPredicates();
  params.min_arity = 1;
  params.max_arity = 8;
  params.tsize = count;
  params.tclass = TgdClass::kLinear;
  params.seed = seed;
  auto tgds = GenerateTgds(schema, params);
  EXPECT_TRUE(tgds.ok()) << tgds.status();
  return std::move(tgds).value();
}

// Bit-identical simplification results: same TGD list (contents and order),
// same interning sequence in the shape schema, same counters.
void ExpectIdenticalSimplification(const DynamicSimplificationResult& a,
                                   const DynamicSimplificationResult& b,
                                   const std::string& label) {
  EXPECT_EQ(a.tgds, b.tgds) << label;
  EXPECT_EQ(a.num_initial_shapes, b.num_initial_shapes) << label;
  EXPECT_EQ(a.num_derived_shapes, b.num_derived_shapes) << label;
  ASSERT_EQ(a.shape_schema->NumShapes(), b.shape_schema->NumShapes())
      << label;
  for (PredId pred = 0; pred < a.shape_schema->NumShapes(); ++pred) {
    EXPECT_EQ(a.shape_schema->ShapeOf(pred), b.shape_schema->ShapeOf(pred))
        << label << ", interned pred " << pred;
  }
}

TEST(FrontierEquivalenceTest, ExistsPlanMatchesSerialOracle) {
  Rng rng(20260729);
  for (int trial = 0; trial < 8; ++trial) {
    GeneratedData data = MakeRandomData(&rng);
    storage::Catalog catalog(data.database.get());
    storage::MemoryShapeSource memory(&catalog);
    // The serial oracle: the reference per-predicate lattice walk.
    auto oracle = index::FindShapes(memory, {ShapeFinderMode::kExists, 1});
    ASSERT_TRUE(oracle.ok()) << oracle.status();

    const std::string path =
        TempPath("chase_frontier_equiv_" + std::to_string(trial) + ".db");
    auto disk_db = pager::DiskDatabase::Create(path, *data.database,
                                               /*num_frames=*/16);
    ASSERT_TRUE(disk_db.ok()) << disk_db.status();
    pager::DiskShapeSource disk(disk_db->get());

    for (const storage::ShapeSource* source :
         {static_cast<const storage::ShapeSource*>(&memory),
          static_cast<const storage::ShapeSource*>(&disk)}) {
      for (ShapeFinderMode mode :
           {ShapeFinderMode::kExists, ShapeFinderMode::kIndex}) {
        for (unsigned threads : kThreadSweep) {
          FrontierStats stats;
          storage::FindShapesOptions options{mode, threads};
          options.frontier_stats = &stats;
          auto shapes = index::FindShapes(*source, options);
          ASSERT_TRUE(shapes.ok()) << shapes.status();
          EXPECT_EQ(*shapes, *oracle)
              << "trial " << trial << ", backend " << source->Name()
              << ", mode " << storage::ShapeFinderModeName(mode)
              << ", threads " << threads;
          if (mode == ShapeFinderMode::kExists && threads > 1) {
            // The frontier engine ran: its counters must reconcile.
            EXPECT_EQ(stats.worker_expanded.size(), threads);
            EXPECT_EQ(std::accumulate(stats.worker_expanded.begin(),
                                      stats.worker_expanded.end(),
                                      uint64_t{0}),
                      stats.items_expanded);
            EXPECT_EQ(stats.items_expanded,
                      stats.seeds_admitted + stats.items_discovered);
          }
        }
      }
    }
    std::remove(path.c_str());
  }
}

TEST(FrontierEquivalenceTest, DynamicSimplificationMatchesSerialOracle) {
  Rng rng(424243);
  for (int trial = 0; trial < 6; ++trial) {
    GeneratedData data = MakeRandomData(&rng);
    std::vector<Tgd> tgds =
        MakeLinearTgds(*data.schema, rng.Next(), 20 + rng.Below(40));
    storage::Catalog catalog(data.database.get());
    storage::MemoryShapeSource memory(&catalog);

    const std::string path = TempPath("chase_frontier_equiv_simp_" +
                                      std::to_string(trial) + ".db");
    auto disk_db = pager::DiskDatabase::Create(path, *data.database,
                                               /*num_frames=*/16);
    ASSERT_TRUE(disk_db.ok()) << disk_db.status();
    pager::DiskShapeSource disk(disk_db->get());

    // The serial oracle: serial shape finding + inline worklist.
    auto oracle_shapes = index::FindShapes(memory, {ShapeFinderMode::kExists, 1});
    ASSERT_TRUE(oracle_shapes.ok()) << oracle_shapes.status();
    auto oracle = DynamicSimplificationFromShapes(*data.schema, tgds,
                                                  *oracle_shapes, 1);
    ASSERT_TRUE(oracle.ok()) << oracle.status();

    for (const storage::ShapeSource* source :
         {static_cast<const storage::ShapeSource*>(&memory),
          static_cast<const storage::ShapeSource*>(&disk)}) {
      for (ShapeFinderMode mode :
           {ShapeFinderMode::kExists, ShapeFinderMode::kIndex}) {
        for (unsigned threads : kThreadSweep) {
          auto shapes = index::FindShapes(*source, {mode, threads});
          ASSERT_TRUE(shapes.ok()) << shapes.status();
          auto parallel = DynamicSimplificationFromShapes(*data.schema, tgds,
                                                          *shapes, threads);
          ASSERT_TRUE(parallel.ok()) << parallel.status();
          ExpectIdenticalSimplification(
              *oracle, *parallel,
              "trial " + std::to_string(trial) + ", backend " +
                  source->Name() + ", mode " +
                  storage::ShapeFinderModeName(mode) + ", threads " +
                  std::to_string(threads));
        }
      }
    }
    std::remove(path.c_str());
  }
}

TEST(FrontierEquivalenceTest, ParallelChaseEnumerationMatchesSerial) {
  Rng rng(777);
  for (int trial = 0; trial < 4; ++trial) {
    DataGenParams data_params;
    data_params.preds = 5;
    data_params.min_arity = 1;
    data_params.max_arity = 3;
    data_params.dsize = 64;
    data_params.rsize = 20;
    data_params.seed = rng.Next();
    auto data = GenerateData(data_params);
    ASSERT_TRUE(data.ok()) << data.status();
    std::vector<Tgd> tgds = MakeLinearTgds(*data->schema, rng.Next(), 12);

    for (ChaseVariant variant :
         {ChaseVariant::kSemiOblivious, ChaseVariant::kOblivious,
          ChaseVariant::kRestricted}) {
      ChaseOptions serial_options;
      serial_options.variant = variant;
      serial_options.max_atoms = 20'000;
      auto serial = RunChase(*data->database, tgds, serial_options);
      ASSERT_TRUE(serial.ok()) << serial.status();

      // The serial run never pre-filters (it checks and skips on the
      // serial path itself).
      EXPECT_EQ(serial->triggers_prefiltered, 0u);

      for (unsigned threads : kThreadSweep) {
        ChaseOptions parallel_options = serial_options;
        parallel_options.frontier_threads = threads;
        auto parallel = RunChase(*data->database, tgds, parallel_options);
        ASSERT_TRUE(parallel.ok()) << parallel.status();
        const std::string label =
            "trial " + std::to_string(trial) + ", variant " +
            ChaseVariantName(variant) + ", threads " +
            std::to_string(threads);
        EXPECT_EQ(parallel->outcome, serial->outcome) << label;
        EXPECT_EQ(parallel->rounds, serial->rounds) << label;
        EXPECT_EQ(parallel->triggers_fired, serial->triggers_fired) << label;
        // Bit-identical instances, null names included: collect in
        // insertion order.
        std::vector<GroundAtom> serial_atoms, parallel_atoms;
        serial->instance.ForEachAtom(
            [&](const GroundAtom& atom) { serial_atoms.push_back(atom); });
        parallel->instance.ForEachAtom(
            [&](const GroundAtom& atom) { parallel_atoms.push_back(atom); });
        EXPECT_EQ(parallel_atoms, serial_atoms) << label;
      }
    }
  }
}

TEST(FrontierEquivalenceTest, ParallelNonLinearChaseMatchesSerial) {
  // The non-linear sweep: every join family the body partitioner has to
  // split differently — triangle (cyclic join), star (one hot hub row
  // fanning out, the join-split case), chain (role composition), cross
  // (disconnected body, the pure cross-product that makes unbudgeted
  // buffering explode) — under all three variants, the full thread sweep,
  // and budgets down to 1 (every epoch moves each fragment by one
  // homomorphism, the maximal pause/resume stress). The contract is the
  // serial one bit-for-bit: outcome, rounds, trigger counts, null ids, and
  // the instance's insertion order. existential_percent > 0 puts
  // existential variables in multi-atom heads, so the restricted variant's
  // suffix re-check runs against real joins.
  Rng rng(20260808);
  const NonLinearFamily kFamilies[] = {
      NonLinearFamily::kTriangle, NonLinearFamily::kStar,
      NonLinearFamily::kChain, NonLinearFamily::kCross};
  for (NonLinearFamily family : kFamilies) {
    DataGenParams data_params;
    data_params.preds = 4;
    data_params.min_arity = 2;
    data_params.max_arity = 3;
    data_params.dsize = 64;
    data_params.rsize = 12;
    data_params.seed = rng.Next();
    auto data = GenerateData(data_params);
    ASSERT_TRUE(data.ok()) << data.status();

    NonLinearGenParams tgd_params;
    tgd_params.ssize = data->schema->NumPredicates();
    tgd_params.min_arity = 2;
    tgd_params.max_arity = 3;
    tgd_params.tsize = 5;
    tgd_params.family = family;
    tgd_params.body_atoms = family == NonLinearFamily::kTriangle ? 3 : 2;
    tgd_params.existential_percent = 25;
    tgd_params.seed = rng.Next();
    auto tgds = GenerateNonLinearTgds(*data->schema, tgd_params);
    ASSERT_TRUE(tgds.ok()) << tgds.status();

    for (ChaseVariant variant :
         {ChaseVariant::kSemiOblivious, ChaseVariant::kOblivious,
          ChaseVariant::kRestricted}) {
      ChaseOptions serial_options;
      serial_options.variant = variant;
      // Low enough that the oblivious variants hit the atom limit on the
      // fan-out families: the limit cut itself must land identically.
      serial_options.max_atoms = 1'500;
      auto serial = RunChase(*data->database, *tgds, serial_options);
      ASSERT_TRUE(serial.ok()) << serial.status();
      EXPECT_EQ(serial->peak_buffered_homs, 0u);  // serial never buffers

      std::vector<GroundAtom> serial_atoms;
      serial->instance.ForEachAtom(
          [&](const GroundAtom& atom) { serial_atoms.push_back(atom); });

      for (unsigned threads : kThreadSweep) {
        for (uint64_t budget : {uint64_t{1}, uint64_t{7}, uint64_t{4096}}) {
          ChaseOptions parallel_options = serial_options;
          parallel_options.frontier_threads = threads;
          parallel_options.hom_budget = budget;
          auto parallel = RunChase(*data->database, *tgds, parallel_options);
          ASSERT_TRUE(parallel.ok()) << parallel.status();
          const std::string label =
              std::string("family ") + NonLinearFamilyName(family) +
              ", variant " + ChaseVariantName(variant) + ", threads " +
              std::to_string(threads) + ", budget " + std::to_string(budget);
          EXPECT_EQ(parallel->outcome, serial->outcome) << label;
          EXPECT_EQ(parallel->rounds, serial->rounds) << label;
          EXPECT_EQ(parallel->triggers_fired, serial->triggers_fired)
              << label;
          // The protocol's memory bound, measured at the epoch barriers.
          EXPECT_LE(parallel->peak_buffered_homs,
                    uint64_t{threads} * budget)
              << label;
          if (threads > 1 && serial->triggers_fired > 0) {
            EXPECT_GT(parallel->peak_buffered_homs, 0u) << label;
          }
          std::vector<GroundAtom> parallel_atoms;
          parallel->instance.ForEachAtom([&](const GroundAtom& atom) {
            parallel_atoms.push_back(atom);
          });
          EXPECT_EQ(parallel_atoms, serial_atoms) << label;
        }
      }
    }
  }
}

TEST(FrontierEquivalenceTest, RestrictedPrefilterSkipsSatisfiedTriggers) {
  // A workload built so the restricted chase's satisfaction check matters:
  // the e-cycle rule is satisfied for every trigger (e(Y,Z) always has a
  // witness on a cycle), the f rule only for X=a. The parallel pre-filter
  // must skip exactly the triggers whose witness existed at round start —
  // here all four satisfied ones, a deterministic count because the
  // pre-filter reads only the frozen round-start prefix — while firing
  // decisions, null ids, and the instance stay bit-identical to serial.
  auto program = ParseProgram(R"(
    e(a,b). e(b,c). e(c,a). f(a).
    e(X,Y) -> e(Y,Z).
    e(X,Y) -> f(X).
  )");
  ASSERT_TRUE(program.ok()) << program.status();

  ChaseOptions serial_options;
  serial_options.variant = ChaseVariant::kRestricted;
  auto serial = RunChase(*program->database, program->tgds, serial_options);
  ASSERT_TRUE(serial.ok()) << serial.status();
  EXPECT_EQ(serial->outcome, ChaseOutcome::kFixpoint);
  EXPECT_EQ(serial->triggers_fired, 2u);  // f(b), f(c)
  EXPECT_EQ(serial->triggers_prefiltered, 0u);

  for (unsigned threads : {2u, 4u, 8u}) {
    ChaseOptions options = serial_options;
    options.frontier_threads = threads;
    auto parallel = RunChase(*program->database, program->tgds, options);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    EXPECT_EQ(parallel->outcome, serial->outcome) << threads;
    EXPECT_EQ(parallel->rounds, serial->rounds) << threads;
    EXPECT_EQ(parallel->triggers_fired, 2u) << threads;
    // 3 satisfied e-cycle triggers + the f(a) trigger, decided on the pool.
    EXPECT_EQ(parallel->triggers_prefiltered, 4u) << threads;
    std::vector<GroundAtom> serial_atoms, parallel_atoms;
    serial->instance.ForEachAtom(
        [&](const GroundAtom& atom) { serial_atoms.push_back(atom); });
    parallel->instance.ForEachAtom(
        [&](const GroundAtom& atom) { parallel_atoms.push_back(atom); });
    EXPECT_EQ(parallel_atoms, serial_atoms) << threads;
  }
}

TEST(FrontierEquivalenceTest, ParallelAbsorbMatchesSerialAbsorbSweep) {
  // The exists plan's opt-in parallel absorb must never change shape(D):
  // sweep both absorb modes against the serial-walk oracle.
  Rng rng(515151);
  for (int trial = 0; trial < 4; ++trial) {
    GeneratedData data = MakeRandomData(&rng);
    storage::Catalog catalog(data.database.get());
    storage::MemoryShapeSource memory(&catalog);
    auto oracle = index::FindShapes(memory, {ShapeFinderMode::kExists, 1});
    ASSERT_TRUE(oracle.ok()) << oracle.status();
    for (bool parallel_absorb : {false, true}) {
      for (unsigned threads : kThreadSweep) {
        storage::FindShapesOptions options{ShapeFinderMode::kExists,
                                           threads};
        options.parallel_absorb = parallel_absorb;
        auto shapes = index::FindShapes(memory, options);
        ASSERT_TRUE(shapes.ok()) << shapes.status();
        EXPECT_EQ(*shapes, *oracle)
            << "trial " << trial << ", absorb "
            << (parallel_absorb ? "parallel" : "serial") << ", threads "
            << threads;
      }
    }
  }
}

// --------------------------------------------------------------------------
// EXISTS-probe edge cases the frontier split exposes.

TEST(FrontierEquivalenceTest, EmptyRelationsNeverEnterTheFrontier) {
  // Two populated relations, one empty: the seed frontier must only hold
  // the non-empty ones (the catalog query filters), and the parallel plans
  // must agree with the serial oracle.
  auto program = ParseProgram("r(a,b). r(c,c). s(a). t(X,Y) -> r(X,Y).");
  ASSERT_TRUE(program.ok()) << program.status();
  storage::Catalog catalog(program->database.get());
  storage::MemoryShapeSource memory(&catalog);
  auto oracle = index::FindShapes(memory, {ShapeFinderMode::kExists, 1});
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  for (unsigned threads : kThreadSweep) {
    FrontierStats stats;
    storage::FindShapesOptions options{ShapeFinderMode::kExists, threads};
    options.frontier_stats = &stats;
    auto shapes = index::FindShapes(memory, options);
    ASSERT_TRUE(shapes.ok()) << shapes.status();
    EXPECT_EQ(*shapes, *oracle) << "threads " << threads;
    if (threads > 1) {
      EXPECT_EQ(stats.seeds_admitted, 2u);  // r and s; t is empty
    }
  }
}

TEST(FrontierEquivalenceTest, ArityOnePredicatesHaveTrivialLattices) {
  // An arity-1 lattice is a single node: one relaxed + one full probe, no
  // children, and the walk must terminate at depth 1.
  auto program = ParseProgram("p(a). p(b). q(c).");
  ASSERT_TRUE(program.ok()) << program.status();
  storage::Catalog catalog(program->database.get());
  storage::MemoryShapeSource memory(&catalog);
  auto oracle = index::FindShapes(memory, {ShapeFinderMode::kExists, 1});
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  ASSERT_EQ(oracle->size(), 2u);
  for (unsigned threads : {2u, 8u}) {
    FrontierStats stats;
    storage::FindShapesOptions options{ShapeFinderMode::kExists, threads};
    options.frontier_stats = &stats;
    auto shapes = index::FindShapes(memory, options);
    ASSERT_TRUE(shapes.ok()) << shapes.status();
    EXPECT_EQ(*shapes, *oracle);
    EXPECT_EQ(stats.depths, 1u);
    EXPECT_EQ(stats.items_expanded, 2u);
    EXPECT_EQ(stats.items_discovered, 0u);
  }
}

TEST(FrontierEquivalenceTest, DuplicateSeedShapesAreDeduplicated) {
  auto program = ParseProgram(R"(
    r(a,b). r(c,c).
    r(X,Y) -> s(X,Y).
    s(X,Y) -> r(Y,X).
  )");
  ASSERT_TRUE(program.ok()) << program.status();
  storage::Catalog catalog(program->database.get());
  storage::MemoryShapeSource memory(&catalog);
  auto shapes = index::FindShapes(memory, {ShapeFinderMode::kScan, 1});
  ASSERT_TRUE(shapes.ok()) << shapes.status();

  // Seed the worklist with every database shape three times over: the seen
  // filter must admit each exactly once, for any thread count.
  std::vector<Shape> duplicated;
  for (int copy = 0; copy < 3; ++copy) {
    duplicated.insert(duplicated.end(), shapes->begin(), shapes->end());
  }
  auto oracle = DynamicSimplificationFromShapes(
      *program->schema, program->tgds, *shapes, 1);
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  for (unsigned threads : kThreadSweep) {
    auto result = DynamicSimplificationFromShapes(
        *program->schema, program->tgds, duplicated, threads);
    ASSERT_TRUE(result.ok()) << result.status();
    ExpectIdenticalSimplification(
        *oracle, *result, "duplicated seeds, threads " +
                              std::to_string(threads));
    EXPECT_EQ(result->num_initial_shapes, shapes->size());
  }
}

TEST(FrontierEquivalenceTest, MoreThreadsThanFrontierItems) {
  // One arity-2 predicate: the seed frontier is a single item, far fewer
  // than the workers. The pool must neither deadlock nor miss work, and
  // every thread count must agree.
  auto program = ParseProgram("r(a,b). r(a,a).");
  ASSERT_TRUE(program.ok()) << program.status();
  storage::Catalog catalog(program->database.get());
  storage::MemoryShapeSource memory(&catalog);
  auto oracle = index::FindShapes(memory, {ShapeFinderMode::kExists, 1});
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  ASSERT_EQ(oracle->size(), 2u);  // r_[1,2] and r_[1,1]
  FrontierStats stats;
  storage::FindShapesOptions options{ShapeFinderMode::kExists, 16};
  options.frontier_stats = &stats;
  auto shapes = index::FindShapes(memory, options);
  ASSERT_TRUE(shapes.ok()) << shapes.status();
  EXPECT_EQ(*shapes, *oracle);
  EXPECT_EQ(stats.worker_expanded.size(), 16u);
  EXPECT_EQ(stats.seeds_admitted, 1u);
  EXPECT_EQ(stats.items_expanded, 2u);  // [1,2] then its child [1,1]
  EXPECT_EQ(stats.depths, 2u);
}

// --------------------------------------------------------------------------
// Checkpoint/resume differential sweep: cut at every round boundary, resume,
// and demand the uninterrupted run bit-for-bit — across the thread sweep,
// all three variants, and both maintenance modes (plain memory instance,
// index write-through).

TEST(FrontierEquivalenceTest, CheckpointResumeSweepMatchesUninterruptedRun) {
  // Non-terminating under every variant: the successor rule always finds a
  // fresh null to extend (restricted included), and the transitive-closure
  // join keeps the multi-atom-body machinery engaged.
  auto program = ParseProgram(R"(
    e(a, b). e(b, c). f(a).
    e(X, Y) -> e(Y, Z).
    e(X, Y), e(Y, Z) -> e(X, Z).
    e(X, Y) -> f(X).
  )");
  ASSERT_TRUE(program.ok()) << program.status();
  constexpr uint64_t kRounds = 6;
  const std::string ck_path = TempPath("chase_frontier_equiv_resume.chck");

  for (ChaseVariant variant :
       {ChaseVariant::kOblivious, ChaseVariant::kSemiOblivious,
        ChaseVariant::kRestricted}) {
    // The uninterrupted oracle: serial, no index.
    ChaseOptions oracle_options;
    oracle_options.variant = variant;
    oracle_options.max_rounds = kRounds;
    auto oracle = RunChase(*program->database, program->tgds, oracle_options);
    ASSERT_TRUE(oracle.ok()) << oracle.status();
    ASSERT_EQ(oracle->outcome, ChaseOutcome::kRoundLimit);
    std::vector<GroundAtom> oracle_atoms;
    oracle->instance.ForEachAtom(
        [&](const GroundAtom& atom) { oracle_atoms.push_back(atom); });

    // The index write-through oracle: the shapes a straight run leaves.
    index::ShardedShapeIndex oracle_index =
        index::ShardedShapeIndex::Build(*program->database, /*shards=*/4);
    ChaseOptions oracle_index_options = oracle_options;
    oracle_index_options.shape_index = &oracle_index;
    ASSERT_TRUE(
        RunChase(*program->database, program->tgds, oracle_index_options)
            .ok());
    const std::vector<Shape> oracle_shapes = oracle_index.CurrentShapes();

    for (uint64_t cut = 1; cut < kRounds; ++cut) {
      // Canonical checkpoints: at a fixed thread count the file bytes are
      // identical whatever the backend; across thread counts every state
      // field matches and only the two per-thread-count diagnostic
      // counters may differ.
      std::optional<io::ChaseCheckpoint> canonical_state;
      std::vector<uint8_t> canonical_bytes;
      for (unsigned threads : {1u, 2u, 4u}) {
        canonical_bytes.clear();
        for (bool write_through : {false, true}) {
          const std::string label =
              std::string("variant ") + ChaseVariantName(variant) +
              ", cut " + std::to_string(cut) + ", threads " +
              std::to_string(threads) +
              (write_through ? ", index" : ", memory");

          ChaseOptions leg1_options;
          leg1_options.variant = variant;
          leg1_options.max_rounds = cut;
          leg1_options.frontier_threads = threads;
          leg1_options.checkpoint_path = ck_path;
          leg1_options.checkpoint_every_rounds = cut;
          index::ShardedShapeIndex leg1_index(4);
          if (write_through) {
            leg1_index = index::ShardedShapeIndex::Build(*program->database,
                                                         /*shards=*/4);
            leg1_options.shape_index = &leg1_index;
          }
          auto leg1 =
              RunChase(*program->database, program->tgds, leg1_options);
          ASSERT_TRUE(leg1.ok()) << label << ": " << leg1.status();
          ASSERT_EQ(leg1->outcome, ChaseOutcome::kRoundLimit) << label;

          std::ifstream in(ck_path, std::ios::binary);
          ASSERT_TRUE(in.good()) << label;
          std::vector<uint8_t> bytes(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>{});
          in.close();
          if (canonical_bytes.empty()) {
            canonical_bytes = bytes;
          } else {
            EXPECT_EQ(bytes, canonical_bytes) << label;
          }
          auto ckpt = io::DeserializeChaseCheckpoint(bytes);
          ASSERT_TRUE(ckpt.ok()) << label << ": " << ckpt.status();
          EXPECT_EQ(ckpt->rounds, cut) << label;
          if (!canonical_state.has_value()) {
            canonical_state = *ckpt;
          } else {
            EXPECT_EQ(ckpt->triggers_fired, canonical_state->triggers_fired)
                << label;
            EXPECT_EQ(ckpt->next_null, canonical_state->next_null) << label;
            EXPECT_EQ(ckpt->fired_keys, canonical_state->fired_keys)
                << label;
            ASSERT_EQ(ckpt->relations.size(),
                      canonical_state->relations.size())
                << label;
            for (size_t i = 0; i < ckpt->relations.size(); ++i) {
              EXPECT_EQ(ckpt->relations[i].atoms,
                        canonical_state->relations[i].atoms)
                  << label << ", relation " << i;
            }
          }

          ChaseOptions leg2_options;
          leg2_options.variant = variant;
          leg2_options.max_rounds = kRounds;
          leg2_options.frontier_threads = threads;
          leg2_options.resume = &*ckpt;
          index::ShardedShapeIndex leg2_index(4);
          if (write_through) {
            // The resume contract: the caller hands in an index reflecting
            // the checkpoint's instance, here replayed from leg 1's result.
            leg1->instance.ForEachAtom([&](const GroundAtom& atom) {
              leg2_index.Insert(atom.pred, atom.args);
            });
            leg2_options.shape_index = &leg2_index;
          }
          auto leg2 =
              RunChase(*program->database, program->tgds, leg2_options);
          ASSERT_TRUE(leg2.ok()) << label << ": " << leg2.status();
          EXPECT_EQ(leg2->outcome, oracle->outcome) << label;
          EXPECT_EQ(leg2->rounds, oracle->rounds) << label;
          EXPECT_EQ(leg2->triggers_fired, oracle->triggers_fired) << label;
          EXPECT_EQ(leg2->instance.NumNulls(), oracle->instance.NumNulls())
              << label;
          std::vector<GroundAtom> leg2_atoms;
          leg2->instance.ForEachAtom(
              [&](const GroundAtom& atom) { leg2_atoms.push_back(atom); });
          EXPECT_EQ(leg2_atoms, oracle_atoms) << label;
          if (write_through) {
            EXPECT_EQ(leg2_index.CurrentShapes(), oracle_shapes) << label;
          }
        }
      }
    }
  }
  std::remove(ck_path.c_str());
}

TEST(FrontierEquivalenceTest, MeteringTotalsAreThreadCountIndependent) {
  // The frontier split changes which worker issues which probe, never the
  // probe set: logical access totals must match the serial walk exactly.
  Rng rng(991);
  GeneratedData data = MakeRandomData(&rng);
  storage::Catalog catalog(data.database.get());
  storage::MemoryShapeSource memory(&catalog);
  ASSERT_TRUE(index::FindShapes(memory, {ShapeFinderMode::kExists, 1}).ok());
  const storage::AccessStats serial = memory.stats();
  for (unsigned threads : {2u, 8u}) {
    memory.stats().Reset();
    ASSERT_TRUE(index::FindShapes(memory, {ShapeFinderMode::kExists, threads}).ok());
    EXPECT_EQ(memory.stats().exists_queries, serial.exists_queries)
        << "threads " << threads;
    EXPECT_EQ(memory.stats().tuples_scanned, serial.tuples_scanned)
        << "threads " << threads;
  }
}

}  // namespace
}  // namespace chase
