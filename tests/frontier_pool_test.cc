// Stress suite for the frontier-expansion engine, written to run under
// ThreadSanitizer (the CHASE_TSAN CI job builds and runs it): the striped
// seen-set, the per-worker discovery lists, the per-item output slots, and
// the depth barrier are all exercised with more workers than cores and
// deliberately few stripes, on the three adversarial lattice profiles the
// engine exists for — a wide shallow frontier, a narrow deep one, and one
// giant predicate whose lattice must spread across the pool.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "exec/frontier_pool.h"
#include "base/padded.h"
#include "base/rng.h"
#include "gen/data_generator.h"
#include "storage/catalog.h"
#include "storage/shape_finder.h"
#include "storage/shape_lattice.h"
#include "storage/shape_source.h"

namespace chase {
namespace {

using storage::FindShapes;
using storage::ShapeFinderMode;

// A synthetic lattice: item i < kLeafFloor discovers 2i+1 and 2i+2 (a
// binary tree, so deeper items are discovered from exactly one parent),
// and every item emits its own value. The absorb sequence of a serial run
// is the canonical reference.
struct TreeRun {
  std::vector<uint64_t> absorbed;  // concatenated per-depth frontiers
  std::vector<size_t> depth_sizes;
  FrontierStats stats;
};

TreeRun RunTree(unsigned threads, unsigned stripes, uint64_t leaf_floor,
                std::vector<uint64_t> seeds) {
  TreeRun run;
  FrontierPool<uint64_t, uint64_t> pool(
      {.threads = threads, .seen_stripes = stripes});
  using Pool = FrontierPool<uint64_t, uint64_t>;
  Status status = pool.Run(
      std::move(seeds),
      [&](unsigned /*worker*/, const uint64_t& item, uint64_t* out,
          Pool::Discoveries* discovered) -> Status {
        *out = item * 3 + 1;
        if (item < leaf_floor) {
          discovered->Discover(2 * item + 1);
          discovered->Discover(2 * item + 2);
        }
        return OkStatus();
      },
      [&](std::span<const uint64_t> frontier,
          std::span<uint64_t> outs) -> Status {
        run.depth_sizes.push_back(frontier.size());
        for (size_t i = 0; i < frontier.size(); ++i) {
          EXPECT_EQ(outs[i], frontier[i] * 3 + 1);
          run.absorbed.push_back(frontier[i]);
        }
        return OkStatus();
      },
      &run.stats);
  EXPECT_TRUE(status.ok()) << status;
  return run;
}

TEST(FrontierPoolTest, ParallelTreeWalkMatchesSerial) {
  const TreeRun serial = RunTree(1, 0, 1 << 12, {0});
  for (unsigned threads : {2u, 4u, 8u, 16u}) {
    // Two stripes force heavy seen-set contention under TSan.
    const TreeRun parallel = RunTree(threads, 2, 1 << 12, {0});
    EXPECT_EQ(parallel.absorbed, serial.absorbed) << threads << " threads";
    EXPECT_EQ(parallel.depth_sizes, serial.depth_sizes);
    EXPECT_EQ(parallel.stats.depths, serial.stats.depths);
    EXPECT_EQ(parallel.stats.items_expanded, serial.stats.items_expanded);
    EXPECT_EQ(parallel.stats.max_frontier, serial.stats.max_frontier);
    EXPECT_EQ(std::accumulate(parallel.stats.worker_expanded.begin(),
                              parallel.stats.worker_expanded.end(),
                              uint64_t{0}),
              parallel.stats.items_expanded);
  }
}

TEST(FrontierPoolTest, DuplicateDiscoveriesAdmitExactlyOnce) {
  // Every item discovers the SAME successor set from many parents: the
  // striped seen-set must admit each successor exactly once however the
  // concurrent inserts interleave.
  using Pool = FrontierPool<uint64_t, uint64_t>;
  for (unsigned threads : {1u, 8u}) {
    std::vector<uint64_t> seeds(64);
    std::iota(seeds.begin(), seeds.end(), uint64_t{1000});
    Pool pool({.threads = threads, .seen_stripes = 2});
    std::atomic<uint64_t> expansions{0};
    FrontierStats stats;
    Status status = pool.Run(
        std::move(seeds),
        [&](unsigned, const uint64_t& item, uint64_t*,
            Pool::Discoveries* discovered) -> Status {
          expansions.fetch_add(1);
          if (item >= 1000) {
            for (uint64_t succ = 0; succ < 32; ++succ) {
              discovered->Discover(succ);  // everyone discovers [0, 32)
            }
          }
          return OkStatus();
        },
        [](std::span<const uint64_t>, std::span<uint64_t>) {
          return OkStatus();
        },
        &stats);
    ASSERT_TRUE(status.ok()) << status;
    EXPECT_EQ(expansions.load(), 64u + 32u);
    EXPECT_EQ(stats.items_discovered, 32u);
    EXPECT_EQ(stats.depths, 2u);
  }
}

TEST(FrontierPoolTest, ExpansionErrorsAbortTheRunPromptly) {
  // The shared abort contract: after the first expansion errors, no
  // further expansion starts anywhere in the pool — healthy workers stop
  // claiming chunks and skip indices they were already dealt. Seed 0 is
  // poisoned (it sorts first, so the first dealt chunk hits it
  // immediately); every healthy expansion parks until the poison has
  // errored plus a grace period for the engine to trip the abort, so at
  // most a couple of expansions per worker can ever run (the poisoned one,
  // each worker's in-flight one, and — if the poisoned thread loses its
  // timeslice between returning the error and the engine's abort store —
  // one straggler per worker). The 2*threads bound is loose against that
  // scheduling window yet still 256x below the 4096-item frontier a
  // non-aborting engine would expand.
  using Pool = FrontierPool<uint64_t, uint64_t>;
  for (unsigned threads : {1u, 8u}) {
    std::vector<uint64_t> seeds(4096);
    std::iota(seeds.begin(), seeds.end(), uint64_t{0});
    Pool pool({.threads = threads});
    std::atomic<uint64_t> expansions{0};
    std::atomic<bool> error_returned{false};
    uint64_t absorbed = 0;
    FrontierStats stats;
    Status status = pool.Run(
        std::move(seeds),
        [&](unsigned, const uint64_t& item, uint64_t*,
            Pool::Discoveries*) -> Status {
          expansions.fetch_add(1);
          if (item == 0) {
            error_returned.store(true);
            return InternalError("poisoned item");
          }
          for (int spin = 0; spin < 10'000 && !error_returned.load();
               ++spin) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
          return OkStatus();
        },
        [&](std::span<const uint64_t> frontier, std::span<uint64_t>) {
          absorbed += frontier.size();
          return OkStatus();
        },
        &stats);
    EXPECT_EQ(status.code(), StatusCode::kInternal) << threads;
    EXPECT_EQ(absorbed, 0u);  // the failing depth is never absorbed
    EXPECT_LE(expansions.load(), uint64_t{2} * threads);
    if (threads == 1) EXPECT_EQ(expansions.load(), 1u);
    // Stats are populated on the error path too, and count exactly the
    // expansions that ran — not the frontier items that were error-skipped.
    ASSERT_EQ(stats.worker_expanded.size(), threads);
    EXPECT_EQ(std::accumulate(stats.worker_expanded.begin(),
                              stats.worker_expanded.end(), uint64_t{0}),
              expansions.load());
    EXPECT_EQ(stats.items_expanded, expansions.load());
    EXPECT_EQ(stats.seeds_admitted, 4096u);
    EXPECT_EQ(stats.depths, 1u);
  }
}

TEST(FrontierPoolTest, BarrierReuseOverThousandsOfShallowDepths) {
  // A two-wide chain lattice: items {2d, 2d+1} at depth d, thousands of
  // depths. Two items per depth matter: a one-item frontier takes
  // ParallelFor's inline fast path, so only n >= 2 actually cycles the
  // persistent pool's generation barrier — which is the thing this test
  // stresses, once per depth, the profile the per-depth thread respawn
  // made pathological. The absorb sequence must still be exactly the
  // chain. Runs under the TSan CI job like the rest of this suite.
  constexpr uint64_t kDepths = 3000;
  for (unsigned threads : {2u, 8u}) {
    using Pool = FrontierPool<uint64_t, uint64_t>;
    Pool pool({.threads = threads, .seen_stripes = 2});
    std::vector<uint64_t> absorbed;
    FrontierStats stats;
    Status status = pool.Run(
        {0, 1},
        [&](unsigned, const uint64_t& item, uint64_t* out,
            Pool::Discoveries* discovered) -> Status {
          *out = item + 2;
          const uint64_t depth = item / 2;
          if (depth + 1 < kDepths) {
            discovered->Discover(2 * (depth + 1));
            discovered->Discover(2 * (depth + 1) + 1);
          }
          return OkStatus();
        },
        [&](std::span<const uint64_t> frontier,
            std::span<uint64_t> outs) -> Status {
          EXPECT_EQ(frontier.size(), 2u);
          for (size_t i = 0; i < frontier.size(); ++i) {
            EXPECT_EQ(outs[i], frontier[i] + 2);
            absorbed.push_back(frontier[i]);
          }
          return OkStatus();
        },
        &stats);
    ASSERT_TRUE(status.ok()) << status;
    EXPECT_EQ(stats.depths, kDepths);
    EXPECT_EQ(stats.max_frontier, 2u);
    ASSERT_EQ(absorbed.size(), 2 * kDepths);
    for (uint64_t i = 0; i < 2 * kDepths; ++i) {
      ASSERT_EQ(absorbed[i], i);
    }
  }
}

TEST(FrontierPoolTest, SharedExternalWorkerPoolAcrossRuns) {
  // A caller-owned WorkerPool drives several engine runs (the chase engine
  // does exactly this across rounds): its thread count wins over
  // Options::threads, and results stay identical to the serial reference.
  const TreeRun serial = RunTree(1, 0, 1 << 10, {0});
  WorkerPool shared(4);
  for (int run = 0; run < 3; ++run) {
    TreeRun result;
    FrontierPool<uint64_t, uint64_t> pool(
        {.threads = 1, .seen_stripes = 2, .pool = &shared});
    using Pool = FrontierPool<uint64_t, uint64_t>;
    Status status = pool.Run(
        {0},
        [&](unsigned /*worker*/, const uint64_t& item, uint64_t* out,
            Pool::Discoveries* discovered) -> Status {
          *out = item * 3 + 1;
          if (item < (1 << 10)) {
            discovered->Discover(2 * item + 1);
            discovered->Discover(2 * item + 2);
          }
          return OkStatus();
        },
        [&](std::span<const uint64_t> frontier,
            std::span<uint64_t> outs) -> Status {
          result.depth_sizes.push_back(frontier.size());
          for (size_t i = 0; i < frontier.size(); ++i) {
            EXPECT_EQ(outs[i], frontier[i] * 3 + 1);
            result.absorbed.push_back(frontier[i]);
          }
          return OkStatus();
        },
        &result.stats);
    ASSERT_TRUE(status.ok()) << status;
    EXPECT_EQ(result.absorbed, serial.absorbed) << "run " << run;
    EXPECT_EQ(result.stats.worker_expanded.size(), 4u);
  }
}

TEST(FrontierPoolTest, ParallelAbsorbMatchesSerialAbsorb) {
  // The opt-in associative absorb: per-chunk calls on the pool, worker-
  // private accumulators, one merge at the end — the totals must match the
  // serial-absorb reference at every thread count (the per-chunk splits
  // are deterministic, the call order is not; the accumulation is
  // commutative, so the merged result is).
  const TreeRun serial = RunTree(1, 0, 1 << 12, {0});
  uint64_t serial_sum = 0;
  for (uint64_t item : serial.absorbed) serial_sum += item * 3 + 1;
  for (unsigned threads : {1u, 2u, 8u}) {
    using Pool = FrontierPool<uint64_t, uint64_t>;
    Pool pool({.threads = threads, .seen_stripes = 2});
    std::vector<PaddedU64> worker_sum(threads);
    std::vector<PaddedU64> worker_items(threads);
    std::atomic<uint64_t> out_mismatches{0};
    FrontierStats stats;
    Status status = pool.RunParallelAbsorb(
        {0},
        [&](unsigned /*worker*/, const uint64_t& item, uint64_t* out,
            Pool::Discoveries* discovered) -> Status {
          *out = item * 3 + 1;
          if (item < (1 << 12)) {
            discovered->Discover(2 * item + 1);
            discovered->Discover(2 * item + 2);
          }
          return OkStatus();
        },
        [&](unsigned worker, std::span<const uint64_t> frontier,
            std::span<uint64_t> outs) -> Status {
          for (size_t i = 0; i < frontier.size(); ++i) {
            if (outs[i] != frontier[i] * 3 + 1) out_mismatches.fetch_add(1);
            worker_sum[worker].value += outs[i];
            ++worker_items[worker].value;
          }
          return OkStatus();
        },
        &stats);
    ASSERT_TRUE(status.ok()) << status;
    EXPECT_EQ(out_mismatches.load(), 0u);
    uint64_t total_sum = 0, total_items = 0;
    for (unsigned t = 0; t < threads; ++t) {
      total_sum += worker_sum[t].value;
      total_items += worker_items[t].value;
    }
    EXPECT_EQ(total_sum, serial_sum) << threads << " threads";
    EXPECT_EQ(total_items, serial.absorbed.size());
    EXPECT_EQ(stats.depths, serial.stats.depths);
    EXPECT_EQ(stats.items_expanded, serial.stats.items_expanded);
  }
}

TEST(FrontierPoolTest, ParallelAbsorbErrorsAbortTheRun) {
  using Pool = FrontierPool<uint64_t, uint64_t>;
  for (unsigned threads : {1u, 8u}) {
    std::vector<uint64_t> seeds(512);
    std::iota(seeds.begin(), seeds.end(), uint64_t{0});
    Pool pool({.threads = threads});
    FrontierStats stats;
    Status status = pool.RunParallelAbsorb(
        std::move(seeds),
        [&](unsigned, const uint64_t&, uint64_t*,
            Pool::Discoveries*) -> Status { return OkStatus(); },
        [&](unsigned, std::span<const uint64_t> frontier,
            std::span<uint64_t>) -> Status {
          for (uint64_t item : frontier) {
            if (item == 5) return InternalError("poisoned chunk");
          }
          return OkStatus();
        },
        &stats);
    EXPECT_EQ(status.code(), StatusCode::kInternal) << threads;
    // The depth fully expanded before its absorb failed.
    EXPECT_EQ(stats.items_expanded, 512u);
  }
}

TEST(FrontierPoolTest, ParallelForCoversEveryIndexOnce) {
  for (unsigned threads : {1u, 3u, 8u, 16u}) {
    const size_t n = 10'000;
    std::vector<std::atomic<uint32_t>> hits(n);
    FrontierParallelFor(n, threads, [&](unsigned, size_t index) {
      hits[index].fetch_add(1);
    });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
    }
  }
}

// --------------------------------------------------------------------------
// The budgeted enumerate→pause→apply→resume protocol (RunBudgetedTasks),
// exercised through a synthetic producer: task t yields the sequence
// t*1000, t*1000+1, … (lens[t] items) into its bounded buffer; the drain
// concatenates. The whole contract is that the concatenation equals the
// task-order concatenation of every sequence — for any thread count, any
// budget, any skew — while no epoch ever holds more than threads × budget
// buffered items.

struct BudgetedRun {
  std::vector<uint64_t> drained;  // drain-order concatenation
  uint64_t peak_buffered = 0;     // measured at the epoch barrier
  size_t epochs = 0;
  uint64_t resumes = 0;
};

BudgetedRun RunBudgeted(unsigned threads, uint64_t budget,
                        const std::vector<size_t>& lens,
                        size_t cut_after = SIZE_MAX) {
  BudgetedRun run;
  WorkerPool pool(threads);
  std::vector<std::vector<uint64_t>> buffers(lens.size());
  std::vector<size_t> produced(lens.size(), 0);
  std::atomic<uint64_t> resumes{0};
  bool cut = false;
  pool.RunBudgetedTasks(
      lens.size(),
      [&](unsigned /*worker*/, size_t t) -> bool {
        resumes.fetch_add(1);
        while (buffers[t].size() < budget) {
          if (produced[t] == lens[t]) return true;  // exhausted
          buffers[t].push_back(t * 1000 + produced[t]);
          ++produced[t];
        }
        return produced[t] == lens[t];  // full buffer: park unless done
      },
      [&](size_t t) -> bool {
        for (uint64_t v : buffers[t]) run.drained.push_back(v);
        buffers[t].clear();
        if (run.drained.size() >= cut_after) {
          cut = true;
          return false;
        }
        return true;
      },
      [&](size_t first, size_t count) {
        ++run.epochs;
        uint64_t buffered = 0;
        for (size_t i = 0; i < count; ++i) buffered += buffers[first + i].size();
        run.peak_buffered = std::max(run.peak_buffered, buffered);
      });
  run.resumes = resumes.load();
  // After a completed (un-cut) run, every buffer must have been drained.
  if (!cut) {
    for (const auto& buffer : buffers) EXPECT_TRUE(buffer.empty());
  }
  return run;
}

std::vector<uint64_t> TaskOrderReference(const std::vector<size_t>& lens) {
  std::vector<uint64_t> ref;
  for (size_t t = 0; t < lens.size(); ++t) {
    for (size_t j = 0; j < lens[t]; ++j) ref.push_back(t * 1000 + j);
  }
  return ref;
}

TEST(FrontierPoolTest, BudgetedTasksDrainInTaskOrder) {
  // Skewed lengths — long tasks early, empty tasks interleaved, a long
  // tail task — swept over threads × budget. Order and coverage must be
  // oblivious to both knobs; the buffered peak must respect the window.
  const std::vector<size_t> lens = {17, 0, 3, 120, 1, 0, 42, 7, 0, 63};
  const std::vector<uint64_t> ref = TaskOrderReference(lens);
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    for (uint64_t budget : {1u, 2u, 7u, 1000u}) {
      const BudgetedRun run = RunBudgeted(threads, budget, lens);
      EXPECT_EQ(run.drained, ref)
          << threads << " threads, budget " << budget;
      EXPECT_LE(run.peak_buffered, uint64_t{threads} * budget)
          << threads << " threads, budget " << budget;
    }
  }
}

TEST(FrontierPoolTest, BudgetedTasksBudgetOneStillMakesProgress) {
  // budget=1 is the adversarial setting: every epoch moves each window
  // task by at most one item, so the window's head task must be re-drained
  // and resumed many times. 120 items at the head means >= 120 epochs —
  // termination plus exact order is the regression.
  const std::vector<size_t> lens = {120, 2, 2};
  const BudgetedRun run = RunBudgeted(4, 1, lens);
  EXPECT_EQ(run.drained, TaskOrderReference(lens));
  EXPECT_GE(run.epochs, 120u);
  EXPECT_LE(run.peak_buffered, 4u);
}

TEST(FrontierPoolTest, BudgetedTasksEarlyCutStopsTheRun) {
  // The drain's false return is the chase's atom-limit cut: the protocol
  // must stop immediately — no further resumes, no further drains — with
  // the drained prefix exactly the task-order prefix.
  const std::vector<size_t> lens = {10, 10, 10, 10};
  const std::vector<uint64_t> ref = TaskOrderReference(lens);
  for (unsigned threads : {1u, 4u}) {
    const BudgetedRun run = RunBudgeted(threads, 1000, lens, /*cut_after=*/15);
    // One drain overshoots past 15 at most to a task boundary.
    ASSERT_GE(run.drained.size(), 15u) << threads;
    ASSERT_LE(run.drained.size(), 20u) << threads;
    for (size_t i = 0; i < run.drained.size(); ++i) {
      EXPECT_EQ(run.drained[i], ref[i]) << threads;
    }
  }
}

TEST(FrontierPoolTest, BudgetedTasksHandleEmptyInputs) {
  const BudgetedRun none = RunBudgeted(4, 8, {});
  EXPECT_TRUE(none.drained.empty());
  EXPECT_EQ(none.epochs, 0u);
  const BudgetedRun all_empty = RunBudgeted(4, 8, {0, 0, 0, 0, 0});
  EXPECT_TRUE(all_empty.drained.empty());
  EXPECT_EQ(all_empty.peak_buffered, 0u);
}

TEST(FrontierPoolTest, ForEachChildHandlesMaxArity) {
  // Regression: with uint8_t loop counters, blocks == 255 (the
  // Schema::kMaxArity ceiling) wrapped `b` through 0 — an out-of-bounds
  // MergeBlocks read and an infinite loop. The top of the arity-255
  // lattice must yield exactly C(255, 2) children and terminate.
  const IdTuple top = storage::AllDistinctIdTuple(255);
  size_t children = 0;
  storage::ForEachChild(top, [&](IdTuple child) {
    ASSERT_EQ(child.size(), 255u);
    ++children;
  });
  EXPECT_EQ(children, 255u * 254u / 2u);
}

// --------------------------------------------------------------------------
// The three adversarial shape-lattice profiles, through the real consumer.

void ExpectFrontierExistsMatchesSerial(const DataGenParams& params,
                                       const char* label) {
  auto data = GenerateData(params);
  ASSERT_TRUE(data.ok()) << data.status();
  storage::Catalog catalog(data->database.get());
  storage::MemoryShapeSource memory(&catalog);
  auto oracle = FindShapes(memory, {ShapeFinderMode::kExists, 1});
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  for (unsigned threads : {4u, 8u}) {
    FrontierStats stats;
    storage::FindShapesOptions options{ShapeFinderMode::kExists, threads};
    options.frontier_stats = &stats;
    auto shapes = FindShapes(memory, options);
    ASSERT_TRUE(shapes.ok()) << shapes.status();
    EXPECT_EQ(*shapes, *oracle) << label << ", threads " << threads;
    EXPECT_EQ(std::accumulate(stats.worker_expanded.begin(),
                              stats.worker_expanded.end(), uint64_t{0}),
              stats.items_expanded)
        << label;
  }
}

TEST(FrontierPoolTest, WideShallowLattice) {
  // Many low-arity predicates: the frontier is wide (one seed per
  // predicate) and drains in a couple of depths.
  DataGenParams params;
  params.preds = 40;
  params.min_arity = 1;
  params.max_arity = 3;
  params.dsize = 64;
  params.rsize = 200;
  params.seed = 11;
  ExpectFrontierExistsMatchesSerial(params, "wide-shallow");
}

TEST(FrontierPoolTest, NarrowDeepLattice) {
  // One high-arity predicate over a tiny repeated domain: the frontier
  // starts as a single item and the walk descends many merge levels.
  DataGenParams params;
  params.preds = 1;
  params.min_arity = 7;
  params.max_arity = 7;
  params.dsize = 64;
  params.rsize = 30;
  params.seed = 12;
  ExpectFrontierExistsMatchesSerial(params, "narrow-deep");
}

TEST(FrontierPoolTest, SingleGiantPredicate) {
  // The case PR 1's per-predicate dealing could never split: one predicate,
  // one big relation, one lattice. The frontier engine must spread its
  // probes across the pool and still match the serial walk.
  DataGenParams params;
  params.preds = 1;
  params.min_arity = 6;
  params.max_arity = 6;
  params.dsize = 64;
  params.rsize = 5'000;
  params.seed = 13;
  ExpectFrontierExistsMatchesSerial(params, "single-giant");
}

}  // namespace
}  // namespace chase
