// Stress suite for the frontier-expansion engine, written to run under
// ThreadSanitizer (the CHASE_TSAN CI job builds and runs it): the striped
// seen-set, the per-worker discovery lists, the per-item output slots, and
// the depth barrier are all exercised with more workers than cores and
// deliberately few stripes, on the three adversarial lattice profiles the
// engine exists for — a wide shallow frontier, a narrow deep one, and one
// giant predicate whose lattice must spread across the pool.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "base/frontier_pool.h"
#include "base/rng.h"
#include "gen/data_generator.h"
#include "storage/catalog.h"
#include "storage/shape_finder.h"
#include "storage/shape_lattice.h"
#include "storage/shape_source.h"

namespace chase {
namespace {

using storage::FindShapes;
using storage::ShapeFinderMode;

// A synthetic lattice: item i < kLeafFloor discovers 2i+1 and 2i+2 (a
// binary tree, so deeper items are discovered from exactly one parent),
// and every item emits its own value. The absorb sequence of a serial run
// is the canonical reference.
struct TreeRun {
  std::vector<uint64_t> absorbed;  // concatenated per-depth frontiers
  std::vector<size_t> depth_sizes;
  FrontierStats stats;
};

TreeRun RunTree(unsigned threads, unsigned stripes, uint64_t leaf_floor,
                std::vector<uint64_t> seeds) {
  TreeRun run;
  FrontierPool<uint64_t, uint64_t> pool(
      {.threads = threads, .seen_stripes = stripes});
  using Pool = FrontierPool<uint64_t, uint64_t>;
  Status status = pool.Run(
      std::move(seeds),
      [&](unsigned /*worker*/, const uint64_t& item, uint64_t* out,
          Pool::Discoveries* discovered) -> Status {
        *out = item * 3 + 1;
        if (item < leaf_floor) {
          discovered->Discover(2 * item + 1);
          discovered->Discover(2 * item + 2);
        }
        return OkStatus();
      },
      [&](std::span<const uint64_t> frontier,
          std::span<uint64_t> outs) -> Status {
        run.depth_sizes.push_back(frontier.size());
        for (size_t i = 0; i < frontier.size(); ++i) {
          EXPECT_EQ(outs[i], frontier[i] * 3 + 1);
          run.absorbed.push_back(frontier[i]);
        }
        return OkStatus();
      },
      &run.stats);
  EXPECT_TRUE(status.ok()) << status;
  return run;
}

TEST(FrontierPoolTest, ParallelTreeWalkMatchesSerial) {
  const TreeRun serial = RunTree(1, 0, 1 << 12, {0});
  for (unsigned threads : {2u, 4u, 8u, 16u}) {
    // Two stripes force heavy seen-set contention under TSan.
    const TreeRun parallel = RunTree(threads, 2, 1 << 12, {0});
    EXPECT_EQ(parallel.absorbed, serial.absorbed) << threads << " threads";
    EXPECT_EQ(parallel.depth_sizes, serial.depth_sizes);
    EXPECT_EQ(parallel.stats.depths, serial.stats.depths);
    EXPECT_EQ(parallel.stats.items_expanded, serial.stats.items_expanded);
    EXPECT_EQ(parallel.stats.max_frontier, serial.stats.max_frontier);
    EXPECT_EQ(std::accumulate(parallel.stats.worker_expanded.begin(),
                              parallel.stats.worker_expanded.end(),
                              uint64_t{0}),
              parallel.stats.items_expanded);
  }
}

TEST(FrontierPoolTest, DuplicateDiscoveriesAdmitExactlyOnce) {
  // Every item discovers the SAME successor set from many parents: the
  // striped seen-set must admit each successor exactly once however the
  // concurrent inserts interleave.
  using Pool = FrontierPool<uint64_t, uint64_t>;
  for (unsigned threads : {1u, 8u}) {
    std::vector<uint64_t> seeds(64);
    std::iota(seeds.begin(), seeds.end(), uint64_t{1000});
    Pool pool({.threads = threads, .seen_stripes = 2});
    std::atomic<uint64_t> expansions{0};
    FrontierStats stats;
    Status status = pool.Run(
        std::move(seeds),
        [&](unsigned, const uint64_t& item, uint64_t*,
            Pool::Discoveries* discovered) -> Status {
          expansions.fetch_add(1);
          if (item >= 1000) {
            for (uint64_t succ = 0; succ < 32; ++succ) {
              discovered->Discover(succ);  // everyone discovers [0, 32)
            }
          }
          return OkStatus();
        },
        [](std::span<const uint64_t>, std::span<uint64_t>) {
          return OkStatus();
        },
        &stats);
    ASSERT_TRUE(status.ok()) << status;
    EXPECT_EQ(expansions.load(), 64u + 32u);
    EXPECT_EQ(stats.items_discovered, 32u);
    EXPECT_EQ(stats.depths, 2u);
  }
}

TEST(FrontierPoolTest, ExpansionErrorsAbortTheRun) {
  using Pool = FrontierPool<uint64_t, uint64_t>;
  for (unsigned threads : {1u, 8u}) {
    std::vector<uint64_t> seeds(256);
    std::iota(seeds.begin(), seeds.end(), uint64_t{0});
    Pool pool({.threads = threads});
    uint64_t absorbed = 0;
    Status status = pool.Run(
        std::move(seeds),
        [&](unsigned, const uint64_t& item, uint64_t*,
            Pool::Discoveries*) -> Status {
          if (item == 97) return InternalError("poisoned item");
          return OkStatus();
        },
        [&](std::span<const uint64_t> frontier, std::span<uint64_t>) {
          absorbed += frontier.size();
          return OkStatus();
        });
    EXPECT_EQ(status.code(), StatusCode::kInternal) << threads;
    EXPECT_EQ(absorbed, 0u);  // the failing depth is never absorbed
  }
}

TEST(FrontierPoolTest, ParallelForCoversEveryIndexOnce) {
  for (unsigned threads : {1u, 3u, 8u, 16u}) {
    const size_t n = 10'000;
    std::vector<std::atomic<uint32_t>> hits(n);
    FrontierParallelFor(n, threads, [&](unsigned, size_t index) {
      hits[index].fetch_add(1);
    });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
    }
  }
}

TEST(FrontierPoolTest, ForEachChildHandlesMaxArity) {
  // Regression: with uint8_t loop counters, blocks == 255 (the
  // Schema::kMaxArity ceiling) wrapped `b` through 0 — an out-of-bounds
  // MergeBlocks read and an infinite loop. The top of the arity-255
  // lattice must yield exactly C(255, 2) children and terminate.
  const IdTuple top = storage::AllDistinctIdTuple(255);
  size_t children = 0;
  storage::ForEachChild(top, [&](IdTuple child) {
    ASSERT_EQ(child.size(), 255u);
    ++children;
  });
  EXPECT_EQ(children, 255u * 254u / 2u);
}

// --------------------------------------------------------------------------
// The three adversarial shape-lattice profiles, through the real consumer.

void ExpectFrontierExistsMatchesSerial(const DataGenParams& params,
                                       const char* label) {
  auto data = GenerateData(params);
  ASSERT_TRUE(data.ok()) << data.status();
  storage::Catalog catalog(data->database.get());
  storage::MemoryShapeSource memory(&catalog);
  auto oracle = FindShapes(memory, {ShapeFinderMode::kExists, 1});
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  for (unsigned threads : {4u, 8u}) {
    FrontierStats stats;
    storage::FindShapesOptions options{ShapeFinderMode::kExists, threads};
    options.frontier_stats = &stats;
    auto shapes = FindShapes(memory, options);
    ASSERT_TRUE(shapes.ok()) << shapes.status();
    EXPECT_EQ(*shapes, *oracle) << label << ", threads " << threads;
    EXPECT_EQ(std::accumulate(stats.worker_expanded.begin(),
                              stats.worker_expanded.end(), uint64_t{0}),
              stats.items_expanded)
        << label;
  }
}

TEST(FrontierPoolTest, WideShallowLattice) {
  // Many low-arity predicates: the frontier is wide (one seed per
  // predicate) and drains in a couple of depths.
  DataGenParams params;
  params.preds = 40;
  params.min_arity = 1;
  params.max_arity = 3;
  params.dsize = 64;
  params.rsize = 200;
  params.seed = 11;
  ExpectFrontierExistsMatchesSerial(params, "wide-shallow");
}

TEST(FrontierPoolTest, NarrowDeepLattice) {
  // One high-arity predicate over a tiny repeated domain: the frontier
  // starts as a single item and the walk descends many merge levels.
  DataGenParams params;
  params.preds = 1;
  params.min_arity = 7;
  params.max_arity = 7;
  params.dsize = 64;
  params.rsize = 30;
  params.seed = 12;
  ExpectFrontierExistsMatchesSerial(params, "narrow-deep");
}

TEST(FrontierPoolTest, SingleGiantPredicate) {
  // The case PR 1's per-predicate dealing could never split: one predicate,
  // one big relation, one lattice. The frontier engine must spread its
  // probes across the pool and still match the serial walk.
  DataGenParams params;
  params.preds = 1;
  params.min_arity = 6;
  params.max_arity = 6;
  params.dsize = 64;
  params.rsize = 5'000;
  params.seed = 13;
  ExpectFrontierExistsMatchesSerial(params, "single-giant");
}

}  // namespace
}  // namespace chase
