#include <gtest/gtest.h>

#include <set>

#include "gen/data_generator.h"
#include "gen/tgd_generator.h"
#include "storage/catalog.h"
#include "storage/shape_finder.h"

namespace chase {
namespace {

TEST(DataGeneratorTest, RespectsParameters) {
  DataGenParams params;
  params.preds = 7;
  params.min_arity = 2;
  params.max_arity = 4;
  params.dsize = 200;
  params.rsize = 30;
  params.seed = 42;
  auto data = GenerateData(params);
  ASSERT_TRUE(data.ok()) << data.status();
  const Schema& schema = *data->schema;
  EXPECT_EQ(schema.NumPredicates(), 7u);
  for (PredId pred = 0; pred < schema.NumPredicates(); ++pred) {
    EXPECT_GE(schema.Arity(pred), 2u);
    EXPECT_LE(schema.Arity(pred), 4u);
    EXPECT_EQ(data->database->NumTuples(pred), 30u);
  }
  EXPECT_EQ(data->database->TotalFacts(), 7u * 30u);
  // Domain values stay below dsize.
  for (PredId pred = 0; pred < schema.NumPredicates(); ++pred) {
    for (uint32_t value : data->database->Tuples(pred)) {
      EXPECT_LT(value, params.dsize);
    }
  }
}

TEST(DataGeneratorTest, DeterministicForSeed) {
  DataGenParams params;
  params.preds = 3;
  params.rsize = 10;
  params.dsize = 100;
  params.seed = 5;
  auto a = GenerateData(params);
  auto b = GenerateData(params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (PredId pred = 0; pred < 3; ++pred) {
    auto ta = a->database->Tuples(pred);
    auto tb = b->database->Tuples(pred);
    ASSERT_EQ(ta.size(), tb.size());
    EXPECT_TRUE(std::equal(ta.begin(), ta.end(), tb.begin()));
  }
}

TEST(DataGeneratorTest, ProducesShapeVariety) {
  // With arity up to 4 and many tuples per relation, multiple shapes per
  // relation must appear — this is the generator's reason to exist.
  DataGenParams params;
  params.preds = 1;
  params.min_arity = 4;
  params.max_arity = 4;
  params.dsize = 1000;
  params.rsize = 500;
  params.seed = 9;
  auto data = GenerateData(params);
  ASSERT_TRUE(data.ok());
  storage::Catalog catalog(data->database.get());
  auto shapes = storage::FindShapesInMemory(catalog);
  EXPECT_GT(shapes.size(), 5u);   // out of B(4) = 15 possible
  EXPECT_LE(shapes.size(), 15u);
}

TEST(DataGeneratorTest, ShapedTuplesCoverTheShapeSpectrum) {
  Rng rng(3);
  std::vector<uint32_t> tuple;
  bool saw_all_equal = false;
  bool saw_all_distinct = false;
  for (int trial = 0; trial < 500; ++trial) {
    GenerateShapedTuple(3, 100, &rng, &tuple);
    ASSERT_EQ(tuple.size(), 3u);
    for (uint32_t value : tuple) EXPECT_LT(value, 100u);
    const IdTuple id = IdOf(std::span<const uint32_t>(tuple));
    saw_all_equal |= id == IdTuple{1, 1, 1};
    saw_all_distinct |= id == IdTuple{1, 2, 3};
  }
  // Both the coarsest and the finest shape must occur: the generator
  // controls shapes, it does not just sample values.
  EXPECT_TRUE(saw_all_equal);
  EXPECT_TRUE(saw_all_distinct);
}

TEST(DataGeneratorTest, RejectsBadParameters) {
  DataGenParams params;
  params.min_arity = 0;
  EXPECT_FALSE(GenerateData(params).ok());
  params.min_arity = 3;
  params.max_arity = 2;
  EXPECT_FALSE(GenerateData(params).ok());
  params.max_arity = 3;
  params.dsize = 10;  // too small
  EXPECT_FALSE(GenerateData(params).ok());
}

TEST(TgdGeneratorTest, RespectsParameters) {
  DataGenParams data_params;
  data_params.preds = 50;
  data_params.rsize = 0;
  auto data = GenerateData(data_params);
  ASSERT_TRUE(data.ok());

  TgdGenParams params;
  params.ssize = 20;
  params.min_arity = 1;
  params.max_arity = 5;
  params.tsize = 300;
  params.tclass = TgdClass::kSimpleLinear;
  params.seed = 11;
  auto tgds = GenerateTgds(*data->schema, params);
  ASSERT_TRUE(tgds.ok()) << tgds.status();
  EXPECT_EQ(tgds->size(), 300u);
  EXPECT_TRUE(AllSimpleLinear(tgds.value()));
  EXPECT_TRUE(AllHaveNonEmptyFrontier(tgds.value()));

  // sch(Σ) stays within the chosen subset size.
  std::set<PredId> used;
  for (const Tgd& tgd : tgds.value()) {
    used.insert(tgd.body()[0].pred);
    for (const RuleAtom& atom : tgd.head()) used.insert(atom.pred);
  }
  EXPECT_LE(used.size(), 20u);
}

TEST(TgdGeneratorTest, LinearClassProducesRepeatedVariables) {
  DataGenParams data_params;
  data_params.preds = 30;
  data_params.min_arity = 3;
  data_params.max_arity = 5;
  data_params.rsize = 0;
  auto data = GenerateData(data_params);
  ASSERT_TRUE(data.ok());

  TgdGenParams params;
  params.ssize = 30;
  params.min_arity = 3;
  params.max_arity = 5;
  params.tsize = 200;
  params.tclass = TgdClass::kLinear;
  params.seed = 13;
  auto tgds = GenerateTgds(*data->schema, params);
  ASSERT_TRUE(tgds.ok());
  EXPECT_TRUE(AllLinear(tgds.value()));
  EXPECT_TRUE(AllHaveNonEmptyFrontier(tgds.value()));
  // Some rule must have a repeated body variable (overwhelmingly likely
  // with 200 draws of arity >= 3 shapes).
  bool some_non_simple = false;
  for (const Tgd& tgd : tgds.value()) {
    some_non_simple |= !tgd.IsSimpleLinear();
  }
  EXPECT_TRUE(some_non_simple);
}

TEST(TgdGeneratorTest, DeterministicForSeed) {
  DataGenParams data_params;
  data_params.preds = 10;
  data_params.rsize = 0;
  auto data = GenerateData(data_params);
  ASSERT_TRUE(data.ok());
  TgdGenParams params;
  params.ssize = 10;
  params.tsize = 50;
  params.seed = 21;
  auto a = GenerateTgds(*data->schema, params);
  auto b = GenerateTgds(*data->schema, params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
}

TEST(TgdGeneratorTest, FailsWhenSchemaTooSmall) {
  Schema schema;
  ASSERT_TRUE(schema.AddPredicate("only", 2).ok());
  TgdGenParams params;
  params.ssize = 5;
  EXPECT_FALSE(GenerateTgds(schema, params).ok());
}

TEST(TgdGeneratorTest, ExistentialPercentZeroMeansFullDatalog) {
  DataGenParams data_params;
  data_params.preds = 10;
  data_params.rsize = 0;
  auto data = GenerateData(data_params);
  ASSERT_TRUE(data.ok());
  TgdGenParams params;
  params.ssize = 10;
  params.tsize = 100;
  params.existential_percent = 0;
  auto tgds = GenerateTgds(*data->schema, params);
  ASSERT_TRUE(tgds.ok());
  for (const Tgd& tgd : tgds.value()) {
    EXPECT_EQ(tgd.num_existential(), 0u);
  }
}

}  // namespace
}  // namespace chase
