#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "base/rng.h"
#include "graph/dependency_graph.h"
#include "graph/digraph.h"
#include "graph/dot.h"
#include "graph/kosaraju.h"
#include "graph/reachability.h"
#include "graph/tarjan.h"
#include "logic/parser.h"

namespace chase {
namespace {

Digraph MakeGraph(uint32_t n, std::vector<Edge> edges) {
  return Digraph(n, edges);
}

TEST(DigraphTest, AdjacencyAndReverseAdjacency) {
  Digraph g = MakeGraph(3, {{0, 1, false}, {1, 2, true}, {0, 2, false}});
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.num_special_edges(), 1u);
  EXPECT_EQ(g.OutArcs(0).size(), 2u);
  EXPECT_EQ(g.OutArcs(1).size(), 1u);
  EXPECT_TRUE(g.OutArcs(1)[0].special);
  EXPECT_EQ(g.InArcs(2).size(), 2u);
  EXPECT_EQ(g.InArcs(0).size(), 0u);
}

TEST(TarjanTest, SingleCycle) {
  Digraph g = MakeGraph(3, {{0, 1, false}, {1, 2, false}, {2, 0, false}});
  SccResult scc = TarjanScc(g);
  EXPECT_EQ(scc.num_components, 1u);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[1], scc.component[2]);
}

TEST(TarjanTest, Dag) {
  Digraph g = MakeGraph(4, {{0, 1, false}, {1, 2, false}, {1, 3, false}});
  SccResult scc = TarjanScc(g);
  EXPECT_EQ(scc.num_components, 4u);
  // Reverse topological order: edges go from higher to lower component ids.
  EXPECT_GT(scc.component[0], scc.component[1]);
  EXPECT_GT(scc.component[1], scc.component[2]);
  EXPECT_GT(scc.component[1], scc.component[3]);
}

TEST(TarjanTest, SelfLoop) {
  Digraph g = MakeGraph(2, {{0, 0, true}, {0, 1, false}});
  SccResult scc = TarjanScc(g);
  EXPECT_EQ(scc.num_components, 2u);
  SpecialSccs special = FindSpecialSccs(g, scc);
  ASSERT_EQ(special.components.size(), 1u);
  EXPECT_EQ(special.representatives[0], 0u);
}

TEST(TarjanTest, EmptyGraph) {
  Digraph g = MakeGraph(0, {});
  SccResult scc = TarjanScc(g);
  EXPECT_EQ(scc.num_components, 0u);
  EXPECT_TRUE(FindSpecialSccs(g, scc).empty());
}

TEST(SpecialSccTest, SpecialEdgeInsideCycle) {
  Digraph g = MakeGraph(3, {{0, 1, true}, {1, 0, false}, {1, 2, true}});
  SpecialSccs special = FindSpecialSccs(g);
  ASSERT_EQ(special.components.size(), 1u);
}

TEST(SpecialSccTest, SpecialEdgeBetweenSccsDoesNotCount) {
  // Cycle {0,1} (normal edges) -> 2 via special edge; no special SCC.
  Digraph g = MakeGraph(3, {{0, 1, false}, {1, 0, false}, {1, 2, true}});
  EXPECT_TRUE(FindSpecialSccs(g).empty());
}

TEST(SpecialSccTest, SpecialCrossLinkToEarlierSccDoesNotCount) {
  // This is the case where the paper's literal dummy-token trick would
  // over-approximate: a special edge from an SCC into an already-finished
  // SCC (see DESIGN.md §3). 2 -> {0,1} special, {0,1} and {2,3} are cycles.
  Digraph g = MakeGraph(4, {{0, 1, false},
                            {1, 0, false},
                            {2, 0, true},
                            {2, 3, false},
                            {3, 2, false}});
  EXPECT_TRUE(FindSpecialSccs(g).empty());
}

TEST(SpecialSccTest, MultipleSpecialSccs) {
  Digraph g = MakeGraph(5, {{0, 1, true},
                            {1, 0, false},
                            {2, 3, true},
                            {3, 2, true},
                            {1, 2, false}});
  SpecialSccs special = FindSpecialSccs(g);
  EXPECT_EQ(special.components.size(), 2u);
  EXPECT_EQ(special.representatives.size(), 2u);
}

// Brute-force special-cycle detection for cross-checking: is there a cycle
// through some special edge? Equivalent to: some special edge (u,v) with v
// able to reach u.
bool BruteForceHasSpecialCycle(uint32_t n, const std::vector<Edge>& edges) {
  auto reaches = [&](uint32_t from, uint32_t to) {
    std::vector<bool> seen(n, false);
    std::vector<uint32_t> work = {from};
    seen[from] = true;
    while (!work.empty()) {
      uint32_t v = work.back();
      work.pop_back();
      if (v == to) return true;
      for (const Edge& e : edges) {
        if (e.from == v && !seen[e.to]) {
          seen[e.to] = true;
          work.push_back(e.to);
        }
      }
    }
    return false;
  };
  for (const Edge& e : edges) {
    if (e.special && reaches(e.to, e.from)) return true;
  }
  return false;
}

TEST(SpecialSccTest, MatchesBruteForceOnRandomGraphs) {
  Rng rng(2024);
  for (int trial = 0; trial < 300; ++trial) {
    const uint32_t n = 2 + rng.Below(8);
    const uint32_t m = rng.Below(2 * n + 1);
    std::vector<Edge> edges;
    for (uint32_t i = 0; i < m; ++i) {
      edges.push_back(Edge{static_cast<uint32_t>(rng.Below(n)),
                           static_cast<uint32_t>(rng.Below(n)),
                           rng.Percent(30)});
    }
    Digraph g(n, edges);
    EXPECT_EQ(!FindSpecialSccs(g).empty(),
              BruteForceHasSpecialCycle(n, edges))
        << "trial " << trial;
  }
}

// Canonical form of an SCC decomposition: map each node to the sorted list
// of nodes in its component.
std::vector<std::vector<uint32_t>> CanonicalSccs(const SccResult& scc) {
  std::map<uint32_t, std::vector<uint32_t>> groups;
  for (uint32_t v = 0; v < scc.component.size(); ++v) {
    groups[scc.component[v]].push_back(v);
  }
  std::vector<std::vector<uint32_t>> out;
  for (auto& [comp, members] : groups) out.push_back(members);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(TarjanTest, AgreesWithKosarajuOnRandomGraphs) {
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    const uint32_t n = 1 + rng.Below(40);
    const uint32_t m = rng.Below(3 * n);
    std::vector<Edge> edges;
    for (uint32_t i = 0; i < m; ++i) {
      edges.push_back(Edge{static_cast<uint32_t>(rng.Below(n)),
                           static_cast<uint32_t>(rng.Below(n)), false});
    }
    Digraph g(n, edges);
    SccResult tarjan = TarjanScc(g);
    SccResult kosaraju = KosarajuScc(g);
    EXPECT_EQ(tarjan.num_components, kosaraju.num_components);
    EXPECT_EQ(CanonicalSccs(tarjan), CanonicalSccs(kosaraju))
        << "trial " << trial;
  }
}

TEST(ReachabilityTest, ForwardAndReverse) {
  Digraph g = MakeGraph(5, {{0, 1, false},
                            {1, 2, false},
                            {3, 1, false},
                            {4, 4, false}});
  std::vector<uint32_t> seeds = {1};
  auto forward = ForwardReachable(g, seeds);
  EXPECT_FALSE(forward[0]);
  EXPECT_TRUE(forward[1]);
  EXPECT_TRUE(forward[2]);
  EXPECT_FALSE(forward[3]);
  auto reverse = ReverseReachable(g, seeds);
  EXPECT_TRUE(reverse[0]);
  EXPECT_TRUE(reverse[1]);
  EXPECT_FALSE(reverse[2]);
  EXPECT_TRUE(reverse[3]);
  EXPECT_FALSE(reverse[4]);
}

Program MustParse(const std::string& text) {
  auto program = ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status();
  return std::move(program).value();
}

TEST(DependencyGraphTest, NormalAndSpecialEdges) {
  // r(x,y) -> s(y,z): normal (r,2)->(s,1); special (r,2)->(s,2) from y's
  // position; x is not frontier so (r,1) contributes nothing.
  Program p = MustParse("r(X,Y) -> s(Y,Z).");
  DependencyGraph g = BuildDependencyGraph(*p.schema, p.tgds);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.num_special_edges(), 1u);
  const Schema& schema = *p.schema;
  const PredId r = schema.FindPredicate("r").value();
  const PredId s = schema.FindPredicate("s").value();
  const uint32_t r1 = schema.PositionId(r, 1);
  bool saw_normal = false, saw_special = false;
  for (const Arc& arc : g.graph().OutArcs(r1)) {
    if (arc.special) {
      saw_special = arc.node == schema.PositionId(s, 1);
    } else {
      saw_normal = arc.node == schema.PositionId(s, 0);
    }
  }
  EXPECT_TRUE(saw_normal);
  EXPECT_TRUE(saw_special);
}

TEST(DependencyGraphTest, CanonicalNonWeaklyAcyclicExample) {
  // e(x,y) -> exists z e(y,z): position (e,2) carries a special self-loop,
  // the textbook witness of non-termination.
  Program p = MustParse("e(X,Y) -> e(Y,Z).");
  DependencyGraph g = BuildDependencyGraph(*p.schema, p.tgds);
  EXPECT_FALSE(FindSpecialSccs(g.graph()).empty());
}

TEST(DependencyGraphTest, CopyRuleHasNoSpecialEdge) {
  Program p = MustParse("r(X,Y) -> s(X,Y).");
  DependencyGraph g = BuildDependencyGraph(*p.schema, p.tgds);
  EXPECT_EQ(g.num_special_edges(), 0u);
  EXPECT_TRUE(FindSpecialSccs(g.graph()).empty());
}

TEST(DependencyGraphTest, DeduplicatesParallelEdges) {
  // Both rules produce the identical edge set.
  Program p = MustParse("r(X,Y) -> s(Y,Z).\nr(A,B) -> s(B,C).");
  DependencyGraph g = BuildDependencyGraph(*p.schema, p.tgds);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(DependencyGraphTest, MultiHeadRule) {
  // r(x,y) -> s(y,z), t(z): y's position links to (s,1) normal and to (s,2),
  // (t,1) special.
  Program p = MustParse("r(X,Y) -> s(Y,Z), t(Z).");
  DependencyGraph g = BuildDependencyGraph(*p.schema, p.tgds);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.num_special_edges(), 2u);
}

TEST(DependencyGraphTest, RepeatedFrontierVariableFansOut) {
  // r(x) -> s(x,x): one body position, two normal edges.
  Program p = MustParse("r(X) -> s(X,X).");
  DependencyGraph g = BuildDependencyGraph(*p.schema, p.tgds);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.num_special_edges(), 0u);
}

TEST(DependencyGraphTest, PredicateReachability) {
  Program p = MustParse("r(X,Y) -> s(Y,Z).\ns(X,Y) -> t(X,Y).");
  DependencyGraph g = BuildDependencyGraph(*p.schema, p.tgds);
  const PredId r = p.schema->FindPredicate("r").value();
  const PredId s = p.schema->FindPredicate("s").value();
  const PredId t = p.schema->FindPredicate("t").value();
  EXPECT_TRUE(PredicateReachable(g, r, t));
  EXPECT_TRUE(PredicateReachable(g, s, t));
  EXPECT_TRUE(PredicateReachable(g, r, r));  // R == P base case
  EXPECT_FALSE(PredicateReachable(g, t, r));
}

TEST(DotTest, RendersNodesAndEdgeStyles) {
  Program p = MustParse("e(X,Y) -> e(Y,Z).");
  DependencyGraph g = BuildDependencyGraph(*p.schema, p.tgds);
  const std::string dot = ToDot(g);
  EXPECT_NE(dot.find("digraph dg"), std::string::npos);
  // Normal edge (e,2) -> (e,1) via Y; special edges via Z dashed red.
  EXPECT_NE(dot.find("\"e.2\" -> \"e.1\";"), std::string::npos);
  EXPECT_NE(dot.find("[style=dashed, color=red]"), std::string::npos);
  // The rule diverges: its special SCC nodes are highlighted.
  EXPECT_NE(dot.find("fillcolor"), std::string::npos);
}

TEST(DotTest, SkipsIsolatedNodesByDefault) {
  Program p = MustParse("lonely(a,b,c).\ne(X,Y) -> e(Y,Z).");
  DependencyGraph g = BuildDependencyGraph(*p.schema, p.tgds);
  const std::string dot = ToDot(g);
  EXPECT_EQ(dot.find("lonely"), std::string::npos);
  DotOptions options;
  options.skip_isolated_nodes = false;
  EXPECT_NE(ToDot(g, options).find("lonely"), std::string::npos);
}

TEST(DotTest, AcyclicGraphHasNoHighlight) {
  Program p = MustParse("a(X) -> b(X,Z).");
  DependencyGraph g = BuildDependencyGraph(*p.schema, p.tgds);
  EXPECT_EQ(ToDot(g).find("fillcolor"), std::string::npos);
}

TEST(DependencyGraphTest, MultiAtomBodyTgd) {
  // Non-linear TGDs are supported by the graph builder (the dependency
  // graph is defined for arbitrary TGDs in Section 3).
  Program p = MustParse("r(X,Y), s(Y,W) -> t(X,Z).");
  DependencyGraph g = BuildDependencyGraph(*p.schema, p.tgds);
  // x occurs at (r,1): normal edge to (t,1), special edge to (t,2).
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.num_special_edges(), 1u);
}

}  // namespace
}  // namespace chase
