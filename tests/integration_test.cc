// End-to-end flows: parse a program from text, run the checker, cross-check
// with the chase; plus the Section 7/8 experiment pipelines at miniature
// scale (generate -> serialize -> parse -> check), exactly what the bench
// harness does.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "base/timer.h"
#include "chase/chase_engine.h"
#include "core/is_chase_finite.h"
#include "gen/data_generator.h"
#include "gen/tgd_generator.h"
#include "logic/parser.h"
#include "logic/printer.h"

namespace chase {
namespace {

TEST(IntegrationTest, OntologyStyleProgramEndToEnd) {
  auto program = ParseProgram(R"(
    % DL-Lite style ontology
    professor(ada).
    professor(alan).
    professor(X) -> faculty(X).
    faculty(X) -> exists D : worksFor(X, D).
    worksFor(X, D) -> department(D).
    department(D) -> exists H : headedBy(D, H).
    headedBy(D, H) -> faculty(H).
  )");
  ASSERT_TRUE(program.ok()) << program.status();
  // faculty(H) for a fresh H re-enters worksFor: the chase is infinite.
  auto finite = IsChaseFiniteL(*program->database, program->tgds);
  ASSERT_TRUE(finite.ok()) << finite.status();
  EXPECT_FALSE(finite.value());

  ChaseOptions options;
  options.max_atoms = 2000;
  auto chase = RunChase(*program->database, program->tgds, options);
  ASSERT_TRUE(chase.ok());
  EXPECT_EQ(chase->outcome, ChaseOutcome::kAtomLimit);
}

TEST(IntegrationTest, TerminatingOntologyVariant) {
  auto program = ParseProgram(R"(
    professor(ada).
    professor(X) -> faculty(X).
    faculty(X) -> exists D : worksFor(X, D).
    worksFor(X, D) -> department(D).
  )");
  ASSERT_TRUE(program.ok());
  auto finite = IsChaseFiniteL(*program->database, program->tgds);
  ASSERT_TRUE(finite.ok());
  EXPECT_TRUE(finite.value());
  auto chase = RunChase(*program->database, program->tgds, {});
  ASSERT_TRUE(chase.ok());
  EXPECT_EQ(chase->outcome, ChaseOutcome::kFixpoint);
  EXPECT_TRUE(Satisfies(chase->instance, program->tgds));
}

TEST(IntegrationTest, Figure1PipelineMiniature) {
  // The Fig. 1 pipeline: generate SL TGDs, serialize, parse (t-parse),
  // build D_Σ, run Algorithm 1 (t-graph + t-comp).
  DataGenParams data_params;
  data_params.preds = 50;
  data_params.min_arity = 1;
  data_params.max_arity = 5;
  data_params.rsize = 0;
  auto data = GenerateData(data_params);
  ASSERT_TRUE(data.ok());

  TgdGenParams tgd_params;
  tgd_params.ssize = 30;
  tgd_params.tsize = 2000;
  tgd_params.tclass = TgdClass::kSimpleLinear;
  tgd_params.seed = 17;
  auto tgds = GenerateTgds(*data->schema, tgd_params);
  ASSERT_TRUE(tgds.ok());

  const std::string text = TgdsToString(*data->schema, tgds.value());
  Timer parse_timer;
  auto program = ParseProgram(text);
  const double parse_ms = parse_timer.ElapsedMillis();
  ASSERT_TRUE(program.ok()) << program.status();
  ASSERT_EQ(program->tgds.size(), 2000u);

  // D_Σ: one all-distinct fact per predicate (Remark 1).
  Database& db = *program->database;
  db.EnsureAnonymousDomain(64);
  std::vector<uint32_t> tuple;
  for (PredId pred = 0; pred < program->schema->NumPredicates(); ++pred) {
    tuple.clear();
    for (uint32_t i = 0; i < program->schema->Arity(pred); ++i) {
      tuple.push_back(i);
    }
    ASSERT_TRUE(db.AddFact(pred, tuple).ok());
  }

  SlCheckStats stats;
  auto finite = IsChaseFiniteSL(db, program->tgds, &stats);
  ASSERT_TRUE(finite.ok()) << finite.status();
  EXPECT_GT(stats.graph_nodes, 0u);
  EXPECT_GT(stats.graph_edges, 0u);
  EXPECT_GE(parse_ms, 0.0);
}

TEST(IntegrationTest, Section8PipelineMiniature) {
  // The Section 8 pipeline: shared schema, database D*, linear TGDs, then
  // IsChaseFinite[L] with both shape finder implementations.
  Rng rng(23);
  auto schema = std::make_unique<Schema>();
  auto preds = DeclarePredicates(schema.get(), "p", 40, 1, 5, &rng);
  ASSERT_TRUE(preds.ok());
  Database db(schema.get());
  ASSERT_TRUE(
      PopulateRelations(&db, preds.value(), /*dsize=*/500, /*rsize=*/200,
                        &rng)
          .ok());

  TgdGenParams tgd_params;
  tgd_params.ssize = 25;
  tgd_params.tsize = 500;
  tgd_params.tclass = TgdClass::kLinear;
  tgd_params.seed = 29;
  auto tgds = GenerateTgds(*schema, tgd_params);
  ASSERT_TRUE(tgds.ok());

  LCheckStats mem_stats, db_stats;
  LCheckOptions mem_options{storage::ShapeFinderMode::kInMemory};
  LCheckOptions db_options{storage::ShapeFinderMode::kInDatabase};
  auto mem_result = IsChaseFiniteL(db, tgds.value(), mem_options, &mem_stats);
  auto db_result = IsChaseFiniteL(db, tgds.value(), db_options, &db_stats);
  ASSERT_TRUE(mem_result.ok()) << mem_result.status();
  ASSERT_TRUE(db_result.ok()) << db_result.status();
  EXPECT_EQ(mem_result.value(), db_result.value());
  EXPECT_EQ(mem_stats.num_initial_shapes, db_stats.num_initial_shapes);
  EXPECT_EQ(mem_stats.num_derived_shapes, db_stats.num_derived_shapes);
  EXPECT_EQ(mem_stats.num_simplified_tgds, db_stats.num_simplified_tgds);
  // The two implementations do different kinds of work.
  EXPECT_GT(mem_stats.access.relations_loaded, 0u);
  EXPECT_EQ(db_stats.access.relations_loaded, 0u);
  EXPECT_GT(db_stats.access.exists_queries, 0u);
}

TEST(IntegrationTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/chase_program.dlgp";
  {
    std::ofstream out(path);
    out << "r(a,b).\nr(X,Y) -> s(Y,Z).\ns(X,Y) -> r(X,X).\n";
  }
  auto program = ParseProgramFile(path);
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->tgds.size(), 2u);
  EXPECT_EQ(program->database->TotalFacts(), 1u);
  auto finite = IsChaseFiniteL(*program->database, program->tgds);
  ASSERT_TRUE(finite.ok());
  EXPECT_FALSE(ParseProgramFile("/nonexistent/nope.dlgp").ok());
}

TEST(IntegrationTest, CheckerVerdictPredictsChaseBehaviour) {
  // Three canonical programs where we know the answer; tie every layer
  // together.
  struct Case {
    const char* text;
    bool finite;
  };
  const Case cases[] = {
      {"r(a,b).\nr(X,Y) -> r(Y,Z).", false},
      {"r(a,b).\nr(X,X) -> r(Z,X).", true},
      {"e(a,b).\ne(X,Y) -> t(X,Y).\nt(X,Y) -> t(Y,X).", true},
  };
  for (const Case& c : cases) {
    auto program = ParseProgram(c.text);
    ASSERT_TRUE(program.ok());
    auto verdict = IsChaseFiniteL(*program->database, program->tgds);
    ASSERT_TRUE(verdict.ok());
    EXPECT_EQ(verdict.value(), c.finite) << c.text;
    ChaseOptions options;
    options.max_atoms = 5000;
    auto chase = RunChase(*program->database, program->tgds, options);
    ASSERT_TRUE(chase.ok());
    EXPECT_EQ(chase->outcome == ChaseOutcome::kFixpoint, c.finite) << c.text;
  }
}

}  // namespace
}  // namespace chase
