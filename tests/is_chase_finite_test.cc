#include <gtest/gtest.h>

#include "core/is_chase_finite.h"
#include "logic/parser.h"

namespace chase {
namespace {

Program MustParse(const std::string& text) {
  auto program = ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status();
  return std::move(program).value();
}

bool MustCheckSL(const Program& p, SlCheckStats* stats = nullptr) {
  auto result = IsChaseFiniteSL(*p.database, p.tgds, stats);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.value();
}

bool MustCheckL(const Program& p,
                storage::ShapeFinderMode mode =
                    storage::ShapeFinderMode::kInMemory,
                LCheckStats* stats = nullptr) {
  LCheckOptions options;
  options.shape_finder = mode;
  auto result = IsChaseFiniteL(*p.database, p.tgds, options, stats);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.value();
}

TEST(IsChaseFiniteSLTest, InfiniteCanonicalExample) {
  Program p = MustParse("e(a,b).\ne(X,Y) -> e(Y,Z).");
  EXPECT_FALSE(MustCheckSL(p));
}

TEST(IsChaseFiniteSLTest, FiniteWhenCycleUnsupported) {
  Program p = MustParse("q(a).\ne(X,Y) -> e(Y,Z).");
  EXPECT_TRUE(MustCheckSL(p));
}

TEST(IsChaseFiniteSLTest, FiniteAcyclicMapping) {
  Program p = MustParse(R"(
    emp(a). emp(b).
    emp(X) -> rep(X, Z).
    rep(X, Y) -> emp(X).
  )");
  EXPECT_TRUE(MustCheckSL(p));
}

TEST(IsChaseFiniteSLTest, InfiniteViaChain) {
  Program p = MustParse(R"(
    q(a).
    q(X) -> e(X,X).
    e(X,Y) -> e(Y,Z).
  )");
  EXPECT_FALSE(MustCheckSL(p));
}

TEST(IsChaseFiniteSLTest, EmptyRuleSetIsFinite) {
  Program p = MustParse("r(a,b).");
  EXPECT_TRUE(MustCheckSL(p));
}

TEST(IsChaseFiniteSLTest, StatsPopulated) {
  Program p = MustParse("e(a,b).\ne(X,Y) -> e(Y,Z).");
  SlCheckStats stats;
  EXPECT_FALSE(MustCheckSL(p, &stats));
  EXPECT_EQ(stats.graph_nodes, 2u);
  EXPECT_EQ(stats.graph_edges, 2u);
  EXPECT_EQ(stats.special_sccs, 1u);
  EXPECT_GE(stats.graph_ms, 0.0);
}

TEST(IsChaseFiniteSLTest, RejectsNonSimpleLinear) {
  Program repeated = MustParse("r(X,X) -> s(X).");
  EXPECT_FALSE(IsChaseFiniteSL(*repeated.database, repeated.tgds).ok());
  Program multi = MustParse("r(X), s(X) -> t(X).");
  EXPECT_FALSE(IsChaseFiniteSL(*multi.database, multi.tgds).ok());
}

TEST(IsChaseFiniteSLTest, RejectsEmptyFrontier) {
  Program p = MustParse("r(X) -> s(Z).");
  auto result = IsChaseFiniteSL(*p.database, p.tgds);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(IsChaseFiniteLTest, PaperExample34IsFinite) {
  // Example 3.4: finite although Σ is not D-weakly-acyclic; the simplified
  // check must detect finiteness.
  Program p = MustParse("r(a,b).\nr(X,X) -> r(Z,X).");
  EXPECT_TRUE(MustCheckL(p));
}

TEST(IsChaseFiniteLTest, Example34VariantWithDiagonalFact) {
  // With R(a,a) in the database the rule fires and feeds itself forever:
  // R(a,a) gives R(z,a), whose shape R_[1,2] re-triggers... but only the
  // diagonal shape matches R(x,x), so the chase is finite.
  Program p = MustParse("r(a,a).\nr(X,X) -> r(Z,X).");
  EXPECT_TRUE(MustCheckL(p));
}

TEST(IsChaseFiniteLTest, InfiniteNonSimpleRecursion) {
  // r(x,x) -> r(x,z): the produced atom r(a,z) has shape [1,2]; add a rule
  // that squares it back to the diagonal.
  Program p = MustParse(R"(
    r(a,a).
    r(X,X) -> r(X,Z).
    r(X,Y) -> r(Y,Y).
  )");
  EXPECT_FALSE(MustCheckL(p));
}

TEST(IsChaseFiniteLTest, AgreesWithSLCheckerOnSimpleLinearInput) {
  const char* programs[] = {
      "e(a,b).\ne(X,Y) -> e(Y,Z).",
      "q(a).\ne(X,Y) -> e(Y,Z).",
      "emp(a).\nemp(X) -> rep(X, Z).\nrep(X, Y) -> emp(X).",
      "q(a).\nq(X) -> e(X,X).\ne(X,Y) -> e(Y,Z).",
  };
  for (const char* text : programs) {
    Program p = MustParse(text);
    EXPECT_EQ(MustCheckL(p), MustCheckSL(p)) << text;
  }
}

TEST(IsChaseFiniteLTest, BothShapeFinderModesAgree) {
  Program p = MustParse(R"(
    r(a,a). r(a,b).
    r(X,X) -> r(X,Z).
    r(X,Y) -> r(Y,Y).
  )");
  EXPECT_EQ(MustCheckL(p, storage::ShapeFinderMode::kInMemory),
            MustCheckL(p, storage::ShapeFinderMode::kInDatabase));
}

TEST(IsChaseFiniteLTest, StatsPopulated) {
  Program p = MustParse("r(a,a). r(a,b).\nr(X,Y) -> r(Y,Z).");
  LCheckStats stats;
  MustCheckL(p, storage::ShapeFinderMode::kInMemory, &stats);
  EXPECT_EQ(stats.num_initial_shapes, 2u);
  EXPECT_GE(stats.num_derived_shapes, 2u);
  EXPECT_GT(stats.num_simplified_tgds, 0u);
  EXPECT_GT(stats.graph_nodes, 0u);
  EXPECT_EQ(stats.access.relations_loaded, 1u);
}

TEST(IsChaseFiniteLTest, RejectsNonLinearAndEmptyFrontier) {
  Program multi = MustParse("r(X), s(X) -> t(X).");
  EXPECT_FALSE(IsChaseFiniteL(*multi.database, multi.tgds).ok());
  Program empty_frontier = MustParse("r(X) -> s(Z).");
  EXPECT_FALSE(
      IsChaseFiniteL(*empty_frontier.database, empty_frontier.tgds).ok());
}

TEST(IsChaseFiniteLStaticTest, MatchesDynamicOnExamples) {
  const char* programs[] = {
      "r(a,b).\nr(X,X) -> r(Z,X).",
      "r(a,a).\nr(X,X) -> r(X,Z).\nr(X,Y) -> r(Y,Y).",
      "e(a,b).\ne(X,Y) -> e(Y,Z).",
      "q(a).\ne(X,Y) -> e(Y,Z).",
      "r(a,a). r(a,b).\nr(X,Y) -> r(Y,X).",
  };
  for (const char* text : programs) {
    Program p = MustParse(text);
    auto via_static = IsChaseFiniteLStatic(*p.database, p.tgds);
    ASSERT_TRUE(via_static.ok()) << via_static.status();
    EXPECT_EQ(via_static.value(), MustCheckL(p)) << text;
  }
}

TEST(IsChaseFiniteLStaticTest, HonorsCap) {
  Program p = MustParse("r(A,B,C,D,E,F,G,H) -> r(A,B,C,D,E,F,G,Z).");
  auto result = IsChaseFiniteLStatic(*p.database, p.tgds, /*max_simplified=*/5);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace chase
