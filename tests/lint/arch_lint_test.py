#!/usr/bin/env python3
"""Golden-fixture test for tools/lint/arch_lint.py.

Each case under tests/lint/fixtures/arch/ is a miniature repo root (its
own src/ tree); the analyzer runs with --root at the case directory and
the shared fixture manifest, so every structural rule is pinned against
a tree purpose-built to trip (or not trip) it. A final pair of checks
makes sure real-repo directory walks skip the fixture tree and that
usage errors exit 2, distinct from findings.

Usage: arch_lint_test.py  (paths are inferred from this file's location)
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.abspath(os.path.join(HERE, "..", ".."))
LINTER = os.path.join(REPO, "tools", "lint", "arch_lint.py")
ARCH_FIXTURES = os.path.join(HERE, "fixtures", "arch")
MANIFEST = os.path.join(ARCH_FIXTURES, "layers.toml")

# case directory -> multiset of expected rule ids, one entry per expected
# finding. Empty list = the case must come back clean.
CASES = {
    "cycle": ["arch-cycle"],
    "layer_violation": ["layer-violation"],
    "transitive": ["transitive-include"],
    "missing_guard": ["missing-guard"],
    "bad_suppression": ["bare-allow"],
    "nodiscard": ["nodiscard-status"],
    "good": [],
}


def run_linter(args):
    proc = subprocess.run(
        [sys.executable, LINTER] + args,
        capture_output=True, text=True, check=False)
    rules = []
    for line in proc.stdout.splitlines():
        # "path:line: [rule] message"
        if "] " in line and "[" in line:
            rules.append(line.split("[", 1)[1].split("]", 1)[0])
    return proc.returncode, sorted(rules), proc.stdout + proc.stderr


def main():
    failures = []
    for case, expected in sorted(CASES.items()):
        case_dir = os.path.join(ARCH_FIXTURES, case)
        if not os.path.isdir(case_dir):
            failures.append(f"{case}: fixture directory missing")
            continue
        code, rules, output = run_linter(
            ["--root", case_dir, "--manifest", MANIFEST])
        want_code = 1 if expected else 0
        if code != want_code:
            failures.append(
                f"{case}: exit {code}, want {want_code}\n{output}")
        if rules != sorted(expected):
            failures.append(
                f"{case}: findings {rules}, want {sorted(expected)}\n"
                f"{output}")

    # Directory walks of the real repo must skip the fixture tree: linting
    # tests/ stays clean despite every known-bad snippet above.
    code, rules, output = run_linter(
        ["--root", REPO, os.path.join(REPO, "tests")])
    if code != 0 or rules:
        failures.append(
            f"tests/ walk should skip fixtures but found {rules} "
            f"(exit {code})\n{output}")

    # Usage errors are exit 2, distinct from findings: a nonexistent path
    # and a missing manifest.
    code, _, _ = run_linter([os.path.join(ARCH_FIXTURES, "no_such_dir")])
    if code != 2:
        failures.append(f"nonexistent path: exit {code}, want 2")
    code, _, _ = run_linter(
        ["--manifest", os.path.join(ARCH_FIXTURES, "no_such.toml")])
    if code != 2:
        failures.append(f"missing manifest: exit {code}, want 2")

    if failures:
        print("arch_lint_test: FAILED")
        for failure in failures:
            print(" -", failure)
        return 1
    print(f"arch_lint_test: OK ({len(CASES)} cases + walk/usage checks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
