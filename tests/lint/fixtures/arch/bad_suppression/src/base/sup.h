// Fixture: a layer violation "suppressed" without a reason. The bare
// allow() still silences the layer-violation finding, but is itself a
// finding — a suppression must document the invariant that replaces the
// rule. Expect: bare-allow (and nothing else).
#ifndef FIXTURE_BASE_SUP_H_
#define FIXTURE_BASE_SUP_H_

#include "obs/metrics.h"  // arch-lint: allow(layer-violation)

namespace fixture {
struct Latch {
  Counter contended;
};
}  // namespace fixture

#endif  // FIXTURE_BASE_SUP_H_
