// The obs header the bad-suppression case reaches down into.
#ifndef FIXTURE_OBS_METRICS_H_
#define FIXTURE_OBS_METRICS_H_

namespace fixture {
struct Counter {
  long value = 0;
};
}  // namespace fixture

#endif  // FIXTURE_OBS_METRICS_H_
