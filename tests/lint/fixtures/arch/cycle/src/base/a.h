// Fixture: two headers including each other. Expect: one arch-cycle
// finding for the component (reported on its lexicographically first
// member, this file).
#ifndef FIXTURE_BASE_A_H_
#define FIXTURE_BASE_A_H_

#include "base/b.h"

namespace fixture {
struct A {
  B* peer;
};
}  // namespace fixture

#endif  // FIXTURE_BASE_A_H_
