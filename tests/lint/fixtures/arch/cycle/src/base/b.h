// The other half of the a.h <-> b.h cycle.
#ifndef FIXTURE_BASE_B_H_
#define FIXTURE_BASE_B_H_

#include "base/a.h"

namespace fixture {
struct B {
  A* peer;
};
}  // namespace fixture

#endif  // FIXTURE_BASE_B_H_
