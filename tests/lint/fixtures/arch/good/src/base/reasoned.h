// A layer violation carrying a documented suppression: allowed, because
// the reason states the invariant that replaces the rule. Expect: clean.
#ifndef FIXTURE_BASE_REASONED_H_
#define FIXTURE_BASE_REASONED_H_

// arch-lint: allow(layer-violation) fixture: stands in for a vetted
// bootstrap edge whose inversion is tracked separately
#include "obs/counter.h"

namespace fixture {
struct Bootstrap {
  Counter startup;
};
}  // namespace fixture

#endif  // FIXTURE_BASE_REASONED_H_
