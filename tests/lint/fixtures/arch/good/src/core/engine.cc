// Clean translation unit: every name it uses comes from a header it
// names directly (no lucky includes), and every edge is manifest-allowed
// (core -> obs, core -> base). Expect: clean.
#include "base/dep.h"
#include "obs/counter.h"

namespace fixture {

int Tick(Counter* counter) {
  Dep next;
  next.payload = counter->last.payload + 1;
  counter->last = next;
  return next.payload;
}

}  // namespace fixture
