// obs -> base is an allowed edge; #pragma once is an accepted guard form.
#pragma once

#include "base/dep.h"

namespace fixture {
struct Counter {
  Dep last;
};
}  // namespace fixture
