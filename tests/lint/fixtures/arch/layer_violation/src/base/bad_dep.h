// Fixture: base reaching up into obs. The manifest says base = [] — the
// bottom layer depends on nothing — so this include is a declared-DAG
// violation. Expect: layer-violation at the include line.
#ifndef FIXTURE_BASE_BAD_DEP_H_
#define FIXTURE_BASE_BAD_DEP_H_

#include "obs/metrics.h"

namespace fixture {
struct Latch {
  Counter contended;
};
}  // namespace fixture

#endif  // FIXTURE_BASE_BAD_DEP_H_
