// Fixture: a header with neither an #ifndef/#define guard pair nor
// #pragma once. Expect: missing-guard.

namespace fixture {
struct Unguarded {
  int x = 0;
};
}  // namespace fixture
