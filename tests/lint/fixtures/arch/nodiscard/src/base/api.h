// Fixture: Status-returning declarations in a src/ header. Save() ships
// bare; Load() carries the annotation (and shows the previous-line form
// is accepted). Expect: nodiscard-status at Save only.
#ifndef FIXTURE_BASE_API_H_
#define FIXTURE_BASE_API_H_

namespace fixture {

class Status {};
template <typename T>
class StatusOr {};

Status Save(const char* path);

[[nodiscard]]
StatusOr<int> Load(const char* path);

}  // namespace fixture

#endif  // FIXTURE_BASE_API_H_
