// The header whose declaration the transitive-include case reaches
// through a lucky chain.
#ifndef FIXTURE_BASE_DEP_H_
#define FIXTURE_BASE_DEP_H_

namespace fixture {
struct Dep {
  int payload = 0;
};
}  // namespace fixture

#endif  // FIXTURE_BASE_DEP_H_
