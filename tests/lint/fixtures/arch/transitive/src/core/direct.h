// The intermediary: includes base/dep.h (legitimately — it names Dep in
// its own interface), which is what makes Dep visible to users of this
// header without their own include.
#ifndef FIXTURE_CORE_DIRECT_H_
#define FIXTURE_CORE_DIRECT_H_

#include "base/dep.h"

namespace fixture {
Dep MakeDep(int payload);
}  // namespace fixture

#endif  // FIXTURE_CORE_DIRECT_H_
