// Fixture: uses Dep — declared only in base/dep.h, which arrives here
// transitively through core/direct.h. Compiles today, breaks the moment
// direct.h drops the include. Expect: transitive-include at the first
// use of Dep.
#include "core/direct.h"

namespace fixture {

int Consume() {
  Dep dep = MakeDep(7);
  return dep.payload;
}

}  // namespace fixture
