// Fixture: the sanctioned nondeterminism home — the same patterns that are
// findings elsewhere are allowed here. Expect: clean.
#ifndef FIXTURE_RNG_H_
#define FIXTURE_RNG_H_

#include <cstdint>
#include <random>

namespace fixture {

inline uint64_t SeedFromEntropy() {
  std::random_device entropy;  // fine: this IS src/base/rng.h
  std::mt19937_64 gen(entropy());
  return gen();
}

}  // namespace fixture

#endif  // FIXTURE_RNG_H_
