// Sanctioned-home fixture: the signal shim itself. Registration lives here
// and the handler is a single store to a lock-free atomic, so the
// signal-handler rule must come back clean.
#include <atomic>
#include <csignal>

namespace chase {
namespace {

std::atomic<bool> g_stop_requested{false};

}  // namespace

extern "C" void FixtureSignalFlagHandler(int signo) {
  if (signo == SIGTERM) {
    g_stop_requested.store(true, std::memory_order_relaxed);
  }
}

void InstallFixtureHandler() {
  struct sigaction action = {};
  action.sa_handler = FixtureSignalFlagHandler;
  sigaction(SIGTERM, &action, nullptr);
}

}  // namespace chase
