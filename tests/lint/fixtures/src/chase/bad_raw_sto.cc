// Fixture: raw string-to-number conversions. Expect: raw-sto on each
// marked line (the rule applies in every directory).
#include <cstdlib>
#include <string>

namespace fixture {

int ParseThreads(const std::string& value) {
  return std::stoi(value);  // BAD: throws on garbage
}

long ParseBudget(const char* value) {
  return atol(value);  // BAD: silently returns 0 on garbage
}

}  // namespace fixture
