// Fixture: binary envelope magic written outside io/binary_io. Expect:
// envelope-io on the marked line (the magic lives in a string literal, so
// literal contents must stay visible to this rule).
#include <fstream>

namespace fixture {

void WriteRogueSnapshot(std::ofstream& out) {
  out << "CHSI";  // BAD: envelope bytes bypassing io/binary_io
}

}  // namespace fixture
