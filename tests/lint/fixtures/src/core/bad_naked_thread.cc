// Fixture: std::thread outside the sanctioned spawners. Expect:
// naked-thread on each marked line.
#include <thread>
#include <vector>

namespace fixture {

void FanOut(int n) {
  std::vector<std::thread> workers;  // BAD: spawn outside WorkerPool
  for (int i = 0; i < n; ++i) {
    workers.emplace_back([] {});
  }
  for (std::thread& t : workers) t.join();  // BAD: same rule, same type
}

}  // namespace fixture
