// Fixture: nondeterminism sources outside src/base/{rng,hash}.h. Expect:
// banned-nondet on each marked line.
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <random>

namespace fixture {

uint64_t Roll() {
  std::random_device seed;             // BAD: std::random_device
  std::mt19937_64 gen(seed());         // BAD: std::mt19937
  return gen() + std::rand();          // BAD: rand()
}

size_t PointerKey(const int* p) {
  std::hash<const int*> hasher;        // BAD: std::hash of a pointer
  return hasher(p) ^
         reinterpret_cast<uintptr_t>(p);  // BAD: ASLR-dependent value
}

}  // namespace fixture
