// Known-bad fixture: signal handling outside the sanctioned shim, with a
// handler body full of async-signal-unsafe calls.
#include <csignal>
#include <cstdio>
#include <cstdlib>

namespace chase {

extern "C" void RogueTermHandler(int signo) {
  std::printf("caught %d\n", signo);   // stdio in signal context
  void* scratch = malloc(64);          // heap allocation in signal context
  free(scratch);
}

void InstallRogueHandler() {
  std::signal(SIGTERM, RogueTermHandler);  // registration outside the shim
}

}  // namespace chase
