// Fixture: the sanctioned spawner path — std::thread is this file's whole
// job. Expect: clean.
#include <thread>
#include <vector>

namespace fixture {

struct Pool {
  std::vector<std::thread> workers;  // fine: this IS the WorkerPool home
};

}  // namespace fixture
