// Fixture: a suppression without a reason is itself a finding — the
// comment must state the invariant that replaces the rule. Expect:
// bare-allow (and the unordered-iter itself stays suppressed).
#include <cstdint>
#include <unordered_map>

namespace fixture {

uint64_t Total(const std::unordered_map<uint64_t, uint64_t>& counts) {
  uint64_t total = 0;
  for (const auto& [k, v] : counts) total += v;  // chase-lint: allow(unordered-iter)
  return total;
}

}  // namespace fixture
