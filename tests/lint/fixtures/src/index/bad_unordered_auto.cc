// Fixture: range-for over `auto` locals that alias an unordered member in
// a canonical-output path. The hash table does not become ordered by being
// rebound — including through a chain of rebinds. Expect: unordered-iter
// at both loops.
#include <cstdint>
#include <string>
#include <unordered_map>

namespace fixture {

struct Index {
  std::unordered_map<std::string, uint64_t> counts;
};

uint64_t Emit(const Index& index) {
  uint64_t total = 0;
  const auto& live = index.counts;
  for (const auto& [shape, count] : live) total += count;  // BAD
  auto& rebound = live;
  for (const auto& [shape, count] : rebound) total ^= count;  // BAD
  return total;
}

}  // namespace fixture
