// Fixture: range-for over an unordered member in a canonical-output path
// with no suppression. Expect: unordered-iter at both loops.
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

using ShapeSet = std::unordered_set<uint64_t>;

struct Index {
  std::unordered_map<std::string, uint64_t> counts;
  ShapeSet shapes;
};

uint64_t Emit(const Index& index) {
  uint64_t total = 0;
  for (const auto& [shape, count] : index.counts) total += count;  // BAD
  for (uint64_t shape : index.shapes) total ^= shape;              // BAD
  return total;
}

}  // namespace fixture
